package salsa

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Epoch-merged ingestion: the lock-free alternative to Sharded.
//
// Sharded routes every item through a hash and a shard mutex. The SWAR
// merge engine inverted that cost model — combining two sketches is now
// cheaper than contending on them — so this layer gives each writer
// goroutine a *private* sketch it updates with plain single-threaded loops
// (zero ingest-path locks, zero compare-and-swap), and a merger folds
// retired private sketches into one shared read view at epoch boundaries.
//
// The coordination protocol is a per-slot seqlock, all writer-side
// operations being plain atomic stores of writer-owned words:
//
//	writer op:  seq ← odd, e ← epoch, active ← e,
//	            ingest into bufs[e&1], counts[e&1] += n, seq ← even
//	merger:     epoch ← old+1 on every slot, then per slot wait until
//	            seq is even or active ≥ old+1, then exclusively drain
//	            and reset bufs[old&1]
//
// Writers are wait-free: no writer ever waits for the merger or another
// writer. The merger's wait is bounded by one in-flight operation per
// slot: once a writer observes the new epoch it writes the other buffer,
// so the drained buffer is quiescent. Sequentially consistent atomics
// make the retired buffer's contents visible to the merger (it returns
// from the wait only after loading a value the writer stored *after* its
// last write to that buffer) and the merger's reset visible to the writer
// (which reuses the buffer only after loading an epoch the merger stored
// *after* resetting it).
//
// Queries read the shared view under a read-lock that excludes only drain
// merges, never ingestion. Estimates trail ingestion by at most the data
// of the current epoch plus any unflushed writer buffers — the bounded
// staleness the Pending method quantifies.

// epochPrivate is the operation surface a per-writer private sketch must
// expose to the generic epoch core.
type epochPrivate interface {
	Update(item uint64, count int64)
	UpdateBatch(items []uint64, count int64)
	SizeBits() int
}

// maxEpochWriters bounds the writer-slot count, matching the envelope
// decoder's hostile-payload bound so every constructible topology stays
// serializable.
const maxEpochWriters = 1 << 16

// epochShrinkAfter is the number of consecutive empty drains after which
// an unclaimed surplus slot (beyond the configured writer count) is
// released — the drain-pressure signal for shrinking.
const epochShrinkAfter = 3

// epochSlot is one writer's private double-buffered sketch pair plus its
// seqlock words. Slots are stable heap allocations: growing the slot
// slice copies pointers, never slots, so a writer's slot reference stays
// valid across resizes.
type epochSlot[P epochPrivate] struct {
	seq    atomic.Uint64 // odd while the owner is mid-operation
	epoch  atomic.Uint64 // selects the absorbing buffer (epoch&1)
	active atomic.Uint64 // epoch observed by the in-flight operation
	counts [2]atomic.Uint64
	bufs   [2]P

	// Control-plane state, guarded by Epoch.mu.
	claimed     bool
	allocated   bool // private buffers exist (built on first claim)
	emptyDrains int
}

// Epoch is the generic epoch-merged ingestion core shared by the typed
// Epoch* wrappers. P is the private per-writer sketch type; the wrapper
// owns the shared view and supplies the drain/reset hooks.
type Epoch[P epochPrivate] struct {
	// mu serializes the control plane: Advance, NewWriter/Close slot
	// claims, adaptive resizing, and Marshal. Never held on the ingest
	// path.
	mu sync.Mutex
	// viewMu guards the shared view: queries, drain merges, and direct
	// (non-writer) updates all take it. A plain mutex, not an RWMutex:
	// sketch queries hold the lock for well under 100ns, and at that
	// scale a reader-writer lock's extra atomic traffic (~2x the
	// uncontended cost) outweighs any reader parallelism — and it is
	// what keeps the direct compatibility path at cost parity with the
	// Sharded layer it replaces.
	viewMu sync.Mutex

	slots atomic.Pointer[[]*epochSlot[P]]
	epoch atomic.Uint64

	newBuf func() P
	drain  func(buf P, n uint64) // called with viewMu write-locked
	reset  func(P)

	base int // configured writer slots; the adaptive shrink floor

	// Stats, guarded by mu.
	drained uint64 // items folded into the view
	grown   uint64 // slots added beyond base by NewWriter demand
	shrunk  uint64 // surplus slots released by empty-drain pressure
}

// newEpoch builds the core with writers slots. Private buffers are
// allocated lazily on a slot's first claim, so memory scales with actual
// writer goroutines (and decoded envelopes declaring many writer slots
// cost nothing until writers appear).
func newEpoch[P epochPrivate](writers int, newBuf func() P, drain func(P, uint64), reset func(P)) *Epoch[P] {
	e := &Epoch[P]{newBuf: newBuf, drain: drain, reset: reset, base: writers}
	slots := make([]*epochSlot[P], writers)
	for i := range slots {
		slots[i] = e.newSlot()
	}
	e.slots.Store(&slots)
	return e
}

func (e *Epoch[P]) newSlot() *epochSlot[P] {
	sl := &epochSlot[P]{}
	sl.epoch.Store(e.epoch.Load())
	return sl
}

// EpochWriter is a per-goroutine ingestion handle: Increment/Update
// buffer locally and flush into the goroutine's private sketch slot with
// plain single-threaded loops. Methods must not be called concurrently
// on one writer; create one writer per goroutine.
type EpochWriter[P epochPrivate] struct {
	e      *Epoch[P]
	slot   *epochSlot[P]
	seq    uint64 // local mirror of slot.seq (always even between ops)
	buf    []uint64
	closed bool
}

// defaultEpochBatch sizes EpochWriter buffers; amortizes the op's five
// atomic accesses and the per-batch hashing setup.
const defaultEpochBatch = 256

// NewWriter claims a private slot and returns an ingestion handle for
// one goroutine. batch is the local buffer size (≤ 0 means the default
// 256). When every slot is claimed the slot set grows — the demand half
// of adaptive resharding; surplus slots are released again after
// epochShrinkAfter consecutive empty drains. NewWriter panics once
// maxEpochWriters slots are claimed.
func (e *Epoch[P]) NewWriter(batch int) *EpochWriter[P] {
	if batch <= 0 {
		batch = defaultEpochBatch
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	slots := *e.slots.Load()
	var sl *epochSlot[P]
	for _, s := range slots {
		if !s.claimed {
			sl = s
			break
		}
	}
	if sl == nil {
		if len(slots) >= maxEpochWriters {
			panic(fmt.Sprintf("salsa: more than %d concurrent epoch writers", maxEpochWriters))
		}
		sl = e.newSlot()
		grown := make([]*epochSlot[P], len(slots)+1)
		copy(grown, slots)
		grown[len(slots)] = sl
		e.slots.Store(&grown)
		e.grown++
	}
	sl.claimed = true
	sl.emptyDrains = 0
	if !sl.allocated {
		sl.bufs[0], sl.bufs[1] = e.newBuf(), e.newBuf()
		sl.allocated = true
	}
	return &EpochWriter[P]{
		e:    e,
		slot: sl,
		seq:  sl.seq.Load(),
		buf:  make([]uint64, 0, batch),
	}
}

// enter begins a seqlock-protected private-sketch operation and returns
// the absorbing buffer index.
//
//salsa:nolock
func (w *EpochWriter[P]) enter() int {
	w.seq++
	w.slot.seq.Store(w.seq) // odd: operation in flight
	e := w.slot.epoch.Load()
	w.slot.active.Store(e)
	return int(e & 1)
}

// exit records n ingested items and ends the operation.
//
//salsa:nolock
func (w *EpochWriter[P]) exit(b int, n uint64) {
	c := &w.slot.counts[b]
	c.Store(c.Load() + n) // single-writer: load/store, no RMW needed
	w.seq++
	w.slot.seq.Store(w.seq) // even: operation complete
}

//salsa:nolock
func (w *EpochWriter[P]) mustOpen() {
	if w.closed {
		panic("salsa: operation on closed epoch writer")
	}
}

// Increment buffers one occurrence of item, flushing the local buffer
// into the private sketch when full.
//
//salsa:nolock
func (w *EpochWriter[P]) Increment(item uint64) {
	w.mustOpen()
	w.buf = append(w.buf, item)
	if len(w.buf) == cap(w.buf) {
		w.flush()
	}
}

// Update adds count occurrences of item. count == 1 buffers like
// Increment; other counts flush the buffer (preserving operation order)
// and apply immediately.
//
//salsa:nolock
func (w *EpochWriter[P]) Update(item uint64, count int64) {
	if count == 1 {
		w.Increment(item)
		return
	}
	w.mustOpen()
	w.flush()
	b := w.enter()
	w.slot.bufs[b].Update(item, count)
	w.exit(b, 1)
}

// UpdateBatch adds count occurrences of every item, in order. The batch
// is applied directly to the private sketch (after flushing any buffered
// increments), so large batches pay the seqlock once.
//
//salsa:nolock
func (w *EpochWriter[P]) UpdateBatch(items []uint64, count int64) {
	w.mustOpen()
	w.flush()
	if len(items) == 0 {
		return
	}
	b := w.enter()
	w.slot.bufs[b].UpdateBatch(items, count)
	w.exit(b, uint64(len(items)))
}

// Flush drains the local increment buffer into the private sketch. Data
// becomes globally visible only after the next epoch drain.
//
//salsa:nolock
func (w *EpochWriter[P]) Flush() {
	w.mustOpen()
	w.flush()
}

//salsa:nolock
func (w *EpochWriter[P]) flush() {
	if len(w.buf) == 0 {
		return
	}
	b := w.enter()
	w.slot.bufs[b].UpdateBatch(w.buf, 1)
	w.exit(b, uint64(len(w.buf)))
	w.buf = w.buf[:0]
}

// Close flushes and releases the writer's slot for reuse. The slot's
// undrained data is folded into the view by the next Advance.
func (w *EpochWriter[P]) Close() {
	if w.closed {
		return
	}
	w.flush()
	w.closed = true
	w.e.mu.Lock()
	w.slot.claimed = false
	w.e.mu.Unlock()
}

// Advance cuts one epoch: every slot is flipped to a fresh private
// buffer and the retired buffers are merged into the shared view. After
// writers quiesce (Flush or Close), one Advance makes all their data
// visible to queries. Concurrent with ingestion it is a consistent cut:
// an operation lands entirely in the retired epoch or entirely in the
// new one.
func (e *Epoch[P]) Advance() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.advanceLocked()
}

func (e *Epoch[P]) advanceLocked() {
	old := e.epoch.Load()
	next := old + 1
	slots := *e.slots.Load()
	for _, sl := range slots {
		sl.epoch.Store(next)
	}
	e.epoch.Store(next)

	retired := int(old & 1)
	canDrop := len(slots) - e.base // never shrink below the configured count
	dropped := 0
	kept := make([]*epochSlot[P], 0, len(slots))
	for _, sl := range slots {
		waitSettled(sl, next)
		if n := sl.counts[retired].Load(); n != 0 {
			e.viewMu.Lock()
			e.drain(sl.bufs[retired], n)
			e.viewMu.Unlock()
			e.reset(sl.bufs[retired])
			sl.counts[retired].Store(0)
			sl.emptyDrains = 0
			e.drained += n
		} else {
			sl.emptyDrains++
		}
		// Shrink half of adaptive resharding: a surplus unclaimed slot
		// that produced nothing for epochShrinkAfter drains and has
		// nothing pending in either buffer is released.
		if dropped < canDrop && !sl.claimed && sl.emptyDrains >= epochShrinkAfter &&
			sl.counts[0].Load() == 0 && sl.counts[1].Load() == 0 {
			dropped++
			e.shrunk++
			continue
		}
		kept = append(kept, sl)
	}
	if dropped > 0 {
		e.slots.Store(&kept)
	}
}

// waitSettled blocks until sl's owner cannot be writing the retired
// buffer: its seqlock is even (any later operation observes the new
// epoch) or its in-flight operation already observed it.
func waitSettled[P epochPrivate](sl *epochSlot[P], next uint64) {
	for i := 0; ; i++ {
		if sl.seq.Load()&1 == 0 || sl.active.Load() >= next {
			return
		}
		if i < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(time.Microsecond)
		}
	}
}

// AutoAdvance starts a background merger goroutine advancing the epoch
// every interval (≤ 0 means 1ms). The returned stop function performs a
// final Advance and waits for the goroutine to exit; it is idempotent.
func (e *Epoch[P]) AutoAdvance(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Millisecond
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				e.Advance()
				return
			case <-t.C:
				e.Advance()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}

// Pending returns the number of items ingested into private sketches but
// not yet drained into the view — the bounded-staleness gauge. Items
// still in writers' local buffers (not yet Flushed) are not counted.
func (e *Epoch[P]) Pending() uint64 {
	var n uint64
	for _, sl := range *e.slots.Load() {
		n += sl.counts[0].Load() + sl.counts[1].Load()
	}
	return n
}

// Epochs returns the number of epoch cuts performed.
func (e *Epoch[P]) Epochs() uint64 { return e.epoch.Load() }

// EpochStats is a point-in-time snapshot of the epoch layer's adaptive
// state.
type EpochStats struct {
	Epochs  uint64 // epoch cuts performed
	Drained uint64 // items folded into the view
	Pending uint64 // ingested but not yet drained
	Slots   int    // current writer slots
	Writers int    // slots claimed by open writers
	Grown   uint64 // slots added beyond the configured count
	Shrunk  uint64 // surplus slots released by empty-drain pressure
}

// Stats returns drain-pressure and resharding counters.
func (e *Epoch[P]) Stats() EpochStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	slots := *e.slots.Load()
	st := EpochStats{
		Epochs:  e.epoch.Load(),
		Drained: e.drained,
		Slots:   len(slots),
		Grown:   e.grown,
		Shrunk:  e.shrunk,
	}
	for _, sl := range slots {
		st.Pending += sl.counts[0].Load() + sl.counts[1].Load()
		if sl.claimed {
			st.Writers++
		}
	}
	return st
}

// privateBits sums the private buffers' footprint for MemoryBits. It
// takes the control-plane lock because buffer allocation is lazy.
func (e *Epoch[P]) privateBits() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	var bits int
	for _, sl := range *e.slots.Load() {
		if sl.allocated {
			bits += sl.bufs[0].SizeBits() + sl.bufs[1].SizeBits()
		}
	}
	return bits
}
