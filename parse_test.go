package salsa

import (
	"strings"
	"testing"
)

// TestParseSpecRoundTrip: String output parses back to an identical spec,
// and a parsed spec Builds the expected topology.
func TestParseSpecRoundTrip(t *testing.T) {
	opt := Options{Width: 256, Seed: 3}
	exprs := []string{
		"cms",
		"cus",
		"cs",
		"monitor(10)",
		"topk(5)",
		"windowed(4,65536,cms)",
		"windowed(4,0,cus)",
		"sharded(8,cms)",
		"sharded(8,windowed(4,65536,cms))",
		"sharded(2,monitor(16))",
		"sharded(2,windowed(4,100,monitor(16)))",
		"aee",
		"distinct",
		"univmon(8,20)",
		"windowed(4,100,distinct)",
		"filtered(cms)",
		"filtered(cus)",
		"tiered(cms)",
		"sharded(2,aee)",
		"sharded(2,distinct)",
		"sharded(2,filtered(cus))",
		"sharded(2,tiered(cms))",
	}
	for _, expr := range exprs {
		spec, err := ParseSpec(expr, opt)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", expr, err)
		}
		if got := spec.String(); got != expr {
			t.Fatalf("ParseSpec(%q).String() = %q", expr, got)
		}
		if _, err := Build(spec); err != nil {
			t.Fatalf("Build(ParseSpec(%q)): %v", expr, err)
		}
	}
}

// TestParseSpecTolerance: whitespace, case, and long-form names normalize.
func TestParseSpecTolerance(t *testing.T) {
	opt := Options{Width: 64}
	for expr, want := range map[string]string{
		" sharded( 8 , windowed(4, 100, CMS) ) ":   "sharded(8,windowed(4,100,cms))",
		"sharded(8,\n\twindowed(4, 100, cms))\r\n": "sharded(8,windowed(4,100,cms))",
		"CountMin":     "cms",
		"conservative": "cus",
		"CountSketch":  "cs",
	} {
		spec, err := ParseSpec(expr, opt)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", expr, err)
		}
		if got := spec.String(); got != want {
			t.Fatalf("ParseSpec(%q).String() = %q, want %q", expr, got, want)
		}
	}
}

// TestParseSpecErrors: malformed expressions are syntax errors; valid
// syntax with invalid composition is caught by Build, not the parser.
func TestParseSpecErrors(t *testing.T) {
	opt := Options{Width: 64}
	for _, expr := range []string{
		"",
		"nope",
		"cms extra",
		"monitor",
		"monitor(",
		"monitor()",
		"monitor(-3)",
		"windowed(4,cms)",
		"windowed(4,100,)",
		"sharded(8)",
		"sharded(8,cms",
		"sharded(99999999999999999999,cms)",
		"univmon",
		"univmon(8)",
		"univmon(8,20,3)",
		"filtered",
		"filtered()",
		"tiered(cms",
		strings.Repeat("sharded(2,", 80) + "cms" + strings.Repeat(")", 80),
	} {
		if _, err := ParseSpec(expr, opt); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", expr)
		}
	}
	// Syntactically fine, semantically invalid: the parser passes it
	// through and Build reports the composition error.
	for _, expr := range []string{
		"sharded(2,sharded(2,cms))",
		"windowed(4,100,univmon(4,4))",
		"filtered(filtered(cms))",
	} {
		spec, err := ParseSpec(expr, opt)
		if err != nil {
			t.Fatalf("parser rejected what Build should (%q): %v", expr, err)
		}
		if _, err := Build(spec); err == nil || !strings.Contains(err.Error(), "cannot decorate") {
			t.Fatalf("Build(%q) error = %v, want composition error", expr, err)
		}
	}
	// univmon(0,0) must not silently default: the parser is an inverse of
	// String, so unparseable-by-String levels fail at Build.
	spec, err := ParseSpec("univmon(0,0)", opt)
	if err != nil {
		t.Fatalf("ParseSpec(univmon(0,0)): %v", err)
	}
	if _, err := Build(spec); err == nil {
		t.Fatal("Build(univmon(0,0)) accepted zero levels")
	}
}
