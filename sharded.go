package salsa

import (
	"sort"
)

// Typed Sharded constructors and query wrappers. Sharded[S] itself is
// query-agnostic (CountMin estimates are uint64, CountSketch's int64, a
// Monitor answers top-k), so each backend gets a thin wrapper adding its
// query surface. Shard sketch seeds are derived per shard, so distinct
// shards never share hash functions with each other.

// ShardedCountMin is a concurrency-safe CountMin (or, via
// NewShardedConservativeUpdate, Conservative Update) sketch. Estimates keep
// the CountMin overestimate guarantee: each shard is a complete sketch of
// its substream. Merging the shards into one sketch is not needed for
// point queries.
type ShardedCountMin struct {
	*Sharded[*CountMin]
}

// buildShardedCountMin realizes a ShardedBy(CountMinOf/ConservativeOf)
// spec.
func buildShardedCountMin(opt Options, shards int, conservative bool) (*ShardedCountMin, error) {
	if err := validateShardCount(shards); err != nil {
		return nil, err
	}
	kind := kindCountMin
	if conservative {
		kind = kindConservative
	}
	if err := opt.validateFor(kind); err != nil {
		return nil, err
	}
	return &ShardedCountMin{NewSharded(shards, routeSeed(opt), func(i int) *CountMin {
		return mustSketch(buildCountMin(shardOptions(opt, i), conservative))
	})}, nil
}

// NewShardedCountMin returns a sharded CountMin with the given number of
// shards (rounded up to a power of two, minimum 1).
//
// Deprecated: Use Build(ShardedBy(CountMinOf(opt), shards)), which returns
// construction errors instead of panicking.
func NewShardedCountMin(opt Options, shards int) *ShardedCountMin {
	return mustSketch(buildShardedCountMin(opt, shards, false))
}

// NewShardedConservativeUpdate is NewShardedCountMin over Conservative
// Update shards.
//
// Deprecated: Use Build(ShardedBy(ConservativeOf(opt), shards)).
func NewShardedConservativeUpdate(opt Options, shards int) *ShardedCountMin {
	return mustSketch(buildShardedCountMin(opt, shards, true))
}

// Query returns the frequency estimate; safe for concurrent use.
func (s *ShardedCountMin) Query(item uint64) uint64 {
	return query(s.Sharded, item, (*CountMin).Query)
}

// QueryBatch writes the estimate of items[j] into dst[j] and returns dst,
// appending if dst is short (pass nil to allocate); safe for concurrent
// use. Each shard is locked once per batch.
func (s *ShardedCountMin) QueryBatch(items []uint64, dst []uint64) []uint64 {
	return queryBatch(s.Sharded, items, dst, (*CountMin).QueryBatch)
}

// ShardedCountSketch is a concurrency-safe CountSketch.
type ShardedCountSketch struct {
	*Sharded[*CountSketch]
}

// buildShardedCountSketch realizes a ShardedBy(CountSketchOf) spec.
func buildShardedCountSketch(opt Options, shards int) (*ShardedCountSketch, error) {
	if err := validateShardCount(shards); err != nil {
		return nil, err
	}
	if err := opt.validateFor(kindCountSketch); err != nil {
		return nil, err
	}
	return &ShardedCountSketch{NewSharded(shards, routeSeed(opt), func(i int) *CountSketch {
		return mustSketch(buildCountSketch(shardOptions(opt, i)))
	})}, nil
}

// NewShardedCountSketch returns a sharded CountSketch with the given number
// of shards (rounded up to a power of two, minimum 1).
//
// Deprecated: Use Build(ShardedBy(CountSketchOf(opt), shards)).
func NewShardedCountSketch(opt Options, shards int) *ShardedCountSketch {
	return mustSketch(buildShardedCountSketch(opt, shards))
}

// Query returns the (unbiased) frequency estimate; safe for concurrent use.
func (s *ShardedCountSketch) Query(item uint64) int64 {
	return query(s.Sharded, item, (*CountSketch).Query)
}

// QueryBatch writes the estimate of items[j] into dst[j] and returns dst,
// appending if dst is short (pass nil to allocate); safe for concurrent
// use.
func (s *ShardedCountSketch) QueryBatch(items []uint64, dst []int64) []int64 {
	return queryBatch(s.Sharded, items, dst, (*CountSketch).QueryBatch)
}

// ShardedMonitor is a concurrency-safe heavy-hitter tracker: each shard
// runs a Monitor over its substream, and Top/HeavyHitters merge the
// per-shard heaps. Since an item lives in exactly one shard, the merged
// view tracks (up to) k·shards candidates with per-item estimates from the
// owning shard.
type ShardedMonitor struct {
	*Sharded[*Monitor]
	k int
}

// buildShardedMonitor realizes a ShardedBy(MonitorOf) spec.
func buildShardedMonitor(opt Options, k, shards int) (*ShardedMonitor, error) {
	if err := validateShardCount(shards); err != nil {
		return nil, err
	}
	if err := validateTrackerK("monitor", k); err != nil {
		return nil, err
	}
	if err := opt.validateFor(kindConservative); err != nil {
		return nil, err
	}
	return &ShardedMonitor{
		Sharded: NewSharded(shards, routeSeed(opt), func(i int) *Monitor {
			return mustSketch(buildMonitor(shardOptions(opt, i), k))
		}),
		k: k,
	}, nil
}

// NewShardedMonitor returns a sharded Monitor tracking the k largest items
// per shard.
//
// Deprecated: Use Build(ShardedBy(MonitorOf(opt, k), shards)).
func NewShardedMonitor(opt Options, k, shards int) *ShardedMonitor {
	return mustSketch(buildShardedMonitor(opt, k, shards))
}

// Query returns the frequency estimate from the owning shard's sketch.
func (s *ShardedMonitor) Query(item uint64) uint64 {
	return query(s.Sharded, item, func(m *Monitor, x uint64) uint64 { return m.Sketch().Query(x) })
}

// candidates returns every tracked item across all shards (up to k·shards
// of them), sorted by descending estimate.
func (s *ShardedMonitor) candidates() []ItemCount {
	var all []ItemCount
	for i := 0; i < s.Shards(); i++ {
		sh := &s.Sharded.shards[i]
		sh.mu.Lock()
		all = append(all, sh.sk.Top()...)
		sh.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Count > all[j].Count })
	return all
}

// Top returns the k tracked items with the largest estimates across all
// shards, in descending order.
func (s *ShardedMonitor) Top() []ItemCount {
	all := s.candidates()
	if len(all) > s.k {
		all = all[:s.k]
	}
	return all
}

// HeavyHitters returns the tracked items whose estimate is at least phi
// times volume, in descending order — drawn from the full k·shards
// candidate set, so it can return more than k items.
func (s *ShardedMonitor) HeavyHitters(phi float64, volume uint64) []ItemCount {
	threshold := phi * float64(volume)
	var out []ItemCount
	for _, e := range s.candidates() {
		if float64(e.Count) >= threshold {
			out = append(out, e)
		}
	}
	return out
}

// ShardedWindowedCountMin is a concurrency-safe sliding-window CountMin
// (or, via NewShardedWindowedConservativeUpdate, Conservative Update)
// sketch: each shard runs a complete WindowedCountMin over its substream.
// With count-based rotation every shard rotates on its own substream count,
// so shard windows slide independently at roughly the global rate divided
// by the shard count; size bucketItems per shard, or use Tick to rotate all
// shards together from one timer.
type ShardedWindowedCountMin struct {
	*Sharded[*WindowedCountMin]
}

// buildShardedWindowedCMS realizes a
// ShardedBy(Windowed(CountMinOf/ConservativeOf)) spec.
func buildShardedWindowedCMS(opt Options, buckets, bucketItems, shards int, conservative bool) (*ShardedWindowedCountMin, error) {
	if err := validateShardCount(shards); err != nil {
		return nil, err
	}
	kind := kindCountMin
	if conservative {
		kind = kindConservative
	}
	if err := opt.validateFor(kind); err != nil {
		return nil, err
	}
	if err := validateWindow(opt, buckets, bucketItems); err != nil {
		return nil, err
	}
	return &ShardedWindowedCountMin{NewSharded(shards, routeSeed(opt), func(i int) *WindowedCountMin {
		return mustSketch(buildWindowedCMS(shardOptions(opt, i), buckets, bucketItems, conservative))
	})}, nil
}

// NewShardedWindowedCountMin returns a sharded windowed CountMin with the
// given number of shards (rounded up to a power of two, minimum 1);
// bucketItems counts each shard's own substream (0 = Tick-driven).
//
// Deprecated: Use
// Build(ShardedBy(Windowed(CountMinOf(opt), buckets, bucketItems), shards)).
func NewShardedWindowedCountMin(opt Options, buckets, bucketItems, shards int) *ShardedWindowedCountMin {
	return mustSketch(buildShardedWindowedCMS(opt, buckets, bucketItems, shards, false))
}

// NewShardedWindowedConservativeUpdate is NewShardedWindowedCountMin over
// Conservative Update shards.
//
// Deprecated: Use
// Build(ShardedBy(Windowed(ConservativeOf(opt), buckets, bucketItems), shards)).
func NewShardedWindowedConservativeUpdate(opt Options, buckets, bucketItems, shards int) *ShardedWindowedCountMin {
	return mustSketch(buildShardedWindowedCMS(opt, buckets, bucketItems, shards, true))
}

// Query returns the windowed frequency estimate; safe for concurrent use.
func (s *ShardedWindowedCountMin) Query(item uint64) uint64 {
	return query(s.Sharded, item, (*WindowedCountMin).Query)
}

// QueryBatch writes the windowed estimate of items[j] into dst[j] and
// returns dst, appending if dst is short (pass nil to allocate); safe for
// concurrent use.
func (s *ShardedWindowedCountMin) QueryBatch(items []uint64, dst []uint64) []uint64 {
	return queryBatch(s.Sharded, items, dst, (*WindowedCountMin).QueryBatch)
}

// Tick rotates every shard's window by one bucket; safe for concurrent use.
func (s *ShardedWindowedCountMin) Tick() {
	tickShards(s.Sharded, (*WindowedCountMin).Tick)
}

// ShardedWindowedCountSketch is a concurrency-safe sliding-window
// CountSketch; rotation semantics are as for ShardedWindowedCountMin.
type ShardedWindowedCountSketch struct {
	*Sharded[*WindowedCountSketch]
}

// buildShardedWindowedCountSketch realizes a
// ShardedBy(Windowed(CountSketchOf)) spec.
func buildShardedWindowedCountSketch(opt Options, buckets, bucketItems, shards int) (*ShardedWindowedCountSketch, error) {
	if err := validateShardCount(shards); err != nil {
		return nil, err
	}
	if err := opt.validateFor(kindCountSketch); err != nil {
		return nil, err
	}
	if err := validateWindow(opt, buckets, bucketItems); err != nil {
		return nil, err
	}
	return &ShardedWindowedCountSketch{NewSharded(shards, routeSeed(opt), func(i int) *WindowedCountSketch {
		return mustSketch(buildWindowedCountSketch(shardOptions(opt, i), buckets, bucketItems))
	})}, nil
}

// NewShardedWindowedCountSketch returns a sharded windowed CountSketch with
// the given number of shards (rounded up to a power of two, minimum 1).
//
// Deprecated: Use
// Build(ShardedBy(Windowed(CountSketchOf(opt), buckets, bucketItems), shards)).
func NewShardedWindowedCountSketch(opt Options, buckets, bucketItems, shards int) *ShardedWindowedCountSketch {
	return mustSketch(buildShardedWindowedCountSketch(opt, buckets, bucketItems, shards))
}

// Query returns the (unbiased) windowed estimate; safe for concurrent use.
func (s *ShardedWindowedCountSketch) Query(item uint64) int64 {
	return query(s.Sharded, item, (*WindowedCountSketch).Query)
}

// QueryBatch writes the windowed estimate of items[j] into dst[j] and
// returns dst, appending if dst is short (pass nil to allocate); safe for
// concurrent use.
func (s *ShardedWindowedCountSketch) QueryBatch(items []uint64, dst []int64) []int64 {
	return queryBatch(s.Sharded, items, dst, (*WindowedCountSketch).QueryBatch)
}

// Tick rotates every shard's window by one bucket; safe for concurrent use.
func (s *ShardedWindowedCountSketch) Tick() {
	tickShards(s.Sharded, (*WindowedCountSketch).Tick)
}

// ShardedAEE is a concurrency-safe AEE estimator: each shard runs an
// independent estimator over its substream, downsampling on its own
// overflow schedule, and point queries route to the owning shard.
type ShardedAEE struct {
	*Sharded[*AEE]
}

// buildShardedAEE realizes a ShardedBy(AEEOf) spec.
func buildShardedAEE(opt Options, shards int) (*ShardedAEE, error) {
	if err := validateShardCount(shards); err != nil {
		return nil, err
	}
	if err := opt.validateFor(kindAEE); err != nil {
		return nil, err
	}
	return &ShardedAEE{NewSharded(shards, routeSeed(opt), func(i int) *AEE {
		return mustSketch(buildAEE(shardOptions(opt, i)))
	})}, nil
}

// Query returns the frequency estimate from the owning shard's estimator;
// safe for concurrent use.
func (s *ShardedAEE) Query(item uint64) float64 {
	return query(s.Sharded, item, (*AEE).Query)
}

// ShardedDistinct is a concurrency-safe Linear Counting distinct
// estimator. Routing partitions the item space, so the shard estimates
// count disjoint item sets and Estimate sums them.
type ShardedDistinct struct {
	*Sharded[*Distinct]
}

// buildShardedDistinct realizes a ShardedBy(DistinctOf) spec.
func buildShardedDistinct(opt Options, shards int) (*ShardedDistinct, error) {
	if err := validateShardCount(shards); err != nil {
		return nil, err
	}
	if err := opt.validateFor(kindDistinct); err != nil {
		return nil, err
	}
	return &ShardedDistinct{NewSharded(shards, routeSeed(opt), func(i int) *Distinct {
		return mustSketch(buildDistinct(shardOptions(opt, i)))
	})}, nil
}

// Query returns the frequency estimate from the owning shard's sketch;
// safe for concurrent use.
func (s *ShardedDistinct) Query(item uint64) uint64 {
	return query(s.Sharded, item, (*Distinct).Query)
}

// Estimate returns the summed per-shard Linear Counting estimates — exact
// composition, since the routing hash partitions the item space across
// shards. It errors if any shard's estimator is out of range.
func (s *ShardedDistinct) Estimate() (float64, error) {
	total := 0.0
	for i := 0; i < s.Shards(); i++ {
		sh := &s.Sharded.shards[i]
		sh.mu.Lock()
		est, err := sh.sk.Estimate()
		sh.mu.Unlock()
		if err != nil {
			return 0, err
		}
		total += est
	}
	return total, nil
}

// ShardedColdFilter is a concurrency-safe Cold Filter pipeline: each shard
// runs complete filter layers and a second stage over its substream.
type ShardedColdFilter struct {
	*Sharded[*ColdFilter]
}

// buildShardedColdFilter realizes a ShardedBy(Filtered(...)) spec.
func buildShardedColdFilter(opt Options, conservative bool, shards int) (*ShardedColdFilter, error) {
	if err := validateShardCount(shards); err != nil {
		return nil, err
	}
	kind := kindCountMin
	if conservative {
		kind = kindConservative
	}
	if err := opt.validateFor(kind); err != nil {
		return nil, err
	}
	if err := validateFilterWidth(opt.Width); err != nil {
		return nil, err
	}
	return &ShardedColdFilter{NewSharded(shards, routeSeed(opt), func(i int) *ColdFilter {
		return mustSketch(buildColdFilter(shardOptions(opt, i), conservative))
	})}, nil
}

// Query returns the conservative frequency estimate from the owning
// shard's pipeline; safe for concurrent use.
func (s *ShardedColdFilter) Query(item uint64) uint64 {
	return query(s.Sharded, item, (*ColdFilter).Query)
}

// ShardedPyramid is a concurrency-safe Pyramid sketch.
type ShardedPyramid struct {
	*Sharded[*Pyramid]
}

// buildShardedPyramid realizes a ShardedBy(Tiered(...)) spec.
func buildShardedPyramid(opt Options, shards int) (*ShardedPyramid, error) {
	if err := validateShardCount(shards); err != nil {
		return nil, err
	}
	if err := opt.validateFor(kindCountMin); err != nil {
		return nil, err
	}
	if err := validatePyramidWidth(opt.Width); err != nil {
		return nil, err
	}
	return &ShardedPyramid{NewSharded(shards, routeSeed(opt), func(i int) *Pyramid {
		return mustSketch(buildPyramid(shardOptions(opt, i)))
	})}, nil
}

// Query returns the frequency estimate from the owning shard's sketch;
// safe for concurrent use.
func (s *ShardedPyramid) Query(item uint64) uint64 {
	return query(s.Sharded, item, (*Pyramid).Query)
}

// ShardedWindowedMonitor tracks heavy hitters over sliding windows under
// concurrent ingestion: each shard runs a complete WindowedMonitor over
// its substream, and Top/HeavyHitters merge the per-shard candidate sets
// re-estimated against each shard's own live window. With count-based
// rotation each shard's window slides on its own substream count; use
// Tick to rotate all shards together from one timer.
type ShardedWindowedMonitor struct {
	*Sharded[*WindowedMonitor]
	k int
}

// buildShardedWindowedMonitor realizes a ShardedBy(Windowed(MonitorOf))
// spec.
func buildShardedWindowedMonitor(opt Options, k, buckets, bucketItems, shards int) (*ShardedWindowedMonitor, error) {
	if err := validateShardCount(shards); err != nil {
		return nil, err
	}
	if err := validateTrackerK("monitor", k); err != nil {
		return nil, err
	}
	if err := opt.validateFor(kindConservative); err != nil {
		return nil, err
	}
	if err := validateWindow(opt, buckets, bucketItems); err != nil {
		return nil, err
	}
	return &ShardedWindowedMonitor{
		Sharded: NewSharded(shards, routeSeed(opt), func(i int) *WindowedMonitor {
			return mustSketch(buildWindowedMonitor(shardOptions(opt, i), k, buckets, bucketItems))
		}),
		k: k,
	}, nil
}

// Query returns the windowed frequency estimate from the owning shard.
func (s *ShardedWindowedMonitor) Query(item uint64) uint64 {
	return query(s.Sharded, item, (*WindowedMonitor).Query)
}

// Tick rotates every shard's window by one bucket; safe for concurrent
// use.
func (s *ShardedWindowedMonitor) Tick() {
	tickShards(s.Sharded, (*WindowedMonitor).Tick)
}

// WindowVolume returns the summed live-window volumes across shards.
func (s *ShardedWindowedMonitor) WindowVolume() uint64 {
	var total uint64
	for i := 0; i < s.Shards(); i++ {
		sh := &s.Sharded.shards[i]
		sh.mu.Lock()
		total += sh.sk.WindowVolume()
		sh.mu.Unlock()
	}
	return total
}

// candidates returns every shard's windowed candidate set (up to
// k·B·shards items), sorted by descending estimate.
func (s *ShardedWindowedMonitor) candidates() []ItemCount {
	var all []ItemCount
	for i := 0; i < s.Shards(); i++ {
		sh := &s.Sharded.shards[i]
		sh.mu.Lock()
		all = append(all, sh.sk.candidates()...)
		sh.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Item < all[j].Item
	})
	return all
}

// Top returns the k candidates with the largest windowed estimates across
// all shards, in descending order.
func (s *ShardedWindowedMonitor) Top() []ItemCount {
	all := s.candidates()
	if len(all) > s.k {
		all = all[:s.k]
	}
	return all
}

// HeavyHitters returns every candidate whose windowed estimate is at
// least phi times the summed live-window volume, in descending order —
// drawn from the full cross-shard candidate set, so it can return more
// than k items.
func (s *ShardedWindowedMonitor) HeavyHitters(phi float64) []ItemCount {
	threshold := phi * float64(s.WindowVolume())
	var out []ItemCount
	for _, e := range s.candidates() {
		if float64(e.Count) < threshold {
			break // candidates are sorted descending
		}
		out = append(out, e)
	}
	return out
}

// tickShards rotates every shard's window under its lock.
func tickShards[S Sketch](s *Sharded[S], tick func(S)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		tick(sh.sk)
		sh.mu.Unlock()
	}
}

// routeSeed derives the item-to-shard routing seed; it differs from every
// shard sketch seed so routing stays independent of in-sketch hashing.
func routeSeed(opt Options) uint64 { return opt.Seed ^ 0x5a15ac0c0 }

// shardOptions gives shard i its own sketch seed. Shards of one Sharded
// must not share hash functions, or their substreams' error terms would
// correlate; use NewSharded directly with a fixed seed if you need
// mergeable shards instead.
func shardOptions(opt Options, i int) Options {
	o := opt
	o.Seed = opt.Seed + uint64(i)*0x9e37
	return o
}
