package salsa

import (
	"sync"

	"salsa/internal/hashing"
)

// ShardedCountMin is a concurrency-safe CountMin: items are routed to one
// of several independently-locked shard sketches by a hash of the item, so
// updates from many goroutines proceed in parallel while every query still
// consults exactly one shard (each shard is a complete sketch of its
// substream, so estimates keep the CountMin overestimate guarantee).
//
// Memory is Options.Width per shard; size the width accordingly. Merging
// the shards into one sketch is not needed for point queries.
type ShardedCountMin struct {
	shards []shard
	mask   uint64
	seed   uint64
}

type shard struct {
	mu sync.Mutex
	cm *CountMin
	_  [40]byte // pad to its own cache line to avoid false sharing
}

// NewShardedCountMin returns a sketch with the given number of shards
// (rounded up to a power of two, minimum 1).
func NewShardedCountMin(opt Options, shards int) *ShardedCountMin {
	n := 1
	for n < shards {
		n *= 2
	}
	s := &ShardedCountMin{
		shards: make([]shard, n),
		mask:   uint64(n - 1),
		seed:   opt.Seed ^ 0x5a15ac0c0,
	}
	for i := range s.shards {
		o := opt
		o.Seed = opt.Seed + uint64(i)*0x9e37
		s.shards[i].cm = NewCountMin(o)
	}
	return s
}

func (s *ShardedCountMin) route(item uint64) *shard {
	return &s.shards[hashing.Index(item, s.seed, s.mask)]
}

// Update adds count occurrences of item; safe for concurrent use.
func (s *ShardedCountMin) Update(item uint64, count int64) {
	sh := s.route(item)
	sh.mu.Lock()
	sh.cm.Update(item, count)
	sh.mu.Unlock()
}

// Increment adds one occurrence of item; safe for concurrent use.
func (s *ShardedCountMin) Increment(item uint64) { s.Update(item, 1) }

// Query returns the frequency estimate; safe for concurrent use.
func (s *ShardedCountMin) Query(item uint64) uint64 {
	sh := s.route(item)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.cm.Query(item)
}

// Shards returns the number of shards.
func (s *ShardedCountMin) Shards() int { return len(s.shards) }

// MemoryBits returns the total footprint across shards.
func (s *ShardedCountMin) MemoryBits() int {
	total := 0
	for i := range s.shards {
		total += s.shards[i].cm.MemoryBits()
	}
	return total
}
