package univmon

import (
	"math"
	"testing"

	"salsa/internal/metrics"
	"salsa/internal/sketch"
	"salsa/internal/stream"
)

func build(rows sketch.SignedRowSpec, updates []uint64) *Sketch {
	s := New(Config{
		Levels: 12,
		Depth:  5,
		Width:  512,
		HeapK:  100,
		Rows:   rows,
		Seed:   17,
	})
	for _, x := range updates {
		s.Update(x)
	}
	return s
}

func TestSamplingHalves(t *testing.T) {
	s := New(Config{Levels: 8, Depth: 2, Width: 64, HeapK: 4, Rows: sketch.FixedSignRow(32), Seed: 3})
	counts := make([]int, 8)
	for x := uint64(0); x < 1<<14; x++ {
		for j := 0; j < 8; j++ {
			if s.sampled(x, j) {
				counts[j]++
			}
		}
	}
	if counts[0] != 1<<14 {
		t.Fatal("level 0 must include everything")
	}
	for j := 1; j < 8; j++ {
		want := float64(counts[j-1]) / 2
		if math.Abs(float64(counts[j])-want) > 6*math.Sqrt(want) {
			t.Fatalf("level %d kept %d of %d", j, counts[j], counts[j-1])
		}
	}
	// Nesting: level j membership implies level j−1 membership.
	for x := uint64(0); x < 1000; x++ {
		for j := 7; j >= 1; j-- {
			if s.sampled(x, j) && !s.sampled(x, j-1) {
				t.Fatal("levels are not nested")
			}
		}
	}
}

func TestEntropyEstimate(t *testing.T) {
	data := stream.Zipf(120000, 3000, 1.0, 21)
	exact := stream.NewExact()
	for _, x := range data {
		exact.Observe(x)
	}
	for name, rows := range map[string]sketch.SignedRowSpec{
		"baseline": sketch.FixedSignRow(32),
		"salsa":    sketch.SalsaSignRow(8, false),
	} {
		t.Run(name, func(t *testing.T) {
			s := build(rows, data)
			got := s.Entropy()
			if rel := metrics.RelErr(got, exact.Entropy()); rel > 0.15 {
				t.Fatalf("entropy %f vs %f: rel err %f", got, exact.Entropy(), rel)
			}
		})
	}
}

func TestMomentEstimates(t *testing.T) {
	data := stream.Zipf(120000, 3000, 1.0, 23)
	exact := stream.NewExact()
	for _, x := range data {
		exact.Observe(x)
	}
	s := build(sketch.SalsaSignRow(8, false), data)
	if got := s.Moment(1); got != float64(exact.Volume()) {
		t.Fatalf("F1 = %f, want exact %d", got, exact.Volume())
	}
	if rel := metrics.RelErr(s.Moment(2), exact.Moment(2)); rel > 0.25 {
		t.Fatalf("F2 rel err %f", rel)
	}
	// F0 and fractional moments are noisier; demand order-of-magnitude
	// agreement.
	if rel := metrics.RelErr(s.Distinct(), float64(exact.Distinct())); rel > 0.5 {
		t.Fatalf("F0 rel err %f (est %f true %d)", rel, s.Distinct(), exact.Distinct())
	}
	if rel := metrics.RelErr(s.Moment(0.5), exact.Moment(0.5)); rel > 0.5 {
		t.Fatalf("F0.5 rel err %f", rel)
	}
}

func TestHeavyHittersSurface(t *testing.T) {
	data := stream.Zipf(50000, 2000, 1.2, 29)
	exact := stream.NewExact()
	for _, x := range data {
		exact.Observe(x)
	}
	s := build(sketch.SalsaSignRow(8, false), data)
	hh := s.HeavyHitters()
	if len(hh) == 0 {
		t.Fatal("no heavy hitters tracked")
	}
	est := make([]uint64, 0, len(hh))
	for _, e := range hh {
		est = append(est, e.Item)
	}
	acc := metrics.TopKAccuracy(est, exact.TopK(20))
	if acc < 0.8 {
		t.Fatalf("top-20 accuracy %f", acc)
	}
}

func TestVolumeTracked(t *testing.T) {
	s := build(sketch.FixedSignRow(32), []uint64{1, 2, 3})
	if s.Volume() != 3 {
		t.Fatalf("Volume = %d", s.Volume())
	}
}

func TestSizeBits(t *testing.T) {
	s := New(Config{Levels: 4, Depth: 2, Width: 64, HeapK: 4, Rows: sketch.FixedSignRow(32), Seed: 1})
	if s.SizeBits() != 4*2*64*32 {
		t.Fatalf("SizeBits = %d", s.SizeBits())
	}
}

func TestValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Levels: 0, Depth: 2, Width: 64, HeapK: 4, Rows: sketch.FixedSignRow(32)})
}
