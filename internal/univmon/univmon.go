// Package univmon implements the Universal Sketch (UnivMon, Liu et al.
// SIGCOMM 2016): a stack of Count Sketch instances over geometrically
// halving substreams, each paired with a top-k heap, from which any G-sum
// Σ G(f_x) in Stream-PolyLog — entropy, frequency moments, cardinality —
// is estimated with the Braverman–Ostrovsky recursive estimator.
//
// The paper's SALSA UnivMon is this sketch with SALSA Count Sketch rows.
package univmon

import (
	"fmt"
	"math"

	"salsa/internal/hashing"
	"salsa/internal/sketch"
	"salsa/internal/topk"
)

// Sketch is a UnivMon instance. Configure with the paper's defaults via
// New: 16 levels, d = 5 rows, heaps of 100.
type Sketch struct {
	levels     []level
	sampleSeed uint64
	volume     uint64
}

type level struct {
	cs   *sketch.CountSketch
	heap *topk.Heap
}

// Config sets the UnivMon geometry.
type Config struct {
	// Levels is the number of CS instances (16 in the paper's setup).
	Levels int
	// Depth and Width shape each Count Sketch (d = 5 in the paper).
	Depth, Width int
	// HeapK is the per-level heavy-hitter heap size (100 in the paper).
	HeapK int
	// Rows picks the CS row type (baseline or SALSA).
	Rows sketch.SignedRowSpec
	// Seed derives every hash seed.
	Seed uint64
}

// New returns an empty UnivMon sketch.
func New(cfg Config) *Sketch {
	if cfg.Levels <= 0 || cfg.HeapK <= 0 {
		panic("univmon: invalid geometry")
	}
	seeds := hashing.Seeds(cfg.Seed, cfg.Levels+1)
	levels := make([]level, cfg.Levels)
	for i := range levels {
		levels[i] = level{
			cs:   sketch.NewCountSketch(cfg.Depth, cfg.Width, cfg.Rows, seeds[i]),
			heap: topk.New(cfg.HeapK),
		}
	}
	return &Sketch{levels: levels, sampleSeed: seeds[cfg.Levels]}
}

// Restore rebuilds a sketch from serialized state: one decoded Count
// Sketch and heap per level, the sampling seed, and the volume odometer.
// The levels must agree on geometry and heap capacity; hostile payload
// combinations are errors, not panics.
func Restore(css []*sketch.CountSketch, heaps []*topk.Heap, sampleSeed, volume uint64) (*Sketch, error) {
	if len(css) == 0 || len(css) != len(heaps) {
		return nil, fmt.Errorf("univmon: %d sketches for %d heaps", len(css), len(heaps))
	}
	levels := make([]level, len(css))
	for i := range css {
		if css[i].Depth() != css[0].Depth() || css[i].Width() != css[0].Width() {
			return nil, fmt.Errorf("univmon: level %d geometry %d×%d does not match level 0's %d×%d",
				i, css[i].Depth(), css[i].Width(), css[0].Depth(), css[0].Width())
		}
		if heaps[i].Cap() != heaps[0].Cap() {
			return nil, fmt.Errorf("univmon: level %d heap capacity %d does not match level 0's %d",
				i, heaps[i].Cap(), heaps[0].Cap())
		}
		levels[i] = level{cs: css[i], heap: heaps[i]}
	}
	return &Sketch{levels: levels, sampleSeed: sampleSeed, volume: volume}, nil
}

// Levels returns the number of Count Sketch levels.
func (s *Sketch) Levels() int { return len(s.levels) }

// LevelSketch returns level j's Count Sketch for serialization.
func (s *Sketch) LevelSketch(j int) *sketch.CountSketch { return s.levels[j].cs }

// LevelHeap returns level j's heavy-hitter heap for serialization.
func (s *Sketch) LevelHeap(j int) *topk.Heap { return s.levels[j].heap }

// SampleSeed returns the substream-sampling seed for serialization.
func (s *Sketch) SampleSeed() uint64 { return s.sampleSeed }

// sampled reports whether x participates in level j: the j lowest bits of
// its sampling hash must all be one, halving the substream per level.
func (s *Sketch) sampled(x uint64, j int) bool {
	if j == 0 {
		return true
	}
	mask := uint64(1)<<uint(j) - 1
	return hashing.Mix64(x, s.sampleSeed)&mask == mask
}

// SizeBits returns the total footprint of all levels' sketches (heap
// bookkeeping excluded, as in the paper's accounting).
func (s *Sketch) SizeBits() int {
	total := 0
	for i := range s.levels {
		total += s.levels[i].cs.SizeBits()
	}
	return total
}

// Update processes one unit-weight arrival (Cash Register model).
func (s *Sketch) Update(x uint64) { s.UpdateWeighted(x, 1) }

// UpdateWeighted processes ⟨x, v⟩ with v ≥ 1: the whole weight lands on
// every level that samples x, as if v unit arrivals were processed.
func (s *Sketch) UpdateWeighted(x uint64, v int64) {
	if v < 0 {
		panic("univmon: negative update")
	}
	s.volume += uint64(v)
	for j := range s.levels {
		if !s.sampled(x, j) {
			break
		}
		lv := &s.levels[j]
		lv.cs.Update(x, v)
		lv.heap.Offer(x, lv.cs.Query(x))
	}
}

// Volume returns the number of processed updates N.
func (s *Sketch) Volume() uint64 { return s.volume }

// GSum estimates Σ_x G(f_x) using the recursive estimator: the deepest
// level is summed directly over its heavy hitters, and each level j adds
// its own heavy hitters with sampling-correction coefficients 1−2·h_{j+1}.
func (s *Sketch) GSum(g func(float64) float64) float64 {
	last := len(s.levels) - 1
	y := 0.0
	for _, e := range s.levels[last].heap.Items() {
		y += g(clampPos(e.Count))
	}
	for j := last - 1; j >= 0; j-- {
		sum := 0.0
		for _, e := range s.levels[j].heap.Items() {
			coeff := 1.0
			if s.sampled(e.Item, j+1) {
				coeff = -1.0
			}
			sum += coeff * g(clampPos(e.Count))
		}
		y = 2*y + sum
	}
	return y
}

func clampPos(v int64) float64 {
	if v < 0 {
		return 0
	}
	return float64(v)
}

// Entropy estimates the empirical entropy H = log2(N) − (Σ f·log2 f)/N.
func (s *Sketch) Entropy() float64 {
	if s.volume == 0 {
		return 0
	}
	y := s.GSum(func(f float64) float64 {
		if f <= 0 {
			return 0
		}
		return f * math.Log2(f)
	})
	return math.Log2(float64(s.volume)) - y/float64(s.volume)
}

// Moment estimates the frequency moment Fp = Σ f^p for p ≥ 0.
func (s *Sketch) Moment(p float64) float64 {
	if p == 1 {
		// F1 is the volume, known exactly.
		return float64(s.volume)
	}
	return s.GSum(func(f float64) float64 {
		if f <= 0 {
			return 0
		}
		return math.Pow(f, p)
	})
}

// Distinct estimates the number of distinct items F0.
func (s *Sketch) Distinct() float64 {
	return s.GSum(func(f float64) float64 {
		if f <= 0 {
			return 0
		}
		return 1
	})
}

// HeavyHitters returns the level-0 heap contents: the tracked items with
// the largest estimates.
func (s *Sketch) HeavyHitters() []topk.Entry {
	return s.levels[0].heap.Items()
}
