// Package univmon implements the Universal Sketch (UnivMon, Liu et al.
// SIGCOMM 2016): a stack of Count Sketch instances over geometrically
// halving substreams, each paired with a top-k heap, from which any G-sum
// Σ G(f_x) in Stream-PolyLog — entropy, frequency moments, cardinality —
// is estimated with the Braverman–Ostrovsky recursive estimator.
//
// The paper's SALSA UnivMon is this sketch with SALSA Count Sketch rows.
package univmon

import (
	"math"

	"salsa/internal/hashing"
	"salsa/internal/sketch"
	"salsa/internal/topk"
)

// Sketch is a UnivMon instance. Configure with the paper's defaults via
// New: 16 levels, d = 5 rows, heaps of 100.
type Sketch struct {
	levels     []level
	sampleSeed uint64
	volume     uint64
}

type level struct {
	cs   *sketch.CountSketch
	heap *topk.Heap
}

// Config sets the UnivMon geometry.
type Config struct {
	// Levels is the number of CS instances (16 in the paper's setup).
	Levels int
	// Depth and Width shape each Count Sketch (d = 5 in the paper).
	Depth, Width int
	// HeapK is the per-level heavy-hitter heap size (100 in the paper).
	HeapK int
	// Rows picks the CS row type (baseline or SALSA).
	Rows sketch.SignedRowSpec
	// Seed derives every hash seed.
	Seed uint64
}

// New returns an empty UnivMon sketch.
func New(cfg Config) *Sketch {
	if cfg.Levels <= 0 || cfg.HeapK <= 0 {
		panic("univmon: invalid geometry")
	}
	seeds := hashing.Seeds(cfg.Seed, cfg.Levels+1)
	levels := make([]level, cfg.Levels)
	for i := range levels {
		levels[i] = level{
			cs:   sketch.NewCountSketch(cfg.Depth, cfg.Width, cfg.Rows, seeds[i]),
			heap: topk.New(cfg.HeapK),
		}
	}
	return &Sketch{levels: levels, sampleSeed: seeds[cfg.Levels]}
}

// sampled reports whether x participates in level j: the j lowest bits of
// its sampling hash must all be one, halving the substream per level.
func (s *Sketch) sampled(x uint64, j int) bool {
	if j == 0 {
		return true
	}
	mask := uint64(1)<<uint(j) - 1
	return hashing.Mix64(x, s.sampleSeed)&mask == mask
}

// SizeBits returns the total footprint of all levels' sketches (heap
// bookkeeping excluded, as in the paper's accounting).
func (s *Sketch) SizeBits() int {
	total := 0
	for i := range s.levels {
		total += s.levels[i].cs.SizeBits()
	}
	return total
}

// Update processes one unit-weight arrival (Cash Register model).
func (s *Sketch) Update(x uint64) {
	s.volume++
	for j := range s.levels {
		if !s.sampled(x, j) {
			break
		}
		lv := &s.levels[j]
		lv.cs.Update(x, 1)
		lv.heap.Offer(x, lv.cs.Query(x))
	}
}

// Volume returns the number of processed updates N.
func (s *Sketch) Volume() uint64 { return s.volume }

// GSum estimates Σ_x G(f_x) using the recursive estimator: the deepest
// level is summed directly over its heavy hitters, and each level j adds
// its own heavy hitters with sampling-correction coefficients 1−2·h_{j+1}.
func (s *Sketch) GSum(g func(float64) float64) float64 {
	last := len(s.levels) - 1
	y := 0.0
	for _, e := range s.levels[last].heap.Items() {
		y += g(clampPos(e.Count))
	}
	for j := last - 1; j >= 0; j-- {
		sum := 0.0
		for _, e := range s.levels[j].heap.Items() {
			coeff := 1.0
			if s.sampled(e.Item, j+1) {
				coeff = -1.0
			}
			sum += coeff * g(clampPos(e.Count))
		}
		y = 2*y + sum
	}
	return y
}

func clampPos(v int64) float64 {
	if v < 0 {
		return 0
	}
	return float64(v)
}

// Entropy estimates the empirical entropy H = log2(N) − (Σ f·log2 f)/N.
func (s *Sketch) Entropy() float64 {
	if s.volume == 0 {
		return 0
	}
	y := s.GSum(func(f float64) float64 {
		if f <= 0 {
			return 0
		}
		return f * math.Log2(f)
	})
	return math.Log2(float64(s.volume)) - y/float64(s.volume)
}

// Moment estimates the frequency moment Fp = Σ f^p for p ≥ 0.
func (s *Sketch) Moment(p float64) float64 {
	if p == 1 {
		// F1 is the volume, known exactly.
		return float64(s.volume)
	}
	return s.GSum(func(f float64) float64 {
		if f <= 0 {
			return 0
		}
		return math.Pow(f, p)
	})
}

// Distinct estimates the number of distinct items F0.
func (s *Sketch) Distinct() float64 {
	return s.GSum(func(f float64) float64 {
		if f <= 0 {
			return 0
		}
		return 1
	})
}

// HeavyHitters returns the level-0 heap contents: the tracked items with
// the largest estimates.
func (s *Sketch) HeavyHitters() []topk.Entry {
	return s.levels[0].heap.Items()
}
