// Package abc reimplements ABC (Gong et al., IEEE Big Data 2017) as
// described in the SALSA paper's comparison: 8-bit counters where an
// overflowing counter combines with its pair neighbor — at most once — into
// a single counter whose range is 2^13−1, because three of the pair's
// sixteen bits are spent marking the combination. The hard 2^13−1 cap is
// what produces ABC's large heavy-hitter errors (Fig. 9, region B).
//
// The three marker bits are modeled as a per-pair state flag with the
// combined counting range capped at 13 bits exactly as the in-band encoding
// would allow; the memory accounting (SizeBits) charges the full pair width.
package abc

import (
	"fmt"

	"salsa/internal/bitvec"
	"salsa/internal/hashing"
)

const (
	cellMax     = 255       // 8-bit separate counter
	combinedMax = 1<<13 - 1 // 16 bits minus 3 marker bits
)

// Sketch is a d-row ABC Count-Min sketch.
type Sketch struct {
	rows  []row
	seeds []uint64
	mask  uint64
}

type row struct {
	cells    []uint16 // cell value; for a combined pair, held in the even cell
	combined *bitvec.Vector
}

// New returns a d-row ABC sketch with w 8-bit cells per row (w a power of
// two).
func New(d, w int, seed uint64) *Sketch {
	if d <= 0 {
		panic("abc: invalid depth")
	}
	if w <= 0 || w&(w-1) != 0 || w%2 != 0 {
		panic(fmt.Sprintf("abc: width %d must be an even power of two", w))
	}
	rows := make([]row, d)
	for i := range rows {
		rows[i] = row{cells: make([]uint16, w), combined: bitvec.New(w / 2)}
	}
	return &Sketch{
		rows:  rows,
		seeds: hashing.Seeds(seed, d),
		mask:  uint64(w - 1),
	}
}

// Depth returns the number of rows.
func (s *Sketch) Depth() int { return len(s.rows) }

// Width returns the number of 8-bit cells per row.
func (s *Sketch) Width() int { return int(s.mask) + 1 }

// SizeBits returns the footprint in bits: w cells of 8 bits per row (the
// marker bits live inside the pairs, reflected in the 13-bit combined cap).
func (s *Sketch) SizeBits() int {
	return len(s.rows) * (int(s.mask) + 1) * 8
}

// Update processes ⟨x, v⟩ with v ≥ 0 (Cash Register model).
func (s *Sketch) Update(x uint64, v int64) {
	if v < 0 {
		panic("abc: negative update")
	}
	for i := range s.rows {
		s.rows[i].add(int(hashing.Index(x, s.seeds[i], s.mask)), uint64(v))
	}
}

// Query returns the min-over-rows estimate.
func (s *Sketch) Query(x uint64) uint64 {
	est := ^uint64(0)
	for i := range s.rows {
		if v := s.rows[i].value(int(hashing.Index(x, s.seeds[i], s.mask))); v < est {
			est = v
		}
	}
	return est
}

func (r *row) add(slot int, v uint64) {
	pair := slot / 2
	if r.combined.Get(pair) {
		nv := uint64(r.cells[pair*2]) + v
		if nv > combinedMax {
			nv = combinedMax // cannot combine more than once; saturate
		}
		r.cells[pair*2] = uint16(nv)
		return
	}
	nv := uint64(r.cells[slot]) + v
	if nv <= cellMax {
		r.cells[slot] = uint16(nv)
		return
	}
	// Overflow: combine the pair into one counter accounting for both
	// items' totals.
	sibling := slot ^ 1
	total := nv + uint64(r.cells[sibling])
	if total > combinedMax {
		total = combinedMax
	}
	r.cells[slot] = 0
	r.cells[sibling] = 0
	r.cells[pair*2] = uint16(total)
	r.combined.Set(pair)
}

func (r *row) value(slot int) uint64 {
	pair := slot / 2
	if r.combined.Get(pair) {
		return uint64(r.cells[pair*2])
	}
	return uint64(r.cells[slot])
}
