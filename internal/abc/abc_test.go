package abc

import (
	"math/rand"
	"testing"

	"salsa/internal/hashing"
)

func TestABCSmallValuesExact(t *testing.T) {
	s := New(4, 4096, 1)
	s.Update(1, 200)
	if got := s.Query(1); got != 200 {
		t.Fatalf("Query = %d, want 200", got)
	}
	if got := s.Query(2); got != 0 {
		t.Fatalf("absent item = %d", got)
	}
}

func TestABCCombineOnOverflow(t *testing.T) {
	s := New(1, 4096, 1)
	s.Update(1, 300) // needs 9 bits: pair combines
	if got := s.Query(1); got != 300 {
		t.Fatalf("Query = %d, want 300", got)
	}
}

func TestABCCapsAtThirteenBits(t *testing.T) {
	// SALSA paper: starting at 8 bits, ABC counts to at most 2^13−1 because
	// counters cannot combine more than once — its heavy-hitter failure.
	s := New(1, 4096, 1)
	s.Update(1, 100000)
	if got := s.Query(1); got != 1<<13-1 {
		t.Fatalf("Query = %d, want cap 8191", got)
	}
	s.Update(1, 1)
	if got := s.Query(1); got != 1<<13-1 {
		t.Fatal("saturated counter moved")
	}
}

func TestABCCombinedPairSharesValue(t *testing.T) {
	// Once a pair combines, both slots answer with the combined total.
	s := New(1, 1024, 5)
	var a, b uint64
	slotOf := func(x uint64) int { return int(hashing.Index(x, s.seeds[0], s.mask)) }
	a = 1
	for x := uint64(2); ; x++ {
		if slotOf(x) == slotOf(a)^1 && slotOf(a)%2 == 0 {
			b = x
			break
		}
		if x > 1<<20 {
			t.Skip("no sibling pair found")
		}
	}
	s.Update(a, 100)
	s.Update(b, 200)
	s.Update(a, 200) // a reaches 300: combine; total = 300+200
	if got := s.Query(a); got != 500 {
		t.Fatalf("Query(a) = %d, want 500", got)
	}
	if got := s.Query(b); got != 500 {
		t.Fatalf("Query(b) = %d, want 500", got)
	}
}

func TestABCOverestimates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := New(4, 512, 9)
	truth := map[uint64]uint64{}
	for i := 0; i < 40000; i++ {
		x := uint64(rng.Intn(800))
		s.Update(x, 1)
		truth[x]++
	}
	for x, f := range truth {
		if f >= 1<<13 {
			continue // beyond ABC's counting range by design
		}
		if est := s.Query(x); est < f {
			t.Fatalf("item %d: %d < truth %d", x, est, f)
		}
	}
}

func TestABCSizeBits(t *testing.T) {
	s := New(4, 512, 1)
	if s.SizeBits() != 4*512*8 {
		t.Fatalf("SizeBits = %d", s.SizeBits())
	}
}

func TestABCValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 8, 1) },
		func() { New(1, 100, 1) },
		func() { New(1, 8, 1).Update(1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
