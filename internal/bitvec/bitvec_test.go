package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d, want 130", v.Len())
	}
	for i := 0; i < 130; i++ {
		if v.Get(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
	}
	for i := 0; i < 130; i += 3 {
		v.Set(i)
	}
	for i := 0; i < 130; i++ {
		want := i%3 == 0
		if v.Get(i) != want {
			t.Fatalf("bit %d = %v, want %v", i, v.Get(i), want)
		}
	}
	for i := 0; i < 130; i += 3 {
		v.Clear(i)
	}
	if v.OnesCount() != 0 {
		t.Fatalf("OnesCount = %d after clearing all", v.OnesCount())
	}
}

func TestSetTo(t *testing.T) {
	v := New(64)
	v.SetTo(5, true)
	if !v.Get(5) {
		t.Fatal("SetTo(5,true) did not set")
	}
	v.SetTo(5, false)
	if v.Get(5) {
		t.Fatal("SetTo(5,false) did not clear")
	}
}

func TestOnesCount(t *testing.T) {
	v := New(200)
	set := map[int]bool{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		k := rng.Intn(200)
		set[k] = true
		v.Set(k)
	}
	if got := v.OnesCount(); got != len(set) {
		t.Fatalf("OnesCount = %d, want %d", got, len(set))
	}
}

func TestWordBoundary(t *testing.T) {
	v := New(128)
	v.Set(63)
	v.Set(64)
	if !v.Get(63) || !v.Get(64) {
		t.Fatal("bits across word boundary not independent")
	}
	v.Clear(63)
	if v.Get(63) || !v.Get(64) {
		t.Fatal("clearing 63 affected 64")
	}
}

func TestOrCloneEqual(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Set(1)
	a.Set(99)
	b.Set(50)
	c := a.Clone()
	if !c.Equal(a) {
		t.Fatal("clone not equal to source")
	}
	a.Or(b)
	if !a.Get(1) || !a.Get(50) || !a.Get(99) {
		t.Fatal("Or missing bits")
	}
	if c.Get(50) {
		t.Fatal("Or mutated the clone")
	}
	if c.Equal(a) {
		t.Fatal("Equal true for different vectors")
	}
}

func TestReset(t *testing.T) {
	v := New(70)
	for i := 0; i < 70; i++ {
		v.Set(i)
	}
	v.Reset()
	if v.OnesCount() != 0 {
		t.Fatal("Reset left bits set")
	}
}

func TestOrLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Or with mismatched lengths did not panic")
		}
	}()
	New(10).Or(New(20))
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

// Property: a vector behaves like a set of integers.
func TestQuickSetSemantics(t *testing.T) {
	f := func(ops []uint16) bool {
		const n = 512
		v := New(n)
		ref := map[int]bool{}
		for _, op := range ops {
			i := int(op) % n
			if op&0x8000 != 0 {
				v.Clear(i)
				delete(ref, i)
			} else {
				v.Set(i)
				ref[i] = true
			}
		}
		if v.OnesCount() != len(ref) {
			return false
		}
		for i := 0; i < n; i++ {
			if v.Get(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
