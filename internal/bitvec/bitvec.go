// Package bitvec provides a fixed-size bit vector used as the backing store
// for SALSA merge bits and other per-counter flags.
package bitvec

import "math/bits"

// Vector is a fixed-length sequence of bits packed into 64-bit words.
// The zero value is an empty vector; use New to allocate capacity.
type Vector struct {
	words []uint64
	n     int
}

// New returns a Vector with n bits, all zero.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{words: make([]uint64, (n+63)/64), n: n}
}

// WordsFor returns the number of backing words an n-bit vector needs.
func WordsFor(n int) int { return (n + 63) / 64 }

// NewIn returns a Vector of n bits backed by the caller-provided words,
// which must hold exactly WordsFor(n) zeroed words. It lets several vectors
// (and their owning counter arrays) share one contiguous allocation.
func NewIn(n int, words []uint64) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	if len(words) != WordsFor(n) {
		panic("bitvec: backing storage length mismatch")
	}
	return &Vector{words: words, n: n}
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Words exposes the backing words for performance-critical readers that
// cannot afford a call per probe; treat as read-only.
//
//salsa:hotpath
func (v *Vector) Words() []uint64 { return v.words }

// Get reports whether bit i is set.
//
//salsa:hotpath
func (v *Vector) Get(i int) bool {
	return v.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i to 1.
//
//salsa:hotpath
func (v *Vector) Set(i int) {
	v.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear sets bit i to 0.
func (v *Vector) Clear(i int) {
	v.words[i>>6] &^= 1 << (uint(i) & 63)
}

// SetTo sets bit i to b.
func (v *Vector) SetTo(i int, b bool) {
	if b {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

// OnesCount returns the number of set bits.
func (v *Vector) OnesCount() int {
	total := 0
	for _, w := range v.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Reset clears all bits.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Or sets v to the bitwise OR of v and other. The vectors must have the same
// length.
func (v *Vector) Or(other *Vector) {
	if v.n != other.n {
		panic("bitvec: length mismatch")
	}
	for i, w := range other.words {
		v.words[i] |= w
	}
}

// Clone returns a deep copy of the vector.
func (v *Vector) Clone() *Vector {
	c := &Vector{words: make([]uint64, len(v.words)), n: v.n}
	copy(c.words, v.words)
	return c
}

// Equal reports whether v and other hold identical bits.
func (v *Vector) Equal(other *Vector) bool {
	if v.n != other.n {
		return false
	}
	for i, w := range v.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}
