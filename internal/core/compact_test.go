package core

import (
	"math/rand"
	"testing"
)

func TestLayoutCountsRecurrence(t *testing.T) {
	// aₙ = aₙ₋₁² + 1 with a₀ = 1 (Appendix A).
	for n := 1; n < len(layoutCounts); n++ {
		want := layoutCounts[n-1]*layoutCounts[n-1] + 1
		if layoutCounts[n] != want {
			t.Fatalf("a_%d = %d, want %d", n, layoutCounts[n], want)
		}
	}
	// The appendix's concrete values.
	if layoutCounts[2] != 5 || layoutCounts[5] != 458330 {
		t.Fatal("layout counts disagree with the paper")
	}
}

func TestGroupEncodingBits(t *testing.T) {
	// zₙ = ⌈log₂ aₙ⌉; the appendix's headline numbers are z₅ = 19 giving
	// 19/32 < 0.594 bits per counter.
	for n := 1; n < len(layoutCounts); n++ {
		z := groupEncodingBits[n]
		if uint64(1)<<z < layoutCounts[n] {
			t.Fatalf("z_%d = %d too small for a_%d = %d", n, z, n, layoutCounts[n])
		}
		if z > 0 && uint64(1)<<(z-1) >= layoutCounts[n] {
			t.Fatalf("z_%d = %d not tight", n, z)
		}
	}
	if groupEncodingBits[5] != 19 {
		t.Fatal("z_5 should be 19")
	}
	if got := float64(groupEncodingBits[5]) / 32; got >= 0.594 {
		t.Fatalf("overhead %f per counter, want < 0.594", got)
	}
}

// randomLayoutLevels builds a random valid SALSA layout for a block of 2^n
// slots: each block is merged whole with probability p, otherwise its halves
// are laid out recursively.
func randomLayoutLevels(rng *rand.Rand, levels []uint, base int, n uint, maxLvl uint) {
	if n > 0 && n <= maxLvl && rng.Float64() < 0.3 {
		for j := base; j < base+1<<n; j++ {
			levels[j] = n
		}
		return
	}
	if n == 0 {
		levels[base] = 0
		return
	}
	randomLayoutLevels(rng, levels, base, n-1, maxLvl)
	randomLayoutLevels(rng, levels, base+1<<(n-1), n-1, maxLvl)
}

func TestCompactEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 200; trial++ {
		lay := newCompactLayout(32, 3)
		levels := make([]uint, 32)
		randomLayoutLevels(rng, levels, 0, 5, 3)
		// Apply the layout through mergeTo, coarsest blocks first is not
		// required: mergeTo rewrites the group from decoded levels.
		for i := 0; i < 32; {
			if levels[i] > 0 {
				lay.mergeTo(i, levels[i])
			}
			i += 1 << levels[i]
		}
		for i := 0; i < 32; i++ {
			if lay.level(i) != levels[i] {
				t.Fatalf("trial %d slot %d: level %d, want %d", trial, i, lay.level(i), levels[i])
			}
		}
	}
}

func TestCompactSplitMatchesBitLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	bit := newBitLayout(64, 3)
	cmp := newCompactLayout(64, 3)
	for op := 0; op < 2000; op++ {
		i := rng.Intn(64)
		lvl := bit.level(i)
		if lvl < 3 && rng.Intn(3) > 0 {
			bit.mergeTo(i, lvl+1)
			cmp.mergeTo(i, lvl+1)
		} else if lvl > 0 {
			bit.split(i, lvl)
			cmp.split(i, lvl)
		}
		for j := 0; j < 64; j++ {
			if bit.level(j) != cmp.level(j) {
				t.Fatalf("op %d slot %d: bit layout %d, compact %d", op, j, bit.level(j), cmp.level(j))
			}
		}
	}
}

func TestCompactClone(t *testing.T) {
	lay := newCompactLayout(32, 3)
	lay.mergeTo(0, 2)
	c := lay.clone().(*compactLayout)
	c.mergeTo(8, 3)
	if lay.level(8) != 0 {
		t.Fatal("clone shares storage with original")
	}
	if c.level(0) != 2 || c.level(8) != 3 {
		t.Fatal("clone lost state")
	}
}

func TestCompactWidthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for width not a multiple of the group size")
		}
	}()
	newCompactLayout(48, 3)
}

func TestBitLayoutClone(t *testing.T) {
	lay := newBitLayout(32, 3)
	lay.mergeTo(4, 1)
	c := lay.clone().(*bitLayout)
	c.mergeTo(8, 1)
	if lay.level(8) != 0 {
		t.Fatal("clone shares storage with original")
	}
}

func TestSplitBaseCounterPanics(t *testing.T) {
	for _, lay := range []layout{newBitLayout(32, 3), newCompactLayout(32, 3)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("split(level 0) did not panic")
				}
			}()
			lay.split(0, 0)
		}()
	}
}
