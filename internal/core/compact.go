package core

import "fmt"

// layoutCounts[n] is aₙ, the number of possible SALSA layouts of a block of
// 2^n base counters: a₀ = 1, aₙ = aₙ₋₁² + 1 (Appendix A). a₅ = 458330 and
// a₆ = 210066388901 both fit comfortably in a uint64.
var layoutCounts = [7]uint64{1, 2, 5, 26, 677, 458330, 210066388901}

// groupEncodingBits[n] is zₙ = ⌈log₂ aₙ⌉, the bits needed to encode one
// group of 2^n counters. z₅/2⁵ = 19/32 ≈ 0.594 bits per counter.
var groupEncodingBits = [7]uint{0, 1, 3, 5, 10, 19, 38}

// compactLayout is the near-optimal merge encoding of Appendix A: the layout
// of each group of 2^g counters (g = max(5, maxLvl)) is a number
// X ∈ [0, a_g) packed into z_g bits. X = a_g−1 means the whole group is one
// counter; otherwise ⌊X/a_{g−1}⌋ encodes the left half and X mod a_{g−1}
// the right half, recursively.
type compactLayout struct {
	words    []uint64
	width    int
	maxLvl   uint
	groupLog uint
	nGroups  int
}

func newCompactLayout(width int, maxLvl uint) *compactLayout {
	groupLog := uint(5)
	if maxLvl > groupLog {
		groupLog = maxLvl
	}
	groupSize := 1 << groupLog
	if width%groupSize != 0 {
		panic(fmt.Sprintf("core: compact encoding needs width to be a multiple of %d, got %d", groupSize, width))
	}
	nGroups := width / groupSize
	totalBits := uint(nGroups) * groupEncodingBits[groupLog]
	return &compactLayout{
		words:    make([]uint64, (totalBits+63)/64),
		width:    width,
		maxLvl:   maxLvl,
		groupLog: groupLog,
		nGroups:  nGroups,
	}
}

//salsa:hotpath
func (l *compactLayout) groupX(g int) uint64 {
	zbits := groupEncodingBits[l.groupLog]
	return readSpan(l.words, uint(g)*zbits, zbits)
}

func (l *compactLayout) setGroupX(g int, x uint64) {
	zbits := groupEncodingBits[l.groupLog]
	writeSpan(l.words, uint(g)*zbits, zbits, x)
}

//salsa:hotpath
func (l *compactLayout) level(i int) uint {
	g := i >> l.groupLog
	x := l.groupX(g)
	idx := i & (1<<l.groupLog - 1)
	n := l.groupLog
	for n > 0 {
		if x == layoutCounts[n]-1 {
			return n
		}
		half := layoutCounts[n-1]
		if idx < 1<<(n-1) {
			x = x / half
		} else {
			x = x % half
			idx -= 1 << (n - 1)
		}
		n--
	}
	return 0
}

func (l *compactLayout) mergeTo(i int, lvl uint) {
	if lvl > l.maxLvl {
		panic("core: merge beyond maximum level")
	}
	l.setBlockLevel(i, lvl, lvl)
}

func (l *compactLayout) split(i int, lvl uint) {
	if lvl == 0 {
		panic("core: cannot split a base counter")
	}
	l.setBlockLevel(i, lvl, lvl-1)
}

// setBlockLevel rewrites the group containing i so that the 2^blockLvl-
// aligned block containing i consists of counters of level newLvl.
func (l *compactLayout) setBlockLevel(i int, blockLvl, newLvl uint) {
	g := i >> l.groupLog
	groupSize := 1 << l.groupLog
	base := g << l.groupLog

	levels := make([]uint, groupSize)
	for j := 0; j < groupSize; j++ {
		levels[j] = l.level(base + j)
	}
	start := i&^(1<<blockLvl-1) - base
	for j := start; j < start+1<<blockLvl; j++ {
		levels[j] = newLvl
	}
	l.setGroupX(g, encodeLevels(levels, 0, l.groupLog))
}

// encodeLevels encodes the layout of the 2^n-slot block of levels starting
// at base, inverting the decode walk of level().
func encodeLevels(levels []uint, base int, n uint) uint64 {
	if n == 0 {
		return 0
	}
	if levels[base] >= n {
		return layoutCounts[n] - 1
	}
	left := encodeLevels(levels, base, n-1)
	right := encodeLevels(levels, base+1<<(n-1), n-1)
	return left*layoutCounts[n-1] + right
}

func (l *compactLayout) overheadBits() int {
	return l.nGroups * int(groupEncodingBits[l.groupLog])
}

func (l *compactLayout) clone() layout {
	c := *l
	c.words = make([]uint64, len(l.words))
	copy(c.words, l.words)
	return &c
}

// reset restores the all-unmerged state: X = 0 encodes level 0 everywhere.
func (l *compactLayout) reset() {
	for i := range l.words {
		l.words[i] = 0
	}
}
