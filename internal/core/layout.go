package core

import "salsa/internal/bitvec"

// A layout tracks which counters of a SALSA array have merged. SALSA merges
// are hierarchical: a level-ℓ counter occupies the 2^ℓ base slots of a
// 2^ℓ-aligned block, and all interior merge state of the block is set.
//
// Two implementations exist: bitLayout, the paper's simple one-bit-per-
// counter encoding (§IV), and compactLayout, the near-optimal encoding of
// Appendix A at 19 bits per 32 counters (< 0.594 bits per counter).
type layout interface {
	// level returns the merge level of the counter containing base slot i:
	// 0 for an unmerged s-bit counter, ℓ for an s·2^ℓ-bit counter.
	level(i int) uint
	// mergeTo records that the 2^lvl-aligned block containing slot i is now
	// a single level-lvl counter (marking all interior merges).
	mergeTo(i int, lvl uint)
	// split undoes the top merge of the level-lvl counter containing slot i,
	// leaving two level-(lvl−1) counters. Used by AEE counter splitting.
	split(i int, lvl uint)
	// overheadBits returns the encoding overhead in bits.
	overheadBits() int
	// clone returns a deep copy.
	clone() layout
	// reset restores the pristine all-unmerged state.
	reset()
}

// bitLayout is the simple SALSA encoding: merge bit m[i] per base counter.
// Block ⟨b, …, b+2^ℓ−1⟩ being merged into one counter is recorded by setting
// m[b + 2^(ℓ−1) − 1]; the invariant that interior merges are also recorded
// lets level() probe exactly one bit per level.
type bitLayout struct {
	bits   *bitvec.Vector
	maxLvl uint
}

func newBitLayout(width int, maxLvl uint) *bitLayout {
	return &bitLayout{bits: bitvec.New(width), maxLvl: maxLvl}
}

// newBitLayoutIn is newBitLayout over caller-provided (zeroed) backing words;
// the arena row constructors use it to co-locate a row's merge bits with its
// counter words.
func newBitLayoutIn(width int, maxLvl uint, words []uint64) *bitLayout {
	return &bitLayout{bits: bitvec.NewIn(width, words), maxLvl: maxLvl}
}

//salsa:hotpath
func (l *bitLayout) level(i int) uint {
	lvl := uint(0)
	for lvl < l.maxLvl {
		blockStart := i &^ (1<<(lvl+1) - 1)
		if !l.bits.Get(blockStart + 1<<lvl - 1) {
			break
		}
		lvl++
	}
	return lvl
}

//salsa:hotpath
func (l *bitLayout) mergeTo(i int, lvl uint) {
	if lvl > l.maxLvl {
		panic("core: merge beyond maximum level")
	}
	start := i &^ (1<<lvl - 1)
	// Mark every interior merge of the block, level by level. Re-marking
	// already-merged sub-blocks is harmless and keeps this simple; merges
	// are rare relative to updates.
	for lev := uint(1); lev <= lvl; lev++ {
		step := 1 << lev
		for b := start; b < start+1<<lvl; b += step {
			l.bits.Set(b + step/2 - 1)
		}
	}
}

func (l *bitLayout) split(i int, lvl uint) {
	if lvl == 0 {
		panic("core: cannot split a base counter")
	}
	start := i &^ (1<<lvl - 1)
	l.bits.Clear(start + 1<<(lvl-1) - 1)
}

func (l *bitLayout) overheadBits() int { return l.bits.Len() }

func (l *bitLayout) clone() layout {
	return &bitLayout{bits: l.bits.Clone(), maxLvl: l.maxLvl}
}

func (l *bitLayout) reset() { l.bits.Reset() }
