package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxValue(t *testing.T) {
	cases := map[uint]uint64{
		1:  1,
		2:  3,
		8:  255,
		16: 65535,
		32: 1<<32 - 1,
		64: ^uint64(0),
	}
	for bits, want := range cases {
		if got := maxValue(bits); got != want {
			t.Errorf("maxValue(%d) = %d, want %d", bits, got, want)
		}
	}
}

func TestSatAdd(t *testing.T) {
	if satAdd(1, 2) != 3 {
		t.Fatal("satAdd(1,2)")
	}
	if satAdd(^uint64(0), 1) != ^uint64(0) {
		t.Fatal("satAdd did not saturate")
	}
	if satAdd(^uint64(0)-5, 100) != ^uint64(0) {
		t.Fatal("satAdd did not saturate on partial overflow")
	}
}

func TestSatAddSigned(t *testing.T) {
	if satAddSigned(1, -2) != -1 {
		t.Fatal("satAddSigned(1,-2)")
	}
	max := int64(1<<63 - 1)
	if satAddSigned(max, max) != max {
		t.Fatal("positive saturation")
	}
	if satAddSigned(-max, -max) != -max {
		t.Fatal("negative saturation")
	}
}

func TestAlignedReadWriteRoundTrip(t *testing.T) {
	words := make([]uint64, 4)
	for _, size := range []uint{1, 2, 4, 8, 16, 32, 64} {
		for i := range words {
			words[i] = 0
		}
		n := uint(256) / size
		rng := rand.New(rand.NewSource(int64(size)))
		vals := make([]uint64, n)
		for i := uint(0); i < n; i++ {
			vals[i] = rng.Uint64() & maxValue(size)
			writeAligned(words, i*size, size, vals[i])
		}
		for i := uint(0); i < n; i++ {
			if got := readAligned(words, i*size, size); got != vals[i] {
				t.Fatalf("size %d field %d: got %d, want %d", size, i, got, vals[i])
			}
		}
	}
}

func TestWriteAlignedMasksValue(t *testing.T) {
	words := make([]uint64, 1)
	writeAligned(words, 8, 8, 0xfff) // wider than the field
	if got := readAligned(words, 8, 8); got != 0xff {
		t.Fatalf("got %#x, want 0xff", got)
	}
	if got := readAligned(words, 0, 8); got != 0 {
		t.Fatalf("neighbor field clobbered: %#x", got)
	}
	if got := readAligned(words, 16, 8); got != 0 {
		t.Fatalf("neighbor field clobbered: %#x", got)
	}
}

func TestSpanReadWriteCrossesWords(t *testing.T) {
	words := make([]uint64, 3)
	// A 24-bit field straddling the first word boundary.
	writeSpan(words, 56, 24, 0xabcdef)
	if got := readSpan(words, 56, 24); got != 0xabcdef {
		t.Fatalf("got %#x", got)
	}
	// Neighbors untouched.
	if got := readSpan(words, 0, 56); got != 0 {
		t.Fatalf("low bits clobbered: %#x", got)
	}
	if got := readSpan(words, 80, 48); got != 0 {
		t.Fatalf("high bits clobbered: %#x", got)
	}
}

func TestQuickSpanRoundTrip(t *testing.T) {
	f := func(off16 uint16, n8 uint8, v uint64) bool {
		off := uint(off16) % 128
		n := uint(n8)%64 + 1
		words := make([]uint64, 4)
		writeSpan(words, off, n, v)
		want := v
		if n < 64 {
			want &= (uint64(1) << n) - 1
		}
		return readSpan(words, off, n) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSpanPreservesNeighbors(t *testing.T) {
	f := func(off16 uint16, n8 uint8, v, bg uint64) bool {
		off := uint(off16) % 128
		n := uint(n8)%64 + 1
		words := []uint64{bg, bg, bg, bg}
		before := append([]uint64(nil), words...)
		writeSpan(words, off, n, v)
		// Re-zero the written field and compare against the original with
		// the same field zeroed.
		writeSpan(words, off, n, 0)
		writeSpan(before, off, n, 0)
		for i := range words {
			if words[i] != before[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroSpanLong(t *testing.T) {
	words := []uint64{^uint64(0), ^uint64(0), ^uint64(0)}
	zeroSpan(words, 10, 150)
	for i := uint(0); i < 192; i++ {
		inRange := i >= 10 && i < 160
		got := readSpan(words, i, 1)
		if inRange && got != 0 {
			t.Fatalf("bit %d not zeroed", i)
		}
		if !inRange && got != 1 {
			t.Fatalf("bit %d clobbered", i)
		}
	}
}

func TestBinomialHalfBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := rng.Uint64
	for _, c := range []uint64{0, 1, 2, 63, 64, 65, 1000, 4096, 5000, 1 << 20} {
		for trial := 0; trial < 20; trial++ {
			got := binomialHalf(c, src)
			if got > c {
				t.Fatalf("binomialHalf(%d) = %d > c", c, got)
			}
		}
	}
	if binomialHalf(0, src) != 0 {
		t.Fatal("binomialHalf(0) != 0")
	}
}

func TestBinomialHalfMean(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := rng.Uint64
	const c = 1000
	const trials = 2000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += float64(binomialHalf(c, src))
	}
	mean := sum / trials
	// sd of the mean ≈ sqrt(c/4)/sqrt(trials) ≈ 0.35; allow 6 sigma.
	if mean < c/2-3 || mean > c/2+3 {
		t.Fatalf("mean = %f, want ≈ %d", mean, c/2)
	}
}

func TestSignExtend(t *testing.T) {
	if signExtend(0xff, 8) != -1 {
		t.Fatal("0xff as 8-bit should be -1")
	}
	if signExtend(0x7f, 8) != 127 {
		t.Fatal("0x7f as 8-bit should be 127")
	}
	if signExtend(0x80, 8) != -128 {
		t.Fatal("0x80 as 8-bit should be -128")
	}
}
