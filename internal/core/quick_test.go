package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuickSalsaSumInvariant(t *testing.T) {
	// Property: for any sequence of positive adds, every counter holds
	// exactly the sum of the updates to its slot range (Theorem V.1's
	// invariant).
	f := func(slots []uint16, values []uint16, compact bool) bool {
		const w = 128
		c := NewSalsa(w, 8, SumMerge, compact)
		sums := make([]uint64, w)
		n := len(slots)
		if len(values) < n {
			n = len(values)
		}
		for i := 0; i < n; i++ {
			slot := int(slots[i]) % w
			v := int64(values[i])
			c.Add(slot, v)
			sums[slot] += uint64(v)
		}
		for i := 0; i < w; i++ {
			start, count := c.CounterRange(i)
			var want uint64
			for j := start; j < start+count; j++ {
				want += sums[j]
			}
			if c.Value(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSalsaMaxBounds(t *testing.T) {
	// Property: max-merge values stay within [max slot total, range total].
	f := func(slots []uint16, values []uint8) bool {
		const w = 64
		c := NewSalsa(w, 8, MaxMerge, false)
		sums := make([]uint64, w)
		n := len(slots)
		if len(values) < n {
			n = len(values)
		}
		for i := 0; i < n; i++ {
			slot := int(slots[i]) % w
			c.Add(slot, int64(values[i]))
			sums[slot] += uint64(values[i])
		}
		for i := 0; i < w; i++ {
			start, count := c.CounterRange(i)
			var total, max uint64
			for j := start; j < start+count; j++ {
				total += sums[j]
				if sums[j] > max {
					max = sums[j]
				}
			}
			if v := c.Value(i); v < max || v > total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSignedSumInvariant(t *testing.T) {
	// Property: signed counters hold exactly the signed totals.
	f := func(slots []uint16, values []int16) bool {
		const w = 64
		c := NewSalsaSign(w, 8, false)
		sums := make([]int64, w)
		n := len(slots)
		if len(values) < n {
			n = len(values)
		}
		for i := 0; i < n; i++ {
			slot := int(slots[i]) % w
			c.Add(slot, int64(values[i]))
			sums[slot] += int64(values[i])
		}
		ok := true
		c.Counters(func(start int, lvl uint, val int64) bool {
			var want int64
			for j := start; j < start+1<<lvl; j++ {
				want += sums[j]
			}
			if val != want {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTangoContainment(t *testing.T) {
	// Property: Tango spans stay inside SALSA ranges and Tango estimates
	// never exceed SALSA's (§IV) for the same update sequence.
	f := func(slots []uint16, values []uint16) bool {
		const w = 64
		tg := NewTango(w, 8, SumMerge)
		sa := NewSalsa(w, 8, SumMerge, false)
		n := len(slots)
		if len(values) < n {
			n = len(values)
		}
		for i := 0; i < n; i++ {
			slot := int(slots[i]) % w
			v := int64(values[i])
			tg.Add(slot, v)
			sa.Add(slot, v)
		}
		for i := 0; i < w; i++ {
			lo, hi := tg.Span(i)
			start, count := sa.CounterRange(i)
			if lo < start || hi >= start+count {
				return false
			}
			if tg.Value(i) > sa.Value(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMarshalRoundTrip(t *testing.T) {
	// Property: marshal→unmarshal is the identity on observable state.
	f := func(slots []uint16, values []uint16, compact bool) bool {
		const w = 64
		c := NewSalsa(w, 8, MaxMerge, compact)
		n := len(slots)
		if len(values) < n {
			n = len(values)
		}
		for i := 0; i < n; i++ {
			c.Add(int(slots[i])%w, int64(values[i]))
		}
		data, err := c.MarshalBinary()
		if err != nil {
			return false
		}
		g, err := UnmarshalSalsa(data)
		if err != nil {
			return false
		}
		for i := 0; i < w; i++ {
			if g.Value(i) != c.Value(i) || g.Level(i) != c.Level(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnmarshalNeverPanics(t *testing.T) {
	// Property: arbitrary bytes are rejected gracefully, never a panic.
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = UnmarshalSalsa(data)
		_, _ = UnmarshalSalsaSign(data)
		_, _ = UnmarshalFixed(data)
		_, _ = UnmarshalFixedSign(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHalveNeverGrows(t *testing.T) {
	// Property: downsampling never increases any counter, with or without
	// splitting.
	f := func(slots []uint16, values []uint16, split bool, probabilistic bool) bool {
		const w = 64
		c := NewSalsa(w, 8, MaxMerge, false)
		n := len(slots)
		if len(values) < n {
			n = len(values)
		}
		for i := 0; i < n; i++ {
			c.Add(int(slots[i])%w, int64(values[i]))
		}
		before := make([]uint64, w)
		for i := range before {
			before[i] = c.Value(i)
		}
		rng := rand.New(rand.NewSource(1))
		c.Halve(probabilistic, rng.Uint64, split)
		for i := 0; i < w; i++ {
			if c.Value(i) > before[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
