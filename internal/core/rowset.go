package core

import "salsa/internal/hashing"

// Monomorphic row-set operations: the whole d-row per-item hot path of a
// sketch in one call. The sketches' single-item Update/Query used to pay,
// per item, d interface dispatches plus d hash-call boundaries; the XxxEach
// functions below take the concrete row slice, hash inline (hashing.Index
// is inlinable), and run the branchless single-word merge-bit probe of the
// single-item fast paths (fast.go) with everything in registers — one
// function-call boundary per item for the whole sketch.
//
// The probe/update bodies deliberately repeat the AddFast/ValueFast/
// SetAtLeastFast logic instead of calling them: those methods exceed the
// inline budget, and a call per row is exactly the cost this file exists to
// remove. Every body must stay bit-for-bit equivalent to the corresponding
// general method; merged or overflowing slots fall back to it outright.

// probeLevel8 returns the merge level of base slot u for 8-bit rows
// (maxLvl = 3) given the slot's merge-bit word. The three probe bits are
// independent shifts of wbits, so unlike the fastLevel loop there is no
// loop-carried dependency and no data-dependent branch: the counter address
// is ready a few cycles after the merge-bit word arrives. tₗ is the AND of
// the path bits through level ℓ+1, exactly as the loop computes it.
//
//salsa:hotpath
func probeLevel8(wbits uint64, u uint) uint {
	t0 := uint(wbits>>((u&^1)&63)) & 1
	t1 := t0 & uint(wbits>>(((u&^3)+1)&63)) & 1
	t2 := t1 & uint(wbits>>(((u&^7)+3)&63)) & 1
	return t0 + t1 + t2
}

// SalsaUpdateEach applies the stream update ⟨x, v⟩ to every row: row i adds
// v at slot Index(x, seeds[i], mask). Equivalent to calling rows[i].Add on
// each row in order.
//
//salsa:hotpath
func SalsaUpdateEach(rows []*Salsa, seeds []uint64, mask, x uint64, v int64) {
	if v >= 0 && len(rows) > 0 && rows[0].s == 8 {
		salsaUpdateEach8(rows, seeds, mask, x, v)
		return
	}
	if v < 0 {
		for i, r := range rows {
			r.Add(int(hashing.Index(x, seeds[i], mask)), v)
		}
		return
	}
	for i, r := range rows {
		u := uint(hashing.Index(x, seeds[i], mask))
		bl := r.blWords
		if bl == nil {
			r.Add(int(u), v) // compact encoding: general path
			continue
		}
		wbits := bl[u>>6]
		sb, maxLvl := r.s, r.maxLvl
		lvl, t := uint(0), uint(1)
		for l := uint(0); l < maxLvl; l++ {
			pos := u&^(1<<(l+1)-1) + 1<<l - 1
			t &= uint(wbits>>(pos&63)) & 1
			lvl += t
		}
		size := sb << lvl
		off := (u &^ (1<<lvl - 1)) * sb
		w, sh := off>>6, off&63
		if size == 64 {
			r.words[w] = satAdd(r.words[w], uint64(v))
			continue
		}
		cmask := (uint64(1) << size) - 1
		if nv := (r.words[w]>>sh)&cmask + uint64(v); nv <= cmask {
			r.words[w] = r.words[w]&^(cmask<<sh) | nv<<sh
		} else {
			r.Add(int(u), v) // overflow: merge via the general path
		}
	}
}

// salsaUpdateEach8 is SalsaUpdateEach specialized to the default 8-bit rows
// via the parallel probe; rows that are not simple-encoding 8-bit fall back
// to the general Add.
//
//salsa:hotpath
func salsaUpdateEach8(rows []*Salsa, seeds []uint64, mask, x uint64, v int64) {
	for i, r := range rows {
		u := uint(hashing.Index(x, seeds[i], mask))
		bl := r.blWords
		if bl == nil || r.s != 8 {
			r.Add(int(u), v)
			continue
		}
		lvl := probeLevel8(bl[u>>6], u)
		off := (u &^ (1<<lvl - 1)) << 3
		w, sh := off>>6, off&63
		if lvl == 3 {
			r.words[w] = satAdd(r.words[w], uint64(v))
			continue
		}
		cmask := (uint64(1) << (8 << lvl)) - 1
		if nv := (r.words[w]>>sh)&cmask + uint64(v); nv <= cmask {
			r.words[w] = r.words[w]&^(cmask<<sh) | nv<<sh
		} else {
			r.Add(int(u), v) // overflow: merge via the general path
		}
	}
}

// SalsaMinEach returns the minimum over rows of the counter value at
// slots[i] — the CMS estimate over pre-hashed slots.
//
//salsa:hotpath
func SalsaMinEach(rows []*Salsa, slots []uint32) uint64 {
	if len(rows) > 0 && rows[0].s == 8 {
		return salsaMinEach8(rows, slots)
	}
	est := ^uint64(0)
	for i, r := range rows {
		u := uint(slots[i])
		var v uint64
		if bl := r.blWords; bl != nil {
			wbits := bl[u>>6]
			lvl, t := uint(0), uint(1)
			for l := uint(0); l < r.maxLvl; l++ {
				pos := u&^(1<<(l+1)-1) + 1<<l - 1
				t &= uint(wbits>>(pos&63)) & 1
				lvl += t
			}
			size := r.s << lvl
			off := (u &^ (1<<lvl - 1)) * r.s
			w, sh := off>>6, off&63
			if size == 64 {
				v = r.words[w]
			} else {
				v = (r.words[w] >> sh) & ((uint64(1) << size) - 1)
			}
		} else {
			v = r.Value(int(u))
		}
		if v < est {
			est = v
		}
	}
	return est
}

// salsaMinEach8 is SalsaMinEach specialized to 8-bit rows via the parallel
// probe.
//
//salsa:hotpath
func salsaMinEach8(rows []*Salsa, slots []uint32) uint64 {
	est := ^uint64(0)
	for i, r := range rows {
		u := uint(slots[i])
		bl := r.blWords
		if bl == nil || r.s != 8 {
			if v := r.Value(int(u)); v < est {
				est = v
			}
			continue
		}
		lvl := probeLevel8(bl[u>>6], u)
		off := (u &^ (1<<lvl - 1)) << 3
		v := r.words[off>>6]
		if lvl != 3 {
			v = (v >> (off & 63)) & ((uint64(1) << (8 << lvl)) - 1)
		}
		if v < est {
			est = v
		}
	}
	return est
}

// SalsaQueryEach returns the CMS estimate min over rows of the counter at
// Index(x, seeds[i], mask), hashing inline — the whole point query in one
// call, with no slot scratch (conservative updates, which reuse their
// hashes for the raise pass, go through SalsaConservativeEach instead).
//
//salsa:hotpath
func SalsaQueryEach(rows []*Salsa, seeds []uint64, mask, x uint64) uint64 {
	est := ^uint64(0)
	for i, r := range rows {
		u := uint(hashing.Index(x, seeds[i], mask))
		var v uint64
		if bl := r.blWords; bl == nil {
			v = r.Value(int(u))
		} else if r.s == 8 {
			lvl := probeLevel8(bl[u>>6], u)
			off := (u &^ (1<<lvl - 1)) << 3
			v = r.words[off>>6]
			if lvl != 3 {
				v = (v >> (off & 63)) & ((uint64(1) << (8 << lvl)) - 1)
			}
		} else {
			wbits := bl[u>>6]
			lvl, t := uint(0), uint(1)
			for l := uint(0); l < r.maxLvl; l++ {
				pos := u&^(1<<(l+1)-1) + 1<<l - 1
				t &= uint(wbits>>(pos&63)) & 1
				lvl += t
			}
			size := r.s << lvl
			off := (u &^ (1<<lvl - 1)) * r.s
			if size == 64 {
				v = r.words[off>>6]
			} else {
				v = (r.words[off>>6] >> (off & 63)) & ((uint64(1) << size) - 1)
			}
		}
		if v < est {
			est = v
		}
	}
	return est
}

// SalsaConservativeEach applies the conservative update ⟨x, v⟩: each row is
// hashed once into scratch, the estimate is the min over rows, and every
// row's counter is raised to at least est+v. Equivalent to a Query followed
// by per-row SetAtLeast at the same slots.
//
//salsa:hotpath
func SalsaConservativeEach(rows []*Salsa, seeds []uint64, mask, x uint64, v uint64, scratch []uint32) {
	for i := range rows {
		scratch[i] = uint32(hashing.Index(x, seeds[i], mask))
	}
	slots := scratch[:len(rows)]
	target := satAdd(SalsaMinEach(rows, slots), v)
	SalsaRaiseEach(rows, slots, target)
}

// SalsaRaiseEach raises row i's counter at slots[i] to at least target — the
// conservative raise pass over pre-hashed slots.
//
//salsa:hotpath
func SalsaRaiseEach(rows []*Salsa, slots []uint32, target uint64) {
	if len(rows) > 0 && rows[0].s == 8 {
		salsaRaiseEach8(rows, slots, target)
		return
	}
	for i, r := range rows {
		u := uint(slots[i])
		bl := r.blWords
		if bl == nil {
			r.SetAtLeast(int(u), target)
			continue
		}
		wbits := bl[u>>6]
		lvl, t := uint(0), uint(1)
		for l := uint(0); l < r.maxLvl; l++ {
			pos := u&^(1<<(l+1)-1) + 1<<l - 1
			t &= uint(wbits>>(pos&63)) & 1
			lvl += t
		}
		size := r.s << lvl
		off := (u &^ (1<<lvl - 1)) * r.s
		w, sh := off>>6, off&63
		if size == 64 {
			if target > r.words[w] {
				r.words[w] = target
			}
			continue
		}
		cmask := (uint64(1) << size) - 1
		cur := (r.words[w] >> sh) & cmask
		if target <= cur {
			continue
		}
		if target <= cmask {
			r.words[w] = r.words[w]&^(cmask<<sh) | target<<sh
		} else {
			r.SetAtLeast(int(u), target) // overflow: merge via the general path
		}
	}
}

// salsaRaiseEach8 is SalsaRaiseEach specialized to 8-bit rows via the
// parallel probe.
//
//salsa:hotpath
func salsaRaiseEach8(rows []*Salsa, slots []uint32, target uint64) {
	for i, r := range rows {
		u := uint(slots[i])
		bl := r.blWords
		if bl == nil || r.s != 8 {
			r.SetAtLeast(int(u), target)
			continue
		}
		lvl := probeLevel8(bl[u>>6], u)
		off := (u &^ (1<<lvl - 1)) << 3
		w, sh := off>>6, off&63
		if lvl == 3 {
			if target > r.words[w] {
				r.words[w] = target
			}
			continue
		}
		cmask := (uint64(1) << (8 << lvl)) - 1
		if target <= (r.words[w]>>sh)&cmask {
			continue
		}
		if target <= cmask {
			r.words[w] = r.words[w]&^(cmask<<sh) | target<<sh
		} else {
			r.SetAtLeast(int(u), target) // overflow: merge via the general path
		}
	}
}

// FixedUpdateEach applies the stream update ⟨x, v⟩ to every baseline row.
//
//salsa:hotpath
func FixedUpdateEach(rows []*Fixed, seeds []uint64, mask, x uint64, v int64) {
	if v < 0 {
		for i, r := range rows {
			r.Add(int(hashing.Index(x, seeds[i], mask)), v)
		}
		return
	}
	for i, r := range rows {
		u := uint(hashing.Index(x, seeds[i], mask))
		off := u * r.bits
		w, sh := off>>6, off&63
		cmask := maxValue(r.bits)
		nv := satAdd((r.words[w]>>sh)&cmask, uint64(v))
		if nv > r.maxV {
			nv = r.maxV
		}
		r.words[w] = r.words[w]&^(cmask<<sh) | nv<<sh
	}
}

// FixedMinEach returns the minimum over rows of the counter at slots[i].
//
//salsa:hotpath
func FixedMinEach(rows []*Fixed, slots []uint32) uint64 {
	est := ^uint64(0)
	for i, r := range rows {
		off := uint(slots[i]) * r.bits
		if v := (r.words[off>>6] >> (off & 63)) & maxValue(r.bits); v < est {
			est = v
		}
	}
	return est
}

// FixedQueryEach returns the CMS estimate over baseline rows, hashing
// inline with no slot scratch.
//
//salsa:hotpath
func FixedQueryEach(rows []*Fixed, seeds []uint64, mask, x uint64) uint64 {
	est := ^uint64(0)
	for i, r := range rows {
		off := uint(hashing.Index(x, seeds[i], mask)) * r.bits
		if v := (r.words[off>>6] >> (off & 63)) & maxValue(r.bits); v < est {
			est = v
		}
	}
	return est
}

// FixedConservativeEach applies the conservative update ⟨x, v⟩ over baseline
// rows, hashing each row once.
//
//salsa:hotpath
func FixedConservativeEach(rows []*Fixed, seeds []uint64, mask, x uint64, v uint64, scratch []uint32) {
	for i := range rows {
		scratch[i] = uint32(hashing.Index(x, seeds[i], mask))
	}
	slots := scratch[:len(rows)]
	target := satAdd(FixedMinEach(rows, slots), v)
	FixedRaiseEach(rows, slots, target)
}

// FixedRaiseEach raises row i's counter at slots[i] to at least target.
//
//salsa:hotpath
func FixedRaiseEach(rows []*Fixed, slots []uint32, target uint64) {
	for i, r := range rows {
		off := uint(slots[i]) * r.bits
		w, sh := off>>6, off&63
		cmask := maxValue(r.bits)
		t := target
		if t > r.maxV {
			t = r.maxV
		}
		if t > (r.words[w]>>sh)&cmask {
			r.words[w] = r.words[w]&^(cmask<<sh) | t<<sh
		}
	}
}

// TangoUpdateEach applies the stream update ⟨x, v⟩ to every Tango row:
// unmerged non-overflowing cells inline, everything else via the general
// Add.
//
//salsa:hotpath
func TangoUpdateEach(rows []*Tango, seeds []uint64, mask, x uint64, v int64) {
	if v < 0 {
		for i, r := range rows {
			r.Add(int(hashing.Index(x, seeds[i], mask)), v)
		}
		return
	}
	for i, r := range rows {
		u := uint(hashing.Index(x, seeds[i], mask))
		link := r.link.Words()
		merged := link[u>>6] >> (u & 63) & 1
		if u > 0 {
			merged |= link[(u-1)>>6] >> ((u - 1) & 63) & 1
		}
		if merged != 0 {
			r.Add(int(u), v)
			continue
		}
		off := u * r.s
		w, sh := off>>6, off&63
		cmask := (uint64(1) << r.s) - 1
		if nv := (r.words[w]>>sh)&cmask + uint64(v); nv <= cmask {
			r.words[w] = r.words[w]&^(cmask<<sh) | nv<<sh
		} else {
			r.Add(int(u), v)
		}
	}
}

// TangoMinEach returns the minimum over rows of the counter at slots[i].
//
//salsa:hotpath
func TangoMinEach(rows []*Tango, slots []uint32) uint64 {
	est := ^uint64(0)
	for i, r := range rows {
		u := uint(slots[i])
		var v uint64
		link := r.link.Words()
		merged := link[u>>6] >> (u & 63) & 1
		if u > 0 {
			merged |= link[(u-1)>>6] >> ((u - 1) & 63) & 1
		}
		if merged == 0 {
			off := u * r.s
			v = (r.words[off>>6] >> (off & 63)) & ((uint64(1) << r.s) - 1)
		} else {
			v = r.Value(int(u))
		}
		if v < est {
			est = v
		}
	}
	return est
}

// TangoQueryEach returns the CMS estimate over Tango rows, hashing inline
// with no slot scratch.
//
//salsa:hotpath
func TangoQueryEach(rows []*Tango, seeds []uint64, mask, x uint64) uint64 {
	est := ^uint64(0)
	for i, r := range rows {
		u := uint(hashing.Index(x, seeds[i], mask))
		link := r.link.Words()
		merged := link[u>>6] >> (u & 63) & 1
		if u > 0 {
			merged |= link[(u-1)>>6] >> ((u - 1) & 63) & 1
		}
		var v uint64
		if merged == 0 {
			off := u * r.s
			v = (r.words[off>>6] >> (off & 63)) & ((uint64(1) << r.s) - 1)
		} else {
			v = r.Value(int(u))
		}
		if v < est {
			est = v
		}
	}
	return est
}

// TangoConservativeEach applies the conservative update ⟨x, v⟩ over Tango
// rows, hashing each row once.
//
//salsa:hotpath
func TangoConservativeEach(rows []*Tango, seeds []uint64, mask, x uint64, v uint64, scratch []uint32) {
	for i := range rows {
		scratch[i] = uint32(hashing.Index(x, seeds[i], mask))
	}
	slots := scratch[:len(rows)]
	target := satAdd(TangoMinEach(rows, slots), v)
	TangoRaiseEach(rows, slots, target)
}

// TangoRaiseEach raises row i's counter at slots[i] to at least target.
//
//salsa:hotpath
func TangoRaiseEach(rows []*Tango, slots []uint32, target uint64) {
	for i, r := range rows {
		if !r.SetAtLeastFast(slots[i], target) {
			r.SetAtLeast(int(slots[i]), target)
		}
	}
}

// SalsaMinSlots folds the counter values at slots[j] into out[j]:
// out[j] = min(out[j], value at slots[j]) — the QueryBatch inner loop, one
// call per row per chunk with the probe in registers.
//
//salsa:hotpath
func SalsaMinSlots(r *Salsa, slots []uint32, out []uint64) {
	bl := r.blWords
	if bl == nil {
		for j, slot := range slots {
			if v := r.Value(int(slot)); v < out[j] {
				out[j] = v
			}
		}
		return
	}
	if r.s == 8 {
		words := r.words
		for j, slot := range slots {
			u := uint(slot)
			lvl := probeLevel8(bl[u>>6], u)
			off := (u &^ (1<<lvl - 1)) << 3
			v := words[off>>6]
			if lvl != 3 {
				v = (v >> (off & 63)) & ((uint64(1) << (8 << lvl)) - 1)
			}
			if v < out[j] {
				out[j] = v
			}
		}
		return
	}
	words, sb, maxLvl := r.words, r.s, r.maxLvl
	for j, slot := range slots {
		u := uint(slot)
		wbits := bl[u>>6]
		lvl, t := uint(0), uint(1)
		for l := uint(0); l < maxLvl; l++ {
			pos := u&^(1<<(l+1)-1) + 1<<l - 1
			t &= uint(wbits>>(pos&63)) & 1
			lvl += t
		}
		size := sb << lvl
		off := (u &^ (1<<lvl - 1)) * sb
		w, sh := off>>6, off&63
		v := words[w]
		if size != 64 {
			v = (v >> sh) & ((uint64(1) << size) - 1)
		}
		if v < out[j] {
			out[j] = v
		}
	}
}

// FixedMinSlots folds the counter values at slots[j] into out[j].
//
//salsa:hotpath
func FixedMinSlots(r *Fixed, slots []uint32, out []uint64) {
	words, bits := r.words, r.bits
	cmask := maxValue(bits)
	for j, slot := range slots {
		off := uint(slot) * bits
		if v := (words[off>>6] >> (off & 63)) & cmask; v < out[j] {
			out[j] = v
		}
	}
}

// TangoMinSlots folds the counter values at slots[j] into out[j].
//
//salsa:hotpath
func TangoMinSlots(r *Tango, slots []uint32, out []uint64) {
	words, link, sb := r.words, r.link.Words(), r.s
	cmask := (uint64(1) << sb) - 1
	for j, slot := range slots {
		u := uint(slot)
		merged := link[u>>6] >> (u & 63) & 1
		if u > 0 {
			merged |= link[(u-1)>>6] >> ((u - 1) & 63) & 1
		}
		var v uint64
		if merged == 0 {
			off := u * sb
			v = (words[off>>6] >> (off & 63)) & cmask
		} else {
			v = r.Value(int(u))
		}
		if v < out[j] {
			out[j] = v
		}
	}
}

// SalsaSignReadSlots writes signs[j]·value(slots[j]) into out[j*stride+col]
// — the Count Sketch QueryBatch gather into its strided scratch.
//
//salsa:hotpath
func SalsaSignReadSlots(r *SalsaSign, slots []uint32, signs []int8, out []int64, stride, col int) {
	bl := r.blWords
	if bl == nil {
		for j, slot := range slots {
			out[j*stride+col] = int64(signs[j]) * r.Value(int(slot))
		}
		return
	}
	words, sb, maxLvl := r.words, r.s, r.maxLvl
	for j, slot := range slots {
		u := uint(slot)
		var lvl uint
		if sb == 8 {
			lvl = probeLevel8(bl[u>>6], u)
		} else {
			wbits := bl[u>>6]
			t := uint(1)
			for l := uint(0); l < maxLvl; l++ {
				pos := u&^(1<<(l+1)-1) + 1<<l - 1
				t &= uint(wbits>>(pos&63)) & 1
				lvl += t
			}
		}
		size := sb << lvl
		off := (u &^ (1<<lvl - 1)) * sb
		w, sh := off>>6, off&63
		var v int64
		if size == 64 {
			v = decodeSM(words[w], 64)
		} else {
			v = decodeSM((words[w]>>sh)&((uint64(1)<<size)-1), size)
		}
		out[j*stride+col] = int64(signs[j]) * v
	}
}

// FixedSignReadSlots writes signs[j]·value(slots[j]) into out[j*stride+col].
//
//salsa:hotpath
func FixedSignReadSlots(r *FixedSign, slots []uint32, signs []int8, out []int64, stride, col int) {
	words, bits := r.words, r.bits
	cmask := maxValue(bits)
	shift := 64 - bits
	for j, slot := range slots {
		off := uint(slot) * bits
		raw := (words[off>>6] >> (off & 63)) & cmask
		out[j*stride+col] = (int64(raw<<shift) >> shift) * int64(signs[j])
	}
}

// SalsaSignUpdateEach applies the Count Sketch update ⟨x, v⟩ to every
// sign-magnitude row: row i adds v·gᵢ(x) at its slot, inline while the
// magnitude fits, via the general Add (which merges) otherwise.
//
//salsa:hotpath
func SalsaSignUpdateEach(rows []*SalsaSign, idxSeeds, signSeeds []uint64, mask, x uint64, v int64) {
	for i, r := range rows {
		u := uint(hashing.Index(x, idxSeeds[i], mask))
		sv := v * hashing.Sign(x, signSeeds[i])
		bl := r.blWords
		if bl == nil {
			r.Add(int(u), sv)
			continue
		}
		var lvl uint
		if r.s == 8 {
			lvl = probeLevel8(bl[u>>6], u)
		} else {
			wbits := bl[u>>6]
			t := uint(1)
			for l := uint(0); l < r.maxLvl; l++ {
				pos := u&^(1<<(l+1)-1) + 1<<l - 1
				t &= uint(wbits>>(pos&63)) & 1
				lvl += t
			}
		}
		size := r.s << lvl
		off := (u &^ (1<<lvl - 1)) * r.s
		w, sh := off>>6, off&63
		if size == 64 {
			nv := satAddSigned(decodeSM(r.words[w], 64), sv)
			// A sum landing exactly on MinInt64 passes satAddSigned
			// unsaturated and would encode as negative zero; clamp as
			// store does (see AddSignedFast).
			if nv < -maxMag(64) {
				nv = -maxMag(64)
			}
			r.words[w] = encodeSM(nv, 64)
			continue
		}
		cmask := (uint64(1) << size) - 1
		nv := satAddSigned(decodeSM((r.words[w]>>sh)&cmask, size), sv)
		if nv <= maxMag(size) && nv >= -maxMag(size) {
			r.words[w] = r.words[w]&^(cmask<<sh) | encodeSM(nv, size)<<sh
		} else {
			r.Add(int(u), sv) // overflow: merge via the general path
		}
	}
}

// SalsaSignReadEach writes row i's signed reading gᵢ(x)·C[i, hᵢ(x)] into
// out[i] — the Count Sketch query gather; the caller takes the median.
//
//salsa:hotpath
func SalsaSignReadEach(rows []*SalsaSign, idxSeeds, signSeeds []uint64, mask, x uint64, out []int64) {
	for i, r := range rows {
		u := uint(hashing.Index(x, idxSeeds[i], mask))
		var v int64
		if bl := r.blWords; bl != nil {
			var lvl uint
			if r.s == 8 {
				lvl = probeLevel8(bl[u>>6], u)
			} else {
				wbits := bl[u>>6]
				t := uint(1)
				for l := uint(0); l < r.maxLvl; l++ {
					pos := u&^(1<<(l+1)-1) + 1<<l - 1
					t &= uint(wbits>>(pos&63)) & 1
					lvl += t
				}
			}
			size := r.s << lvl
			off := (u &^ (1<<lvl - 1)) * r.s
			w, sh := off>>6, off&63
			if size == 64 {
				v = decodeSM(r.words[w], 64)
			} else {
				v = decodeSM((r.words[w]>>sh)&((uint64(1)<<size)-1), size)
			}
		} else {
			v = r.Value(int(u))
		}
		out[i] = v * hashing.Sign(x, signSeeds[i])
	}
}

// FixedSignUpdateEach applies the Count Sketch update ⟨x, v⟩ to every
// baseline two's-complement row.
//
//salsa:hotpath
func FixedSignUpdateEach(rows []*FixedSign, idxSeeds, signSeeds []uint64, mask, x uint64, v int64) {
	for i, r := range rows {
		u := uint(hashing.Index(x, idxSeeds[i], mask))
		sv := v * hashing.Sign(x, signSeeds[i])
		off := u * r.bits
		w, sh := off>>6, off&63
		cmask := maxValue(r.bits)
		shift := 64 - r.bits
		cur := int64((r.words[w]>>sh&cmask)<<shift) >> shift
		nv := satAddSigned(cur, sv)
		if nv > r.maxV {
			nv = r.maxV
		} else if nv < -r.maxV {
			nv = -r.maxV
		}
		r.words[w] = r.words[w]&^(cmask<<sh) | (uint64(nv)&cmask)<<sh
	}
}

// FixedSignReadEach writes row i's signed reading into out[i].
//
//salsa:hotpath
func FixedSignReadEach(rows []*FixedSign, idxSeeds, signSeeds []uint64, mask, x uint64, out []int64) {
	for i, r := range rows {
		u := uint(hashing.Index(x, idxSeeds[i], mask))
		off := u * r.bits
		shift := 64 - r.bits
		raw := (r.words[off>>6] >> (off & 63)) & maxValue(r.bits)
		out[i] = (int64(raw<<shift) >> shift) * hashing.Sign(x, signSeeds[i])
	}
}
