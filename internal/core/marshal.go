package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"salsa/internal/bitvec"
)

// Binary serialization for counter arrays: fixed little-endian headers
// followed by the raw backing words. The format is versioned and
// self-describing enough to reject mismatched geometry; it exists so
// sketches built on different machines can be shipped and merged
// (§V, "Merging and Subtracting SALSA Sketches").

const (
	marshalMagic   = uint32(0x5a15a001)
	kindFixed      = byte(1)
	kindFixedSign  = byte(2)
	kindSalsa      = byte(3)
	kindSalsaSign  = byte(4)
	kindTango      = byte(5)
	headerLen      = 4 + 1 + 1 + 1 + 1 + 8 // magic, kind, bits, policy, compact, width
	errShortBuffer = "core: truncated marshal payload"
)

// ErrBadPayload is returned when unmarshaling data that is not a counter
// array of the expected kind.
var ErrBadPayload = errors.New("core: not a counter array payload")

// maxMarshalWidth bounds decoded geometry so a corrupt or hostile payload
// cannot trigger a huge allocation: the words are length-checked against
// the payload, and the width must agree with them. It exceeds int on
// 32-bit platforms, so the width check and word arithmetic run in 64 bits.
const maxMarshalWidth = int64(1) << 31

// wordsForGeometry returns the expected backing word count, or -1 for
// invalid geometry.
func wordsForGeometry(width int, bits uint) int {
	if width <= 0 || int64(width) > maxMarshalWidth || !validBits(bits, 64) {
		return -1
	}
	return int((uint64(width)*uint64(bits) + 63) / 64)
}

func putHeader(kind byte, bits uint, policy byte, compact bool, width int) []byte {
	buf := make([]byte, headerLen)
	binary.LittleEndian.PutUint32(buf, marshalMagic)
	buf[4] = kind
	buf[5] = byte(bits)
	buf[6] = policy
	if compact {
		buf[7] = 1
	}
	binary.LittleEndian.PutUint64(buf[8:], uint64(width))
	return buf
}

func readHeader(data []byte, wantKind byte) (bits uint, policy byte, compact bool, width int, rest []byte, err error) {
	if len(data) < headerLen {
		return 0, 0, false, 0, nil, errors.New(errShortBuffer)
	}
	if binary.LittleEndian.Uint32(data) != marshalMagic {
		return 0, 0, false, 0, nil, ErrBadPayload
	}
	if data[4] != wantKind {
		return 0, 0, false, 0, nil, fmt.Errorf("core: payload kind %d, want %d", data[4], wantKind)
	}
	return uint(data[5]), data[6], data[7] == 1,
		int(binary.LittleEndian.Uint64(data[8:])), data[headerLen:], nil
}

func appendWords(buf []byte, words []uint64) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(words)))
	for _, w := range words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

func readWords(data []byte) ([]uint64, []byte, error) {
	if len(data) < 8 {
		return nil, nil, errors.New(errShortBuffer)
	}
	n := binary.LittleEndian.Uint64(data)
	data = data[8:]
	// Compare without multiplying so a huge declared count cannot wrap.
	if n > uint64(len(data))/8 {
		return nil, nil, errors.New(errShortBuffer)
	}
	words := make([]uint64, n)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	return words, data[n*8:], nil
}

// MarshalBinary encodes the array.
func (f *Fixed) MarshalBinary() ([]byte, error) {
	buf := putHeader(kindFixed, f.bits, 0, false, f.width)
	return appendWords(buf, f.words), nil
}

// UnmarshalFixed decodes a Fixed array.
func UnmarshalFixed(data []byte) (*Fixed, error) {
	bits, _, _, width, rest, err := readHeader(data, kindFixed)
	if err != nil {
		return nil, err
	}
	words, _, err := readWords(rest)
	if err != nil {
		return nil, err
	}
	if wordsForGeometry(width, bits) != len(words) {
		return nil, ErrBadPayload
	}
	f := NewFixed(width, bits)
	copy(f.words, words)
	return f, nil
}

// MarshalBinary encodes the array.
func (f *FixedSign) MarshalBinary() ([]byte, error) {
	buf := putHeader(kindFixedSign, f.bits, 0, false, f.width)
	return appendWords(buf, f.words), nil
}

// UnmarshalFixedSign decodes a FixedSign array.
func UnmarshalFixedSign(data []byte) (*FixedSign, error) {
	bits, _, _, width, rest, err := readHeader(data, kindFixedSign)
	if err != nil {
		return nil, err
	}
	words, _, err := readWords(rest)
	if err != nil {
		return nil, err
	}
	if bits < 2 || wordsForGeometry(width, bits) != len(words) {
		return nil, ErrBadPayload
	}
	f := NewFixedSign(width, bits)
	copy(f.words, words)
	return f, nil
}

// layoutWords exposes the layout backing words for serialization.
func layoutWords(l layout) []uint64 {
	switch ly := l.(type) {
	case *bitLayout:
		return ly.bits.Words()
	case *compactLayout:
		return ly.words
	}
	panic("core: unknown layout type")
}

// MarshalBinary encodes the array including its merge layout.
func (c *Salsa) MarshalBinary() ([]byte, error) {
	_, compact := c.lay.(*compactLayout)
	buf := putHeader(kindSalsa, c.s, byte(c.policy), compact, c.width)
	buf = appendWords(buf, c.words)
	return appendWords(buf, layoutWords(c.lay)), nil
}

// UnmarshalSalsa decodes a Salsa array.
func UnmarshalSalsa(data []byte) (*Salsa, error) {
	s, policy, compact, width, rest, err := readHeader(data, kindSalsa)
	if err != nil {
		return nil, err
	}
	words, rest, err := readWords(rest)
	if err != nil {
		return nil, err
	}
	layWords, _, err := readWords(rest)
	if err != nil {
		return nil, err
	}
	if s > 32 || wordsForGeometry(width, s) != len(words) ||
		policy > byte(MaxMerge) || !salsaWidthOK(width, s, compact) {
		return nil, ErrBadPayload
	}
	c := NewSalsa(width, s, MergePolicy(policy), compact)
	if len(layWords) != len(layoutWords(c.lay)) {
		return nil, ErrBadPayload
	}
	copy(c.words, words)
	copy(layoutWords(c.lay), layWords)
	return c, nil
}

// MarshalBinary encodes the array: the counter cells, the merge-link
// bits, and the merge counter. A decoded Tango resumes from the exact
// cell/link state, so fine-grained merges (§IV) survive transport.
func (t *Tango) MarshalBinary() ([]byte, error) {
	buf := putHeader(kindTango, t.s, byte(t.policy), false, t.width)
	buf = appendWords(buf, t.words)
	buf = appendWords(buf, t.link.Words())
	return binary.LittleEndian.AppendUint64(buf, t.merges), nil
}

// UnmarshalTango decodes a Tango array.
func UnmarshalTango(data []byte) (*Tango, error) {
	s, policy, compact, width, rest, err := readHeader(data, kindTango)
	if err != nil {
		return nil, err
	}
	words, rest, err := readWords(rest)
	if err != nil {
		return nil, err
	}
	linkWords, rest, err := readWords(rest)
	if err != nil {
		return nil, err
	}
	if len(rest) < 8 {
		return nil, errors.New(errShortBuffer)
	}
	merges := binary.LittleEndian.Uint64(rest)
	if compact || s > 32 || policy > byte(MaxMerge) ||
		width <= 0 || width&(width-1) != 0 ||
		wordsForGeometry(width, s) != len(words) ||
		len(linkWords) != bitvec.WordsFor(width) {
		return nil, ErrBadPayload
	}
	t := newTangoIn(width, s, MergePolicy(policy), words, linkWords)
	t.merges = merges
	return t, nil
}

// salsaWidthOK mirrors the constructor's width validation without the
// panic, for decoding untrusted payloads.
func salsaWidthOK(width int, s uint, compact bool) bool {
	maxLvl := 0
	for b := s; b < 64; b <<= 1 {
		maxLvl++
	}
	if width <= 0 || width%(1<<maxLvl) != 0 {
		return false
	}
	if compact {
		groupLog := 5
		if maxLvl > groupLog {
			groupLog = maxLvl
		}
		if width%(1<<groupLog) != 0 {
			return false
		}
	}
	return true
}

// MarshalBinary encodes the array including its merge layout.
func (c *SalsaSign) MarshalBinary() ([]byte, error) {
	_, compact := c.lay.(*compactLayout)
	buf := putHeader(kindSalsaSign, c.s, 0, compact, c.width)
	buf = appendWords(buf, c.words)
	return appendWords(buf, layoutWords(c.lay)), nil
}

// UnmarshalSalsaSign decodes a SalsaSign array.
func UnmarshalSalsaSign(data []byte) (*SalsaSign, error) {
	s, _, compact, width, rest, err := readHeader(data, kindSalsaSign)
	if err != nil {
		return nil, err
	}
	words, rest, err := readWords(rest)
	if err != nil {
		return nil, err
	}
	layWords, _, err := readWords(rest)
	if err != nil {
		return nil, err
	}
	if s < 2 || s > 32 || wordsForGeometry(width, s) != len(words) || !salsaWidthOK(width, s, compact) {
		return nil, ErrBadPayload
	}
	c := NewSalsaSign(width, s, compact)
	if len(layWords) != len(layoutWords(c.lay)) {
		return nil, ErrBadPayload
	}
	copy(c.words, words)
	copy(layoutWords(c.lay), layWords)
	return c, nil
}
