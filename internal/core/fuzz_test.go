package core

import (
	"bytes"
	"testing"
)

// FuzzSalsaOps drives a SALSA array with arbitrary operation bytes and
// checks the structural invariants after every step. Run with
// `go test -fuzz FuzzSalsaOps ./internal/core` for deep exploration; the
// seed corpus keeps it meaningful as a plain test.
func FuzzSalsaOps(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0xff, 0x10})
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x7f, 0x7f})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const w = 64
		c := NewSalsa(w, 8, MaxMerge, false)
		sums := make([]uint64, w)
		for i := 0; i+1 < len(ops); i += 2 {
			slot := int(ops[i]) % w
			v := int64(ops[i+1])
			c.Add(slot, v)
			sums[slot] += uint64(v)
		}
		for i := 0; i < w; i++ {
			start, count := c.CounterRange(i)
			if count&(count-1) != 0 || start%count != 0 {
				t.Fatalf("slot %d: malformed range [%d,+%d)", i, start, count)
			}
			var total, max uint64
			for j := start; j < start+count; j++ {
				total += sums[j]
				if sums[j] > max {
					max = sums[j]
				}
			}
			if v := c.Value(i); v < max || v > total {
				t.Fatalf("slot %d: value %d outside [%d,%d]", i, v, max, total)
			}
		}
	})
}

// FuzzMergeKernels drives two SALSA rows (and their Fixed shadows) with
// arbitrary op bytes, merges them through the word-parallel kernels and
// through the per-counter reference paths, and requires marshal-byte-
// identical results — the deep-exploration companion to the randomized
// TestSWARKernelEquivalence* suite. The odd trailing byte steers both the
// counter size and whether the rows share a layout (cloning before merge),
// so the pure-SWAR, fallback, and bailout paths all get fuzzed.
func FuzzMergeKernels(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0xff, 0x10, 0x03})
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x7f, 0x7f, 0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const w = 64
		sizes := []uint{2, 4, 8, 16}
		s := sizes[len(ops)%len(sizes)]
		a := NewSalsa(w, s, SumMerge, false)
		b := NewSalsa(w, s, SumMerge, false)
		fa := NewFixed(w, s)
		fb := NewFixed(w, s)
		for i := 0; i+1 < len(ops); i += 2 {
			slot, v := int(ops[i])%w, int64(ops[i+1])
			if ops[i]&1 == 0 {
				a.Add(slot, v<<(uint(ops[i+1])%s))
				fa.Add(slot, v)
			} else {
				b.Add(slot, v<<(uint(ops[i+1])%s))
				fb.Add(slot, v)
			}
		}
		if len(ops)%2 == 1 && ops[len(ops)-1]&1 == 1 {
			// Same-layout case: merge a byte-identical clone instead.
			blob, _ := a.MarshalBinary()
			b, _ = UnmarshalSalsa(blob)
			fblob, _ := fa.MarshalBinary()
			fb, _ = UnmarshalFixed(fblob)
		}
		mergeEqual := func(fastBlob, slowBlob []byte, kind string) {
			if !bytes.Equal(fastBlob, slowBlob) {
				t.Fatalf("%s: kernel merge differs from reference", kind)
			}
		}
		ablob, _ := a.MarshalBinary()
		fast, _ := UnmarshalSalsa(ablob)
		slow, _ := UnmarshalSalsa(ablob)
		fast.MergeFrom(b)
		slow.mergeFromGeneric(b)
		fastBlob, _ := fast.MarshalBinary()
		slowBlob, _ := slow.MarshalBinary()
		mergeEqual(fastBlob, slowBlob, "salsa")

		fablob, _ := fa.MarshalBinary()
		ffast, _ := UnmarshalFixed(fablob)
		fslow, _ := UnmarshalFixed(fablob)
		ffast.MergeFrom(fb)
		fslow.mergeFromGeneric(fb)
		fastBlob, _ = ffast.MarshalBinary()
		slowBlob, _ = fslow.MarshalBinary()
		mergeEqual(fastBlob, slowBlob, "fixed")

		ffast.SubtractFrom(fb)
		fslow.subtractFromGeneric(fb)
		fastBlob, _ = ffast.MarshalBinary()
		slowBlob, _ = fslow.MarshalBinary()
		mergeEqual(fastBlob, slowBlob, "fixed-subtract")
	})
}

// FuzzUnmarshal feeds arbitrary bytes to every decoder; none may panic.
func FuzzUnmarshal(f *testing.F) {
	c := NewSalsa(64, 8, SumMerge, false)
	c.Add(3, 300)
	good, _ := c.MarshalBinary()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0x01, 0xa0, 0x15, 0x5a})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = UnmarshalSalsa(data)
		_, _ = UnmarshalSalsaSign(data)
		_, _ = UnmarshalFixed(data)
		_, _ = UnmarshalFixedSign(data)
	})
}
