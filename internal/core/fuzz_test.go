package core

import "testing"

// FuzzSalsaOps drives a SALSA array with arbitrary operation bytes and
// checks the structural invariants after every step. Run with
// `go test -fuzz FuzzSalsaOps ./internal/core` for deep exploration; the
// seed corpus keeps it meaningful as a plain test.
func FuzzSalsaOps(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0xff, 0x10})
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x7f, 0x7f})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const w = 64
		c := NewSalsa(w, 8, MaxMerge, false)
		sums := make([]uint64, w)
		for i := 0; i+1 < len(ops); i += 2 {
			slot := int(ops[i]) % w
			v := int64(ops[i+1])
			c.Add(slot, v)
			sums[slot] += uint64(v)
		}
		for i := 0; i < w; i++ {
			start, count := c.CounterRange(i)
			if count&(count-1) != 0 || start%count != 0 {
				t.Fatalf("slot %d: malformed range [%d,+%d)", i, start, count)
			}
			var total, max uint64
			for j := start; j < start+count; j++ {
				total += sums[j]
				if sums[j] > max {
					max = sums[j]
				}
			}
			if v := c.Value(i); v < max || v > total {
				t.Fatalf("slot %d: value %d outside [%d,%d]", i, v, max, total)
			}
		}
	})
}

// FuzzUnmarshal feeds arbitrary bytes to every decoder; none may panic.
func FuzzUnmarshal(f *testing.F) {
	c := NewSalsa(64, 8, SumMerge, false)
	c.Add(3, 300)
	good, _ := c.MarshalBinary()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0x01, 0xa0, 0x15, 0x5a})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = UnmarshalSalsa(data)
		_, _ = UnmarshalSalsaSign(data)
		_, _ = UnmarshalFixed(data)
		_, _ = UnmarshalFixedSign(data)
	})
}
