package core

import (
	"unsafe"

	"salsa/internal/bitvec"
)

// Arena-backed row construction. A d-row sketch built from the per-row
// constructors chases d separately-allocated slabs (plus d merge-bit slabs)
// on every probe; the NewXRows constructors below carve all d rows' counter
// words and merge-encoding words out of one contiguous cache-line-aligned
// allocation instead, so a sketch's whole working set is one linear region.
// Each row's segment starts on a 64-byte cache line, and a row's merge bits
// directly follow its counters, keeping the level-probe word and the counter
// word it guards on neighboring lines.

// arenaAlignWords is the segment alignment in words: 8 words = 64 bytes, one
// cache line on every platform we target.
const arenaAlignWords = 8

// counterWords returns the backing word count of width counters of bits bits
// (the sizing rule every row constructor shares).
func counterWords(width int, bits uint) int {
	return int((uint(width)*bits + 63) / 64)
}

// arena hands out zeroed, cache-line-aligned word segments from one backing
// allocation.
type arena struct {
	words []uint64
	off   int
}

// alignUp rounds n up to the next multiple of arenaAlignWords.
func alignUp(n int) int {
	return (n + arenaAlignWords - 1) &^ (arenaAlignWords - 1)
}

// newArena returns an arena with capacity for totalWords words of aligned
// segments (totalWords must already count each segment rounded via alignUp).
func newArena(totalWords int) *arena {
	raw := make([]uint64, totalWords+arenaAlignWords-1)
	base := 0
	for uintptr(unsafe.Pointer(&raw[base]))%64 != 0 {
		base++
	}
	return &arena{words: raw[base:]}
}

// take returns the next n-word segment, full-slice-capped so appends cannot
// bleed into a neighbor row, and advances to the next cache-line boundary.
func (a *arena) take(n int) []uint64 {
	seg := a.words[a.off : a.off+n : a.off+n]
	a.off += alignUp(n)
	return seg
}

// NewFixedRows returns d Fixed rows of identical geometry backed by one
// contiguous cache-line-aligned arena.
func NewFixedRows(d, width int, bits uint) []*Fixed {
	per := alignUp(counterWords(width, bits))
	a := newArena(d * per)
	rows := make([]*Fixed, d)
	for i := range rows {
		rows[i] = newFixedIn(width, bits, a.take(counterWords(width, bits)))
	}
	return rows
}

// NewFixedSignRows returns d FixedSign rows backed by one contiguous
// cache-line-aligned arena.
func NewFixedSignRows(d, width int, bits uint) []*FixedSign {
	per := alignUp(counterWords(width, bits))
	a := newArena(d * per)
	rows := make([]*FixedSign, d)
	for i := range rows {
		rows[i] = newFixedSignIn(width, bits, a.take(counterWords(width, bits)))
	}
	return rows
}

// NewSalsaRows returns d Salsa rows backed by one contiguous cache-line-
// aligned arena holding, per row, its counter words followed by its simple-
// encoding merge-bit words. The compact encoding keeps its own layout
// storage, so only the counter words share the arena.
func NewSalsaRows(d, width int, s uint, policy MergePolicy, compact bool) []*Salsa {
	cw := counterWords(width, s)
	bw := 0
	if !compact {
		bw = bitvec.WordsFor(width)
	}
	a := newArena(d * (alignUp(cw) + alignUp(bw)))
	rows := make([]*Salsa, d)
	for i := range rows {
		words := a.take(cw)
		var layWords []uint64
		if !compact {
			layWords = a.take(bw)
		}
		rows[i] = newSalsaIn(width, s, policy, compact, words, layWords)
	}
	return rows
}

// NewSalsaSignRows returns d SalsaSign rows backed by one contiguous
// cache-line-aligned arena (counter words then merge-bit words per row, as
// in NewSalsaRows).
func NewSalsaSignRows(d, width int, s uint, compact bool) []*SalsaSign {
	cw := counterWords(width, s)
	bw := 0
	if !compact {
		bw = bitvec.WordsFor(width)
	}
	a := newArena(d * (alignUp(cw) + alignUp(bw)))
	rows := make([]*SalsaSign, d)
	for i := range rows {
		words := a.take(cw)
		var layWords []uint64
		if !compact {
			layWords = a.take(bw)
		}
		rows[i] = newSalsaSignIn(width, s, compact, words, layWords)
	}
	return rows
}

// NewTangoRows returns d Tango rows backed by one contiguous cache-line-
// aligned arena (counter cells then link bits per row).
func NewTangoRows(d, width int, s uint, policy MergePolicy) []*Tango {
	cw := counterWords(width, s)
	bw := bitvec.WordsFor(width)
	a := newArena(d * (alignUp(cw) + alignUp(bw)))
	rows := make([]*Tango, d)
	for i := range rows {
		words := a.take(cw)
		rows[i] = newTangoIn(width, s, policy, words, a.take(bw))
	}
	return rows
}
