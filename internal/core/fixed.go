package core

import "fmt"

// Fixed is a packed array of w unsigned counters, each exactly b bits wide
// with b a power of two in {1, 2, 4, 8, 16, 32, 64}. Counters saturate at
// 2^b−1 instead of wrapping, matching the small-counter baseline in the
// paper ("the counter is only incremented if it does not overflow").
type Fixed struct {
	bits  uint
	width int
	maxV  uint64
	words []uint64
}

// NewFixed returns a Fixed array of width counters of bits bits each.
func NewFixed(width int, bits uint) *Fixed { return newFixedIn(width, bits, nil) }

// newFixedIn is NewFixed over caller-provided backing words (nil allocates);
// the arena row constructors use it to pack all rows of a sketch into one
// contiguous allocation.
func newFixedIn(width int, bits uint, words []uint64) *Fixed {
	if !validBits(bits, 64) {
		panic(fmt.Sprintf("core: invalid fixed counter size %d", bits))
	}
	if width <= 0 {
		panic("core: non-positive width")
	}
	if words == nil {
		words = make([]uint64, counterWords(width, bits))
	}
	return &Fixed{
		bits:  bits,
		width: width,
		maxV:  maxValue(bits),
		words: words,
	}
}

// Width returns the number of counters.
func (f *Fixed) Width() int { return f.width }

// CounterBits returns the per-counter width in bits.
func (f *Fixed) CounterBits() uint { return f.bits }

// SizeBits returns the total memory footprint in bits.
func (f *Fixed) SizeBits() int { return f.width * int(f.bits) }

// Value returns the value of counter i.
//
//salsa:hotpath
func (f *Fixed) Value(i int) uint64 {
	return readAligned(f.words, uint(i)*f.bits, f.bits)
}

// Add adds v to counter i, saturating at the counter maximum; negative v
// subtracts, clamping at zero.
//
//salsa:hotpath
func (f *Fixed) Add(i int, v int64) {
	cur := f.Value(i)
	var nv uint64
	if v >= 0 {
		nv = satAdd(cur, uint64(v))
		if nv > f.maxV {
			nv = f.maxV
		}
	} else {
		d := uint64(-v)
		if d >= cur {
			nv = 0
		} else {
			nv = cur - d
		}
	}
	writeAligned(f.words, uint(i)*f.bits, f.bits, nv)
}

// SetAtLeast raises counter i to at least v (capped at the counter maximum).
// This is the conservative-update primitive.
//
//salsa:hotpath
func (f *Fixed) SetAtLeast(i int, v uint64) {
	if v > f.maxV {
		v = f.maxV
	}
	if v > f.Value(i) {
		writeAligned(f.words, uint(i)*f.bits, f.bits, v)
	}
}

// Reset zeroes every counter, restoring the freshly-constructed state; the
// backing memory is reused (the sliding-window bucket-rotation primitive).
func (f *Fixed) Reset() {
	for i := range f.words {
		f.words[i] = 0
	}
}

// ZeroCount returns the number of zero-valued counters (used by the Linear
// Counting distinct-count estimator).
func (f *Fixed) ZeroCount() int {
	zeros := 0
	for i := 0; i < f.width; i++ {
		if f.Value(i) == 0 {
			zeros++
		}
	}
	return zeros
}

// ZeroFraction returns the fraction of zero-valued counters.
func (f *Fixed) ZeroFraction() float64 {
	return float64(f.ZeroCount()) / float64(f.width)
}

// Halve replaces every counter by either ⌊c/2⌋ (deterministic) or a sample
// from Binomial(c, 1/2) (probabilistic), the two AEE downsampling modes.
// rnd supplies random bits for the probabilistic mode and may be nil for the
// deterministic one.
func (f *Fixed) Halve(probabilistic bool, rnd func() uint64) {
	for i := 0; i < f.width; i++ {
		cur := f.Value(i)
		var nv uint64
		if probabilistic {
			nv = binomialHalf(cur, rnd)
		} else {
			nv = cur / 2
		}
		writeAligned(f.words, uint(i)*f.bits, f.bits, nv)
	}
}

// SameGeometry reports whether other can merge with f: decoders use it to
// reject payload combinations MergeFrom would panic on.
func (f *Fixed) SameGeometry(other *Fixed) bool {
	return f.width == other.width && f.bits == other.bits
}

// MergeFrom adds every counter of other into the corresponding counter of f,
// saturating. Both arrays must have the same geometry. The merge is
// word-parallel: 64/bits counters combine per step (see merge.go).
func (f *Fixed) MergeFrom(other *Fixed) {
	if f.width != other.width || f.bits != other.bits {
		panic("core: fixed geometry mismatch")
	}
	f.mergeWords(other.words)
}

// mergeFromGeneric is the per-counter reference merge; mergeWords must stay
// byte-for-byte equivalent to it (pinned by the SWAR equivalence tests).
func (f *Fixed) mergeFromGeneric(other *Fixed) {
	for i := 0; i < f.width; i++ {
		nv := satAdd(f.Value(i), other.Value(i))
		if nv > f.maxV {
			nv = f.maxV
		}
		writeAligned(f.words, uint(i)*f.bits, f.bits, nv)
	}
}

// SubtractFrom subtracts every counter of other from f, clamping at zero.
// Word-parallel like MergeFrom.
func (f *Fixed) SubtractFrom(other *Fixed) {
	if f.width != other.width || f.bits != other.bits {
		panic("core: fixed geometry mismatch")
	}
	f.subtractWords(other.words)
}

// subtractFromGeneric is the per-counter reference subtraction.
func (f *Fixed) subtractFromGeneric(other *Fixed) {
	for i := 0; i < f.width; i++ {
		cur, d := f.Value(i), other.Value(i)
		if d >= cur {
			cur = 0
		} else {
			cur -= d
		}
		writeAligned(f.words, uint(i)*f.bits, f.bits, cur)
	}
}

// FixedSign is a packed array of w signed counters of b bits each, stored in
// two's complement, saturating at ±(2^(b−1)−1). It is the baseline row for
// the Count Sketch.
type FixedSign struct {
	bits  uint
	width int
	maxV  int64
	words []uint64
}

// NewFixedSign returns a FixedSign array of width counters of bits bits each
// (bits a power of two in {2, ..., 64}).
func NewFixedSign(width int, bits uint) *FixedSign { return newFixedSignIn(width, bits, nil) }

// newFixedSignIn is NewFixedSign over caller-provided backing words (nil
// allocates).
func newFixedSignIn(width int, bits uint, words []uint64) *FixedSign {
	if !validBits(bits, 64) || bits < 2 {
		panic(fmt.Sprintf("core: invalid signed counter size %d", bits))
	}
	if width <= 0 {
		panic("core: non-positive width")
	}
	if words == nil {
		words = make([]uint64, counterWords(width, bits))
	}
	return &FixedSign{
		bits:  bits,
		width: width,
		maxV:  int64(maxValue(bits) >> 1),
		words: words,
	}
}

// Width returns the number of counters.
func (f *FixedSign) Width() int { return f.width }

// SizeBits returns the total memory footprint in bits.
func (f *FixedSign) SizeBits() int { return f.width * int(f.bits) }

// Value returns the value of counter i.
//
//salsa:hotpath
func (f *FixedSign) Value(i int) int64 {
	raw := readAligned(f.words, uint(i)*f.bits, f.bits)
	return signExtend(raw, f.bits)
}

// Add adds v to counter i, saturating at ±(2^(b−1)−1).
//
//salsa:hotpath
func (f *FixedSign) Add(i int, v int64) {
	nv := satAddSigned(f.Value(i), v)
	if nv > f.maxV {
		nv = f.maxV
	} else if nv < -f.maxV {
		nv = -f.maxV
	}
	writeAligned(f.words, uint(i)*f.bits, f.bits, uint64(nv)&maxValue(f.bits))
}

// Reset zeroes every counter, restoring the freshly-constructed state; the
// backing memory is reused.
func (f *FixedSign) Reset() {
	for i := range f.words {
		f.words[i] = 0
	}
}

// SameGeometry reports whether other can merge with f: decoders use it to
// reject payload combinations MergeFrom would panic on.
func (f *FixedSign) SameGeometry(other *FixedSign) bool {
	return f.width == other.width && f.bits == other.bits
}

// MergeFrom adds scale times every counter of other into f (scale is +1 for
// sketch union, −1 for subtraction). For ±1 scales on sub-64-bit counters
// the merge is word-parallel (see merge.go).
func (f *FixedSign) MergeFrom(other *FixedSign, scale int64) {
	if f.width != other.width || f.bits != other.bits {
		panic("core: fixed geometry mismatch")
	}
	if f.bits == 64 || (scale != 1 && scale != -1) {
		f.mergeFromGeneric(other, scale)
		return
	}
	f.mergeWordsSigned(other.words, scale == -1)
}

// mergeFromGeneric is the per-counter reference merge; mergeWordsSigned must
// stay byte-for-byte equivalent to it for scale ±1.
func (f *FixedSign) mergeFromGeneric(other *FixedSign, scale int64) {
	for i := 0; i < f.width; i++ {
		f.Add(i, scale*other.Value(i))
	}
}

// signExtend interprets the low bits of raw as a two's-complement value.
//
//salsa:hotpath
func signExtend(raw uint64, bits uint) int64 {
	shift := 64 - bits
	return int64(raw<<shift) >> shift
}
