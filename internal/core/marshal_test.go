package core

import (
	"math/rand"
	"testing"
)

func TestFixedMarshalRoundTrip(t *testing.T) {
	f := NewFixed(128, 16)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		f.Add(rng.Intn(128), int64(rng.Intn(1000)))
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := UnmarshalFixed(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.Width() != f.Width() || g.CounterBits() != f.CounterBits() {
		t.Fatal("geometry lost")
	}
	for i := 0; i < 128; i++ {
		if g.Value(i) != f.Value(i) {
			t.Fatalf("slot %d: %d != %d", i, g.Value(i), f.Value(i))
		}
	}
}

func TestFixedSignMarshalRoundTrip(t *testing.T) {
	f := NewFixedSign(64, 32)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		f.Add(rng.Intn(64), int64(rng.Intn(2000))-1000)
	}
	data, _ := f.MarshalBinary()
	g, err := UnmarshalFixedSign(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if g.Value(i) != f.Value(i) {
			t.Fatalf("slot %d mismatch", i)
		}
	}
}

func TestSalsaMarshalRoundTrip(t *testing.T) {
	for _, compact := range []bool{false, true} {
		c := NewSalsa(128, 8, MaxMerge, compact)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 3000; i++ {
			c.Add(rng.Intn(128), int64(rng.Intn(500)))
		}
		data, err := c.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		g, err := UnmarshalSalsa(data)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 128; i++ {
			if g.Value(i) != c.Value(i) || g.Level(i) != c.Level(i) {
				t.Fatalf("compact=%v slot %d mismatch", compact, i)
			}
		}
		// The decoded array must remain fully operational, merges included.
		g.Add(0, 1<<40)
		if g.Level(0) != 3 {
			t.Fatal("decoded array cannot merge")
		}
	}
}

func TestSalsaSignMarshalRoundTrip(t *testing.T) {
	c := NewSalsaSign(128, 8, false)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 3000; i++ {
		c.Add(rng.Intn(128), int64(rng.Intn(500))-250)
	}
	data, _ := c.MarshalBinary()
	g, err := UnmarshalSalsaSign(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 128; i++ {
		if g.Value(i) != c.Value(i) {
			t.Fatalf("slot %d mismatch", i)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalSalsa([]byte("nonsense")); err == nil {
		t.Fatal("accepted garbage")
	}
	if _, err := UnmarshalSalsa(nil); err == nil {
		t.Fatal("accepted nil")
	}
	// Kind confusion must be rejected.
	f := NewFixed(64, 8)
	data, _ := f.MarshalBinary()
	if _, err := UnmarshalSalsa(data); err == nil {
		t.Fatal("accepted a Fixed payload as Salsa")
	}
	// Truncation must be rejected.
	c := NewSalsa(64, 8, SumMerge, false)
	data, _ = c.MarshalBinary()
	if _, err := UnmarshalSalsa(data[:len(data)-4]); err == nil {
		t.Fatal("accepted truncated payload")
	}
}
