package core

import "math/bits"

// Word-parallel (SWAR) merge kernels. MergeFrom/SubtractFrom are the backbone
// of the sliding-window rotation and the sharded snapshot paths, and the
// per-counter loops in fixed.go/signmag.go/salsa.go pay a bit-extraction and
// (for SALSA) a layout probe per counter. The kernels below instead combine
// one full 64-bit word of counters per step — 64/bits lanes at a time — and
// only drop to the per-counter path for the rare words where a lane
// saturates, clamps, or (for SALSA) overflows its counter and must trigger
// the same level-raise the per-counter path performs. The fallbacks replay
// the per-counter semantics exactly, so a kernel merge is byte-for-byte
// identical to the scalar merge it replaces (the equivalence is pinned by
// TestSWARKernelEquivalence and FuzzMergeKernels).
//
// Lane layout: every Fixed/FixedSign/Salsa/SalsaSign counter is self-aligned
// with a power-of-two bit size ≤ 64, so counters never straddle words and a
// word is an exact sequence of lanes. The carry/borrow telltale of a packed
// add/sub is the classic bitwise carry-out recurrence; a carry (borrow) out
// of a lane's top bit is what distinguishes "this word is an exact
// lane-wise result" from "some lane needs the slow path".

// laneTopMask returns the mask with the top bit of every k-bit lane set
// (k a power of two ≤ 32; 64-bit lanes are handled word-at-a-time).
func laneTopMask(k uint) uint64 {
	m := uint64(1) << (k - 1)
	for sh := k; sh < 64; sh <<= 1 {
		m |= m << sh
	}
	return m
}

// carryOut returns the per-bit carry-out vector of the addition a+b=s.
func carryOut(a, b, s uint64) uint64 { return (a & b) | ((a | b) &^ s) }

// borrowOut returns the per-bit borrow-out vector of the subtraction a−b=d.
func borrowOut(a, b, d uint64) uint64 { return (^a & b) | ((^a | b) & d) }

// --- Fixed ------------------------------------------------------------------

// mergeWords adds the counter words ow into f lane-wise, saturating at the
// counter maximum. A word whose lane sums all fit is written with a single
// 64-bit add (no carry escapes any lane top); a word with at least one
// saturating lane is recomputed lane-by-lane.
func (f *Fixed) mergeWords(ow []uint64) {
	k := f.bits
	if k == 64 {
		for i, b := range ow {
			f.words[i] = satAdd(f.words[i], b)
		}
		return
	}
	hi := laneTopMask(k)
	mask := f.maxV
	for i, b := range ow {
		if b == 0 {
			continue
		}
		a := f.words[i]
		s := a + b
		if carryOut(a, b, s)&hi == 0 {
			f.words[i] = s
			continue
		}
		var out uint64
		for off := uint(0); off < 64; off += k {
			nv := ((a >> off) & mask) + ((b >> off) & mask)
			if nv > mask {
				nv = mask
			}
			out |= nv << off
		}
		f.words[i] = out
	}
}

// subtractWords subtracts the counter words ow from f lane-wise, clamping at
// zero. A word with no lane borrow is written with a single 64-bit subtract;
// a word with at least one clamping lane is recomputed lane-by-lane.
func (f *Fixed) subtractWords(ow []uint64) {
	k := f.bits
	if k == 64 {
		for i, b := range ow {
			if cur := f.words[i]; b >= cur {
				f.words[i] = 0
			} else {
				f.words[i] = cur - b
			}
		}
		return
	}
	hi := laneTopMask(k)
	mask := f.maxV
	for i, b := range ow {
		if b == 0 {
			continue
		}
		a := f.words[i]
		d := a - b
		if borrowOut(a, b, d)&hi == 0 {
			f.words[i] = d
			continue
		}
		var out uint64
		for off := uint(0); off < 64; off += k {
			av, bv := (a>>off)&mask, (b>>off)&mask
			if bv < av {
				out |= (av - bv) << off
			}
		}
		f.words[i] = out
	}
}

// --- FixedSign --------------------------------------------------------------

// mergeWordsSigned adds (sub false) or subtracts (sub true) the two's-
// complement counter words ow into f lane-wise, saturating at ±maxV. The
// packed add/sub uses the standard high-bit-split SWAR forms, which keep
// carries and borrows from crossing lane boundaries; a lane is sent to the
// slow path when it overflows signed arithmetic or lands on the
// unrepresentable −2^(k−1) (the rows saturate at ±(2^(k−1)−1)).
func (f *FixedSign) mergeWordsSigned(ow []uint64, sub bool) {
	k := f.bits
	hi := laneTopMask(k)
	mask := maxValue(k)
	for i, b := range ow {
		if b == 0 {
			continue
		}
		a := f.words[i]
		var s, ovf uint64
		if sub {
			s = ((a | hi) - (b &^ hi)) ^ ((a ^ ^b) & hi)
			ovf = (a ^ b) & (a ^ s) & hi
		} else {
			s = ((a &^ hi) + (b &^ hi)) ^ ((a ^ b) & hi)
			ovf = ^(a ^ b) & (a ^ s) & hi
		}
		// Lanes equal to −2^(k−1): sign bit set, all magnitude bits zero.
		// hi − lows stays inside each lane because hi ≥ lows lane-wise.
		isMin := (hi - (s &^ hi)) & s & hi
		if ovf|isMin == 0 {
			f.words[i] = s
			continue
		}
		var out uint64
		sc := int64(1)
		if sub {
			sc = -1
		}
		for off := uint(0); off < 64; off += k {
			av := signExtend((a>>off)&mask, k)
			bv := signExtend((b>>off)&mask, k)
			nv := av + sc*bv // k ≤ 32: cannot overflow int64
			if nv > f.maxV {
				nv = f.maxV
			} else if nv < -f.maxV {
				nv = -f.maxV
			}
			out |= (uint64(nv) & mask) << off
		}
		f.words[i] = out
	}
}

// --- SALSA ------------------------------------------------------------------

// laneBitsMask returns the mask of the low `lanes` bits (lanes ≤ 64).
func laneBitsMask(lanes uint) uint64 {
	if lanes == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << lanes) - 1
}

// pendHitsCounterTop reports whether any set bit of pend — a mask of lane
// top bits flagged by a carry, borrow, or sign telltale — falls on a lane
// whose merge bit is clear, i.e. on a counter's own top (sign) bit rather
// than an intra-counter boundary. Such a hit means a whole counter
// overflowed, clamped, or carries a sign, and the word needs the
// per-counter path.
func pendHitsCounterTop(pend, mw uint64, s uint) bool {
	for t := pend; t != 0; t &= t - 1 {
		if mw>>(uint(bits.TrailingZeros64(t))/s)&1 == 0 {
			return true
		}
	}
	return false
}

// mergeBitsFor returns the L=64/s merge bits guarding counter word w: bit q
// set means base slots wL+q and wL+q+1 belong to the same counter, so a
// carry out of lane q's top bit is an intra-counter carry (harmless),
// while a carry out of a lane with a clear bit overflows a whole counter.
// Counters are at most 64 bits, so the L bits never straddle a merge word
// and the last lane's bit is always clear.
func mergeBitsFor(blWords []uint64, w int, lanes uint) uint64 {
	off := uint(w) * lanes
	return blWords[off>>6] >> (off & 63)
}

// mergeFast is the word-parallel MergeFrom for two simple-encoding rows.
// Counters never span words, and merges and level-raises are word-local, so
// the rows compare layouts one counter word at a time: a word whose L merge
// bits match on both sides combines with one 64-bit add, with the merge
// bits distinguishing harmless intra-counter carries from genuine counter
// overflow. Words whose layouts differ — and overflowing words, which must
// trigger the same level-raises the scalar path performs — replay
// per-counter through raiseTo/store (mergeWordUnify), reaching the same
// values and layout as the scalar path (for matching layouts the raise
// odometer matches exactly too; across mismatched words the odometer may
// count the same raises in a different grouping). This word granularity is
// what keeps the window rotation's aggregate∪bucket merges fast: a loaded
// aggregate disagrees with a fresh bucket only in its heavy words.
// Returns false when either row uses the compact encoding.
func (c *Salsa) mergeFast(other *Salsa) bool {
	if c.blWords == nil || other.blWords == nil {
		return false
	}
	lanes := 64 / c.s
	lmask := laneBitsMask(lanes)
	hi := laneTopMask(c.s)
	sum := c.policy == SumMerge
	for w, b := range other.words {
		mw := mergeBitsFor(c.blWords, w, lanes) & lmask
		if mw != mergeBitsFor(other.blWords, w, lanes)&lmask {
			c.mergeWordUnify(other, w, lanes)
			continue
		}
		if b == 0 {
			continue
		}
		a := c.words[w]
		if !sum {
			// Max-merge has no word-parallel combine over variable-size
			// counters; handle the trivial words and replay the rest.
			if a == b {
				continue
			}
			if a == 0 {
				c.words[w] = b
				continue
			}
			c.mergeWordUnify(other, w, lanes)
			continue
		}
		s := a + b
		if pend := carryOut(a, b, s) & hi; pend != 0 && pendHitsCounterTop(pend, mw, c.s) {
			c.mergeWordUnify(other, w, lanes)
			continue
		}
		c.words[w] = s
	}
	return true
}

// mergeWordUnify replays the scalar merge for the counters of word w:
// raise c's counters to cover other's levels, then fold the values in with
// the policy's semantics, letting store cascade further raises on overflow.
// All of it stays inside word w (counters are at most 64 bits), so the
// per-word interleaving reaches the same fixpoint — values and layout — as
// the scalar path's global raise-then-add passes.
func (c *Salsa) mergeWordUnify(other *Salsa, w int, lanes uint) {
	base := w * int(lanes)
	for i, end := base, base+int(lanes); i < end; {
		lvl := other.level(i)
		val := readAligned(other.words, uint(i)*other.s, other.s<<lvl)
		if c.level(i) < lvl {
			c.raiseTo(i, lvl)
		}
		myLvl := c.level(i)
		myStart := i &^ (1<<myLvl - 1)
		cur := readAligned(c.words, uint(myStart)*c.s, c.s<<myLvl)
		if c.policy == SumMerge {
			c.store(myStart, myLvl, satAdd(cur, val))
		} else if val > cur {
			c.store(myStart, myLvl, val)
		}
		i += 1 << lvl
	}
}

// subtractFast is the word-parallel SubtractFrom for two simple-encoding
// rows: one 64-bit subtract per layout-matching word, with the merge bits
// separating intra-counter borrows from counter clamps. Mismatched and
// clamping words replay per-counter.
func (c *Salsa) subtractFast(other *Salsa) bool {
	if c.blWords == nil || other.blWords == nil {
		return false
	}
	lanes := 64 / c.s
	lmask := laneBitsMask(lanes)
	hi := laneTopMask(c.s)
	for w, b := range other.words {
		mw := mergeBitsFor(c.blWords, w, lanes) & lmask
		if mw != mergeBitsFor(other.blWords, w, lanes)&lmask {
			c.subtractWordUnify(other, w, lanes)
			continue
		}
		if b == 0 {
			continue
		}
		a := c.words[w]
		d := a - b
		if pend := borrowOut(a, b, d) & hi; pend != 0 && pendHitsCounterTop(pend, mw, c.s) {
			c.subtractWordUnify(other, w, lanes)
			continue
		}
		c.words[w] = d
	}
	return true
}

// subtractWordUnify replays the scalar subtraction for the counters of word
// w: raise c to cover other's levels (subtraction is SumMerge-only, so the
// raise sums exactly as the scalar path's), then clamp counter-wise.
func (c *Salsa) subtractWordUnify(other *Salsa, w int, lanes uint) {
	base := w * int(lanes)
	for i, end := base, base+int(lanes); i < end; {
		lvl := other.level(i)
		val := readAligned(other.words, uint(i)*other.s, other.s<<lvl)
		if c.level(i) < lvl {
			c.raiseTo(i, lvl)
		}
		myLvl := c.level(i)
		myStart := i &^ (1<<myLvl - 1)
		size := c.s << myLvl
		cur := readAligned(c.words, uint(myStart)*c.s, size)
		if val >= cur {
			cur = 0
		} else {
			cur -= val
		}
		writeAligned(c.words, uint(myStart)*c.s, size, cur)
		i += 1 << lvl
	}
}

// --- SalsaSign --------------------------------------------------------------

// mergeFastSigned is the word-parallel sum for two sign-magnitude
// simple-encoding rows, gated per counter word like (*Salsa).mergeFast.
// When a word's layouts match and every counter in it is non-negative in
// both rows, values coincide with their magnitudes, a plain 64-bit add is
// the exact counter-wise sum, and the magnitudes (each below 2^(size−1))
// cannot carry past a counter's sign bit. The telltale is any counter-top
// (sign) bit set in a, b, or the sum: a set source bit means a negative
// counter, a set sum bit a magnitude overflow that must merge-raise — both
// replay per-counter, as do words with mismatched layouts. Intra-counter
// lane tops are plain data bits and are ignored via the merge bits.
func (c *SalsaSign) mergeFastSigned(other *SalsaSign) bool {
	if c.blWords == nil || other.blWords == nil {
		return false
	}
	lanes := 64 / c.s
	lmask := laneBitsMask(lanes)
	hi := laneTopMask(c.s)
	for w, b := range other.words {
		mw := mergeBitsFor(c.blWords, w, lanes) & lmask
		if mw != mergeBitsFor(other.blWords, w, lanes)&lmask {
			c.mergeWordUnify(other, w, lanes, 1)
			continue
		}
		if b == 0 {
			continue
		}
		a := c.words[w]
		s := a + b
		if pend := (a | b | s) & hi; pend != 0 && pendHitsCounterTop(pend, mw, c.s) {
			c.mergeWordSameLayout(other, w, lanes, mw, 1)
			continue
		}
		c.words[w] = s
	}
	return true
}

// subtractFastSigned is mergeFastSigned for scale −1: on layout-matching
// words whose counters are non-negative on both sides and subtract without
// borrowing past any counter's top data bit, one 64-bit subtract is the
// exact counter-wise difference (and stays non-negative, so the encoding
// remains valid). Negative inputs, would-be-negative results, and
// mismatched words replay per-counter, where Add handles sign-magnitude
// re-encoding.
func (c *SalsaSign) subtractFastSigned(other *SalsaSign) bool {
	if c.blWords == nil || other.blWords == nil {
		return false
	}
	lanes := 64 / c.s
	lmask := laneBitsMask(lanes)
	hi := laneTopMask(c.s)
	for w, b := range other.words {
		mw := mergeBitsFor(c.blWords, w, lanes) & lmask
		if mw != mergeBitsFor(other.blWords, w, lanes)&lmask {
			c.mergeWordUnify(other, w, lanes, -1)
			continue
		}
		if b == 0 {
			continue
		}
		a := c.words[w]
		d := a - b
		if pend := (a | b | borrowOut(a, b, d)) & hi; pend != 0 && pendHitsCounterTop(pend, mw, c.s) {
			c.mergeWordSameLayout(other, w, lanes, mw, -1)
			continue
		}
		c.words[w] = d
	}
	return true
}

// mergeWordSameLayout folds word w counter-wise when both rows' layouts
// match on it, reading counter extents straight off the merge-bit word
// (a counter of 2^ℓ lanes shows as a run of 2^ℓ−1 set bits), so mixed-sign
// words — the norm for Count Sketch rows — skip the per-slot level probes.
// A magnitude overflow raises through store and invalidates the cached
// extents, so the rest of the word falls back to the level-probing walk.
func (c *SalsaSign) mergeWordSameLayout(other *SalsaSign, w int, lanes uint, mw uint64, scale int64) {
	base := w * int(lanes)
	for q := uint(0); q < lanes; {
		n := uint(bits.TrailingZeros64(^(mw >> q))) + 1
		size := c.s * n
		off := (uint(base) + q) * c.s
		av := decodeSM(readAligned(c.words, off, size), size)
		bv := decodeSM(readAligned(other.words, off, size), size)
		nv := satAddSigned(av, scale*bv)
		if nv >= -maxMag(size) && nv <= maxMag(size) {
			writeAligned(c.words, off, size, encodeSM(nv, size))
		} else {
			// Overflow: store raises (changing c's layout within this
			// word); replay the remaining lanes with live level probes.
			c.store(base+int(q), uint(bits.TrailingZeros64(uint64(n))), nv)
			c.mergeLanesUnify(other, base+int(q+n), base+int(lanes), scale)
			return
		}
		q += n
	}
}

// mergeWordUnify replays the scalar signed merge for the counters of word
// w: raise to cover other's levels, then fold scale times the values (Add
// recomputes the level per counter, mirroring mergeCounters; raises stay
// inside the word).
func (c *SalsaSign) mergeWordUnify(other *SalsaSign, w int, lanes uint, scale int64) {
	base := w * int(lanes)
	c.mergeLanesUnify(other, base, base+int(lanes), scale)
}

// mergeLanesUnify is mergeWordUnify over the base-slot range [i, end).
func (c *SalsaSign) mergeLanesUnify(other *SalsaSign, i, end int, scale int64) {
	for i < end {
		lvl := other.level(i)
		size := other.s << lvl
		val := decodeSM(readAligned(other.words, uint(i)*other.s, size), size)
		if c.level(i) < lvl {
			c.raiseTo(i, lvl)
		}
		c.Add(i, scale*val)
		i += 1 << lvl
	}
}
