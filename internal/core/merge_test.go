package core

import (
	"math/rand"
	"testing"
)

func TestSalsaMaxMergeFromBounds(t *testing.T) {
	// Max-merge sketch union: the merged array must dominate both inputs
	// pointwise and stay below the sum-merge union.
	const w = 64
	a := NewSalsa(w, 8, MaxMerge, false)
	b := NewSalsa(w, 8, MaxMerge, false)
	rng := rand.New(rand.NewSource(71))
	for op := 0; op < 8000; op++ {
		a.Add(rng.Intn(w), int64(rng.Intn(200)))
		b.Add(rng.Intn(w), int64(rng.Intn(200)))
	}
	beforeA := make([]uint64, w)
	beforeB := make([]uint64, w)
	for i := 0; i < w; i++ {
		beforeA[i], beforeB[i] = a.Value(i), b.Value(i)
	}
	a.MergeFrom(b)
	for i := 0; i < w; i++ {
		if a.Value(i) < beforeA[i] || a.Value(i) < beforeB[i] {
			t.Fatalf("slot %d: union %d below inputs (%d, %d)", i, a.Value(i), beforeA[i], beforeB[i])
		}
	}
}

func TestSalsaProbabilisticHalve(t *testing.T) {
	const w = 64
	c := NewSalsa(w, 8, MaxMerge, false)
	// Touch only even slots: each Add merges its pair into one 16-bit
	// counter holding exactly 1000 (adding to the odd slot too would land
	// in the same merged counter and double it).
	for i := 0; i < w; i += 2 {
		c.Add(i, 1000)
	}
	rng := rand.New(rand.NewSource(73))
	c.Halve(true, rng.Uint64, false)
	var total uint64
	for i := 0; i < w; i += 2 {
		v := c.Value(i)
		if v > 1000 {
			t.Fatalf("slot %d grew to %d", i, v)
		}
		total += v
	}
	// 32 merged counters of 1000 halved: expected total 16000, sd ≈ 90.
	if total < 15000 || total > 17000 {
		t.Fatalf("total after halving = %d, want ≈ 16000", total)
	}
}

func TestSalsaCountersEarlyStop(t *testing.T) {
	c := NewSalsa(64, 8, SumMerge, false)
	c.Add(0, 1)
	c.Add(1, 2)
	visits := 0
	c.Counters(func(start int, lvl uint, val uint64) bool {
		visits++
		return visits < 2
	})
	if visits != 2 {
		t.Fatalf("visits = %d, want early stop after 2", visits)
	}
}

func TestSalsaSubtractRequiresSum(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSalsa(64, 8, MaxMerge, false).SubtractFrom(NewSalsa(64, 8, MaxMerge, false))
}

func TestSalsaMergeGeometryMismatch(t *testing.T) {
	cases := []*Salsa{
		NewSalsa(128, 8, SumMerge, false), // width mismatch
		NewSalsa(64, 16, SumMerge, false), // s mismatch
		NewSalsa(64, 8, MaxMerge, false),  // policy mismatch
	}
	base := NewSalsa(64, 8, SumMerge, false)
	for i, other := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			base.MergeFrom(other)
		}()
	}
}

func TestSalsaSignLevelAccessor(t *testing.T) {
	c := NewSalsaSign(64, 8, false)
	c.Add(4, 1000)
	if c.Level(4) == 0 {
		t.Fatal("1000 must have merged an 8-bit signed counter")
	}
	if c.BaseBits() != 8 || c.Width() != 64 {
		t.Fatal("geometry accessors wrong")
	}
	if c.SizeBits() != 64*8+64 {
		t.Fatalf("SizeBits = %d", c.SizeBits())
	}
	if c.Merges() == 0 {
		t.Fatal("merge counter not tracked")
	}
}

func TestTangoDirectionAtArrayEdges(t *testing.T) {
	// A counter at slot 0 can only ever grow right; at the last slot the
	// first growth is left (its 2-block sibling).
	c := NewTango(16, 8, MaxMerge)
	c.SetAtLeast(0, 300)
	lo, hi := c.Span(0)
	if lo != 0 || hi != 1 {
		t.Fatalf("slot 0 span [%d,%d]", lo, hi)
	}
	c2 := NewTango(16, 8, MaxMerge)
	c2.SetAtLeast(15, 300)
	lo, hi = c2.Span(15)
	if lo != 14 || hi != 15 {
		t.Fatalf("slot 15 span [%d,%d]", lo, hi)
	}
}
