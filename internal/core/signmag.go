package core

import (
	"fmt"
	"math/bits"
)

// SalsaSign is a SALSA counter array of signed counters for the Count
// Sketch. Counters are stored in sign-magnitude representation (most
// significant bit = sign) rather than two's complement so that the overflow
// event is symmetric in sign, which is what keeps the SALSA Count Sketch
// unbiased (Lemma V.4). An s·2^ℓ-bit counter overflows when its magnitude
// would exceed 2^(s·2^ℓ−1)−1, and merges with sum semantics; max-merge is
// not meaningful for signed counters.
type SalsaSign struct {
	s      uint
	width  int
	maxLvl uint
	lay    layout
	// blWords is the simple encoding's merge-bit words, kept for a
	// devirtualized level() fast path; nil under the compact encoding.
	blWords []uint64
	words   []uint64
	merges  uint64
}

// NewSalsaSign returns a signed SALSA array of width base counters of s bits
// each (s a power of two in {2, ..., 32}; one bit is the sign).
func NewSalsaSign(width int, s uint, compact bool) *SalsaSign {
	return newSalsaSignIn(width, s, compact, nil, nil)
}

// newSalsaSignIn is NewSalsaSign over caller-provided backing storage: words
// holds the counters and layWords the simple encoding's merge bits (both nil
// allocates; layWords is ignored under the compact encoding).
func newSalsaSignIn(width int, s uint, compact bool, words, layWords []uint64) *SalsaSign {
	if !validBits(s, 32) || s < 2 {
		panic(fmt.Sprintf("core: invalid signed SALSA base counter size %d", s))
	}
	maxLvl := uint(bits.TrailingZeros(64 / s))
	if width <= 0 || width%(1<<maxLvl) != 0 {
		panic(fmt.Sprintf("core: SALSA width %d must be a positive multiple of %d", width, 1<<maxLvl))
	}
	var lay layout
	var blWords []uint64
	if compact {
		lay = newCompactLayout(width, maxLvl)
	} else {
		var bl *bitLayout
		if layWords == nil {
			bl = newBitLayout(width, maxLvl)
		} else {
			bl = newBitLayoutIn(width, maxLvl, layWords)
		}
		lay = bl
		blWords = bl.bits.Words()
	}
	if words == nil {
		words = make([]uint64, counterWords(width, s))
	}
	return &SalsaSign{
		s:       s,
		width:   width,
		maxLvl:  maxLvl,
		lay:     lay,
		blWords: blWords,
		words:   words,
	}
}

// level avoids the layout interface dispatch on the update/query hot path
// for the simple encoding, probing the merge-bit words directly; the probe
// is identical to (*Salsa).level.
//
//salsa:hotpath
func (c *SalsaSign) level(i int) uint {
	words := c.blWords
	if words == nil {
		return c.lay.level(i)
	}
	wbits := words[i>>6]
	lvl := uint(0)
	for lvl < c.maxLvl {
		pos := i&^(1<<(lvl+1)-1) + 1<<lvl - 1
		if wbits&(1<<(uint(pos)&63)) == 0 {
			break
		}
		lvl++
	}
	return lvl
}

// Width returns the number of base counter slots.
func (c *SalsaSign) Width() int { return c.width }

// BaseBits returns s, the initial per-counter size in bits.
func (c *SalsaSign) BaseBits() uint { return c.s }

// SizeBits returns the memory footprint in bits including encoding overhead.
func (c *SalsaSign) SizeBits() int { return c.width*int(c.s) + c.lay.overheadBits() }

// Merges returns the number of merge operations performed so far.
func (c *SalsaSign) Merges() uint64 { return c.merges }

// Level returns the merge level of the counter containing base slot i.
func (c *SalsaSign) Level(i int) uint { return c.lay.level(i) }

// Reset zeroes every counter and un-merges the layout, restoring the
// freshly-constructed state; the backing memory is reused.
func (c *SalsaSign) Reset() {
	for i := range c.words {
		c.words[i] = 0
	}
	c.lay.reset()
	c.merges = 0
}

// maxMag returns the largest representable magnitude at the given size.
//
//salsa:hotpath
func maxMag(size uint) int64 { return int64(maxValue(size) >> 1) }

// decodeSM converts a raw sign-magnitude field of the given size to int64.
//
//salsa:hotpath
func decodeSM(raw uint64, size uint) int64 {
	mag := int64(raw & (maxValue(size) >> 1))
	if raw>>(size-1)&1 == 1 {
		return -mag
	}
	return mag
}

// encodeSM converts v (|v| ≤ maxMag(size)) to a raw sign-magnitude field.
//
//salsa:hotpath
func encodeSM(v int64, size uint) uint64 {
	if v < 0 {
		return uint64(-v) | 1<<(size-1)
	}
	return uint64(v)
}

// Value returns the value of the counter containing base slot i.
//
//salsa:hotpath
func (c *SalsaSign) Value(i int) int64 {
	lvl := c.level(i)
	start := i &^ (1<<lvl - 1)
	size := c.s << lvl
	return decodeSM(readAligned(c.words, uint(start)*c.s, size), size)
}

// Add adds v (of either sign) to the counter containing base slot i,
// merging when the magnitude overflows.
//
//salsa:hotpath
func (c *SalsaSign) Add(i int, v int64) {
	lvl := c.level(i)
	start := i &^ (1<<lvl - 1)
	size := c.s << lvl
	cur := decodeSM(readAligned(c.words, uint(start)*c.s, size), size)
	c.store(start, lvl, satAddSigned(cur, v))
}

// store places nv into the counter at (start, lvl), merging upward until
// the magnitude fits; merged values are the signed sum of the parts.
//
//salsa:hotpath
func (c *SalsaSign) store(start int, lvl uint, nv int64) {
	for {
		size := c.s << lvl
		if nv >= -maxMag(size) && nv <= maxMag(size) {
			writeAligned(c.words, uint(start)*c.s, size, encodeSM(nv, size))
			return
		}
		if size >= 64 {
			// Saturate at the 63-bit magnitude limit.
			if nv > 0 {
				nv = maxMag(64)
			} else {
				nv = -maxMag(64)
			}
			writeAligned(c.words, uint(start)*c.s, size, encodeSM(nv, size))
			return
		}
		sibStart := start ^ (1 << lvl)
		nv = satAddSigned(nv, c.blockSum(sibStart, lvl))
		lvl++
		start &^= 1<<lvl - 1
		c.lay.mergeTo(start, lvl)
		writeAligned(c.words, uint(start)*c.s, c.s<<lvl, 0)
		c.merges++
	}
}

// blockSum returns the signed sum of all counters inside the 2^lvl-aligned
// block starting at start.
//
//salsa:hotpath
func (c *SalsaSign) blockSum(start int, lvl uint) int64 {
	var total int64
	end := start + 1<<lvl
	for i := start; i < end; {
		l := c.lay.level(i)
		size := c.s << l
		total = satAddSigned(total, decodeSM(readAligned(c.words, uint(i)*c.s, size), size))
		i += 1 << l
	}
	return total
}

// Counters calls fn for every counter in slot order, stopping early if fn
// returns false.
func (c *SalsaSign) Counters(fn func(start int, lvl uint, val int64) bool) {
	for i := 0; i < c.width; {
		lvl := c.lay.level(i)
		size := c.s << lvl
		if !fn(i, lvl, decodeSM(readAligned(c.words, uint(i)*c.s, size), size)) {
			return
		}
		i += 1 << lvl
	}
}

// raiseTo merges the counter containing slot i upward to the target level.
func (c *SalsaSign) raiseTo(i int, target uint) {
	for {
		lvl := c.lay.level(i)
		if lvl >= target {
			return
		}
		start := i &^ (1<<lvl - 1)
		size := c.s << lvl
		cur := decodeSM(readAligned(c.words, uint(start)*c.s, size), size)
		cur = satAddSigned(cur, c.blockSum(start^(1<<lvl), lvl))
		lvl++
		start &^= 1<<lvl - 1
		c.lay.mergeTo(start, lvl)
		writeAligned(c.words, uint(start)*c.s, c.s<<lvl, 0)
		c.merges++
		c.store(start, lvl, cur)
	}
}

// MergeFrom adds scale times other into c counter-wise; scale is +1 for the
// sketch union s(A∪B) and −1 for the difference s(A\B) used by change
// detection (§V). The layout becomes the union of both layouts. For
// simple-encoding rows both scales run word-parallel over the
// layout-matching, non-negative counter words (see merge.go).
func (c *SalsaSign) MergeFrom(other *SalsaSign, scale int64) {
	if scale != 1 && scale != -1 {
		panic("core: scale must be ±1")
	}
	if !c.SameGeometry(other) {
		panic("core: SALSA geometry mismatch")
	}
	if scale == 1 && c.mergeFastSigned(other) {
		return
	}
	if scale == -1 && c.subtractFastSigned(other) {
		return
	}
	c.mergeFromGeneric(other, scale)
}

// mergeFromGeneric is the layout-unifying reference merge; mergeFastSigned
// must stay byte-for-byte equivalent to it when the layouts already match.
func (c *SalsaSign) mergeFromGeneric(other *SalsaSign, scale int64) {
	other.Counters(func(start int, lvl uint, val int64) bool {
		if c.lay.level(start) < lvl {
			c.raiseTo(start, lvl)
		}
		return true
	})
	c.mergeCounters(other, scale)
}

// SameGeometry reports whether other can merge with c: decoders use it to
// reject payload combinations MergeFrom would panic on.
func (c *SalsaSign) SameGeometry(other *SalsaSign) bool {
	return c.width == other.width && c.s == other.s
}

// mergeCounters is the value pass of MergeFrom, after layouts are unified.
func (c *SalsaSign) mergeCounters(other *SalsaSign, scale int64) {
	other.Counters(func(start int, lvl uint, val int64) bool {
		c.Add(start, scale*val)
		return true
	})
}
