package core

import (
	"math/rand"
	"testing"
)

// The single-item fast primitives must leave an array bit-for-bit as the
// general methods would, falling back (returning false) in every case they
// cannot handle. Small base counters force constant merging, so the
// fallback routes are exercised heavily.

func salsaWordsEqual(t *testing.T, name string, a, b *Salsa) {
	t.Helper()
	for i := range a.words {
		if a.words[i] != b.words[i] {
			t.Fatalf("%s: counter words diverge at %d", name, i)
		}
	}
	for i := 0; i < a.width; i++ {
		if a.Level(i) != b.Level(i) {
			t.Fatalf("%s: level(%d): %d != %d", name, i, a.Level(i), b.Level(i))
		}
	}
}

func TestSalsaAddFastEquivalence(t *testing.T) {
	for _, s := range []uint{2, 8} {
		rng := rand.New(rand.NewSource(int64(s)))
		fast := NewSalsa(256, s, MaxMerge, false)
		gen := NewSalsa(256, s, MaxMerge, false)
		for step := 0; step < 40000; step++ {
			slot := uint32(rng.Intn(256))
			v := int64(1 + rng.Intn(9))
			if !fast.AddFast(slot, v) {
				fast.Add(int(slot), v)
			}
			gen.Add(int(slot), v)
		}
		salsaWordsEqual(t, "AddFast", fast, gen)
	}
}

func TestSalsaSetAtLeastFastEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fast := NewSalsa(256, 2, MaxMerge, false)
	gen := NewSalsa(256, 2, MaxMerge, false)
	target := uint64(0)
	for step := 0; step < 40000; step++ {
		slot := uint32(rng.Intn(256))
		if step%97 == 0 {
			target += uint64(rng.Intn(50)) // occasionally jump past the size
		}
		v := target + uint64(rng.Intn(4))
		if !fast.SetAtLeastFast(slot, v) {
			fast.SetAtLeast(int(slot), v)
		}
		gen.SetAtLeast(int(slot), v)
	}
	salsaWordsEqual(t, "SetAtLeastFast", fast, gen)
}

func TestSalsaValueFastEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	arr := NewSalsa(256, 2, MaxMerge, false)
	for step := 0; step < 30000; step++ {
		arr.Add(rng.Intn(256), int64(1+rng.Intn(5)))
	}
	for i := 0; i < 256; i++ {
		v, ok := arr.ValueFast(uint32(i))
		if !ok {
			t.Fatalf("ValueFast declined on the simple encoding at %d", i)
		}
		if want := arr.Value(i); v != want {
			t.Fatalf("ValueFast(%d) = %d, want %d", i, v, want)
		}
	}
	// Compact encoding must decline, never lie.
	compact := NewSalsa(256, 8, MaxMerge, true)
	if _, ok := compact.ValueFast(0); ok {
		t.Fatal("ValueFast accepted a compact-encoding array")
	}
	if compact.AddFast(0, 1) {
		t.Fatal("AddFast accepted a compact-encoding array")
	}
	if compact.SetAtLeastFast(0, 1) {
		t.Fatal("SetAtLeastFast accepted a compact-encoding array")
	}
}

func TestSalsaSignAddSignedFastEquivalence(t *testing.T) {
	for _, s := range []uint{2, 8} {
		rng := rand.New(rand.NewSource(int64(s)))
		fast := NewSalsaSign(256, s, false)
		gen := NewSalsaSign(256, s, false)
		for step := 0; step < 40000; step++ {
			slot := uint32(rng.Intn(256))
			v := int64(rng.Intn(9) - 4)
			if !fast.AddSignedFast(slot, v) {
				fast.Add(int(slot), v)
			}
			gen.Add(int(slot), v)
		}
		for i := range fast.words {
			if fast.words[i] != gen.words[i] {
				t.Fatalf("s=%d: counter words diverge at %d", s, i)
			}
		}
		for i := 0; i < 256; i++ {
			v, ok := fast.ValueFast(uint32(i))
			if !ok || v != gen.Value(i) {
				t.Fatalf("s=%d: ValueFast(%d) = (%d,%v), want %d", s, i, v, ok, gen.Value(i))
			}
		}
	}
}

// TestSalsaSignMinInt64Clamp pins the negative-zero regression: a sum
// landing exactly on MinInt64 passes satAddSigned unsaturated, and an
// unclamped sign-magnitude encode at size 64 would fold it to 0 instead of
// the general path's -maxMag(64) saturation.
func TestSalsaSignMinInt64Clamp(t *testing.T) {
	const minI64 = -1 << 63
	build := func() *SalsaSign {
		c := NewSalsaSign(64, 8, false)
		c.raiseTo(0, 3) // one fully-merged 64-bit counter over slots 0..7
		return c
	}
	want := build()
	want.Add(0, minI64)
	fast := build()
	if !fast.AddSignedFast(0, minI64) {
		fast.Add(0, minI64)
	}
	if fast.Value(0) != want.Value(0) || want.Value(0) != -maxMag(64) {
		t.Fatalf("AddSignedFast: got %d, general %d, want %d", fast.Value(0), want.Value(0), -maxMag(64))
	}
	rows := []*SalsaSign{build()}
	// Mask 0 routes the item to slot 0; ±1·MinInt64 is MinInt64 either way
	// (two's-complement negation wraps), so the sign hash drops out.
	SalsaSignUpdateEach(rows, []uint64{0}, []uint64{0}, 0, 1, minI64)
	gen := build()
	gen.Add(0, minI64)
	if rows[0].Value(0) != gen.Value(0) {
		t.Fatalf("SalsaSignUpdateEach: got %d, general %d", rows[0].Value(0), gen.Value(0))
	}
}

func TestTangoFastEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fast := NewTango(256, 2, MaxMerge)
	gen := NewTango(256, 2, MaxMerge)
	for step := 0; step < 40000; step++ {
		slot := uint32(rng.Intn(256))
		v := int64(1 + rng.Intn(5))
		if !fast.AddFast(slot, v) {
			fast.Add(int(slot), v)
		}
		gen.Add(int(slot), v)
	}
	for i := range fast.words {
		if fast.words[i] != gen.words[i] {
			t.Fatalf("counter words diverge at %d", i)
		}
	}
	if !fast.link.Equal(gen.link) {
		t.Fatal("link bits diverge")
	}
	for i := 0; i < 256; i++ {
		if v, ok := fast.ValueFast(uint32(i)); ok && v != gen.Value(i) {
			t.Fatalf("ValueFast(%d) = %d, want %d", i, v, gen.Value(i))
		}
	}
}

// TestProbeLevel8 pins the parallel three-bit probe against the layout's
// authoritative level over every state the benchmark regime reaches.
func TestProbeLevel8(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	arr := NewSalsa(512, 8, MaxMerge, false)
	check := func() {
		for i := 0; i < 512; i++ {
			if got, want := probeLevel8(arr.blWords[i>>6], uint(i)), arr.lay.level(i); got != want {
				t.Fatalf("probeLevel8(%d) = %d, want %d", i, got, want)
			}
		}
	}
	check()
	for step := 0; step < 60000; step++ {
		arr.Add(rng.Intn(512), int64(1+rng.Intn(200)))
		if step%5000 == 0 {
			check()
		}
	}
	check()
	// Split back down (the AEE downsampling route) and re-check.
	arr.Halve(false, nil, true)
	check()
}

// TestArenaRows pins the arena constructors: identical geometry and
// behaviour to loose rows, contiguous backing, and cache-line alignment.
func TestArenaRows(t *testing.T) {
	rows := NewSalsaRows(4, 256, 8, MaxMerge, false)
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Width() != 256 || r.BaseBits() != 8 {
			t.Fatal("arena row geometry mismatch")
		}
	}
	// Rows must be independent: writing one must not affect the others.
	rows[0].Add(0, 200)
	rows[1].Add(0, 1)
	if rows[0].Value(0) != 200 || rows[1].Value(0) != 1 || rows[2].Value(0) != 0 {
		t.Fatal("arena rows are not independent")
	}
	tango := NewTangoRows(3, 128, 8, MaxMerge)
	tango[1].Add(5, 300) // forces a link-bit write
	if tango[0].Value(5) != 0 || tango[2].Value(5) != 0 {
		t.Fatal("tango arena rows are not independent")
	}
	signed := NewSalsaSignRows(5, 128, 8, false)
	signed[2].Add(7, -3)
	if signed[2].Value(7) != -3 || signed[3].Value(7) != 0 {
		t.Fatal("signed arena rows are not independent")
	}
	fixed := NewFixedRows(4, 100, 32)
	fixed[3].Add(99, 7)
	if fixed[3].Value(99) != 7 || fixed[0].Value(99) != 0 {
		t.Fatal("fixed arena rows are not independent")
	}
	fs := NewFixedSignRows(4, 100, 32)
	fs[0].Add(1, -9)
	if fs[0].Value(1) != -9 || fs[1].Value(1) != 0 {
		t.Fatal("fixed-sign arena rows are not independent")
	}
}
