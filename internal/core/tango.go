package core

import (
	"fmt"

	"salsa/internal/bitvec"
)

// Tango is the fine-grained variant of SALSA (§IV, "Fine-grained Counter
// Merges"): counters grow one s-bit cell at a time instead of doubling.
// The merge bit m[j] records that cells j and j+1 belong to the same
// counter, and the merge direction always works toward the smallest
// enclosing power-of-two-aligned block, so that a Tango counter is at all
// times contained in the counter SALSA would have built from the same
// updates. Counter values are capped at 64 bits.
type Tango struct {
	s      uint
	width  int
	policy MergePolicy
	link   *bitvec.Vector // link.Get(j): cells j and j+1 are one counter
	words  []uint64
	merges uint64
}

// NewTango returns a Tango array of width base counters of s bits each
// (s a power of two in {1, .., 32}); width must be a power of two so block
// alignment is defined across the whole array.
func NewTango(width int, s uint, policy MergePolicy) *Tango {
	return newTangoIn(width, s, policy, nil, nil)
}

// newTangoIn is NewTango over caller-provided backing storage: words holds
// the counter cells and linkWords the merge-link bits (both nil allocates).
func newTangoIn(width int, s uint, policy MergePolicy, words, linkWords []uint64) *Tango {
	if !validBits(s, 32) {
		panic(fmt.Sprintf("core: invalid Tango base counter size %d", s))
	}
	if width <= 0 || width&(width-1) != 0 {
		panic(fmt.Sprintf("core: Tango width %d must be a power of two", width))
	}
	link := bitvec.New(width) // bit width-1 unused
	if linkWords != nil {
		link = bitvec.NewIn(width, linkWords)
	}
	if words == nil {
		words = make([]uint64, counterWords(width, s))
	}
	return &Tango{
		s:      s,
		width:  width,
		policy: policy,
		link:   link,
		words:  words,
	}
}

// Width returns the number of base counter slots.
func (t *Tango) Width() int { return t.width }

// BaseBits returns s, the initial per-counter size in bits.
func (t *Tango) BaseBits() uint { return t.s }

// SizeBits returns the memory footprint in bits including the one merge bit
// per counter.
func (t *Tango) SizeBits() int { return t.width*int(t.s) + t.width }

// Merges returns the number of cell-absorptions performed so far.
func (t *Tango) Merges() uint64 { return t.merges }

// Span returns the base-cell range [lo, hi] of the counter containing cell i
// by scanning the merge bits outward until unset bits are found (§IV).
//
//salsa:hotpath
func (t *Tango) Span(i int) (lo, hi int) {
	lo, hi = i, i
	for lo > 0 && t.link.Get(lo-1) {
		lo--
	}
	for hi < t.width-1 && t.link.Get(hi) {
		hi++
	}
	return lo, hi
}

// spanBits returns the bit-size of a span of n cells.
//
//salsa:hotpath
func (t *Tango) spanBits(n int) uint { return uint(n) * t.s }

// readCounter reads the value of the counter spanning cells [lo, hi]. For
// spans wider than 64 bits only the low 64 bits hold the (saturating) value.
//
//salsa:hotpath
func (t *Tango) readCounter(lo, hi int) uint64 {
	n := t.spanBits(hi - lo + 1)
	if n > 64 {
		n = 64
	}
	return readSpan(t.words, uint(lo)*t.s, n)
}

// writeCounter writes v into the counter spanning cells [lo, hi], zeroing
// any bits of the span beyond 64.
//
//salsa:hotpath
func (t *Tango) writeCounter(lo, hi int, v uint64) {
	n := t.spanBits(hi - lo + 1)
	if n > 64 {
		zeroSpan(t.words, uint(lo)*t.s+64, n-64)
		n = 64
	}
	writeSpan(t.words, uint(lo)*t.s, n, v)
}

// fits reports whether v is representable in a span of n cells.
//
//salsa:hotpath
func (t *Tango) fits(v uint64, cells int) bool {
	b := t.spanBits(cells)
	return b >= 64 || v <= maxValue(b)
}

// Value returns the value of the counter containing cell i.
//
//salsa:hotpath
func (t *Tango) Value(i int) uint64 {
	lo, hi := t.Span(i)
	return t.readCounter(lo, hi)
}

// Add adds v to the counter containing cell i, absorbing neighbor cells on
// overflow. Negative v subtracts (SumMerge only), clamping at zero.
//
//salsa:hotpath
func (t *Tango) Add(i int, v int64) {
	lo, hi := t.Span(i)
	cur := t.readCounter(lo, hi)
	if v < 0 {
		if t.policy != SumMerge {
			panic("core: negative update on a max-merge Tango array")
		}
		d := uint64(-v)
		if d >= cur {
			cur = 0
		} else {
			cur -= d
		}
		t.writeCounter(lo, hi, cur)
		return
	}
	t.store(lo, hi, satAdd(cur, uint64(v)))
}

// SetAtLeast raises the counter containing cell i to at least v.
//
//salsa:hotpath
func (t *Tango) SetAtLeast(i int, v uint64) {
	lo, hi := t.Span(i)
	if v <= t.readCounter(lo, hi) {
		return
	}
	t.store(lo, hi, v)
}

// store places nv in the counter spanning [lo, hi], absorbing neighbor
// counters one target cell at a time until nv fits.
//
//salsa:hotpath
func (t *Tango) store(lo, hi int, nv uint64) {
	for !t.fits(nv, hi-lo+1) {
		dir, ok := t.growDirection(lo, hi)
		if !ok {
			nv = ^uint64(0) // the whole array is one counter; saturate
			break
		}
		var nlo, nhi int
		if dir < 0 {
			nlo, nhi = t.Span(lo - 1)
			t.link.Set(lo - 1)
		} else {
			nlo, nhi = t.Span(hi + 1)
			t.link.Set(hi)
		}
		other := t.readCounter(nlo, nhi)
		if t.policy == SumMerge {
			nv = satAdd(nv, other)
		} else if other > nv {
			nv = other
		}
		if dir < 0 {
			lo = nlo
		} else {
			hi = nhi
		}
		t.merges++
	}
	t.writeCounter(lo, hi, nv)
}

// growDirection picks which neighbor cell to absorb, mimicking SALSA's
// alignment (§IV): grow toward completing the smallest power-of-two-aligned
// block containing the span; once the span is a full block, grow toward the
// parent block's other half.
//
//salsa:hotpath
func (t *Tango) growDirection(lo, hi int) (dir int, ok bool) {
	if lo == 0 && hi == t.width-1 {
		return 0, false
	}
	bSize := 1
	var bStart int
	for {
		bStart = lo &^ (bSize - 1)
		if hi < bStart+bSize {
			break
		}
		bSize <<= 1
	}
	if lo == bStart && hi == bStart+bSize-1 {
		// Span is exactly the block; grow toward the sibling half of the
		// parent block.
		parentStart := bStart &^ (2*bSize - 1)
		if parentStart == bStart {
			if hi+1 < t.width {
				return 1, true
			}
			return -1, true
		}
		if lo > 0 {
			return -1, true
		}
		return 1, true
	}
	// Span is a proper sub-range of the block; finish covering it. The
	// growth rule keeps the uncovered cells on one side only.
	if lo > bStart {
		return -1, true
	}
	return 1, true
}

// Reset zeroes every counter and clears the merge links, restoring the
// freshly-constructed state; the backing memory is reused (the
// sliding-window bucket-rotation primitive).
func (t *Tango) Reset() {
	for i := range t.words {
		t.words[i] = 0
	}
	t.link.Reset()
	t.merges = 0
}

// SameGeometry reports whether other can merge with t: decoders use it to
// reject payload combinations MergeFrom would panic on.
func (t *Tango) SameGeometry(other *Tango) bool {
	return t.width == other.width && t.s == other.s && t.policy == other.policy
}

// MergeFrom adds other into t counter-wise, producing the sketch-union row
// s(A∪B) with the policy's combine semantics. For every counter of other, t
// first grows its own counter until the span is covered — absorbing
// neighbors with the same deterministic direction rule overflow merges use,
// so merged layouts stay reachable Tango states — then folds the value in,
// triggering further growth if the combined value overflows the span.
func (t *Tango) MergeFrom(other *Tango) {
	if !t.SameGeometry(other) {
		panic("core: Tango geometry/policy mismatch")
	}
	other.Counters(func(lo, hi int, val uint64) bool {
		mlo, mhi := t.coverSpan(lo, hi)
		cur := t.readCounter(mlo, mhi)
		if t.policy == SumMerge {
			cur = satAdd(cur, val)
		} else if val > cur {
			cur = val
		}
		t.store(mlo, mhi, cur)
		return true
	})
}

// coverSpan grows the counter containing lo until its span covers [lo, hi]
// and returns the resulting span. Absorbed neighbor values combine with the
// policy's semantics, exactly as overflow growth in store does.
func (t *Tango) coverSpan(lo, hi int) (int, int) {
	mlo, mhi := t.Span(lo)
	for mhi < hi {
		dir, ok := t.growDirection(mlo, mhi)
		if !ok {
			break
		}
		cur := t.readCounter(mlo, mhi)
		var nlo, nhi int
		if dir < 0 {
			nlo, nhi = t.Span(mlo - 1)
			t.link.Set(mlo - 1)
		} else {
			nlo, nhi = t.Span(mhi + 1)
			t.link.Set(mhi)
		}
		nb := t.readCounter(nlo, nhi)
		if t.policy == SumMerge {
			cur = satAdd(cur, nb)
		} else if nb > cur {
			cur = nb
		}
		if dir < 0 {
			mlo = nlo
		} else {
			mhi = nhi
		}
		t.merges++
		t.writeCounter(mlo, mhi, cur)
	}
	return mlo, mhi
}

// Counters calls fn for every counter in cell order with its span and
// value, stopping early if fn returns false.
func (t *Tango) Counters(fn func(lo, hi int, val uint64) bool) {
	for i := 0; i < t.width; {
		lo, hi := t.Span(i)
		if !fn(lo, hi, t.readCounter(lo, hi)) {
			return
		}
		i = hi + 1
	}
}
