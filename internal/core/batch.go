package core

// Batch slot updates. The sketches address rows through interfaces, so a
// per-item Add costs an interface dispatch per row; the AddSlots variants
// take a whole batch of pre-hashed slots (row widths fit easily in uint32)
// and amortize that dispatch — and let each row type keep its hot fields in
// registers across the batch.

// AddSlots adds v to every addressed counter, in slot order.
func (f *Fixed) AddSlots(slots []uint32, v int64) {
	words, bits, maxV := f.words, f.bits, f.maxV
	if v >= 0 {
		d := uint64(v)
		for _, i := range slots {
			cur := readAligned(words, uint(i)*bits, bits)
			nv := satAdd(cur, d)
			if nv > maxV {
				nv = maxV
			}
			writeAligned(words, uint(i)*bits, bits, nv)
		}
		return
	}
	for _, i := range slots {
		f.Add(int(i), v)
	}
}

// AddSlots adds v to every addressed counter, in slot order. Order matters
// for SALSA rows: counter merges fire exactly as they would under the same
// sequence of single Adds, so batch and sequential ingestion agree
// bit-for-bit. Unmerged counters that do not overflow — the common case on
// all but the heaviest slots — are updated inline with the array fields held
// in registers; merged or overflowing slots fall back to the general Add,
// which leaves the counter in the identical state the fast path would have.
func (s *Salsa) AddSlots(slots []uint32, v int64) {
	bl := s.blWords
	if v < 0 || bl == nil {
		for _, i := range slots {
			s.Add(int(i), v)
		}
		return
	}
	words, sb, maxLvl, d := s.words, s.s, s.maxLvl, uint64(v)
	for _, u := range slots {
		i := uint(u)
		// All merge bits this slot can probe lie in its 2^maxLvl-slot
		// block, and 2^maxLvl divides 64, so one merge-bit word load
		// replaces the level-by-level dependent loads of level(). The
		// probe itself is branchless — a fixed maxLvl-trip loop whose
		// data-dependent branches would otherwise mispredict on the mixed
		// merged/unmerged slot populations batches sweep over.
		wbits := bl[i>>6]
		lvl, t := uint(0), uint(1)
		for l := uint(0); l < maxLvl; l++ {
			pos := i&^(1<<(l+1)-1) + 1<<l - 1
			t &= uint(wbits>>(pos&63)) & 1
			lvl += t
		}
		start := i &^ (1<<lvl - 1)
		size := sb << lvl
		off := start * sb
		w, sh := off>>6, off&63
		if size == 64 {
			words[w] = satAdd(words[w], d)
			continue
		}
		mask := (uint64(1) << size) - 1
		if nv := (words[w]>>sh)&mask + d; nv <= mask {
			words[w] = words[w]&^(mask<<sh) | nv<<sh
		} else {
			s.Add(int(u), v) // overflow: merge via the general path
		}
	}
}

// AddSlots adds v to every addressed counter, in slot order.
func (t *Tango) AddSlots(slots []uint32, v int64) {
	for _, i := range slots {
		t.Add(int(i), v)
	}
}

// AddSignedSlots adds signs[j]*v to the counter addressed by slots[j], the
// Count Sketch batch primitive.
func (f *FixedSign) AddSignedSlots(slots []uint32, signs []int8, v int64) {
	_ = signs[len(slots)-1]
	for j, i := range slots {
		f.Add(int(i), int64(signs[j])*v)
	}
}

// AddSignedSlots adds signs[j]*v to the counter addressed by slots[j].
func (s *SalsaSign) AddSignedSlots(slots []uint32, signs []int8, v int64) {
	_ = signs[len(slots)-1]
	for j, i := range slots {
		s.Add(int(i), int64(signs[j])*v)
	}
}
