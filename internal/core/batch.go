package core

// Batch slot updates. The sketches address rows through interfaces, so a
// per-item Add costs an interface dispatch per row; the AddSlots variants
// take a whole batch of pre-hashed slots (row widths fit easily in uint32)
// and amortize that dispatch — and let each row type keep its hot fields in
// registers across the batch.

// AddSlots adds v to every addressed counter, in slot order.
//
//salsa:hotpath
func (f *Fixed) AddSlots(slots []uint32, v int64) {
	words, bits, maxV := f.words, f.bits, f.maxV
	if v >= 0 {
		d := uint64(v)
		for _, i := range slots {
			cur := readAligned(words, uint(i)*bits, bits)
			nv := satAdd(cur, d)
			if nv > maxV {
				nv = maxV
			}
			writeAligned(words, uint(i)*bits, bits, nv)
		}
		return
	}
	for _, i := range slots {
		f.Add(int(i), v)
	}
}

// AddSlots adds v to every addressed counter, in slot order. Order matters
// for SALSA rows: counter merges fire exactly as they would under the same
// sequence of single Adds, so batch and sequential ingestion agree
// bit-for-bit. Unmerged counters that do not overflow — the common case on
// all but the heaviest slots — are updated inline with the array fields held
// in registers; merged or overflowing slots fall back to the general Add,
// which leaves the counter in the identical state the fast path would have.
//
//salsa:hotpath
func (s *Salsa) AddSlots(slots []uint32, v int64) {
	if v < 0 || s.blWords == nil {
		for _, i := range slots {
			s.Add(int(i), v)
		}
		return
	}
	// The per-slot body is the branchless probe of fastLevel/AddFast: one
	// merge-bit word load replaces the level-by-level dependent loads of
	// level(), and the branchless probe avoids the data-dependent branches
	// that would mispredict on the mixed merged/unmerged slot populations
	// batches sweep over. 8-bit rows use the parallel three-bit probe.
	if s.s == 8 {
		bl, words, d := s.blWords, s.words, uint64(v)
		for _, u := range slots {
			i := uint(u)
			lvl := probeLevel8(bl[i>>6], i)
			off := (i &^ (1<<lvl - 1)) << 3
			w, sh := off>>6, off&63
			if lvl == 3 {
				words[w] = satAdd(words[w], d)
				continue
			}
			mask := (uint64(1) << (8 << lvl)) - 1
			if nv := (words[w]>>sh)&mask + d; nv <= mask {
				words[w] = words[w]&^(mask<<sh) | nv<<sh
			} else {
				s.Add(int(u), v) // overflow: merge via the general path
			}
		}
		return
	}
	words, sb, d := s.words, s.s, uint64(v)
	for _, u := range slots {
		i := uint(u)
		lvl := s.fastLevel(i)
		size := sb << lvl
		off := (i &^ (1<<lvl - 1)) * sb
		w, sh := off>>6, off&63
		if size == 64 {
			words[w] = satAdd(words[w], d)
			continue
		}
		mask := (uint64(1) << size) - 1
		if nv := (words[w]>>sh)&mask + d; nv <= mask {
			words[w] = words[w]&^(mask<<sh) | nv<<sh
		} else {
			s.Add(int(u), v) // overflow: merge via the general path
		}
	}
}

// AddSlots adds v to every addressed counter, in slot order. Unmerged cells
// that do not overflow are updated with one aligned read-modify-write and
// the link words held in registers; merged spans and overflows fall back to
// the general Add, whose span growth fires exactly as it would under the
// same sequence of single Adds.
//
//salsa:hotpath
func (t *Tango) AddSlots(slots []uint32, v int64) {
	if v < 0 {
		for _, i := range slots {
			t.Add(int(i), v)
		}
		return
	}
	words, link, sb, d := t.words, t.link.Words(), t.s, uint64(v)
	mask := (uint64(1) << sb) - 1
	for _, u := range slots {
		i := uint(u)
		merged := link[i>>6] >> (i & 63) & 1
		if i > 0 {
			merged |= link[(i-1)>>6] >> ((i - 1) & 63) & 1
		}
		if merged != 0 {
			t.Add(int(u), v) // merged span: general path scans and grows it
			continue
		}
		off := i * sb
		w, sh := off>>6, off&63
		if nv := (words[w]>>sh)&mask + d; nv <= mask {
			words[w] = words[w]&^(mask<<sh) | nv<<sh
		} else {
			t.Add(int(u), v) // overflow: absorb neighbors via the general path
		}
	}
}

// AddSignedSlots adds signs[j]*v to the counter addressed by slots[j], the
// Count Sketch batch primitive. The two's-complement read-modify-write runs
// with the array fields held in registers; saturation matches Add exactly.
//
//salsa:hotpath
func (f *FixedSign) AddSignedSlots(slots []uint32, signs []int8, v int64) {
	_ = signs[len(slots)-1]
	words, bits, maxV := f.words, f.bits, f.maxV
	mask := maxValue(bits)
	shift := 64 - bits
	for j, u := range slots {
		off := uint(u) * bits
		w, sh := off>>6, off&63
		cur := int64((words[w]>>sh&mask)<<shift) >> shift
		nv := satAddSigned(cur, int64(signs[j])*v)
		if nv > maxV {
			nv = maxV
		} else if nv < -maxV {
			nv = -maxV
		}
		words[w] = words[w]&^(mask<<sh) | (uint64(nv)&mask)<<sh
	}
}

// AddSignedSlots adds signs[j]*v to the counter addressed by slots[j], in
// slot order. Counters whose updated magnitude still fits are updated inline
// through the branchless merge-bit probe of AddSignedFast; overflows fall
// back to the general Add, so merges fire exactly as under sequential Adds.
//
//salsa:hotpath
func (s *SalsaSign) AddSignedSlots(slots []uint32, signs []int8, v int64) {
	_ = signs[len(slots)-1]
	if s.blWords == nil {
		for j, i := range slots {
			s.Add(int(i), int64(signs[j])*v)
		}
		return
	}
	for j, u := range slots {
		sv := int64(signs[j]) * v
		if !s.AddSignedFast(u, sv) {
			s.Add(int(u), sv)
		}
	}
}
