package core

// Single-item fast paths. The sketches' monomorphic cores (internal/sketch)
// call these directly — no interface dispatch — and every one is the
// item-wise mirror of the AddSlots batch probe: one merge-bit word load, a
// branchless fixed-trip level probe, and a single aligned read-modify-write.
// Each fast path either leaves the row bit-for-bit as the general method
// would, or reports false without touching anything so the caller can take
// the general path (counter overflow, compact encoding, negative updates).

// fastLevel returns the merge level of base slot u with a single branchless
// merge-bit-word probe. All merge bits slot u can probe lie in its
// 2^maxLvl-slot block, and 2^maxLvl divides 64, so one word load covers all
// probes. The caller guarantees the simple encoding (s.blWords non-nil).
//
//salsa:hotpath
func (s *Salsa) fastLevel(u uint) uint {
	wbits := s.blWords[u>>6]
	lvl, t := uint(0), uint(1)
	for l := uint(0); l < s.maxLvl; l++ {
		pos := u&^(1<<(l+1)-1) + 1<<l - 1
		t &= uint(wbits>>(pos&63)) & 1
		lvl += t
	}
	return lvl
}

// AddFast adds v to the counter containing base slot i when it can do so
// with one aligned read-modify-write, reporting whether it did; on false the
// caller must fall back to Add, which leaves the counter in the identical
// state the fast path would have. The fast path declines negative updates,
// compact-encoding arrays, and adds that would overflow (and so merge).
//
//salsa:hotpath
func (s *Salsa) AddFast(i uint32, v int64) bool {
	if s.blWords == nil || v < 0 {
		return false
	}
	u := uint(i)
	lvl := s.fastLevel(u)
	size := s.s << lvl
	off := (u &^ (1<<lvl - 1)) * s.s
	w, sh := off>>6, off&63
	if size == 64 {
		s.words[w] = satAdd(s.words[w], uint64(v))
		return true
	}
	mask := (uint64(1) << size) - 1
	nv := (s.words[w]>>sh)&mask + uint64(v)
	if nv > mask {
		return false
	}
	s.words[w] = s.words[w]&^(mask<<sh) | nv<<sh
	return true
}

// ValueFast returns the value of the counter containing base slot i with the
// branchless one-word probe; ok is false (and the caller falls back to
// Value) under the compact encoding.
//
//salsa:hotpath
func (s *Salsa) ValueFast(i uint32) (v uint64, ok bool) {
	if s.blWords == nil {
		return 0, false
	}
	u := uint(i)
	lvl := s.fastLevel(u)
	size := s.s << lvl
	off := (u &^ (1<<lvl - 1)) * s.s
	w, sh := off>>6, off&63
	if size == 64 {
		return s.words[w], true
	}
	return (s.words[w] >> sh) & ((uint64(1) << size) - 1), true
}

// SetAtLeastFast raises the counter containing base slot i to at least v
// when v fits the counter's current size, reporting whether it handled the
// update; on false the caller must fall back to SetAtLeast (which merges).
// This is the conservative-update fast primitive.
//
//salsa:hotpath
func (s *Salsa) SetAtLeastFast(i uint32, v uint64) bool {
	if s.blWords == nil {
		return false
	}
	u := uint(i)
	lvl := s.fastLevel(u)
	size := s.s << lvl
	off := (u &^ (1<<lvl - 1)) * s.s
	w, sh := off>>6, off&63
	if size == 64 {
		if v > s.words[w] {
			s.words[w] = v
		}
		return true
	}
	mask := (uint64(1) << size) - 1
	if v <= (s.words[w]>>sh)&mask {
		return true
	}
	if v > mask {
		return false
	}
	s.words[w] = s.words[w]&^(mask<<sh) | v<<sh
	return true
}

// fastLevel is (*Salsa).fastLevel for the signed array; caller guarantees
// the simple encoding (c.blWords non-nil).
//
//salsa:hotpath
func (c *SalsaSign) fastLevel(u uint) uint {
	wbits := c.blWords[u>>6]
	lvl, t := uint(0), uint(1)
	for l := uint(0); l < c.maxLvl; l++ {
		pos := u&^(1<<(l+1)-1) + 1<<l - 1
		t &= uint(wbits>>(pos&63)) & 1
		lvl += t
	}
	return lvl
}

// AddSignedFast adds v (either sign) to the counter containing base slot i
// when the result still fits the counter's current size, reporting whether
// it did; on false the caller must fall back to Add, which merges. The
// Count Sketch single-item and batch fast paths share it.
//
//salsa:hotpath
func (c *SalsaSign) AddSignedFast(i uint32, v int64) bool {
	if c.blWords == nil {
		return false
	}
	u := uint(i)
	lvl := c.fastLevel(u)
	size := c.s << lvl
	off := (u &^ (1<<lvl - 1)) * c.s
	w, sh := off>>6, off&63
	if size == 64 {
		nv := satAddSigned(decodeSM(c.words[w], 64), v)
		// satAddSigned only saturates on same-sign overflow: a sum landing
		// exactly on MinInt64 (= -maxMag(64)-1) passes through, and
		// encodeSM would fold it to negative zero. Clamp as store does.
		if nv < -maxMag(64) {
			nv = -maxMag(64)
		}
		c.words[w] = encodeSM(nv, 64)
		return true
	}
	mask := (uint64(1) << size) - 1
	nv := satAddSigned(decodeSM((c.words[w]>>sh)&mask, size), v)
	if nv > maxMag(size) || nv < -maxMag(size) {
		return false
	}
	c.words[w] = c.words[w]&^(mask<<sh) | encodeSM(nv, size)<<sh
	return true
}

// ValueFast returns the value of the counter containing base slot i with the
// branchless one-word probe; ok is false under the compact encoding.
//
//salsa:hotpath
func (c *SalsaSign) ValueFast(i uint32) (v int64, ok bool) {
	if c.blWords == nil {
		return 0, false
	}
	u := uint(i)
	lvl := c.fastLevel(u)
	size := c.s << lvl
	off := (u &^ (1<<lvl - 1)) * c.s
	w, sh := off>>6, off&63
	if size == 64 {
		return decodeSM(c.words[w], 64), true
	}
	return decodeSM((c.words[w]>>sh)&((uint64(1)<<size)-1), size), true
}

// unmergedFast reports whether cell u is an unmerged single-cell counter,
// reading the link bits directly (bit j set means cells j and j+1 are one
// counter; bit width−1 is never set, so the probe of bit u is safe at the
// last cell).
//
//salsa:hotpath
func (t *Tango) unmergedFast(link []uint64, u uint) bool {
	merged := link[u>>6] >> (u & 63) & 1
	if u > 0 {
		merged |= link[(u-1)>>6] >> ((u - 1) & 63) & 1
	}
	return merged == 0
}

// AddFast adds v to the counter at cell i when the cell is unmerged and the
// sum still fits one s-bit cell, reporting whether it did; on false the
// caller must fall back to Add (merged spans, overflow, negative updates).
// Single cells are self-aligned (s ≤ 32 divides 64), so the update is one
// word read-modify-write with no span scan.
//
//salsa:hotpath
func (t *Tango) AddFast(i uint32, v int64) bool {
	u := uint(i)
	if v < 0 || !t.unmergedFast(t.link.Words(), u) {
		return false
	}
	off := u * t.s
	w, sh := off>>6, off&63
	mask := (uint64(1) << t.s) - 1
	nv := (t.words[w]>>sh)&mask + uint64(v)
	if nv > mask {
		return false
	}
	t.words[w] = t.words[w]&^(mask<<sh) | nv<<sh
	return true
}

// ValueFast returns the value of the counter at cell i when the cell is
// unmerged — the common case on all but the heaviest slots — skipping the
// span scan; ok is false when the caller must fall back to Value.
//
//salsa:hotpath
func (t *Tango) ValueFast(i uint32) (v uint64, ok bool) {
	u := uint(i)
	if !t.unmergedFast(t.link.Words(), u) {
		return 0, false
	}
	off := u * t.s
	return (t.words[off>>6] >> (off & 63)) & ((uint64(1) << t.s) - 1), true
}

// SetAtLeastFast raises the counter at cell i to at least v when the cell is
// unmerged and v fits one s-bit cell, reporting whether it handled the
// update; on false the caller must fall back to SetAtLeast.
//
//salsa:hotpath
func (t *Tango) SetAtLeastFast(i uint32, v uint64) bool {
	u := uint(i)
	if !t.unmergedFast(t.link.Words(), u) {
		return false
	}
	off := u * t.s
	w, sh := off>>6, off&63
	mask := (uint64(1) << t.s) - 1
	if v <= (t.words[w]>>sh)&mask {
		return true
	}
	if v > mask {
		return false
	}
	t.words[w] = t.words[w]&^(mask<<sh) | v<<sh
	return true
}
