package core

import (
	"fmt"
	"math/bits"
)

// MergePolicy selects how the value of a merged counter is derived from the
// counters it absorbs (§V of the paper).
type MergePolicy int

const (
	// SumMerge sets a merged counter to the sum of its parts. Correct in
	// the Strict Turnstile model (Theorem V.1) and required by Count Sketch.
	SumMerge MergePolicy = iota
	// MaxMerge sets a merged counter to the maximum of its parts. Correct
	// in the Cash Register model (Theorem V.2) and required by the
	// Conservative Update Sketch (Theorem V.3); more accurate than
	// SumMerge when applicable.
	MaxMerge
)

// String returns the policy name used in experiment output.
func (p MergePolicy) String() string {
	switch p {
	case SumMerge:
		return "sum"
	case MaxMerge:
		return "max"
	}
	return fmt.Sprintf("MergePolicy(%d)", int(p))
}

// Salsa is a SALSA counter array: width base counters of s bits each that
// merge with their power-of-two-aligned neighbor block when they overflow,
// doubling in size, up to 64 bits. Counter values saturate at 2^64−1.
//
// A Salsa array is one row of a SALSA sketch; item hashes index base slots,
// and the value of an item is the value of the (possibly merged) counter
// containing its slot.
type Salsa struct {
	s      uint
	width  int
	maxLvl uint
	policy MergePolicy
	lay    layout
	// blWords is the simple encoding's merge-bit words, kept for a
	// devirtualized level() fast path; nil under the compact encoding.
	blWords []uint64
	words   []uint64
	merges  uint64
}

// NewSalsa returns a SALSA array of width base counters of s bits each
// (s a power of two in {1, ..., 32}). If compact is true the near-optimal
// Appendix A merge encoding (< 0.594 overhead bits per counter) is used in
// place of the simple one-bit-per-counter encoding; width must then be a
// multiple of 32 (64 for s = 1).
func NewSalsa(width int, s uint, policy MergePolicy, compact bool) *Salsa {
	return newSalsaIn(width, s, policy, compact, nil, nil)
}

// newSalsaIn is NewSalsa over caller-provided backing storage: words holds
// the counters and layWords the simple encoding's merge bits (both nil
// allocates; layWords is ignored under the compact encoding, whose layout
// owns its storage).
func newSalsaIn(width int, s uint, policy MergePolicy, compact bool, words, layWords []uint64) *Salsa {
	if !validBits(s, 32) {
		panic(fmt.Sprintf("core: invalid SALSA base counter size %d", s))
	}
	maxLvl := uint(bits.TrailingZeros(64 / s))
	if width <= 0 || width%(1<<maxLvl) != 0 {
		panic(fmt.Sprintf("core: SALSA width %d must be a positive multiple of %d", width, 1<<maxLvl))
	}
	var lay layout
	var blWords []uint64
	if compact {
		lay = newCompactLayout(width, maxLvl)
	} else {
		var bl *bitLayout
		if layWords == nil {
			bl = newBitLayout(width, maxLvl)
		} else {
			bl = newBitLayoutIn(width, maxLvl, layWords)
		}
		lay = bl
		blWords = bl.bits.Words()
	}
	if words == nil {
		words = make([]uint64, counterWords(width, s))
	}
	return &Salsa{
		s:       s,
		width:   width,
		maxLvl:  maxLvl,
		policy:  policy,
		lay:     lay,
		blWords: blWords,
		words:   words,
	}
}

// Width returns the number of base counter slots.
func (c *Salsa) Width() int { return c.width }

// BaseBits returns s, the initial per-counter size in bits.
func (c *Salsa) BaseBits() uint { return c.s }

// Policy returns the merge policy.
func (c *Salsa) Policy() MergePolicy { return c.policy }

// SizeBits returns the memory footprint in bits, including the merge
// encoding overhead.
func (c *Salsa) SizeBits() int { return c.width*int(c.s) + c.lay.overheadBits() }

// Merges returns the number of merge operations performed so far.
func (c *Salsa) Merges() uint64 { return c.merges }

// Level returns the merge level of the counter containing base slot i
// (0 = unmerged s-bit counter, ℓ = s·2^ℓ-bit counter).
func (c *Salsa) Level(i int) uint { return c.level(i) }

// level avoids the layout interface dispatch on the update/query hot path
// for the simple encoding, probing the merge-bit words directly. Every
// merge bit slot i can probe lies in its 2^maxLvl-slot block, and 2^maxLvl
// divides 64, so a single word load covers all probes; the early-out loop
// beats a branchless probe here because single-item callers see highly
// predictable levels (AddSlots makes the opposite choice — see batch.go).
//
//salsa:hotpath
func (c *Salsa) level(i int) uint {
	words := c.blWords
	if words == nil {
		return c.lay.level(i)
	}
	wbits := words[i>>6]
	lvl := uint(0)
	for lvl < c.maxLvl {
		pos := i&^(1<<(lvl+1)-1) + 1<<lvl - 1
		if wbits&(1<<(uint(pos)&63)) == 0 {
			break
		}
		lvl++
	}
	return lvl
}

// Reset zeroes every counter and un-merges the layout, restoring the
// freshly-constructed state; the backing memory is reused (the
// sliding-window bucket-rotation primitive).
func (c *Salsa) Reset() {
	for i := range c.words {
		c.words[i] = 0
	}
	c.lay.reset()
	c.merges = 0
}

// CounterRange returns the base-slot range [start, start+count) of the
// counter containing slot i.
func (c *Salsa) CounterRange(i int) (start, count int) {
	lvl := c.level(i)
	return i &^ (1<<lvl - 1), 1 << lvl
}

// Value returns the value of the counter containing base slot i.
//
//salsa:hotpath
func (c *Salsa) Value(i int) uint64 {
	lvl := c.level(i)
	start := i &^ (1<<lvl - 1)
	return readAligned(c.words, uint(start)*c.s, c.s<<lvl)
}

// Add adds v to the counter containing base slot i, merging on overflow.
// Negative v subtracts, clamping at zero; it is only permitted with
// SumMerge (the Strict Turnstile policy).
//
//salsa:hotpath
func (c *Salsa) Add(i int, v int64) {
	lvl := c.level(i)
	start := i &^ (1<<lvl - 1)
	size := c.s << lvl
	cur := readAligned(c.words, uint(start)*c.s, size)
	if v < 0 {
		if c.policy != SumMerge {
			panic("core: negative update on a max-merge SALSA array")
		}
		d := uint64(-v)
		if d >= cur {
			cur = 0
		} else {
			cur -= d
		}
		writeAligned(c.words, uint(start)*c.s, size, cur)
		return
	}
	c.store(start, lvl, satAdd(cur, uint64(v)))
}

// SetAtLeast raises the counter containing slot i to at least v, merging on
// overflow. This is the conservative-update primitive; per Theorem V.3 it
// should be used with MaxMerge arrays.
//
//salsa:hotpath
func (c *Salsa) SetAtLeast(i int, v uint64) {
	lvl := c.level(i)
	start := i &^ (1<<lvl - 1)
	if v <= readAligned(c.words, uint(start)*c.s, c.s<<lvl) {
		return
	}
	c.store(start, lvl, v)
}

// store places nv into the counter at (start, lvl), merging upward until it
// fits. nv already includes the counter's previous value.
//
//salsa:hotpath
func (c *Salsa) store(start int, lvl uint, nv uint64) {
	for {
		size := c.s << lvl
		if size >= 64 || nv <= maxValue(size) {
			writeAligned(c.words, uint(start)*c.s, size, nv)
			return
		}
		sibStart := start ^ (1 << lvl)
		if c.policy == SumMerge {
			nv = satAdd(nv, c.blockSum(sibStart, lvl))
		} else if m := c.blockMax(sibStart, lvl); m > nv {
			nv = m
		}
		lvl++
		start &^= 1<<lvl - 1
		c.lay.mergeTo(start, lvl)
		writeAligned(c.words, uint(start)*c.s, c.s<<lvl, 0)
		c.merges++
	}
}

// blockSum returns the saturating sum of all counters inside the
// 2^lvl-aligned block starting at start.
//
//salsa:hotpath
func (c *Salsa) blockSum(start int, lvl uint) uint64 {
	var total uint64
	end := start + 1<<lvl
	for i := start; i < end; {
		l := c.lay.level(i)
		total = satAdd(total, readAligned(c.words, uint(i)*c.s, c.s<<l))
		i += 1 << l
	}
	return total
}

// blockMax returns the maximum over all counters inside the 2^lvl-aligned
// block starting at start.
//
//salsa:hotpath
func (c *Salsa) blockMax(start int, lvl uint) uint64 {
	var max uint64
	end := start + 1<<lvl
	for i := start; i < end; {
		l := c.lay.level(i)
		if v := readAligned(c.words, uint(i)*c.s, c.s<<l); v > max {
			max = v
		}
		i += 1 << l
	}
	return max
}

// Counters calls fn for every counter in slot order with its starting base
// slot, level, and value, stopping early if fn returns false.
func (c *Salsa) Counters(fn func(start int, lvl uint, val uint64) bool) {
	for i := 0; i < c.width; {
		lvl := c.lay.level(i)
		if !fn(i, lvl, readAligned(c.words, uint(i)*c.s, c.s<<lvl)) {
			return
		}
		i += 1 << lvl
	}
}

// ZeroStats describes the zero/merge structure of the array for the SALSA
// Linear Counting heuristic (§V, "count distinct").
type ZeroStats struct {
	// ZeroUnmerged is the number of level-0 base counters with value 0.
	ZeroUnmerged int
	// Unmerged is the number of level-0 base counters.
	Unmerged int
	// MergedSlots[ℓ] is the number of *extra* base slots consumed by
	// level-ℓ counters beyond their first slot, i.e. (2^ℓ−1) per counter.
	MergedSlots map[uint]int
}

// ZeroStats scans the array and returns its zero/merge structure.
func (c *Salsa) ZeroStats() ZeroStats {
	st := ZeroStats{MergedSlots: make(map[uint]int)}
	c.Counters(func(start int, lvl uint, val uint64) bool {
		if lvl == 0 {
			st.Unmerged++
			if val == 0 {
				st.ZeroUnmerged++
			}
		} else {
			st.MergedSlots[lvl] += 1<<lvl - 1
		}
		return true
	})
	return st
}

// EstimatedZeroFraction implements the paper's optimistic heuristic: the
// fraction f of unmerged counters that are zero is assumed to also apply to
// the hidden sub-counters of merged counters (a level-ℓ counter hides
// 2^ℓ−1 of them beyond the at-least-one that is non-zero).
func (c *Salsa) EstimatedZeroFraction() float64 {
	st := c.ZeroStats()
	if st.Unmerged == 0 {
		return 0
	}
	f := float64(st.ZeroUnmerged) / float64(st.Unmerged)
	est := float64(st.ZeroUnmerged)
	for _, extra := range st.MergedSlots {
		est += f * float64(extra)
	}
	return est / float64(c.width)
}

// ZeroFraction returns the estimated fraction of zero base counters; it is
// EstimatedZeroFraction under the interface name shared with Fixed.
func (c *Salsa) ZeroFraction() float64 { return c.EstimatedZeroFraction() }

// Halve divides every counter by two: probabilistically (Binomial(c, 1/2))
// or deterministically (⌊c/2⌋). With split true (MaxMerge arrays only),
// counters whose halved value fits in a smaller size are split back into
// their sub-counters, each holding the halved value (§V, "Should We Split
// Counters?"). This is the AEE downsampling primitive.
func (c *Salsa) Halve(probabilistic bool, rnd func() uint64, split bool) {
	if split && c.policy != MaxMerge {
		panic("core: counter splitting requires MaxMerge")
	}
	for i := 0; i < c.width; {
		lvl := c.lay.level(i)
		blockLen := 1 << lvl
		cur := readAligned(c.words, uint(i)*c.s, c.s<<lvl)
		var nv uint64
		if probabilistic {
			nv = binomialHalf(cur, rnd)
		} else {
			nv = cur / 2
		}
		if split {
			for lvl > 0 && nv <= maxValue(c.s<<(lvl-1)) {
				c.lay.split(i, lvl)
				lvl--
			}
		}
		// Write nv into every (possibly split) counter tiling the block.
		step := 1 << lvl
		for b := i; b < i+blockLen; b += step {
			writeAligned(c.words, uint(b)*c.s, c.s<<lvl, nv)
		}
		i += blockLen
	}
}

// raiseTo merges the counter containing slot i upward until it reaches the
// target level, combining values according to the policy.
func (c *Salsa) raiseTo(i int, target uint) {
	for {
		lvl := c.lay.level(i)
		if lvl >= target {
			return
		}
		start := i &^ (1<<lvl - 1)
		cur := readAligned(c.words, uint(start)*c.s, c.s<<lvl)
		sibStart := start ^ (1 << lvl)
		if c.policy == SumMerge {
			cur = satAdd(cur, c.blockSum(sibStart, lvl))
		} else if m := c.blockMax(sibStart, lvl); m > cur {
			cur = m
		}
		lvl++
		start &^= 1<<lvl - 1
		c.lay.mergeTo(start, lvl)
		writeAligned(c.words, uint(start)*c.s, c.s<<lvl, 0)
		c.merges++
		c.store(start, lvl, cur)
	}
}

// MergeFrom adds other into c counter-wise, producing the sketch-union row
// s(A∪B) (§V, "Merging and Subtracting SALSA Sketches"): the layout becomes
// the union of both layouts and values are combined with the policy's
// semantics, triggering further merges on overflow. For simple-encoding
// rows the merge runs word-parallel, one 64-bit add per counter word whose
// layouts agree (the steady-state window-rotation and shard-snapshot case;
// see merge.go); compact-encoding rows walk counters as before.
func (c *Salsa) MergeFrom(other *Salsa) {
	c.checkGeometry(other)
	if c.mergeFast(other) {
		return
	}
	c.mergeFromGeneric(other)
}

// mergeFromGeneric is the layout-unifying reference merge; mergeFast must
// stay byte-for-byte equivalent to it when the layouts already match.
func (c *Salsa) mergeFromGeneric(other *Salsa) {
	other.Counters(func(start int, lvl uint, val uint64) bool {
		if c.lay.level(start) < lvl {
			c.raiseTo(start, lvl)
		}
		return true
	})
	other.Counters(func(start int, lvl uint, val uint64) bool {
		myLvl := c.lay.level(start)
		myStart := start &^ (1<<myLvl - 1)
		cur := readAligned(c.words, uint(myStart)*c.s, c.s<<myLvl)
		if c.policy == SumMerge {
			c.store(myStart, myLvl, satAdd(cur, val))
		} else if val > cur {
			c.store(myStart, myLvl, val)
		}
		return true
	})
}

// SubtractFrom subtracts other from c counter-wise, clamping at zero,
// producing s(A\B) for Strict Turnstile CMS rows where B ⊆ A. Word-parallel
// when the layouts are bit-identical, like MergeFrom.
func (c *Salsa) SubtractFrom(other *Salsa) {
	if c.policy != SumMerge {
		panic("core: subtraction requires SumMerge")
	}
	c.checkGeometry(other)
	if c.subtractFast(other) {
		return
	}
	c.subtractFromGeneric(other)
}

// subtractFromGeneric is the per-counter reference subtraction.
func (c *Salsa) subtractFromGeneric(other *Salsa) {
	other.Counters(func(start int, lvl uint, val uint64) bool {
		if c.lay.level(start) < lvl {
			c.raiseTo(start, lvl)
		}
		return true
	})
	other.Counters(func(start int, lvl uint, val uint64) bool {
		myLvl := c.lay.level(start)
		myStart := start &^ (1<<myLvl - 1)
		cur := readAligned(c.words, uint(myStart)*c.s, c.s<<myLvl)
		if val >= cur {
			cur = 0
		} else {
			cur -= val
		}
		writeAligned(c.words, uint(myStart)*c.s, c.s<<myLvl, cur)
		return true
	})
}

func (c *Salsa) checkGeometry(other *Salsa) {
	if !c.SameGeometry(other) {
		panic("core: SALSA geometry/policy mismatch")
	}
}

// SameGeometry reports whether other can merge with c: decoders use it to
// reject payload combinations MergeFrom would panic on.
func (c *Salsa) SameGeometry(other *Salsa) bool {
	return c.width == other.width && c.s == other.s && c.policy == other.policy
}
