package core

import (
	"math/rand"
	"testing"
)

func TestFixedBasic(t *testing.T) {
	for _, b := range []uint{1, 2, 4, 8, 16, 32, 64} {
		f := NewFixed(128, b)
		if f.Width() != 128 || f.CounterBits() != b || f.SizeBits() != 128*int(b) {
			t.Fatalf("bits %d: geometry wrong", b)
		}
		f.Add(3, 1)
		if f.Value(3) != 1 {
			t.Fatalf("bits %d: Value(3) = %d", b, f.Value(3))
		}
		if f.Value(2) != 0 || f.Value(4) != 0 {
			t.Fatalf("bits %d: neighbors affected", b)
		}
	}
}

func TestFixedSaturates(t *testing.T) {
	f := NewFixed(8, 8)
	f.Add(0, 300)
	if f.Value(0) != 255 {
		t.Fatalf("Value = %d, want saturation at 255", f.Value(0))
	}
	f.Add(0, 1)
	if f.Value(0) != 255 {
		t.Fatal("saturated counter moved")
	}
}

func TestFixedSubtractClamps(t *testing.T) {
	f := NewFixed(8, 16)
	f.Add(1, 10)
	f.Add(1, -3)
	if f.Value(1) != 7 {
		t.Fatalf("Value = %d, want 7", f.Value(1))
	}
	f.Add(1, -100)
	if f.Value(1) != 0 {
		t.Fatalf("Value = %d, want clamp at 0", f.Value(1))
	}
}

func TestFixedSetAtLeast(t *testing.T) {
	f := NewFixed(4, 8)
	f.SetAtLeast(0, 10)
	if f.Value(0) != 10 {
		t.Fatal("SetAtLeast did not raise")
	}
	f.SetAtLeast(0, 5)
	if f.Value(0) != 10 {
		t.Fatal("SetAtLeast lowered the counter")
	}
	f.SetAtLeast(0, 1000)
	if f.Value(0) != 255 {
		t.Fatal("SetAtLeast did not cap")
	}
}

func TestFixedZeroCount(t *testing.T) {
	f := NewFixed(10, 8)
	if f.ZeroCount() != 10 {
		t.Fatal("fresh array should be all zero")
	}
	f.Add(1, 1)
	f.Add(7, 2)
	if f.ZeroCount() != 8 {
		t.Fatalf("ZeroCount = %d, want 8", f.ZeroCount())
	}
}

func TestFixedHalveDeterministic(t *testing.T) {
	f := NewFixed(4, 16)
	f.Add(0, 11)
	f.Add(1, 1)
	f.Add(2, 65535)
	f.Halve(false, nil)
	want := []uint64{5, 0, 32767, 0}
	for i, w := range want {
		if f.Value(i) != w {
			t.Fatalf("Value(%d) = %d, want %d", i, f.Value(i), w)
		}
	}
}

func TestFixedHalveProbabilisticBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := NewFixed(64, 16)
	for i := 0; i < 64; i++ {
		f.Add(i, 1000)
	}
	f.Halve(true, rng.Uint64)
	var total uint64
	for i := 0; i < 64; i++ {
		v := f.Value(i)
		if v > 1000 {
			t.Fatalf("halved counter grew: %d", v)
		}
		total += v
	}
	// E[total] = 32000, sd = sqrt(64*250) = 126; allow 8 sigma.
	if total < 31000 || total > 33000 {
		t.Fatalf("total after halving = %d, want ≈ 32000", total)
	}
}

func TestFixedMergeSubtract(t *testing.T) {
	a := NewFixed(8, 16)
	b := NewFixed(8, 16)
	a.Add(0, 5)
	a.Add(1, 7)
	b.Add(0, 2)
	b.Add(2, 9)
	a.MergeFrom(b)
	if a.Value(0) != 7 || a.Value(1) != 7 || a.Value(2) != 9 {
		t.Fatalf("merge wrong: %d %d %d", a.Value(0), a.Value(1), a.Value(2))
	}
	a.SubtractFrom(b)
	if a.Value(0) != 5 || a.Value(1) != 7 || a.Value(2) != 0 {
		t.Fatalf("subtract wrong: %d %d %d", a.Value(0), a.Value(1), a.Value(2))
	}
}

func TestFixedGeometryMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on geometry mismatch")
		}
	}()
	NewFixed(8, 16).MergeFrom(NewFixed(8, 8))
}

func TestFixedInvalidBitsPanics(t *testing.T) {
	for _, b := range []uint{0, 3, 12, 65, 128} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFixed with %d bits did not panic", b)
				}
			}()
			NewFixed(8, b)
		}()
	}
}

func TestFixedSignBasic(t *testing.T) {
	f := NewFixedSign(16, 32)
	f.Add(0, 5)
	f.Add(0, -12)
	if f.Value(0) != -7 {
		t.Fatalf("Value = %d, want -7", f.Value(0))
	}
	f.Add(1, -1)
	if f.Value(1) != -1 || f.Value(2) != 0 {
		t.Fatal("neighbors wrong")
	}
}

func TestFixedSignSaturates(t *testing.T) {
	f := NewFixedSign(4, 8)
	f.Add(0, 1000)
	if f.Value(0) != 127 {
		t.Fatalf("Value = %d, want 127", f.Value(0))
	}
	f.Add(1, -1000)
	if f.Value(1) != -127 {
		t.Fatalf("Value = %d, want -127", f.Value(1))
	}
}

func TestFixedSignMergeScale(t *testing.T) {
	a := NewFixedSign(4, 32)
	b := NewFixedSign(4, 32)
	a.Add(0, 10)
	b.Add(0, 4)
	b.Add(1, -2)
	a.MergeFrom(b, 1)
	if a.Value(0) != 14 || a.Value(1) != -2 {
		t.Fatalf("merge wrong: %d %d", a.Value(0), a.Value(1))
	}
	a.MergeFrom(b, -1)
	if a.Value(0) != 10 || a.Value(1) != 0 {
		t.Fatalf("subtract wrong: %d %d", a.Value(0), a.Value(1))
	}
}

func TestFixedRandomAgainstOracle(t *testing.T) {
	const w = 64
	rng := rand.New(rand.NewSource(99))
	f := NewFixed(w, 32)
	oracle := make([]uint64, w)
	for op := 0; op < 20000; op++ {
		i := rng.Intn(w)
		v := int64(rng.Intn(1000)) - 200
		f.Add(i, v)
		if v >= 0 {
			oracle[i] += uint64(v)
			if oracle[i] > 1<<32-1 {
				oracle[i] = 1<<32 - 1
			}
		} else {
			d := uint64(-v)
			if d >= oracle[i] {
				oracle[i] = 0
			} else {
				oracle[i] -= d
			}
		}
	}
	for i := 0; i < w; i++ {
		if f.Value(i) != oracle[i] {
			t.Fatalf("slot %d: got %d, want %d", i, f.Value(i), oracle[i])
		}
	}
}
