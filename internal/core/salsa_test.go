package core

import (
	"math/rand"
	"testing"
)

// checkExactSums verifies the sum-merge invariant from the proof of
// Theorem V.1: the value of each merged counter is exactly the total of the
// updates applied to the base slots it spans.
func checkExactSums(t *testing.T, c *Salsa, sums []uint64) {
	t.Helper()
	for i := 0; i < c.Width(); {
		start, count := c.CounterRange(i)
		if start != i {
			t.Fatalf("counter range start %d != walk position %d", start, i)
		}
		var want uint64
		for j := start; j < start+count; j++ {
			want += sums[j]
		}
		if got := c.Value(i); got != want {
			t.Fatalf("counter at %d (count %d): got %d, want %d", start, count, got, want)
		}
		i += count
	}
}

// checkAlignment verifies the structural invariants of the merge layout:
// ranges are power-of-two sized, self-aligned, and consistent across their
// slots.
func checkAlignment(t *testing.T, c *Salsa) {
	t.Helper()
	for i := 0; i < c.Width(); i++ {
		start, count := c.CounterRange(i)
		if count&(count-1) != 0 {
			t.Fatalf("slot %d: count %d not a power of two", i, count)
		}
		if start%count != 0 {
			t.Fatalf("slot %d: start %d not aligned to %d", i, start, count)
		}
		lvl := c.Level(i)
		for j := start; j < start+count; j++ {
			if c.Level(j) != lvl {
				t.Fatalf("slots %d and %d disagree on level", i, j)
			}
		}
		if int(c.BaseBits())<<lvl > 64 {
			t.Fatalf("slot %d: counter exceeds 64 bits", i)
		}
	}
}

func TestSalsaSumExactAllSizes(t *testing.T) {
	for _, s := range []uint{1, 2, 4, 8, 16, 32} {
		for _, compact := range []bool{false, true} {
			name := map[bool]string{false: "simple", true: "compact"}[compact]
			t.Run(name+"/s="+itoa(int(s)), func(t *testing.T) {
				w := 128
				c := NewSalsa(w, s, SumMerge, compact)
				sums := make([]uint64, w)
				rng := rand.New(rand.NewSource(int64(s)))
				for op := 0; op < 5000; op++ {
					i := rng.Intn(w)
					v := int64(rng.Intn(1 << 12))
					c.Add(i, v)
					sums[i] += uint64(v)
				}
				checkExactSums(t, c, sums)
				checkAlignment(t, c)
			})
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestSalsaStrictTurnstileExact(t *testing.T) {
	// With decrements that never take a slot's running total negative, the
	// exact-sum invariant must still hold (Strict Turnstile model).
	const w = 64
	c := NewSalsa(w, 8, SumMerge, false)
	sums := make([]uint64, w)
	rng := rand.New(rand.NewSource(5))
	for op := 0; op < 20000; op++ {
		i := rng.Intn(w)
		if rng.Intn(10) < 7 || sums[i] == 0 {
			v := uint64(rng.Intn(500))
			c.Add(i, int64(v))
			sums[i] += v
		} else {
			d := uint64(rng.Intn(int(sums[i]))) + 1
			c.Add(i, -int64(d))
			sums[i] -= d
		}
	}
	checkExactSums(t, c, sums)
}

func TestSalsaNegativeOnMaxMergePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSalsa(64, 8, MaxMerge, false).Add(0, -1)
}

func TestSalsaMaxMergeBounds(t *testing.T) {
	// Max-merge invariant (Theorem V.2): per-slot total ≤ counter value ≤
	// range total, and values never shrink.
	const w = 64
	c := NewSalsa(w, 8, MaxMerge, false)
	sums := make([]uint64, w)
	rng := rand.New(rand.NewSource(6))
	prev := make([]uint64, w)
	for op := 0; op < 30000; op++ {
		i := rng.Intn(w)
		v := uint64(rng.Intn(64))
		c.Add(i, int64(v))
		sums[i] += v
		if g := c.Value(i); g < prev[i] {
			t.Fatalf("op %d: counter at %d shrank from %d to %d", op, i, prev[i], g)
		}
		prev[i] = c.Value(i)
	}
	for i := 0; i < w; i++ {
		start, count := c.CounterRange(i)
		var total, max uint64
		for j := start; j < start+count; j++ {
			total += sums[j]
			if sums[j] > max {
				max = sums[j]
			}
		}
		got := c.Value(i)
		if got < max || got > total {
			t.Fatalf("slot %d: value %d outside [%d, %d]", i, got, max, total)
		}
	}
	checkAlignment(t, c)
}

func TestSalsaMaxVsSumDominance(t *testing.T) {
	// For identical cash-register streams, the max-merge estimate is upper
	// bounded by the sum-merge estimate (argument of Theorem V.2).
	const w = 64
	sum := NewSalsa(w, 8, SumMerge, false)
	max := NewSalsa(w, 8, MaxMerge, false)
	rng := rand.New(rand.NewSource(7))
	for op := 0; op < 20000; op++ {
		i := rng.Intn(w)
		v := int64(rng.Intn(100))
		sum.Add(i, v)
		max.Add(i, v)
	}
	for i := 0; i < w; i++ {
		if max.Value(i) > sum.Value(i) {
			t.Fatalf("slot %d: max-merge %d > sum-merge %d", i, max.Value(i), sum.Value(i))
		}
	}
}

func TestSalsaUnderlyingSketchDominance(t *testing.T) {
	// Theorem V.1: if the largest SALSA counter is s·2^ℓ bits, the SALSA
	// estimate is upper bounded by a fixed-size sketch with s·2^ℓ-bit
	// counters and hashes ⌊h(x)/2^ℓ⌋ — equivalently, by the range sum of
	// the full 2^L-aligned block. Check against the coarsest underlying
	// array (ℓ = max level).
	const w = 128
	c := NewSalsa(w, 8, SumMerge, false)
	sums := make([]uint64, w)
	rng := rand.New(rand.NewSource(8))
	for op := 0; op < 50000; op++ {
		i := rng.Intn(w)
		v := int64(rng.Intn(200))
		c.Add(i, v)
		sums[i] += uint64(v)
	}
	// Underlying CMS row with 64-bit counters: block of 8 slots each.
	for i := 0; i < w; i++ {
		blockStart := i &^ 7
		var underlying uint64
		for j := blockStart; j < blockStart+8; j++ {
			underlying += sums[j]
		}
		if c.Value(i) > underlying {
			t.Fatalf("slot %d: SALSA %d > underlying %d", i, c.Value(i), underlying)
		}
		if c.Value(i) < sums[i] {
			t.Fatalf("slot %d: SALSA %d < truth %d", i, c.Value(i), sums[i])
		}
	}
}

func TestSalsaSetAtLeast(t *testing.T) {
	c := NewSalsa(64, 8, MaxMerge, false)
	c.SetAtLeast(5, 10)
	if c.Value(5) != 10 {
		t.Fatalf("Value = %d, want 10", c.Value(5))
	}
	c.SetAtLeast(5, 3)
	if c.Value(5) != 10 {
		t.Fatal("SetAtLeast lowered a counter")
	}
	// Force an overflow merge: 300 needs 16 bits.
	c.SetAtLeast(5, 300)
	if c.Value(5) != 300 {
		t.Fatalf("Value = %d, want 300", c.Value(5))
	}
	if c.Level(5) != 1 {
		t.Fatalf("Level = %d, want 1", c.Level(5))
	}
	if c.Level(4) != 1 {
		t.Fatal("merge partner not at level 1")
	}
}

func TestSalsaPaperFigure1Encoding(t *testing.T) {
	// Figure 1 of the paper: s = 8, sixteen slots; ⟨4..7⟩ merged to 32 bits,
	// ⟨10,11⟩ and ⟨14,15⟩ merged to 16 bits. The simple encoding must have
	// merge bits set exactly at indices 4, 5, 6, 10 and 14.
	lay := newBitLayout(16, 3)
	lay.mergeTo(4, 2)
	lay.mergeTo(10, 1)
	lay.mergeTo(14, 1)
	wantSet := map[int]bool{4: true, 5: true, 6: true, 10: true, 14: true}
	for i := 0; i < 16; i++ {
		if lay.bits.Get(i) != wantSet[i] {
			t.Fatalf("merge bit %d = %v, want %v", i, lay.bits.Get(i), wantSet[i])
		}
	}
	wantLvl := []uint{0, 0, 0, 0, 2, 2, 2, 2, 0, 0, 1, 1, 0, 0, 1, 1}
	for i, want := range wantLvl {
		if lay.level(i) != want {
			t.Fatalf("level(%d) = %d, want %d", i, lay.level(i), want)
		}
	}
}

func TestSalsaPaperFigure2SumMerge(t *testing.T) {
	// Figure 2a: s = 8, slots ⟨0..7⟩ holding 0,255,3,0,[65533 in ⟨4,5⟩],95,11.
	// ⟨x,3⟩ at slot 1 overflows 255 → ⟨0,1⟩ = 258. ⟨y,5⟩ at slot 5 overflows
	// 65533 → ⟨4..7⟩ = 65533+5+95+11 = 65644 under sum merge.
	c := NewSalsa(8, 8, SumMerge, false)
	c.Add(1, 255)
	c.Add(2, 3)
	c.Add(4, 65533) // merges ⟨4,5⟩ immediately
	c.Add(6, 95)
	c.Add(7, 11)
	if c.Level(4) != 1 || c.Value(4) != 65533 {
		t.Fatalf("setup: level %d value %d", c.Level(4), c.Value(4))
	}
	c.Add(1, 3)
	if c.Level(1) != 1 || c.Value(1) != 258 {
		t.Fatalf("⟨0,1⟩: level %d value %d, want 1/258", c.Level(1), c.Value(1))
	}
	c.Add(5, 5)
	if c.Level(5) != 2 {
		t.Fatalf("⟨4..7⟩ level = %d, want 2", c.Level(5))
	}
	if c.Value(5) != 65644 {
		t.Fatalf("⟨4..7⟩ = %d, want 65644", c.Value(5))
	}
	if c.Value(2) != 3 || c.Value(3) != 0 {
		t.Fatal("untouched slots changed")
	}
}

func TestSalsaPaperFigure2MaxMerge(t *testing.T) {
	// Figure 2b: same setup with max merge; ⟨4..7⟩ = 65538 after the merge.
	c := NewSalsa(8, 8, MaxMerge, false)
	c.Add(1, 255)
	c.Add(2, 3)
	c.Add(4, 65533)
	c.Add(6, 95)
	c.Add(7, 11)
	c.Add(1, 3)
	if c.Value(1) != 258 {
		t.Fatalf("⟨0,1⟩ = %d, want 258 (max(258, 0))", c.Value(1))
	}
	c.Add(5, 5)
	if c.Value(5) != 65538 {
		t.Fatalf("⟨4..7⟩ = %d, want 65538", c.Value(5))
	}
}

func TestSalsaGrowsToSixtyFourBits(t *testing.T) {
	c := NewSalsa(64, 8, SumMerge, false)
	c.Add(0, 1<<40)
	if c.Level(0) != 3 {
		t.Fatalf("level = %d, want 3 (64-bit counter)", c.Level(0))
	}
	if c.Value(0) != 1<<40 {
		t.Fatalf("value = %d", c.Value(0))
	}
	// All eight slots of the block now alias the same counter.
	for i := 1; i < 8; i++ {
		if c.Value(i) != 1<<40 {
			t.Fatalf("slot %d does not alias the merged counter", i)
		}
	}
	if c.Value(8) != 0 {
		t.Fatal("adjacent block affected")
	}
}

func TestSalsaSaturatesAtMaxLevel(t *testing.T) {
	c := NewSalsa(64, 8, SumMerge, false)
	c.Add(0, 1<<62)
	c.Add(0, 1<<62)
	c.Add(0, 1<<62)
	c.Add(0, 1<<62) // exceeds 2^64−1
	if c.Value(0) != ^uint64(0) {
		t.Fatalf("value = %d, want saturation", c.Value(0))
	}
}

func TestSalsaZeroStats(t *testing.T) {
	c := NewSalsa(16, 8, SumMerge, false)
	c.Add(0, 1)
	c.Add(4, 300) // merges ⟨4,5⟩
	st := c.ZeroStats()
	if st.Unmerged != 14 {
		t.Fatalf("Unmerged = %d, want 14", st.Unmerged)
	}
	if st.ZeroUnmerged != 13 {
		t.Fatalf("ZeroUnmerged = %d, want 13", st.ZeroUnmerged)
	}
	if st.MergedSlots[1] != 1 {
		t.Fatalf("MergedSlots[1] = %d, want 1", st.MergedSlots[1])
	}
	// f = 13/14; estimate = (13 + f·1)/16.
	want := (13 + 13.0/14.0) / 16
	if got := c.EstimatedZeroFraction(); !close(got, want) {
		t.Fatalf("EstimatedZeroFraction = %f, want %f", got, want)
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-12
}

func TestSalsaHalveDeterministic(t *testing.T) {
	c := NewSalsa(16, 8, MaxMerge, false)
	c.Add(0, 11)
	c.Add(4, 301) // merged 16-bit
	c.Halve(false, nil, false)
	if c.Value(0) != 5 {
		t.Fatalf("Value(0) = %d, want 5", c.Value(0))
	}
	if c.Value(4) != 150 || c.Level(4) != 1 {
		t.Fatalf("Value(4) = %d level %d, want 150 at level 1", c.Value(4), c.Level(4))
	}
}

func TestSalsaHalveSplit(t *testing.T) {
	// Paper §V: a 16-bit counter ⟨4,5⟩ holding 300, downsampled to 150,
	// splits back into two 8-bit counters both holding 150.
	c := NewSalsa(16, 8, MaxMerge, false)
	c.Add(4, 300)
	if c.Level(4) != 1 {
		t.Fatal("setup: expected a merged counter")
	}
	c.Halve(false, nil, true)
	if c.Level(4) != 0 || c.Level(5) != 0 {
		t.Fatalf("levels after split: %d %d, want 0 0", c.Level(4), c.Level(5))
	}
	if c.Value(4) != 150 || c.Value(5) != 150 {
		t.Fatalf("values after split: %d %d, want 150 150", c.Value(4), c.Value(5))
	}
}

func TestSalsaHalveSplitRequiresMaxMerge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSalsa(16, 8, SumMerge, false).Halve(false, nil, true)
}

func TestSalsaMergeFromExact(t *testing.T) {
	const w = 64
	a := NewSalsa(w, 8, SumMerge, false)
	b := NewSalsa(w, 8, SumMerge, false)
	sumsA := make([]uint64, w)
	sumsB := make([]uint64, w)
	rng := rand.New(rand.NewSource(17))
	for op := 0; op < 10000; op++ {
		i, v := rng.Intn(w), int64(rng.Intn(300))
		a.Add(i, v)
		sumsA[i] += uint64(v)
		j, u := rng.Intn(w), int64(rng.Intn(300))
		b.Add(j, u)
		sumsB[j] += uint64(u)
	}
	a.MergeFrom(b)
	combined := make([]uint64, w)
	for i := range combined {
		combined[i] = sumsA[i] + sumsB[i]
	}
	checkExactSums(t, a, combined)
	checkAlignment(t, a)
	// The merged layout must dominate b's layout.
	for i := 0; i < w; i++ {
		if a.Level(i) < b.Level(i) {
			t.Fatalf("slot %d: merged level %d < b level %d", i, a.Level(i), b.Level(i))
		}
	}
}

func TestSalsaSubtractFromExact(t *testing.T) {
	// B ⊆ A: every slot update to B is also applied to A.
	const w = 64
	a := NewSalsa(w, 8, SumMerge, false)
	b := NewSalsa(w, 8, SumMerge, false)
	sumsA := make([]uint64, w)
	sumsB := make([]uint64, w)
	rng := rand.New(rand.NewSource(18))
	for op := 0; op < 8000; op++ {
		i, v := rng.Intn(w), int64(rng.Intn(300))
		a.Add(i, v)
		sumsA[i] += uint64(v)
		if rng.Intn(2) == 0 {
			b.Add(i, v)
			sumsB[i] += uint64(v)
		}
	}
	a.SubtractFrom(b)
	diff := make([]uint64, w)
	for i := range diff {
		diff[i] = sumsA[i] - sumsB[i]
	}
	// After layout union, A's counters span at least B's ranges; the exact
	// invariant holds on the union layout.
	checkExactSums(t, a, diff)
}

func TestSalsaCompactMatchesSimple(t *testing.T) {
	// The compact Appendix A encoding must be behaviorally identical to the
	// simple encoding under any update sequence.
	for _, s := range []uint{2, 8, 16} {
		simple := NewSalsa(128, s, SumMerge, false)
		compact := NewSalsa(128, s, SumMerge, true)
		rng := rand.New(rand.NewSource(int64(s) * 31))
		for op := 0; op < 20000; op++ {
			i := rng.Intn(128)
			v := int64(rng.Intn(1 << 10))
			simple.Add(i, v)
			compact.Add(i, v)
			if op%500 == 0 {
				for j := 0; j < 128; j++ {
					if simple.Value(j) != compact.Value(j) {
						t.Fatalf("s=%d op %d slot %d: simple %d, compact %d", s, op, j, simple.Value(j), compact.Value(j))
					}
					if simple.Level(j) != compact.Level(j) {
						t.Fatalf("s=%d op %d slot %d: levels differ", s, op, j)
					}
				}
			}
		}
		for j := 0; j < 128; j++ {
			if simple.Value(j) != compact.Value(j) || simple.Level(j) != compact.Level(j) {
				t.Fatalf("s=%d final slot %d mismatch", s, j)
			}
		}
	}
}

func TestSalsaCompactOverheadBelowBound(t *testing.T) {
	// Appendix A: the compact encoding must cost < 0.594 bits per counter;
	// the simple encoding costs exactly 1.
	c := NewSalsa(1024, 8, SumMerge, true)
	overhead := float64(c.SizeBits()-1024*8) / 1024
	if overhead >= 0.594 {
		t.Fatalf("compact overhead %f ≥ 0.594 bits/counter", overhead)
	}
	s := NewSalsa(1024, 8, SumMerge, false)
	if s.SizeBits()-1024*8 != 1024 {
		t.Fatal("simple overhead should be exactly 1 bit/counter")
	}
}

func TestSalsaWidthValidation(t *testing.T) {
	for _, tc := range []struct {
		w int
		s uint
	}{{0, 8}, {-8, 8}, {7, 8}, {12, 8}, {31, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSalsa(%d, %d) did not panic", tc.w, tc.s)
				}
			}()
			NewSalsa(tc.w, tc.s, SumMerge, false)
		}()
	}
}

func TestSalsaMergesCounter(t *testing.T) {
	c := NewSalsa(64, 8, SumMerge, false)
	if c.Merges() != 0 {
		t.Fatal("fresh array has merges")
	}
	c.Add(0, 300)
	if c.Merges() != 1 {
		t.Fatalf("Merges = %d, want 1", c.Merges())
	}
}

func TestMergePolicyString(t *testing.T) {
	if SumMerge.String() != "sum" || MaxMerge.String() != "max" {
		t.Fatal("policy names wrong")
	}
	if MergePolicy(9).String() == "" {
		t.Fatal("unknown policy should still format")
	}
}
