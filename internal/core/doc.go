// Package core implements the paper's primary contribution: counter arrays
// whose counters start small and grow by merging with their neighbors on
// overflow (SALSA, §IV of the paper), together with the fixed-size baseline
// arrays the paper compares against.
//
// Three resizable array flavours are provided:
//
//   - Salsa: unsigned counters that double in size on overflow by merging
//     with the power-of-two-aligned sibling block. Supports sum-merge (strict
//     turnstile) and max-merge (cash register) policies, and either the
//     simple one-bit-per-counter merge encoding or the near-optimal
//     (< 0.594 bits/counter) encoding of Appendix A.
//   - SalsaSign: signed counters in sign-magnitude representation for the
//     Count Sketch, merged with sum semantics; sign-magnitude keeps the
//     overflow event sign-symmetric, which is what makes the SALSA Count
//     Sketch unbiased (Lemma V.4).
//   - Tango: fine-grained merging where counters grow one s-bit cell at a
//     time, with the merge direction chosen so a Tango counter is always
//     contained in the corresponding SALSA counter (§IV, "Fine-grained
//     Counter Merges").
//
// Fixed and FixedSign are the constant-width baselines (saturating at their
// maximum representable value, matching the paper's small-counter baseline).
//
// Throughout, base counters have s bits with s a power of two in {1,...,32},
// counter values are capped at 64 bits (the paper's O(1)-machine-words
// assumption), and a width-w array packs its counters into ⌈w·s/64⌉ words.
package core
