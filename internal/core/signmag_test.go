package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeSM(t *testing.T) {
	for _, size := range []uint{8, 16, 32, 64} {
		for _, v := range []int64{0, 1, -1, 100, -100, maxMag(size), -maxMag(size)} {
			if got := decodeSM(encodeSM(v, size), size); got != v {
				t.Fatalf("size %d: roundtrip %d -> %d", size, v, got)
			}
		}
	}
}

func TestQuickEncodeDecodeSM(t *testing.T) {
	f := func(raw int32) bool {
		v := int64(raw) % maxMag(32)
		return decodeSM(encodeSM(v, 32), 32) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// checkExactSignedSums verifies the signed sum-merge invariant: each counter
// holds exactly the signed total of the updates applied to its base slots.
func checkExactSignedSums(t *testing.T, c *SalsaSign, sums []int64) {
	t.Helper()
	c.Counters(func(start int, lvl uint, val int64) bool {
		var want int64
		for j := start; j < start+1<<lvl; j++ {
			want += sums[j]
		}
		if val != want {
			t.Fatalf("counter at %d (level %d): got %d, want %d", start, lvl, val, want)
		}
		return true
	})
}

func TestSalsaSignExact(t *testing.T) {
	for _, s := range []uint{2, 4, 8, 16, 32} {
		for _, compact := range []bool{false, true} {
			w := 128
			c := NewSalsaSign(w, s, compact)
			sums := make([]int64, w)
			rng := rand.New(rand.NewSource(int64(s) * 13))
			for op := 0; op < 10000; op++ {
				i := rng.Intn(w)
				v := int64(rng.Intn(1<<10)) - 1<<9
				c.Add(i, v)
				sums[i] += v
			}
			checkExactSignedSums(t, c, sums)
		}
	}
}

func TestSalsaSignOverflowBothDirections(t *testing.T) {
	c := NewSalsaSign(16, 8, false)
	// 8-bit sign-magnitude holds |v| ≤ 127.
	c.Add(0, 127)
	if c.Level(0) != 0 {
		t.Fatal("127 should fit in 8 bits")
	}
	c.Add(0, 1)
	if c.Level(0) != 1 || c.Value(0) != 128 {
		t.Fatalf("positive overflow: level %d value %d", c.Level(0), c.Value(0))
	}
	c2 := NewSalsaSign(16, 8, false)
	c2.Add(4, -127)
	if c2.Level(4) != 0 {
		t.Fatal("-127 should fit in 8 bits")
	}
	c2.Add(4, -1)
	if c2.Level(4) != 1 || c2.Value(4) != -128 {
		t.Fatalf("negative overflow: level %d value %d", c2.Level(4), c2.Value(4))
	}
}

func TestSalsaSignMergeAbsorbsNeighbor(t *testing.T) {
	c := NewSalsaSign(16, 8, false)
	c.Add(0, 100)
	c.Add(1, -50)
	c.Add(0, 100) // overflow: merged ⟨0,1⟩ = 100+100-50 = 150
	if c.Value(0) != 150 || c.Value(1) != 150 {
		t.Fatalf("merged value = %d / %d, want 150", c.Value(0), c.Value(1))
	}
}

func TestSalsaSignSignSymmetricThreshold(t *testing.T) {
	// The overflow event must be symmetric: |v| = 127 fits, |v| = 128
	// overflows, for both signs (this is the point of sign-magnitude).
	pos := NewSalsaSign(16, 8, false)
	neg := NewSalsaSign(16, 8, false)
	pos.Add(0, 128)
	neg.Add(0, -128)
	if pos.Level(0) != neg.Level(0) {
		t.Fatalf("asymmetric overflow: +128 level %d, -128 level %d", pos.Level(0), neg.Level(0))
	}
	if pos.Level(0) != 1 {
		t.Fatal("128 should have overflowed an 8-bit sign-magnitude counter")
	}
}

func TestSalsaSignMergeFromScale(t *testing.T) {
	const w = 64
	a := NewSalsaSign(w, 8, false)
	b := NewSalsaSign(w, 8, false)
	sumsA := make([]int64, w)
	sumsB := make([]int64, w)
	rng := rand.New(rand.NewSource(23))
	for op := 0; op < 8000; op++ {
		i, v := rng.Intn(w), int64(rng.Intn(200))-100
		a.Add(i, v)
		sumsA[i] += v
		j, u := rng.Intn(w), int64(rng.Intn(200))-100
		b.Add(j, u)
		sumsB[j] += u
	}
	diff := NewSalsaSign(w, 8, false)
	diff.MergeFrom(a, 1)
	diff.MergeFrom(b, -1)
	want := make([]int64, w)
	for i := range want {
		want[i] = sumsA[i] - sumsB[i]
	}
	checkExactSignedSums(t, diff, want)

	union := NewSalsaSign(w, 8, false)
	union.MergeFrom(a, 1)
	union.MergeFrom(b, 1)
	for i := range want {
		want[i] = sumsA[i] + sumsB[i]
	}
	checkExactSignedSums(t, union, want)
}

func TestSalsaSignMergeFromBadScalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSalsaSign(64, 8, false).MergeFrom(NewSalsaSign(64, 8, false), 2)
}

func TestSalsaSignCompactMatchesSimple(t *testing.T) {
	simple := NewSalsaSign(128, 8, false)
	compact := NewSalsaSign(128, 8, true)
	rng := rand.New(rand.NewSource(29))
	for op := 0; op < 20000; op++ {
		i := rng.Intn(128)
		v := int64(rng.Intn(1<<9)) - 1<<8
		simple.Add(i, v)
		compact.Add(i, v)
	}
	for j := 0; j < 128; j++ {
		if simple.Value(j) != compact.Value(j) || simple.Level(j) != compact.Level(j) {
			t.Fatalf("slot %d: simple (%d, l%d) vs compact (%d, l%d)",
				j, simple.Value(j), simple.Level(j), compact.Value(j), compact.Level(j))
		}
	}
}

func TestSalsaSignInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for s=1 signed")
		}
	}()
	NewSalsaSign(64, 1, false)
}
