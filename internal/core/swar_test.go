package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// The SWAR kernels of merge.go must be byte-for-byte equivalent to the
// per-counter reference paths they replace, and sketch-union merging must be
// grouping-independent (associative and commutative) so the sliding window's
// two-stack rotation can reassociate bucket merges freely. Both properties
// are pinned here over randomized op sequences.
//
// Known, documented relaxations (see also the internal/window package doc):
//   - the in-memory merges odometer is path-dependent (it counts raise
//     operations, which depend on merge order); it is not serialized, so
//     marshal-byte comparisons are unaffected, and the equivalence tests
//     compare it only between the kernel and the reference path, where it
//     must match exactly.
//   - signed counter arrays lose byte-level associativity once mixed-sign
//     values make intermediate magnitudes cross a counter-size threshold in
//     one grouping but not another (TestSalsaSignMixedSignGrouping shows the
//     layouts diverging while every grouping remains a valid, mass-
//     conserving union). With non-negative values — the windowed regime the
//     rotation relies on — associativity is byte-exact.

// cloneFixed round-trips f through its marshal format.
func cloneFixed(t *testing.T, f *Fixed) *Fixed {
	t.Helper()
	blob, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	c, err := UnmarshalFixed(blob)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func cloneFixedSign(t *testing.T, f *FixedSign) *FixedSign {
	t.Helper()
	blob, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	c, err := UnmarshalFixedSign(blob)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func cloneSalsa(t *testing.T, c *Salsa) *Salsa {
	t.Helper()
	blob, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	n, err := UnmarshalSalsa(blob)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func cloneSalsaSign(t *testing.T, c *SalsaSign) *SalsaSign {
	t.Helper()
	blob, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	n, err := UnmarshalSalsaSign(blob)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func marshalOf(t *testing.T, m interface{ MarshalBinary() ([]byte, error) }) []byte {
	t.Helper()
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// randFixed populates a Fixed with masses that straddle the saturation point
// so both the pure-SWAR and the clamping fallback word paths run.
func randFixed(rng *rand.Rand, width int, bits uint) *Fixed {
	f := NewFixed(width, bits)
	max := int64(1 << 30)
	if bits < 31 {
		max = int64(maxValue(bits))
	}
	for op := 0; op < width*2; op++ {
		f.Add(rng.Intn(width), rng.Int63n(max+1))
	}
	return f
}

func randFixedSign(rng *rand.Rand, width int, bits uint, mixed bool) *FixedSign {
	f := NewFixedSign(width, bits)
	max := int64(1 << 30)
	if bits < 32 {
		max = int64(maxValue(bits) >> 1)
	}
	for op := 0; op < width*2; op++ {
		v := rng.Int63n(max + 1)
		if mixed && rng.Intn(2) == 0 {
			v = -v
		}
		f.Add(rng.Intn(width), v)
	}
	return f
}

func randSalsa(rng *rand.Rand, width int, s uint, policy MergePolicy, hot int) *Salsa {
	c := NewSalsa(width, s, policy, false)
	for op := 0; op < width*4; op++ {
		// A few hot slots force merges (diverging layouts, overflow
		// cascades); the rest stay at low levels.
		slot := rng.Intn(width)
		if hot > 0 && rng.Intn(4) == 0 {
			slot = rng.Intn(hot)
		}
		c.Add(slot, rng.Int63n(1<<uint(rng.Intn(int(s)+4))))
	}
	return c
}

func randSalsaSign(rng *rand.Rand, width int, s uint, hot int, mixed bool) *SalsaSign {
	c := NewSalsaSign(width, s, false)
	for op := 0; op < width*4; op++ {
		slot := rng.Intn(width)
		if hot > 0 && rng.Intn(4) == 0 {
			slot = rng.Intn(hot)
		}
		v := rng.Int63n(1 << uint(rng.Intn(int(s)+4)))
		if mixed && rng.Intn(2) == 0 {
			v = -v
		}
		c.Add(slot, v)
	}
	return c
}

// TestSWARKernelEquivalenceFixed merges random pairs through the kernel and
// the reference loop and requires marshal-byte-identical results, for both
// union and subtraction, across every counter size.
func TestSWARKernelEquivalenceFixed(t *testing.T) {
	rng := rand.New(rand.NewSource(1701))
	for _, bits := range []uint{1, 2, 4, 8, 16, 32, 64} {
		for trial := 0; trial < 20; trial++ {
			width := 1 + rng.Intn(200)
			a, b := randFixed(rng, width, bits), randFixed(rng, width, bits)
			fast, slow := cloneFixed(t, a), cloneFixed(t, a)
			fast.MergeFrom(b)
			slow.mergeFromGeneric(b)
			if !bytes.Equal(marshalOf(t, fast), marshalOf(t, slow)) {
				t.Fatalf("bits=%d trial=%d: SWAR merge differs from reference", bits, trial)
			}
			fast.SubtractFrom(b)
			slow.subtractFromGeneric(b)
			if !bytes.Equal(marshalOf(t, fast), marshalOf(t, slow)) {
				t.Fatalf("bits=%d trial=%d: SWAR subtract differs from reference", bits, trial)
			}
		}
	}
}

// TestSWARKernelEquivalenceFixedSign is the signed version, covering both
// scales and mixed-sign values around the ± saturation points.
func TestSWARKernelEquivalenceFixedSign(t *testing.T) {
	rng := rand.New(rand.NewSource(1702))
	for _, bits := range []uint{2, 4, 8, 16, 32, 64} {
		for trial := 0; trial < 20; trial++ {
			width := 1 + rng.Intn(200)
			a := randFixedSign(rng, width, bits, true)
			b := randFixedSign(rng, width, bits, true)
			for _, scale := range []int64{1, -1} {
				fast, slow := cloneFixedSign(t, a), cloneFixedSign(t, a)
				fast.MergeFrom(b, scale)
				slow.mergeFromGeneric(b, scale)
				if !bytes.Equal(marshalOf(t, fast), marshalOf(t, slow)) {
					t.Fatalf("bits=%d trial=%d scale=%d: SWAR merge differs from reference", bits, trial, scale)
				}
			}
		}
	}
}

// TestSWARKernelEquivalenceSalsa pins the same-layout word path (clone pairs
// share layouts bit-for-bit, so doubling values exercises the overflow
// fallback and its level-raises) and the mismatched-layout bailout, for both
// policies and all base sizes, including the raise odometer.
func TestSWARKernelEquivalenceSalsa(t *testing.T) {
	rng := rand.New(rand.NewSource(1703))
	for _, s := range []uint{1, 2, 4, 8, 16, 32} {
		for _, policy := range []MergePolicy{SumMerge, MaxMerge} {
			for trial := 0; trial < 12; trial++ {
				width := 64 * (1 + rng.Intn(4))
				a := randSalsa(rng, width, s, policy, 4)
				// Same-layout case: merge a clone (identical layout and
				// values — the doubling drives overflow cascades).
				fast, slow := cloneSalsa(t, a), cloneSalsa(t, a)
				src := cloneSalsa(t, a)
				fast.MergeFrom(src)
				slow.mergeFromGeneric(src)
				if !bytes.Equal(marshalOf(t, fast), marshalOf(t, slow)) {
					t.Fatalf("s=%d %v trial=%d: same-layout SWAR merge differs", s, policy, trial)
				}
				if fast.Merges() != slow.Merges() {
					t.Fatalf("s=%d %v trial=%d: raise odometer %d != %d", s, policy, trial, fast.Merges(), slow.Merges())
				}
				// Independent pair: layouts usually differ, so the fast path
				// must bail out and match the reference trivially.
				b := randSalsa(rng, width, s, policy, 4)
				fast2, slow2 := cloneSalsa(t, a), cloneSalsa(t, a)
				fast2.MergeFrom(b)
				slow2.mergeFromGeneric(b)
				if !bytes.Equal(marshalOf(t, fast2), marshalOf(t, slow2)) {
					t.Fatalf("s=%d %v trial=%d: mixed-layout merge differs", s, policy, trial)
				}
				if policy == SumMerge {
					sub, subRef := cloneSalsa(t, fast), cloneSalsa(t, fast)
					sub.SubtractFrom(a)
					subRef.subtractFromGeneric(a)
					if !bytes.Equal(marshalOf(t, sub), marshalOf(t, subRef)) {
						t.Fatalf("s=%d trial=%d: same-layout SWAR subtract differs", s, trial)
					}
				}
			}
		}
	}
}

// TestSWARKernelEquivalenceSalsaSign is the sign-magnitude version: the word
// path only accepts all-non-negative words, so mixed-sign inputs exercise
// the per-counter fallback heavily.
func TestSWARKernelEquivalenceSalsaSign(t *testing.T) {
	rng := rand.New(rand.NewSource(1704))
	for _, s := range []uint{2, 4, 8, 16, 32} {
		for _, mixed := range []bool{false, true} {
			for trial := 0; trial < 12; trial++ {
				width := 64 * (1 + rng.Intn(4))
				a := randSalsaSign(rng, width, s, 4, mixed)
				fast, slow := cloneSalsaSign(t, a), cloneSalsaSign(t, a)
				src := cloneSalsaSign(t, a)
				fast.MergeFrom(src, 1)
				slow.mergeFromGeneric(src, 1)
				if !bytes.Equal(marshalOf(t, fast), marshalOf(t, slow)) {
					t.Fatalf("s=%d mixed=%v trial=%d: same-layout SWAR merge differs", s, mixed, trial)
				}
				if fast.Merges() != slow.Merges() {
					t.Fatalf("s=%d mixed=%v trial=%d: raise odometer %d != %d", s, mixed, trial, fast.Merges(), slow.Merges())
				}
				// Subtracting the original back out exercises the scale −1
				// word path (counters return exactly to a's doubled-minus-a
				// state through non-negative differences when !mixed).
				fast.MergeFrom(src, -1)
				slow.mergeFromGeneric(src, -1)
				if !bytes.Equal(marshalOf(t, fast), marshalOf(t, slow)) {
					t.Fatalf("s=%d mixed=%v trial=%d: SWAR subtract differs", s, mixed, trial)
				}
				b := randSalsaSign(rng, width, s, 4, mixed)
				for _, scale := range []int64{1, -1} {
					fast2, slow2 := cloneSalsaSign(t, a), cloneSalsaSign(t, a)
					fast2.MergeFrom(b, scale)
					slow2.mergeFromGeneric(b, scale)
					if !bytes.Equal(marshalOf(t, fast2), marshalOf(t, slow2)) {
						t.Fatalf("s=%d mixed=%v trial=%d scale=%d: mixed-layout merge differs", s, mixed, trial, scale)
					}
				}
			}
		}
	}
}

// mergeGroupings folds the rows at indices of order into a fresh clone of
// the row at order[0]'s... rather: it returns the three-way groupings
// ((A∪B)∪C, A∪(B∪C), (A∪C)∪B) of rows a, b, c using the given clone and
// merge functions.
func mergeGroupings[R any](clone func(R) R, merge func(dst, src R), a, b, c R) [3]R {
	ab := clone(a)
	merge(ab, b)
	merge(ab, c) // (A∪B)∪C

	bc := clone(b)
	merge(bc, c)
	abc := clone(a)
	merge(abc, bc) // A∪(B∪C)

	ac := clone(a)
	merge(ac, c)
	merge(ac, b) // (A∪C)∪B
	return [3]R{ab, abc, ac}
}

// TestMergeAssociativityFixed: saturating unsigned addition is
// min(Σ, max), so every grouping must agree byte-for-byte.
func TestMergeAssociativityFixed(t *testing.T) {
	rng := rand.New(rand.NewSource(1705))
	for _, bits := range []uint{4, 8, 32} {
		for trial := 0; trial < 10; trial++ {
			width := 1 + rng.Intn(150)
			a, b, c := randFixed(rng, width, bits), randFixed(rng, width, bits), randFixed(rng, width, bits)
			g := mergeGroupings(
				func(f *Fixed) *Fixed { return cloneFixed(t, f) },
				func(dst, src *Fixed) { dst.MergeFrom(src) },
				a, b, c)
			ref := marshalOf(t, g[0])
			for i := 1; i < 3; i++ {
				if !bytes.Equal(ref, marshalOf(t, g[i])) {
					t.Fatalf("bits=%d trial=%d: grouping %d differs", bits, trial, i)
				}
			}
		}
	}
}

// TestMergeAssociativitySalsa: under non-negative mass, a SALSA union's
// final values are saturating block sums and its final layout is the least
// fixpoint over those sums — both grouping-independent, for both policies.
// This is the property the sliding window's two-stack rotation relies on.
func TestMergeAssociativitySalsa(t *testing.T) {
	rng := rand.New(rand.NewSource(1706))
	for _, s := range []uint{4, 8, 16} {
		for _, policy := range []MergePolicy{SumMerge, MaxMerge} {
			for trial := 0; trial < 10; trial++ {
				width := 64 * (1 + rng.Intn(3))
				a := randSalsa(rng, width, s, policy, 6)
				b := randSalsa(rng, width, s, policy, 6)
				c := randSalsa(rng, width, s, policy, 6)
				g := mergeGroupings(
					func(r *Salsa) *Salsa { return cloneSalsa(t, r) },
					func(dst, src *Salsa) { dst.MergeFrom(src) },
					a, b, c)
				ref := marshalOf(t, g[0])
				for i := 1; i < 3; i++ {
					if !bytes.Equal(ref, marshalOf(t, g[i])) {
						t.Fatalf("s=%d %v trial=%d: grouping %d differs", s, policy, trial, i)
					}
				}
			}
		}
	}
}

// TestMergeAssociativitySalsaSign: with non-negative values (the windowed
// regime), sign-magnitude unions are grouping-independent byte-for-byte.
func TestMergeAssociativitySalsaSign(t *testing.T) {
	rng := rand.New(rand.NewSource(1707))
	for _, s := range []uint{4, 8, 16} {
		for trial := 0; trial < 10; trial++ {
			width := 64 * (1 + rng.Intn(3))
			a := randSalsaSign(rng, width, s, 6, false)
			b := randSalsaSign(rng, width, s, 6, false)
			c := randSalsaSign(rng, width, s, 6, false)
			g := mergeGroupings(
				func(r *SalsaSign) *SalsaSign { return cloneSalsaSign(t, r) },
				func(dst, src *SalsaSign) { dst.MergeFrom(src, 1) },
				a, b, c)
			ref := marshalOf(t, g[0])
			for i := 1; i < 3; i++ {
				if !bytes.Equal(ref, marshalOf(t, g[i])) {
					t.Fatalf("s=%d trial=%d: grouping %d differs", s, trial, i)
				}
			}
		}
	}
}

// tangoCounter is one Tango counter as seen by Counters; a full dump is the
// comparison key for Tango (which has no marshal format).
type tangoCounter struct {
	lo, hi int
	val    uint64
}

func tangoDump(t *Tango) []tangoCounter {
	var out []tangoCounter
	t.Counters(func(lo, hi int, val uint64) bool {
		out = append(out, tangoCounter{lo, hi, val})
		return true
	})
	return out
}

func cloneTango(t *Tango) *Tango {
	n := NewTango(t.width, t.s, t.policy)
	copy(n.words, t.words)
	n.link = t.link.Clone()
	return n
}

func randTango(rng *rand.Rand, width int, s uint, policy MergePolicy, hot int) *Tango {
	c := NewTango(width, s, policy)
	for op := 0; op < width*4; op++ {
		slot := rng.Intn(width)
		if hot > 0 && rng.Intn(4) == 0 {
			slot = rng.Intn(hot)
		}
		c.Add(slot, rng.Int63n(1<<uint(rng.Intn(int(s)+4))))
	}
	return c
}

// TestMergeAssociativityTango: Tango's span growth is deterministic and
// always works toward the SALSA-aligned enclosing block, so unions converge
// to the same spans and values under any grouping — pinned here because the
// windowed Tango backend reassociates bucket merges through the two-stack
// rotation exactly like the SALSA backends.
func TestMergeAssociativityTango(t *testing.T) {
	rng := rand.New(rand.NewSource(1709))
	for _, s := range []uint{2, 4, 8, 16} {
		for _, policy := range []MergePolicy{SumMerge, MaxMerge} {
			for trial := 0; trial < 10; trial++ {
				width := 1 << (5 + rng.Intn(3))
				a := randTango(rng, width, s, policy, 6)
				b := randTango(rng, width, s, policy, 6)
				c := randTango(rng, width, s, policy, 6)
				g := mergeGroupings(
					cloneTango,
					func(dst, src *Tango) { dst.MergeFrom(src) },
					a, b, c)
				ref := tangoDump(g[0])
				for i := 1; i < 3; i++ {
					if !reflect.DeepEqual(ref, tangoDump(g[i])) {
						t.Fatalf("s=%d %v trial=%d: grouping %d differs", s, policy, trial, i)
					}
				}
			}
		}
	}
}

// blockTotalSigned sums a SalsaSign row's counters over the 2^lvl-aligned
// block at start, counting each counter once.
func blockTotalSigned(c *SalsaSign, start int, lvl uint) int64 {
	var total int64
	end := start + 1<<lvl
	c.Counters(func(lo int, l uint, val int64) bool {
		if lo >= end {
			return false
		}
		if lo >= start {
			total += val
		}
		return true
	})
	return total
}

// TestSalsaSignMixedSignGrouping documents the signed relaxation: mixed-sign
// streams can make intermediate magnitudes cross a counter-size threshold in
// one grouping but not another, so the merge layouts (and hence bytes) may
// diverge — but every grouping remains a valid mass-conserving union: at
// the coarsest common level of any slot, the block sums agree exactly.
func TestSalsaSignMixedSignGrouping(t *testing.T) {
	// The deterministic divergence: A has +120 in slot 0 (8-bit counters
	// saturate magnitude at 127), B has +10, C has −10. (A∪B) overflows and
	// raises slot 0 to a 16-bit counter; B∪C cancels first, so A∪(B∪C)
	// keeps slot 0 unmerged.
	mk := func(v int64) *SalsaSign {
		c := NewSalsaSign(64, 8, false)
		c.Add(0, v)
		return c
	}
	a, b, c := mk(120), mk(10), mk(-10)
	ab := cloneSalsaSign(t, a)
	ab.MergeFrom(b, 1)
	ab.MergeFrom(c, 1)
	bc := cloneSalsaSign(t, b)
	bc.MergeFrom(c, 1)
	abc := cloneSalsaSign(t, a)
	abc.MergeFrom(bc, 1)
	if ab.Level(0) != 1 || abc.Level(0) != 0 {
		t.Fatalf("expected layout divergence: levels %d vs %d", ab.Level(0), abc.Level(0))
	}
	// Both groupings conserve the block mass at the coarser level.
	if got, want := blockTotalSigned(ab, 0, 1), blockTotalSigned(abc, 0, 1); got != want || got != 120 {
		t.Fatalf("mass not conserved: %d vs %d", got, want)
	}

	// Randomized version of the mass-conservation property.
	rng := rand.New(rand.NewSource(1708))
	for trial := 0; trial < 10; trial++ {
		width := 64
		x := randSalsaSign(rng, width, 8, 6, true)
		y := randSalsaSign(rng, width, 8, 6, true)
		z := randSalsaSign(rng, width, 8, 6, true)
		g := mergeGroupings(
			func(r *SalsaSign) *SalsaSign { return cloneSalsaSign(t, r) },
			func(dst, src *SalsaSign) { dst.MergeFrom(src, 1) },
			x, y, z)
		for i := 0; i < width; i++ {
			l := g[0].Level(i)
			for _, o := range g[1:] {
				if ol := o.Level(i); ol > l {
					l = ol
				}
			}
			start := i &^ (1<<l - 1)
			want := blockTotalSigned(g[0], start, l)
			for gi, o := range g[1:] {
				if got := blockTotalSigned(o, start, l); got != want {
					t.Fatalf("trial=%d slot=%d: grouping %d block sum %d != %d", trial, i, gi+1, got, want)
				}
			}
		}
	}
}
