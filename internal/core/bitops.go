package core

import (
	"math"
	"math/bits"
)

// validBits reports whether b is a power of two between 1 and max.
func validBits(b, max uint) bool {
	return b >= 1 && b <= max && b&(b-1) == 0
}

// maxValue returns the largest value representable in bits bits.
//
//salsa:hotpath
func maxValue(bits uint) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << bits) - 1
}

// satAdd returns a+b, saturating at 2^64−1.
//
//salsa:hotpath
func satAdd(a, b uint64) uint64 {
	s := a + b
	if s < a {
		return ^uint64(0)
	}
	return s
}

// satAddSigned returns a+b, saturating at ±(2^63−1).
//
//salsa:hotpath
func satAddSigned(a, b int64) int64 {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		if a > 0 {
			return 1<<63 - 1
		}
		return -(1<<63 - 1)
	}
	return s
}

// readAligned reads size bits at bit offset off. The caller guarantees the
// field is self-aligned (off is a multiple of size, size a power of two
// ≤ 64), so the field never straddles a word.
//
//salsa:hotpath
func readAligned(words []uint64, off, size uint) uint64 {
	if size == 64 {
		return words[off>>6]
	}
	return (words[off>>6] >> (off & 63)) & ((uint64(1) << size) - 1)
}

// writeAligned writes the low size bits of v at bit offset off, under the
// same alignment contract as readAligned.
//
//salsa:hotpath
func writeAligned(words []uint64, off, size uint, v uint64) {
	if size == 64 {
		words[off>>6] = v
		return
	}
	mask := ((uint64(1) << size) - 1) << (off & 63)
	words[off>>6] = words[off>>6]&^mask | v<<(off&63)&mask
}

// readSpan reads n bits (n ≤ 64) at arbitrary bit offset off, possibly
// crossing one word boundary. Used by Tango, whose counters are not
// self-aligned.
//
//salsa:hotpath
func readSpan(words []uint64, off, n uint) uint64 {
	if n == 0 {
		return 0
	}
	w := off >> 6
	sh := off & 63
	v := words[w] >> sh
	if sh+n > 64 {
		v |= words[w+1] << (64 - sh)
	}
	if n == 64 {
		return v
	}
	return v & ((uint64(1) << n) - 1)
}

// writeSpan writes the low n bits (n ≤ 64) of v at arbitrary bit offset off.
//
//salsa:hotpath
func writeSpan(words []uint64, off, n uint, v uint64) {
	if n == 0 {
		return
	}
	w := off >> 6
	sh := off & 63
	var lowMask uint64
	if n == 64 {
		lowMask = ^uint64(0)
	} else {
		lowMask = (uint64(1) << n) - 1
	}
	v &= lowMask
	words[w] = words[w]&^(lowMask<<sh) | v<<sh
	if sh+n > 64 {
		hi := n - (64 - sh)
		hiMask := (uint64(1) << hi) - 1
		words[w+1] = words[w+1]&^hiMask | v>>(64-sh)
	}
}

// zeroSpan clears n bits starting at bit offset off; n may exceed 64.
// Aligned interior words clear with single stores.
//
//salsa:hotpath
func zeroSpan(words []uint64, off, n uint) {
	if sh := off & 63; sh != 0 {
		chunk := 64 - sh
		if chunk > n {
			chunk = n
		}
		writeSpan(words, off, chunk, 0)
		off += chunk
		n -= chunk
	}
	for n >= 64 {
		words[off>>6] = 0
		off += 64
		n -= 64
	}
	if n > 0 {
		writeSpan(words, off, n, 0)
	}
}

// binomialHalf samples Binomial(c, 1/2) using the random-word source rnd.
// For large c it uses a normal approximation to stay O(1); for small c it
// counts bits of c/64 random words, which is exact.
func binomialHalf(c uint64, rnd func() uint64) uint64 {
	if c == 0 {
		return 0
	}
	if c <= 4096 {
		// Exact: count set bits among c fair coin flips, 64 at a time.
		var n uint64
		for c >= 64 {
			n += uint64(bits.OnesCount64(rnd()))
			c -= 64
		}
		if c > 0 {
			n += uint64(bits.OnesCount64(rnd() & ((uint64(1) << c) - 1)))
		}
		return n
	}
	// Normal approximation: mean c/2, variance c/4. The error is far below
	// the sketch noise at these magnitudes.
	mean := float64(c) / 2
	sd := math.Sqrt(float64(c) / 4)
	z := gaussFrom(rnd)
	v := mean + z*sd
	if v < 0 {
		return 0
	}
	if v > float64(c) {
		return c
	}
	return uint64(v + 0.5)
}

// gaussFrom produces an approximately standard normal variate by summing 12
// uniforms (Irwin–Hall), which is plenty for downsampling noise.
func gaussFrom(rnd func() uint64) float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += float64(rnd()>>11) / (1 << 53)
	}
	return s - 6
}
