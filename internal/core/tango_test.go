package core

import (
	"math/rand"
	"testing"
)

// checkTangoExactSums verifies the sum-merge invariant for Tango: the value
// of each counter is the exact total of updates to its span.
func checkTangoExactSums(t *testing.T, c *Tango, sums []uint64) {
	t.Helper()
	c.Counters(func(lo, hi int, val uint64) bool {
		var want uint64
		for j := lo; j <= hi; j++ {
			want += sums[j]
		}
		if val != want {
			t.Fatalf("counter [%d,%d]: got %d, want %d", lo, hi, val, want)
		}
		return true
	})
}

func TestTangoSumExact(t *testing.T) {
	for _, s := range []uint{1, 2, 4, 8, 16} {
		const w = 128
		c := NewTango(w, s, SumMerge)
		sums := make([]uint64, w)
		rng := rand.New(rand.NewSource(int64(s) * 41))
		for op := 0; op < 8000; op++ {
			i := rng.Intn(w)
			v := int64(rng.Intn(1 << 10))
			c.Add(i, v)
			sums[i] += uint64(v)
		}
		checkTangoExactSums(t, c, sums)
	}
}

func TestTangoPaperGrowthSequence(t *testing.T) {
	// §IV: "if counter 9 overflows, it merges with 8 ... then 10, then 11,
	// then 12, 13, 14, 15 ... then 7, 6, ...". Drive counter 9 through
	// repeated overflows and verify the span follows that exact order.
	c := NewTango(16, 8, MaxMerge)
	grow := func() (lo, hi int) {
		lo, hi = c.Span(9)
		bits := c.spanBits(hi - lo + 1)
		// Raise the counter just past the current span's capacity.
		c.SetAtLeast(9, maxValue(bits)+1)
		return c.Span(9)
	}
	// Values are capped at 64 bits, so growth stops at the full 8-block
	// ⟨8..15⟩ (the paper's conceptual sequence would continue to 7, 6, …).
	expect := [][2]int{{8, 9}, {8, 10}, {8, 11}, {8, 12}, {8, 13}, {8, 14}, {8, 15}}
	for step, want := range expect {
		lo, hi := grow()
		if lo != want[0] || hi != want[1] {
			t.Fatalf("step %d: span [%d,%d], want [%d,%d]", step, lo, hi, want[0], want[1])
		}
	}
}

func TestTangoContainedInSalsa(t *testing.T) {
	// §IV: "at every point in time, the Tango counters are contained in the
	// corresponding SALSA counters", which is what makes Tango at least as
	// accurate. Feed both arrays the same stream and check containment and
	// estimate dominance.
	const w = 128
	tango := NewTango(w, 8, SumMerge)
	salsa := NewSalsa(w, 8, SumMerge, false)
	rng := rand.New(rand.NewSource(47))
	for op := 0; op < 20000; op++ {
		i := rng.Intn(w)
		v := int64(rng.Intn(1 << 9))
		tango.Add(i, v)
		salsa.Add(i, v)
		if op%1000 == 0 {
			for j := 0; j < w; j++ {
				lo, hi := tango.Span(j)
				start, count := salsa.CounterRange(j)
				if lo < start || hi >= start+count {
					t.Fatalf("op %d slot %d: tango span [%d,%d] outside salsa range [%d,%d)",
						op, j, lo, hi, start, start+count)
				}
				if tango.Value(j) > salsa.Value(j) {
					t.Fatalf("op %d slot %d: tango estimate %d > salsa %d",
						op, j, tango.Value(j), salsa.Value(j))
				}
			}
		}
	}
}

func TestTangoMaxMergeBounds(t *testing.T) {
	const w = 64
	c := NewTango(w, 8, MaxMerge)
	sums := make([]uint64, w)
	rng := rand.New(rand.NewSource(53))
	for op := 0; op < 20000; op++ {
		i := rng.Intn(w)
		v := uint64(rng.Intn(64))
		c.Add(i, int64(v))
		sums[i] += v
	}
	for i := 0; i < w; i++ {
		lo, hi := c.Span(i)
		var total, max uint64
		for j := lo; j <= hi; j++ {
			total += sums[j]
			if sums[j] > max {
				max = sums[j]
			}
		}
		got := c.Value(i)
		if got < max || got > total {
			t.Fatalf("slot %d: value %d outside [%d, %d]", i, got, max, total)
		}
	}
}

func TestTangoNegativeUpdates(t *testing.T) {
	c := NewTango(64, 8, SumMerge)
	c.Add(0, 100)
	c.Add(0, -30)
	if c.Value(0) != 70 {
		t.Fatalf("Value = %d, want 70", c.Value(0))
	}
	c.Add(0, -200)
	if c.Value(0) != 0 {
		t.Fatal("no clamp at zero")
	}
}

func TestTangoNegativeOnMaxMergePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewTango(64, 8, MaxMerge).Add(0, -1)
}

func TestTangoSetAtLeast(t *testing.T) {
	c := NewTango(64, 8, MaxMerge)
	c.SetAtLeast(9, 300)
	if c.Value(9) != 300 {
		t.Fatalf("Value = %d, want 300", c.Value(9))
	}
	lo, hi := c.Span(9)
	if lo != 8 || hi != 9 {
		t.Fatalf("span [%d,%d], want [8,9]", lo, hi)
	}
	c.SetAtLeast(9, 10)
	if c.Value(9) != 300 {
		t.Fatal("SetAtLeast lowered counter")
	}
}

func TestTangoFinerThanSalsa(t *testing.T) {
	// A counter needing 24 bits should use exactly 3 cells in Tango
	// (where SALSA would use 4).
	c := NewTango(64, 8, SumMerge)
	c.Add(9, 1<<20) // needs 21 bits -> 3 cells
	lo, hi := c.Span(9)
	if hi-lo+1 != 3 {
		t.Fatalf("span size = %d, want 3 cells", hi-lo+1)
	}
	if c.Value(9) != 1<<20 {
		t.Fatalf("value = %d", c.Value(9))
	}
}

func TestTangoWholeArraySaturates(t *testing.T) {
	c := NewTango(4, 8, SumMerge)
	c.Add(0, 1<<62)
	c.Add(0, 1<<62)
	c.Add(1, 1<<62)
	c.Add(2, 1<<62) // exceeds the whole array's 32-bit capacity
	lo, hi := c.Span(0)
	if lo != 0 || hi != 3 {
		t.Fatalf("span [%d,%d], want whole array", lo, hi)
	}
	// Once the span is the entire array there is nowhere left to grow; the
	// counter saturates at the span's own capacity.
	if c.Value(0) != 1<<32-1 {
		t.Fatalf("value = %d, want saturation at 2^32-1", c.Value(0))
	}
}

func TestTangoSizeBits(t *testing.T) {
	c := NewTango(128, 8, SumMerge)
	if c.SizeBits() != 128*8+128 {
		t.Fatalf("SizeBits = %d", c.SizeBits())
	}
}

func TestTangoWidthMustBePowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewTango(100, 8, SumMerge)
}
