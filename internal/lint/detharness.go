package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"salsa/internal/lint/analysis"
)

// DetHarness preserves the one-logged-seed replay guarantee of the
// deterministic test harnesses.
//
// internal/faulttest, internal/epochtest, and internal/oracletest all
// promise that a failing run replays exactly from the seed printed in
// the failure. That promise dies the moment a schedule, assertion, or
// log line consults anything outside the seed. Packages opt in with a
// //salsa:deterministic marker on their package documentation; inside
// them this analyzer rejects:
//
//   - wall-clock reads: time.Now, time.Since, time.Until;
//   - the global math/rand source: any package-level function of
//     math/rand or math/rand/v2 except the New* constructors (a
//     *rand.Rand seeded from the schedule is the sanctioned source);
//   - map iteration, whose order varies per run. The one exception is
//     the collect idiom — a range body consisting solely of
//     `x = append(x, ...)` statements — because collecting into a slice
//     and sorting is exactly how map contents become deterministic.
var DetHarness = &analysis.Analyzer{
	Name: "detharness",
	Doc:  "//salsa:deterministic packages must not use wall clocks, global randomness, or unordered map iteration",
	Run:  runDetHarness,
}

func runDetHarness(pass *analysis.Pass) error {
	if !PackageMarked(pass.Files, "deterministic") {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDetCall(pass, n)
			case *ast.RangeStmt:
				checkDetRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkDetCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch path {
	case "time":
		if name == "Now" || name == "Since" || name == "Until" {
			pass.Reportf(call.Pos(), "time.%s in a deterministic harness: schedules must be a pure function of the logged seed", name)
		}
	case "math/rand", "math/rand/v2":
		sig := fn.Origin().Type().(*types.Signature)
		if sig.Recv() == nil && !strings.HasPrefix(name, "New") {
			pass.Reportf(call.Pos(), "global %s.%s in a deterministic harness: draw from a *rand.Rand seeded by the schedule", path, name)
		}
	}
}

func checkDetRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	t := tv.Type.Underlying()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem().Underlying()
	}
	if _, isMap := t.(*types.Map); !isMap {
		return
	}
	if isCollectOnlyBody(rng.Body) {
		return
	}
	pass.Reportf(rng.Pos(), "map iteration in a deterministic harness: order varies per run; collect into a slice and sort (a body of only `x = append(x, ...)` is exempt)")
}

// isCollectOnlyBody reports a range body consisting solely of
// append-accumulate assignments: the deterministic collect-then-sort
// idiom's first half.
func isCollectOnlyBody(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	for _, stmt := range body.List {
		assign, ok := stmt.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return false
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			return false
		}
	}
	return true
}
