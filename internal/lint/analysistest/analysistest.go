// Package analysistest runs one analyzer over golden-file fixture
// packages and checks its diagnostics against // want comments — the
// offline counterpart of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a directory of Go files under testdata/src/<pkg>
// forming a single package. Lines that should be flagged carry a
// trailing comment of one or more quoted regular expressions:
//
//	x := fmt.Sprintf("%d", v) // want `fmt\.Sprintf in hotpath`
//
// Every diagnostic must be matched by a want on its line and every
// want must be matched by a diagnostic — an analyzer that goes silent
// on its deliberately-bad fixture fails the test, which is what keeps
// the suite from being neutered by refactoring.
//
// Fixtures may import the standard library (resolved offline through
// `go list -export` compiler export data) but not each other.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"

	"salsa/internal/lint"
	"salsa/internal/lint/analysis"
)

// Run applies the analyzer to each fixture package under
// testdata/src/<pkg> and reports mismatches against // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		t.Run(pkg, func(t *testing.T) {
			runOne(t, filepath.Join(testdata, "src", pkg), pkg, a)
		})
	}
}

func runOne(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatal(err)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: stdlibImporter(t, fset, files),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("fixture %s does not type-check: %v", pkgPath, err)
	}

	markers := make(analysis.MarkerSet)
	lint.MarkersForFiles(markers, pkgPath, files)
	ignores := lint.CollectIgnores(fset, files)

	var got []lint.Finding
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       tpkg,
		TypesInfo: info,
		Module:    pkgPath, // same-package calls count as in-module
		Markers:   markers,
		Report: func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			if ignores.Suppressed(a.Name, pos) {
				return
			}
			got = append(got, lint.Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		},
	}
	if err := a.Run(pass); err != nil {
		t.Fatal(err)
	}
	got = append(got, ignores.Malformed...)

	checkWants(t, fset, files, got)
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return files, nil
}

// exportCache maps import path → compiler export data file, filled by
// `go list -export` once per distinct import set and shared across the
// test binary.
var exportCache = struct {
	sync.Mutex
	paths map[string]string
}{paths: make(map[string]string)}

func stdlibImporter(t *testing.T, fset *token.FileSet, files []*ast.File) types.Importer {
	t.Helper()
	var missing []string
	exportCache.Lock()
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if _, ok := exportCache.paths[path]; !ok && path != "unsafe" {
				missing = append(missing, path)
			}
		}
	}
	exportCache.Unlock()
	if len(missing) > 0 {
		listExports(t, missing)
	}
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exportCache.Lock()
		exp, ok := exportCache.paths[path]
		exportCache.Unlock()
		if !ok {
			return nil, fmt.Errorf("no export data for %q (fixtures may import only the standard library)", path)
		}
		return os.Open(exp)
	})
}

func listExports(t *testing.T, pkgs []string) {
	t.Helper()
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export"}, pkgs...)
	out, err := exec.Command("go", args...).Output()
	if err != nil {
		t.Fatalf("go list -export %s: %v", strings.Join(pkgs, " "), err)
	}
	exportCache.Lock()
	defer exportCache.Unlock()
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("go list -export: %v", err)
		}
		if p.Export != "" {
			exportCache.paths[p.ImportPath] = p.Export
		}
	}
}

// wantRe matches the quoted patterns of a // want comment: Go-quoted
// or backquoted regular expressions.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, got []lint.Finding) {
	t.Helper()
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string]map[int][]*want) // file → line → expectations
	for _, file := range files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantRe.FindAllString(rest, -1) {
					pattern, err := unquoteWant(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					lines := wants[pos.Filename]
					if lines == nil {
						lines = make(map[int][]*want)
						wants[pos.Filename] = lines
					}
					lines[pos.Line] = append(lines[pos.Line], &want{re: re})
				}
			}
		}
	}

	for _, f := range got {
		var matched bool
		for _, w := range wants[f.Pos.Filename][f.Pos.Line] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched, matched = true, true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for file, lines := range wants {
		for line, ws := range lines {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: no diagnostic matching %q", file, line, w.re)
				}
			}
		}
	}
}

func unquoteWant(q string) (string, error) {
	if strings.HasPrefix(q, "`") {
		return strings.Trim(q, "`"), nil
	}
	return strconv.Unquote(q)
}
