// Package lint is salsalint: the repo-specific static-analysis suite
// that proves at compile time the invariants the runtime test suites
// (TestZeroAlloc*, the race hammers, the seeded harnesses) can only
// catch after the fact.
//
// Five analyzers, each encoding an invariant this codebase enforces:
//
//   - hotpath: //salsa:hotpath functions contain no heap-escaping
//     constructs and call only other hotpath functions.
//   - nolock: //salsa:nolock functions (the epoch writer ingest path)
//     never reach mutexes, atomic read-modify-writes, or channels.
//   - envelopetag: every tag* constant in the universal envelope is
//     marshaled, unmarshaled, and fuzz-seeded — no gaps, no duplicates.
//   - detharness: //salsa:deterministic packages (the seeded replay
//     harnesses) never consult wall clocks, global randomness, or
//     unordered map iteration.
//   - typederr: //salsa:typederrors packages return the repo's typed
//     or wrapped errors from their exported API, never bare fmt.Errorf.
//
// A finding is suppressed by a directive on the offending line or the
// line above:
//
//	//salsa:ignore <analyzer>[,<analyzer>] <justification>
//
// The justification is mandatory; a bare directive is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"salsa/internal/lint/analysis"
	"salsa/internal/lint/load"
)

// All returns the full analyzer suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		HotPath,
		NoLock,
		EnvelopeTag,
		DetHarness,
		TypedErr,
	}
}

// A Finding is one diagnostic tied to its analyzer and position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run applies analyzers to every analyzable package of a completed
// load, resolves //salsa:ignore suppressions, and returns the findings
// sorted by position.
func Run(res *load.Result, analyzers []*analysis.Analyzer) ([]Finding, error) {
	markers := CollectMarkers(res)
	var findings []Finding
	seen := make(map[Finding]bool) // base and variant packages overlap; report once
	for _, pkg := range res.Packages {
		if !pkg.Analyze {
			continue
		}
		ignores := CollectIgnores(res.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      res.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
				Module:    res.Module,
				Markers:   markers,
				Report: func(d analysis.Diagnostic) {
					pos := res.Fset.Position(d.Pos)
					if ignores.Suppressed(a.Name, pos) {
						return
					}
					f := Finding{Analyzer: a.Name, Pos: pos, Message: d.Message}
					if !seen[f] {
						seen[f] = true
						findings = append(findings, f)
					}
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
		for _, f := range ignores.Malformed {
			if !seen[f] {
				seen[f] = true
				findings = append(findings, f)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// CollectMarkers scans every loaded module package — dependencies
// included, so cross-package call-graph discipline sees the whole repo —
// for //salsa:<marker> lines in function doc comments.
func CollectMarkers(res *load.Result) analysis.MarkerSet {
	markers := make(analysis.MarkerSet)
	for _, pkg := range res.Packages {
		MarkersForFiles(markers, pkg.Pkg.Path(), pkg.Files)
	}
	return markers
}

// MarkersForFiles records the //salsa:<marker> function annotations of
// one package's files into markers.
func MarkersForFiles(markers analysis.MarkerSet, pkgPath string, files []*ast.File) {
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Doc != nil {
				addMarkers(markers, pkgPath, fd)
			}
		}
	}
}

func addMarkers(markers analysis.MarkerSet, pkgPath string, fd *ast.FuncDecl) {
	for _, c := range fd.Doc.List {
		name, ok := markerName(c.Text)
		if !ok {
			continue
		}
		key := analysis.DeclKey(pkgPath, fd)
		if key == "" {
			continue
		}
		set := markers[key]
		if set == nil {
			set = make(map[string]bool)
			markers[key] = set
		}
		set[name] = true
	}
}

// markerName extracts "hotpath" from "//salsa:hotpath". Directives are
// comments with no space after // (like //go:build), so "// salsa:..."
// prose is not a marker.
func markerName(text string) (string, bool) {
	rest, ok := strings.CutPrefix(text, "//salsa:")
	if !ok {
		return "", false
	}
	name, _, _ := strings.Cut(rest, " ")
	name = strings.TrimSpace(name)
	if name == "" || name == "ignore" {
		return "", false
	}
	return name, true
}

// PackageMarked reports whether any file of the package carries the
// package-level directive //salsa:<marker> (conventionally on the
// package documentation). Package markers opt whole packages into an
// analyzer: //salsa:deterministic for detharness, //salsa:typederrors
// for typederr.
func PackageMarked(files []*ast.File, marker string) bool {
	for _, file := range files {
		for _, group := range file.Comments {
			// Only comments above or beside the package clause: a package
			// marker is a property of the package, declared at its head.
			if group.Pos() > file.Name.End() {
				continue
			}
			for _, c := range group.List {
				if name, ok := markerName(c.Text); ok && name == marker {
					return true
				}
			}
		}
	}
	return false
}

// IgnoreIndex resolves //salsa:ignore suppressions for one package.
type IgnoreIndex struct {
	byLine map[string]map[int][]string // file → line → suppressed analyzers

	// Malformed holds directives missing their analyzer list or
	// justification — themselves findings, never suppressions.
	Malformed []Finding
}

// CollectIgnores indexes the //salsa:ignore directives of one package.
func CollectIgnores(fset *token.FileSet, files []*ast.File) *IgnoreIndex {
	idx := &IgnoreIndex{byLine: make(map[string]map[int][]string)}
	for _, file := range files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				rest, ok := strings.CutPrefix(c.Text, "//salsa:ignore")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				names, justification, _ := strings.Cut(strings.TrimSpace(rest), " ")
				if names == "" || strings.TrimSpace(justification) == "" {
					idx.Malformed = append(idx.Malformed, Finding{
						Analyzer: "ignore",
						Pos:      pos,
						Message:  "//salsa:ignore needs an analyzer list and a justification: //salsa:ignore <analyzer>[,<analyzer>] <why this is safe>",
					})
					continue
				}
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					idx.byLine[pos.Filename] = lines
				}
				for _, name := range strings.Split(names, ",") {
					lines[pos.Line] = append(lines[pos.Line], strings.TrimSpace(name))
				}
			}
		}
	}
	return idx
}

// Suppressed reports whether a directive on the finding's line, or on
// the line directly above it, names the analyzer.
func (idx *IgnoreIndex) Suppressed(analyzer string, pos token.Position) bool {
	lines := idx.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}
