package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"salsa/internal/lint"
	"salsa/internal/lint/analysistest"
)

// Each analyzer runs over a deliberately-bad golden fixture; the
// analysistest harness fails both on a missed // want and on an
// unexpected diagnostic, so a neutered analyzer cannot pass.

func TestHotPath(t *testing.T) {
	analysistest.Run(t, "testdata", lint.HotPath, "hotpathtest")
}

func TestNoLock(t *testing.T) {
	analysistest.Run(t, "testdata", lint.NoLock, "nolocktest")
}

func TestEnvelopeTag(t *testing.T) {
	analysistest.Run(t, "testdata", lint.EnvelopeTag, "envtagtest")
}

func TestDetHarness(t *testing.T) {
	analysistest.Run(t, "testdata", lint.DetHarness, "dettest")
}

func TestTypedErr(t *testing.T) {
	analysistest.Run(t, "testdata", lint.TypedErr, "typederrtest")
}

// Malformed //salsa:ignore directives are findings anchored on the
// directive's own line, where no // want comment can coexist — so the
// fixture harness cannot cover them and they are unit-tested here.
func TestIgnoreDirectives(t *testing.T) {
	const src = `package p

func f() {
	_ = 1 //salsa:ignore
	_ = 2 //salsa:ignore hotpath
	_ = 3 //salsa:ignore hotpath,nolock scratch buffer proven alloc-free
	//salsa:ignore detharness teardown clock is logged, never asserted on
	_ = 4
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx := lint.CollectIgnores(fset, []*ast.File{file})

	if len(idx.Malformed) != 2 {
		t.Fatalf("Malformed = %v, want 2 findings (bare directive, missing justification)", idx.Malformed)
	}
	for _, f := range idx.Malformed {
		if f.Analyzer != "ignore" {
			t.Errorf("malformed finding attributed to %q, want \"ignore\"", f.Analyzer)
		}
		if !strings.Contains(f.Message, "justification") {
			t.Errorf("malformed finding message %q does not demand a justification", f.Message)
		}
	}
	wantLines := map[int]bool{4: true, 5: true}
	for _, f := range idx.Malformed {
		if !wantLines[f.Pos.Line] {
			t.Errorf("malformed finding on line %d, want lines 4 and 5", f.Pos.Line)
		}
	}

	at := func(line int) token.Position { return token.Position{Filename: "p.go", Line: line} }
	if !idx.Suppressed("hotpath", at(6)) || !idx.Suppressed("nolock", at(6)) {
		t.Error("comma-separated directive on line 6 must suppress both hotpath and nolock")
	}
	if idx.Suppressed("detharness", at(6)) {
		t.Error("line 6 directive must not suppress an analyzer it does not name")
	}
	if !idx.Suppressed("detharness", at(8)) {
		t.Error("directive on line 7 must suppress findings on the line below (line 8)")
	}
	if idx.Suppressed("detharness", at(9)) {
		t.Error("suppression must not reach two lines past the directive")
	}
	// Malformed directives are findings, never suppressions.
	if idx.Suppressed("hotpath", at(5)) {
		t.Error("a malformed directive (no justification) must not suppress anything")
	}
}
