package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"

	"salsa/internal/lint/analysis"
)

// TypedErr keeps the public error surface introspectable.
//
// The repo's contract (DeltaError, CompositionError, TooLargeError,
// the ErrBadPayload/ErrBadFrame sentinels) is that callers can always
// dispatch on an exported function's error with errors.Is/errors.As —
// which a bare fmt.Errorf string silently breaks. Packages opt in with
// a //salsa:typederrors marker on their package documentation; inside
// them, every exported function or method (on an exported type) that
// returns an error must not return, directly:
//
//   - fmt.Errorf(...) whose format has no %w verb, or
//   - an inline errors.New(...).
//
// Wrapping a sentinel with %w, returning a typed error, or routing
// through a package error-constructor helper all pass. Function
// literals inside the body are skipped: a callback's return values are
// not the function's API. This is a discipline check on the return
// sites the compiler can see, not a dataflow analysis — the
// corresponding runtime guarantee is the errors.Is/As assertions in
// the package tests.
var TypedErr = &analysis.Analyzer{
	Name: "typederr",
	Doc:  "//salsa:typederrors packages must return typed or %w-wrapped errors from exported functions",
	Run:  runTypedErr,
}

func runTypedErr(pass *analysis.Pass) error {
	if !PackageMarked(pass.Files, "typederrors") {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !exportedAPI(fd) {
				continue
			}
			checkTypedErrFunc(pass, fd)
		}
	}
	return nil
}

// exportedAPI reports whether fd is part of the package's exported
// surface: an exported function, or an exported method on an exported
// receiver type.
func exportedAPI(fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	recv := analysis.DeclKey("", fd) // ".Recv.Name"
	parts := strings.Split(recv, ".")
	if len(parts) < 3 {
		return false
	}
	return token.IsExported(parts[1])
}

func checkTypedErrFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a callback's returns are not this function's API
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			call, ok := ast.Unparen(res).(*ast.CallExpr)
			if !ok {
				continue
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				continue
			}
			switch fn.Pkg().Path() + "." + fn.Name() {
			case "fmt.Errorf":
				if len(call.Args) > 0 && !formatWraps(call.Args[0]) {
					pass.Reportf(res.Pos(), "%s returns a bare fmt.Errorf string; wrap a sentinel with %%w or return one of the package's typed errors", fd.Name.Name)
				}
			case "errors.New":
				pass.Reportf(res.Pos(), "%s returns an inline errors.New; declare a package sentinel or typed error so callers can errors.Is it", fd.Name.Name)
			}
		}
		return true
	})
}

// formatWraps reports whether a fmt.Errorf format argument is a string
// literal containing a %w (or %[n]w) verb. Non-literal formats are
// given the benefit of the doubt.
func formatWraps(arg ast.Expr) bool {
	lit, ok := ast.Unparen(arg).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return true
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return true
	}
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		j := i + 1
		for j < len(format) && (format[j] == '[' || format[j] == ']' || format[j] >= '0' && format[j] <= '9') {
			j++
		}
		if j < len(format) && format[j] == 'w' {
			return true
		}
	}
	return false
}
