package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"salsa/internal/lint/analysis"
)

// HotPath proves the zero-allocation contract of //salsa:hotpath
// functions at compile time — the static complement to TestZeroAlloc*.
//
// The runtime tests pin allocs/op to zero for the paths they exercise;
// this analyzer rejects the constructs that would make an alloc
// possible before the code ever runs: defer and go statements, closures
// that capture variables, map and channel operations, make/new,
// fmt/sort.Slice calls, appends that can grow a non-receiver slice, and
// implicit interface conversions (boxing) at call sites.
//
// Call-graph discipline: a hotpath function may call, within this
// module, only functions that are themselves marked //salsa:hotpath.
// Annotating a function therefore transitively pins its callees, which
// is how the AddFast/ValueFast/UpdateBatch/probe/SWAR-kernel graph
// stays closed under refactoring.
//
// Escape hatches, both deliberate: arguments of an explicit panic(...)
// call are exempt (a path that allocates only while crashing is not a
// hot-path regression), and dynamic calls (interface methods, function
// values, type-parameter methods) are not resolvable statically and are
// left to the runtime tests.
var HotPath = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "//salsa:hotpath functions must be free of heap-escaping constructs and call only hotpath functions",
	Run:  runHotPath,
}

func runHotPath(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := analysis.DeclKey(pass.Pkg.Path(), fd)
			if !pass.Markers.Has(key, "hotpath") {
				continue
			}
			(&hotPathChecker{pass: pass, decl: fd, recv: receiverName(fd)}).check()
		}
	}
	return nil
}

func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

type hotPathChecker struct {
	pass *analysis.Pass
	decl *ast.FuncDecl
	recv string
}

func (c *hotPathChecker) check() {
	ast.Inspect(c.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			c.pass.Reportf(n.Pos(), "defer in hotpath function %s (defer records allocate and delay work to return)", c.decl.Name.Name)
		case *ast.GoStmt:
			c.pass.Reportf(n.Pos(), "goroutine launch in hotpath function %s", c.decl.Name.Name)
		case *ast.SendStmt:
			c.pass.Reportf(n.Pos(), "channel send in hotpath function %s", c.decl.Name.Name)
		case *ast.SelectStmt:
			c.pass.Reportf(n.Pos(), "select in hotpath function %s", c.decl.Name.Name)
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				c.pass.Reportf(n.Pos(), "channel receive in hotpath function %s", c.decl.Name.Name)
			}
		case *ast.RangeStmt:
			switch c.underlying(n.X).(type) {
			case *types.Map:
				c.pass.Reportf(n.Pos(), "map iteration in hotpath function %s", c.decl.Name.Name)
			case *types.Chan:
				c.pass.Reportf(n.Pos(), "channel range in hotpath function %s", c.decl.Name.Name)
			}
		case *ast.IndexExpr:
			if _, ok := c.underlying(n.X).(*types.Map); ok {
				c.pass.Reportf(n.Pos(), "map access in hotpath function %s", c.decl.Name.Name)
			}
		case *ast.FuncLit:
			c.checkFuncLit(n)
			return false // the literal's body runs elsewhere; captures are the hazard here
		case *ast.CallExpr:
			if c.isPanic(n) {
				return false // crash paths may allocate: panic args are exempt
			}
			c.checkCall(n)
		}
		return true
	})
}

func (c *hotPathChecker) underlying(expr ast.Expr) types.Type {
	tv, ok := c.pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type.Underlying()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem().Underlying()
	}
	return t
}

func (c *hotPathChecker) isPanic(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// checkFuncLit flags closures that capture variables of the enclosing
// function: a capturing closure forces its captures (and itself) to the
// heap.
func (c *hotPathChecker) checkFuncLit(lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		declaredInEnclosing := v.Pos() >= c.decl.Pos() && v.Pos() < c.decl.End()
		declaredInLit := v.Pos() >= lit.Pos() && v.Pos() < lit.End()
		if declaredInEnclosing && !declaredInLit {
			c.pass.Reportf(lit.Pos(), "closure captures %q in hotpath function %s", id.Name, c.decl.Name.Name)
			return false
		}
		return true
	})
}

func (c *hotPathChecker) checkCall(call *ast.CallExpr) {
	// Builtins: append only onto receiver-rooted slices; make/new allocate.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				if len(call.Args) > 0 && rootIdent(call.Args[0]) != c.recv {
					c.pass.Reportf(call.Pos(), "append to non-receiver slice in hotpath function %s (growth allocates; only receiver-owned scratch may append)", c.decl.Name.Name)
				}
			case "make", "new":
				c.pass.Reportf(call.Pos(), "%s in hotpath function %s", b.Name(), c.decl.Name.Name)
			case "close":
				c.pass.Reportf(call.Pos(), "channel close in hotpath function %s", c.decl.Name.Name)
			}
			return
		}
	}

	// Conversions to interface types box their operand.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && !c.isInterfaceOrNil(call.Args[0]) {
			c.pass.Reportf(call.Pos(), "conversion to interface type %s in hotpath function %s (boxes the operand)", tv.Type, c.decl.Name.Name)
		}
		return
	}

	fn := analysis.Callee(c.pass.TypesInfo, call)
	if fn != nil && fn.Pkg() != nil {
		path, name := fn.Pkg().Path(), fn.Name()
		switch {
		case path == "fmt":
			c.pass.Reportf(call.Pos(), "fmt.%s in hotpath function %s", name, c.decl.Name.Name)
			return
		case path == "sort" && (name == "Slice" || name == "SliceStable" || name == "Sort" || name == "Stable"):
			c.pass.Reportf(call.Pos(), "sort.%s in hotpath function %s (interface-based sorting allocates; use an inline insertion sort)", name, c.decl.Name.Name)
			return
		}
		if c.inModule(path) {
			if key := analysis.FuncKey(fn); key != "" && !c.pass.Markers.Has(key, "hotpath") {
				c.pass.Reportf(call.Pos(), "hotpath function %s calls %s.%s, which is not marked //salsa:hotpath", c.decl.Name.Name, path, name)
			}
		}
	}

	// Passing a concrete value where a parameter is interface-typed
	// boxes it (fmt is the classic case, but any interface sink counts).
	c.checkBoxing(call)
}

func (c *hotPathChecker) inModule(path string) bool {
	return path == c.pass.Module || strings.HasPrefix(path, c.pass.Module+"/")
}

func (c *hotPathChecker) checkBoxing(call *ast.CallExpr) {
	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if _, isTypeParam := pt.(*types.TypeParam); isTypeParam {
			continue
		}
		if !c.isInterfaceOrNil(arg) {
			c.pass.Reportf(arg.Pos(), "argument boxes %s into %s in hotpath function %s", c.pass.TypesInfo.Types[arg].Type, pt, c.decl.Name.Name)
		}
	}
}

func (c *hotPathChecker) isInterfaceOrNil(arg ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[arg]
	if !ok || tv.Type == nil {
		return true // be conservative: unknown types are not findings
	}
	if tv.IsNil() {
		return true
	}
	if _, isTypeParam := tv.Type.(*types.TypeParam); isTypeParam {
		return true
	}
	return types.IsInterface(tv.Type)
}

// rootIdent unwraps selector/index/slice/star/paren chains to the
// left-most identifier: the owner of the storage being appended to.
func rootIdent(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e.Name
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return ""
		}
	}
}
