package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"salsa/internal/lint/analysis"
)

// EnvelopeTag closes the recurring PR-4/6/7 review gap: a new universal
// envelope tag constant that is marshaled but not fuzz-seeded, or
// decoded but never emitted, ships silently and only surfaces when a
// payload from a newer writer hits an older reader.
//
// In any package that declares tag* constants and an Unmarshal
// function, every tag constant must appear in all three legs of the
// codec:
//
//   - the marshal side: as an argument of an envHeader(tag) call;
//   - the decode side: as a case of the tag switch inside Unmarshal —
//     which must also never carry a raw integer case, so a tag byte
//     cannot be claimed without declaring its constant;
//   - the fuzz corpus: as a key of the envelopeTagSeeds map, whose
//     truthfulness (each named topology really marshals to that tag)
//     is pinned by TestEnvelopeTagSeedsCoverUniversalCorpus at run time.
//
// Two tag constants sharing a value is likewise an error: the second
// declaration silently shadows the first on the wire.
var EnvelopeTag = &analysis.Analyzer{
	Name: "envelopetag",
	Doc:  "every envelope tag* constant must be marshaled, decoded, and fuzz-seeded exactly once",
	Run:  runEnvelopeTag,
}

func runEnvelopeTag(pass *analysis.Pass) error {
	tags := collectTagConsts(pass)
	if len(tags) == 0 || lookupFunc(pass, "Unmarshal") == nil {
		return nil // not an envelope codec package
	}

	byValue := make(map[int64]*types.Const)
	for _, tc := range tags {
		v, ok := constant.Int64Val(tc.Val())
		if !ok {
			continue
		}
		if prev, dup := byValue[v]; dup {
			pass.Reportf(tc.Pos(), "tag constant %s duplicates the value %d of %s", tc.Name(), v, prev.Name())
			continue
		}
		byValue[v] = tc
	}

	marshaled := tagsInEnvHeaderCalls(pass)
	decoded := tagsInUnmarshalSwitch(pass)
	seeded, haveSeeds := tagsInSeedList(pass)

	for _, tc := range tags {
		var missing []string
		if !marshaled[tc] {
			missing = append(missing, "an envHeader(...) marshal call")
		}
		if !decoded[tc] {
			missing = append(missing, "the Unmarshal tag switch")
		}
		if haveSeeds && !seeded[tc] {
			missing = append(missing, "the envelopeTagSeeds fuzz-coverage map")
		}
		for _, leg := range missing {
			pass.Reportf(tc.Pos(), "tag constant %s is missing from %s", tc.Name(), leg)
		}
	}
	if !haveSeeds {
		pass.Reportf(tags[0].Pos(), "package declares envelope tag constants but no envelopeTagSeeds fuzz-coverage map")
	}
	return nil
}

func collectTagConsts(pass *analysis.Pass) []*types.Const {
	var tags []*types.Const
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		if !isTagName(name) {
			continue
		}
		if c, ok := scope.Lookup(name).(*types.Const); ok {
			tags = append(tags, c)
		}
	}
	return tags
}

func isTagName(name string) bool {
	return len(name) > 3 && name[:3] == "tag" && name[3] >= 'A' && name[3] <= 'Z'
}

func lookupFunc(pass *analysis.Pass, name string) *types.Func {
	fn, _ := pass.Pkg.Scope().Lookup(name).(*types.Func)
	return fn
}

// tagsInEnvHeaderCalls records tag constants referenced anywhere inside
// the arguments of a call to envHeader.
func tagsInEnvHeaderCalls(pass *analysis.Pass) map[*types.Const]bool {
	used := make(map[*types.Const]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "envHeader" {
				return true
			}
			for _, arg := range call.Args {
				for _, tc := range tagConstsIn(pass, arg) {
					used[tc] = true
				}
			}
			return true
		})
	}
	return used
}

// tagsInUnmarshalSwitch records tag constants appearing as case
// expressions in tag-dispatch switches inside unmarshal functions
// (Unmarshal itself and its unmarshal* helpers — the decode side), and
// flags raw integer-literal cases in any switch that dispatches on
// tags.
func tagsInUnmarshalSwitch(pass *analysis.Pass) map[*types.Const]bool {
	used := make(map[*types.Const]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !strings.Contains(strings.ToLower(fd.Name.Name), "unmarshal") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok {
					return true
				}
				var caseTags []*types.Const
				var rawCases []ast.Expr
				for _, stmt := range sw.Body.List {
					clause, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, expr := range clause.List {
						if tcs := tagConstsIn(pass, expr); len(tcs) > 0 {
							caseTags = append(caseTags, tcs...)
						} else if lit, ok := ast.Unparen(expr).(*ast.BasicLit); ok {
							rawCases = append(rawCases, lit)
						}
					}
				}
				if len(caseTags) == 0 {
					return true // some other switch, not the tag dispatch
				}
				for _, tc := range caseTags {
					used[tc] = true
				}
				for _, raw := range rawCases {
					pass.Reportf(raw.Pos(), "raw literal case in the Unmarshal tag switch; declare a tag constant for it")
				}
				return true
			})
		}
	}
	return used
}

// tagsInSeedList records tag constants used as keys (or elements) of
// the package-level envelopeTagSeeds composite literal.
func tagsInSeedList(pass *analysis.Pass) (map[*types.Const]bool, bool) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "envelopeTagSeeds" || i >= len(vs.Values) {
						continue
					}
					lit, ok := ast.Unparen(vs.Values[i]).(*ast.CompositeLit)
					if !ok {
						continue
					}
					used := make(map[*types.Const]bool)
					for _, elt := range lit.Elts {
						key := elt
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							key = kv.Key
						}
						for _, tc := range tagConstsIn(pass, key) {
							used[tc] = true
						}
					}
					return used, true
				}
			}
		}
	}
	return nil, false
}

// tagConstsIn resolves every tag constant referenced within expr.
func tagConstsIn(pass *analysis.Pass, expr ast.Expr) []*types.Const {
	var tags []*types.Const
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || !isTagName(id.Name) {
			return true
		}
		if c, ok := pass.TypesInfo.Uses[id].(*types.Const); ok && c.Pkg() == pass.Pkg {
			tags = append(tags, c)
		}
		return true
	})
	return tags
}
