// Package load turns `go list` output into type-checked packages for
// the salsalint analyzers — a minimal offline substitute for
// golang.org/x/tools/go/packages.
//
// The strategy: one `go list -deps -test -export -json` invocation
// enumerates every package the patterns reach, including the synthetic
// test variants ("p [p.test]" with the in-package _test.go files merged
// in, and the external "p_test [p.test]" package). Packages outside the
// module are imported from the compiler export data the -export flag
// materializes in the build cache; packages inside the module are
// parsed and type-checked from source in dependency order, so analyzers
// see full syntax trees with complete type information for the whole
// repo — test files included — without any network or vendored tooling.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one type-checked module package ready for analysis.
type Package struct {
	ImportPath string // unique key, e.g. "salsa [salsa.test]"
	BasePath   string // ImportPath with the test-variant suffix stripped
	Dir        string
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info

	// Analyze marks packages the caller's patterns selected (as opposed
	// to dependencies loaded only for their types). Base packages whose
	// own "p [p.test]" variant was also selected are demoted to
	// dependencies: the variant is a strict superset of their files.
	Analyze bool
}

// Result is a completed load.
type Result struct {
	Module   string // module path, e.g. "salsa"
	Fset     *token.FileSet
	Packages []*Package // topological order, dependencies first
}

// listPkg mirrors the `go list -json` fields the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	ForTest    string
	DepOnly    bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Module     *struct{ Path, Dir string }
}

// Load lists patterns in dir and type-checks every in-module package.
func Load(dir string, patterns ...string) (*Result, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-test", "-export",
		"-json=ImportPath,Name,Dir,Export,Standard,ForTest,DepOnly,GoFiles,Imports,ImportMap,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.Bytes())
	}

	var listed []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		listed = append(listed, p)
	}

	ld := &loader{
		fset:    token.NewFileSet(),
		byPath:  make(map[string]*listPkg, len(listed)),
		checked: make(map[string]*Package),
		exports: make(map[string]string),
	}
	for _, p := range listed {
		ld.byPath[p.ImportPath] = p
		if p.Export != "" {
			ld.exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && ld.module == "" {
			ld.module = p.Module.Path
		}
	}
	ld.gc = importer.ForCompiler(ld.fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := ld.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	})

	// Variants supersede their base package for analysis purposes.
	hasVariant := make(map[string]bool)
	for _, p := range listed {
		if p.ForTest != "" && basePath(p.ImportPath) == p.ForTest {
			hasVariant[p.ForTest] = true
		}
	}

	var result Result
	result.Module = ld.module
	result.Fset = ld.fset
	for _, p := range listed {
		if !ld.inModule(p) || isTestMain(p) {
			continue
		}
		pkg, err := ld.check(p.ImportPath)
		if err != nil {
			return nil, err
		}
		pkg.Analyze = !p.DepOnly &&
			!(p.ForTest == "" && hasVariant[p.ImportPath]) && // variant supersedes
			!(p.ForTest != "" && p.ForTest != basePath(p.ImportPath)) // "q [p.test]" rebuild: q's own run covers it
		result.Packages = append(result.Packages, pkg)
	}
	return &result, nil
}

type loader struct {
	fset    *token.FileSet
	module  string
	byPath  map[string]*listPkg
	checked map[string]*Package
	exports map[string]string
	gc      types.Importer
}

func (ld *loader) inModule(p *listPkg) bool {
	return !p.Standard && p.Module != nil && p.Module.Path == ld.module
}

// isTestMain reports the generated "p.test" main package, whose only
// file lives in the build cache; it is never analyzed or imported.
func isTestMain(p *listPkg) bool {
	return p.Name == "main" && strings.HasSuffix(p.ImportPath, ".test") && p.ForTest == ""
}

func basePath(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// check type-checks the in-module package identified by its full
// `go list` ImportPath (variant suffix included), memoized.
func (ld *loader) check(importPath string) (*Package, error) {
	if pkg, ok := ld.checked[importPath]; ok {
		return pkg, nil
	}
	p, ok := ld.byPath[importPath]
	if !ok {
		return nil, fmt.Errorf("package %q not in go list output", importPath)
	}
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(ld.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var firstErr error
	conf := types.Config{
		Importer: &pkgImporter{ld: ld, from: p},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(basePath(p.ImportPath), ld.fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	pkg := &Package{
		ImportPath: p.ImportPath,
		BasePath:   basePath(p.ImportPath),
		Dir:        p.Dir,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
	}
	ld.checked[importPath] = pkg
	return pkg, nil
}

// pkgImporter resolves one package's imports: through its ImportMap
// (which routes test-variant builds to their rebuilt dependencies),
// then to source-checked module packages or gc export data.
type pkgImporter struct {
	ld   *loader
	from *listPkg
}

func (pi *pkgImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	resolved := path
	if mapped, ok := pi.from.ImportMap[path]; ok {
		resolved = mapped
	}
	if p, ok := pi.ld.byPath[resolved]; ok && pi.ld.inModule(p) {
		pkg, err := pi.ld.check(resolved)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return pi.ld.gc.Import(resolved)
}
