// Package typederrtest is the golden fixture for the typederr analyzer:
// a package opted in to the typed-error contract via the marker below.
//
//salsa:typederrors
package typederrtest

import (
	"errors"
	"fmt"
)

// ErrClosed is the package sentinel callers dispatch on.
var ErrClosed = errors.New("typederrtest: closed")

// LimitError is the package's typed error.
type LimitError struct{ Limit int }

func (e *LimitError) Error() string { return fmt.Sprintf("typederrtest: over limit %d", e.Limit) }

// Bare is the canonical violation: an exported function returning an
// unwrappable fmt.Errorf string.
func Bare(n int) error {
	if n < 0 {
		return fmt.Errorf("typederrtest: negative count %d", n) // want `Bare returns a bare fmt.Errorf string; wrap a sentinel with %w or return one of the package's typed errors`
	}
	return nil
}

// Inline is the second violation leg: an inline errors.New that no
// caller can errors.Is against.
func Inline() error {
	return errors.New("typederrtest: ad-hoc failure") // want `Inline returns an inline errors.New; declare a package sentinel or typed error so callers can errors.Is it`
}

// Wrapped passes: the %w verb keeps the sentinel reachable.
func Wrapped(n int) error {
	return fmt.Errorf("typederrtest: count %d: %w", n, ErrClosed)
}

// Typed passes: a typed error is exactly what the contract wants.
func Typed(n int) error {
	if n > 10 {
		return &LimitError{Limit: 10}
	}
	return ErrClosed
}

// bare is unexported, so its returns are not part of the package API.
func bare() error {
	return fmt.Errorf("typederrtest: internal scratch error")
}

// Pool is an exported receiver type, so its exported methods are API.
type Pool struct{ closed bool }

// Get is an exported method on an exported type: in scope.
func (p *Pool) Get() error {
	if p.closed {
		return fmt.Errorf("typederrtest: pool is closed") // want `Get returns a bare fmt.Errorf string`
	}
	return nil
}

// pool is unexported, so even exported methods on it are out of scope.
type pool struct{}

func (pool) Get() error {
	return errors.New("typederrtest: hidden pool failure")
}

// Callback proves function literals are skipped: a callback's return
// values are not the enclosing function's API.
func Callback() func() error {
	return func() error {
		return fmt.Errorf("typederrtest: callback failure")
	}
}

// Suppressed shows the escape hatch with its mandatory justification.
func Suppressed() error {
	//salsa:ignore typederr transitional message pinned by a wire-compat test
	return fmt.Errorf("typederrtest: legacy wire string")
}
