// Package dettest is the golden fixture for the detharness analyzer: a
// package opted in with the //salsa:deterministic marker below.
//
//salsa:deterministic
package dettest

import (
	"math/rand"
	"sort"
	"time"
)

// Clock pins the wall-clock bans.
func Clock() time.Duration {
	start := time.Now()      // want `time.Now in a deterministic harness: schedules must be a pure function of the logged seed`
	_ = time.Until(start)    // want `time.Until in a deterministic harness`
	return time.Since(start) // want `time.Since in a deterministic harness`
}

// Draw pins the global-randomness bans; a seeded *rand.Rand is the
// sanctioned alternative.
func Draw(seed int64) uint64 {
	_ = rand.Int()                        // want `global math/rand.Int in a deterministic harness: draw from a \*rand.Rand seeded by the schedule`
	_ = rand.Uint64()                     // want `global math/rand.Uint64 in a deterministic harness`
	rng := rand.New(rand.NewSource(seed)) // rand.New* constructors are fine
	return rng.Uint64()
}

// Iterate pins the map-iteration rule: ranges feeding assertions are
// banned, collect-only ranges are the sanctioned way out.
func Iterate(counts map[uint64]int64, fail func(string)) []uint64 {
	for item := range counts { // want `map iteration in a deterministic harness: order varies per run`
		if counts[item] < 0 {
			fail("negative")
		}
	}
	items := make([]uint64, 0, len(counts))
	for item := range counts { // collect-only body: exempt
		items = append(items, item)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	return items
}

// Suppressed: a justified escape for intentionally time-based teardown.
func Suppressed() time.Time {
	//salsa:ignore detharness teardown timestamp is logged, never asserted on
	return time.Now()
}
