// Package envtagtest is the golden fixture for the envelopetag analyzer:
// a miniature universal-envelope codec with one healthy tag and one
// broken tag per failure leg.
package envtagtest

import "errors"

const (
	tagGood    byte = 1 // marshaled, decoded, seeded: healthy
	tagNoWrite byte = 2 // want `tag constant tagNoWrite is missing from an envHeader\(...\) marshal call`
	tagNoRead  byte = 3 // want `tag constant tagNoRead is missing from the Unmarshal tag switch`
	tagNoSeed  byte = 4 // want `tag constant tagNoSeed is missing from the envelopeTagSeeds fuzz-coverage map`
	// A duplicated value cannot be seeded either (the map key would collide),
	// so the duplicate line carries all three findings.
	tagZDup byte = 1 // want `tag constant tagZDup duplicates the value 1 of tagGood` `tag constant tagZDup is missing from the Unmarshal tag switch` `tag constant tagZDup is missing from the envelopeTagSeeds fuzz-coverage map`
)

// envelopeTagSeeds is the fuzz-coverage ledger the analyzer checks.
var envelopeTagSeeds = map[byte]string{
	tagGood:    "good",
	tagNoWrite: "no-write",
	tagNoRead:  "no-read",
}

func envHeader(tag byte) []byte { return []byte{'s', tag} }

func marshalGood() []byte   { return envHeader(tagGood) }
func marshalNoRead() []byte { return envHeader(tagNoRead) }
func marshalNoSeed() []byte { return envHeader(tagNoSeed) }
func marshalDup() []byte    { return envHeader(tagZDup) }

func payload(data []byte) byte {
	return data[1]
}

// Unmarshal dispatches on the envelope tag; raw literal cases are banned
// so a tag byte cannot be claimed without declaring its constant.
func Unmarshal(data []byte) (byte, error) {
	switch payload(data) {
	case tagGood:
		return tagGood, nil
	case tagNoWrite:
		return tagNoWrite, nil
	case tagNoSeed:
		return tagNoSeed, nil
	case 9: // want `raw literal case in the Unmarshal tag switch; declare a tag constant for it`
		return 9, nil
	}
	return 0, errors.New("envtagtest: unknown tag")
}

// unmarshalHelper proves helper-switch coverage: tag dispatch inside
// unmarshal* helpers counts as the decode leg too.
func unmarshalHelper(tag byte) bool {
	switch tag {
	case tagGood:
		return true
	}
	return false
}
