// Package nolocktest is the golden fixture for the nolock analyzer: the
// seqlock-only discipline of the epoch writer ingest path.
package nolocktest

import (
	"sync"
	"sync/atomic"
)

// Writer mirrors the shape of an epoch writer: an owned sequence word,
// a guarded buffer, and the channels it must never touch while marked.
type Writer struct {
	mu  sync.Mutex
	seq atomic.Uint64
	n   uint64
	ch  chan uint64
}

//salsa:nolock
func (w *Writer) Bad(items []uint64) {
	w.mu.Lock()                  // want `sync.Mutex method Lock in nolock function Bad`
	w.mu.Unlock()                // want `sync.Mutex method Unlock in nolock function Bad`
	w.seq.Add(1)                 // want `atomic read-modify-write Add in nolock function Bad \(the seqlock protocol permits only Load and Store\)`
	w.seq.CompareAndSwap(0, 1)   // want `atomic read-modify-write CompareAndSwap in nolock function Bad`
	atomic.AddUint64(&w.n, 1)    // want `atomic read-modify-write AddUint64 in nolock function Bad`
	atomic.SwapUint64(&w.n, 2)   // want `atomic read-modify-write SwapUint64 in nolock function Bad`
	w.ch <- items[0]             // want `channel send in nolock function Bad`
	<-w.ch                       // want `channel receive in nolock function Bad`
	close(w.ch)                  // want `channel close in nolock function Bad`
	go func() {}()               // want `goroutine launch in nolock function Bad`
	_ = sync.OnceFunc(func() {}) // want `sync.OnceFunc in nolock function Bad`
	w.drain()                    // want `nolock function Bad calls nolocktest.drain, which is not marked //salsa:nolock`
	select {                     // want `select in nolock function Bad`
	default:
	}
}

func (w *Writer) drain() {}

// Good is the seqlock writer protocol itself: plain atomic loads and
// stores of writer-owned words, plus calls into equally marked helpers.
//
//salsa:nolock
func (w *Writer) Good(items []uint64) {
	s := w.seq.Load()
	w.seq.Store(s + 1)
	atomic.StoreUint64(&w.n, atomic.LoadUint64(&w.n)+uint64(len(items)))
	w.apply(items)
	w.seq.Store(s + 2)
}

//salsa:nolock
func (w *Writer) apply(items []uint64) {
	for _, x := range items {
		w.n += x
	}
}

// Suppressed: the Close-side teardown may take the writer mutex when a
// reviewer signs off on it.
//
//salsa:nolock
func (w *Writer) Suppressed() {
	w.mu.Lock() //salsa:ignore nolock teardown path, runs after the last ingest by contract
	w.mu.Unlock()
}
