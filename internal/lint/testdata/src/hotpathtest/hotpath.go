// Package hotpathtest is the golden fixture for the hotpath analyzer:
// every banned construct flagged once, every allowed idiom unflagged.
package hotpathtest

import (
	"fmt"
	"sort"
)

// Ring is scratch storage whose methods exercise receiver-owned appends.
type Ring struct {
	buf  []uint64
	m    map[uint64]int
	ch   chan int
	next func()
}

//salsa:hotpath
func (r *Ring) Bad(items []uint64, out []uint64) {
	defer func() {}() // want `defer in hotpath function Bad`
	go func() {}()    // want `goroutine launch in hotpath function Bad`
	r.ch <- 1         // want `channel send in hotpath function Bad`
	<-r.ch            // want `channel receive in hotpath function Bad`
	_ = r.m[items[0]] // want `map access in hotpath function Bad`
	for range r.m {   // want `map iteration in hotpath function Bad`
	}
	out = append(out, 1)      // want `append to non-receiver slice in hotpath function Bad`
	r.buf = make([]uint64, 8) // want `make in hotpath function Bad`
	fmt.Println(len(items))   // want `fmt.Println in hotpath function Bad`
	sort.Slice(items, nil)    // want `sort.Slice in hotpath function Bad`
	r.reset()                 // want `hotpath function Bad calls hotpathtest.reset, which is not marked //salsa:hotpath`
	n := len(items)
	r.next = func() { n++ } // want `closure captures "n" in hotpath function Bad`
}

func (r *Ring) reset() { r.buf = r.buf[:0] }

// Good shows the allowed idioms: receiver-owned appends, calls into
// marked functions (including methods and generic instantiations), and
// allocation on the panic path.
//
//salsa:hotpath
func (r *Ring) Good(items []uint64) uint64 {
	r.buf = append(r.buf, items...) // receiver-owned scratch may append
	var acc uint64
	for _, x := range items { // slice range is fine
		acc += mix(x)
		acc += clampGeneric(x, 9)
		acc += r.probe(x)
	}
	if acc == 0 {
		panic(fmt.Sprintf("impossible accumulator for %d items", len(items)))
	}
	return acc
}

//salsa:hotpath
func mix(x uint64) uint64 { return x * 0x9e3779b97f4a7c15 }

// clampGeneric proves markers survive generic instantiation: the callee
// key resolves through types.Func.Origin.
//
//salsa:hotpath
func clampGeneric[T ~uint64](x, hi T) T {
	if x > hi {
		return hi
	}
	return x
}

//salsa:hotpath
func (r *Ring) probe(x uint64) uint64 { return x & 63 }

// Boxer pins the implicit-boxing and interface-conversion findings.
//
//salsa:hotpath
func Boxer(x uint64) {
	sink(x)            // want `argument boxes uint64 into interface{} in hotpath function Boxer`
	_ = interface{}(x) // want `conversion to interface type interface{} in hotpath function Boxer \(boxes the operand\)`
	var a any
	sink(a) // passing an interface on is not a fresh boxing
}

//salsa:hotpath
func sink(v interface{}) { _ = v }

// Suppressed shows the escape hatch: a justified //salsa:ignore on the
// offending line (or the line above) silences exactly that analyzer.
//
//salsa:hotpath
func Suppressed() []uint64 {
	//salsa:ignore hotpath one-time setup buffer, measured alloc-free afterwards
	buf := make([]uint64, 8)
	return buf
}

// Unmarked functions are outside the discipline entirely.
func Unmarked() []uint64 {
	return make([]uint64, 8)
}
