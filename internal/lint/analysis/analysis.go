// Package analysis is a minimal, dependency-free skeleton of the
// golang.org/x/tools/go/analysis API: an Analyzer is a named check, a
// Pass hands it one type-checked package, and Report emits diagnostics.
//
// The repo cannot vendor x/tools (the build environment is offline and
// go.mod is dependency-free by policy), so salsalint carries this
// API-compatible subset instead. The field and method names mirror the
// upstream package deliberately: if x/tools ever becomes available,
// migrating the analyzers is a matter of swapping the import path and
// deleting this package, not rewriting the checks.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //salsa:ignore directives. Conventionally a short lowercase word.
	Name string

	// Doc is the help text: first line is a one-sentence summary.
	Doc string

	// Run applies the analyzer to one package. It reports findings via
	// pass.Report / pass.Reportf and returns an error only for internal
	// failures (a returned error aborts the whole run, it is not a
	// finding).
	Run func(*Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one type-checked package to an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // the package's syntax, test variant included
	Pkg       *types.Package
	TypesInfo *types.Info

	// Module is the module path of the tree under analysis ("salsa" for
	// this repo). Packages whose import path is inside Module are held
	// to the marker call-graph discipline; everything else is treated
	// as foreign (stdlib) and only matched against explicit deny-lists.
	Module string

	// Markers holds the repo-wide //salsa:<marker> annotations for
	// every function in the module, keyed by FuncKey. It spans the
	// whole load, not just this package, so analyzers can check
	// cross-package call-graph discipline (a //salsa:hotpath function
	// may only call //salsa:hotpath functions).
	Markers MarkerSet

	// Report emits one diagnostic.
	Report func(Diagnostic)
}

// Reportf emits a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// MarkerSet maps FuncKey → the set of //salsa: markers on that
// function's doc comment.
type MarkerSet map[string]map[string]bool

// Has reports whether the function identified by key carries marker.
func (m MarkerSet) Has(key, marker string) bool { return m[key][marker] }

// FuncKey returns the marker-set key for a resolved function object:
// "pkgpath.Name" for package-level functions, "pkgpath.Recv.Name" for
// methods (pointer receivers and generic instantiations collapse onto
// the origin's named receiver type). It returns "" for objects the
// marker discipline cannot name: builtins, interface methods, and
// function-typed variables.
func FuncKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	fn = fn.Origin()
	key := fn.Pkg().Path()
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || types.IsInterface(named) {
			return "" // interface method: dynamic dispatch, unresolvable
		}
		key += "." + named.Obj().Name()
	}
	return key + "." + fn.Name()
}

// DeclKey returns the marker-set key for a function declaration in
// package pkgPath, the syntactic dual of FuncKey: it strips pointer
// and type-parameter decoration from the receiver type so that
// `func (s *Ring[T]) Push` keys as "pkgpath.Ring.Push".
func DeclKey(pkgPath string, decl *ast.FuncDecl) string {
	key := pkgPath
	if decl.Recv != nil && len(decl.Recv.List) > 0 {
		name := receiverTypeName(decl.Recv.List[0].Type)
		if name == "" {
			return ""
		}
		key += "." + name
	}
	return key + "." + decl.Name.Name
}

func receiverTypeName(expr ast.Expr) string {
	for {
		switch t := expr.(type) {
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr: // Ring[T]
			expr = t.X
		case *ast.IndexListExpr: // Ring[K, V]
			expr = t.X
		case *ast.ParenExpr:
			expr = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// Callee resolves the *types.Func a call expression statically targets,
// or nil when the target is dynamic (function values, interface
// methods) or a builtin/conversion.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // explicit instantiation: f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	case *ast.IndexListExpr:
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	}
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
