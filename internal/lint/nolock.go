package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"salsa/internal/lint/analysis"
)

// NoLock proves the lock-free claim of the epoch writer ingest path at
// compile time.
//
// The PR 7 design note promises "zero ingest-path locks, zero
// compare-and-swap": writers coordinate with the merger through a
// seqlock whose writer side is plain atomic loads and stores of
// writer-owned words. This analyzer rejects, inside //salsa:nolock
// functions, everything stronger than that: methods on sync types
// (Mutex, RWMutex, Once, WaitGroup, Map, Cond, Pool), atomic
// read-modify-write operations (Add*, CompareAndSwap*, Swap*, And, Or —
// on both the sync/atomic package functions and its typed wrappers),
// channel sends/receives/selects, and goroutine launches. Plain atomic
// Load and Store remain allowed: they are the seqlock.
//
// Call-graph discipline mirrors hotpath: within this module a nolock
// function may only call nolock functions, so annotating
// EpochWriter.UpdateBatch transitively pins enter/exit/flush. Dynamic
// calls (the private sketch's type-parameter methods) are not
// statically resolvable; the race-hammer CI job covers those.
var NoLock = &analysis.Analyzer{
	Name: "nolock",
	Doc:  "//salsa:nolock functions must not reach mutexes, atomic RMW ops, or channels",
	Run:  runNoLock,
}

// atomicRMW matches the sync/atomic operations that issue a
// read-modify-write (LOCK-prefixed on amd64) — the cache-line
// contention the epoch design exists to avoid.
func atomicRMW(name string) bool {
	for _, prefix := range []string{"CompareAndSwap", "Swap", "Add", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func runNoLock(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := analysis.DeclKey(pass.Pkg.Path(), fd)
			if !pass.Markers.Has(key, "nolock") {
				continue
			}
			checkNoLock(pass, fd)
		}
	}
	return nil
}

func checkNoLock(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "goroutine launch in nolock function %s", name)
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send in nolock function %s", name)
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "select in nolock function %s", name)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "channel receive in nolock function %s", name)
			}
		case *ast.CallExpr:
			checkNoLockCall(pass, fd, n)
		}
		return true
	})
}

func checkNoLockCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	name := fd.Name.Name
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			if b.Name() == "close" {
				pass.Reportf(call.Pos(), "channel close in nolock function %s", name)
			}
			return
		}
	}
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return // dynamic dispatch: covered by the race hammers, not statically
	}
	path, callee := fn.Pkg().Path(), fn.Name()
	recv := fn.Origin().Type().(*types.Signature).Recv()
	switch {
	case path == "sync" && recv != nil:
		pass.Reportf(call.Pos(), "sync.%s method %s in nolock function %s", receiverBase(recv), callee, name)
		return
	case path == "sync" && callee == "OnceFunc", path == "sync" && callee == "OnceValue", path == "sync" && callee == "OnceValues":
		pass.Reportf(call.Pos(), "sync.%s in nolock function %s", callee, name)
		return
	case path == "sync/atomic" && atomicRMW(callee):
		pass.Reportf(call.Pos(), "atomic read-modify-write %s in nolock function %s (the seqlock protocol permits only Load and Store)", callee, name)
		return
	}
	if path == pass.Module || strings.HasPrefix(path, pass.Module+"/") {
		if key := analysis.FuncKey(fn); key != "" && !pass.Markers.Has(key, "nolock") {
			pass.Reportf(call.Pos(), "nolock function %s calls %s.%s, which is not marked //salsa:nolock", name, path, callee)
		}
	}
}

func receiverBase(recv *types.Var) string {
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
