package salsad

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"salsa"
)

// Transport carries frames from an agent to an aggregator. HTTPTransport
// is the production implementation; internal/faulttest substitutes a
// seeded in-process transport that injects faults deterministically.
type Transport interface {
	// Push delivers one frame and returns the aggregator's ack. A non-nil
	// error means delivery is unknown (dropped, timed out, unreachable) —
	// the frame may or may not have been applied, and the agent will
	// retry it byte-identically.
	Push(ctx context.Context, p *Push) (*Ack, error)
	// Resume fetches the aggregator's durable frontier for an agent id.
	Resume(ctx context.Context, agent string) (*ResumeInfo, error)
}

// AgentConfig configures an Agent.
type AgentConfig struct {
	// ID identifies this agent to the aggregator; contributions and
	// idempotency state are tracked per id. Required, ≤ MaxAgentIDLen.
	ID string
	// Spec is the local ingest topology: a delta-capable core (sum-merge
	// CountMin/ConservativeOf, or CountSketch), optionally wrapped in
	// EpochShardedBy for lock-free multi-goroutine ingest. Required.
	Spec salsa.Spec
	// Transport delivers frames. Required.
	Transport Transport
	// Generation is this incarnation's generation number; it must exceed
	// every generation a prior incarnation of the same id used. Zero
	// means 1 (a first launch).
	Generation uint64
	// StartCursor is the upstream position ingest resumes from (the
	// cursor a restarting agent got from Resume). Zero for a first launch.
	StartCursor uint64
	// MaxAttempts bounds the delivery attempts of one PushOnce call;
	// zero means 4.
	MaxAttempts int
	// BackoffBase and BackoffCap shape the exponential retry backoff:
	// attempt n sleeps jittered min(BackoffCap, BackoffBase·2ⁿ). Zero
	// means 50ms / 2s.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// JitterSeed seeds the backoff jitter source. Zero (the default)
	// draws a crypto-random seed, so a fleet of agents restarted together
	// spreads its retries instead of thundering in lockstep. A non-zero
	// seed makes the backoff schedule an exact pure function of the seed —
	// the deterministic fault harness passes explicit seeds so replays
	// reproduce backoff timing bit-for-bit.
	JitterSeed uint64
	// Sleep is called between retries; nil means time.Sleep. Injectable
	// so the fault harness runs on virtual time.
	Sleep func(time.Duration)
	// Replay, when non-nil, re-ingests the upstream source from the given
	// cursor (calling Agent.Ingest for each item). The agent invokes it
	// during a resync when its live sketch does not cover the full
	// history (StartCursor > 0), rebuilding complete state from a
	// replayable upstream. When nil, resync ships whatever the live
	// sketch holds (documented best effort).
	Replay func(fromCursor uint64)
	// Candidates, when non-nil, supplies local heavy-hitter candidate
	// items to attach to data frames (at most MaxPushCandidates are
	// sent).
	Candidates func() []uint64
}

// ErrPushFailed wraps the last transport error after MaxAttempts
// deliveries all failed. The frame stays frozen and is retried — still
// byte-identical — by the next PushOnce.
var ErrPushFailed = errors.New("salsad: push not acknowledged")

// Agent ingests a local stream and ships delta envelopes to an
// aggregator. It is not safe for concurrent use; run one goroutine per
// Agent (the sketch underneath may still be an EpochShardedBy topology
// whose writers the caller drives separately — PushOnce cuts an epoch
// before snapshotting).
type Agent struct {
	cfg  AgentConfig
	live salsa.Sketch
	// ingest/cut/core/pending abstract over the plain and epoch-wrapped
	// backends.
	ingest  func(item uint64, count int64)
	cut     func()
	core    func() salsa.Sketch
	pending func() uint64

	// shadow is the last acknowledged snapshot: everything the aggregator
	// has confirmed. The next delta is live − shadow.
	shadow  salsa.Sketch
	shadowN uint64 // items covered by shadow

	// frame is the frozen in-flight push: once transmitted it is never
	// rewritten, so retries are byte-identical and sequence-number dedup
	// is exact. frameState/frameN are the snapshot the shadow advances to
	// when the frame is acked.
	frame      *Push
	frameState salsa.Sketch
	frameN     uint64

	gen      uint64
	seq      uint64
	ingestN  uint64 // items ingested this incarnation's lifetime
	frontier uint64 // upstream cursor: StartCursor + items ingested
	fedFrom  uint64 // upstream cursor live history starts at

	rng   *rand.Rand
	sleep func(time.Duration)
	stats AgentStats
}

// AgentStats counts delivery outcomes since construction.
type AgentStats struct {
	// FramesAcked counts data frames acknowledged (applied or duplicate).
	FramesAcked uint64 `json:"framesAcked"`
	// Heartbeats counts acknowledged heartbeat frames.
	Heartbeats uint64 `json:"heartbeats"`
	// Attempts counts transport deliveries, including retries.
	Attempts uint64 `json:"attempts"`
	// Retries counts attempts beyond the first per frame — each one sat
	// behind a jittered backoff sleep.
	Retries uint64 `json:"retries"`
	// Resyncs counts full-state resynchronizations performed.
	Resyncs uint64 `json:"resyncs"`
	// WireBytes sums the encoded size of every attempted frame.
	WireBytes uint64 `json:"wireBytes"`
	// Pending is the epoch ingest layer's bounded-staleness gauge: items
	// accepted by writers but not yet drained into the read view. Always
	// 0 for plain (non-epoch) topologies.
	Pending uint64 `json:"pending"`
}

// NewAgent builds an agent. The spec is built and validated here: a
// topology that cannot ship exact deltas (no subtract kernel, max-merge,
// windows, shards, trackers) is rejected with a *salsa.DeltaError.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.ID == "" || len(cfg.ID) > MaxAgentIDLen {
		return nil, &ConfigError{Field: "ID", Reason: fmt.Sprintf("agent id %q must be 1..%d bytes", cfg.ID, MaxAgentIDLen)}
	}
	if cfg.Spec == nil || cfg.Transport == nil {
		return nil, &ConfigError{Field: "Spec", Reason: "agent needs a Spec and a Transport"}
	}
	if cfg.Generation == 0 {
		cfg.Generation = 1
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 2 * time.Second
	}
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = cryptoSeed()
	}
	a := &Agent{
		cfg:      cfg,
		gen:      cfg.Generation,
		frontier: cfg.StartCursor,
		fedFrom:  cfg.StartCursor,
		rng:      rand.New(rand.NewSource(int64(seed))),
		sleep:    cfg.Sleep,
	}
	if a.sleep == nil {
		a.sleep = time.Sleep
	}
	if err := a.buildLive(); err != nil {
		return nil, err
	}
	return a, nil
}

// buildLive realizes the spec and wires the ingest/cut/core hooks for its
// concrete type. Also called to rebuild from scratch during a replaying
// resync.
func (a *Agent) buildLive() error {
	built, err := salsa.Build(a.cfg.Spec)
	if err != nil {
		return err
	}
	if err := salsa.DeltaCapable(built); err != nil {
		return err
	}
	a.live = built
	switch s := built.(type) {
	case *salsa.EpochCountMin:
		w := s.NewWriter(0)
		a.ingest = w.Update
		a.cut = func() { w.Flush(); s.Advance() }
		a.core = func() salsa.Sketch { return s.View() }
		a.pending = s.Pending
	case *salsa.EpochCountSketch:
		w := s.NewWriter(0)
		a.ingest = w.Update
		a.cut = func() { w.Flush(); s.Advance() }
		a.core = func() salsa.Sketch { return s.View() }
		a.pending = s.Pending
	case *salsa.CountMin:
		a.ingest = s.Update
		a.cut = func() {}
		a.core = func() salsa.Sketch { return s }
		a.pending = func() uint64 { return 0 }
	case *salsa.CountSketch:
		a.ingest = s.Update
		a.cut = func() {}
		a.core = func() salsa.Sketch { return s }
		a.pending = func() uint64 { return 0 }
	default:
		// DeltaCapable already screened these; kept for defense.
		return fmt.Errorf("salsad: unsupported agent topology %T", built)
	}
	return nil
}

// Ingest adds one occurrence of item and advances the upstream cursor.
func (a *Agent) Ingest(item uint64) {
	a.ingest(item, 1)
	a.ingestN++
	a.frontier++
}

// IngestCount adds count occurrences of item as one upstream record.
func (a *Agent) IngestCount(item uint64, count int64) {
	a.ingest(item, count)
	a.ingestN++
	a.frontier++
}

// Sketch exposes the live local sketch (e.g. for local queries). Do not
// mutate it directly; use Ingest.
func (a *Agent) Sketch() salsa.Sketch { return a.live }

// Gen returns the current generation.
func (a *Agent) Gen() uint64 { return a.gen }

// Frontier returns the upstream cursor: StartCursor plus items ingested.
func (a *Agent) Frontier() uint64 { return a.frontier }

// Stats returns delivery counters since construction, plus the live
// Pending gauge sampled at call time.
func (a *Agent) Stats() AgentStats {
	s := a.stats
	s.Pending = a.pending()
	return s
}

// Synced reports whether everything ingested so far has been acknowledged
// by the aggregator: no frozen frame in flight and no unshipped traffic.
func (a *Agent) Synced() bool {
	return a.frame == nil && a.ingestN == a.shadowN
}

// PushOnce ships the agent's state forward by (at most) one frame: it
// cuts a delta of everything ingested since the last acknowledged
// snapshot (or retries the frozen in-flight frame byte-identically),
// delivers it with exponential backoff and jitter under ctx's deadline,
// and follows a resync demand with a full-state snapshot. With nothing to
// ship it sends a heartbeat to renew the lease.
//
// On failure the frame stays frozen — the next PushOnce retries it — and
// the error wraps ErrPushFailed. State buffered through an outage is one
// frame plus the live sketch: O(sketch), never O(outage).
func (a *Agent) PushOnce(ctx context.Context) error {
	if a.frame == nil {
		if err := a.cutFrame(); err != nil {
			return err
		}
	}
	var lastErr error
	for attempt := 0; attempt < a.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			a.stats.Retries++
			a.sleep(a.backoff(attempt - 1))
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w: %w", ErrPushFailed, err)
		}
		a.stats.Attempts++
		if enc, err := a.frame.Encode(); err == nil {
			a.stats.WireBytes += uint64(len(enc))
		}
		ack, err := a.cfg.Transport.Push(ctx, a.frame)
		if err != nil {
			lastErr = err
			continue
		}
		switch ack.Status {
		case StatusApplied, StatusDuplicate:
			a.commitFrame()
			return nil
		case StatusResync:
			if err := a.prepareResync(ack); err != nil {
				return err
			}
			lastErr = errors.New("resynchronizing")
			continue // deliver the freshly cut full frame
		default:
			lastErr = fmt.Errorf("unknown ack status %q", ack.Status)
		}
	}
	return fmt.Errorf("%w: %s gen %d seq %d: %w",
		ErrPushFailed, a.cfg.ID, a.frame.Gen, a.frame.Seq, lastErr)
}

// backoff returns the jittered exponential delay before retry n (0-based):
// uniformly in [d/2, d) for d = min(cap, base·2ⁿ).
func (a *Agent) backoff(n int) time.Duration {
	d := a.cfg.BackoffBase << uint(n)
	if d <= 0 || d > a.cfg.BackoffCap {
		d = a.cfg.BackoffCap
	}
	half := d / 2
	return half + time.Duration(a.rng.Int63n(int64(half)+1))
}

// cutFrame freezes the next frame: a delta of everything since the
// acknowledged shadow, or a heartbeat when nothing changed.
func (a *Agent) cutFrame() error {
	a.cut()
	if a.ingestN == a.shadowN {
		a.frame = &Push{
			Agent:  a.cfg.ID,
			Gen:    a.gen,
			Seq:    a.seq,
			Cursor: a.frontier,
			Flags:  FlagHeartbeat,
		}
		a.frameState, a.frameN = nil, a.shadowN
		return nil
	}
	cur, delta, err := a.snapshotPair()
	if err != nil {
		return err
	}
	if a.shadow != nil {
		if err := salsa.SubtractInto(delta, a.shadow); err != nil {
			return err
		}
	}
	env, err := salsa.Marshal(delta)
	if err != nil {
		return err
	}
	a.frame = &Push{
		Agent:      a.cfg.ID,
		Gen:        a.gen,
		Seq:        a.seq + 1,
		Cursor:     a.frontier,
		Candidates: a.candidates(),
		Envelope:   env,
	}
	a.frameState, a.frameN = cur, a.ingestN
	return nil
}

// snapshotPair marshals the live core once and decodes it twice: a
// snapshot to advance the shadow to, and a scratch copy the delta is
// computed in.
func (a *Agent) snapshotPair() (cur, scratch salsa.Sketch, err error) {
	core := a.core()
	blob, err := salsa.Marshal(core)
	if err != nil {
		return nil, nil, err
	}
	if cur, err = salsa.Unmarshal(blob); err != nil {
		return nil, nil, err
	}
	if scratch, err = salsa.Unmarshal(blob); err != nil {
		return nil, nil, err
	}
	return cur, scratch, nil
}

func (a *Agent) candidates() []uint64 {
	if a.cfg.Candidates == nil {
		return nil
	}
	c := a.cfg.Candidates()
	if len(c) > MaxPushCandidates {
		c = c[:MaxPushCandidates]
	}
	return c
}

// commitFrame advances past an acknowledged frame.
func (a *Agent) commitFrame() {
	if a.frame.Heartbeat() {
		a.stats.Heartbeats++
	} else {
		a.seq = a.frame.Seq
		a.shadow = a.frameState
		a.shadowN = a.frameN
		a.stats.FramesAcked++
	}
	a.frame, a.frameState = nil, nil
}

// prepareResync reacts to a StatusResync ack: the aggregator has no
// usable state for this agent (it restarted, or this generation is
// burned). The agent moves to a fresh generation and cuts a full-state
// snapshot that replaces everything the aggregator may still hold. If the
// live sketch does not cover the full history (this incarnation resumed
// mid-stream) and a Replay hook is configured, the history is rebuilt
// from the replayable upstream first.
func (a *Agent) prepareResync(ack *Ack) error {
	a.stats.Resyncs++
	if ack.Gen > a.gen {
		a.gen = ack.Gen
	}
	a.gen++
	a.seq = 0
	a.frame, a.frameState = nil, nil
	a.shadow, a.shadowN = nil, 0
	if a.fedFrom > 0 && a.cfg.Replay != nil {
		// Rebuild complete history: fresh sketch, replay from origin.
		if err := a.buildLive(); err != nil {
			return err
		}
		a.ingestN, a.frontier, a.fedFrom = 0, 0, 0
		a.cfg.Replay(0)
	}
	a.cut()
	cur, _, err := a.snapshotPair()
	if err != nil {
		return err
	}
	env, err := salsa.Marshal(cur)
	if err != nil {
		return err
	}
	a.frame = &Push{
		Agent:      a.cfg.ID,
		Gen:        a.gen,
		Seq:        1,
		Cursor:     a.frontier,
		Flags:      FlagFull,
		Candidates: a.candidates(),
		Envelope:   env,
	}
	a.frameState, a.frameN = cur, a.ingestN
	return nil
}

// cryptoSeed draws a random jitter seed from the OS entropy source. If
// that fails (it essentially cannot on supported platforms) it falls back
// to a fixed odd constant — jitter degrades, correctness does not depend
// on it.
func cryptoSeed() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return 0x9e3779b97f4a7c15
	}
	return binary.LittleEndian.Uint64(b[:])
}

// Resume fetches the aggregator's durable frontier for an agent id and
// derives the config a restarted incarnation should run with: the next
// free generation and the upstream cursor to re-ingest from.
func Resume(ctx context.Context, t Transport, id string) (gen, cursor uint64, err error) {
	info, err := t.Resume(ctx, id)
	if err != nil {
		return 0, 0, err
	}
	return info.Gen + 1, info.Cursor, nil
}
