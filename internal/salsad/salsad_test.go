package salsad

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"salsa"
)

func testSpec() salsa.Spec {
	return salsa.CountMinOf(salsa.Options{Width: 1 << 8, Merge: salsa.MergeSum, Seed: 11})
}

func newTestAggregator(t *testing.T, cfg AggregatorConfig) *Aggregator {
	t.Helper()
	if cfg.Spec == nil {
		cfg.Spec = testSpec()
	}
	a, err := NewAggregator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func marshalState(t *testing.T, s salsa.Sketch) []byte {
	t.Helper()
	blob, err := salsa.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// envelopeFor builds a marshaled test-spec sketch holding the given items.
func envelopeFor(t *testing.T, items ...uint64) []byte {
	t.Helper()
	s := salsa.MustBuild(testSpec())
	for _, it := range items {
		s.Update(it, 1)
	}
	return marshalState(t, s)
}

// --- wire format ---

func TestPushEncodeDecodeRoundTrip(t *testing.T) {
	p := &Push{
		Agent:      "edge-7",
		Gen:        3,
		Seq:        41,
		Cursor:     123456,
		Candidates: []uint64{9, 5, 9000000000},
		Envelope:   envelopeFor(t, 1, 2, 3, 3, 3),
	}
	enc, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("Encode is not deterministic; retries would not be byte-identical")
	}
	got, err := DecodePush(enc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Agent != p.Agent || got.Gen != p.Gen || got.Seq != p.Seq || got.Cursor != p.Cursor {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Candidates) != 3 || got.Candidates[2] != 9000000000 {
		t.Fatalf("candidates mismatch: %v", got.Candidates)
	}
	if !bytes.Equal(got.Envelope, p.Envelope) {
		t.Fatal("envelope did not round-trip")
	}
}

func TestPushHeartbeatRoundTrip(t *testing.T) {
	p := &Push{Agent: "hb", Gen: 1, Seq: 7, Cursor: 99, Flags: FlagHeartbeat}
	enc, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePush(enc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Heartbeat() || got.Envelope != nil || got.Seq != 7 {
		t.Fatalf("heartbeat mismatch: %+v", got)
	}
	// Heartbeats must not carry data.
	bad := &Push{Agent: "hb", Flags: FlagHeartbeat, Envelope: []byte{1}}
	if _, err := bad.Encode(); err == nil {
		t.Fatal("Encode accepted a heartbeat with an envelope")
	}
}

func TestPushEncodeRejects(t *testing.T) {
	if _, err := (&Push{Agent: ""}).Encode(); err == nil {
		t.Fatal("empty agent id accepted")
	}
	if _, err := (&Push{Agent: string(make([]byte, MaxAgentIDLen+1))}).Encode(); err == nil {
		t.Fatal("oversized agent id accepted")
	}
	if _, err := (&Push{Agent: "a", Candidates: make([]uint64, MaxPushCandidates+1)}).Encode(); err == nil {
		t.Fatal("oversized candidate list accepted")
	}
}

func TestDecodePushMalformed(t *testing.T) {
	valid, err := (&Push{Agent: "a", Gen: 1, Seq: 1, Envelope: envelopeFor(t, 4)}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   append([]byte{0, 0, 0, 0}, valid[4:]...),
		"bad version": append(append([]byte{}, valid[:4]...), append([]byte{99}, valid[5:]...)...),
		"bad flags":   append(append([]byte{}, valid[:5]...), append([]byte{0x80}, valid[6:]...)...),
		"truncated":   valid[:len(valid)-3],
		"trailing":    append(append([]byte{}, valid...), 0xff),
	}
	for name, data := range cases {
		if _, err := DecodePush(data, 0); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: got %v, want ErrBadFrame", name, err)
		}
	}
	// Corrupt compressed body: flip a byte inside the deflate stream.
	corrupt := append([]byte{}, valid...)
	corrupt[len(corrupt)-1] ^= 0xff
	if _, err := DecodePush(corrupt, 0); !errors.Is(err, ErrBadFrame) {
		t.Errorf("corrupt body: got %v, want ErrBadFrame", err)
	}
}

// TestDecodePushTooLarge pins satellite 1's contract: the declared
// envelope length is checked against the cap and reported as a typed
// *TooLargeError before any decompression happens.
func TestDecodePushTooLarge(t *testing.T) {
	env := envelopeFor(t, 1, 2, 3)
	enc, err := (&Push{Agent: "a", Gen: 1, Seq: 1, Envelope: env}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	var tle *TooLargeError
	if _, err := DecodePush(enc, len(env)-1); !errors.As(err, &tle) {
		t.Fatalf("got %v, want *TooLargeError", err)
	}
	if tle.Size != len(env) || tle.Limit != len(env)-1 {
		t.Fatalf("TooLargeError fields: %+v", tle)
	}
	// A frame lying about its length (huge declared rawLen, no actual
	// payload) must be caught from the declared value alone.
	lie := append([]byte{}, enc...)
	// rawLen field sits 8 bytes before the compressed body; find it by
	// reconstructing the offset: header(4+1+1) + idlen(2)+id + 24 + cand(2).
	off := 4 + 1 + 1 + 2 + 1 + 24 + 2
	binary.LittleEndian.PutUint32(lie[off:], 1<<30)
	if _, err := DecodePush(lie, 1<<20); !errors.As(err, &tle) {
		t.Fatalf("declared-length lie: got %v, want *TooLargeError", err)
	}
	if tle.Size != 1<<30 {
		t.Fatalf("TooLargeError.Size = %d, want declared 1<<30", tle.Size)
	}
}

// --- aggregator state machine ---

func push(t *testing.T, a *Aggregator, p *Push) *Ack {
	t.Helper()
	ack, err := a.ApplyPush(p)
	if err != nil {
		t.Fatalf("ApplyPush(%s g%d s%d): %v", p.Agent, p.Gen, p.Seq, err)
	}
	return ack
}

func queryOne(t *testing.T, a *Aggregator, item uint64) int64 {
	t.Helper()
	est, err := a.Query([]uint64{item})
	if err != nil {
		t.Fatal(err)
	}
	return est[0]
}

func TestAggregatorIdempotency(t *testing.T) {
	a := newTestAggregator(t, AggregatorConfig{})

	d1 := &Push{Agent: "e1", Gen: 1, Seq: 1, Cursor: 10, Envelope: envelopeFor(t, 7, 7, 7)}
	if ack := push(t, a, d1); ack.Status != StatusApplied {
		t.Fatalf("first frame: %+v", ack)
	}
	if got := queryOne(t, a, 7); got != 3 {
		t.Fatalf("after frame 1: item 7 = %d, want 3", got)
	}

	// Exact duplicate: acknowledged, never double-counted.
	for i := 0; i < 3; i++ {
		if ack := push(t, a, d1); ack.Status != StatusDuplicate {
			t.Fatalf("dup %d: %+v", i, ack)
		}
	}
	if got := queryOne(t, a, 7); got != 3 {
		t.Fatalf("after dups: item 7 = %d, want 3", got)
	}

	// Next in sequence applies.
	d2 := &Push{Agent: "e1", Gen: 1, Seq: 2, Cursor: 20, Envelope: envelopeFor(t, 7, 8)}
	if ack := push(t, a, d2); ack.Status != StatusApplied || ack.Seq != 2 {
		t.Fatalf("frame 2: %+v", ack)
	}
	if got := queryOne(t, a, 7); got != 4 {
		t.Fatalf("after frame 2: item 7 = %d, want 4", got)
	}

	// Replayed older frame after progress: still a duplicate, still inert.
	if ack := push(t, a, d1); ack.Status != StatusDuplicate {
		t.Fatalf("late dup: %+v", ack)
	}
	if got := queryOne(t, a, 7); got != 4 {
		t.Fatal("late duplicate changed state")
	}

	// Gap: seq 4 when 3 is expected → resync demanded, nothing applied.
	gap := &Push{Agent: "e1", Gen: 1, Seq: 4, Envelope: envelopeFor(t, 9)}
	if ack := push(t, a, gap); ack.Status != StatusResync || ack.Seq != 2 {
		t.Fatalf("gap: %+v", ack)
	}
	if got := queryOne(t, a, 9); got != 0 {
		t.Fatal("gapped frame leaked into state")
	}

	// Unknown agent starting above seq 1 → resync.
	if ack := push(t, a, &Push{Agent: "new", Gen: 1, Seq: 5, Envelope: envelopeFor(t, 1)}); ack.Status != StatusResync {
		t.Fatalf("unknown agent mid-sequence: %+v", ack)
	}

	// Stale generation (zombie incarnation) → resync, inert.
	push(t, a, &Push{Agent: "e1", Gen: 3, Seq: 1, Flags: FlagFull, Envelope: envelopeFor(t, 7, 7, 7, 7)})
	if ack := push(t, a, &Push{Agent: "e1", Gen: 1, Seq: 3, Envelope: envelopeFor(t, 50)}); ack.Status != StatusResync {
		t.Fatalf("zombie gen: %+v", ack)
	}
	if got := queryOne(t, a, 50); got != 0 {
		t.Fatal("zombie frame leaked into state")
	}

	st := a.Stats()
	if st.Applied == 0 || st.Duplicates != 4 || st.Resyncs != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestAggregatorGenerations pins the two rejoin semantics: a new
// generation without FlagFull retires the prior contribution and adds on
// top (crash-rejoin — shipped data survives), while FlagFull replaces
// everything (the agent vouches for complete history).
func TestAggregatorGenerations(t *testing.T) {
	a := newTestAggregator(t, AggregatorConfig{})
	push(t, a, &Push{Agent: "e1", Gen: 1, Seq: 1, Envelope: envelopeFor(t, 1, 1)})

	// Crash-rejoin: gen 2, additive. The 2 old counts stay.
	if ack := push(t, a, &Push{Agent: "e1", Gen: 2, Seq: 1, Envelope: envelopeFor(t, 1)}); ack.Status != StatusApplied || ack.Gen != 2 {
		t.Fatalf("rejoin: %+v", ack)
	}
	if got := queryOne(t, a, 1); got != 3 {
		t.Fatalf("after additive rejoin: item 1 = %d, want 3", got)
	}

	// Full resync at gen 3: replaces both prior generations.
	push(t, a, &Push{Agent: "e1", Gen: 3, Seq: 1, Flags: FlagFull, Envelope: envelopeFor(t, 1, 1, 1, 1, 1)})
	if got := queryOne(t, a, 1); got != 5 {
		t.Fatalf("after full resync: item 1 = %d, want 5", got)
	}

	// A mid-generation FlagFull also replaces retired bases.
	push(t, a, &Push{Agent: "e1", Gen: 3, Seq: 2, Flags: FlagFull, Envelope: envelopeFor(t, 1)})
	if got := queryOne(t, a, 1); got != 1 {
		t.Fatalf("after mid-gen full: item 1 = %d, want 1", got)
	}
}

func TestAggregatorHeartbeatAndLease(t *testing.T) {
	clock := time.Unix(1000, 0)
	a := newTestAggregator(t, AggregatorConfig{
		LeaseTTL: 10 * time.Second,
		Now:      func() time.Time { return clock },
	})
	// Heartbeat from an unknown agent: nothing to renew → resync.
	if ack := push(t, a, &Push{Agent: "e1", Gen: 1, Flags: FlagHeartbeat}); ack.Status != StatusResync {
		t.Fatalf("unknown heartbeat: %+v", ack)
	}
	push(t, a, &Push{Agent: "e1", Gen: 1, Seq: 1, Envelope: envelopeFor(t, 2)})

	clock = clock.Add(8 * time.Second)
	if ack := push(t, a, &Push{Agent: "e1", Gen: 1, Seq: 1, Flags: FlagHeartbeat}); ack.Status != StatusApplied {
		t.Fatalf("heartbeat: %+v", ack)
	}
	if ags := a.Agents(); len(ags) != 1 || !ags[0].Alive {
		t.Fatalf("agent should be alive: %+v", ags)
	}

	// Silence past the TTL: reported dead, contribution retained.
	clock = clock.Add(11 * time.Second)
	if ags := a.Agents(); ags[0].Alive {
		t.Fatal("lease should have expired")
	}
	if got := queryOne(t, a, 2); got != 1 {
		t.Fatal("dead agent's contribution was dropped")
	}
	// A heartbeat from a stale generation cannot renew.
	if ack := push(t, a, &Push{Agent: "e1", Gen: 9, Flags: FlagHeartbeat}); ack.Status != StatusResync {
		t.Fatalf("stale-gen heartbeat: %+v", ack)
	}
}

func TestAggregatorRejectsIncompatible(t *testing.T) {
	a := newTestAggregator(t, AggregatorConfig{})
	// Wrong geometry.
	wrong := salsa.MustBuild(salsa.CountMinOf(salsa.Options{Width: 1 << 9, Merge: salsa.MergeSum, Seed: 11}))
	if _, err := a.ApplyPush(&Push{Agent: "x", Gen: 1, Seq: 1, Envelope: marshalState(t, wrong)}); err == nil {
		t.Fatal("mismatched geometry accepted")
	}
	// Undecodable envelope.
	if _, err := a.ApplyPush(&Push{Agent: "x", Gen: 1, Seq: 1, Envelope: []byte("junk")}); err == nil {
		t.Fatal("junk envelope accepted")
	}
	// Oversized (decompressed) envelope → typed error.
	small := newTestAggregator(t, AggregatorConfig{MaxEnvelopeBytes: 16})
	var tle *TooLargeError
	if _, err := small.ApplyPush(&Push{Agent: "x", Gen: 1, Seq: 1, Envelope: envelopeFor(t, 1)}); !errors.As(err, &tle) {
		t.Fatalf("got %v, want *TooLargeError", err)
	}
	if small.Stats().Rejected == 0 {
		t.Fatal("rejections not counted")
	}
	// Non-delta-capable aggregator topology is refused at construction.
	var de *salsa.DeltaError
	if _, err := NewAggregator(AggregatorConfig{
		Spec: salsa.CountMinOf(salsa.Options{Width: 1 << 8}), // MergeMax default
	}); !errors.As(err, &de) {
		t.Fatalf("max-merge aggregator: got %v, want *salsa.DeltaError", err)
	}
}

func TestAggregatorTopCandidates(t *testing.T) {
	a := newTestAggregator(t, AggregatorConfig{MaxCandidates: 2})
	env := envelopeFor(t, 5, 5, 5, 6, 6, 7)
	push(t, a, &Push{Agent: "e1", Gen: 1, Seq: 1, Candidates: []uint64{5, 6, 7}, Envelope: env})
	top, err := a.Top(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 { // pool capped at 2; the third candidate was dropped
		t.Fatalf("top: %+v", top)
	}
	if top[0].Item != 5 || top[0].Count != 3 {
		t.Fatalf("top[0]: %+v", top[0])
	}
	if a.Stats().CandidatesDropped != 1 {
		t.Fatalf("stats: %+v", a.Stats())
	}
}

// --- agent push loop ---

// directTransport applies frames straight to an in-process aggregator,
// optionally failing the first failN deliveries of each frame.
type directTransport struct {
	agg   *Aggregator
	failN int
	seen  map[string]int
}

func (d *directTransport) Push(ctx context.Context, p *Push) (*Ack, error) {
	// Frames must survive an encode/decode cycle even in-process, so the
	// tests exercise the full wire path.
	enc, err := p.Encode()
	if err != nil {
		return nil, err
	}
	q, err := DecodePush(enc, d.agg.MaxEnvelopeBytes())
	if err != nil {
		return nil, err
	}
	if d.failN > 0 {
		if d.seen == nil {
			d.seen = make(map[string]int)
		}
		key := string(enc[:16]) // header incl. flags+idlen; good enough per frame
		if d.seen[key] < d.failN {
			d.seen[key]++
			return nil, errors.New("injected network failure")
		}
	}
	return d.agg.ApplyPush(q)
}

func (d *directTransport) Resume(ctx context.Context, agent string) (*ResumeInfo, error) {
	info := d.agg.Resume(agent)
	return &info, nil
}

func newTestAgent(t *testing.T, cfg AgentConfig) *Agent {
	t.Helper()
	if cfg.Spec == nil {
		cfg.Spec = testSpec()
	}
	if cfg.Sleep == nil {
		cfg.Sleep = func(time.Duration) {}
	}
	ag, err := NewAgent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ag
}

func TestAgentDeltaCycle(t *testing.T) {
	agg := newTestAggregator(t, AggregatorConfig{})
	ag := newTestAgent(t, AgentConfig{ID: "edge", Transport: &directTransport{agg: agg}})
	ctx := context.Background()

	for round := 0; round < 5; round++ {
		for i := 0; i < 100; i++ {
			ag.Ingest(uint64(i % 13))
		}
		if err := ag.PushOnce(ctx); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !ag.Synced() {
			t.Fatalf("round %d: not synced after successful push", round)
		}
	}
	// The aggregator's merged state must match the agent's live sketch
	// byte-for-byte: deltas reassemble exactly.
	got, err := agg.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	core, err := salsa.DeltaCore(ag.Sketch())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, marshalState(t, core)) {
		t.Fatal("aggregator diverged from agent after 5 delta rounds")
	}
	// Nothing new → heartbeat, and the lease is renewed.
	if err := ag.PushOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if ag.Stats().Heartbeats != 1 || agg.Stats().Heartbeats != 1 {
		t.Fatalf("heartbeat not exchanged: agent %+v agg %+v", ag.Stats(), agg.Stats())
	}
}

func TestAgentRetryBackoff(t *testing.T) {
	agg := newTestAggregator(t, AggregatorConfig{})
	var slept []time.Duration
	ag := newTestAgent(t, AgentConfig{
		ID:          "edge",
		Transport:   &directTransport{agg: agg, failN: 2},
		MaxAttempts: 4,
		BackoffBase: 100 * time.Millisecond,
		BackoffCap:  time.Second,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	})
	ag.Ingest(42)
	if err := ag.PushOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 2 {
		t.Fatalf("expected 2 backoff sleeps, got %v", slept)
	}
	// Jittered exponential: sleep n ∈ [d/2, d) for d = base·2ⁿ.
	for i, d := range slept {
		want := 100 * time.Millisecond << uint(i)
		if d < want/2 || d >= want {
			t.Fatalf("backoff %d = %v outside [%v, %v)", i, d, want/2, want)
		}
	}
	if st := ag.Stats(); st.Retries != 2 || st.Attempts != 3 {
		t.Fatalf("stats: %+v", st)
	}
	if got := queryOne(t, agg, 42); got != 1 {
		t.Fatalf("item 42 = %d after retried push, want 1", got)
	}
}

func TestAgentPushFailureKeepsFrameFrozen(t *testing.T) {
	agg := newTestAggregator(t, AggregatorConfig{})
	tr := &directTransport{agg: agg, failN: 1000}
	ag := newTestAgent(t, AgentConfig{ID: "edge", Transport: tr, MaxAttempts: 2})

	ag.Ingest(1)
	err := ag.PushOnce(context.Background())
	if !errors.Is(err, ErrPushFailed) {
		t.Fatalf("got %v, want ErrPushFailed", err)
	}
	if ag.Synced() {
		t.Fatal("agent claims synced with a frozen unacked frame")
	}
	frozen := ag.frame
	frozenEnc, _ := frozen.Encode()

	// Traffic during the outage accumulates in the live sketch; the frozen
	// frame must not change — that is what makes the retry byte-identical.
	for i := 0; i < 50; i++ {
		ag.Ingest(2)
	}
	if ag.frame != frozen {
		t.Fatal("frozen frame was replaced during outage")
	}
	if enc, _ := ag.frame.Encode(); !bytes.Equal(enc, frozenEnc) {
		t.Fatal("frozen frame bytes changed during outage")
	}

	// Heal; the frozen frame lands, then ONE more frame coalesces the
	// entire outage.
	tr.failN = 0
	if err := ag.PushOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ag.Synced() {
		t.Fatal("outage traffic cannot be synced by the frozen frame alone")
	}
	if err := ag.PushOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !ag.Synced() {
		t.Fatal("one post-heal frame must coalesce the whole outage")
	}
	if got := queryOne(t, agg, 2); got != 50 {
		t.Fatalf("item 2 = %d, want 50", got)
	}
}

// TestAgentResyncAfterAggregatorRestart drives the full resync path: the
// aggregator loses all state (fresh instance), the agent's next push is
// answered with resync, and the agent re-establishes itself with a
// full-state snapshot under a fresh generation — converging byte-exactly.
func TestAgentResyncAfterAggregatorRestart(t *testing.T) {
	agg := newTestAggregator(t, AggregatorConfig{})
	tr := &directTransport{agg: agg}
	ag := newTestAgent(t, AgentConfig{ID: "edge", Transport: tr})
	ctx := context.Background()

	for i := 0; i < 200; i++ {
		ag.Ingest(uint64(i % 7))
	}
	if err := ag.PushOnce(ctx); err != nil {
		t.Fatal(err)
	}

	// Aggregator crash: all per-agent state gone.
	tr.agg = newTestAggregator(t, AggregatorConfig{})

	for i := 0; i < 100; i++ {
		ag.Ingest(uint64(i % 7))
	}
	if err := ag.PushOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if ag.Stats().Resyncs != 1 {
		t.Fatalf("stats: %+v", ag.Stats())
	}
	if ag.Gen() < 2 {
		t.Fatalf("resync must move to a fresh generation, got %d", ag.Gen())
	}
	if !ag.Synced() {
		t.Fatal("full snapshot should cover everything ingested")
	}
	got, err := tr.agg.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	core, _ := salsa.DeltaCore(ag.Sketch())
	if !bytes.Equal(got, marshalState(t, core)) {
		t.Fatal("post-resync aggregator diverged from agent")
	}
}

// TestAgentCrashRestartResume models the agent process dying and coming
// back: Resume hands it the next generation and the replay cursor, the
// upstream is re-read from there, and the cluster total stays exact.
func TestAgentCrashRestartResume(t *testing.T) {
	agg := newTestAggregator(t, AggregatorConfig{})
	tr := &directTransport{agg: agg}
	ctx := context.Background()
	source := make([]uint64, 500)
	for i := range source {
		source[i] = uint64(i % 11)
	}

	ag := newTestAgent(t, AgentConfig{ID: "edge", Transport: tr})
	for _, x := range source[:300] {
		ag.Ingest(x)
	}
	if err := ag.PushOnce(ctx); err != nil {
		t.Fatal(err)
	}
	// 80 more items ingested but never shipped — lost with the crash.
	for _, x := range source[300:380] {
		ag.Ingest(x)
	}

	// Crash. Restart: ask the aggregator where to resume.
	gen, cursor, err := Resume(ctx, tr, "edge")
	if err != nil {
		t.Fatal(err)
	}
	if cursor != 300 {
		t.Fatalf("resume cursor = %d, want 300 (last acked cut)", cursor)
	}
	var ag2 *Agent
	ag2 = newTestAgent(t, AgentConfig{
		ID: "edge", Transport: tr,
		Generation: gen, StartCursor: cursor,
		Replay: func(from uint64) {
			for _, x := range source[from:] {
				ag2.Ingest(x)
			}
		},
	})
	// Re-ingest the un-acked tail from the replayable source.
	for _, x := range source[cursor:] {
		ag2.Ingest(x)
	}
	if err := ag2.PushOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if !ag2.Synced() {
		t.Fatal("restarted agent not synced")
	}
	// Exactness: every source item counted exactly once.
	ref := salsa.MustBuild(testSpec())
	for _, x := range source {
		ref.Update(x, 1)
	}
	got, err := agg.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, marshalState(t, ref)) {
		t.Fatal("crash-restart lost or double-counted items")
	}
}

func TestNewAgentRejects(t *testing.T) {
	tr := &directTransport{}
	if _, err := NewAgent(AgentConfig{ID: "", Spec: testSpec(), Transport: tr}); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, err := NewAgent(AgentConfig{ID: "a", Transport: tr}); err == nil {
		t.Fatal("nil spec accepted")
	}
	if _, err := NewAgent(AgentConfig{ID: "a", Spec: testSpec()}); err == nil {
		t.Fatal("nil transport accepted")
	}
	var de *salsa.DeltaError
	if _, err := NewAgent(AgentConfig{
		ID: "a", Transport: tr,
		Spec: salsa.Windowed(testSpec(), 4, 100),
	}); !errors.As(err, &de) {
		t.Fatalf("windowed agent: got %v, want *salsa.DeltaError", err)
	}
}

// TestAgentEpochTopology runs the delta cycle through an EpochShardedBy
// ingest layer: PushOnce must cut the epoch before snapshotting.
func TestAgentEpochTopology(t *testing.T) {
	agg := newTestAggregator(t, AggregatorConfig{})
	ag := newTestAgent(t, AgentConfig{
		ID:        "edge",
		Spec:      salsa.EpochShardedBy(testSpec(), 2),
		Transport: &directTransport{agg: agg},
	})
	ctx := context.Background()
	for round := 0; round < 3; round++ {
		for i := 0; i < 300; i++ {
			ag.Ingest(uint64(i % 17))
		}
		if err := ag.PushOnce(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if !ag.Synced() {
		t.Fatal("epoch agent not synced")
	}
	if got := queryOne(t, agg, 3); got != 3*300/17+1 {
		// 300 items over 17 residues: residue 3 appears ceil- or floor-many
		// times; compute exactly instead.
		want := int64(0)
		for i := 0; i < 300; i++ {
			if i%17 == 3 {
				want++
			}
		}
		want *= 3
		if got != want {
			t.Fatalf("item 3 = %d, want %d", got, want)
		}
	}
}

// --- HTTP layer ---

// flakyRT fails the first delivery of every distinct request body, then
// passes it through: one injected retry per frame.
type flakyRT struct {
	next http.RoundTripper
	seen map[string]bool
}

func (f *flakyRT) RoundTrip(r *http.Request) (*http.Response, error) {
	if r.Body != nil && r.Method == http.MethodPost {
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(r.Body); err != nil {
			return nil, err
		}
		r.Body.Close()
		key := buf.String()
		if f.seen == nil {
			f.seen = make(map[string]bool)
		}
		if !f.seen[key] {
			f.seen[key] = true
			return nil, errors.New("injected connection reset")
		}
		r.Body = io_NopCloser(bytes.NewReader(buf.Bytes()))
	}
	return f.next.RoundTrip(r)
}

// io_NopCloser avoids importing io just for NopCloser in this test file.
func io_NopCloser(r *bytes.Reader) *nopCloser { return &nopCloser{r} }

type nopCloser struct{ *bytes.Reader }

func (nopCloser) Close() error { return nil }

func TestHTTPEndToEnd(t *testing.T) {
	agg := newTestAggregator(t, AggregatorConfig{})
	srv := httptest.NewServer(Handler(agg))
	defer srv.Close()

	tr := &HTTPTransport{
		Base:   srv.URL,
		Client: &http.Client{Transport: &flakyRT{next: http.DefaultTransport}},
	}
	ag := newTestAgent(t, AgentConfig{ID: "edge-http", Transport: tr})
	ctx := context.Background()

	for i := 0; i < 500; i++ {
		ag.Ingest(uint64(i % 5))
	}
	if err := ag.PushOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if ag.Stats().Retries == 0 {
		t.Fatal("the injected connection reset should have forced a retry")
	}
	if !ag.Synced() {
		t.Fatal("not synced over HTTP")
	}

	// Snapshot over HTTP is byte-identical to the agent's state.
	resp, err := http.Get(srv.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	blob.ReadFrom(resp.Body)
	resp.Body.Close()
	core, _ := salsa.DeltaCore(ag.Sketch())
	if !bytes.Equal(blob.Bytes(), marshalState(t, core)) {
		t.Fatal("HTTP snapshot diverged")
	}

	// Resume round-trips through the HTTP transport.
	gen, cursor, err := Resume(ctx, tr, "edge-http")
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 || cursor != 500 {
		t.Fatalf("resume = (gen %d, cursor %d), want (2, 500)", gen, cursor)
	}
}

func TestHTTPPushRejections(t *testing.T) {
	agg := newTestAggregator(t, AggregatorConfig{MaxEnvelopeBytes: 64})
	srv := httptest.NewServer(Handler(agg))
	defer srv.Close()

	post := func(body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/push", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	// Garbage → 400.
	if resp := post([]byte("not a frame")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage: %d", resp.StatusCode)
	}
	// An envelope over the configured cap → 413 from the declared length.
	big, err := (&Push{Agent: "a", Gen: 1, Seq: 1, Envelope: envelopeFor(t, 1)}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if resp := post(big); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized envelope: %d", resp.StatusCode)
	}
	// A request body over MaxFrameBytes → 413 via http.MaxBytesReader.
	huge := make([]byte, agg.MaxFrameBytes()+1)
	if resp := post(huge); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d", resp.StatusCode)
	}
	// A resync verdict travels as 409 and decodes as a normal ack.
	midSeq, err := (&Push{Agent: "b", Gen: 1, Seq: 9, Flags: FlagHeartbeat}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if resp := post(midSeq); resp.StatusCode != http.StatusConflict {
		t.Fatalf("resync: %d", resp.StatusCode)
	}
}

func TestHTTPQueryEndpoints(t *testing.T) {
	agg := newTestAggregator(t, AggregatorConfig{})
	push(t, agg, &Push{Agent: "e", Gen: 1, Seq: 1, Candidates: []uint64{3}, Envelope: envelopeFor(t, 3, 3, 4)})
	srv := httptest.NewServer(Handler(agg))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}
	if code, body := get("/v1/query?item=3"); code != 200 || !bytes.Contains([]byte(body), []byte(`"3":2`)) {
		t.Fatalf("query: %d %s", code, body)
	}
	if code, _ := get("/v1/query?item=zzz"); code != 400 {
		t.Fatalf("bad item: %d", code)
	}
	if code, body := get("/v1/top?k=1"); code != 200 || !bytes.Contains([]byte(body), []byte(`"item":3`)) {
		t.Fatalf("top: %d %s", code, body)
	}
	if code, _ := get("/v1/top?k=-1"); code != 400 {
		t.Fatalf("bad k: %d", code)
	}
	if code, body := get("/v1/agents"); code != 200 || !bytes.Contains([]byte(body), []byte(`"id":"e"`)) {
		t.Fatalf("agents: %d %s", code, body)
	}
	if code, body := get("/v1/resume?agent=e"); code != 200 || !bytes.Contains([]byte(body), []byte(`"known":true`)) {
		t.Fatalf("resume: %d %s", code, body)
	}
	if code, _ := get("/v1/resume"); code != 400 {
		t.Fatalf("resume without agent: %d", code)
	}
	if code, body := get("/v1/stats"); code != 200 || !bytes.Contains([]byte(body), []byte(`"applied":1`)) {
		t.Fatalf("stats: %d %s", code, body)
	}
}
