package salsad

// Crash-consistent durable state for aggregators and relays.
//
// A Store owns a data directory holding snapshot files named
// snap-<epoch>.salsad, where <epoch> is a 16-hex-digit monotonically
// increasing stamp. Each file wraps an opaque state payload in a small
// header (magic, version, epoch, length) followed by a CRC-64/ECMA
// checksum over everything before it. Writes are atomic: the file is
// assembled in a .tmp sibling, fsynced, renamed into place, and the
// directory fsynced — so a crash mid-write leaves only an ignorable .tmp
// and every *named* snapshot on disk is complete. The embedded epoch must
// match the filename's, which is what catches a stale snapshot replayed
// under a newer name.
//
// On load the newest valid snapshot wins. Files that fail validation
// (torn, truncated, bit-flipped, stale-epoch) are rejected with a typed
// *SnapshotError and recorded as skipped; the loader falls back to the
// next older complete file, and to ErrNoSnapshot when the directory holds
// none. Callers that persist protocol frontiers (the relay's upstream
// frozen frame) treat "the newest file was skipped" as a signal that the
// durable frontier cannot be trusted and fall back to the resync path.
//
// The state payload itself is the aggregator's table — per-agent sketch
// contributions serialized via the universal envelope, generations, seq
// frontiers, replay cursors, the candidate pool, and the protocol
// counters — plus, for relays, the upstream shipping state (generation,
// seq, shadow snapshot, and the frozen in-flight frame, which must
// survive a crash byte-identically for retry dedup to stay exact).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"salsa"
)

const (
	snapMagic   uint32 = 0x50534c53 // "SLSP" little-endian
	snapVersion byte   = 1
	snapPrefix         = "snap-"
	snapSuffix         = ".salsad"
	// snapKeep is how many complete snapshots Save retains: the newest
	// plus one predecessor, so a corrupted newest file still has a
	// consistent (if older) fallback.
	snapKeep = 2

	// snapHeaderLen is magic+version+epoch+payloadLen; snapTrailerLen the
	// checksum.
	snapHeaderLen  = 4 + 1 + 8 + 4
	snapTrailerLen = 8

	// MaxSnapshotBytes bounds the snapshot payload a Store will write or
	// read back; a corrupted length field cannot balloon allocation.
	MaxSnapshotBytes = 1 << 30
)

// crcSnap is the checksum polynomial table for snapshot files.
var crcSnap = crc64.MakeTable(crc64.ECMA)

// ErrNoSnapshot is returned by LoadLatest when the data directory holds
// no snapshot files at all — a first boot, as opposed to a corrupt one.
var ErrNoSnapshot = errors.New("salsad: no snapshot on disk")

// A SnapshotError reports a snapshot file (or write) that failed
// validation: torn, truncated, checksum-mismatched, stale-epoch, or
// written by an incompatible role. Restores treat it as "this file does
// not exist" and fall back — to an older snapshot or to the resync path.
type SnapshotError struct {
	// Path is the offending file ("" when the state decoded but was
	// semantically unusable).
	Path string
	// Reason states what failed.
	Reason string
	// Err is the underlying cause, if any.
	Err error
}

func (e *SnapshotError) Error() string {
	msg := "salsad: snapshot"
	if e.Path != "" {
		msg += " " + e.Path
	}
	msg += ": " + e.Reason
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *SnapshotError) Unwrap() error { return e.Err }

// SnapshotFileName returns the file name a snapshot with the given epoch
// is stored under.
func SnapshotFileName(epoch uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, epoch, snapSuffix)
}

// ParseSnapshotFileName extracts the epoch from a snapshot file name; ok
// is false for names that are not canonical snapshot files.
func ParseSnapshotFileName(name string) (epoch uint64, ok bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	hexa := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
	if len(hexa) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hexa, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Store is a crash-consistent snapshot directory. Save and LoadLatest
// are safe for concurrent use.
type Store struct {
	dir string

	mu    sync.Mutex
	epoch uint64 // highest epoch present or written
}

// OpenStore opens (creating if needed) a snapshot directory, removes
// leftover .tmp files from interrupted writes, and positions the epoch
// counter above every snapshot already present.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, &ConfigError{Field: "DataDir", Reason: "snapshot store needs a data directory"}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, &SnapshotError{Path: dir, Reason: "create data dir", Err: err}
	}
	s := &Store{dir: dir}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, &SnapshotError{Path: dir, Reason: "scan data dir", Err: err}
	}
	for _, ent := range entries {
		name := ent.Name()
		if strings.HasSuffix(name, ".tmp") && strings.HasPrefix(name, snapPrefix) {
			os.Remove(filepath.Join(dir, name)) //nolint:errcheck // best-effort cleanup
			continue
		}
		if epoch, ok := ParseSnapshotFileName(name); ok && epoch > s.epoch {
			s.epoch = epoch
		}
	}
	return s, nil
}

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// Epoch returns the highest snapshot epoch present or written so far.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Save writes state as the next-epoch snapshot: assembled in a .tmp
// file, fsynced, renamed into place, directory fsynced. Older snapshots
// beyond the retention window are pruned. Returns the epoch written.
func (s *Store) Save(state []byte) (uint64, error) {
	if len(state) > MaxSnapshotBytes {
		return 0, &SnapshotError{Path: s.dir, Reason: fmt.Sprintf("state of %d bytes exceeds the %d-byte cap", len(state), MaxSnapshotBytes)}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	epoch := s.epoch + 1

	buf := make([]byte, 0, snapHeaderLen+len(state)+snapTrailerLen)
	buf = binary.LittleEndian.AppendUint32(buf, snapMagic)
	buf = append(buf, snapVersion)
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(state)))
	buf = append(buf, state...)
	buf = binary.LittleEndian.AppendUint64(buf, crc64.Checksum(buf, crcSnap))

	final := filepath.Join(s.dir, SnapshotFileName(epoch))
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, buf); err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return 0, &SnapshotError{Path: tmp, Reason: "write snapshot", Err: err}
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return 0, &SnapshotError{Path: final, Reason: "publish snapshot", Err: err}
	}
	syncDir(s.dir)
	s.epoch = epoch
	s.pruneLocked()
	return epoch, nil
}

// writeFileSync writes data to path and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close() //nolint:errcheck // write error wins
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close() //nolint:errcheck // sync error wins
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a rename survives power loss; failures
// are ignored (some filesystems reject directory fsync).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()  //nolint:errcheck // best effort
	d.Close() //nolint:errcheck // read-only handle
}

// pruneLocked removes complete snapshots older than the retention
// window.
func (s *Store) pruneLocked() {
	epochs := s.listEpochsLocked()
	if len(epochs) <= snapKeep {
		return
	}
	for _, e := range epochs[:len(epochs)-snapKeep] {
		os.Remove(filepath.Join(s.dir, SnapshotFileName(e))) //nolint:errcheck // retention is best-effort
	}
}

// listEpochsLocked returns the epochs of every named snapshot file in
// ascending order.
func (s *Store) listEpochsLocked() []uint64 {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var epochs []uint64
	for _, ent := range entries {
		if e, ok := ParseSnapshotFileName(ent.Name()); ok {
			epochs = append(epochs, e)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	return epochs
}

// LoadResult is a successfully loaded snapshot plus the trail of newer
// files that failed validation on the way to it.
type LoadResult struct {
	// State is the snapshot payload.
	State []byte
	// Epoch is the loaded snapshot's epoch stamp.
	Epoch uint64
	// Path is the file the state came from.
	Path string
	// Skipped holds one *SnapshotError per newer file that failed
	// validation and was passed over. Non-empty Skipped means the loaded
	// state may predate frames that were already transmitted — protocol
	// frontiers recovered from it must not be trusted for dedup.
	Skipped []error
}

// LoadLatest returns the newest snapshot that validates. Files that fail
// (torn, corrupt, stale-epoch) are recorded in Skipped and passed over.
// With no snapshot files at all it returns ErrNoSnapshot; with files but
// none valid it returns the newest file's *SnapshotError.
func (s *Store) LoadLatest() (*LoadResult, error) {
	s.mu.Lock()
	epochs := s.listEpochsLocked()
	s.mu.Unlock()
	if len(epochs) == 0 {
		return nil, ErrNoSnapshot
	}
	var skipped []error
	for i := len(epochs) - 1; i >= 0; i-- {
		path := filepath.Join(s.dir, SnapshotFileName(epochs[i]))
		state, err := readSnapshotFile(path, epochs[i])
		if err != nil {
			skipped = append(skipped, err)
			continue
		}
		return &LoadResult{State: state, Epoch: epochs[i], Path: path, Skipped: skipped}, nil
	}
	return nil, skipped[0]
}

// readSnapshotFile validates one snapshot file end to end: magic,
// version, checksum, exact length, and the epoch-matches-filename rule
// that catches stale replays.
func readSnapshotFile(path string, wantEpoch uint64) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, &SnapshotError{Path: path, Reason: "read", Err: err}
	}
	if len(data) < snapHeaderLen+snapTrailerLen {
		return nil, &SnapshotError{Path: path, Reason: fmt.Sprintf("truncated: %d bytes is shorter than the minimal snapshot", len(data))}
	}
	body, trailer := data[:len(data)-snapTrailerLen], data[len(data)-snapTrailerLen:]
	if got, want := binary.LittleEndian.Uint64(trailer), crc64.Checksum(body, crcSnap); got != want {
		return nil, &SnapshotError{Path: path, Reason: fmt.Sprintf("checksum mismatch: file says %016x, content hashes to %016x", got, want)}
	}
	if binary.LittleEndian.Uint32(body) != snapMagic {
		return nil, &SnapshotError{Path: path, Reason: "bad magic"}
	}
	if body[4] != snapVersion {
		return nil, &SnapshotError{Path: path, Reason: fmt.Sprintf("unsupported version %d", body[4])}
	}
	epoch := binary.LittleEndian.Uint64(body[5:])
	if epoch != wantEpoch {
		return nil, &SnapshotError{Path: path, Reason: fmt.Sprintf("stale-epoch replay: file named for epoch %d embeds epoch %d", wantEpoch, epoch)}
	}
	payloadLen := int(binary.LittleEndian.Uint32(body[13:]))
	if payloadLen > MaxSnapshotBytes || payloadLen != len(body)-snapHeaderLen {
		return nil, &SnapshotError{Path: path, Reason: fmt.Sprintf("declared payload length %d does not match the %d bytes present", payloadLen, len(body)-snapHeaderLen)}
	}
	return body[snapHeaderLen:], nil
}

// --- aggregator/relay state payload codec ---

const (
	stateMagic   uint32 = 0x54534c53 // "SLST" little-endian
	stateVersion byte   = 1

	stateKindAggregator byte = 0
	stateKindRelay      byte = 1
)

// MarshalState serializes the aggregator's durable state — the per-agent
// table (contribution envelopes, generation, seq frontier, cursor,
// depth), the candidate pool, and the protocol counters — as a snapshot
// payload for Store.Save. The bytes are deterministic: agents and
// candidates are written in sorted order.
func (a *Aggregator) MarshalState() ([]byte, error) {
	return a.marshalState(stateKindAggregator, nil)
}

func (a *Aggregator) marshalState(kind byte, upstream []byte) ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	buf := make([]byte, 0, 1<<12)
	buf = binary.LittleEndian.AppendUint32(buf, stateMagic)
	buf = append(buf, stateVersion, kind)
	for _, c := range a.stats.counters() {
		buf = binary.LittleEndian.AppendUint64(buf, c)
	}

	ids := make([]string, 0, len(a.agents))
	for id := range a.agents {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ids)))
	for _, id := range ids {
		e := a.agents[id]
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(id)))
		buf = append(buf, id...)
		buf = binary.LittleEndian.AppendUint64(buf, e.gen)
		buf = binary.LittleEndian.AppendUint64(buf, e.lastSeq)
		buf = binary.LittleEndian.AppendUint64(buf, e.cursor)
		buf = append(buf, e.depth)
		var err error
		if buf, err = appendOptionalSketch(buf, e.cur); err != nil {
			return nil, err
		}
		if buf, err = appendOptionalSketch(buf, e.base); err != nil {
			return nil, err
		}
	}

	cands := make([]uint64, 0, len(a.candidates))
	for it := range a.candidates {
		cands = append(cands, it)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cands)))
	for _, it := range cands {
		buf = binary.LittleEndian.AppendUint64(buf, it)
	}

	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(upstream)))
	buf = append(buf, upstream...)
	return buf, nil
}

// appendOptionalSketch writes a presence byte and, when present, a
// length-prefixed universal envelope.
func appendOptionalSketch(buf []byte, s salsa.Sketch) ([]byte, error) {
	if s == nil {
		return append(buf, 0), nil
	}
	env, err := salsa.Marshal(s)
	if err != nil {
		return nil, err
	}
	buf = append(buf, 1)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(env)))
	return append(buf, env...), nil
}

// restoreState rebuilds the aggregator table from a snapshot payload,
// replacing all current state. Every decoded sketch is checked for
// compatibility against the configured reference topology, so a snapshot
// from a differently-configured cluster is rejected rather than merged.
// It returns the role kind the snapshot was written by and the opaque
// upstream section (empty for aggregator snapshots).
func (a *Aggregator) restoreState(data []byte) (kind byte, upstream []byte, err error) {
	r := frameReader{data: data}
	if r.u32() != stateMagic {
		return 0, nil, &SnapshotError{Reason: "state payload: bad magic"}
	}
	if v := r.u8(); v != stateVersion {
		return 0, nil, &SnapshotError{Reason: fmt.Sprintf("state payload: unsupported version %d", v)}
	}
	kind = r.u8()
	if kind != stateKindAggregator && kind != stateKindRelay {
		return 0, nil, &SnapshotError{Reason: fmt.Sprintf("state payload: unknown role kind %d", kind)}
	}
	var stats AggregatorStats
	stats.setCounters(&r)

	nAgents := int(r.u32())
	if r.err != nil || nAgents > len(data) { // every agent row is > 1 byte
		return 0, nil, &SnapshotError{Reason: "state payload: truncated header"}
	}
	agents := make(map[string]*agentEntry, nAgents)
	for i := 0; i < nAgents; i++ {
		idLen := int(r.u16())
		if idLen == 0 || idLen > MaxAgentIDLen {
			return 0, nil, &SnapshotError{Reason: fmt.Sprintf("state payload: agent id length %d outside [1,%d]", idLen, MaxAgentIDLen)}
		}
		idBytes := r.take(idLen)
		if idBytes == nil {
			return 0, nil, &SnapshotError{Reason: "state payload: truncated agent row"}
		}
		e := &agentEntry{}
		id := string(idBytes)
		e.gen, e.lastSeq, e.cursor = r.u64(), r.u64(), r.u64()
		e.depth = r.u8()
		if e.cur, err = a.readOptionalSketch(&r); err != nil {
			return 0, nil, err
		}
		if e.base, err = a.readOptionalSketch(&r); err != nil {
			return 0, nil, err
		}
		if r.err != nil {
			return 0, nil, &SnapshotError{Reason: "state payload: truncated agent row"}
		}
		agents[id] = e
	}

	nCand := int(r.u32())
	if r.err != nil || nCand > (len(data)-r.pos)/8 {
		return 0, nil, &SnapshotError{Reason: "state payload: truncated candidate pool"}
	}
	candidates := make(map[uint64]struct{}, nCand)
	for i := 0; i < nCand; i++ {
		candidates[r.u64()] = struct{}{}
	}

	upLen := int(r.u32())
	upstream = r.take(upLen)
	if r.err != nil || r.pos != len(r.data) {
		return 0, nil, &SnapshotError{Reason: "state payload: truncated or oversized trailer"}
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	for _, e := range agents {
		e.lastSeen = now
	}
	a.agents = agents
	a.candidates = candidates
	a.stats = stats
	return kind, upstream, nil
}

// readOptionalSketch reads a presence byte plus envelope and decodes it,
// verifying merge compatibility against the reference topology.
func (a *Aggregator) readOptionalSketch(r *frameReader) (salsa.Sketch, error) {
	if r.u8() == 0 {
		return nil, nil
	}
	envLen := int(r.u32())
	if envLen <= 0 || envLen > a.maxEnvelope {
		return nil, &SnapshotError{Reason: fmt.Sprintf("state payload: envelope of %d bytes outside (0,%d]", envLen, a.maxEnvelope)}
	}
	env := r.take(envLen)
	if env == nil {
		return nil, &SnapshotError{Reason: "state payload: truncated envelope"}
	}
	decoded, err := salsa.Unmarshal(env)
	if err != nil {
		return nil, &SnapshotError{Reason: "state payload: undecodable envelope", Err: err}
	}
	core, err := salsa.DeltaCore(decoded)
	if err != nil {
		return nil, &SnapshotError{Reason: "state payload: envelope has no delta core", Err: err}
	}
	if err := salsa.MergeInto(core, a.ref); err != nil {
		return nil, &SnapshotError{Reason: "state payload: envelope incompatible with the configured topology", Err: err}
	}
	return core, nil
}

// counters returns the stats fields in the fixed snapshot order; keep in
// sync with setCounters (append-only: new fields bump stateVersion).
func (s *AggregatorStats) counters() []uint64 {
	return []uint64{
		s.Applied, s.Duplicates, s.Resyncs, s.Heartbeats,
		s.Rejected, s.CandidatesDropped, s.Persists, s.PersistErrors,
	}
}

func (s *AggregatorStats) setCounters(r *frameReader) {
	s.Applied, s.Duplicates, s.Resyncs, s.Heartbeats = r.u64(), r.u64(), r.u64(), r.u64()
	s.Rejected, s.CandidatesDropped, s.Persists, s.PersistErrors = r.u64(), r.u64(), r.u64(), r.u64()
}

// persistor serializes marshal+save cycles so snapshot epochs are
// written in content order even when Persist is called from several
// goroutines (the HTTP apply path and a relay's upstream loop).
type persistor struct {
	mu    sync.Mutex
	store *Store
	every int
	// state produces the snapshot payload: the aggregator's MarshalState
	// for a standalone aggregator, the relay's table+upstream marshal for
	// a relay.
	state func() ([]byte, error)
}

// persist runs one marshal+save cycle.
func (p *persistor) persist() (uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	state, err := p.state()
	if err != nil {
		return 0, err
	}
	return p.store.Save(state)
}
