package salsad

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"salsa"
)

// Relay is an intermediate fan-in tier: downstream it is an Aggregator
// (agents — or deeper relays — push delta frames into its table), and
// upstream it behaves like an Agent whose "stream" is that table. Its cut
// is the merged table delta (current − shadow via the subtract kernel),
// shipped with the same frozen-frame/(gen,seq)/backoff/resync protocol
// edge agents use, so trees compose to arbitrary depth with no new wire
// format — relay frames only add FlagRelay and a Depth byte.
//
// Durability follows a strict ordering rule: a durable relay persists
// every freshly cut data frame — frame bytes, pre-cut shadow, and the
// post-cut snapshot — BEFORE its first transmission, and refuses to send
// if that persist fails. Restoring to a state older than a transmitted
// frame would otherwise cut a different delta under an already-used
// sequence number, which upstream dedup would silently drop. With the
// rule in place a crash at any point is safe: either the frozen frame is
// on disk (restart retries it byte-identically; upstream acks it applied
// or duplicate) or it was never sent. When the newest snapshot fails
// validation and an older one is loaded instead, the persisted frontier
// can no longer be trusted for dedup, so the relay burns the persisted
// generation and rejoins through the full resync path.
type Relay struct {
	cfg  RelayConfig
	agg  *Aggregator
	pers *persistor // shared with agg so MaybePersist snapshots relay state

	mu sync.Mutex
	// gen/seq number upstream data frames; gen 0 is the "resolve a fresh
	// generation from upstream before the first push" sentinel.
	gen uint64
	seq uint64
	// shadow is the last acknowledged merged-table snapshot;
	// appliedAtShadow the applied-frame counter it reflects. The next
	// delta is merged − shadow.
	shadow          salsa.Sketch
	appliedAtShadow uint64
	// frame is the frozen in-flight upstream push; frameState/frameApplied
	// the snapshot the shadow advances to on ack. framePersisted records
	// that the frame has reached disk (always true for heartbeats and
	// volatile relays).
	frame          *Push
	frameState     salsa.Sketch
	frameApplied   uint64
	framePersisted bool
	stats          AgentStats

	rng   *rand.Rand
	sleep func(time.Duration)
}

// RelayConfig configures a Relay.
type RelayConfig struct {
	// ID identifies this relay to its upstream aggregator. Required,
	// ≤ MaxAgentIDLen.
	ID string
	// Spec is the core sketch topology of the tree (the same spec every
	// tier runs). Required.
	Spec salsa.Spec
	// Upstream delivers this relay's merged-table frames to the next tier
	// up. Required.
	Upstream Transport
	// Generation is this incarnation's upstream generation; zero resolves
	// a fresh one from upstream (via Resume) before the first push, unless
	// a durable snapshot supplies it.
	Generation uint64
	// DataDir, when non-empty, makes the relay durable: the downstream
	// table and the upstream shipping state (generation, seq, shadow, and
	// the frozen in-flight frame) are snapshotted crash-consistently.
	DataDir string
	// SnapshotEvery persists after this many applied downstream frames;
	// zero means DefaultSnapshotEvery. Upstream data frames are always
	// persisted at cut time regardless, per the ordering rule above.
	SnapshotEvery int
	// LeaseTTL / MaxEnvelopeBytes / MaxCandidates / Now configure the
	// downstream aggregator half; see AggregatorConfig.
	LeaseTTL         time.Duration
	MaxEnvelopeBytes int
	MaxCandidates    int
	Now              func() time.Time
	// MaxAttempts / BackoffBase / BackoffCap / JitterSeed / Sleep shape
	// upstream delivery retries; see AgentConfig.
	MaxAttempts int
	BackoffBase time.Duration
	BackoffCap  time.Duration
	JitterSeed  uint64
	Sleep       func(time.Duration)
}

// NewRelay builds a relay. With a DataDir it reloads the newest valid
// snapshot: the downstream table always, and the upstream shipping state
// only when the newest snapshot itself validated (see Relay).
func NewRelay(cfg RelayConfig) (*Relay, error) {
	if cfg.ID == "" || len(cfg.ID) > MaxAgentIDLen {
		return nil, &ConfigError{Field: "ID", Reason: fmt.Sprintf("relay id %q must be 1..%d bytes", cfg.ID, MaxAgentIDLen)}
	}
	if cfg.Spec == nil || cfg.Upstream == nil {
		return nil, &ConfigError{Field: "Upstream", Reason: "relay needs a Spec and an Upstream transport"}
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 2 * time.Second
	}
	agg, err := NewAggregator(AggregatorConfig{
		Spec:             cfg.Spec,
		LeaseTTL:         cfg.LeaseTTL,
		MaxEnvelopeBytes: cfg.MaxEnvelopeBytes,
		MaxCandidates:    cfg.MaxCandidates,
		Now:              cfg.Now,
	})
	if err != nil {
		return nil, err
	}
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = cryptoSeed()
	}
	r := &Relay{
		cfg:   cfg,
		agg:   agg,
		gen:   cfg.Generation,
		rng:   rand.New(rand.NewSource(int64(seed))),
		sleep: cfg.Sleep,
	}
	if r.sleep == nil {
		r.sleep = time.Sleep
	}
	agg.upstreamStats = r.Stats
	if cfg.DataDir != "" {
		store, err := OpenStore(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		every := cfg.SnapshotEvery
		if every <= 0 {
			every = DefaultSnapshotEvery
		}
		r.pers = &persistor{store: store, every: every, state: r.marshalState}
		agg.pers = r.pers
		upstream, skipped := agg.restore(store, stateKindRelay)
		switch {
		case agg.RestoreError() != nil || skipped > 0:
			// Either the snapshot was rejected outright, or the newest file
			// failed validation and an older one was loaded. Any frontier on
			// disk may predate frames a dead incarnation already transmitted,
			// so it must not be reused for dedup: burn the persisted
			// generation and rejoin via resync.
			r.resetUpstream()
		case len(upstream) > 0:
			if err := r.restoreUpstream(upstream); err != nil {
				agg.noteRestoreError(err)
				r.resetUpstream()
			}
		}
	}
	return r, nil
}

// resetUpstream discards the upstream shipping state: generation sentinel
// 0 (resolve from upstream), no shadow, no frame — the next PushOnce
// rejoins with a fresh-generation full snapshot.
func (r *Relay) resetUpstream() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gen, r.seq = 0, 0
	r.shadow, r.appliedAtShadow = nil, 0
	r.frame, r.frameState, r.framePersisted = nil, nil, false
}

// Agg returns the downstream aggregator half: the table pushes land in
// and the handler Handler serves.
func (r *Relay) Agg() *Aggregator { return r.agg }

// RestoreError returns the typed error of a failed snapshot restore; see
// Aggregator.RestoreError.
func (r *Relay) RestoreError() error { return r.agg.RestoreError() }

// Gen returns the current upstream generation (0 until the first push of
// a fresh incarnation resolves one).
func (r *Relay) Gen() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen
}

// Stats returns upstream delivery counters since construction.
func (r *Relay) Stats() AgentStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Synced reports whether everything applied downstream has been
// acknowledged upstream: no frozen frame in flight and the shadow covers
// the whole table.
func (r *Relay) Synced() bool {
	applied := r.agg.appliedCount()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.frame == nil && applied == r.appliedAtShadow
}

// PushOnce ships the relay's merged table forward by (at most) one
// upstream frame, with the same freeze/retry/resync semantics as
// Agent.PushOnce. For a durable relay a freshly cut data frame is
// persisted before its first transmission; a failed persist aborts the
// push (wrapping ErrPushFailed) and the frame is retried — persist first
// — by the next call.
func (r *Relay) PushOnce(ctx context.Context) error {
	if r.Gen() == 0 {
		info, err := r.cfg.Upstream.Resume(ctx, r.cfg.ID)
		if err != nil {
			return fmt.Errorf("%w: resolving a fresh generation: %w", ErrPushFailed, err)
		}
		r.mu.Lock()
		r.gen = info.Gen + 1
		r.mu.Unlock()
	}
	if r.currentFrame() == nil {
		if err := r.cutFrame(); err != nil {
			return err
		}
	}
	var lastErr error
	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			r.bump(func(s *AgentStats) { s.Retries++ })
			r.sleep(r.backoff(attempt - 1))
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w: %w", ErrPushFailed, err)
		}
		if err := r.persistFrame(); err != nil {
			return fmt.Errorf("%w: frame not durable before transmission: %w", ErrPushFailed, err)
		}
		frame := r.currentFrame()
		r.bump(func(s *AgentStats) {
			s.Attempts++
			if enc, err := frame.Encode(); err == nil {
				s.WireBytes += uint64(len(enc))
			}
		})
		ack, err := r.cfg.Upstream.Push(ctx, frame)
		if err != nil {
			lastErr = err
			continue
		}
		switch ack.Status {
		case StatusApplied, StatusDuplicate:
			r.commitFrame()
			return nil
		case StatusResync:
			if err := r.prepareResync(ack); err != nil {
				return err
			}
			lastErr = errors.New("resynchronizing")
			continue // deliver the freshly cut full frame
		default:
			lastErr = fmt.Errorf("unknown ack status %q", ack.Status)
		}
	}
	frame := r.currentFrame()
	return fmt.Errorf("%w: relay %s gen %d seq %d: %w",
		ErrPushFailed, r.cfg.ID, frame.Gen, frame.Seq, lastErr)
}

func (r *Relay) currentFrame() *Push {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.frame
}

func (r *Relay) bump(f func(*AgentStats)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f(&r.stats)
}

// backoff mirrors Agent.backoff: uniformly in [d/2, d) for
// d = min(cap, base·2ⁿ).
func (r *Relay) backoff(n int) time.Duration {
	d := r.cfg.BackoffBase << uint(n)
	if d <= 0 || d > r.cfg.BackoffCap {
		d = r.cfg.BackoffCap
	}
	half := d / 2
	return half + time.Duration(r.rng.Int63n(int64(half)+1))
}

// cutFrame freezes the next upstream frame from an atomic capture of the
// downstream table: a full replacing snapshot for a fresh incarnation
// (whatever a prior incarnation shipped overlaps this subtree's merged
// state, so only replacement is sound), a heartbeat when nothing was
// applied since the shadow, and a merged-table delta otherwise.
func (r *Relay) cutFrame() error {
	merged, applied, cands, depth, err := r.agg.upstreamCut()
	if err != nil {
		return err
	}
	if depth > 255 {
		depth = 255
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.shadow == nil && r.seq == 0 {
		env, err := salsa.Marshal(merged)
		if err != nil {
			return err
		}
		r.frame = &Push{
			Agent:      r.cfg.ID,
			Gen:        r.gen,
			Seq:        1,
			Cursor:     applied,
			Flags:      FlagFull | FlagRelay,
			Depth:      byte(depth),
			Candidates: cands,
			Envelope:   env,
		}
		r.frameState, r.frameApplied, r.framePersisted = merged, applied, false
		return nil
	}
	if applied == r.appliedAtShadow {
		r.frame = &Push{
			Agent:  r.cfg.ID,
			Gen:    r.gen,
			Seq:    r.seq,
			Cursor: applied,
			Flags:  FlagHeartbeat | FlagRelay,
			Depth:  byte(depth),
		}
		// Heartbeats consume no sequence number, so they skip the
		// durability barrier.
		r.frameState, r.frameApplied, r.framePersisted = nil, r.appliedAtShadow, true
		return nil
	}
	delta, err := salsa.CloneSketch(merged)
	if err != nil {
		return err
	}
	if err := salsa.SubtractInto(delta, r.shadow); err != nil {
		return err
	}
	env, err := salsa.Marshal(delta)
	if err != nil {
		return err
	}
	r.frame = &Push{
		Agent:      r.cfg.ID,
		Gen:        r.gen,
		Seq:        r.seq + 1,
		Cursor:     applied,
		Flags:      FlagRelay,
		Depth:      byte(depth),
		Candidates: cands,
		Envelope:   env,
	}
	r.frameState, r.frameApplied, r.framePersisted = merged, applied, false
	return nil
}

// persistFrame enforces the durability barrier: a durable relay's frozen
// data frame must be on disk before its first transmission. A no-op for
// volatile relays, heartbeats, and frames already persisted (including
// ones restored from a snapshot).
func (r *Relay) persistFrame() error {
	if r.pers == nil {
		return nil
	}
	r.mu.Lock()
	needed := r.frame != nil && !r.framePersisted
	r.mu.Unlock()
	if !needed {
		return nil
	}
	if _, err := r.agg.Persist(); err != nil {
		return err
	}
	r.mu.Lock()
	r.framePersisted = true
	r.mu.Unlock()
	return nil
}

// commitFrame advances past an acknowledged upstream frame.
func (r *Relay) commitFrame() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.frame.Heartbeat() {
		r.stats.Heartbeats++
	} else {
		r.seq = r.frame.Seq
		r.shadow = r.frameState
		r.appliedAtShadow = r.frameApplied
		r.stats.FramesAcked++
	}
	r.frame, r.frameState, r.framePersisted = nil, nil, false
}

// prepareResync reacts to an upstream StatusResync: burn the generation,
// drop the shadow, and cut a full replacing snapshot of the merged table.
// The relay's table is its complete subtree state (children follow the
// full-history resync contract themselves), so the snapshot is always
// available — no replay hook needed.
func (r *Relay) prepareResync(ack *Ack) error {
	r.mu.Lock()
	r.stats.Resyncs++
	if ack.Gen > r.gen {
		r.gen = ack.Gen
	}
	r.gen++
	r.seq = 0
	r.frame, r.frameState, r.framePersisted = nil, nil, false
	r.shadow, r.appliedAtShadow = nil, 0
	r.mu.Unlock()
	return r.cutFrame()
}

// Persist writes a snapshot of the full relay state (downstream table
// plus upstream shipping state) as a new epoch; see Aggregator.Persist.
func (r *Relay) Persist() (uint64, error) {
	if r.pers == nil {
		return 0, &ConfigError{Field: "DataDir", Reason: "relay is not durable; set DataDir"}
	}
	return r.agg.Persist()
}

// marshalState is the persistor's payload hook: the upstream shipping
// state captured under the relay lock, wrapped around the aggregator's
// table marshal. The two captures are not atomic with each other, but the
// persistor serializes whole persist cycles, and the cut-before-send
// barrier guarantees the newest snapshot at any transmission already
// contains that frame — an older pairing is only ever restored when the
// frame it lacks was never sent.
func (r *Relay) marshalState() ([]byte, error) {
	r.mu.Lock()
	buf := make([]byte, 0, 256)
	buf = binary.LittleEndian.AppendUint64(buf, r.gen)
	buf = binary.LittleEndian.AppendUint64(buf, r.seq)
	buf = binary.LittleEndian.AppendUint64(buf, r.appliedAtShadow)
	var err error
	if buf, err = appendOptionalSketch(buf, r.shadow); err != nil {
		r.mu.Unlock()
		return nil, err
	}
	if r.frame == nil {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
		buf = binary.LittleEndian.AppendUint64(buf, r.frameApplied)
		enc, err := r.frame.Encode()
		if err != nil {
			r.mu.Unlock()
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(enc)))
		buf = append(buf, enc...)
		if buf, err = appendOptionalSketch(buf, r.frameState); err != nil {
			r.mu.Unlock()
			return nil, err
		}
	}
	r.mu.Unlock()
	return r.agg.marshalState(stateKindRelay, buf)
}

// restoreUpstream rebuilds the upstream shipping state from a snapshot's
// upstream section. The frozen frame travels as its encoded wire bytes,
// so a restored retry is byte-identical to what the dead incarnation
// transmitted.
func (r *Relay) restoreUpstream(data []byte) error {
	fr := frameReader{data: data}
	gen, seq, appliedAtShadow := fr.u64(), fr.u64(), fr.u64()
	shadow, err := r.agg.readOptionalSketch(&fr)
	if err != nil {
		return err
	}
	var (
		frame        *Push
		frameState   salsa.Sketch
		frameApplied uint64
	)
	if fr.u8() == 1 {
		frameApplied = fr.u64()
		encLen := int(fr.u32())
		enc := fr.take(encLen)
		if enc == nil {
			return &SnapshotError{Reason: "upstream section: truncated frame"}
		}
		if frame, err = DecodePush(enc, r.agg.maxEnvelope); err != nil {
			return &SnapshotError{Reason: "upstream section: undecodable frozen frame", Err: err}
		}
		if frame.Agent != r.cfg.ID {
			return &SnapshotError{Reason: fmt.Sprintf("upstream section: frozen frame belongs to %q, this relay is %q", frame.Agent, r.cfg.ID)}
		}
		if frameState, err = r.agg.readOptionalSketch(&fr); err != nil {
			return err
		}
	}
	if fr.err != nil || fr.pos != len(fr.data) {
		return &SnapshotError{Reason: "upstream section: truncated or oversized"}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gen, r.seq, r.appliedAtShadow = gen, seq, appliedAtShadow
	r.shadow = shadow
	r.frame, r.frameState, r.frameApplied = frame, frameState, frameApplied
	r.framePersisted = frame != nil // it came from disk
	return nil
}
