package salsad

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"salsa"
)

// AggregatorConfig configures an Aggregator.
type AggregatorConfig struct {
	// Spec is the core sketch topology every agent must push (a plain
	// CountMin/ConservativeOf/CountSketch spec; agents may wrap it in
	// EpochShardedBy locally — the wire carries the core). Required.
	Spec salsa.Spec
	// LeaseTTL is how long after its last accepted contact an agent is
	// still considered alive. Zero means DefaultLeaseTTL.
	LeaseTTL time.Duration
	// MaxEnvelopeBytes caps the decompressed envelope of one push; zero
	// means DefaultMaxEnvelopeBytes.
	MaxEnvelopeBytes int
	// MaxCandidates caps the aggregator's heavy-hitter candidate pool;
	// zero means DefaultMaxCandidates. Once the pool is full, new
	// candidates are dropped (counted in Stats).
	MaxCandidates int
	// Now is the clock used for leases; nil means time.Now. Injectable so
	// the fault harness can drive virtual time.
	Now func() time.Time
}

const (
	// DefaultLeaseTTL is the liveness window applied when
	// AggregatorConfig.LeaseTTL is zero.
	DefaultLeaseTTL = 30 * time.Second
	// DefaultMaxCandidates bounds the heavy-hitter candidate pool when
	// AggregatorConfig.MaxCandidates is zero.
	DefaultMaxCandidates = 4096
)

// agentEntry is the aggregator's durable state for one agent id.
type agentEntry struct {
	gen     uint64
	lastSeq uint64
	cursor  uint64
	// cur accumulates the current generation's deltas.
	cur salsa.Sketch
	// base holds retired prior-generation contributions: when an agent
	// crash-restarts it cannot resend what it already shipped, so the old
	// generation's accumulation is kept and the fresh generation adds on
	// top. A FlagFull frame discards base — the agent vouches that its
	// envelope is the complete history.
	base     salsa.Sketch
	lastSeen time.Time
}

// AgentStatus is one row of the aggregator's membership table.
type AgentStatus struct {
	ID       string    `json:"id"`
	Gen      uint64    `json:"gen"`
	Seq      uint64    `json:"seq"`
	Cursor   uint64    `json:"cursor"`
	Alive    bool      `json:"alive"`
	LastSeen time.Time `json:"lastSeen"`
}

// AggregatorStats counts protocol outcomes since construction.
type AggregatorStats struct {
	Applied           uint64 `json:"applied"`
	Duplicates        uint64 `json:"duplicates"`
	Resyncs           uint64 `json:"resyncs"`
	Heartbeats        uint64 `json:"heartbeats"`
	Rejected          uint64 `json:"rejected"`
	CandidatesDropped uint64 `json:"candidatesDropped"`
}

// Aggregator merges delta pushes from many agents into per-agent
// contributions and answers cluster-wide queries from their fold. All
// methods are safe for concurrent use.
type Aggregator struct {
	leaseTTL    time.Duration
	maxEnvelope int
	maxCand     int
	now         func() time.Time

	mu sync.Mutex
	// ref is an empty sketch built from the configured spec: the
	// compatibility anchor every incoming envelope is checked against and
	// the zero value cluster queries start from.
	ref        salsa.Sketch
	agents     map[string]*agentEntry
	candidates map[uint64]struct{}
	stats      AggregatorStats
}

// NewAggregator builds an aggregator for the given core topology. The
// spec must be delta-capable (sum-merge CountMin/ConservativeOf or
// CountSketch).
func NewAggregator(cfg AggregatorConfig) (*Aggregator, error) {
	if cfg.Spec == nil {
		return nil, &ConfigError{Field: "Spec", Reason: "aggregator needs a topology Spec"}
	}
	ref, err := salsa.Build(cfg.Spec)
	if err != nil {
		return nil, err
	}
	if err := salsa.DeltaCapable(ref); err != nil {
		return nil, err
	}
	if core, err := salsa.DeltaCore(ref); err == nil {
		ref = core
	}
	a := &Aggregator{
		leaseTTL:    cfg.LeaseTTL,
		maxEnvelope: cfg.MaxEnvelopeBytes,
		maxCand:     cfg.MaxCandidates,
		now:         cfg.Now,
		ref:         ref,
		agents:      make(map[string]*agentEntry),
		candidates:  make(map[uint64]struct{}),
	}
	if a.leaseTTL <= 0 {
		a.leaseTTL = DefaultLeaseTTL
	}
	if a.maxEnvelope <= 0 {
		a.maxEnvelope = DefaultMaxEnvelopeBytes
	}
	if a.maxCand <= 0 {
		a.maxCand = DefaultMaxCandidates
	}
	if a.now == nil {
		a.now = time.Now
	}
	return a, nil
}

// MaxEnvelopeBytes returns the configured decompressed-envelope cap.
func (a *Aggregator) MaxEnvelopeBytes() int { return a.maxEnvelope }

// MaxFrameBytes returns the largest well-formed wire frame the aggregator
// accepts: the envelope cap (compression never has to shrink the payload
// for the frame to be valid, so the bound is conservative) plus the frame
// overhead. HTTP servers use it to size http.MaxBytesReader.
func (a *Aggregator) MaxFrameBytes() int64 {
	return int64(a.maxEnvelope) + maxFrameOverhead
}

// ApplyPush applies one decoded push frame and returns the ack the agent
// should see. An error means the frame itself was unusable (undecodable or
// incompatible envelope) — the transport should map it to a hard reject,
// not a retryable failure.
func (a *Aggregator) ApplyPush(p *Push) (*Ack, error) {
	// Decode and sanity-check the envelope before taking the lock.
	var delta salsa.Sketch
	if !p.Heartbeat() {
		if len(p.Envelope) > a.maxEnvelope {
			a.reject()
			return nil, &TooLargeError{Size: len(p.Envelope), Limit: a.maxEnvelope}
		}
		decoded, err := salsa.Unmarshal(p.Envelope)
		if err != nil {
			a.reject()
			return nil, fmt.Errorf("salsad: push envelope: %w", err)
		}
		core, err := salsa.DeltaCore(decoded)
		if err != nil {
			a.reject()
			return nil, err
		}
		delta = core
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	e := a.agents[p.Agent]

	ackFor := func(st Status, e *agentEntry) *Ack {
		ack := &Ack{Status: st}
		if e != nil {
			ack.Gen, ack.Seq, ack.Cursor = e.gen, e.lastSeq, e.cursor
		}
		return ack
	}

	if p.Heartbeat() {
		if e == nil || p.Gen != e.gen {
			// No state to renew (e.g. the aggregator restarted): the agent
			// must re-establish itself with a full snapshot.
			a.stats.Resyncs++
			return ackFor(StatusResync, e), nil
		}
		e.lastSeen = now
		a.stats.Heartbeats++
		return ackFor(StatusApplied, e), nil
	}

	switch {
	case e == nil || p.Gen > e.gen:
		// First contact, or a fresh incarnation of a known agent. A
		// generation must start at seq 1 — anything else means frames were
		// lost before we ever had state, so only a resync can recover.
		if p.Seq != 1 {
			a.stats.Resyncs++
			return ackFor(StatusResync, e), nil
		}
		if err := a.checkCompatibleLocked(delta); err != nil {
			a.stats.Rejected++
			return nil, err
		}
		if e == nil {
			e = &agentEntry{}
			a.agents[p.Agent] = e
		}
		if p.Full() {
			// The envelope is the agent's complete history: replace
			// everything.
			e.base = nil
		} else if e.cur != nil {
			// Crash-restart rejoin: the prior incarnation's shipped state
			// is retired and kept; the new generation adds on top.
			if e.base == nil {
				e.base = e.cur
			} else if err := salsa.MergeInto(e.base, e.cur); err != nil {
				a.stats.Rejected++
				return nil, err
			}
		}
		e.cur = delta
		e.gen, e.lastSeq, e.cursor = p.Gen, p.Seq, p.Cursor

	case p.Gen < e.gen:
		// A zombie incarnation (or a frame delayed from before a restart):
		// never apply; tell the sender its generation is burned.
		a.stats.Resyncs++
		return ackFor(StatusResync, e), nil

	case p.Seq <= e.lastSeq:
		// Retried or duplicated frame; retries are byte-identical by
		// protocol, so acknowledging without applying is exact.
		e.lastSeen = now
		a.stats.Duplicates++
		return ackFor(StatusDuplicate, e), nil

	case p.Seq == e.lastSeq+1:
		if p.Full() {
			e.base = nil
			e.cur = delta
		} else if e.cur == nil {
			e.cur = delta
		} else if err := salsa.MergeInto(e.cur, delta); err != nil {
			a.stats.Rejected++
			return nil, err
		}
		e.lastSeq, e.cursor = p.Seq, p.Cursor

	default:
		// Sequence gap: a frame is missing and can never be recovered
		// (the agent has moved its shadow past it only on ack, so a gap
		// means state diverged — e.g. the entry was built by a different
		// incarnation). Full resync rebuilds the contribution.
		a.stats.Resyncs++
		return ackFor(StatusResync, e), nil
	}

	e.lastSeen = now
	a.stats.Applied++
	a.addCandidatesLocked(p.Candidates)
	return ackFor(StatusApplied, e), nil
}

// reject counts a pre-lock rejection (envelope decode failures). Inside
// the locked state machine, increment stats.Rejected directly.
func (a *Aggregator) reject() {
	a.mu.Lock()
	a.stats.Rejected++
	a.mu.Unlock()
}

// checkCompatibleLocked verifies an incoming sketch against the reference
// topology by merging the (empty) reference into it: a zero-valued merge
// that runs the full geometry/seed/type compatibility checks.
func (a *Aggregator) checkCompatibleLocked(sk salsa.Sketch) error {
	if sk == nil {
		return nil
	}
	return salsa.MergeInto(sk, a.ref)
}

// addCandidatesLocked folds an agent's heavy-hitter candidates into the
// bounded pool.
func (a *Aggregator) addCandidatesLocked(items []uint64) {
	for _, it := range items {
		if _, ok := a.candidates[it]; ok {
			continue
		}
		if len(a.candidates) >= a.maxCand {
			a.stats.CandidatesDropped++
			continue
		}
		a.candidates[it] = struct{}{}
	}
}

// Resume returns the aggregator's durable frontier for an agent id, used
// by a restarting agent to pick a fresh generation and replay point.
func (a *Aggregator) Resume(agent string) ResumeInfo {
	a.mu.Lock()
	defer a.mu.Unlock()
	e := a.agents[agent]
	if e == nil {
		return ResumeInfo{}
	}
	return ResumeInfo{Known: true, Gen: e.gen, Seq: e.lastSeq, Cursor: e.cursor}
}

// mergedLocked folds every agent's contributions (retired base plus
// current generation) into a fresh sketch, in sorted agent order so the
// result is deterministic.
func (a *Aggregator) mergedLocked() (salsa.Sketch, error) {
	out, err := salsa.CloneSketch(a.ref)
	if err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(a.agents))
	for id := range a.agents {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		e := a.agents[id]
		if e.base != nil {
			if err := salsa.MergeInto(out, e.base); err != nil {
				return nil, err
			}
		}
		if e.cur != nil {
			if err := salsa.MergeInto(out, e.cur); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Snapshot returns the cluster-wide merged sketch (a private copy the
// caller owns).
func (a *Aggregator) Snapshot() (salsa.Sketch, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.mergedLocked()
}

// SnapshotBytes returns the cluster-wide merged sketch as a universal
// envelope.
func (a *Aggregator) SnapshotBytes() ([]byte, error) {
	s, err := a.Snapshot()
	if err != nil {
		return nil, err
	}
	return salsa.Marshal(s)
}

// Query returns the merged-sketch estimate for each item (CountSketch
// estimates may be negative; CountMin estimates are non-negative).
func (a *Aggregator) Query(items []uint64) ([]int64, error) {
	s, err := a.Snapshot()
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(items))
	for i, it := range items {
		out[i] = querySketch(s, it)
	}
	return out, nil
}

func querySketch(s salsa.Sketch, item uint64) int64 {
	switch t := s.(type) {
	case *salsa.CountMin:
		return int64(t.Query(item))
	case *salsa.CountSketch:
		return t.Query(item)
	default:
		return 0
	}
}

// Top evaluates the candidate pool against the merged sketch and returns
// the k items with the largest estimates, in deterministic
// (estimate desc, item asc) order.
func (a *Aggregator) Top(k int) ([]salsa.ItemCount, error) {
	a.mu.Lock()
	cands := make([]uint64, 0, len(a.candidates))
	for it := range a.candidates {
		cands = append(cands, it)
	}
	merged, err := a.mergedLocked()
	a.mu.Unlock()
	if err != nil {
		return nil, err
	}
	top := make([]salsa.ItemCount, 0, len(cands))
	for _, it := range cands {
		if est := querySketch(merged, it); est > 0 {
			top = append(top, salsa.ItemCount{Item: it, Count: est})
		}
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].Count != top[j].Count {
			return top[i].Count > top[j].Count
		}
		return top[i].Item < top[j].Item
	})
	if k > 0 && len(top) > k {
		top = top[:k]
	}
	return top, nil
}

// Agents returns the membership table in sorted id order; Alive reflects
// the lease: agents silent for longer than LeaseTTL are reported dead but
// their contributions are retained (counts must survive their reporter).
func (a *Aggregator) Agents() []AgentStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	out := make([]AgentStatus, 0, len(a.agents))
	for id, e := range a.agents {
		out = append(out, AgentStatus{
			ID:       id,
			Gen:      e.gen,
			Seq:      e.lastSeq,
			Cursor:   e.cursor,
			Alive:    now.Sub(e.lastSeen) <= a.leaseTTL,
			LastSeen: e.lastSeen,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats returns protocol counters since construction.
func (a *Aggregator) Stats() AggregatorStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}
