package salsad

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"salsa"
)

// AggregatorConfig configures an Aggregator.
type AggregatorConfig struct {
	// Spec is the core sketch topology every agent must push (a plain
	// CountMin/ConservativeOf/CountSketch spec; agents may wrap it in
	// EpochShardedBy locally — the wire carries the core). Required.
	Spec salsa.Spec
	// LeaseTTL is how long after its last accepted contact an agent is
	// still considered alive. Zero means DefaultLeaseTTL.
	LeaseTTL time.Duration
	// MaxEnvelopeBytes caps the decompressed envelope of one push; zero
	// means DefaultMaxEnvelopeBytes.
	MaxEnvelopeBytes int
	// MaxCandidates caps the aggregator's heavy-hitter candidate pool;
	// zero means DefaultMaxCandidates. Once the pool is full, new
	// candidates are dropped (counted in Stats).
	MaxCandidates int
	// Now is the clock used for leases; nil means time.Now. Injectable so
	// the fault harness can drive virtual time.
	Now func() time.Time
	// DataDir, when non-empty, makes the aggregator durable: its per-agent
	// table is snapshotted to crash-consistent files under this directory
	// and reloaded on construction, so a restarted aggregator serves
	// /v1/resume from persisted frontiers and agents continue from their
	// frozen-frame seq instead of resyncing.
	DataDir string
	// SnapshotEvery persists after this many applied data frames (checked
	// by MaybePersist). Zero means DefaultSnapshotEvery; 1 persists after
	// every applied frame, making a restart lose nothing.
	SnapshotEvery int
}

const (
	// DefaultLeaseTTL is the liveness window applied when
	// AggregatorConfig.LeaseTTL is zero.
	DefaultLeaseTTL = 30 * time.Second
	// DefaultMaxCandidates bounds the heavy-hitter candidate pool when
	// AggregatorConfig.MaxCandidates is zero.
	DefaultMaxCandidates = 4096
	// DefaultSnapshotEvery is the applied-frame persistence interval when
	// AggregatorConfig.SnapshotEvery is zero and a DataDir is set.
	DefaultSnapshotEvery = 64
)

// agentEntry is the aggregator's durable state for one agent id.
type agentEntry struct {
	gen     uint64
	lastSeq uint64
	cursor  uint64
	// cur accumulates the current generation's deltas.
	cur salsa.Sketch
	// base holds retired prior-generation contributions: when an agent
	// crash-restarts it cannot resend what it already shipped, so the old
	// generation's accumulation is kept and the fresh generation adds on
	// top. A FlagFull frame discards base — the agent vouches that its
	// envelope is the complete history.
	base     salsa.Sketch
	lastSeen time.Time
	// depth is the fan-in depth the sender reported (0 for edge agents,
	// ≥ 1 for relays pushing their merged table).
	depth byte
}

// AgentStatus is one row of the aggregator's membership table.
type AgentStatus struct {
	ID       string    `json:"id"`
	Gen      uint64    `json:"gen"`
	Seq      uint64    `json:"seq"`
	Cursor   uint64    `json:"cursor"`
	Depth    byte      `json:"depth"`
	Alive    bool      `json:"alive"`
	LastSeen time.Time `json:"lastSeen"`
}

// AggregatorStats counts protocol outcomes since construction; for a
// durable aggregator the counters are part of the snapshot, so they
// survive restarts and read as "since the cluster's first boot".
type AggregatorStats struct {
	Applied           uint64 `json:"applied"`
	Duplicates        uint64 `json:"duplicates"`
	Resyncs           uint64 `json:"resyncs"`
	Heartbeats        uint64 `json:"heartbeats"`
	Rejected          uint64 `json:"rejected"`
	CandidatesDropped uint64 `json:"candidatesDropped"`
	// Persists counts snapshots written; PersistErrors counts failed
	// writes and rejected restores.
	Persists      uint64 `json:"persists"`
	PersistErrors uint64 `json:"persistErrors"`
}

// Aggregator merges delta pushes from many agents into per-agent
// contributions and answers cluster-wide queries from their fold. All
// methods are safe for concurrent use.
type Aggregator struct {
	leaseTTL    time.Duration
	maxEnvelope int
	maxCand     int
	now         func() time.Time

	mu sync.Mutex
	// ref is an empty sketch built from the configured spec: the
	// compatibility anchor every incoming envelope is checked against and
	// the zero value cluster queries start from.
	ref        salsa.Sketch
	agents     map[string]*agentEntry
	candidates map[uint64]struct{}
	stats      AggregatorStats

	// pers is the durable-state machinery (nil without a DataDir). The
	// remaining fields track the last snapshot, guarded by mu.
	pers             *persistor
	snapEpoch        uint64
	snapAt           time.Time
	persistedApplied uint64
	restoreErr       error

	// upstreamStats, set once by NewRelay before any concurrency, samples
	// the relay's upstream delivery counters for StatsView.
	upstreamStats func() AgentStats
}

// NewAggregator builds an aggregator for the given core topology. The
// spec must be delta-capable (sum-merge CountMin/ConservativeOf or
// CountSketch).
func NewAggregator(cfg AggregatorConfig) (*Aggregator, error) {
	if cfg.Spec == nil {
		return nil, &ConfigError{Field: "Spec", Reason: "aggregator needs a topology Spec"}
	}
	ref, err := salsa.Build(cfg.Spec)
	if err != nil {
		return nil, err
	}
	if err := salsa.DeltaCapable(ref); err != nil {
		return nil, err
	}
	if core, err := salsa.DeltaCore(ref); err == nil {
		ref = core
	}
	a := &Aggregator{
		leaseTTL:    cfg.LeaseTTL,
		maxEnvelope: cfg.MaxEnvelopeBytes,
		maxCand:     cfg.MaxCandidates,
		now:         cfg.Now,
		ref:         ref,
		agents:      make(map[string]*agentEntry),
		candidates:  make(map[uint64]struct{}),
	}
	if a.leaseTTL <= 0 {
		a.leaseTTL = DefaultLeaseTTL
	}
	if a.maxEnvelope <= 0 {
		a.maxEnvelope = DefaultMaxEnvelopeBytes
	}
	if a.maxCand <= 0 {
		a.maxCand = DefaultMaxCandidates
	}
	if a.now == nil {
		a.now = time.Now
	}
	if cfg.DataDir != "" {
		store, err := OpenStore(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		every := cfg.SnapshotEvery
		if every <= 0 {
			every = DefaultSnapshotEvery
		}
		a.pers = &persistor{store: store, every: every, state: a.MarshalState}
		a.restore(store, stateKindAggregator)
	}
	return a, nil
}

// restore loads the newest valid snapshot into the aggregator. A missing
// snapshot is a first boot; an invalid or role-mismatched one is recorded
// (RestoreError, stats.PersistErrors) and the aggregator starts empty —
// the PR 8 resync path rebuilds state from the agents. It returns the
// opaque upstream section for relay snapshots.
func (a *Aggregator) restore(store *Store, wantKind byte) (upstream []byte, skipped int) {
	res, err := store.LoadLatest()
	if err != nil {
		if errors.Is(err, ErrNoSnapshot) {
			return nil, 0
		}
		a.noteRestoreError(err)
		return nil, 0
	}
	kind, upstream, err := a.restoreState(res.State)
	if err != nil {
		a.noteRestoreError(&SnapshotError{Path: res.Path, Reason: "restore", Err: err})
		return nil, len(res.Skipped)
	}
	if kind != wantKind {
		// A role mismatch (an aggregator pointed at a relay's data dir, or
		// vice versa) means the upstream/downstream split is wrong; the
		// table was already swapped in by restoreState, so reset it.
		a.mu.Lock()
		a.agents = make(map[string]*agentEntry)
		a.candidates = make(map[uint64]struct{})
		a.stats = AggregatorStats{}
		a.mu.Unlock()
		a.noteRestoreError(&SnapshotError{Path: res.Path,
			Reason: fmt.Sprintf("snapshot written by role kind %d, this node is kind %d", kind, wantKind)})
		return nil, len(res.Skipped)
	}
	a.mu.Lock()
	a.snapEpoch = res.Epoch
	a.snapAt = a.now()
	a.persistedApplied = a.stats.Applied
	a.mu.Unlock()
	return upstream, len(res.Skipped)
}

// noteRestoreError records a failed restore: typed error kept for
// RestoreError, counted in stats.
func (a *Aggregator) noteRestoreError(err error) {
	a.mu.Lock()
	a.restoreErr = err
	a.stats.PersistErrors++
	a.mu.Unlock()
}

// RestoreError returns the typed error of a failed snapshot restore (nil
// when the last construction restored cleanly or found no snapshot). The
// aggregator still serves — agents rebuild it through resyncs — but the
// operator should know the durable state was rejected.
func (a *Aggregator) RestoreError() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.restoreErr
}

// Store returns the snapshot store (nil without a DataDir).
func (a *Aggregator) Store() *Store {
	if a.pers == nil {
		return nil
	}
	return a.pers.store
}

// Persist writes the current durable state as a new snapshot epoch.
// Returns a *ConfigError when the aggregator has no DataDir.
func (a *Aggregator) Persist() (uint64, error) {
	if a.pers == nil {
		return 0, &ConfigError{Field: "DataDir", Reason: "aggregator is not durable; set DataDir"}
	}
	epoch, err := a.pers.persist()
	a.mu.Lock()
	defer a.mu.Unlock()
	if err != nil {
		a.stats.PersistErrors++
		return 0, err
	}
	a.snapEpoch = epoch
	a.snapAt = a.now()
	a.persistedApplied = a.stats.Applied
	a.stats.Persists++
	return epoch, nil
}

// MaybePersist persists when at least SnapshotEvery data frames have
// been applied since the last snapshot. It is a no-op (false, nil) for a
// non-durable aggregator; the transport or HTTP handler calls it after
// every applied push.
func (a *Aggregator) MaybePersist() (bool, error) {
	if a.pers == nil {
		return false, nil
	}
	a.mu.Lock()
	due := a.stats.Applied >= a.persistedApplied+uint64(a.pers.every)
	a.mu.Unlock()
	if !due {
		return false, nil
	}
	_, err := a.Persist()
	return err == nil, err
}

// MaxEnvelopeBytes returns the configured decompressed-envelope cap.
func (a *Aggregator) MaxEnvelopeBytes() int { return a.maxEnvelope }

// MaxFrameBytes returns the largest well-formed wire frame the aggregator
// accepts: the envelope cap (compression never has to shrink the payload
// for the frame to be valid, so the bound is conservative) plus the frame
// overhead. HTTP servers use it to size http.MaxBytesReader.
func (a *Aggregator) MaxFrameBytes() int64 {
	return int64(a.maxEnvelope) + maxFrameOverhead
}

// ApplyPush applies one decoded push frame and returns the ack the agent
// should see. An error means the frame itself was unusable (undecodable or
// incompatible envelope) — the transport should map it to a hard reject,
// not a retryable failure.
func (a *Aggregator) ApplyPush(p *Push) (*Ack, error) {
	// Decode and sanity-check the envelope before taking the lock.
	var delta salsa.Sketch
	if !p.Heartbeat() {
		if len(p.Envelope) > a.maxEnvelope {
			a.reject()
			return nil, &TooLargeError{Size: len(p.Envelope), Limit: a.maxEnvelope}
		}
		decoded, err := salsa.Unmarshal(p.Envelope)
		if err != nil {
			a.reject()
			return nil, fmt.Errorf("salsad: push envelope: %w", err)
		}
		core, err := salsa.DeltaCore(decoded)
		if err != nil {
			a.reject()
			return nil, err
		}
		delta = core
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	e := a.agents[p.Agent]

	ackFor := func(st Status, e *agentEntry) *Ack {
		ack := &Ack{Status: st}
		if e != nil {
			ack.Gen, ack.Seq, ack.Cursor = e.gen, e.lastSeq, e.cursor
		}
		return ack
	}

	if p.Heartbeat() {
		if e == nil || p.Gen != e.gen {
			// No state to renew (e.g. the aggregator restarted): the agent
			// must re-establish itself with a full snapshot.
			a.stats.Resyncs++
			return ackFor(StatusResync, e), nil
		}
		e.lastSeen = now
		a.stats.Heartbeats++
		return ackFor(StatusApplied, e), nil
	}

	switch {
	case e == nil || p.Gen > e.gen:
		// First contact, or a fresh incarnation of a known agent. A
		// generation must start at seq 1 — anything else means frames were
		// lost before we ever had state, so only a resync can recover.
		if p.Seq != 1 {
			a.stats.Resyncs++
			return ackFor(StatusResync, e), nil
		}
		if err := a.checkCompatibleLocked(delta); err != nil {
			a.stats.Rejected++
			return nil, err
		}
		if e == nil {
			e = &agentEntry{}
			a.agents[p.Agent] = e
		}
		if p.Full() {
			// The envelope is the agent's complete history: replace
			// everything.
			e.base = nil
		} else if e.cur != nil {
			// Crash-restart rejoin: the prior incarnation's shipped state
			// is retired and kept; the new generation adds on top.
			if e.base == nil {
				e.base = e.cur
			} else if err := salsa.MergeInto(e.base, e.cur); err != nil {
				a.stats.Rejected++
				return nil, err
			}
		}
		e.cur = delta
		e.gen, e.lastSeq, e.cursor = p.Gen, p.Seq, p.Cursor

	case p.Gen < e.gen:
		// A zombie incarnation (or a frame delayed from before a restart):
		// never apply; tell the sender its generation is burned.
		a.stats.Resyncs++
		return ackFor(StatusResync, e), nil

	case p.Seq <= e.lastSeq:
		// Retried or duplicated frame; retries are byte-identical by
		// protocol, so acknowledging without applying is exact.
		e.lastSeen = now
		a.stats.Duplicates++
		return ackFor(StatusDuplicate, e), nil

	case p.Seq == e.lastSeq+1:
		if p.Full() {
			e.base = nil
			e.cur = delta
		} else if e.cur == nil {
			e.cur = delta
		} else if err := salsa.MergeInto(e.cur, delta); err != nil {
			a.stats.Rejected++
			return nil, err
		}
		e.lastSeq, e.cursor = p.Seq, p.Cursor

	default:
		// Sequence gap: a frame is missing and can never be recovered
		// (the agent has moved its shadow past it only on ack, so a gap
		// means state diverged — e.g. the entry was built by a different
		// incarnation). Full resync rebuilds the contribution.
		a.stats.Resyncs++
		return ackFor(StatusResync, e), nil
	}

	e.lastSeen = now
	e.depth = p.Depth
	a.stats.Applied++
	a.addCandidatesLocked(p.Candidates)
	return ackFor(StatusApplied, e), nil
}

// reject counts a pre-lock rejection (envelope decode failures). Inside
// the locked state machine, increment stats.Rejected directly.
func (a *Aggregator) reject() {
	a.mu.Lock()
	a.stats.Rejected++
	a.mu.Unlock()
}

// checkCompatibleLocked verifies an incoming sketch against the reference
// topology by merging the (empty) reference into it: a zero-valued merge
// that runs the full geometry/seed/type compatibility checks.
func (a *Aggregator) checkCompatibleLocked(sk salsa.Sketch) error {
	if sk == nil {
		return nil
	}
	return salsa.MergeInto(sk, a.ref)
}

// addCandidatesLocked folds an agent's heavy-hitter candidates into the
// bounded pool.
func (a *Aggregator) addCandidatesLocked(items []uint64) {
	for _, it := range items {
		if _, ok := a.candidates[it]; ok {
			continue
		}
		if len(a.candidates) >= a.maxCand {
			a.stats.CandidatesDropped++
			continue
		}
		a.candidates[it] = struct{}{}
	}
}

// Resume returns the aggregator's durable frontier for an agent id, used
// by a restarting agent to pick a fresh generation and replay point.
func (a *Aggregator) Resume(agent string) ResumeInfo {
	a.mu.Lock()
	defer a.mu.Unlock()
	e := a.agents[agent]
	if e == nil {
		return ResumeInfo{}
	}
	return ResumeInfo{Known: true, Gen: e.gen, Seq: e.lastSeq, Cursor: e.cursor}
}

// mergedLocked folds every agent's contributions (retired base plus
// current generation) into a fresh sketch, in sorted agent order so the
// result is deterministic.
func (a *Aggregator) mergedLocked() (salsa.Sketch, error) {
	out, err := salsa.CloneSketch(a.ref)
	if err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(a.agents))
	for id := range a.agents {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		e := a.agents[id]
		if e.base != nil {
			if err := salsa.MergeInto(out, e.base); err != nil {
				return nil, err
			}
		}
		if e.cur != nil {
			if err := salsa.MergeInto(out, e.cur); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Snapshot returns the cluster-wide merged sketch (a private copy the
// caller owns).
func (a *Aggregator) Snapshot() (salsa.Sketch, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.mergedLocked()
}

// SnapshotBytes returns the cluster-wide merged sketch as a universal
// envelope.
func (a *Aggregator) SnapshotBytes() ([]byte, error) {
	s, err := a.Snapshot()
	if err != nil {
		return nil, err
	}
	return salsa.Marshal(s)
}

// Query returns the merged-sketch estimate for each item (CountSketch
// estimates may be negative; CountMin estimates are non-negative).
func (a *Aggregator) Query(items []uint64) ([]int64, error) {
	s, err := a.Snapshot()
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(items))
	for i, it := range items {
		out[i] = querySketch(s, it)
	}
	return out, nil
}

func querySketch(s salsa.Sketch, item uint64) int64 {
	switch t := s.(type) {
	case *salsa.CountMin:
		return int64(t.Query(item))
	case *salsa.CountSketch:
		return t.Query(item)
	default:
		return 0
	}
}

// Top evaluates the candidate pool against the merged sketch and returns
// the k items with the largest estimates, in deterministic
// (estimate desc, item asc) order.
func (a *Aggregator) Top(k int) ([]salsa.ItemCount, error) {
	a.mu.Lock()
	cands := make([]uint64, 0, len(a.candidates))
	for it := range a.candidates {
		cands = append(cands, it)
	}
	merged, err := a.mergedLocked()
	a.mu.Unlock()
	if err != nil {
		return nil, err
	}
	top := make([]salsa.ItemCount, 0, len(cands))
	for _, it := range cands {
		if est := querySketch(merged, it); est > 0 {
			top = append(top, salsa.ItemCount{Item: it, Count: est})
		}
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].Count != top[j].Count {
			return top[i].Count > top[j].Count
		}
		return top[i].Item < top[j].Item
	})
	if k > 0 && len(top) > k {
		top = top[:k]
	}
	return top, nil
}

// Agents returns the membership table in sorted id order; Alive reflects
// the lease: agents silent for longer than LeaseTTL are reported dead but
// their contributions are retained (counts must survive their reporter).
func (a *Aggregator) Agents() []AgentStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	out := make([]AgentStatus, 0, len(a.agents))
	for id, e := range a.agents {
		out = append(out, AgentStatus{
			ID:       id,
			Gen:      e.gen,
			Seq:      e.lastSeq,
			Cursor:   e.cursor,
			Depth:    e.depth,
			Alive:    now.Sub(e.lastSeen) <= a.leaseTTL,
			LastSeen: e.lastSeen,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats returns protocol counters since construction (since the first
// boot for durable aggregators, whose counters ride the snapshot).
func (a *Aggregator) Stats() AggregatorStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// StatsView is the operational /v1/stats payload: the protocol counters
// plus durability and topology gauges.
type StatsView struct {
	AggregatorStats
	// SnapshotEpoch is the epoch of the last persisted (or restored)
	// snapshot; 0 means never persisted.
	SnapshotEpoch uint64 `json:"snapshotEpoch"`
	// SnapshotAgeMs is how long ago that snapshot was written, in
	// milliseconds; -1 when the node is not durable or never persisted.
	SnapshotAgeMs int64 `json:"snapshotAgeMs"`
	// TierDepth is this node's fan-in depth: 1 + the deepest depth any
	// sender reported (1 for a first-tier aggregator over edge agents).
	TierDepth int `json:"tierDepth"`
	// Upstream carries the relay's upstream delivery counters; nil on a
	// plain aggregator.
	Upstream *AgentStats `json:"upstream,omitempty"`
}

// StatsView returns the operational gauges served on /v1/stats.
func (a *Aggregator) StatsView() StatsView {
	var up *AgentStats
	if a.upstreamStats != nil {
		s := a.upstreamStats()
		up = &s
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	v := StatsView{
		AggregatorStats: a.stats,
		SnapshotEpoch:   a.snapEpoch,
		SnapshotAgeMs:   -1,
		TierDepth:       a.depthLocked(),
	}
	if !a.snapAt.IsZero() {
		v.SnapshotAgeMs = a.now().Sub(a.snapAt).Milliseconds()
	}
	v.Upstream = up
	return v
}

// depthLocked is 1 + the deepest fan-in depth any sender reported.
func (a *Aggregator) depthLocked() int {
	depth := 0
	for _, e := range a.agents {
		if int(e.depth) > depth {
			depth = int(e.depth)
		}
	}
	return depth + 1
}

// appliedCount returns the applied-data-frame counter; the relay's
// dirtiness gauge (anything applied since the last upstream shadow means
// there is a delta worth shipping).
func (a *Aggregator) appliedCount() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats.Applied
}

// upstreamCut atomically captures everything a relay needs to freeze an
// upstream frame: the merged table, the applied-frame counter it
// reflects, the candidate pool (sorted, capped for the wire), and this
// node's tier depth.
func (a *Aggregator) upstreamCut() (merged salsa.Sketch, applied uint64, cands []uint64, depth int, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	merged, err = a.mergedLocked()
	if err != nil {
		return nil, 0, nil, 0, err
	}
	cands = make([]uint64, 0, len(a.candidates))
	for it := range a.candidates {
		cands = append(cands, it)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	if len(cands) > MaxPushCandidates {
		cands = cands[:MaxPushCandidates]
	}
	return merged, a.stats.Applied, cands, a.depthLocked(), nil
}
