package salsad

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"salsa"
)

// --- snapshot store ---

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	state := []byte("the aggregator table, serialized")
	epoch, err := s.Save(state)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("first epoch = %d, want 1", epoch)
	}
	res, err := s.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.State, state) || res.Epoch != 1 || len(res.Skipped) != 0 {
		t.Fatalf("bad load: epoch=%d skipped=%d", res.Epoch, len(res.Skipped))
	}
}

func TestStoreEpochsMonotonicAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Save([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Reopening must resume above the highest epoch on disk, never reuse
	// one.
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	epoch, err := s2.Save([]byte("after reopen"))
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 4 {
		t.Fatalf("epoch after reopen = %d, want 4", epoch)
	}
}

func TestStorePrunesOldSnapshots(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Save([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != snapKeep {
		t.Fatalf("retained %d files, want %d", len(entries), snapKeep)
	}
	// The newest must still load.
	res, err := s.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 5 || !bytes.Equal(res.State, []byte{4}) {
		t.Fatalf("newest after prune: epoch=%d", res.Epoch)
	}
}

func TestStoreEmptyDirIsErrNoSnapshot(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadLatest(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("want ErrNoSnapshot, got %v", err)
	}
}

func TestStoreRemovesTornTmpFiles(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, SnapshotFileName(7)+".tmp")
	if err := os.WriteFile(tmp, []byte("half-writ"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("torn .tmp file survived OpenStore")
	}
	// And the tmp name must not have claimed its epoch.
	if e := s.Epoch(); e != 0 {
		t.Fatalf("tmp file advanced the epoch to %d", e)
	}
}

// corrupt writes a snapshot, damages it with f, and returns the load
// error.
func corruptAndLoad(t *testing.T, f func(dir, path string) error) error {
	t.Helper()
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save([]byte("will be damaged")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, SnapshotFileName(1))
	if err := f(dir, path); err != nil {
		t.Fatal(err)
	}
	_, err = s.LoadLatest()
	return err
}

func TestStoreRejectsCorruption(t *testing.T) {
	cases := map[string]struct {
		damage func(dir, path string) error
		reason string
	}{
		"bit flip": {func(_, path string) error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			data[len(data)/2] ^= 1
			return os.WriteFile(path, data, 0o644)
		}, "checksum"},
		"truncated": {func(_, path string) error {
			return os.Truncate(path, 9)
		}, "truncated"},
		"emptied": {func(_, path string) error {
			return os.WriteFile(path, nil, 0o644)
		}, "truncated"},
		"stale-epoch replay": {func(dir, path string) error {
			// The epoch-1 bytes republished under the epoch-2 name: a backup
			// restored over a live data dir.
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(filepath.Join(dir, SnapshotFileName(2)), data, 0o644)
		}, "stale-epoch replay"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			err := corruptAndLoad(t, tc.damage)
			var se *SnapshotError
			if name == "stale-epoch replay" {
				// The forged newer file is rejected; the genuine epoch-1 file
				// still loads, with the rejection recorded.
				if err != nil {
					t.Fatalf("fallback failed: %v", err)
				}
				return
			}
			if !errors.As(err, &se) {
				t.Fatalf("want *SnapshotError, got %v", err)
			}
			if !strings.Contains(se.Reason, tc.reason) {
				t.Fatalf("reason %q does not mention %q", se.Reason, tc.reason)
			}
		})
	}
}

func TestStoreFallsBackPastCorruptNewest(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save([]byte("older, intact")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save([]byte("newer, doomed")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, SnapshotFileName(2))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff // break the checksum
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := s.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 || !bytes.Equal(res.State, []byte("older, intact")) {
		t.Fatalf("fallback loaded epoch %d", res.Epoch)
	}
	if len(res.Skipped) != 1 {
		t.Fatalf("skipped %d files, want 1", len(res.Skipped))
	}
	var se *SnapshotError
	if !errors.As(res.Skipped[0], &se) || se.Path != path {
		t.Fatalf("skipped error %v does not name the corrupt file", res.Skipped[0])
	}
}

func TestStoreAllCorruptReturnsNewestError(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save([]byte("two")); err != nil {
		t.Fatal(err)
	}
	for _, e := range []uint64{1, 2} {
		if err := os.Truncate(filepath.Join(dir, SnapshotFileName(e)), 3); err != nil {
			t.Fatal(err)
		}
	}
	var se *SnapshotError
	if _, err := s.LoadLatest(); !errors.As(err, &se) {
		t.Fatalf("want *SnapshotError, got %v", err)
	}
	if !strings.Contains(se.Path, SnapshotFileName(2)) {
		t.Fatalf("error names %q, want the newest file", se.Path)
	}
}

// --- aggregator state codec ---

// feedAggregator applies a few generations of pushes from two agents.
func feedAggregator(t *testing.T, a *Aggregator) {
	t.Helper()
	push(t, a, &Push{Agent: "a1", Gen: 1, Seq: 1, Cursor: 10,
		Candidates: []uint64{7, 9}, Envelope: envelopeFor(t, 7, 7, 9)})
	push(t, a, &Push{Agent: "a1", Gen: 1, Seq: 2, Cursor: 20, Envelope: envelopeFor(t, 9)})
	push(t, a, &Push{Agent: "a2", Gen: 3, Seq: 1, Cursor: 5, Flags: FlagFull,
		Envelope: envelopeFor(t, 1, 2, 3)})
	// A generation bump so a2 carries a retired base alongside cur.
	push(t, a, &Push{Agent: "a2", Gen: 4, Seq: 1, Cursor: 8, Envelope: envelopeFor(t, 4)})
}

func TestMarshalStateDeterministic(t *testing.T) {
	a := newTestAggregator(t, AggregatorConfig{})
	feedAggregator(t, a)
	b1, err := a.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := a.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("MarshalState is not deterministic")
	}
}

func TestRestoreStateByteIdentical(t *testing.T) {
	a := newTestAggregator(t, AggregatorConfig{})
	feedAggregator(t, a)
	state, err := a.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	wantSnap, err := a.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}

	b := newTestAggregator(t, AggregatorConfig{})
	kind, upstream, err := b.restoreState(state)
	if err != nil {
		t.Fatal(err)
	}
	if kind != stateKindAggregator || len(upstream) != 0 {
		t.Fatalf("kind=%d upstream=%d bytes", kind, len(upstream))
	}
	gotSnap, err := b.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotSnap, wantSnap) {
		t.Fatal("restored merged sketch differs from the original")
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	// Frontiers must match row for row (LastSeen is reset on restore).
	wa, wb := a.Agents(), b.Agents()
	if len(wa) != len(wb) {
		t.Fatalf("agent counts: %d vs %d", len(wa), len(wb))
	}
	for i := range wa {
		if wa[i].ID != wb[i].ID || wa[i].Gen != wb[i].Gen || wa[i].Seq != wb[i].Seq || wa[i].Cursor != wb[i].Cursor {
			t.Fatalf("row %d diverged: %+v vs %+v", i, wa[i], wb[i])
		}
	}
}

func TestRestoreStateRejectsGarbage(t *testing.T) {
	a := newTestAggregator(t, AggregatorConfig{})
	good, err := a.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          nil,
		"bad magic":      append([]byte{9, 9, 9, 9}, good[4:]...),
		"truncated":      good[:len(good)/2],
		"trailing bytes": append(append([]byte{}, good...), 1, 2, 3),
	}
	for name, data := range cases {
		b := newTestAggregator(t, AggregatorConfig{})
		var se *SnapshotError
		if _, _, err := b.restoreState(data); !errors.As(err, &se) {
			t.Fatalf("%s: want *SnapshotError, got %v", name, err)
		}
	}
}

func TestRestoreStateRejectsIncompatibleTopology(t *testing.T) {
	a := newTestAggregator(t, AggregatorConfig{})
	feedAggregator(t, a)
	state, err := a.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	// Same payload, different cluster geometry: the sketch compat check
	// must reject the restore rather than merge mismatched counters.
	b := newTestAggregator(t, AggregatorConfig{
		Spec: salsa.CountMinOf(salsa.Options{Width: 1 << 9, Merge: salsa.MergeSum, Seed: 11}),
	})
	var se *SnapshotError
	if _, _, err := b.restoreState(state); !errors.As(err, &se) {
		t.Fatalf("want *SnapshotError, got %v", err)
	}
}

// --- durable aggregator end to end ---

func TestDurableAggregatorRestartZeroResync(t *testing.T) {
	dir := t.TempDir()
	a := newTestAggregator(t, AggregatorConfig{DataDir: dir, SnapshotEvery: 1})
	feedAggregator(t, a)
	if _, err := a.MaybePersist(); err != nil {
		t.Fatal(err)
	}
	wantSnap, err := a.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}

	// kill -9, restart over the same data dir.
	b := newTestAggregator(t, AggregatorConfig{DataDir: dir, SnapshotEvery: 1})
	if err := b.RestoreError(); err != nil {
		t.Fatal(err)
	}
	gotSnap, err := b.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotSnap, wantSnap) {
		t.Fatal("restart lost state")
	}
	// /v1/resume serves persisted frontiers...
	if info := b.Resume("a1"); !info.Known || info.Gen != 1 || info.Seq != 2 || info.Cursor != 20 {
		t.Fatalf("resume from snapshot: %+v", info)
	}
	// ...and the next in-sequence frame applies with NO resync.
	ack := push(t, b, &Push{Agent: "a1", Gen: 1, Seq: 3, Cursor: 30, Envelope: envelopeFor(t, 5)})
	if ack.Status != StatusApplied {
		t.Fatalf("continuation frame: %v", ack.Status)
	}
	if b.Stats().Resyncs != a.Stats().Resyncs {
		t.Fatal("durable restart caused resyncs")
	}
}

func TestDurableAggregatorCorruptSnapshotFallsBackToResync(t *testing.T) {
	dir := t.TempDir()
	a := newTestAggregator(t, AggregatorConfig{DataDir: dir, SnapshotEvery: 1})
	feedAggregator(t, a)
	if _, err := a.Persist(); err != nil {
		t.Fatal(err)
	}
	// Damage every snapshot on disk.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if err := os.Truncate(filepath.Join(dir, ent.Name()), 5); err != nil {
			t.Fatal(err)
		}
	}
	b := newTestAggregator(t, AggregatorConfig{DataDir: dir, SnapshotEvery: 1})
	var se *SnapshotError
	if err := b.RestoreError(); !errors.As(err, &se) {
		t.Fatalf("want typed *SnapshotError, got %v", err)
	}
	if b.Stats().PersistErrors == 0 {
		t.Fatal("rejected restore not counted")
	}
	// The aggregator still serves: the PR 8 resync path rebuilds state.
	ack := push(t, b, &Push{Agent: "a1", Gen: 1, Seq: 3, Cursor: 30, Envelope: envelopeFor(t, 5)})
	if ack.Status != StatusResync {
		t.Fatalf("stale agent should be told to resync, got %v", ack.Status)
	}
	ack = push(t, b, &Push{Agent: "a1", Gen: 2, Seq: 1, Cursor: 30, Flags: FlagFull,
		Envelope: envelopeFor(t, 7, 7, 9, 9, 5)})
	if ack.Status != StatusApplied {
		t.Fatalf("resync snapshot: %v", ack.Status)
	}
}

func TestDurableAggregatorRoleMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	// A relay persisted here...
	r, err := NewRelay(RelayConfig{ID: "r", Spec: testSpec(), Upstream: &directTransport{agg: newTestAggregator(t, AggregatorConfig{})}, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Persist(); err != nil {
		t.Fatal(err)
	}
	// ...and an aggregator pointed at the same dir must reject it and
	// start empty.
	b := newTestAggregator(t, AggregatorConfig{DataDir: dir})
	var se *SnapshotError
	if err := b.RestoreError(); !errors.As(err, &se) {
		t.Fatalf("want *SnapshotError, got %v", err)
	}
	if len(b.Agents()) != 0 {
		t.Fatal("mismatched-role table was not reset")
	}
}

func TestStatsViewGauges(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	a := newTestAggregator(t, AggregatorConfig{DataDir: dir, SnapshotEvery: 1,
		Now: func() time.Time { now = now.Add(time.Second); return now }})
	v := a.StatsView()
	if v.SnapshotEpoch != 0 || v.SnapshotAgeMs != -1 || v.TierDepth != 1 {
		t.Fatalf("fresh gauges: %+v", v)
	}
	push(t, a, &Push{Agent: "r1", Gen: 1, Seq: 1, Flags: FlagRelay, Depth: 2,
		Envelope: envelopeFor(t, 1)})
	if _, err := a.MaybePersist(); err != nil {
		t.Fatal(err)
	}
	v = a.StatsView()
	if v.SnapshotEpoch == 0 || v.SnapshotAgeMs < 0 {
		t.Fatalf("post-persist gauges: %+v", v)
	}
	if v.TierDepth != 3 { // 1 + the relay's reported depth 2
		t.Fatalf("tier depth = %d, want 3", v.TierDepth)
	}
	if v.Persists != 1 {
		t.Fatalf("persists = %d", v.Persists)
	}
}
