package salsad

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// HTTP surface of the aggregation tier:
//
//	POST /v1/push      binary push frame  → JSON Ack (200 applied/duplicate, 409 resync)
//	GET  /v1/snapshot  → universal envelope of the cluster-wide merged sketch
//	GET  /v1/query?item=N&item=M…  → JSON {"estimates": {...}}
//	GET  /v1/top?k=K   → JSON heavy-hitter candidates vs the merged sketch
//	GET  /v1/agents    → JSON membership/lease table
//	GET  /v1/resume?agent=ID  → JSON ResumeInfo
//	GET  /v1/stats     → JSON protocol counters + durability/topology gauges
//
// The push decode path is bounded end to end before salsa.Unmarshal ever
// sees a byte: http.MaxBytesReader caps the request body at the frame
// bound, and DecodePush checks the declared envelope size against the
// configured cap (typed *TooLargeError → 413) before decompressing.

// Handler returns the aggregator's HTTP surface.
func Handler(a *Aggregator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/push", func(w http.ResponseWriter, r *http.Request) {
		handlePush(a, w, r)
	})
	mux.HandleFunc("GET /v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		blob, err := a.SnapshotBytes()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(blob)
	})
	mux.HandleFunc("GET /v1/query", func(w http.ResponseWriter, r *http.Request) {
		raw := r.URL.Query()["item"]
		items := make([]uint64, 0, len(raw))
		for _, s := range raw {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad item %q", s))
				return
			}
			items = append(items, v)
		}
		ests, err := a.Query(items)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		out := make(map[string]int64, len(items))
		for i, it := range items {
			out[strconv.FormatUint(it, 10)] = ests[i]
		}
		writeJSON(w, http.StatusOK, map[string]any{"estimates": out})
	})
	mux.HandleFunc("GET /v1/top", func(w http.ResponseWriter, r *http.Request) {
		k := 10
		if s := r.URL.Query().Get("k"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v <= 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad k %q", s))
				return
			}
			k = v
		}
		top, err := a.Top(k)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		type entry struct {
			Item  uint64 `json:"item"`
			Count int64  `json:"count"`
		}
		out := make([]entry, len(top))
		for i, t := range top {
			out[i] = entry{Item: t.Item, Count: t.Count}
		}
		writeJSON(w, http.StatusOK, map[string]any{"top": out})
	})
	mux.HandleFunc("GET /v1/agents", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"agents": a.Agents()})
	})
	mux.HandleFunc("GET /v1/resume", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("agent")
		if id == "" || len(id) > MaxAgentIDLen {
			httpError(w, http.StatusBadRequest, errors.New("missing or oversized agent id"))
			return
		}
		writeJSON(w, http.StatusOK, a.Resume(id))
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, a.StatsView())
	})
	return mux
}

func handlePush(a *Aggregator, w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, a.MaxFrameBytes())
	data, err := io.ReadAll(body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, http.StatusRequestEntityTooLarge,
				&TooLargeError{Size: int(mbe.Limit) + 1, Limit: int(mbe.Limit)})
			return
		}
		httpError(w, http.StatusBadRequest, err)
		return
	}
	p, err := DecodePush(data, a.MaxEnvelopeBytes())
	if err != nil {
		var tle *TooLargeError
		if errors.As(err, &tle) {
			httpError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ack, err := a.ApplyPush(p)
	if err != nil {
		var tle *TooLargeError
		if errors.As(err, &tle) {
			httpError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		httpError(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusOK
	if ack.Status == StatusResync {
		status = http.StatusConflict
	}
	if ack.Status == StatusApplied {
		// Durability rides the apply path: every SnapshotEvery applied
		// frames the table is snapshotted. Failures are counted in the
		// aggregator's PersistErrors gauge; the ack is not affected.
		a.MaybePersist() //nolint:errcheck // recorded in stats
	}
	writeJSON(w, status, ack)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// HTTPTransport delivers frames to an aggregator over HTTP.
type HTTPTransport struct {
	// Base is the aggregator's base URL, e.g. "http://10.0.0.5:7777".
	Base string
	// Client is the HTTP client; nil means a client with a 10s timeout.
	Client *http.Client
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return &http.Client{Timeout: 10 * time.Second}
}

// A StatusError reports an aggregator response with a non-success HTTP
// status, preserving the status line and trimmed body for inspection.
type StatusError struct {
	// Op is the rejected operation: "push" or "resume".
	Op string
	// Status is the HTTP status line (e.g. "503 Service Unavailable").
	Status string
	// Body is the trimmed response body.
	Body string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("salsad: %s rejected: %s: %s", e.Op, e.Status, e.Body)
}

// Push implements Transport.
func (t *HTTPTransport) Push(ctx context.Context, p *Push) (*Ack, error) {
	enc, err := p.Encode()
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.Base+"/v1/push", bytes.NewReader(enc))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := t.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusConflict:
		var ack Ack
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&ack); err != nil {
			return nil, fmt.Errorf("salsad: bad ack: %w", err)
		}
		return &ack, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return nil, &StatusError{Op: "push", Status: resp.Status, Body: string(bytes.TrimSpace(msg))}
	}
}

// Resume implements Transport.
func (t *HTTPTransport) Resume(ctx context.Context, agent string) (*ResumeInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		t.Base+"/v1/resume?agent="+url.QueryEscape(agent), nil)
	if err != nil {
		return nil, err
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return nil, &StatusError{Op: "resume", Status: resp.Status, Body: string(bytes.TrimSpace(msg))}
	}
	var info ResumeInfo
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&info); err != nil {
		return nil, fmt.Errorf("salsad: bad resume info: %w", err)
	}
	return &info, nil
}
