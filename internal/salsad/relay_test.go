package salsad

import (
	"bytes"
	"context"
	"errors"
	"os"
	"testing"
	"time"
)

// corruptFile flips one bit in the middle of the file at path.
func corruptFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	data[len(data)/2] ^= 0x01
	return os.WriteFile(path, data, 0o644)
}

// newTestRelay wires a relay over a directTransport to the given root.
func newTestRelay(t *testing.T, root *Aggregator, cfg RelayConfig) (*Relay, *directTransport) {
	t.Helper()
	tr := &directTransport{agg: root}
	if cfg.ID == "" {
		cfg.ID = "relay-1"
	}
	if cfg.Spec == nil {
		cfg.Spec = testSpec()
	}
	cfg.Upstream = tr
	if cfg.Sleep == nil {
		cfg.Sleep = func(time.Duration) {}
	}
	r, err := NewRelay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, tr
}

// feedRelay pushes agent frames into the relay's downstream table.
func feedRelay(t *testing.T, r *Relay, agent string, gen, seq uint64, items ...uint64) {
	t.Helper()
	flags := byte(0)
	if seq == 1 {
		flags = FlagFull
	}
	ack := push(t, r.Agg(), &Push{Agent: agent, Gen: gen, Seq: seq, Flags: flags,
		Envelope: envelopeFor(t, items...)})
	if ack.Status != StatusApplied {
		t.Fatalf("feed %s gen %d seq %d: %v", agent, gen, seq, ack.Status)
	}
}

func TestRelayDeltaCycle(t *testing.T) {
	root := newTestAggregator(t, AggregatorConfig{})
	r, _ := newTestRelay(t, root, RelayConfig{Generation: 1})
	ctx := context.Background()

	feedRelay(t, r, "e1", 1, 1, 10, 10, 11)
	feedRelay(t, r, "e2", 1, 1, 12)
	if err := r.PushOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if !r.Synced() {
		t.Fatal("relay not synced after clean push")
	}
	// Second round is a delta: only the new traffic crosses the uplink.
	feedRelay(t, r, "e1", 1, 2, 10)
	if err := r.PushOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if got := queryOne(t, root, 10); got != 3 {
		t.Fatalf("root count(10) = %d, want 3", got)
	}
	// Root sees the relay's merged table as one contribution; bytes must
	// match the relay's own snapshot.
	want, err := r.Agg().SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := root.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("root diverged from the relay's table")
	}
	st := r.Stats()
	if st.FramesAcked != 2 || st.Resyncs != 0 {
		t.Fatalf("relay stats: %+v", st)
	}
}

func TestRelayIdleHeartbeat(t *testing.T) {
	root := newTestAggregator(t, AggregatorConfig{})
	r, _ := newTestRelay(t, root, RelayConfig{Generation: 1})
	ctx := context.Background()
	feedRelay(t, r, "e1", 1, 1, 5)
	if err := r.PushOnce(ctx); err != nil {
		t.Fatal(err)
	}
	// Nothing new applied: the next rounds are lease-renewing heartbeats,
	// not data frames.
	for i := 0; i < 3; i++ {
		if err := r.PushOnce(ctx); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.Heartbeats != 3 || st.FramesAcked != 1 {
		t.Fatalf("stats after idle rounds: %+v", st)
	}
}

func TestRelayDepthGauge(t *testing.T) {
	root := newTestAggregator(t, AggregatorConfig{})
	r, _ := newTestRelay(t, root, RelayConfig{Generation: 1})
	feedRelay(t, r, "e1", 1, 1, 5)
	if err := r.PushOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Edge agents are depth 0, the relay's table is depth 1, the root
	// above it depth 2.
	if d := r.Agg().StatsView().TierDepth; d != 1 {
		t.Fatalf("relay tier depth = %d, want 1", d)
	}
	if d := root.StatsView().TierDepth; d != 2 {
		t.Fatalf("root tier depth = %d, want 2", d)
	}
	agents := root.Agents()
	if len(agents) != 1 || agents[0].Depth != 1 {
		t.Fatalf("root membership: %+v", agents)
	}
	// The relay's upstream counters surface on its stats view.
	if up := r.Agg().StatsView().Upstream; up == nil || up.FramesAcked != 1 {
		t.Fatalf("upstream stats view: %+v", up)
	}
}

func TestRelayResyncAfterRootWipe(t *testing.T) {
	root := newTestAggregator(t, AggregatorConfig{})
	r, tr := newTestRelay(t, root, RelayConfig{Generation: 1})
	ctx := context.Background()
	feedRelay(t, r, "e1", 1, 1, 1, 2, 3)
	if err := r.PushOnce(ctx); err != nil {
		t.Fatal(err)
	}
	// The root restarts without durable state.
	newRoot := newTestAggregator(t, AggregatorConfig{})
	tr.agg = newRoot
	feedRelay(t, r, "e1", 1, 2, 4)
	if err := r.PushOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if r.Stats().Resyncs != 1 {
		t.Fatalf("resyncs = %d, want 1", r.Stats().Resyncs)
	}
	// The full replacing snapshot rebuilt everything, not just the delta.
	want, err := r.Agg().SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := newRoot.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resync did not rebuild the root")
	}
}

func TestRelayFreshGenerationResolvedFromUpstream(t *testing.T) {
	root := newTestAggregator(t, AggregatorConfig{})
	// A dead incarnation left gen 5 at the root.
	push(t, root, &Push{Agent: "relay-1", Gen: 5, Seq: 1, Flags: FlagFull | FlagRelay,
		Depth: 1, Envelope: envelopeFor(t, 9)})
	r, _ := newTestRelay(t, root, RelayConfig{}) // Generation 0: resolve via Resume
	feedRelay(t, r, "e1", 1, 1, 9)
	if err := r.PushOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if g := r.Gen(); g != 6 {
		t.Fatalf("resolved generation %d, want 6", g)
	}
	// Its first frame replaced the dead incarnation's contribution.
	if got := queryOne(t, root, 9); got != 1 {
		t.Fatalf("count(9) = %d, want 1 (replace, not add)", got)
	}
}

func TestRelayDurableRestartRetriesFrozenFrame(t *testing.T) {
	dir := t.TempDir()
	root := newTestAggregator(t, AggregatorConfig{})
	r, tr := newTestRelay(t, root, RelayConfig{Generation: 1, DataDir: dir, MaxAttempts: 1})
	ctx := context.Background()
	feedRelay(t, r, "e1", 1, 1, 1, 1, 2)

	// The uplink eats every attempt: the frame is cut, persisted (the
	// durability barrier), transmitted, and lost.
	tr.failN = 99
	if err := r.PushOnce(ctx); !errors.Is(err, ErrPushFailed) {
		t.Fatalf("want ErrPushFailed, got %v", err)
	}
	wantFrame, err := r.currentFrame().Encode()
	if err != nil {
		t.Fatal(err)
	}

	// kill -9; a new incarnation restores table AND frozen frame.
	r2, tr2 := newTestRelay(t, root, RelayConfig{Generation: 1, DataDir: dir})
	if err := r2.RestoreError(); err != nil {
		t.Fatal(err)
	}
	gotFrame, err := r2.currentFrame().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotFrame, wantFrame) {
		t.Fatal("restored frame is not byte-identical — retry dedup would break")
	}
	tr2.failN = 0
	if err := r2.PushOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if r2.Stats().Resyncs != 0 {
		t.Fatal("durable relay restart caused a resync")
	}
	want, err := r2.Agg().SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := root.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("root diverged after durable relay restart")
	}
}

func TestRelayDistrustsSkippedSnapshots(t *testing.T) {
	dir := t.TempDir()
	root := newTestAggregator(t, AggregatorConfig{})
	r, _ := newTestRelay(t, root, RelayConfig{Generation: 1, DataDir: dir})
	ctx := context.Background()
	feedRelay(t, r, "e1", 1, 1, 1, 2)
	if err := r.PushOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Persist(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the NEWEST snapshot: the restart falls back to an older one
	// whose frontier may predate transmitted frames — it must not be
	// trusted for dedup.
	store := r.Agg().Store()
	res, err := store.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if err := corruptFile(res.Path); err != nil {
		t.Fatal(err)
	}

	r2, _ := newTestRelay(t, root, RelayConfig{Generation: 1, DataDir: dir})
	if g := r2.Gen(); g != 0 {
		t.Fatalf("gen = %d, want the resolve-fresh sentinel 0", g)
	}
	feedRelay(t, r2, "e1", 2, 1, 1, 2, 3)
	if err := r2.PushOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if g := r2.Gen(); g <= 1 {
		t.Fatalf("rejoined under gen %d; the persisted generation was not burned", g)
	}
	// Convergence via the full-replacement path.
	want, err := r2.Agg().SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := root.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("root diverged after distrusted restore")
	}
}

func TestRelayPersistRidesDownstreamApplies(t *testing.T) {
	dir := t.TempDir()
	root := newTestAggregator(t, AggregatorConfig{})
	r, _ := newTestRelay(t, root, RelayConfig{Generation: 1, DataDir: dir, SnapshotEvery: 2})
	feedRelay(t, r, "e1", 1, 1, 1)
	feedRelay(t, r, "e1", 1, 2, 2)
	// The transport/handler persistence tick.
	if ok, err := r.Agg().MaybePersist(); err != nil || !ok {
		t.Fatalf("MaybePersist: ok=%v err=%v", ok, err)
	}
	// A relay restarted from that snapshot has the table without any
	// upstream push ever having happened.
	r2, _ := newTestRelay(t, root, RelayConfig{Generation: 1, DataDir: dir})
	if err := r2.RestoreError(); err != nil {
		t.Fatal(err)
	}
	if got := queryOne(t, r2.Agg(), 2); got != 1 {
		t.Fatalf("restored table count(2) = %d, want 1", got)
	}
	if info := r2.Agg().Resume("e1"); !info.Known || info.Seq != 2 {
		t.Fatalf("restored downstream frontier: %+v", info)
	}
}

func TestNewRelayRejects(t *testing.T) {
	tr := &directTransport{agg: newTestAggregator(t, AggregatorConfig{})}
	var ce *ConfigError
	if _, err := NewRelay(RelayConfig{Spec: testSpec(), Upstream: tr}); !errors.As(err, &ce) {
		t.Fatalf("missing id: %v", err)
	}
	if _, err := NewRelay(RelayConfig{ID: "r", Spec: testSpec()}); !errors.As(err, &ce) {
		t.Fatalf("missing upstream: %v", err)
	}
	if _, err := NewRelay(RelayConfig{ID: "r", Upstream: tr}); !errors.As(err, &ce) {
		t.Fatalf("missing spec: %v", err)
	}
}

func TestPushRelayDepthRoundTrip(t *testing.T) {
	p := &Push{Agent: "r", Gen: 2, Seq: 3, Cursor: 9, Flags: FlagRelay | FlagFull,
		Depth: 4, Envelope: envelopeFor(t, 1)}
	enc, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	q, err := DecodePush(enc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Relay() || q.Depth != 4 {
		t.Fatalf("depth lost: relay=%v depth=%d", q.Relay(), q.Depth)
	}
	// Depth without the relay flag is malformed by construction.
	if _, err := (&Push{Agent: "r", Depth: 1, Flags: FlagHeartbeat}).Encode(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("depth on non-relay frame: %v", err)
	}
}

func TestAgentJitterSeedDeterminism(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		var out []time.Duration
		ag := newTestAgent(t, AgentConfig{ID: "j", Transport: &directTransport{agg: newTestAggregator(t, AggregatorConfig{})}, JitterSeed: seed})
		for i := 0; i < 8; i++ {
			out = append(out, ag.backoff(i%3))
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded schedules diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
