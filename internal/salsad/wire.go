// Package salsad implements the distributed aggregation tier: edge agents
// ingest locally (through the epoch layer) and periodically push delta
// envelopes (current − shadow, via SubtractFrom) to an aggregator that
// merges them into per-agent contributions and serves cluster-wide
// snapshot, query, and heavy-hitter endpoints.
//
// The protocol is built to survive a faulty network. Pushes are idempotent
// — each carries a (generation, sequence) pair and the aggregator applies
// a frame at most once, so retried or duplicated messages never double
// count. The agent freezes the in-flight frame until it is acknowledged
// and keeps accumulating new traffic in its live sketch, so a retry is
// byte-identical (which is what makes sequence-number dedup sound) and the
// state buffered through a partition is one delta envelope — O(sketch),
// never O(outage): when the frozen frame finally lands, the next cut
// coalesces the whole outage into a single delta, because
// (c₁−shadow) ⊎ (c₂−c₁) = c₂−shadow. Crashed agents rejoin with a fresh
// generation (the aggregator retires the prior generation's contribution
// and adds the new one), agents the aggregator has no state for are told
// to resync with a full-state replacing snapshot, and leases flag agents
// that stopped reporting.
//
// The wire format is a small binary frame (magic, version, flags, ids,
// candidates) around a flate-compressed universal envelope, so the bytes
// on the wire track how much changed, not how wide the sketch is. The
// decode path is hardened: every length is bounded before any allocation
// or decompression, and an oversized envelope is reported as a typed
// *TooLargeError before salsa.Unmarshal ever sees the body.
//
// internal/faulttest proves the design: a seeded deterministic transport
// injects drops, duplicates, reorders, delays, partitions, and
// crash-restarts, and asserts that a quiesced aggregator is byte-identical
// to a no-fault sequential reference.
//
//salsa:typederrors
package salsad

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

const (
	frameMagic   uint32 = 0x44534c53 // "SLSD" little-endian
	frameVersion byte   = 1

	// FlagFull marks a full-state snapshot: the envelope is the agent's
	// complete history and replaces every prior contribution stored for
	// that agent, across all generations. Sent on resync.
	FlagFull byte = 1 << 0
	// FlagHeartbeat marks a data-free lease renewal; the frame carries no
	// envelope and does not consume a sequence number.
	FlagHeartbeat byte = 1 << 1
	// FlagRelay marks a frame pushed by a relay (an aggregator shipping
	// its merged table upstream). Relay frames carry one extra Depth byte
	// so every tier can report how deep the fan-in tree below it is.
	FlagRelay byte = 1 << 2

	flagsKnown = FlagFull | FlagHeartbeat | FlagRelay

	// MaxAgentIDLen bounds the agent identifier on the wire.
	MaxAgentIDLen = 128
	// MaxPushCandidates bounds the heavy-hitter candidate list a single
	// push may carry.
	MaxPushCandidates = 512
	// DefaultMaxEnvelopeBytes is the aggregator's default cap on the
	// decompressed envelope carried by one push.
	DefaultMaxEnvelopeBytes = 8 << 20

	// maxFrameOverhead bounds the frame bytes around the compressed
	// envelope: fixed header (incl. the optional relay depth byte) plus
	// maximal agent id and candidate list.
	maxFrameOverhead = 4 + 1 + 1 + 1 + 2 + MaxAgentIDLen + 8*3 + 2 + 8*MaxPushCandidates + 4 + 4
)

// A ConfigError reports an AgentConfig or AggregatorConfig field the
// constructors reject.
type ConfigError struct {
	// Field names the offending config field.
	Field string
	// Reason states the violated constraint.
	Reason string
}

func (e *ConfigError) Error() string { return "salsad: " + e.Reason }

// ErrBadFrame is returned when decoding bytes that are not a well-formed
// push frame.
var ErrBadFrame = errors.New("salsad: malformed push frame")

// A TooLargeError reports a push whose (decompressed) envelope exceeds the
// aggregator's configured cap. It is produced from the frame's declared
// length, before any envelope allocation, decompression, or decoding.
type TooLargeError struct {
	// Size is the length the frame declared or presented.
	Size int
	// Limit is the configured maximum.
	Limit int
}

func (e *TooLargeError) Error() string {
	return fmt.Sprintf("salsad: envelope of %d bytes exceeds the %d-byte cap", e.Size, e.Limit)
}

// Push is one agent→aggregator message: a delta, full-state, or heartbeat
// frame.
type Push struct {
	// Agent identifies the pushing agent; contributions and idempotency
	// state are tracked per agent id.
	Agent string
	// Gen is the agent incarnation. A crash-restarted agent runs under a
	// fresh, strictly larger generation.
	Gen uint64
	// Seq numbers data frames 1,2,3,... within a generation. Heartbeats
	// echo the current value without consuming a number.
	Seq uint64
	// Cursor is an opaque upstream replay position: the agent's ingest
	// frontier as of this frame's cut. The aggregator stores the cursor of
	// the last applied frame and hands it back on resume, so a restarted
	// agent knows where to re-read its source from.
	Cursor uint64
	// Flags carries FlagFull / FlagHeartbeat / FlagRelay.
	Flags byte
	// Depth is the fan-in depth of the tree below the sender (0 for edge
	// agents, ≥ 1 for relays). Only encoded when FlagRelay is set.
	Depth byte
	// Candidates are heavy-hitter candidate items observed by the agent;
	// the aggregator evaluates its candidate pool against the merged
	// sketch to answer top-k queries.
	Candidates []uint64
	// Envelope is the uncompressed universal sketch envelope (nil for
	// heartbeats). It travels flate-compressed.
	Envelope []byte
}

// Heartbeat reports whether the frame is a data-free lease renewal.
func (p *Push) Heartbeat() bool { return p.Flags&FlagHeartbeat != 0 }

// Full reports whether the frame replaces all prior state for the agent.
func (p *Push) Full() bool { return p.Flags&FlagFull != 0 }

// Relay reports whether the frame was pushed by a relay tier.
func (p *Push) Relay() bool { return p.Flags&FlagRelay != 0 }

// Encode serializes the frame, compressing the envelope. Frames are
// deterministic: encoding the same Push yields the same bytes, which is
// what makes retried frames byte-identical on the wire.
func (p *Push) Encode() ([]byte, error) {
	if len(p.Agent) == 0 || len(p.Agent) > MaxAgentIDLen {
		return nil, fmt.Errorf("salsad: agent id length %d outside [1,%d]: %w", len(p.Agent), MaxAgentIDLen, ErrBadFrame)
	}
	if len(p.Candidates) > MaxPushCandidates {
		return nil, fmt.Errorf("salsad: %d candidates exceed the per-push cap %d: %w", len(p.Candidates), MaxPushCandidates, ErrBadFrame)
	}
	if p.Heartbeat() && len(p.Envelope) > 0 {
		return nil, fmt.Errorf("salsad: heartbeat frames carry no envelope: %w", ErrBadFrame)
	}
	if p.Depth != 0 && !p.Relay() {
		return nil, fmt.Errorf("salsad: depth %d on a non-relay frame: %w", p.Depth, ErrBadFrame)
	}
	var comp bytes.Buffer
	if len(p.Envelope) > 0 {
		fw, err := flate.NewWriter(&comp, flate.BestSpeed)
		if err != nil {
			return nil, err
		}
		if _, err := fw.Write(p.Envelope); err != nil {
			return nil, err
		}
		if err := fw.Close(); err != nil {
			return nil, err
		}
	}
	buf := make([]byte, 0, 64+len(p.Agent)+8*len(p.Candidates)+comp.Len())
	buf = binary.LittleEndian.AppendUint32(buf, frameMagic)
	buf = append(buf, frameVersion, p.Flags)
	if p.Relay() {
		buf = append(buf, p.Depth)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.Agent)))
	buf = append(buf, p.Agent...)
	buf = binary.LittleEndian.AppendUint64(buf, p.Gen)
	buf = binary.LittleEndian.AppendUint64(buf, p.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, p.Cursor)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.Candidates)))
	for _, c := range p.Candidates {
		buf = binary.LittleEndian.AppendUint64(buf, c)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Envelope)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(comp.Len()))
	buf = append(buf, comp.Bytes()...)
	return buf, nil
}

// DecodePush parses and validates a push frame. Every length is checked
// against its bound before the corresponding allocation; a declared
// envelope size over maxEnvelope returns a *TooLargeError without
// decompressing a byte, so a hostile or corrupt push cannot balloon
// memory. The decompressed envelope is verified to match the declared
// length exactly.
func DecodePush(data []byte, maxEnvelope int) (*Push, error) {
	if maxEnvelope <= 0 {
		maxEnvelope = DefaultMaxEnvelopeBytes
	}
	r := frameReader{data: data}
	if r.u32() != frameMagic {
		return nil, ErrBadFrame
	}
	if r.u8() != frameVersion {
		return nil, ErrBadFrame
	}
	p := &Push{Flags: r.u8()}
	if p.Flags&^flagsKnown != 0 {
		return nil, ErrBadFrame
	}
	if p.Relay() {
		p.Depth = r.u8()
	}
	idLen := int(r.u16())
	if idLen == 0 || idLen > MaxAgentIDLen {
		return nil, ErrBadFrame
	}
	id := r.take(idLen)
	if id == nil {
		return nil, ErrBadFrame
	}
	p.Agent = string(id)
	p.Gen, p.Seq, p.Cursor = r.u64(), r.u64(), r.u64()
	nCand := int(r.u16())
	if nCand > MaxPushCandidates {
		return nil, ErrBadFrame
	}
	if r.err == nil && nCand > 0 {
		if len(r.data)-r.pos < 8*nCand {
			return nil, ErrBadFrame
		}
		p.Candidates = make([]uint64, nCand)
		for i := range p.Candidates {
			p.Candidates[i] = r.u64()
		}
	}
	rawLen := int(r.u32())
	compLen := int(r.u32())
	if r.err != nil {
		return nil, ErrBadFrame
	}
	if rawLen > maxEnvelope {
		return nil, &TooLargeError{Size: rawLen, Limit: maxEnvelope}
	}
	comp := r.take(compLen)
	if comp == nil || r.pos != len(r.data) {
		return nil, ErrBadFrame
	}
	if rawLen == 0 {
		if compLen != 0 || !p.Heartbeat() {
			return nil, ErrBadFrame
		}
		return p, nil
	}
	if p.Heartbeat() {
		return nil, ErrBadFrame
	}
	fr := flate.NewReader(bytes.NewReader(comp))
	env := make([]byte, rawLen)
	if _, err := io.ReadFull(fr, env); err != nil {
		return nil, ErrBadFrame
	}
	// The stream must end exactly at the declared length.
	if n, err := fr.Read(make([]byte, 1)); n != 0 || err != io.EOF {
		return nil, ErrBadFrame
	}
	p.Envelope = env
	return p, nil
}

// frameReader is a bounds-checked little-endian cursor; after any
// overrun every subsequent read reports zero and err is set.
type frameReader struct {
	data []byte
	pos  int
	err  error
}

func (r *frameReader) take(n int) []byte {
	if r.err != nil || n < 0 || len(r.data)-r.pos < n {
		r.err = ErrBadFrame
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *frameReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *frameReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *frameReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *frameReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Status is the aggregator's verdict on a push.
type Status string

const (
	// StatusApplied: the frame was applied to the agent's contribution.
	StatusApplied Status = "applied"
	// StatusDuplicate: the frame (or a copy of it) was already applied;
	// nothing changed. The push still renews the agent's lease.
	StatusDuplicate Status = "duplicate"
	// StatusResync: the aggregator cannot place the frame (unknown agent
	// or generation after an aggregator restart, stale generation, or a
	// sequence gap). The agent must start a fresh generation with a
	// full-state snapshot.
	StatusResync Status = "resync"
)

// Ack is the aggregator's response to a push.
type Ack struct {
	Status Status `json:"status"`
	// Gen/Seq/Cursor are the aggregator's per-agent frontier after the
	// push: the generation it is tracking, the last applied sequence, and
	// the cursor of the last applied frame. On StatusResync they tell the
	// agent which generations are burned and where its replayable source
	// stands.
	Gen    uint64 `json:"gen"`
	Seq    uint64 `json:"seq"`
	Cursor uint64 `json:"cursor"`
}

// ResumeInfo is the aggregator's durable view of an agent, used by a
// restarting agent to pick a fresh generation and a replay point.
type ResumeInfo struct {
	// Known is false when the aggregator has no state for the agent.
	Known  bool   `json:"known"`
	Gen    uint64 `json:"gen"`
	Seq    uint64 `json:"seq"`
	Cursor uint64 `json:"cursor"`
}
