package salsad

import (
	"testing"
)

// Replay-cursor edge cases around Resume: the frontier an aggregator
// reports must let a reconnecting sender continue exactly — never
// silently drop a frame, never double-apply one.

// TestResumeCursorAtGenerationBoundary pins the frontier reported right
// after a generation bump, where the previous generation's high-water
// seq is larger than the new generation's.
func TestResumeCursorAtGenerationBoundary(t *testing.T) {
	a := newTestAggregator(t, AggregatorConfig{})
	push(t, a, &Push{Agent: "a1", Gen: 1, Seq: 1, Flags: FlagFull, Cursor: 10,
		Envelope: envelopeFor(t, 1)})
	push(t, a, &Push{Agent: "a1", Gen: 1, Seq: 2, Cursor: 20, Envelope: envelopeFor(t, 2)})
	// Generation bump: the replacing snapshot restarts seq at 1.
	push(t, a, &Push{Agent: "a1", Gen: 2, Seq: 1, Flags: FlagFull, Cursor: 30,
		Envelope: envelopeFor(t, 3)})

	info := a.Resume("a1")
	if !info.Known || info.Gen != 2 || info.Seq != 1 || info.Cursor != 30 {
		t.Fatalf("frontier at generation boundary: %+v", info)
	}
	// Continuing from the reported frontier is seq 2 of gen 2 — NOT seq 3,
	// which was the old generation's next slot.
	if ack := push(t, a, &Push{Agent: "a1", Gen: 2, Seq: 2, Cursor: 40,
		Envelope: envelopeFor(t, 4)}); ack.Status != StatusApplied {
		t.Fatalf("continuation after boundary: %v", ack.Status)
	}
	// A straggler from the burned generation must be told to resync, not
	// be applied into the replaced state.
	if ack := push(t, a, &Push{Agent: "a1", Gen: 1, Seq: 3, Cursor: 25,
		Envelope: envelopeFor(t, 9)}); ack.Status != StatusResync {
		t.Fatalf("stale-generation frame: %v", ack.Status)
	}
}

// TestResumeAgainstRestartedDurableAggregator reconnects an agent to an
// aggregator restarted from a snapshot taken at the agent's exact
// frontier: the reported cursor lets it continue with zero replay.
func TestResumeAgainstRestartedDurableAggregator(t *testing.T) {
	dir := t.TempDir()
	a := newTestAggregator(t, AggregatorConfig{DataDir: dir, SnapshotEvery: 1})
	push(t, a, &Push{Agent: "a1", Gen: 7, Seq: 1, Flags: FlagFull, Cursor: 100,
		Envelope: envelopeFor(t, 1)})
	if _, err := a.MaybePersist(); err != nil {
		t.Fatal(err)
	}

	b := newTestAggregator(t, AggregatorConfig{DataDir: dir, SnapshotEvery: 1})
	info := b.Resume("a1")
	if !info.Known || info.Gen != 7 || info.Seq != 1 || info.Cursor != 100 {
		t.Fatalf("persisted frontier: %+v", info)
	}
	// The agent replays nothing and continues within the same generation.
	if ack := push(t, b, &Push{Agent: "a1", Gen: 7, Seq: 2, Cursor: 120,
		Envelope: envelopeFor(t, 2)}); ack.Status != StatusApplied {
		t.Fatalf("continuation after restart: %v", ack.Status)
	}
	if b.Stats().Resyncs != 0 {
		t.Fatal("durable restart cost a resync")
	}
}

// TestResumeSnapshotPredatesFrontierForcesResync covers the dangerous
// window: the aggregator persisted at seq 1 but acknowledged through seq
// 3 before crashing. After restart its table is missing frames 2-3, so a
// sender continuing from ITS frontier (seq 4) presents a gap. Silently
// accepting — or acking it as a duplicate — would lose frames 2-3
// forever; the only sound answer is a resync.
func TestResumeSnapshotPredatesFrontierForcesResync(t *testing.T) {
	dir := t.TempDir()
	a := newTestAggregator(t, AggregatorConfig{DataDir: dir, SnapshotEvery: 1})
	push(t, a, &Push{Agent: "a1", Gen: 1, Seq: 1, Flags: FlagFull, Cursor: 10,
		Envelope: envelopeFor(t, 1)})
	if _, err := a.MaybePersist(); err != nil {
		t.Fatal(err)
	}
	// Acknowledged but never persisted: lost in the crash.
	push(t, a, &Push{Agent: "a1", Gen: 1, Seq: 2, Cursor: 20, Envelope: envelopeFor(t, 2)})
	push(t, a, &Push{Agent: "a1", Gen: 1, Seq: 3, Cursor: 30, Envelope: envelopeFor(t, 3)})

	b := newTestAggregator(t, AggregatorConfig{DataDir: dir, SnapshotEvery: 1})
	// The stale frontier is visible to an honest reconnect...
	if info := b.Resume("a1"); info.Seq != 1 || info.Cursor != 10 {
		t.Fatalf("restored frontier: %+v", info)
	}
	// ...but a sender that skipped Resume and continued from its own
	// frontier presents seq 4 over a seq-1 table: a gap, never a silent
	// apply or drop.
	ack := push(t, b, &Push{Agent: "a1", Gen: 1, Seq: 4, Cursor: 40,
		Envelope: envelopeFor(t, 4)})
	if ack.Status != StatusResync {
		t.Fatalf("gapped frame after lossy restart: %v", ack.Status)
	}
	if ack.Gen != 1 || ack.Seq != 1 {
		t.Fatalf("resync ack must report the surviving frontier: %+v", ack)
	}
	// Recovery is the standard replacing snapshot under a fresh gen.
	if ack := push(t, b, &Push{Agent: "a1", Gen: 2, Seq: 1, Flags: FlagFull, Cursor: 40,
		Envelope: envelopeFor(t, 1, 2, 3, 4)}); ack.Status != StatusApplied {
		t.Fatalf("recovery snapshot: %v", ack.Status)
	}
	if got := queryOne(t, b, 3); got != 1 {
		t.Fatalf("count(3) after recovery = %d, want 1", got)
	}
}

// TestResumeUnknownAgent pins the fresh-sender answer.
func TestResumeUnknownAgent(t *testing.T) {
	a := newTestAggregator(t, AggregatorConfig{})
	if info := a.Resume("nobody"); info.Known || info.Gen != 0 || info.Seq != 0 {
		t.Fatalf("unknown agent: %+v", info)
	}
}
