// Package stream provides the workload generators used by the evaluation:
// Zipfian streams with configurable skew and deterministic synthetic
// stand-ins for the paper's four real traces (see DESIGN.md §2 for the
// substitution rationale), plus an exact-counting oracle for ground truth.
package stream

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf returns n items drawn i.i.d. from a Zipf(alpha) distribution over a
// universe of u items, deterministically for a given seed. Item identifiers
// are scrambled so that an item's rank carries no relation to its id.
func Zipf(n, u int, alpha float64, seed uint64) []uint64 {
	if n < 0 || u <= 0 {
		panic("stream: invalid Zipf parameters")
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	cdf := make([]float64, u)
	total := 0.0
	for k := 0; k < u; k++ {
		total += math.Pow(float64(k+1), -alpha)
		cdf[k] = total
	}
	out := make([]uint64, n)
	for i := range out {
		x := rng.Float64() * total
		rank := sort.SearchFloat64s(cdf, x)
		if rank >= u {
			rank = u - 1
		}
		out[i] = scramble(uint64(rank), seed)
	}
	return out
}

// scramble maps ranks to pseudo-random 64-bit ids, bijectively per seed.
func scramble(rank, seed uint64) uint64 {
	z := rank + 0x9e3779b97f4a7c15 + seed*0xff51afd7ed558ccd
	z ^= z >> 33
	z *= 0xff51afd7ed558ccd
	z ^= z >> 33
	z *= 0xc4ceb9fe1a85ec53
	z ^= z >> 33
	return z
}

// Dataset is a named synthetic stand-in for one of the paper's traces.
type Dataset struct {
	// Name of the original trace this dataset substitutes for.
	Name string
	// Alpha is the Zipf skew matched to the trace.
	Alpha float64
	// UniverseDiv sets the universe as n/UniverseDiv (matched to the
	// trace's distinct-to-volume ratio); ignored when FixedUniverse > 0.
	UniverseDiv int
	// FixedUniverse, when positive, pins the universe size regardless of n
	// (used for the YouTube video-id universe).
	FixedUniverse int
}

// Universe returns the universe size for a stream of n updates.
func (d Dataset) Universe(n int) int {
	if d.FixedUniverse > 0 {
		return d.FixedUniverse
	}
	u := n / d.UniverseDiv
	if u < 1024 {
		u = 1024
	}
	return u
}

// Generate returns a deterministic n-update unit-weight stream.
func (d Dataset) Generate(n int, seed uint64) []uint64 {
	return Zipf(n, d.Universe(n), d.Alpha, seed)
}

// The four trace stand-ins (DESIGN.md §2). Volume-to-distinct ratios follow
// the counts the paper reports (NY18: 6.5M distinct / 98M; CH16: 2.5M/98M).
var (
	NY18    = Dataset{Name: "NY18", Alpha: 1.1, UniverseDiv: 15}
	CH16    = Dataset{Name: "CH16", Alpha: 1.0, UniverseDiv: 40}
	Univ2   = Dataset{Name: "Univ2", Alpha: 0.7, UniverseDiv: 8}
	YouTube = Dataset{Name: "YouTube", Alpha: 0.99, FixedUniverse: 40000}
)

// Datasets returns the four trace stand-ins in the order the paper plots
// them.
func Datasets() []Dataset { return []Dataset{NY18, CH16, Univ2, YouTube} }

// ByName returns the dataset with the given name.
func ByName(name string) (Dataset, bool) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, true
		}
	}
	return Dataset{}, false
}

// Exact is the ground-truth oracle: exact frequencies, volume, and the
// frequency-vector statistics the evaluation compares against.
type Exact struct {
	counts map[uint64]uint64
	volume uint64
}

// NewExact returns an empty oracle.
func NewExact() *Exact {
	return &Exact{counts: make(map[uint64]uint64)}
}

// Observe records one unit-weight arrival and returns the item's updated
// true frequency (the on-arrival ground truth).
func (e *Exact) Observe(x uint64) uint64 {
	e.counts[x]++
	e.volume++
	return e.counts[x]
}

// Count returns the exact frequency of x.
func (e *Exact) Count(x uint64) uint64 { return e.counts[x] }

// Volume returns the total stream volume N.
func (e *Exact) Volume() uint64 { return e.volume }

// Distinct returns the number of distinct items F0.
func (e *Exact) Distinct() int { return len(e.counts) }

// Counts exposes the exact frequency map (read-only by convention).
func (e *Exact) Counts() map[uint64]uint64 { return e.counts }

// SortedItems returns every distinct observed item in ascending order —
// the deterministic iteration the seeded harnesses use instead of map
// ranges, so a failing assertion always reports the same item first.
func (e *Exact) SortedItems() []uint64 {
	items := make([]uint64, 0, len(e.counts))
	for x := range e.counts {
		items = append(items, x)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	return items
}

// Entropy returns the empirical entropy Σ (f/N)·log2(N/f) of the frequency
// vector.
func (e *Exact) Entropy() float64 {
	n := float64(e.volume)
	if n == 0 {
		return 0
	}
	h := 0.0
	for _, f := range e.counts {
		p := float64(f) / n
		h -= p * math.Log2(p)
	}
	return h
}

// Moment returns the frequency moment Fp = Σ f^p.
func (e *Exact) Moment(p float64) float64 {
	total := 0.0
	for _, f := range e.counts {
		total += math.Pow(float64(f), p)
	}
	return total
}

// L2 returns the second norm of the frequency vector.
func (e *Exact) L2() float64 { return math.Sqrt(e.Moment(2)) }

// TopK returns the k items with the highest exact frequency, in descending
// order (ties broken by item id for determinism).
func (e *Exact) TopK(k int) []uint64 {
	type pair struct {
		item uint64
		f    uint64
	}
	all := make([]pair, 0, len(e.counts))
	for x, f := range e.counts {
		all = append(all, pair{x, f})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].f != all[j].f {
			return all[i].f > all[j].f
		}
		return all[i].item < all[j].item
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]uint64, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].item
	}
	return out
}

// HeavyHitters returns all items with frequency ≥ phi·N, the paper's
// heavy-hitter definition.
func (e *Exact) HeavyHitters(phi float64) []uint64 {
	threshold := phi * float64(e.volume)
	var out []uint64
	for x, f := range e.counts {
		if float64(f) >= threshold {
			out = append(out, x)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
