package stream

import (
	"math"
	"testing"
)

func TestZipfDeterministic(t *testing.T) {
	a := Zipf(1000, 100, 1.0, 7)
	b := Zipf(1000, 100, 1.0, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Zipf not deterministic")
		}
	}
	c := Zipf(1000, 100, 1.0, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("Zipf ignores seed")
	}
}

func TestZipfSkewShapesDistribution(t *testing.T) {
	// Higher skew must concentrate more mass on the top item.
	topShare := func(alpha float64) float64 {
		s := Zipf(50000, 1000, alpha, 3)
		e := NewExact()
		for _, x := range s {
			e.Observe(x)
		}
		top := e.TopK(1)
		return float64(e.Count(top[0])) / float64(e.Volume())
	}
	low, high := topShare(0.6), topShare(1.4)
	if high < 2*low {
		t.Fatalf("top share did not grow with skew: %f vs %f", low, high)
	}
}

func TestZipfMatchesTheory(t *testing.T) {
	// For alpha=1, u=100, the top item's probability is 1/H_100 ≈ 0.1928.
	s := Zipf(200000, 100, 1.0, 5)
	e := NewExact()
	for _, x := range s {
		e.Observe(x)
	}
	h100 := 0.0
	for k := 1; k <= 100; k++ {
		h100 += 1 / float64(k)
	}
	want := 1 / h100
	got := float64(e.Count(e.TopK(1)[0])) / float64(e.Volume())
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("top item share %f, want ≈ %f", got, want)
	}
}

func TestDatasets(t *testing.T) {
	if len(Datasets()) != 4 {
		t.Fatal("expected four trace stand-ins")
	}
	for _, d := range Datasets() {
		s := d.Generate(10000, 1)
		if len(s) != 10000 {
			t.Fatalf("%s: wrong length", d.Name)
		}
		e := NewExact()
		for _, x := range s {
			e.Observe(x)
		}
		if e.Distinct() < 100 {
			t.Fatalf("%s: implausibly few distinct items (%d)", d.Name, e.Distinct())
		}
		if _, ok := ByName(d.Name); !ok {
			t.Fatalf("ByName(%q) failed", d.Name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName accepted a bogus name")
	}
	if YouTube.Universe(1<<30) != 40000 {
		t.Fatal("YouTube universe should be fixed")
	}
}

func TestExactOracle(t *testing.T) {
	e := NewExact()
	for i := 0; i < 5; i++ {
		e.Observe(1)
	}
	for i := 0; i < 3; i++ {
		e.Observe(2)
	}
	e.Observe(3)
	if e.Volume() != 9 || e.Distinct() != 3 {
		t.Fatalf("volume %d distinct %d", e.Volume(), e.Distinct())
	}
	if e.Count(1) != 5 || e.Count(99) != 0 {
		t.Fatal("counts wrong")
	}
	if got := e.TopK(2); got[0] != 1 || got[1] != 2 {
		t.Fatalf("TopK wrong: %v", got)
	}
	// F1 = N, F2 = 25+9+1 = 35, F0 = 3.
	if e.Moment(1) != 9 || e.Moment(2) != 35 || e.Moment(0) != 3 {
		t.Fatalf("moments wrong: %f %f %f", e.Moment(1), e.Moment(2), e.Moment(0))
	}
	if math.Abs(e.L2()-math.Sqrt(35)) > 1e-12 {
		t.Fatal("L2 wrong")
	}
	// Entropy of (5/9, 3/9, 1/9).
	want := 0.0
	for _, f := range []float64{5, 3, 1} {
		p := f / 9
		want -= p * math.Log2(p)
	}
	if math.Abs(e.Entropy()-want) > 1e-12 {
		t.Fatalf("entropy %f, want %f", e.Entropy(), want)
	}
	hh := e.HeavyHitters(0.3) // threshold 2.7: only item 1 (5) and item 2 (3)
	if len(hh) != 2 {
		t.Fatalf("heavy hitters: %v", hh)
	}
}

func TestExactOnArrivalTruth(t *testing.T) {
	e := NewExact()
	if e.Observe(7) != 1 || e.Observe(7) != 2 || e.Observe(8) != 1 {
		t.Fatal("Observe should return the running count")
	}
}

func TestScrambleBijective(t *testing.T) {
	seen := make(map[uint64]bool, 1<<14)
	for r := uint64(0); r < 1<<14; r++ {
		v := scramble(r, 9)
		if seen[v] {
			t.Fatal("scramble collision")
		}
		seen[v] = true
	}
}
