package hashing

// Bulk variants of the per-item hash functions. Batch ingestion hashes a
// whole slice of items per sketch row in one call, so the seed and mask stay
// in registers and the loop body is branch-free — the per-item call overhead
// (and, for sketches with d rows, d interface dispatches per item) is paid
// once per batch instead.

// IndexVec writes Index(items[j], seed, mask) into dst[j] for every item.
// dst must be at least as long as items.
//
//salsa:hotpath
func IndexVec(items []uint64, seed, mask uint64, dst []uint32) {
	_ = dst[len(items)-1]
	for j, x := range items {
		z := x + seed*0x9e3779b97f4a7c15
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		dst[j] = uint32(z & mask)
	}
}

// SignVec writes Sign(items[j], seed) into dst[j] for every item.
// dst must be at least as long as items.
//
//salsa:hotpath
func SignVec(items []uint64, seed uint64, dst []int8) {
	_ = dst[len(items)-1]
	for j, x := range items {
		// 1 - 2*topbit maps the unbiased top bit to ±1 without a branch.
		dst[j] = int8(1 - 2*int8(Mix64(x, seed)>>63))
	}
}
