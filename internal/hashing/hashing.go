// Package hashing provides the hash families used by the sketches: a fast
// seeded 64-bit finalizer for integer items, Jenkins' lookup3 ("BobHash",
// the function used by the SALSA paper's implementation) for byte keys, and
// pairwise sign hashes for the Count Sketch.
//
// All functions are deterministic given their seed, so experiments are
// reproducible bit-for-bit.
package hashing

import "math/bits"

// Mix64 is a seeded finalizer over 64-bit items based on the splitmix64
// output permutation. For a fixed seed it is a bijection on uint64, which
// gives good avalanche behaviour for the sketch index and sign hashes.
//
//salsa:hotpath
func Mix64(x, seed uint64) uint64 {
	z := x + seed*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// SplitMix64 advances state and returns the next pseudo-random value.
// It is used to derive independent per-row seeds from a master seed.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Seeds derives n independent seeds from master.
func Seeds(master uint64, n int) []uint64 {
	state := master
	out := make([]uint64, n)
	for i := range out {
		out[i] = SplitMix64(&state)
	}
	return out
}

// Index maps item x to a slot in [0, w) using the given seed. w must be a
// power of two; the caller passes mask = w-1.
//
//salsa:hotpath
func Index(x, seed, mask uint64) uint64 {
	return Mix64(x, seed) & mask
}

// Sign maps item x to +1 or -1 with equal probability, independent of the
// index hash when given an independent seed.
//
//salsa:hotpath
func Sign(x, seed uint64) int64 {
	// Use the top bit of the mixed value; the finalizer's avalanche makes
	// every output bit unbiased and pairwise uncorrelated across items.
	if Mix64(x, seed)>>63 == 0 {
		return 1
	}
	return -1
}

// Bob computes Jenkins' lookup3 hashword-style hash over key with the given
// initial value. It matches the classic "BobHash" used by the reference
// sketch implementations for byte-string keys such as packet 5-tuples.
//
//salsa:hotpath
func Bob(key []byte, initval uint32) uint32 {
	a := uint32(0xdeadbeef) + uint32(len(key)) + initval
	b, c := a, a

	i := 0
	for len(key)-i > 12 {
		a += le32(key[i:])
		b += le32(key[i+4:])
		c += le32(key[i+8:])
		a, b, c = bobMix(a, b, c)
		i += 12
	}

	tail := key[i:]
	switch len(tail) {
	case 12:
		c += le32(tail[8:])
		b += le32(tail[4:])
		a += le32(tail)
	case 11:
		c += uint32(tail[10]) << 16
		fallthrough
	case 10:
		c += uint32(tail[9]) << 8
		fallthrough
	case 9:
		c += uint32(tail[8])
		fallthrough
	case 8:
		b += le32(tail[4:])
		a += le32(tail)
	case 7:
		b += uint32(tail[6]) << 16
		fallthrough
	case 6:
		b += uint32(tail[5]) << 8
		fallthrough
	case 5:
		b += uint32(tail[4])
		fallthrough
	case 4:
		a += le32(tail)
	case 3:
		a += uint32(tail[2]) << 16
		fallthrough
	case 2:
		a += uint32(tail[1]) << 8
		fallthrough
	case 1:
		a += uint32(tail[0])
	case 0:
		return c
	}
	a, b, c = bobFinal(a, b, c)
	return c
}

//salsa:hotpath
func le32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

//salsa:hotpath
func bobMix(a, b, c uint32) (uint32, uint32, uint32) {
	a -= c
	a ^= bits.RotateLeft32(c, 4)
	c += b
	b -= a
	b ^= bits.RotateLeft32(a, 6)
	a += c
	c -= b
	c ^= bits.RotateLeft32(b, 8)
	b += a
	a -= c
	a ^= bits.RotateLeft32(c, 16)
	c += b
	b -= a
	b ^= bits.RotateLeft32(a, 19)
	a += c
	c -= b
	c ^= bits.RotateLeft32(b, 4)
	b += a
	return a, b, c
}

//salsa:hotpath
func bobFinal(a, b, c uint32) (uint32, uint32, uint32) {
	c ^= b
	c -= bits.RotateLeft32(b, 14)
	a ^= c
	a -= bits.RotateLeft32(c, 11)
	b ^= a
	b -= bits.RotateLeft32(a, 25)
	c ^= b
	c -= bits.RotateLeft32(b, 16)
	a ^= c
	a -= bits.RotateLeft32(c, 4)
	b ^= a
	b -= bits.RotateLeft32(a, 14)
	c ^= b
	c -= bits.RotateLeft32(b, 24)
	return a, b, c
}

// Bob64 combines two lookup3 passes with different initial values into a
// 64-bit hash for byte keys.
//
//salsa:hotpath
func Bob64(key []byte, seed uint64) uint64 {
	lo := Bob(key, uint32(seed))
	hi := Bob(key, uint32(seed>>32)^0x9e3779b9)
	return uint64(hi)<<32 | uint64(lo)
}
