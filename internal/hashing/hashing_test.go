package hashing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMix64Deterministic(t *testing.T) {
	if Mix64(42, 7) != Mix64(42, 7) {
		t.Fatal("Mix64 not deterministic")
	}
	if Mix64(42, 7) == Mix64(42, 8) {
		t.Fatal("Mix64 ignores seed")
	}
	if Mix64(42, 7) == Mix64(43, 7) {
		t.Fatal("Mix64 ignores input")
	}
}

func TestMix64Bijective(t *testing.T) {
	// For a fixed seed the finalizer is a bijection; sample-check for
	// collisions over a contiguous range.
	seen := make(map[uint64]uint64, 1<<16)
	for x := uint64(0); x < 1<<16; x++ {
		h := Mix64(x, 12345)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: Mix64(%d) == Mix64(%d)", x, prev)
		}
		seen[h] = x
	}
}

func TestIndexUniformity(t *testing.T) {
	const w = 256
	const n = 1 << 16
	counts := make([]int, w)
	for x := uint64(0); x < n; x++ {
		counts[Index(x, 99, w-1)]++
	}
	// Chi-squared test with a loose bound: expected n/w per bucket.
	expected := float64(n) / w
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 255 dof; mean 255, sd ~22.6. Allow 6 sigma.
	if chi2 > 255+6*22.6 {
		t.Fatalf("chi2 = %f, distribution too skewed", chi2)
	}
}

func TestSignBalance(t *testing.T) {
	const n = 1 << 16
	sum := int64(0)
	for x := uint64(0); x < n; x++ {
		s := Sign(x, 4242)
		if s != 1 && s != -1 {
			t.Fatalf("Sign returned %d", s)
		}
		sum += s
	}
	// Mean 0, sd sqrt(n)=256. Allow 6 sigma.
	if math.Abs(float64(sum)) > 6*256 {
		t.Fatalf("sign sum = %d, biased", sum)
	}
}

func TestSignIndependentOfIndex(t *testing.T) {
	// Correlation between sign and low index bit should be near zero.
	const n = 1 << 16
	agree := 0
	for x := uint64(0); x < n; x++ {
		i := Index(x, 1, 1) // one bit
		s := Sign(x, 2)
		if (i == 1) == (s == 1) {
			agree++
		}
	}
	if math.Abs(float64(agree)-n/2) > 6*128 {
		t.Fatalf("agree = %d of %d, sign correlated with index", agree, n)
	}
}

func TestSeeds(t *testing.T) {
	s := Seeds(1, 8)
	if len(s) != 8 {
		t.Fatalf("len = %d", len(s))
	}
	seen := map[uint64]bool{}
	for _, v := range s {
		if seen[v] {
			t.Fatal("duplicate seed")
		}
		seen[v] = true
	}
	s2 := Seeds(1, 8)
	for i := range s {
		if s[i] != s2[i] {
			t.Fatal("Seeds not deterministic")
		}
	}
}

func TestBobKnownLengths(t *testing.T) {
	// lookup3 must consume every tail length 0..13 without panicking and
	// produce distinct values for distinct inputs of each length.
	for n := 0; n <= 13; n++ {
		key := make([]byte, n)
		for i := range key {
			key[i] = byte(i + 1)
		}
		h1 := Bob(key, 0)
		if n == 0 {
			continue
		}
		key[n-1] ^= 0xff
		h2 := Bob(key, 0)
		if h1 == h2 {
			t.Fatalf("len %d: last-byte flip did not change hash", n)
		}
	}
}

func TestBobSeedSensitivity(t *testing.T) {
	key := []byte("salsa-sketch")
	if Bob(key, 1) == Bob(key, 2) {
		t.Fatal("Bob ignores initval")
	}
}

func TestBob64(t *testing.T) {
	key := []byte("0123456789abcdef")
	if Bob64(key, 5) == Bob64(key, 6) {
		t.Fatal("Bob64 ignores seed")
	}
	if Bob64(key, 5) != Bob64(key, 5) {
		t.Fatal("Bob64 not deterministic")
	}
}

func TestBobEmptyKey(t *testing.T) {
	// Must not panic; value defined by lookup3 initialization.
	got := Bob(nil, 0)
	want := uint32(0xdeadbeef)
	if got != want {
		t.Fatalf("Bob(nil) = %#x, want %#x", got, want)
	}
}

func TestQuickBobDeterministic(t *testing.T) {
	f := func(key []byte, seed uint32) bool {
		return Bob(key, seed) == Bob(key, seed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMixAvalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits on
	// average; check it always flips at least a few.
	f := func(x, seed uint64, bit uint8) bool {
		h1 := Mix64(x, seed)
		h2 := Mix64(x^(1<<(bit%64)), seed)
		diff := h1 ^ h2
		n := 0
		for diff != 0 {
			diff &= diff - 1
			n++
		}
		return n >= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
