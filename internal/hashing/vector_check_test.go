package hashing

import "testing"

// TestBobGoldenVectors pins Bob to Jenkins' lookup3.c hashlittle(): these
// are the official self-test vectors from the reference implementation, so
// our sketches hash byte keys identically to the paper's C++ code.
func TestBobGoldenVectors(t *testing.T) {
	cases := []struct {
		key     string
		initval uint32
		want    uint32
	}{
		{"Four score and seven years ago", 0, 0x17770551},
		{"Four score and seven years ago", 1, 0xcd628161},
		{"", 0, 0xdeadbeef},
		{"", 0xdeadbeef, 0xbd5b7dde},
	}
	for _, c := range cases {
		if got := Bob([]byte(c.key), c.initval); got != c.want {
			t.Errorf("Bob(%q, %#x) = %#x, want %#x", c.key, c.initval, got, c.want)
		}
	}
}
