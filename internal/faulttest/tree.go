package faulttest

// Multi-tier harness: a two-level fan-in tree of edge agents → relays →
// root aggregator, every link crossing its own seeded faulty Transport.
// Each relay subtree is a Cluster (so all the single-tier machinery —
// feed, crash, pump — applies per subtree), and the relays push their
// merged tables up through per-relay uplink transports that can be
// partitioned, faulted, and crash-swapped independently. Like everything
// in this package, a Tree's behavior is a pure function of the plan seed.

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"salsa"
	"salsa/internal/salsad"
)

// TreeOptions configures a Tree beyond its fault plan.
type TreeOptions struct {
	// Plan is the fault plan template; every transport in the tree runs a
	// seed deterministically derived from Plan.Seed and its position.
	Plan Plan
	// DataDir, when non-empty, makes the root and every relay durable:
	// the root snapshots under DataDir/root, relay i under DataDir/<id>.
	// Empty means fully volatile.
	DataDir string
	// SnapshotEvery is the applied-frame persistence interval for every
	// durable node; zero means salsad's default.
	SnapshotEvery int
}

// RelayNode is one mid-tier node: its relay, the subtree of members
// pushing into it, and its independent uplink to the root.
type RelayNode struct {
	ID string
	// Relay is the current incarnation (replaced by CrashRelay).
	Relay *salsad.Relay
	// Sub is the downstream subtree: members pushing into Relay.Agg()
	// through Sub.Transport.
	Sub *Cluster
	// Up is the relay→root transport.
	Up      *Transport
	dataDir string
}

// Tree is a 2-level aggregation tree under deterministic fault
// injection.
type Tree struct {
	Spec      salsa.Spec
	AgentSpec salsa.Spec
	Root      *salsad.Aggregator
	Relays    []*RelayNode
	opt       TreeOptions
}

// NewTree builds a root aggregator and one relay per trace group;
// traces[i][j] is member j of relay i's subtree.
func NewTree(spec, agentSpec salsa.Spec, traces [][][]uint64, opt TreeOptions) (*Tree, error) {
	t := &Tree{Spec: spec, AgentSpec: agentSpec, opt: opt}
	rootDir := ""
	if opt.DataDir != "" {
		rootDir = filepath.Join(opt.DataDir, "root")
	}
	root, err := salsad.NewAggregator(salsad.AggregatorConfig{
		Spec: spec, DataDir: rootDir, SnapshotEvery: opt.SnapshotEvery,
	})
	if err != nil {
		return nil, err
	}
	t.Root = root
	for ri, group := range traces {
		node := &RelayNode{ID: fmt.Sprintf("relay-%02d", ri)}
		if opt.DataDir != "" {
			node.dataDir = filepath.Join(opt.DataDir, node.ID)
		}
		upPlan := opt.Plan
		upPlan.Seed = int64(jitterSeed(opt.Plan.Seed, node.ID+"/up"))
		node.Up = NewTransport(root, upPlan)
		if err := t.startRelay(node); err != nil {
			return nil, err
		}
		downPlan := opt.Plan
		downPlan.Seed = int64(jitterSeed(opt.Plan.Seed, node.ID+"/down"))
		node.Sub = &Cluster{
			Spec:          spec,
			AgentSpec:     agentSpec,
			Transport:     NewTransport(node.Relay.Agg(), downPlan),
			Agg:           node.Relay.Agg(),
			DataDir:       "", // relay durability covers the subtree's table
			SnapshotEvery: opt.SnapshotEvery,
			seed:          downPlan.Seed,
		}
		for mi, trace := range group {
			m := &Member{ID: fmt.Sprintf("edge-%02d-%02d", ri, mi), Trace: trace}
			if err := node.Sub.startMember(m, 0, 0); err != nil {
				return nil, err
			}
			node.Sub.Members = append(node.Sub.Members, m)
		}
		t.Relays = append(t.Relays, node)
	}
	return t, nil
}

// startRelay builds (or rebuilds, for CrashRelay) a node's relay
// incarnation on its existing uplink transport.
func (t *Tree) startRelay(node *RelayNode) error {
	relay, err := salsad.NewRelay(salsad.RelayConfig{
		ID:            node.ID,
		Spec:          t.Spec,
		Upstream:      node.Up,
		DataDir:       node.dataDir,
		SnapshotEvery: t.opt.SnapshotEvery,
		MaxAttempts:   2,
		JitterSeed:    jitterSeed(t.opt.Plan.Seed, node.ID),
		Sleep:         func(time.Duration) {},
	})
	if err != nil {
		return err
	}
	node.Relay = relay
	return nil
}

// FeedAll ingests the next n trace items into every member.
func (t *Tree) FeedAll(n int) {
	for _, node := range t.Relays {
		for _, m := range node.Sub.Members {
			m.Feed(n)
		}
	}
}

// PumpMembers runs one member push round in every subtree.
func (t *Tree) PumpMembers(ctx context.Context) {
	for _, node := range t.Relays {
		node.Sub.Pump(ctx)
	}
}

// PumpRelays gives every relay one upstream push attempt; transport
// errors are the faulty network doing its job.
func (t *Tree) PumpRelays(ctx context.Context) {
	for _, node := range t.Relays {
		node.Relay.PushOnce(ctx) //nolint:errcheck // faults are expected
	}
}

// Pump runs one full tree round: members first, then relays, so traffic
// flows edge → relay → root within the round.
func (t *Tree) Pump(ctx context.Context) {
	t.PumpMembers(ctx)
	t.PumpRelays(ctx)
}

// CrashRelay kills relay i's process. A durable relay restarts from its
// snapshot directory (table, upstream generation, and any frozen frame
// intact); a volatile one comes back empty and rejoins via the Resume +
// resync path, forcing its members to resync too. Held frames in the
// subtree's network outlive the crash, exactly like packets crossing a
// server restart.
func (t *Tree) CrashRelay(i int) error {
	node := t.Relays[i]
	if err := t.startRelay(node); err != nil {
		return err
	}
	node.Sub.Agg = node.Relay.Agg()
	node.Sub.Transport.SwapAggregator(node.Relay.Agg())
	return nil
}

// CrashRoot kills the root aggregator process; durable trees restart it
// from DataDir/root, volatile ones get an empty replacement that relays
// discover through resync acks.
func (t *Tree) CrashRoot() error {
	rootDir := ""
	if t.opt.DataDir != "" {
		rootDir = filepath.Join(t.opt.DataDir, "root")
	}
	root, err := salsad.NewAggregator(salsad.AggregatorConfig{
		Spec: t.Spec, DataDir: rootDir, SnapshotEvery: t.opt.SnapshotEvery,
	})
	if err != nil {
		return err
	}
	t.Root = root
	for _, node := range t.Relays {
		node.Up.SwapAggregator(root)
	}
	return nil
}

// Synced reports whether every member has everything acknowledged by its
// relay AND every relay has its whole table acknowledged by the root.
func (t *Tree) Synced() bool {
	for _, node := range t.Relays {
		if !node.Sub.Synced() || !node.Relay.Synced() {
			return false
		}
	}
	return true
}

// Quiesce heals and silences every transport in the tree.
func (t *Tree) Quiesce() {
	for _, node := range t.Relays {
		node.Sub.Transport.Quiet()
		node.Sub.Transport.Heal()
		node.Up.Quiet()
		node.Up.Heal()
	}
}

// Converge quiesces the network and pumps until the whole tree is
// Synced, bounded by maxRounds. Returns rounds used and success.
func (t *Tree) Converge(ctx context.Context, maxRounds int) (int, bool) {
	t.Quiesce()
	for round := 1; round <= maxRounds; round++ {
		t.Pump(ctx)
		if t.Synced() {
			return round, true
		}
	}
	return maxRounds, false
}

// ReferenceBytes is the no-fault sequential reference for the whole
// tree: one sketch of the root's topology fed every member's consumed
// prefix in tree order, marshaled. A quiesced root must produce these
// bytes for counter-exact backends no matter what any tier's network or
// any crash did.
func (t *Tree) ReferenceBytes() ([]byte, error) {
	ref, err := salsa.Build(t.Spec)
	if err != nil {
		return nil, err
	}
	core, err := salsa.DeltaCore(ref)
	if err != nil {
		return nil, err
	}
	for _, node := range t.Relays {
		for _, m := range node.Sub.Members {
			for _, x := range m.Trace[:m.fed] {
				core.Update(x, 1)
			}
		}
	}
	return salsa.Marshal(core)
}

// UplinkFullFrames sums the full-state frames delivered on every
// relay→root uplink — the recovery-traffic gauge the bounded-recovery
// assertions read.
func (t *Tree) UplinkFullFrames() uint64 {
	var n uint64
	for _, node := range t.Relays {
		n += node.Up.Stats().FullFrames
	}
	return n
}
