package faulttest

import (
	"bytes"
	"context"
	"testing"
)

// Multi-tier scenarios: edge agents → relays → root, every link faulty,
// every tier crashable. The backend is the counter-exact cms-fixed spec
// so the quiesced root must be byte-identical to the no-fault reference
// in every scenario.

func treeTraces(relays, perRelay, items int, seed int64) [][][]uint64 {
	flat := traces(relays*perRelay, items, seed)
	out := make([][][]uint64, relays)
	for i := range out {
		out[i] = flat[i*perRelay : (i+1)*perRelay]
	}
	return out
}

// checkTreeConverged asserts the quiesced root is byte-identical to the
// sequential no-fault reference.
func checkTreeConverged(t *testing.T, tr *Tree) {
	t.Helper()
	got, err := tr.Root.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	want, err := tr.ReferenceBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("quiesced root (%d bytes) is not byte-identical to the no-fault reference (%d bytes)",
			len(got), len(want))
	}
}

// runTree feeds and pumps the whole tree for the given rounds.
func runTree(ctx context.Context, tr *Tree, rounds, perRound int) {
	for round := 0; round < rounds; round++ {
		tr.FeedAll(perRound)
		tr.Pump(ctx)
	}
}

// TestTreeLossyConvergence drives a 2-relay tree through lossy networks
// on all four links (two downlinks, two uplinks) and demands the exact
// no-fault root.
func TestTreeLossyConvergence(t *testing.T) {
	for _, seed := range seeds {
		t.Logf("seed=%d", seed)
		tr, err := NewTree(cmsFixedSpec(), cmsFixedSpec(), treeTraces(2, 2, 2000, seed),
			TreeOptions{Plan: Plan{Seed: seed, Drop: 0.15, Dup: 0.1, AckLoss: 0.1, Delay: 0.1}})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		runTree(ctx, tr, 15, 120)
		rounds, ok := tr.Converge(ctx, 60)
		if !ok {
			t.Fatalf("seed=%d: tree did not converge in 60 clean rounds", seed)
		}
		t.Logf("seed=%d: converged after %d clean rounds", seed, rounds)
		checkTreeConverged(t, tr)
		// The root must see relays, not edge agents: exactly 2 senders,
		// both at depth 1, root tier depth 2.
		if agents := tr.Root.Agents(); len(agents) != 2 {
			t.Fatalf("seed=%d: root membership: %+v", seed, agents)
		}
		if d := tr.Root.StatsView().TierDepth; d != 2 {
			t.Fatalf("seed=%d: root tier depth = %d, want 2", seed, d)
		}
	}
}

// TestTreeDurableRelayCrash kills a relay whose state is on disk: it
// must come back with table, generation, and shadow intact — no member
// below it resyncs, no full frame crosses its uplink, and the root never
// notices.
func TestTreeDurableRelayCrash(t *testing.T) {
	for _, seed := range seeds {
		t.Logf("seed=%d", seed)
		tr, err := NewTree(cmsFixedSpec(), cmsFixedSpec(), treeTraces(2, 2, 2000, seed),
			TreeOptions{Plan: Plan{Seed: seed, Drop: 0.15}, DataDir: t.TempDir(), SnapshotEvery: 1})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		runTree(ctx, tr, 8, 120)
		if _, ok := tr.Converge(ctx, 60); !ok {
			t.Fatalf("seed=%d: warm-up did not converge", seed)
		}
		fullBefore := tr.UplinkFullFrames()
		rootResyncsBefore := tr.Root.Stats().Resyncs

		if err := tr.CrashRelay(0); err != nil {
			t.Fatal(err)
		}
		if err := tr.Relays[0].Relay.RestoreError(); err != nil {
			t.Fatalf("seed=%d: relay restore failed: %v", seed, err)
		}
		runTree(ctx, tr, 4, 100)
		if _, ok := tr.Converge(ctx, 60); !ok {
			t.Fatalf("seed=%d: no convergence after durable relay crash", seed)
		}
		if full := tr.UplinkFullFrames(); full != fullBefore {
			t.Fatalf("seed=%d: %d full frames crossed the uplinks after a durable relay crash",
				seed, full-fullBefore)
		}
		if n := tr.Root.Stats().Resyncs - rootResyncsBefore; n != 0 {
			t.Fatalf("seed=%d: durable relay crash cost %d root resyncs", seed, n)
		}
		if n := tr.Relays[0].Relay.Agg().Stats().Resyncs; n != 0 {
			t.Fatalf("seed=%d: members resynced %d times into the restored relay", seed, n)
		}
		checkTreeConverged(t, tr)
	}
}

// TestTreeVolatileRelayCrash is the contrast case: a relay with no disk
// comes back empty, its members rebuild their contributions, the relay
// rebuilds its uplink contribution under a fresh generation — more
// traffic, same exact answer.
func TestTreeVolatileRelayCrash(t *testing.T) {
	seed := seeds[0]
	tr, err := NewTree(cmsFixedSpec(), cmsFixedSpec(), treeTraces(2, 2, 2000, seed),
		TreeOptions{Plan: Plan{Seed: seed, Drop: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	runTree(ctx, tr, 8, 120)
	if _, ok := tr.Converge(ctx, 60); !ok {
		t.Fatal("warm-up did not converge")
	}
	fullBefore := tr.UplinkFullFrames()

	if err := tr.CrashRelay(1); err != nil {
		t.Fatal(err)
	}
	runTree(ctx, tr, 4, 100)
	if _, ok := tr.Converge(ctx, 60); !ok {
		t.Fatal("no convergence after volatile relay crash")
	}
	if full := tr.UplinkFullFrames(); full == fullBefore {
		t.Fatal("volatile relay crash produced no full-state rebuild — what did the root merge?")
	}
	if tr.Relays[1].Relay.Agg().Stats().Resyncs == 0 {
		t.Fatal("members never resynced into the empty relay")
	}
	checkTreeConverged(t, tr)
}

// TestTreeDurableRootCrash kills the root: durable restart keeps every
// relay's frontier, so recovery is zero resyncs and zero full frames on
// every uplink.
func TestTreeDurableRootCrash(t *testing.T) {
	seed := seeds[1]
	tr, err := NewTree(cmsFixedSpec(), cmsFixedSpec(), treeTraces(2, 2, 2000, seed),
		TreeOptions{Plan: Plan{Seed: seed, Drop: 0.15}, DataDir: t.TempDir(), SnapshotEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	runTree(ctx, tr, 8, 120)
	if _, ok := tr.Converge(ctx, 60); !ok {
		t.Fatal("warm-up did not converge")
	}
	fullBefore := tr.UplinkFullFrames()

	if err := tr.CrashRoot(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Root.RestoreError(); err != nil {
		t.Fatalf("root restore failed: %v", err)
	}
	runTree(ctx, tr, 4, 100)
	if _, ok := tr.Converge(ctx, 60); !ok {
		t.Fatal("no convergence after durable root crash")
	}
	if n := tr.Root.Stats().Resyncs; n != 0 {
		t.Fatalf("durable root restart cost %d resyncs", n)
	}
	if full := tr.UplinkFullFrames(); full != fullBefore {
		t.Fatal("full frames crossed the uplinks after a durable root restart")
	}
	checkTreeConverged(t, tr)
}

// TestTreeSimultaneousRestarts is the datacenter-power-blip scenario:
// root AND every relay die in the same instant, all durable. Everything
// restores from disk; the whole tree reconverges with zero resyncs at
// every tier.
func TestTreeSimultaneousRestarts(t *testing.T) {
	seed := seeds[2]
	tr, err := NewTree(cmsFixedSpec(), cmsFixedSpec(), treeTraces(2, 2, 2000, seed),
		TreeOptions{Plan: Plan{Seed: seed, Drop: 0.15}, DataDir: t.TempDir(), SnapshotEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	runTree(ctx, tr, 8, 120)
	if _, ok := tr.Converge(ctx, 60); !ok {
		t.Fatal("warm-up did not converge")
	}
	fullBefore := tr.UplinkFullFrames()

	if err := tr.CrashRoot(); err != nil {
		t.Fatal(err)
	}
	for i := range tr.Relays {
		if err := tr.CrashRelay(i); err != nil {
			t.Fatal(err)
		}
	}
	runTree(ctx, tr, 4, 100)
	if _, ok := tr.Converge(ctx, 60); !ok {
		t.Fatal("no convergence after simultaneous restarts")
	}
	if n := tr.Root.Stats().Resyncs; n != 0 {
		t.Fatalf("simultaneous durable restarts cost %d root resyncs", n)
	}
	for i, node := range tr.Relays {
		if n := node.Relay.Agg().Stats().Resyncs; n != 0 {
			t.Fatalf("relay %d absorbed %d member resyncs after its durable restart", i, n)
		}
	}
	if full := tr.UplinkFullFrames(); full != fullBefore {
		t.Fatal("full frames crossed the uplinks after simultaneous durable restarts")
	}
	checkTreeConverged(t, tr)
}

// TestTreeInterTierPartition severs one relay's uplink while its subtree
// keeps absorbing traffic, then heals: the outage must drain in at most
// two data frames on that uplink (the frozen frame plus one coalesced
// delta), regardless of outage length — the relay's table coalesces the
// whole backlog exactly like an edge agent's sketch does.
func TestTreeInterTierPartition(t *testing.T) {
	seed := seeds[0]
	tr, err := NewTree(cmsFixedSpec(), cmsFixedSpec(), treeTraces(2, 2, 4000, seed),
		TreeOptions{Plan: Plan{Seed: seed}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	runTree(ctx, tr, 5, 150)
	if _, ok := tr.Converge(ctx, 30); !ok {
		t.Fatal("warm-up did not converge")
	}

	cut := tr.Relays[0]
	cut.Up.Partition(true)
	// A long outage: the subtree keeps feeding and pushing the whole time.
	runTree(ctx, tr, 20, 100)
	if cut.Relay.Synced() {
		t.Fatal("relay synced through a partitioned uplink")
	}
	ackedBefore := cut.Relay.Stats().FramesAcked

	cut.Up.Heal()
	if _, ok := tr.Converge(ctx, 30); !ok {
		t.Fatal("no convergence after heal")
	}
	if drained := cut.Relay.Stats().FramesAcked - ackedBefore; drained > 2 {
		t.Fatalf("uplink outage drained in %d data frames, want ≤ 2 (frozen + coalesced)", drained)
	}
	checkTreeConverged(t, tr)
}
