package faulttest

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"salsa/internal/salsad"
)

// Disk-fault scenarios: kill -9 + restart against a durable snapshot
// directory, with the directory itself under attack. The plans here use
// Drop as the only network fault so every delivered frame is unique —
// that makes the transport's FullFrames counter an exact gauge of
// recovery traffic: one full frame per member ever means zero resyncs
// and zero full resends across every crash in the run.

// newDurableFixture builds a durable cluster, runs a faulted warm-up,
// and converges it so the snapshot directory is populated and hot.
func newDurableFixture(t *testing.T, seed int64, snapshotEvery int) *Cluster {
	t.Helper()
	c, err := NewDurableCluster(cmsFixedSpec(), cmsFixedSpec(), traces(3, 2000, seed),
		Plan{Seed: seed, Drop: 0.15}, t.TempDir(), snapshotEvery)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for round := 0; round < 8; round++ {
		for _, m := range c.Members {
			m.Feed(150)
		}
		c.Pump(ctx)
	}
	if _, ok := c.Converge(ctx, 50); !ok {
		t.Fatalf("seed=%d: warm-up did not converge", seed)
	}
	return c
}

// TestDurableAggregatorCrashZeroResync is the headline durability claim:
// a snapshotting aggregator survives kill -9 with zero resyncs and zero
// full-state retransmissions — recovery traffic is O(delta since last
// ack), never O(cluster state).
func TestDurableAggregatorCrashZeroResync(t *testing.T) {
	for _, seed := range seeds {
		t.Logf("seed=%d", seed)
		c := newDurableFixture(t, seed, 1)
		ctx := context.Background()
		fullBefore := c.Transport.Stats().FullFrames

		for crash := 0; crash < 3; crash++ {
			if err := c.CrashAggregator(); err != nil {
				t.Fatal(err)
			}
			if err := c.Agg.RestoreError(); err != nil {
				t.Fatalf("seed=%d: clean restore failed: %v", seed, err)
			}
			for round := 0; round < 4; round++ {
				for _, m := range c.Members {
					m.Feed(100)
				}
				c.Pump(ctx)
			}
		}
		if _, ok := c.Converge(ctx, 50); !ok {
			t.Fatalf("seed=%d: no convergence across durable restarts", seed)
		}
		if n := c.Agg.Stats().Resyncs; n != 0 {
			t.Fatalf("seed=%d: durable restarts cost %d resyncs, want 0", seed, n)
		}
		if full := c.Transport.Stats().FullFrames; full != fullBefore {
			t.Fatalf("seed=%d: %d full-state frames crossed the wire after restarts (had %d)",
				seed, full-fullBefore, fullBefore)
		}
		checkConverged(t, c, true)
	}
}

// TestDurableAggregatorCorruptNewestFallsBack corrupts the newest
// snapshot: the restart must fall back to the older one, and the member
// whose frame only the corrupt snapshot held re-establishes itself via
// one resync — recovery bounded by the snapshot interval, not cluster
// size.
func TestDurableAggregatorCorruptNewestFallsBack(t *testing.T) {
	seed := seeds[0]
	c := newDurableFixture(t, seed, 1)
	ctx := context.Background()
	dir := c.DataDir

	path, err := CorruptLatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("corrupted %s", filepath.Base(path))
	if err := c.CrashAggregator(); err != nil {
		t.Fatal(err)
	}
	// An older snapshot loaded: not a restore failure, but a stale
	// frontier some member is ahead of.
	if err := c.Agg.RestoreError(); err != nil {
		t.Fatalf("fallback restore failed outright: %v", err)
	}
	for round := 0; round < 4; round++ {
		for _, m := range c.Members {
			m.Feed(100)
		}
		c.Pump(ctx)
	}
	if _, ok := c.Converge(ctx, 50); !ok {
		t.Fatal("no convergence after fallback restore")
	}
	if n := c.Agg.Stats().Resyncs; n == 0 {
		t.Fatal("stale fallback frontier never forced a resync — a gapped frame was absorbed silently")
	} else if n > uint64(len(c.Members)) {
		t.Fatalf("fallback cost %d resyncs for %d members; recovery is not bounded by the delta",
			n, len(c.Members))
	}
	checkConverged(t, c, true)
}

// TestDurableAggregatorAllSnapshotsCorrupt is the total-disk-loss case:
// restore fails with a typed SnapshotError, the aggregator starts empty,
// and the cluster recovers through the ordinary resync path — corruption
// degrades to the volatile behavior, never to wrong answers.
func TestDurableAggregatorAllSnapshotsCorrupt(t *testing.T) {
	seed := seeds[1]
	c := newDurableFixture(t, seed, 1)
	ctx := context.Background()

	if _, err := CorruptAllSnapshots(c.DataDir); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashAggregator(); err != nil {
		t.Fatal(err)
	}
	var snapErr *salsad.SnapshotError
	if err := c.Agg.RestoreError(); !errors.As(err, &snapErr) {
		t.Fatalf("want a typed *salsad.SnapshotError, got %v", err)
	}
	if snapErr.Path == "" || snapErr.Reason == "" {
		t.Fatalf("snapshot error does not name the evidence: %+v", snapErr)
	}
	if _, ok := c.Converge(ctx, 50); !ok {
		t.Fatal("no convergence after total snapshot loss")
	}
	if c.Agg.Stats().Resyncs == 0 {
		t.Fatal("empty restart never resynced — where did the state come from?")
	}
	checkConverged(t, c, true)
}

// TestDurableAggregatorStaleReplayRejected restores a backup of the
// oldest snapshot over the newest epoch — the classic operator mistake.
// The embedded epoch gives the forgery away; the genuine newest state
// loads instead and nothing resyncs.
func TestDurableAggregatorStaleReplayRejected(t *testing.T) {
	seed := seeds[2]
	c := newDurableFixture(t, seed, 1)
	ctx := context.Background()

	forged, err := ReplayStaleSnapshot(c.DataDir)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("forged %s", filepath.Base(forged))
	if err := c.CrashAggregator(); err != nil {
		t.Fatal(err)
	}
	if err := c.Agg.RestoreError(); err != nil {
		t.Fatalf("restore failed instead of skipping the forgery: %v", err)
	}
	fullBefore := c.Transport.Stats().FullFrames
	for round := 0; round < 4; round++ {
		for _, m := range c.Members {
			m.Feed(100)
		}
		c.Pump(ctx)
	}
	if _, ok := c.Converge(ctx, 50); !ok {
		t.Fatal("no convergence after stale replay")
	}
	if n := c.Agg.Stats().Resyncs; n != 0 {
		t.Fatalf("stale replay cost %d resyncs; the genuine newest snapshot should have loaded", n)
	}
	if full := c.Transport.Stats().FullFrames; full != fullBefore {
		t.Fatal("full-state frames crossed the wire after a rejected stale replay")
	}
	checkConverged(t, c, true)
}

// TestDurableAggregatorTornTmpSwept plants a crash-mid-write .tmp file:
// it must never be loaded, and the restarted store sweeps it.
func TestDurableAggregatorTornTmpSwept(t *testing.T) {
	seed := seeds[0]
	c := newDurableFixture(t, seed, 1)

	tmp, err := TornTmpSnapshot(c.DataDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CrashAggregator(); err != nil {
		t.Fatal(err)
	}
	if err := c.Agg.RestoreError(); err != nil {
		t.Fatalf("a .tmp file disturbed the restore: %v", err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("torn tmp file still present after restart: %v", err)
	}
	if _, ok := c.Converge(context.Background(), 20); !ok {
		t.Fatal("no convergence after tmp sweep")
	}
	checkConverged(t, c, true)
}

// TestDurableCrashDuringSnapshotWindow crashes the aggregator between
// persistence ticks (SnapshotEvery larger than the applied count since
// the last tick), so real acknowledged frames die with the process. The
// survivors' gapped pushes must resync — lossy-but-safe, never silent
// absorption — and the cluster still converges to the exact answer.
func TestDurableCrashDuringSnapshotWindow(t *testing.T) {
	seed := seeds[1]
	// A wide persistence interval guarantees un-persisted applied frames.
	c := newDurableFixture(t, seed, 1000)
	ctx := context.Background()

	if err := c.CrashAggregator(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		for _, m := range c.Members {
			m.Feed(100)
		}
		c.Pump(ctx)
	}
	if _, ok := c.Converge(ctx, 50); !ok {
		t.Fatal("no convergence after lossy restart")
	}
	if c.Agg.Stats().Resyncs == 0 && c.Agg.Stats().Applied > 0 {
		// Whether anything was lost depends on the snapshot interval vs
		// warm-up length; with SnapshotEvery=1000 nothing was ever
		// persisted, so every member must have resynced.
		t.Fatal("acknowledged-but-unpersisted frames were absorbed without a resync")
	}
	checkConverged(t, c, true)
}
