// Package faulttest is the proof spine of the salsad protocol: a seeded,
// deterministic, in-process fault-injection harness. A Transport wraps an
// Aggregator and — driven entirely by one PRNG seed — drops frames,
// duplicates them, loses acks after delivery, holds frames back and
// releases them out of order later, and severs the link outright. A
// Cluster drives several Agents over that transport from recorded traces,
// crash-restarts them (and the aggregator) mid-run, and finally asserts
// convergence: once the faults heal and every agent reports Synced, the
// aggregator's answer must match a no-fault reference — byte-identically
// for the backends whose merges are counter-exact.
//
// Every schedule is a pure function of the seed: log the seed, replay the
// failure.
//
//salsa:deterministic
package faulttest

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"salsa"
	"salsa/internal/salsad"
)

// Plan sets the per-frame fault probabilities of a Transport. All
// randomness flows from Seed; a zero Plan (seed 0, all probabilities 0)
// is a perfect network.
type Plan struct {
	// Seed drives every fault decision. Same seed, same schedule.
	Seed int64
	// Drop is the probability a frame vanishes before the aggregator.
	Drop float64
	// Dup is the probability a delivered frame arrives a second time.
	Dup float64
	// AckLoss is the probability the frame is applied but the ack is lost
	// on the way back — the canonical cause of retried duplicates.
	AckLoss float64
	// Delay is the probability a frame is held in the network and
	// released during some later delivery — arriving out of order.
	Delay float64
}

// TransportStats counts injected faults, for assertions that a schedule
// actually exercised what it claims to.
type TransportStats struct {
	Delivered  uint64
	Dropped    uint64
	Duplicated uint64
	AcksLost   uint64
	Delayed    uint64
	Released   uint64
	Partition  uint64 // frames refused while partitioned
	// FullFrames counts delivered full-state (FlagFull) data frames — the
	// expensive resync traffic. Recovery-cost assertions bound it: a
	// durable restart must add zero, a volatile restart O(agents).
	FullFrames uint64
}

// Transport is a salsad.Transport that injects faults deterministically.
// Frames cross a real Encode/DecodePush cycle on every delivery, so the
// harness exercises the full wire path, and held frames are re-decoded at
// release time — a late duplicate is an independent copy, exactly as on a
// real network.
type Transport struct {
	mu          sync.Mutex
	agg         *salsad.Aggregator
	rng         *rand.Rand
	plan        Plan
	partitioned bool
	held        [][]byte // encoded frames in flight inside the "network"
	stats       TransportStats
}

// NewTransport wraps an aggregator in a faulty network.
func NewTransport(agg *salsad.Aggregator, plan Plan) *Transport {
	return &Transport{agg: agg, rng: rand.New(rand.NewSource(plan.Seed)), plan: plan}
}

// Partition severs (or restores) the agent↔aggregator link. Frames held
// in flight stay held until delivery resumes.
func (t *Transport) Partition(on bool) {
	t.mu.Lock()
	t.partitioned = on
	t.mu.Unlock()
}

// SwapAggregator points the transport at a replacement aggregator — the
// old one "crashed". Frames still held in the network will be released
// into the new instance, exactly like packets outliving a server restart.
func (t *Transport) SwapAggregator(agg *salsad.Aggregator) {
	t.mu.Lock()
	t.agg = agg
	t.mu.Unlock()
}

// Stats returns fault counters since construction.
func (t *Transport) Stats() TransportStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// errNet is the transport's "delivery unknown" failure.
type errNet string

func (e errNet) Error() string { return "faulttest: " + string(e) }

// Push implements salsad.Transport.
func (t *Transport) Push(_ context.Context, p *salsad.Push) (*salsad.Ack, error) {
	enc, err := p.Encode()
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.partitioned {
		t.stats.Partition++
		return nil, errNet("partitioned")
	}
	// The network may first release frames it was holding — they arrive
	// before (and therefore out of order with) the current push.
	t.releaseSomeLocked()

	switch {
	case t.rng.Float64() < t.plan.Drop:
		t.stats.Dropped++
		return nil, errNet("dropped")
	case t.rng.Float64() < t.plan.Delay:
		t.stats.Delayed++
		t.held = append(t.held, enc)
		return nil, errNet("delayed")
	}
	ack, err := t.deliverLocked(enc)
	if err != nil {
		return nil, err
	}
	if t.rng.Float64() < t.plan.Dup {
		t.stats.Duplicated++
		t.deliverLocked(enc)
	}
	if t.rng.Float64() < t.plan.AckLoss {
		t.stats.AcksLost++
		return nil, errNet("ack lost")
	}
	return ack, nil
}

// Resume implements salsad.Transport. Resume calls ride the same
// partition as pushes.
func (t *Transport) Resume(_ context.Context, agent string) (*salsad.ResumeInfo, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.partitioned {
		t.stats.Partition++
		return nil, errNet("partitioned")
	}
	info := t.agg.Resume(agent)
	return &info, nil
}

// deliverLocked carries one encoded frame across the wire path into the
// aggregator, then gives a durable aggregator its persistence tick — the
// same MaybePersist call the HTTP handler makes after an applied push.
func (t *Transport) deliverLocked(enc []byte) (*salsad.Ack, error) {
	p, err := salsad.DecodePush(enc, t.agg.MaxEnvelopeBytes())
	if err != nil {
		return nil, err
	}
	t.stats.Delivered++
	if p.Full() && !p.Heartbeat() {
		t.stats.FullFrames++
	}
	ack, err := t.agg.ApplyPush(p)
	if err == nil && ack.Status == salsad.StatusApplied {
		t.agg.MaybePersist() //nolint:errcheck // counted in aggregator stats
	}
	return ack, err
}

// releaseSomeLocked lets each held frame escape the network with
// probability ½; their acks go nowhere (the original sender already gave
// up on them).
func (t *Transport) releaseSomeLocked() {
	kept := t.held[:0]
	for _, enc := range t.held {
		if t.rng.Float64() < 0.5 {
			t.stats.Released++
			t.deliverLocked(enc)
		} else {
			kept = append(kept, enc)
		}
	}
	t.held = kept
}

// Heal restores the link and flushes every held frame into the
// aggregator. After Heal the network is perfect (probabilities still
// apply to new frames; call with a zero Plan for a truly clean tail).
func (t *Transport) Heal() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.partitioned = false
	for _, enc := range t.held {
		t.stats.Released++
		t.deliverLocked(enc)
	}
	t.held = nil
}

// Quiet disables all fault probabilities (the partition state and held
// frames are untouched — pair with Heal for a clean network).
func (t *Transport) Quiet() {
	t.mu.Lock()
	t.plan.Drop, t.plan.Dup, t.plan.AckLoss, t.plan.Delay = 0, 0, 0, 0
	t.mu.Unlock()
}

// Member is one edge agent plus its durable upstream trace. The trace is
// the replayable source of truth: a crash loses the in-memory sketch but
// never the trace, and the cursor protocol re-reads it.
type Member struct {
	ID    string
	Trace []uint64
	Agent *salsad.Agent
	// fed is the upstream frontier: how many trace items the source has
	// produced so far. A restart re-ingests [cursor, fed) — items the
	// dead incarnation consumed but never got acknowledged.
	fed int
}

// Cluster is a set of members pushing to one aggregator through one
// faulty transport.
type Cluster struct {
	Spec      salsa.Spec // aggregator core topology
	AgentSpec salsa.Spec // agent ingest topology (may be epoch-wrapped)
	Transport *Transport
	Agg       *salsad.Aggregator
	Members   []*Member
	// DataDir/SnapshotEvery make the aggregator durable: CrashAggregator
	// then restarts it from its snapshot directory instead of empty.
	DataDir       string
	SnapshotEvery int
	seed          int64
}

// NewCluster builds an aggregator, a faulty transport, and n members with
// the given traces.
func NewCluster(spec, agentSpec salsa.Spec, traces [][]uint64, plan Plan) (*Cluster, error) {
	return NewDurableCluster(spec, agentSpec, traces, plan, "", 0)
}

// NewDurableCluster is NewCluster with a durable aggregator: its table is
// snapshotted under dataDir every snapshotEvery applied frames (plus the
// transport's per-apply MaybePersist tick) and CrashAggregator restarts
// it from disk. Empty dataDir means volatile, exactly NewCluster.
func NewDurableCluster(spec, agentSpec salsa.Spec, traces [][]uint64, plan Plan, dataDir string, snapshotEvery int) (*Cluster, error) {
	agg, err := salsad.NewAggregator(salsad.AggregatorConfig{
		Spec: spec, DataDir: dataDir, SnapshotEvery: snapshotEvery,
	})
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		Spec:          spec,
		AgentSpec:     agentSpec,
		Transport:     NewTransport(agg, plan),
		Agg:           agg,
		DataDir:       dataDir,
		SnapshotEvery: snapshotEvery,
		seed:          plan.Seed,
	}
	for i, trace := range traces {
		m := &Member{ID: fmt.Sprintf("edge-%02d", i), Trace: trace}
		if err := c.startMember(m, 0, 0); err != nil {
			return nil, err
		}
		c.Members = append(c.Members, m)
	}
	return c, nil
}

// startMember builds (or rebuilds) a member's agent at the given
// generation and cursor, wiring the Replay hook to the durable trace. The
// jitter seed is derived from the plan seed and the member id, so backoff
// schedules are a pure function of the plan — never crypto-seeded inside
// the deterministic harness.
func (c *Cluster) startMember(m *Member, gen, cursor uint64) error {
	ag, err := salsad.NewAgent(salsad.AgentConfig{
		ID:          m.ID,
		Spec:        c.AgentSpec,
		Transport:   c.Transport,
		Generation:  gen,
		StartCursor: cursor,
		MaxAttempts: 2, // the harness pumps rounds; keep each round short
		JitterSeed:  jitterSeed(c.seed, m.ID),
		Sleep:       func(time.Duration) {},
	})
	if err != nil {
		return err
	}
	m.Agent = ag
	return nil
}

// jitterSeed derives a per-node backoff seed from the plan seed and the
// node id (FNV-1a over both, forced non-zero so the agent never falls
// back to crypto seeding).
func jitterSeed(planSeed int64, id string) uint64 {
	h := uint64(0xcbf29ce484222325)
	mix := func(b byte) { h ^= uint64(b); h *= 0x100000001b3 }
	for i := 0; i < 8; i++ {
		mix(byte(uint64(planSeed) >> (8 * i)))
	}
	for i := 0; i < len(id); i++ {
		mix(id[i])
	}
	if h == 0 {
		h = 1
	}
	return h
}

// Feed ingests the next n trace items into the member's live sketch.
func (m *Member) Feed(n int) {
	end := m.fed + n
	if end > len(m.Trace) {
		end = len(m.Trace)
	}
	for _, x := range m.Trace[m.fed:end] {
		m.Agent.Ingest(x)
	}
	m.fed = end
}

// Crash kills the member's in-memory incarnation and restarts it via the
// Resume protocol: the new incarnation gets a fresh generation and
// re-ingests the trace from the aggregator's cursor through the frontier
// the dead process had consumed.
func (c *Cluster) Crash(ctx context.Context, m *Member) error {
	gen, cursor, err := salsad.Resume(ctx, c.Transport, m.ID)
	if err != nil {
		return err
	}
	if err := c.startMember(m, gen, cursor); err != nil {
		return err
	}
	for _, x := range m.Trace[cursor:m.fed] {
		m.Agent.Ingest(x)
	}
	return nil
}

// CrashAggregator kills the aggregator process: a volatile cluster gets
// an empty replacement (agents discover it through resync acks), a
// durable one restarts from its snapshot directory — the kill -9 +
// restart the zero-resync guarantee is about.
func (c *Cluster) CrashAggregator() error {
	agg, err := salsad.NewAggregator(salsad.AggregatorConfig{
		Spec: c.Spec, DataDir: c.DataDir, SnapshotEvery: c.SnapshotEvery,
	})
	if err != nil {
		return err
	}
	c.Agg = agg
	c.Transport.SwapAggregator(agg)
	return nil
}

// Pump runs one push round: every member attempts one PushOnce; transport
// errors are the faulty network doing its job and are swallowed.
func (c *Cluster) Pump(ctx context.Context) {
	for _, m := range c.Members {
		m.Agent.PushOnce(ctx) //nolint:errcheck // faults are expected
	}
}

// Converge heals the network and pumps until every member is Synced,
// bounded by maxRounds. It returns the number of rounds used and whether
// the cluster converged.
func (c *Cluster) Converge(ctx context.Context, maxRounds int) (int, bool) {
	c.Transport.Quiet()
	c.Transport.Heal()
	for round := 1; round <= maxRounds; round++ {
		c.Pump(ctx)
		if c.Synced() {
			return round, true
		}
	}
	return maxRounds, false
}

// Synced reports whether every member has everything acknowledged.
func (c *Cluster) Synced() bool {
	for _, m := range c.Members {
		if !m.Agent.Synced() {
			return false
		}
	}
	return true
}

// ReferenceBytes is the no-fault sequential reference: one sketch of the
// aggregator's topology fed every member's consumed trace prefix in
// member order, marshaled. For counter-exact sum-merge backends a
// quiesced aggregator must produce these bytes no matter what the network
// did.
func (c *Cluster) ReferenceBytes() ([]byte, error) {
	ref, err := salsa.Build(c.Spec)
	if err != nil {
		return nil, err
	}
	core, err := salsa.DeltaCore(ref)
	if err != nil {
		return nil, err
	}
	for _, m := range c.Members {
		for _, x := range m.Trace[:m.fed] {
			core.Update(x, 1)
		}
	}
	return salsa.Marshal(core)
}

// ExactCounts returns the true frequency of every item across all
// members' consumed prefixes — the ground truth value-equivalence checks
// compare against.
func (c *Cluster) ExactCounts() map[uint64]int64 {
	exact := make(map[uint64]int64)
	for _, m := range c.Members {
		for _, x := range m.Trace[:m.fed] {
			exact[x]++
		}
	}
	return exact
}
