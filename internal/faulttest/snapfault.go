package faulttest

// Disk-fault injection for the snapshot store: deterministic corruptions
// of on-disk snapshot files, modeling what crashes, bad sectors, and
// operator mistakes actually produce. Each helper returns the path it
// damaged so tests can assert the typed rejection names the right file.

import (
	"os"
	"path/filepath"
	"sort"

	"salsa/internal/salsad"
)

// snapshotEpochs lists the epochs of every named snapshot file under dir
// in ascending order.
func snapshotEpochs(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var epochs []uint64
	for _, ent := range entries {
		if e, ok := salsad.ParseSnapshotFileName(ent.Name()); ok {
			epochs = append(epochs, e)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	return epochs, nil
}

// latestSnapshot returns the path and epoch of the newest snapshot file.
func latestSnapshot(dir string) (string, uint64, error) {
	epochs, err := snapshotEpochs(dir)
	if err != nil {
		return "", 0, err
	}
	if len(epochs) == 0 {
		return "", 0, os.ErrNotExist
	}
	e := epochs[len(epochs)-1]
	return filepath.Join(dir, salsad.SnapshotFileName(e)), e, nil
}

// CorruptLatestSnapshot flips one bit in the middle of the newest
// snapshot file — a torn write or bad sector. The checksum must reject
// it.
func CorruptLatestSnapshot(dir string) (string, error) {
	path, _, err := latestSnapshot(dir)
	if err != nil {
		return "", err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	data[len(data)/2] ^= 0x40
	return path, os.WriteFile(path, data, 0o644)
}

// CorruptAllSnapshots flips a bit in every snapshot file under dir — a
// dying disk taking the whole directory with it. Restores must fail with
// a typed error rather than load garbage.
func CorruptAllSnapshots(dir string) ([]string, error) {
	epochs, err := snapshotEpochs(dir)
	if err != nil {
		return nil, err
	}
	if len(epochs) == 0 {
		return nil, os.ErrNotExist
	}
	var paths []string
	for _, e := range epochs {
		path := filepath.Join(dir, salsad.SnapshotFileName(e))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// TruncateLatestSnapshot cuts the newest snapshot file to half its
// length — a crash mid-write that somehow still got the file named (e.g.
// a non-atomic copy by an operator). The length/checksum checks must
// reject it.
func TruncateLatestSnapshot(dir string) (string, error) {
	path, _, err := latestSnapshot(dir)
	if err != nil {
		return "", err
	}
	info, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	return path, os.Truncate(path, info.Size()/2)
}

// ReplayStaleSnapshot copies the oldest snapshot's bytes under a
// newer-than-newest file name — a backup restored into a live data dir.
// The embedded epoch no longer matches the filename, so the store must
// reject it as a stale-epoch replay rather than silently rewinding state.
func ReplayStaleSnapshot(dir string) (string, error) {
	epochs, err := snapshotEpochs(dir)
	if err != nil {
		return "", err
	}
	if len(epochs) == 0 {
		return "", os.ErrNotExist
	}
	oldest := filepath.Join(dir, salsad.SnapshotFileName(epochs[0]))
	data, err := os.ReadFile(oldest)
	if err != nil {
		return "", err
	}
	forged := filepath.Join(dir, salsad.SnapshotFileName(epochs[len(epochs)-1]+1))
	return forged, os.WriteFile(forged, data, 0o644)
}

// TornTmpSnapshot drops a half-written .tmp file into the data dir — a
// crash during snapshot assembly, before the atomic rename. It must be
// invisible to loads and swept by the next OpenStore.
func TornTmpSnapshot(dir string) (string, error) {
	_, epoch, err := latestSnapshot(dir)
	if err != nil && !os.IsNotExist(err) {
		return "", err
	}
	path := filepath.Join(dir, salsad.SnapshotFileName(epoch+1)+".tmp")
	return path, os.WriteFile(path, []byte("torn mid-wri"), 0o644)
}
