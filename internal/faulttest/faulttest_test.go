package faulttest

import (
	"bytes"
	"context"
	"sort"
	"testing"

	"salsa"
	"salsa/internal/salsad"
	"salsa/internal/stream"
)

// seeds exercised by every scenario. Each is logged with the failure so a
// red run replays exactly: `go test -run TestName ./internal/faulttest`.
var seeds = []int64{1, 42, 20210419} // 20210419: SALSA's ICDE publication date

func cmsFixedSpec() salsa.Spec {
	return salsa.CountMinOf(salsa.Options{
		Width: 1 << 10, Mode: salsa.ModeBaseline, Merge: salsa.MergeSum, Seed: 77,
	})
}

// backends the convergence scenarios run over. wantBytes marks the
// counter-exact ones, whose quiesced aggregator must be byte-identical to
// the no-fault sequential reference. The SALSA-mode variants converge to
// exact values but their dynamic counter layout depends on merge grouping
// when contributions split across generations, and conservative update is
// not multiset-determined — those are held to exact value equivalence.
var backends = []struct {
	name      string
	spec      salsa.Spec
	wantBytes bool
}{
	{"cms-fixed", cmsFixedSpec(), true},
	{"cs-fixed", salsa.CountSketchOf(salsa.Options{Width: 1 << 10, Mode: salsa.ModeBaseline, Seed: 77}), true},
	{"cms-salsa", salsa.CountMinOf(salsa.Options{Width: 1 << 10, Merge: salsa.MergeSum, Seed: 77}), false},
}

func traces(n, perAgent int, seed int64) [][]uint64 {
	out := make([][]uint64, n)
	for i := range out {
		out[i] = stream.Zipf(perAgent, 1<<12, 1.1, uint64(seed)+uint64(i)*1000)
	}
	return out
}

// checkConverged asserts the quiesced aggregator matches the no-fault
// reference: byte-identically when the backend is counter-exact, and by
// exact per-item counts always.
func checkConverged(t *testing.T, c *Cluster, wantBytes bool) {
	t.Helper()
	got, err := c.Agg.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.ReferenceBytes()
	if err != nil {
		t.Fatal(err)
	}
	if wantBytes && !bytes.Equal(got, want) {
		t.Fatalf("quiesced aggregator (%d bytes) is not byte-identical to the no-fault reference (%d bytes)",
			len(got), len(want))
	}
	// Value equivalence against the reference sketch (estimate-exact: the
	// same multiset through the same seeded topology).
	ref, err := salsa.Unmarshal(want)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := c.Agg.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	exact := c.ExactCounts()
	items := make([]uint64, 0, len(exact))
	for item := range exact {
		items = append(items, item)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	for _, item := range items {
		if got, want := querySketch(t, merged, item), querySketch(t, ref, item); got != want {
			t.Fatalf("item %d: aggregator estimate %d != reference %d", item, got, want)
		}
	}
}

func querySketch(t *testing.T, s salsa.Sketch, item uint64) int64 {
	t.Helper()
	switch v := s.(type) {
	case *salsa.CountMin:
		return int64(v.Query(item))
	case *salsa.CountSketch:
		return v.Query(item)
	default:
		t.Fatalf("unsupported %T", s)
		return 0
	}
}

// TestLossyNetworkConvergence runs a cluster through a network that
// drops, duplicates, delays/reorders, and loses acks — then quiesces and
// demands the no-fault answer.
func TestLossyNetworkConvergence(t *testing.T) {
	for _, b := range backends {
		for _, seed := range seeds {
			t.Run(b.name, func(t *testing.T) {
				t.Logf("seed=%d", seed)
				plan := Plan{Seed: seed, Drop: 0.15, Dup: 0.15, AckLoss: 0.15, Delay: 0.15}
				c, err := NewCluster(b.spec, b.spec, traces(4, 3000, seed), plan)
				if err != nil {
					t.Fatal(err)
				}
				ctx := context.Background()
				for round := 0; round < 20; round++ {
					for _, m := range c.Members {
						m.Feed(150)
					}
					c.Pump(ctx)
				}
				rounds, ok := c.Converge(ctx, 50)
				if !ok {
					t.Fatalf("seed=%d: cluster did not converge in 50 clean rounds", seed)
				}
				t.Logf("seed=%d: converged after %d clean rounds; transport=%+v", seed, rounds, c.Transport.Stats())
				st := c.Transport.Stats()
				if st.Dropped == 0 || st.Duplicated == 0 || st.AcksLost == 0 || st.Delayed == 0 {
					t.Fatalf("seed=%d: schedule failed to exercise every fault class: %+v", seed, st)
				}
				checkConverged(t, c, b.wantBytes)
			})
		}
	}
}

// TestPartitionCoalesce severs the link mid-run, keeps feeding, and pins
// the graceful-degradation contract: the frozen in-flight frame never
// changes during the outage (O(sketch) buffering, retries byte-identical)
// and the whole outage drains in at most two post-heal data frames.
func TestPartitionCoalesce(t *testing.T) {
	for _, seed := range seeds {
		t.Logf("seed=%d", seed)
		c, err := NewCluster(cmsFixedSpec(), cmsFixedSpec(), traces(3, 4000, seed), Plan{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for round := 0; round < 5; round++ {
			for _, m := range c.Members {
				m.Feed(200)
			}
			c.Pump(ctx)
		}
		if !c.Synced() {
			t.Fatalf("seed=%d: clean warm-up did not sync", seed)
		}

		c.Transport.Partition(true)
		// One push attempt freezes a frame; the rest of the outage piles
		// into the live sketch only.
		for _, m := range c.Members {
			m.Feed(100)
		}
		c.Pump(ctx)
		type frozen struct{ acked uint64 }
		before := make([]frozen, len(c.Members))
		for i, m := range c.Members {
			if m.Agent.Synced() {
				t.Fatalf("seed=%d: member %s synced through a partition", seed, m.ID)
			}
			before[i] = frozen{acked: m.Agent.Stats().FramesAcked}
		}
		for round := 0; round < 30; round++ { // a long outage: 3000 items/member
			for _, m := range c.Members {
				m.Feed(100)
			}
			c.Pump(ctx)
		}

		c.Transport.Heal()
		perMemberBefore := make([]uint64, len(c.Members))
		for i, m := range c.Members {
			perMemberBefore[i] = m.Agent.Stats().FramesAcked
			if perMemberBefore[i] != before[i].acked {
				t.Fatalf("seed=%d: member %s had frames acked during the partition", seed, m.ID)
			}
		}
		rounds, ok := c.Converge(ctx, 10)
		if !ok {
			t.Fatalf("seed=%d: did not converge after heal", seed)
		}
		for i, m := range c.Members {
			if drained := m.Agent.Stats().FramesAcked - perMemberBefore[i]; drained > 2 {
				t.Fatalf("seed=%d: member %s needed %d data frames to drain the outage, want ≤ 2 (frozen + coalesced)",
					seed, m.ID, drained)
			}
		}
		t.Logf("seed=%d: outage drained in %d rounds", seed, rounds)
		checkConverged(t, c, true)
	}
}

// TestAgentCrashRestart crashes members mid-stream (losing unacked
// in-memory state), restarts them through the Resume protocol, and
// demands exactly-once accounting end to end. Agents run behind the epoch
// ingest layer to cover the EpochShardedBy path.
func TestAgentCrashRestart(t *testing.T) {
	for _, seed := range seeds {
		t.Logf("seed=%d", seed)
		spec := cmsFixedSpec()
		c, err := NewCluster(spec, salsa.EpochShardedBy(spec, 2), traces(3, 3000, seed), Plan{Seed: seed, Drop: 0.1, AckLoss: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for round := 0; round < 10; round++ {
			for _, m := range c.Members {
				m.Feed(150)
			}
			c.Pump(ctx)
			// Crash a rotating victim every few rounds.
			if round%3 == 2 {
				victim := c.Members[round/3%len(c.Members)]
				c.Transport.Quiet() // Resume must get through; crash during faults is the partition test's job
				if err := c.Crash(ctx, victim); err != nil {
					t.Fatalf("seed=%d round %d: crash-restart %s: %v", seed, round, victim.ID, err)
				}
				c.Transport.Quiet()
			}
		}
		if _, ok := c.Converge(ctx, 50); !ok {
			t.Fatalf("seed=%d: no convergence after crash-restarts", seed)
		}
		checkConverged(t, c, true)
	}
}

// TestAggregatorCrashRestart wipes the aggregator mid-run. Members learn
// of it through resync acks and rebuild their full contribution under a
// fresh generation; afterwards the empty-restarted aggregator must hold
// the complete exact state again.
func TestAggregatorCrashRestart(t *testing.T) {
	for _, b := range backends {
		for _, seed := range seeds {
			t.Run(b.name, func(t *testing.T) {
				t.Logf("seed=%d", seed)
				c, err := NewCluster(b.spec, b.spec, traces(3, 2000, seed), Plan{Seed: seed, Drop: 0.1, Delay: 0.1})
				if err != nil {
					t.Fatal(err)
				}
				ctx := context.Background()
				for round := 0; round < 6; round++ {
					for _, m := range c.Members {
						m.Feed(150)
					}
					c.Pump(ctx)
				}
				if err := c.CrashAggregator(); err != nil {
					t.Fatal(err)
				}
				for round := 0; round < 6; round++ {
					for _, m := range c.Members {
						m.Feed(150)
					}
					c.Pump(ctx)
				}
				if _, ok := c.Converge(ctx, 50); !ok {
					t.Fatalf("seed=%d: no convergence after aggregator restart", seed)
				}
				// Resync replaces state wholesale (FlagFull), so even the
				// SALSA-mode layout is rebuilt from one contiguous history:
				// byte-identity holds for every sum-merge backend here except
				// conservative update (none in this matrix).
				checkConverged(t, c, b.wantBytes)
				if c.Agg.Stats().Resyncs == 0 {
					t.Fatalf("seed=%d: restart never triggered a resync", seed)
				}
			})
		}
	}
}

// TestDeterministicReplay pins the harness's own contract: the same seed
// must reproduce the same fault schedule, the same transport counters,
// and the same final bytes.
func TestDeterministicReplay(t *testing.T) {
	run := func() ([]byte, TransportStats) {
		plan := Plan{Seed: 1234, Drop: 0.2, Dup: 0.2, AckLoss: 0.2, Delay: 0.2}
		c, err := NewCluster(cmsFixedSpec(), cmsFixedSpec(), traces(3, 2000, 9), plan)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for round := 0; round < 15; round++ {
			for _, m := range c.Members {
				m.Feed(100)
			}
			c.Pump(ctx)
		}
		if _, ok := c.Converge(ctx, 50); !ok {
			t.Fatal("no convergence")
		}
		blob, err := c.Agg.SnapshotBytes()
		if err != nil {
			t.Fatal(err)
		}
		return blob, c.Transport.Stats()
	}
	b1, s1 := run()
	b2, s2 := run()
	if !bytes.Equal(b1, b2) {
		t.Fatal("same seed produced different aggregator bytes")
	}
	if s1 != s2 {
		t.Fatalf("same seed produced different fault schedules: %+v vs %+v", s1, s2)
	}
}

// TestNetworkCostTracksChange pins the steady-state bandwidth claim: once
// the cluster is synced, a push after a small burst of changes must cost
// far less wire than the full-state frame did, because the delta envelope
// is mostly zeros and compresses with the change volume.
func TestNetworkCostTracksChange(t *testing.T) {
	spec := salsa.CountMinOf(salsa.Options{
		Width: 1 << 14, Mode: salsa.ModeBaseline, Merge: salsa.MergeSum, Seed: 5,
	})
	agg, err := salsad.NewAggregator(salsad.AggregatorConfig{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTransport(agg, Plan{})
	ag, err := salsad.NewAgent(salsad.AgentConfig{ID: "edge", Spec: spec, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Bulk load: the first frame carries the whole populated sketch.
	for _, x := range stream.Zipf(60_000, 1<<13, 1.05, 8) {
		ag.Ingest(x)
	}
	if err := ag.PushOnce(ctx); err != nil {
		t.Fatal(err)
	}
	fullWire := ag.Stats().WireBytes

	// Steady state: tiny change volume per push.
	var steady uint64
	for round := 0; round < 5; round++ {
		for i := 0; i < 20; i++ {
			ag.Ingest(uint64(i % 3))
		}
		before := ag.Stats().WireBytes
		if err := ag.PushOnce(ctx); err != nil {
			t.Fatal(err)
		}
		steady += ag.Stats().WireBytes - before
	}
	perPush := steady / 5
	if perPush*20 > fullWire {
		t.Fatalf("steady-state push costs %d bytes vs %d for the full state; deltas are not tracking change volume",
			perPush, fullWire)
	}
	t.Logf("full-state frame %d bytes, steady-state delta frame %d bytes", fullWire, perPush)
}
