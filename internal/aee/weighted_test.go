package aee

import (
	"math"
	"testing"
)

func TestWeightedUpdatesExactBeforeSampling(t *testing.T) {
	e := NewMaxAccuracy(Config{Rows: 4, Width: 1024, CounterBits: 16, Seed: 51})
	e.UpdateWeighted(3, 1000)
	e.UpdateWeighted(3, 234)
	if got := e.Query(3); got != 1234 {
		t.Fatalf("Query = %f, want exact 1234", got)
	}
	if e.Downsamples() != 0 {
		t.Fatal("no downsample expected")
	}
}

func TestWeightedUpdateTriggersDownsample(t *testing.T) {
	e := NewMaxAccuracy(Config{Rows: 2, Width: 64, CounterBits: 8, Seed: 52})
	// A single weighted update larger than the 8-bit range must downsample
	// until it fits rather than silently saturating.
	e.UpdateWeighted(5, 200)
	e.UpdateWeighted(5, 200)
	if e.Downsamples() == 0 {
		t.Fatal("weighted overflow did not downsample")
	}
	if got := e.Query(5); math.Abs(got-400) > 150 {
		t.Fatalf("Query = %f, want ≈ 400", got)
	}
}

func TestWeightedMeanUnbiased(t *testing.T) {
	const truth = 3000.0
	var sum float64
	const trials = 50
	for s := uint64(0); s < trials; s++ {
		e := NewMaxAccuracy(Config{Rows: 2, Width: 64, CounterBits: 8, Probabilistic: true, Seed: s*17 + 3})
		for i := 0; i < 30; i++ {
			e.UpdateWeighted(9, 100)
		}
		sum += e.Query(9)
	}
	mean := sum / trials
	if math.Abs(mean-truth) > truth*0.15 {
		t.Fatalf("mean %f over %d trials, want ≈ %f", mean, trials, truth)
	}
}
