package aee

import (
	"fmt"
	"math"

	"salsa/internal/core"
	"salsa/internal/hashing"
)

// SalsaAEE is the paper's estimator-integrated SALSA CMS (§V, "Integrating
// Estimators into SALSA"). Overflows of non-largest counters always merge.
// When a largest counter overflows, the sketch compares the error-bound
// increase of the two escape hatches — Δest = √2·εest for halving the
// sampling probability versus ΔCMS = δ^(−1/d)·2^ℓ/w for doubling the
// largest counter size — and picks the smaller. SalsaAEE_d (ForcedDownsamples
// = d) instead downsamples unconditionally on the first d overflows,
// reaching sampling rate 2^−d for speed, like AEE MaxSpeed.
type SalsaAEE struct {
	rows      []*core.Salsa
	seeds     []uint64
	mask      uint64
	s         uint
	width     int
	maxLvl    uint
	kPow      uint
	delta     float64
	deltaEst  float64
	forced    int
	overflows int
	split     bool
	processed uint64
	downsmpld uint64
	// gml caches the largest merge level present in any row; kept fresh on
	// merges and recomputed after downsampling (which may split counters).
	gml uint
	rng rng
}

// SalsaConfig shapes a SalsaAEE sketch.
type SalsaConfig struct {
	// Rows and Width shape the sketch (d × w); Width a power of two.
	Rows, Width int
	// S is the SALSA base counter size in bits (8 in the paper).
	S uint
	// Delta is the target failure probability; the paper uses
	// δ = 4·δest = 0.001, i.e. δest = δ/Rows.
	Delta float64
	// ForcedDownsamples is the d of SALSA AEE_d: unconditional downsamples
	// on the first d overflows (0 for the accuracy-optimal variant).
	ForcedDownsamples int
	// Split re-splits merged counters whose halved value fits in a smaller
	// size after downsampling (§V, "Should We Split Counters?").
	Split bool
	// Seed drives hashing and sampling.
	Seed uint64
}

// NewSalsa returns an empty SALSA AEE sketch. Rows use max-merge (unit
// weight Cash Register streams), which is also what permits splitting.
func NewSalsa(cfg SalsaConfig) *SalsaAEE {
	if cfg.Width&(cfg.Width-1) != 0 {
		panic("aee: width must be a power of two")
	}
	if cfg.Delta <= 0 || cfg.Delta >= 1 {
		panic("aee: delta must be in (0,1)")
	}
	rows := make([]*core.Salsa, cfg.Rows)
	for i := range rows {
		rows[i] = core.NewSalsa(cfg.Width, cfg.S, core.MaxMerge, false)
	}
	return restoreSalsa(cfg, rows)
}

func restoreSalsa(cfg SalsaConfig, rows []*core.Salsa) *SalsaAEE {
	maxLvl := uint(0)
	for b := cfg.S; b < 64; b <<= 1 {
		maxLvl++
	}
	return &SalsaAEE{
		rows:     rows,
		seeds:    hashing.Seeds(cfg.Seed, cfg.Rows),
		mask:     uint64(cfg.Width - 1),
		s:        cfg.S,
		width:    cfg.Width,
		maxLvl:   maxLvl,
		delta:    cfg.Delta,
		deltaEst: cfg.Delta / float64(cfg.Rows),
		forced:   cfg.ForcedDownsamples,
		split:    cfg.Split,
		rng:      rng{state: cfg.Seed ^ 0x5a15a},
	}
}

// RestoreSalsa rebuilds a SalsaAEE from serialized state: decoded rows
// plus the sampling/overflow odometer. Row geometry is validated against
// the config so hostile payload combinations are errors, not panics.
func RestoreSalsa(cfg SalsaConfig, rows []*core.Salsa, kPow uint, overflows uint64, processed, downsampled, rngState uint64) (*SalsaAEE, error) {
	if cfg.Width <= 0 || cfg.Width&(cfg.Width-1) != 0 {
		return nil, fmt.Errorf("aee: width %d is not a power of two", cfg.Width)
	}
	if cfg.Delta <= 0 || cfg.Delta >= 1 {
		return nil, fmt.Errorf("aee: delta %v out of range", cfg.Delta)
	}
	if len(rows) != cfg.Rows || cfg.Rows == 0 {
		return nil, fmt.Errorf("aee: %d rows, config wants %d", len(rows), cfg.Rows)
	}
	if kPow > 64 || overflows > uint64(math.MaxInt) {
		return nil, fmt.Errorf("aee: sampling state out of range")
	}
	ref := core.NewSalsa(cfg.Width, cfg.S, core.MaxMerge, false)
	for i, r := range rows {
		if !r.SameGeometry(ref) {
			return nil, fmt.Errorf("aee: row %d geometry does not match config", i)
		}
	}
	e := restoreSalsa(cfg, rows)
	e.kPow = kPow
	e.overflows = int(overflows)
	e.processed = processed
	e.downsmpld = downsampled
	e.rng.state = rngState
	e.recomputeMaxLevel()
	return e, nil
}

// NumRows returns the row count d.
func (e *SalsaAEE) NumRows() int { return len(e.rows) }

// Row returns row i for serialization.
func (e *SalsaAEE) Row(i int) *core.Salsa { return e.rows[i] }

// Overflows returns the largest-counter overflow count.
func (e *SalsaAEE) Overflows() uint64 { return uint64(e.overflows) }

// Processed returns the total updates offered (sampled or not).
func (e *SalsaAEE) Processed() uint64 { return e.processed }

// Downsampled returns the number of downsampling events.
func (e *SalsaAEE) Downsampled() uint64 { return e.downsmpld }

// RngState returns the sampling generator state for serialization.
func (e *SalsaAEE) RngState() uint64 { return e.rng.state }

// SampleProb returns the current sampling probability p.
func (e *SalsaAEE) SampleProb() float64 { return math.Pow(0.5, float64(e.kPow)) }

// Downsamples returns the number of downsampling events so far.
func (e *SalsaAEE) Downsamples() uint { return e.kPow }

// Merges returns the total SALSA merges across rows.
func (e *SalsaAEE) Merges() uint64 {
	var total uint64
	for _, r := range e.rows {
		total += r.Merges()
	}
	return total
}

// SizeBits returns the footprint in bits including merge-encoding overhead.
func (e *SalsaAEE) SizeBits() int {
	total := 0
	for _, r := range e.rows {
		total += r.SizeBits()
	}
	return total
}

func (e *SalsaAEE) sampled() bool {
	if e.kPow == 0 {
		return true
	}
	mask := uint64(1)<<e.kPow - 1
	return e.rng.Uint64()&mask == mask
}

// recomputeMaxLevel rescans the rows for the largest merge level; only
// needed after downsampling, when splitting may have lowered levels.
func (e *SalsaAEE) recomputeMaxLevel() {
	max := uint(0)
	for _, r := range e.rows {
		r.Counters(func(_ int, lvl uint, _ uint64) bool {
			if lvl > max {
				max = lvl
			}
			return true
		})
	}
	e.gml = max
}

// Update processes one unit-weight arrival.
func (e *SalsaAEE) Update(x uint64) {
	e.processed++
	if !e.sampled() {
		return
	}
	for i, r := range e.rows {
		slot := int(hashing.Index(x, e.seeds[i], e.mask))
		lvl := r.Level(slot)
		size := e.s << lvl
		if size < 64 && r.Value(slot) >= (uint64(1)<<size)-1 {
			// Overflow. Merging is free unless this is a largest counter,
			// in which case the error-bound comparison (or the forced-
			// downsample budget) decides.
			if e.resolveOverflow(lvl) {
				e.downsample()
			}
		}
		r.Add(slot, 1)
		if nl := r.Level(slot); nl > e.gml {
			e.gml = nl
		}
	}
}

// resolveOverflow reports whether the overflow of a level-lvl counter
// should be resolved by downsampling rather than merging.
func (e *SalsaAEE) resolveOverflow(lvl uint) bool {
	if lvl < e.gml {
		return false
	}
	e.overflows++
	if e.overflows <= e.forced {
		return true
	}
	if lvl >= e.maxLvl {
		return true // cannot merge further; downsampling is the only option
	}
	// Δest = √2·εest with εest = √(2·p⁻¹·ln(2/δest)/N).
	n := float64(e.processed)
	if n == 0 {
		n = 1
	}
	epsEst := math.Sqrt(2 * math.Pow(2, float64(e.kPow)) * math.Log(2/e.deltaEst) / n)
	deltaEst := math.Sqrt2 * epsEst
	// ΔCMS = δ^(−1/d)·2^ℓ/w, the guarantee lost by doubling counter size.
	deltaCMS := math.Pow(e.delta, -1/float64(len(e.rows))) * math.Pow(2, float64(lvl)) / float64(e.width)
	return deltaCMS > deltaEst
}

// downsample halves the sampling probability and every counter
// (probabilistically), splitting shrunken counters when configured.
func (e *SalsaAEE) downsample() {
	e.kPow++
	e.downsmpld++
	for _, r := range e.rows {
		r.Halve(true, e.rng.Uint64, e.split)
	}
	if e.split {
		e.recomputeMaxLevel()
	}
}

// Query returns the estimate: min over rows scaled by 1/p.
func (e *SalsaAEE) Query(x uint64) float64 {
	est := ^uint64(0)
	for i, r := range e.rows {
		if v := r.Value(int(hashing.Index(x, e.seeds[i], e.mask))); v < est {
			est = v
		}
	}
	return float64(est) * math.Pow(2, float64(e.kPow))
}
