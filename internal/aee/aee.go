// Package aee implements the Additive Error Estimators of Ben Basat et al.
// (INFOCOM 2020) and the paper's SALSA+AEE integration (§V): instead of
// growing counters, updates are sampled with probability p and every
// counter overflow halves p and downsamples all counters, trading a bounded
// additive error for counting range and speed.
//
// Estimator is the plain AEE over short fixed-size counters, in the
// MaxAccuracy (downsample on overflow) and MaxSpeed (downsample on a
// schedule, so overflow checks are unnecessary) variants. SalsaAEE layers
// sampling over a SALSA CMS and resolves each overflow by whichever of
// merging and downsampling raises the theoretical error bound less.
package aee

import (
	"fmt"
	"math"
	"math/bits"

	"salsa/internal/core"
	"salsa/internal/hashing"
)

// Estimator is an AEE Count-Min sketch: d rows of small saturating
// counters, a global sampling probability p = 2^−k, and estimates scaled
// by 1/p.
type Estimator struct {
	rows          []*core.Fixed
	seeds         []uint64
	mask          uint64
	counterMax    uint64
	kPow          uint // p = 2^-kPow
	probabilistic bool
	maxSpeed      bool
	sampledSince  uint64 // sampled updates since the last downsample
	speedEvery    uint64 // MaxSpeed: downsample cadence in sampled updates
	processed     uint64
	rng           rng
}

// Config shapes an AEE estimator.
type Config struct {
	// Rows and Width shape the sketch (d × w).
	Rows, Width int
	// CounterBits is the short per-counter width (16 in the paper).
	CounterBits uint
	// Probabilistic selects Binomial(c, 1/2) downsampling over ⌊c/2⌋.
	Probabilistic bool
	// Seed drives hashing and sampling.
	Seed uint64
}

// NewMaxAccuracy returns the accuracy-optimized variant: full-rate counting
// until a counter would overflow, then downsample.
func NewMaxAccuracy(cfg Config) *Estimator { return newEstimator(cfg, false) }

// NewMaxSpeed returns the speed-optimized variant: downsampling is
// scheduled every w·2^(bits−2) sampled updates, which keeps counters clear
// of overflow with high probability without per-update overflow checks.
func NewMaxSpeed(cfg Config) *Estimator { return newEstimator(cfg, true) }

func newEstimator(cfg Config, maxSpeed bool) *Estimator {
	if cfg.Width&(cfg.Width-1) != 0 {
		panic("aee: width must be a power of two")
	}
	// One contiguous arena for all rows, matching the promoted hot paths.
	return restoreEstimator(cfg, core.NewFixedRows(cfg.Rows, cfg.Width, cfg.CounterBits), maxSpeed)
}

func restoreEstimator(cfg Config, rows []*core.Fixed, maxSpeed bool) *Estimator {
	return &Estimator{
		rows:          rows,
		seeds:         hashing.Seeds(cfg.Seed, cfg.Rows),
		mask:          uint64(cfg.Width - 1),
		counterMax:    1<<cfg.CounterBits - 1,
		probabilistic: cfg.Probabilistic,
		maxSpeed:      maxSpeed,
		speedEvery:    uint64(cfg.Width) << (cfg.CounterBits - 2),
		rng:           rng{state: cfg.Seed ^ 0x5eed},
	}
}

// Restore rebuilds a MaxAccuracy estimator from serialized state: the
// decoded rows plus the sampling odometer. The rows must match the
// config's geometry; hostile payload combinations are errors, not panics.
func Restore(cfg Config, rows []*core.Fixed, kPow uint, sampledSince, processed, rngState uint64) (*Estimator, error) {
	if cfg.Width <= 0 || cfg.Width&(cfg.Width-1) != 0 {
		return nil, fmt.Errorf("aee: width %d is not a power of two", cfg.Width)
	}
	if len(rows) != cfg.Rows || cfg.Rows == 0 {
		return nil, fmt.Errorf("aee: %d rows, config wants %d", len(rows), cfg.Rows)
	}
	if kPow > 64 {
		return nil, fmt.Errorf("aee: sampling exponent %d out of range", kPow)
	}
	for i, r := range rows {
		if r.Width() != cfg.Width || r.CounterBits() != cfg.CounterBits {
			return nil, fmt.Errorf("aee: row %d geometry %d×%dbit does not match config %d×%dbit",
				i, r.Width(), r.CounterBits(), cfg.Width, cfg.CounterBits)
		}
	}
	e := restoreEstimator(cfg, rows, false)
	e.kPow = kPow
	e.sampledSince = sampledSince
	e.processed = processed
	e.rng.state = rngState
	return e, nil
}

// NumRows returns the row count d.
func (e *Estimator) NumRows() int { return len(e.rows) }

// Row returns row i for serialization.
func (e *Estimator) Row(i int) *core.Fixed { return e.rows[i] }

// SampledSince returns the sampled-update count since the last downsample.
func (e *Estimator) SampledSince() uint64 { return e.sampledSince }

// Processed returns the total updates offered (sampled or not).
func (e *Estimator) Processed() uint64 { return e.processed }

// RngState returns the sampling generator state for serialization.
func (e *Estimator) RngState() uint64 { return e.rng.state }

// SampleProb returns the current sampling probability p.
func (e *Estimator) SampleProb() float64 { return math.Pow(0.5, float64(e.kPow)) }

// Downsamples returns how many downsampling events have occurred.
func (e *Estimator) Downsamples() uint { return e.kPow }

// SizeBits returns the counter footprint in bits.
func (e *Estimator) SizeBits() int {
	total := 0
	for _, r := range e.rows {
		total += r.SizeBits()
	}
	return total
}

// sampled decides whether the current update is processed; with p = 2^−k a
// k-bit coin suffices, and when k = 0 no randomness (and crucially no hash)
// is consumed.
func (e *Estimator) sampled() bool {
	if e.kPow == 0 {
		return true
	}
	mask := uint64(1)<<e.kPow - 1
	return e.rng.Uint64()&mask == mask
}

// Update processes one unit-weight arrival.
func (e *Estimator) Update(x uint64) { e.UpdateWeighted(x, 1) }

// UpdateWeighted processes ⟨x, v⟩ with v ≥ 1. The whole weight is sampled
// as a unit, as in the weighted AEE variant the estimators paper describes.
func (e *Estimator) UpdateWeighted(x uint64, v uint64) {
	e.processed++
	if !e.sampled() {
		return
	}
	e.sampledSince++
	if e.maxSpeed {
		if e.sampledSince >= e.speedEvery {
			e.downsample()
		}
	} else {
		// MaxAccuracy: downsample (possibly repeatedly) until the update
		// fits everywhere. The pending weight was admitted at the old
		// sampling probability, so each halving must thin it too, or the
		// update would be counted at 1/p_new instead of 1/p_old.
		for v > 0 && e.wouldOverflowBy(x, v) {
			e.downsample()
			v = e.halveWeight(v)
		}
		if v == 0 {
			return
		}
	}
	for i, r := range e.rows {
		r.Add(int(hashing.Index(x, e.seeds[i], e.mask)), int64(v))
	}
}

// halveWeight draws Binomial(v, 1/2): each unit of the pending weight
// survives a downsample independently with probability one half.
func (e *Estimator) halveWeight(v uint64) uint64 {
	var kept uint64
	for v >= 64 {
		kept += uint64(bits.OnesCount64(e.rng.Uint64()))
		v -= 64
	}
	if v > 0 {
		kept += uint64(bits.OnesCount64(e.rng.Uint64() & (uint64(1)<<v - 1)))
	}
	return kept
}

func (e *Estimator) wouldOverflowBy(x, v uint64) bool {
	for i, r := range e.rows {
		if r.Value(int(hashing.Index(x, e.seeds[i], e.mask)))+v > e.counterMax {
			return true
		}
	}
	return false
}

// downsample halves the sampling probability and every counter.
func (e *Estimator) downsample() {
	e.kPow++
	e.sampledSince = 0
	for _, r := range e.rows {
		r.Halve(e.probabilistic, e.rng.Uint64)
	}
}

// Query returns the estimate: the min-over-rows counter scaled by 1/p.
func (e *Estimator) Query(x uint64) float64 {
	est := ^uint64(0)
	for i, r := range e.rows {
		if v := r.Value(int(hashing.Index(x, e.seeds[i], e.mask))); v < est {
			est = v
		}
	}
	return float64(est) * math.Pow(2, float64(e.kPow))
}
