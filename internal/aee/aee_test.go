package aee

import (
	"math"
	"testing"

	"salsa/internal/stream"
)

func TestEstimatorExactBeforeDownsampling(t *testing.T) {
	e := NewMaxAccuracy(Config{Rows: 4, Width: 1024, CounterBits: 16, Seed: 1})
	for i := 0; i < 1000; i++ {
		e.Update(7)
	}
	if e.Downsamples() != 0 {
		t.Fatal("premature downsampling")
	}
	if got := e.Query(7); got != 1000 {
		t.Fatalf("Query = %f, want exact 1000", got)
	}
}

func TestEstimatorDownsamplesOnOverflow(t *testing.T) {
	e := NewMaxAccuracy(Config{Rows: 2, Width: 64, CounterBits: 8, Seed: 2})
	for i := 0; i < 1000; i++ {
		e.Update(7)
	}
	if e.Downsamples() == 0 {
		t.Fatal("8-bit counters must downsample before 1000")
	}
	got := e.Query(7)
	// Unbiased up to sampling noise; with k downsamples the sd is roughly
	// sqrt(2^k · f). Allow a wide band.
	if math.Abs(got-1000) > 250 {
		t.Fatalf("Query = %f, want ≈ 1000", got)
	}
}

func TestEstimatorDeterministicDownsampling(t *testing.T) {
	e := newEstimator(Config{Rows: 2, Width: 64, CounterBits: 8, Probabilistic: false, Seed: 3}, false)
	for i := 0; i < 600; i++ {
		e.Update(9)
	}
	if e.Downsamples() == 0 {
		t.Fatal("expected a downsample")
	}
	if got := e.Query(9); math.Abs(got-600) > 200 {
		t.Fatalf("Query = %f", got)
	}
}

func TestEstimatorUnbiasedOverTrials(t *testing.T) {
	// Mean over many independent estimators should be near the truth even
	// with multiple downsamples.
	const truth = 4000
	var sum float64
	const trials = 40
	for s := uint64(0); s < trials; s++ {
		e := NewMaxAccuracy(Config{Rows: 2, Width: 64, CounterBits: 8, Probabilistic: true, Seed: s*7 + 1})
		for i := 0; i < truth; i++ {
			e.Update(5)
		}
		sum += e.Query(5)
	}
	mean := sum / trials
	if math.Abs(mean-truth) > truth*0.1 {
		t.Fatalf("mean %f over %d trials, want ≈ %d", mean, trials, truth)
	}
}

func TestMaxSpeedDownsamplesOnSchedule(t *testing.T) {
	e := NewMaxSpeed(Config{Rows: 2, Width: 64, CounterBits: 8, Seed: 4})
	// speedEvery = 64·2^6 = 4096 sampled updates.
	for i := 0; i < 5000; i++ {
		e.Update(uint64(i % 50))
	}
	if e.Downsamples() == 0 {
		t.Fatal("MaxSpeed never downsampled")
	}
}

func TestMaxSpeedStaysCloser(t *testing.T) {
	// MaxSpeed trades accuracy for speed; both must remain sane.
	data := stream.Zipf(100000, 2000, 1.0, 31)
	exact := stream.NewExact()
	acc := NewMaxAccuracy(Config{Rows: 4, Width: 512, CounterBits: 16, Probabilistic: true, Seed: 5})
	spd := NewMaxSpeed(Config{Rows: 4, Width: 512, CounterBits: 16, Probabilistic: true, Seed: 5})
	for _, x := range data {
		exact.Observe(x)
		acc.Update(x)
		spd.Update(x)
	}
	top := exact.TopK(1)[0]
	truth := float64(exact.Count(top))
	for name, est := range map[string]float64{"acc": acc.Query(top), "spd": spd.Query(top)} {
		if est < truth*0.5 || est > truth*2 {
			t.Fatalf("%s estimate %f vs truth %f", name, est, truth)
		}
	}
}

func TestSalsaAEEPureMergingMatchesSalsa(t *testing.T) {
	// With ample width the error-bound rule always prefers merging, so the
	// sketch behaves exactly like a SALSA CMS (p stays 1, estimates exact
	// in the absence of collisions).
	e := NewSalsa(SalsaConfig{Rows: 4, Width: 4096, S: 8, Delta: 0.001, Seed: 6})
	for i := 0; i < 100000; i++ {
		e.Update(3)
	}
	if e.Downsamples() != 0 {
		t.Fatalf("downsampled %d times despite merging being cheap", e.Downsamples())
	}
	if got := e.Query(3); got != 100000 {
		t.Fatalf("Query = %f, want exact 100000", got)
	}
	if e.Merges() == 0 {
		t.Fatal("expected merges for a 100k count")
	}
}

func TestSalsaAEEForcedDownsamples(t *testing.T) {
	e := NewSalsa(SalsaConfig{Rows: 2, Width: 1024, S: 8, Delta: 0.001, ForcedDownsamples: 3, Seed: 7})
	for i := 0; i < 4000; i++ {
		e.Update(11)
	}
	if e.Downsamples() < 3 {
		t.Fatalf("only %d downsamples; the first 3 overflows must downsample", e.Downsamples())
	}
	got := e.Query(11)
	if math.Abs(got-4000) > 1200 {
		t.Fatalf("Query = %f, want ≈ 4000", got)
	}
}

func TestSalsaAEEEstimateQuality(t *testing.T) {
	data := stream.Zipf(100000, 2000, 1.0, 33)
	exact := stream.NewExact()
	e := NewSalsa(SalsaConfig{Rows: 4, Width: 1024, S: 8, Delta: 0.001, Seed: 8})
	for _, x := range data {
		exact.Observe(x)
		e.Update(x)
	}
	// All top items within a generous multiplicative band.
	for _, x := range exact.TopK(5) {
		truth := float64(exact.Count(x))
		if got := e.Query(x); got < truth*0.5 || got > truth*3 {
			t.Fatalf("item %d: estimate %f vs truth %f", x, got, truth)
		}
	}
}

func TestSalsaAEESplitKeepsEstimatesSane(t *testing.T) {
	with := NewSalsa(SalsaConfig{Rows: 2, Width: 256, S: 8, Delta: 0.001, ForcedDownsamples: 4, Split: true, Seed: 9})
	without := NewSalsa(SalsaConfig{Rows: 2, Width: 256, S: 8, Delta: 0.001, ForcedDownsamples: 4, Split: false, Seed: 9})
	data := stream.Zipf(50000, 500, 1.2, 35)
	exact := stream.NewExact()
	for _, x := range data {
		exact.Observe(x)
		with.Update(x)
		without.Update(x)
	}
	top := exact.TopK(1)[0]
	truth := float64(exact.Count(top))
	for name, got := range map[string]float64{"split": with.Query(top), "nosplit": without.Query(top)} {
		if got < truth*0.4 || got > truth*3 {
			t.Fatalf("%s: estimate %f vs truth %f", name, got, truth)
		}
	}
}

func TestSalsaAEEValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewSalsa(SalsaConfig{Rows: 2, Width: 100, S: 8, Delta: 0.001}) },
		func() { NewSalsa(SalsaConfig{Rows: 2, Width: 128, S: 8, Delta: 0}) },
		func() { NewMaxAccuracy(Config{Rows: 2, Width: 100, CounterBits: 16}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
