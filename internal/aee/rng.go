package aee

// rng is a splitmix64 generator with a single word of explicit state. The
// estimators sample updates and thin counters probabilistically, so their
// behavior depends on the generator state; one serializable word lets a
// decoded estimator resume the exact sampling stream the original would
// have produced, which is what makes envelope round-trips byte-identical
// under continued ingestion.
type rng struct{ state uint64 }

// Uint64 returns the next value (splitmix64, Steele et al.).
func (r *rng) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
