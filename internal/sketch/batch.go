package sketch

import (
	"salsa/internal/core"
	"salsa/internal/hashing"
)

// Batch ingestion and queries. A batch is processed in fixed-size chunks;
// within a chunk each row hashes all items in one hashing.IndexVec call and
// applies them in one AddSlots call, so the per-item interface-dispatch and
// hash-call overhead is paid once per row per chunk. Items are applied in
// slice order within every row, which keeps batch ingestion bit-for-bit
// identical to the equivalent sequence of single Updates (SALSA counter
// merges fire at exactly the same points).

// batchChunk bounds the scratch buffers; 256 slots keep them L1-resident
// and stack-allocatable.
const batchChunk = 256

// slotAdder is the fast batch path of a Row; every core row implements it.
type slotAdder interface {
	AddSlots(slots []uint32, v int64)
}

// signedSlotAdder is the fast batch path of a SignedRow.
type signedSlotAdder interface {
	AddSignedSlots(slots []uint32, signs []int8, v int64)
}

// UpdateBatch processes the stream updates ⟨items[j], v⟩ for every j, in
// order. It is equivalent to calling Update(items[j], v) for each item and
// leaves the sketch in the identical state, only faster. In conservative
// mode v must be non-negative.
//
//salsa:hotpath
func (c *CMS) UpdateBatch(items []uint64, v int64) {
	if len(items) == 0 {
		return
	}
	if c.conservative {
		if v < 0 {
			panic("sketch: negative update in conservative mode")
		}
		c.conservativeBatch(items, uint64(v))
		return
	}
	if c.chunkSlots == nil {
		//salsa:ignore hotpath one-time lazy scratch init, amortized across every later batch
		c.chunkSlots = make([]uint32, batchChunk)
	}
	slots := c.chunkSlots
	for len(items) > 0 {
		chunk := items
		if len(chunk) > batchChunk {
			chunk = chunk[:batchChunk]
		}
		for i, r := range c.rows {
			hashing.IndexVec(chunk, c.seeds[i], c.mask, slots)
			if sa, ok := r.(slotAdder); ok {
				sa.AddSlots(slots[:len(chunk)], v)
			} else {
				for _, s := range slots[:len(chunk)] {
					r.Add(int(s), v)
				}
			}
		}
		items = items[len(chunk):]
	}
}

// conservativeBatch is the conservative-update rule over a batch: the rows
// are coupled through the per-item estimate, so items are applied one at a
// time, but each row's slots are hashed once per chunk (the sequential path
// likewise hashes once per row, feeding both the min and the raise pass).
// The per-item passes run through the monomorphic cores of fast.go when the
// sketch is homogeneous.
//
//salsa:hotpath
func (c *CMS) conservativeBatch(items []uint64, v uint64) {
	if c.slotScratch == nil {
		//salsa:ignore hotpath one-time lazy scratch init, amortized across every later batch
		c.slotScratch = make([][]uint32, len(c.rows))
		for i := range c.slotScratch {
			//salsa:ignore hotpath one-time lazy scratch init, amortized across every later batch
			c.slotScratch[i] = make([]uint32, batchChunk)
		}
	}
	for len(items) > 0 {
		chunk := items
		if len(chunk) > batchChunk {
			chunk = chunk[:batchChunk]
		}
		for i := range c.rows {
			hashing.IndexVec(chunk, c.seeds[i], c.mask, c.slotScratch[i])
		}
		for j := range chunk {
			c.conservativeItem(c.slotScratch, j, v)
		}
		items = items[len(chunk):]
	}
}

// QueryBatch writes the estimate f̂(items[j]) into dst[j] for every item and
// returns dst, appending if dst is short (pass nil to allocate). Each row is
// hashed once per chunk.
//
//salsa:hotpath
func (c *CMS) QueryBatch(items []uint64, dst []uint64) []uint64 {
	for len(dst) < len(items) {
		//salsa:ignore hotpath dst grows by documented contract: pass nil to allocate, presized to avoid it
		dst = append(dst, 0)
	}
	var slots [batchChunk]uint32
	done := 0
	for done < len(items) {
		chunk := items[done:]
		if len(chunk) > batchChunk {
			chunk = chunk[:batchChunk]
		}
		out := dst[done : done+len(chunk)]
		for j := range out {
			out[j] = ^uint64(0)
		}
		for i, r := range c.rows {
			hashing.IndexVec(chunk, c.seeds[i], c.mask, slots[:])
			minInto(r, slots[:len(chunk)], out)
		}
		done += len(chunk)
	}
	return dst[:len(items)]
}

// UpdateBatch processes the stream updates ⟨items[j], v⟩ for every j, in
// order; equivalent to (but faster than) single Updates. The slot and sign
// buffers live on the sketch: stack buffers would escape through the
// row-interface AddSignedSlots call and allocate per batch.
//
//salsa:hotpath
func (c *CountSketch) UpdateBatch(items []uint64, v int64) {
	if c.chunkSlots == nil {
		//salsa:ignore hotpath one-time lazy scratch init, amortized across every later batch
		c.chunkSlots = make([]uint32, batchChunk)
		//salsa:ignore hotpath one-time lazy scratch init, amortized across every later batch
		c.chunkSigns = make([]int8, batchChunk)
	}
	slots, signs := c.chunkSlots, c.chunkSigns
	for len(items) > 0 {
		chunk := items
		if len(chunk) > batchChunk {
			chunk = chunk[:batchChunk]
		}
		for i, r := range c.rows {
			hashing.IndexVec(chunk, c.idxSeeds[i], c.mask, slots)
			hashing.SignVec(chunk, c.signSeeds[i], signs)
			if sa, ok := r.(signedSlotAdder); ok {
				sa.AddSignedSlots(slots[:len(chunk)], signs[:len(chunk)], v)
			} else {
				for j := range chunk {
					r.Add(int(slots[j]), int64(signs[j])*v)
				}
			}
		}
		items = items[len(chunk):]
	}
}

// readSigned writes signs[j]·row-value-at-slots[j] into the strided scratch
// column i (the CountSketch QueryBatch inner loop), devirtualized per
// concrete row type.
//
//salsa:hotpath
func readSigned(r SignedRow, slots []uint32, signs []int8, scratch []int64, i, d int) {
	switch row := r.(type) {
	case *core.SalsaSign:
		core.SalsaSignReadSlots(row, slots, signs, scratch, d, i)
	case *core.FixedSign:
		core.FixedSignReadSlots(row, slots, signs, scratch, d, i)
	default:
		for j, slot := range slots {
			scratch[j*d+i] = int64(signs[j]) * r.Value(int(slot))
		}
	}
}

// QueryBatch writes the estimate of items[j] into dst[j] for every item and
// returns dst, appending if dst is short (pass nil to allocate). Like Query,
// it shares the sketch's scratch buffers and must not run concurrently with
// other operations on c.
//
//salsa:hotpath
func (c *CountSketch) QueryBatch(items []uint64, dst []int64) []int64 {
	for len(dst) < len(items) {
		//salsa:ignore hotpath dst grows by documented contract: pass nil to allocate, presized to avoid it
		dst = append(dst, 0)
	}
	d := len(c.rows)
	if c.batchScratch == nil {
		//salsa:ignore hotpath one-time lazy scratch init, amortized across every later batch
		c.batchScratch = make([]int64, d*batchChunk)
	}
	var (
		slots [batchChunk]uint32
		signs [batchChunk]int8
	)
	done := 0
	for done < len(items) {
		chunk := items[done:]
		if len(chunk) > batchChunk {
			chunk = chunk[:batchChunk]
		}
		for i, r := range c.rows {
			hashing.IndexVec(chunk, c.idxSeeds[i], c.mask, slots[:])
			hashing.SignVec(chunk, c.signSeeds[i], signs[:])
			readSigned(r, slots[:len(chunk)], signs[:len(chunk)], c.batchScratch, i, d)
		}
		out := dst[done : done+len(chunk)]
		for j := range chunk {
			copy(c.medBuf, c.batchScratch[j*d:(j+1)*d])
			out[j] = median(c.medBuf)
		}
		done += len(chunk)
	}
	return dst[:len(items)]
}
