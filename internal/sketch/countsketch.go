package sketch

import (
	"fmt"

	"salsa/internal/core"
	"salsa/internal/hashing"
)

// CountSketch is the Count Sketch of Charikar, Chen & Farach-Colton (§III):
// each row pairs an index hash with a ±1 sign hash, updates add v·gᵢ(x), and
// the estimate is the median of the per-row signed readings. It operates in
// the general Turnstile model and provides an L2 guarantee.
//
// Like CMS, homogeneous sketches carry a monomorphic view of the rows
// (fixed/salsa) and the per-item paths run over it with direct calls into
// internal/core; the interface rows remain the source of truth for merge
// and marshal.
type CountSketch struct {
	rows         []SignedRow
	fixed        []*core.FixedSign // one of these two is non-nil for
	salsa        []*core.SalsaSign // homogeneous sketches
	idxSeeds     []uint64
	signSeeds    []uint64
	mask         uint64
	medBuf       []int64
	batchScratch []int64  // d×batchChunk signed readings for QueryBatch
	chunkSlots   []uint32 // per-chunk slot/sign buffers for UpdateBatch
	chunkSigns   []int8
}

// SignedRowSpec constructs the rows of a Count Sketch; New builds one
// standalone row, NewRows all d rows backed by one contiguous cache-line-
// aligned arena (the default used by NewCountSketch).
type SignedRowSpec struct {
	New     func(width int) SignedRow
	NewRows func(d, width int) []SignedRow
}

// FixedSignRow returns a SignedRowSpec for baseline two's-complement rows.
func FixedSignRow(bits uint) SignedRowSpec {
	return SignedRowSpec{
		New: func(width int) SignedRow { return core.NewFixedSign(width, bits) },
		NewRows: func(d, width int) []SignedRow {
			return asSignedRows(core.NewFixedSignRows(d, width, bits))
		},
	}
}

// SalsaSignRow returns a SignedRowSpec for SALSA sign-magnitude rows.
func SalsaSignRow(s uint, compact bool) SignedRowSpec {
	return SignedRowSpec{
		New: func(width int) SignedRow { return core.NewSalsaSign(width, s, compact) },
		NewRows: func(d, width int) []SignedRow {
			return asSignedRows(core.NewSalsaSignRows(d, width, s, compact))
		},
	}
}

// asSignedRows widens a concrete row slice to []SignedRow.
func asSignedRows[R SignedRow](rows []R) []SignedRow {
	out := make([]SignedRow, len(rows))
	for i, r := range rows {
		out[i] = r
	}
	return out
}

// NewCountSketch returns a d×width Count Sketch built from spec rows.
func NewCountSketch(d, width int, spec SignedRowSpec, seed uint64) *CountSketch {
	if d == 0 {
		panic("sketch: no rows")
	}
	if width&(width-1) != 0 {
		panic(fmt.Sprintf("sketch: width %d must be a power of two", width))
	}
	var rows []SignedRow
	if spec.NewRows != nil {
		rows = spec.NewRows(d, width)
	} else {
		rows = make([]SignedRow, d)
		for i := range rows {
			rows[i] = spec.New(width)
		}
	}
	seeds := hashing.Seeds(seed, 2*d)
	return newCountSketch(rows, seeds[:d], seeds[d:], uint64(width-1))
}

// newCountSketch wires pre-built rows; Unmarshal shares it so decoded
// sketches get the monomorphic fast paths too.
func newCountSketch(rows []SignedRow, idxSeeds, signSeeds []uint64, mask uint64) *CountSketch {
	c := &CountSketch{
		rows:      rows,
		idxSeeds:  idxSeeds,
		signSeeds: signSeeds,
		mask:      mask,
		medBuf:    make([]int64, len(rows)),
	}
	c.classifyRows()
	return c
}

// classifyRows populates the monomorphic row view when every row shares one
// concrete core type.
func (c *CountSketch) classifyRows() {
	switch c.rows[0].(type) {
	case *core.FixedSign:
		rows := make([]*core.FixedSign, 0, len(c.rows))
		for _, r := range c.rows {
			f, ok := r.(*core.FixedSign)
			if !ok {
				return
			}
			rows = append(rows, f)
		}
		c.fixed = rows
	case *core.SalsaSign:
		rows := make([]*core.SalsaSign, 0, len(c.rows))
		for _, r := range c.rows {
			s, ok := r.(*core.SalsaSign)
			if !ok {
				return
			}
			rows = append(rows, s)
		}
		c.salsa = rows
	}
}

// disableFast drops the monomorphic row view, forcing the generic interface
// path; test-only (the fast/general equivalence tests).
func (c *CountSketch) disableFast() { c.fixed, c.salsa = nil, nil }

// Depth returns the number of rows d.
func (c *CountSketch) Depth() int { return len(c.rows) }

// Width returns the row width w.
func (c *CountSketch) Width() int { return int(c.mask) + 1 }

// SizeBits returns the total memory footprint in bits.
func (c *CountSketch) SizeBits() int {
	total := 0
	for _, r := range c.rows {
		total += r.SizeBits()
	}
	return total
}

// Update processes the stream update ⟨x, v⟩ (v of either sign). Homogeneous
// sketches run the whole d-row update in one monomorphic row-set call
// (core/rowset.go).
//
//salsa:hotpath
func (c *CountSketch) Update(x uint64, v int64) {
	switch {
	case c.salsa != nil:
		core.SalsaSignUpdateEach(c.salsa, c.idxSeeds, c.signSeeds, c.mask, x, v)
	case c.fixed != nil:
		core.FixedSignUpdateEach(c.fixed, c.idxSeeds, c.signSeeds, c.mask, x, v)
	default:
		for i, r := range c.rows {
			slot := int(hashing.Index(x, c.idxSeeds[i], c.mask))
			r.Add(slot, v*hashing.Sign(x, c.signSeeds[i]))
		}
	}
}

// Query returns the estimate f̂(x) = median over rows of C[i,hᵢ(x)]·gᵢ(x).
//
//salsa:hotpath
func (c *CountSketch) Query(x uint64) int64 {
	switch {
	case c.salsa != nil:
		core.SalsaSignReadEach(c.salsa, c.idxSeeds, c.signSeeds, c.mask, x, c.medBuf)
	case c.fixed != nil:
		core.FixedSignReadEach(c.fixed, c.idxSeeds, c.signSeeds, c.mask, x, c.medBuf)
	default:
		for i, r := range c.rows {
			slot := int(hashing.Index(x, c.idxSeeds[i], c.mask))
			c.medBuf[i] = r.Value(slot) * hashing.Sign(x, c.signSeeds[i])
		}
	}
	return median(c.medBuf)
}

// median returns the median of buf, mutating its order. For an even number
// of rows it returns the mean of the two central values, as in the
// reference implementations. Insertion sort keeps the query path
// allocation-free (sort.Slice boxes the slice header) and beats the
// general-purpose sort at the handful of rows sketches have.
//
//salsa:hotpath
func median(buf []int64) int64 {
	for i := 1; i < len(buf); i++ {
		v := buf[i]
		j := i - 1
		for j >= 0 && buf[j] > v {
			buf[j+1] = buf[j]
			j--
		}
		buf[j+1] = v
	}
	n := len(buf)
	if n%2 == 1 {
		return buf[n/2]
	}
	return (buf[n/2-1] + buf[n/2]) / 2
}

// Reset restores every row to its freshly-constructed state, reusing the
// backing memory. Hash seeds are unchanged, so a reset sketch keeps merging
// with its seed-sharing peers.
func (c *CountSketch) Reset() {
	for _, r := range c.rows {
		r.(resettableRow).Reset()
	}
}

// MergeFrom adds scale (±1) times other into c, producing s(A∪B) or s(A\B)
// (§V): Count Sketch is linear, so change detection between epochs is a
// subtraction of sketches sharing seeds.
func (c *CountSketch) MergeFrom(other *CountSketch, scale int64) {
	if len(c.rows) != len(other.rows) || c.mask != other.mask {
		panic("sketch: geometry mismatch")
	}
	for i := range c.idxSeeds {
		if c.idxSeeds[i] != other.idxSeeds[i] || c.signSeeds[i] != other.signSeeds[i] {
			panic("sketch: sketches must share hash seeds")
		}
	}
	for i, r := range c.rows {
		switch row := r.(type) {
		case *core.FixedSign:
			row.MergeFrom(other.rows[i].(*core.FixedSign), scale)
		case *core.SalsaSign:
			row.MergeFrom(other.rows[i].(*core.SalsaSign), scale)
		default:
			panic(fmt.Sprintf("sketch: merge unsupported for %T", r))
		}
	}
}
