package sketch

import (
	"fmt"
	"sort"

	"salsa/internal/core"
	"salsa/internal/hashing"
)

// CountSketch is the Count Sketch of Charikar, Chen & Farach-Colton (§III):
// each row pairs an index hash with a ±1 sign hash, updates add v·gᵢ(x), and
// the estimate is the median of the per-row signed readings. It operates in
// the general Turnstile model and provides an L2 guarantee.
type CountSketch struct {
	rows         []SignedRow
	idxSeeds     []uint64
	signSeeds    []uint64
	mask         uint64
	medBuf       []int64
	batchScratch []int64 // d×batchChunk signed readings for QueryBatch
}

// SignedRowSpec constructs one Count Sketch row of a given width.
type SignedRowSpec func(width int) SignedRow

// FixedSignRow returns a SignedRowSpec for baseline two's-complement rows.
func FixedSignRow(bits uint) SignedRowSpec {
	return func(width int) SignedRow { return core.NewFixedSign(width, bits) }
}

// SalsaSignRow returns a SignedRowSpec for SALSA sign-magnitude rows.
func SalsaSignRow(s uint, compact bool) SignedRowSpec {
	return func(width int) SignedRow { return core.NewSalsaSign(width, s, compact) }
}

// NewCountSketch returns a d×width Count Sketch built from spec rows.
func NewCountSketch(d, width int, spec SignedRowSpec, seed uint64) *CountSketch {
	if d == 0 {
		panic("sketch: no rows")
	}
	if width&(width-1) != 0 {
		panic(fmt.Sprintf("sketch: width %d must be a power of two", width))
	}
	rows := make([]SignedRow, d)
	for i := range rows {
		rows[i] = spec(width)
	}
	seeds := hashing.Seeds(seed, 2*d)
	return &CountSketch{
		rows:      rows,
		idxSeeds:  seeds[:d],
		signSeeds: seeds[d:],
		mask:      uint64(width - 1),
		medBuf:    make([]int64, d),
	}
}

// Depth returns the number of rows d.
func (c *CountSketch) Depth() int { return len(c.rows) }

// Width returns the row width w.
func (c *CountSketch) Width() int { return int(c.mask) + 1 }

// SizeBits returns the total memory footprint in bits.
func (c *CountSketch) SizeBits() int {
	total := 0
	for _, r := range c.rows {
		total += r.SizeBits()
	}
	return total
}

// Update processes the stream update ⟨x, v⟩ (v of either sign).
func (c *CountSketch) Update(x uint64, v int64) {
	for i, r := range c.rows {
		slot := int(hashing.Index(x, c.idxSeeds[i], c.mask))
		r.Add(slot, v*hashing.Sign(x, c.signSeeds[i]))
	}
}

// Query returns the estimate f̂(x) = median over rows of C[i,hᵢ(x)]·gᵢ(x).
func (c *CountSketch) Query(x uint64) int64 {
	for i, r := range c.rows {
		slot := int(hashing.Index(x, c.idxSeeds[i], c.mask))
		c.medBuf[i] = r.Value(slot) * hashing.Sign(x, c.signSeeds[i])
	}
	return median(c.medBuf)
}

// median returns the median of buf, mutating its order. For an even number
// of rows it returns the mean of the two central values, as in the
// reference implementations.
func median(buf []int64) int64 {
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	n := len(buf)
	if n%2 == 1 {
		return buf[n/2]
	}
	return (buf[n/2-1] + buf[n/2]) / 2
}

// Reset restores every row to its freshly-constructed state, reusing the
// backing memory. Hash seeds are unchanged, so a reset sketch keeps merging
// with its seed-sharing peers.
func (c *CountSketch) Reset() {
	for _, r := range c.rows {
		r.(resettableRow).Reset()
	}
}

// MergeFrom adds scale (±1) times other into c, producing s(A∪B) or s(A\B)
// (§V): Count Sketch is linear, so change detection between epochs is a
// subtraction of sketches sharing seeds.
func (c *CountSketch) MergeFrom(other *CountSketch, scale int64) {
	if len(c.rows) != len(other.rows) || c.mask != other.mask {
		panic("sketch: geometry mismatch")
	}
	for i := range c.idxSeeds {
		if c.idxSeeds[i] != other.idxSeeds[i] || c.signSeeds[i] != other.signSeeds[i] {
			panic("sketch: sketches must share hash seeds")
		}
	}
	for i, r := range c.rows {
		switch row := r.(type) {
		case *core.FixedSign:
			row.MergeFrom(other.rows[i].(*core.FixedSign), scale)
		case *core.SalsaSign:
			row.MergeFrom(other.rows[i].(*core.SalsaSign), scale)
		default:
			panic(fmt.Sprintf("sketch: merge unsupported for %T", r))
		}
	}
}
