package sketch

import (
	"encoding/binary"
	"errors"
	"fmt"

	"salsa/internal/core"
)

// Binary serialization for whole sketches: geometry, hash seeds, and the
// rows' own payloads. Because the seeds travel with the sketch, a decoded
// sketch can be merged or subtracted with the original's peers.

const (
	sketchMagic   = uint32(0x5a15a100)
	rowKindFixed  = byte(1)
	rowKindSalsa  = byte(2)
	rowKindTango  = byte(3)
	csKindFixed   = byte(1)
	csKindSalsa   = byte(2)
	kindCMSHeader = byte(10)
	kindCSHeader  = byte(11)
)

// ErrBadSketchPayload is returned for payloads that are not sketches.
var ErrBadSketchPayload = errors.New("sketch: not a sketch payload")

// maxMarshalDepth bounds the decoded row count; no sketch configuration
// comes close, and it keeps hostile payloads from forcing allocations.
const maxMarshalDepth = 1024

// validRowWidths reports whether all widths are equal and a power of two.
func validRowWidths(widths []int) bool {
	if len(widths) == 0 {
		return false
	}
	w := widths[0]
	if w <= 0 || w&(w-1) != 0 {
		return false
	}
	for _, v := range widths[1:] {
		if v != w {
			return false
		}
	}
	return true
}

func appendBlock(buf, block []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(block)))
	return append(buf, block...)
}

func readBlock(data []byte) (block, rest []byte, err error) {
	if len(data) < 8 {
		return nil, nil, ErrBadSketchPayload
	}
	n := binary.LittleEndian.Uint64(data)
	data = data[8:]
	if uint64(len(data)) < n {
		return nil, nil, ErrBadSketchPayload
	}
	return data[:n], data[n:], nil
}

// CompatibleWith reports (as an error) whether other can merge with c:
// identical depth, width, hash seeds, update rule, and merge-compatible
// concrete row types. Decoders use it to validate that sketches which will
// be merged — window buckets against their ring's configuration — cannot
// make MergeFrom panic on a hostile payload.
func (c *CMS) CompatibleWith(other *CMS) error {
	if len(c.rows) != len(other.rows) {
		return fmt.Errorf("sketch: depth %d vs %d", len(c.rows), len(other.rows))
	}
	if c.mask != other.mask {
		return fmt.Errorf("sketch: width %d vs %d", c.mask+1, other.mask+1)
	}
	if c.conservative != other.conservative {
		return errors.New("sketch: conservative flag mismatch")
	}
	for i := range c.seeds {
		if c.seeds[i] != other.seeds[i] {
			return fmt.Errorf("sketch: row %d seed mismatch", i)
		}
	}
	for i, r := range c.rows {
		ok := false
		switch row := r.(type) {
		case *core.Fixed:
			o, isT := other.rows[i].(*core.Fixed)
			ok = isT && row.SameGeometry(o)
		case *core.Salsa:
			o, isT := other.rows[i].(*core.Salsa)
			ok = isT && row.SameGeometry(o)
		case *core.Tango:
			o, isT := other.rows[i].(*core.Tango)
			ok = isT && row.SameGeometry(o)
		}
		if !ok {
			return fmt.Errorf("sketch: row %d type/geometry mismatch (%T vs %T)", i, r, other.rows[i])
		}
	}
	return nil
}

// CompatibleWith is the Count Sketch counterpart of (*CMS).CompatibleWith.
func (c *CountSketch) CompatibleWith(other *CountSketch) error {
	if len(c.rows) != len(other.rows) {
		return fmt.Errorf("sketch: depth %d vs %d", len(c.rows), len(other.rows))
	}
	if c.mask != other.mask {
		return fmt.Errorf("sketch: width %d vs %d", c.mask+1, other.mask+1)
	}
	for i := range c.idxSeeds {
		if c.idxSeeds[i] != other.idxSeeds[i] || c.signSeeds[i] != other.signSeeds[i] {
			return fmt.Errorf("sketch: row %d seed mismatch", i)
		}
	}
	for i, r := range c.rows {
		ok := false
		switch row := r.(type) {
		case *core.FixedSign:
			o, isT := other.rows[i].(*core.FixedSign)
			ok = isT && row.SameGeometry(o)
		case *core.SalsaSign:
			o, isT := other.rows[i].(*core.SalsaSign)
			ok = isT && row.SameGeometry(o)
		}
		if !ok {
			return fmt.Errorf("sketch: row %d type/geometry mismatch (%T vs %T)", i, r, other.rows[i])
		}
	}
	return nil
}

// MarshalBinary encodes the sketch, rows included.
func (c *CMS) MarshalBinary() ([]byte, error) {
	buf := binary.LittleEndian.AppendUint32(nil, sketchMagic)
	buf = append(buf, kindCMSHeader)
	if c.conservative {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(c.rows)))
	for _, s := range c.seeds {
		buf = binary.LittleEndian.AppendUint64(buf, s)
	}
	for _, r := range c.rows {
		switch row := r.(type) {
		case *core.Fixed:
			payload, err := row.MarshalBinary()
			if err != nil {
				return nil, err
			}
			buf = append(buf, rowKindFixed)
			buf = appendBlock(buf, payload)
		case *core.Salsa:
			payload, err := row.MarshalBinary()
			if err != nil {
				return nil, err
			}
			buf = append(buf, rowKindSalsa)
			buf = appendBlock(buf, payload)
		case *core.Tango:
			payload, err := row.MarshalBinary()
			if err != nil {
				return nil, err
			}
			buf = append(buf, rowKindTango)
			buf = appendBlock(buf, payload)
		default:
			return nil, fmt.Errorf("sketch: cannot marshal row type %T", r)
		}
	}
	return buf, nil
}

// UnmarshalCMS decodes a CMS (or CUS) produced by MarshalBinary.
func UnmarshalCMS(data []byte) (*CMS, error) {
	if len(data) < 4+1+1+8 {
		return nil, ErrBadSketchPayload
	}
	if binary.LittleEndian.Uint32(data) != sketchMagic || data[4] != kindCMSHeader {
		return nil, ErrBadSketchPayload
	}
	conservative := data[5] == 1
	d := int(binary.LittleEndian.Uint64(data[6:]))
	data = data[14:]
	if d <= 0 || d > maxMarshalDepth || len(data) < d*8 {
		return nil, ErrBadSketchPayload
	}
	seeds := make([]uint64, d)
	for i := range seeds {
		seeds[i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	data = data[d*8:]
	rows := make([]Row, d)
	for i := 0; i < d; i++ {
		if len(data) < 1 {
			return nil, ErrBadSketchPayload
		}
		kind := data[0]
		block, rest, err := readBlock(data[1:])
		if err != nil {
			return nil, err
		}
		data = rest
		switch kind {
		case rowKindFixed:
			rows[i], err = core.UnmarshalFixed(block)
		case rowKindSalsa:
			rows[i], err = core.UnmarshalSalsa(block)
		case rowKindTango:
			rows[i], err = core.UnmarshalTango(block)
		default:
			return nil, fmt.Errorf("sketch: unknown row kind %d", kind)
		}
		if err != nil {
			return nil, err
		}
	}
	widths := make([]int, d)
	for i, r := range rows {
		widths[i] = r.Width()
	}
	if !validRowWidths(widths) {
		return nil, ErrBadSketchPayload
	}
	c := newCMS(rows, 0, conservative)
	copy(c.seeds, seeds)
	return c, nil
}

// MarshalBinary encodes the Count Sketch, rows included.
func (c *CountSketch) MarshalBinary() ([]byte, error) {
	buf := binary.LittleEndian.AppendUint32(nil, sketchMagic)
	buf = append(buf, kindCSHeader, 0)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(c.rows)))
	for _, s := range c.idxSeeds {
		buf = binary.LittleEndian.AppendUint64(buf, s)
	}
	for _, s := range c.signSeeds {
		buf = binary.LittleEndian.AppendUint64(buf, s)
	}
	for _, r := range c.rows {
		switch row := r.(type) {
		case *core.FixedSign:
			payload, err := row.MarshalBinary()
			if err != nil {
				return nil, err
			}
			buf = append(buf, csKindFixed)
			buf = appendBlock(buf, payload)
		case *core.SalsaSign:
			payload, err := row.MarshalBinary()
			if err != nil {
				return nil, err
			}
			buf = append(buf, csKindSalsa)
			buf = appendBlock(buf, payload)
		default:
			return nil, fmt.Errorf("sketch: cannot marshal row type %T", r)
		}
	}
	return buf, nil
}

// UnmarshalCountSketch decodes a Count Sketch produced by MarshalBinary.
func UnmarshalCountSketch(data []byte) (*CountSketch, error) {
	if len(data) < 4+2+8 {
		return nil, ErrBadSketchPayload
	}
	if binary.LittleEndian.Uint32(data) != sketchMagic || data[4] != kindCSHeader {
		return nil, ErrBadSketchPayload
	}
	d := int(binary.LittleEndian.Uint64(data[6:]))
	data = data[14:]
	if d <= 0 || d > maxMarshalDepth || len(data) < 2*d*8 {
		return nil, ErrBadSketchPayload
	}
	idxSeeds := make([]uint64, d)
	signSeeds := make([]uint64, d)
	for i := range idxSeeds {
		idxSeeds[i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	data = data[d*8:]
	for i := range signSeeds {
		signSeeds[i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	data = data[d*8:]
	rows := make([]SignedRow, d)
	var width int
	for i := 0; i < d; i++ {
		if len(data) < 1 {
			return nil, ErrBadSketchPayload
		}
		kind := data[0]
		block, rest, err := readBlock(data[1:])
		if err != nil {
			return nil, err
		}
		data = rest
		switch kind {
		case csKindFixed:
			rows[i], err = core.UnmarshalFixedSign(block)
		case csKindSalsa:
			rows[i], err = core.UnmarshalSalsaSign(block)
		default:
			return nil, fmt.Errorf("sketch: unknown row kind %d", kind)
		}
		if err != nil {
			return nil, err
		}
		width = rows[i].Width()
	}
	widths := make([]int, d)
	for i, r := range rows {
		widths[i] = r.Width()
	}
	if !validRowWidths(widths) {
		return nil, ErrBadSketchPayload
	}
	return newCountSketch(rows, idxSeeds, signSeeds, uint64(width-1)), nil
}
