package sketch

import (
	"salsa/internal/core"
)

// Monomorphic CMS hot paths: each homogeneous row backend dispatches to its
// core row-set operation (core/rowset.go), which hashes inline and runs the
// branchless merge-bit probe over the concrete rows — one function-call
// boundary per item for the whole sketch, no interface dispatch. The
// backends are hand-specialized rather than generic: Go's gcshape
// stenciling would route type-parameter method calls through a dictionary —
// an indirect call again — which is exactly the cost being removed.
//
// Every path here must stay bit-for-bit equivalent to updateGeneric and the
// interface Query; fast_test.go pins that with marshal-byte-identical runs
// against a fast-path-disabled twin.

//salsa:hotpath
func (c *CMS) updateSalsa(x uint64, v int64) {
	if c.conservative {
		core.SalsaConservativeEach(c.salsa, c.seeds, c.mask, x, uint64(mustNonNegative(v)), c.slots)
		return
	}
	core.SalsaUpdateEach(c.salsa, c.seeds, c.mask, x, v)
}

//salsa:hotpath
func (c *CMS) querySalsa(x uint64) uint64 {
	return core.SalsaQueryEach(c.salsa, c.seeds, c.mask, x)
}

//salsa:hotpath
func (c *CMS) updateFixed(x uint64, v int64) {
	if c.conservative {
		core.FixedConservativeEach(c.fixed, c.seeds, c.mask, x, uint64(mustNonNegative(v)), c.slots)
		return
	}
	core.FixedUpdateEach(c.fixed, c.seeds, c.mask, x, v)
}

//salsa:hotpath
func (c *CMS) queryFixed(x uint64) uint64 {
	return core.FixedQueryEach(c.fixed, c.seeds, c.mask, x)
}

//salsa:hotpath
func (c *CMS) updateTango(x uint64, v int64) {
	if c.conservative {
		core.TangoConservativeEach(c.tango, c.seeds, c.mask, x, uint64(mustNonNegative(v)), c.slots)
		return
	}
	core.TangoUpdateEach(c.tango, c.seeds, c.mask, x, v)
}

//salsa:hotpath
func (c *CMS) queryTango(x uint64) uint64 {
	return core.TangoQueryEach(c.tango, c.seeds, c.mask, x)
}

// minInto dispatches one row's QueryBatch inner loop to its concrete
// row-set loop, falling back to the interface loop for foreign row
// implementations.
//
//salsa:hotpath
func minInto(r Row, slots []uint32, out []uint64) {
	switch row := r.(type) {
	case *core.Salsa:
		core.SalsaMinSlots(row, slots, out)
	case *core.Fixed:
		core.FixedMinSlots(row, slots, out)
	case *core.Tango:
		core.TangoMinSlots(row, slots, out)
	default:
		for j, slot := range slots {
			if v := r.Value(int(slot)); v < out[j] {
				out[j] = v
			}
		}
	}
}

// conservativeItem applies the conservative rule for one item whose per-row
// slots are scratch[i][j] — the batch counterpart of the single-item
// conservative paths, sharing their min and raise row-set loops.
//
//salsa:hotpath
func (c *CMS) conservativeItem(scratch [][]uint32, j int, v uint64) {
	slots := c.slots
	for i := range scratch {
		slots[i] = scratch[i][j]
	}
	switch {
	case c.salsa != nil:
		core.SalsaRaiseEach(c.salsa, slots, satAddU(core.SalsaMinEach(c.salsa, slots), v))
	case c.fixed != nil:
		core.FixedRaiseEach(c.fixed, slots, satAddU(core.FixedMinEach(c.fixed, slots), v))
	case c.tango != nil:
		core.TangoRaiseEach(c.tango, slots, satAddU(core.TangoMinEach(c.tango, slots), v))
	default:
		est := ^uint64(0)
		for i, r := range c.rows {
			if cur := r.Value(int(slots[i])); cur < est {
				est = cur
			}
		}
		target := satAddU(est, v)
		for i, r := range c.rows {
			r.SetAtLeast(int(slots[i]), target)
		}
	}
}
