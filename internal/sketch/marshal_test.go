package sketch

import (
	"testing"

	"salsa/internal/core"
)

func TestCMSMarshalRoundTrip(t *testing.T) {
	for name, spec := range map[string]RowSpec{
		"fixed": FixedRow(32),
		"salsa": SalsaRow(8, core.MaxMerge, false),
	} {
		t.Run(name, func(t *testing.T) {
			c := NewCUS(3, 128, spec, 17)
			for i := uint64(0); i < 500; i++ {
				c.Update(i%37, 1)
			}
			blob, err := c.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			back, err := UnmarshalCMS(blob)
			if err != nil {
				t.Fatal(err)
			}
			if !back.Conservative() {
				t.Fatal("conservative flag lost")
			}
			if back.Depth() != 3 || back.Width() != 128 {
				t.Fatal("geometry lost")
			}
			for i := uint64(0); i < 37; i++ {
				if back.Query(i) != c.Query(i) {
					t.Fatalf("query %d changed", i)
				}
			}
		})
	}
}

func TestCountSketchMarshalRoundTripRows(t *testing.T) {
	for name, spec := range map[string]SignedRowSpec{
		"fixed": FixedSignRow(32),
		"salsa": SalsaSignRow(8, true),
	} {
		t.Run(name, func(t *testing.T) {
			c := NewCountSketch(5, 128, spec, 19)
			for i := uint64(0); i < 500; i++ {
				c.Update(i%37, int64(i%5)-2)
			}
			blob, err := c.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			back, err := UnmarshalCountSketch(blob)
			if err != nil {
				t.Fatal(err)
			}
			for i := uint64(0); i < 37; i++ {
				if back.Query(i) != c.Query(i) {
					t.Fatalf("query %d changed", i)
				}
			}
			// Decoded sketch must be subtractable from the original.
			back.MergeFrom(c, -1)
			for i := uint64(0); i < 37; i++ {
				if back.Query(i) != 0 {
					t.Fatalf("self-subtraction left %d at item %d", back.Query(i), i)
				}
			}
		})
	}
}

func TestMarshalTangoRows(t *testing.T) {
	c := NewCMS(2, 128, TangoRow(8, core.MaxMerge), 1)
	for i := uint64(0); i < 4000; i++ {
		c.Update(i%61, int64(i%7)+1) // force cell merges
	}
	blob, err := c.MarshalBinary()
	if err != nil {
		t.Fatalf("tango marshal: %v", err)
	}
	back, err := UnmarshalCMS(blob)
	if err != nil {
		t.Fatalf("tango unmarshal: %v", err)
	}
	for i := uint64(0); i < 61; i++ {
		if back.Query(i) != c.Query(i) {
			t.Fatalf("query %d changed after round-trip", i)
		}
	}
	blob2, err := back.MarshalBinary()
	if err != nil {
		t.Fatalf("tango re-marshal: %v", err)
	}
	if string(blob) != string(blob2) {
		t.Fatal("tango round-trip is not byte-identical")
	}
}

func TestUnmarshalCMSRejects(t *testing.T) {
	good, _ := NewCMS(2, 64, FixedRow(32), 1).MarshalBinary()
	cases := map[string][]byte{
		"empty":       nil,
		"short":       good[:8],
		"bad magic":   append([]byte{9, 9, 9, 9}, good[4:]...),
		"wrong kind":  func() []byte { b := append([]byte{}, good...); b[4] = 99; return b }(),
		"truncated":   good[:len(good)-10],
		"cs as cms":   func() []byte { b, _ := NewCountSketch(2, 64, FixedSignRow(32), 1).MarshalBinary(); return b }(),
		"zero rows":   func() []byte { b := append([]byte{}, good...); b[6] = 0; return b }(),
		"giant depth": func() []byte { b := append([]byte{}, good...); b[9] = 0xff; return b }(),
	}
	for name, data := range cases {
		if _, err := UnmarshalCMS(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestUnmarshalCountSketchRejects(t *testing.T) {
	good, _ := NewCountSketch(2, 64, FixedSignRow(32), 1).MarshalBinary()
	cases := map[string][]byte{
		"empty":     nil,
		"short":     good[:6],
		"truncated": good[:len(good)-10],
		"cms as cs": func() []byte { b, _ := NewCMS(2, 64, FixedRow(32), 1).MarshalBinary(); return b }(),
	}
	for name, data := range cases {
		if _, err := UnmarshalCountSketch(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestValidRowWidths(t *testing.T) {
	if validRowWidths(nil) {
		t.Fatal("empty accepted")
	}
	if validRowWidths([]int{96}) {
		t.Fatal("non power of two accepted")
	}
	if validRowWidths([]int{64, 128}) {
		t.Fatal("mismatched widths accepted")
	}
	if !validRowWidths([]int{64, 64}) {
		t.Fatal("valid widths rejected")
	}
}
