package sketch

import (
	"math"
	"math/rand"
	"testing"
)

func TestCountSketchExactWithoutCollisions(t *testing.T) {
	for name, spec := range map[string]SignedRowSpec{
		"baseline": FixedSignRow(32),
		"salsa":    SalsaSignRow(8, false),
		"compact":  SalsaSignRow(8, true),
	} {
		t.Run(name, func(t *testing.T) {
			c := NewCountSketch(5, 4096, spec, 3)
			c.Update(1, 500)
			c.Update(2, 7)
			c.Update(3, -9) // turnstile: negative frequencies allowed
			if got := c.Query(1); got != 500 {
				t.Fatalf("Query(1) = %d, want 500", got)
			}
			if got := c.Query(2); got != 7 {
				t.Fatalf("Query(2) = %d, want 7", got)
			}
			if got := c.Query(3); got != -9 {
				t.Fatalf("Query(3) = %d, want -9", got)
			}
			if got := c.Query(4); got != 0 {
				t.Fatalf("Query(4) = %d, want 0", got)
			}
		})
	}
}

func TestCountSketchUnbiasedOverSeeds(t *testing.T) {
	// Lemma V.4: the per-row SALSA CS estimate is unbiased. Average the
	// estimate of one heavy item over many independent hash seeds; the mean
	// must be near the true frequency for both baseline and SALSA rows.
	stream := zipfish(20000, 500, 21)
	const target = uint64(1000)
	truth := exactCounts(stream)[target]
	for name, spec := range map[string]SignedRowSpec{
		"baseline": FixedSignRow(32),
		"salsa":    SalsaSignRow(8, false),
	} {
		t.Run(name, func(t *testing.T) {
			const trials = 60
			var sum float64
			for seed := uint64(0); seed < trials; seed++ {
				c := NewCountSketch(1, 128, spec, seed*13+1)
				for _, x := range stream {
					c.Update(x, 1)
				}
				sum += float64(c.Query(target))
			}
			mean := sum / trials
			// Tolerance: stream noise per counter is roughly
			// sqrt(F2/w)/sqrt(trials); allow a generous band.
			if math.Abs(mean-float64(truth)) > float64(truth) {
				t.Fatalf("mean estimate %f too far from truth %d", mean, truth)
			}
		})
	}
}

func TestCountSketchMedian(t *testing.T) {
	if m := median([]int64{5, 1, 3}); m != 3 {
		t.Fatalf("odd median = %d", m)
	}
	if m := median([]int64{4, 2}); m != 3 {
		t.Fatalf("even median = %d", m)
	}
	if m := median([]int64{-10, 0, 10, 20}); m != 5 {
		t.Fatalf("even median = %d", m)
	}
}

func TestCountSketchSubtractChangeDetection(t *testing.T) {
	// §V: with shared seeds, s(A\B) answers frequency-difference queries.
	// With no collisions the answers are exact, including negatives.
	for name, spec := range map[string]SignedRowSpec{
		"baseline": FixedSignRow(32),
		"salsa":    SalsaSignRow(8, false),
	} {
		t.Run(name, func(t *testing.T) {
			a := NewCountSketch(5, 4096, spec, 42)
			b := NewCountSketch(5, 4096, spec, 42)
			// Item 1: 5 in A, 2 in B → +3. Item 2: 2 in A, 3 in B → −1.
			for i := 0; i < 5; i++ {
				a.Update(1, 1)
			}
			for i := 0; i < 2; i++ {
				b.Update(1, 1)
				a.Update(2, 1)
			}
			for i := 0; i < 3; i++ {
				b.Update(2, 1)
			}
			a.MergeFrom(b, -1)
			if got := a.Query(1); got != 3 {
				t.Fatalf("diff(1) = %d, want 3", got)
			}
			if got := a.Query(2); got != -1 {
				t.Fatalf("diff(2) = %d, want -1", got)
			}
		})
	}
}

func TestCountSketchMergeUnion(t *testing.T) {
	a := NewCountSketch(5, 4096, SalsaSignRow(8, false), 42)
	b := NewCountSketch(5, 4096, SalsaSignRow(8, false), 42)
	a.Update(7, 300)
	b.Update(7, 44)
	b.Update(8, 5)
	a.MergeFrom(b, 1)
	if got := a.Query(7); got != 344 {
		t.Fatalf("union(7) = %d, want 344", got)
	}
	if got := a.Query(8); got != 5 {
		t.Fatalf("union(8) = %d, want 5", got)
	}
}

func TestCountSketchErrorShrinksWithWidth(t *testing.T) {
	// The L2 guarantee: average error must improve markedly with width.
	stream := zipfish(50000, 5000, 22)
	truth := exactCounts(stream)
	errFor := func(width int) float64 {
		c := NewCountSketch(5, width, SalsaSignRow(8, false), 5)
		for _, x := range stream {
			c.Update(x, 1)
		}
		var sum float64
		for x, f := range truth {
			d := float64(c.Query(x)) - float64(f)
			sum += d * d
		}
		return sum / float64(len(truth))
	}
	small, large := errFor(64), errFor(2048)
	if large*4 > small {
		t.Fatalf("error did not shrink with width: small %f, large %f", small, large)
	}
}

func TestCountSketchSeedMismatchPanics(t *testing.T) {
	a := NewCountSketch(2, 64, FixedSignRow(32), 1)
	b := NewCountSketch(2, 64, FixedSignRow(32), 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	a.MergeFrom(b, 1)
}

func TestCountSketchRandomTurnstileConsistency(t *testing.T) {
	// Feeding +v then −v for every item must return the sketch to an
	// all-zero state (linearity), for SALSA rows included.
	c := NewCountSketch(5, 256, SalsaSignRow(8, false), 31)
	rng := rand.New(rand.NewSource(32))
	type upd struct {
		x uint64
		v int64
	}
	var ups []upd
	for i := 0; i < 5000; i++ {
		u := upd{uint64(rng.Intn(500)), int64(rng.Intn(200)) - 100}
		ups = append(ups, u)
		c.Update(u.x, u.v)
	}
	for _, u := range ups {
		c.Update(u.x, -u.v)
	}
	for x := uint64(0); x < 500; x++ {
		if got := c.Query(x); got != 0 {
			t.Fatalf("after cancellation, Query(%d) = %d", x, got)
		}
	}
}
