package sketch

import (
	"bytes"
	"testing"

	"salsa/internal/core"
	"salsa/internal/stream"
)

// The fast/general equivalence suite: every monomorphic hot path must leave
// the sketch bit-for-bit identical to the generic interface path fed the
// same stream. Marshalable backends are compared marshal-byte-exact; Tango
// (no marshal format) is compared counter-by-counter including spans.

// runPair drives a fast-path sketch and a fast-path-disabled twin through
// the identical op sequence.
func runPair(t *testing.T, build func() *CMS, drive func(c *CMS)) (fast, generic *CMS) {
	t.Helper()
	fast = build()
	generic = build()
	generic.disableFast()
	if generic.fixed != nil || generic.salsa != nil || generic.tango != nil {
		t.Fatal("disableFast left a monomorphic view")
	}
	drive(fast)
	drive(generic)
	return fast, generic
}

// checkCMSEqual asserts bit-for-bit equality: marshal bytes when the
// backend marshals, per-slot values (and Tango spans) otherwise.
func checkCMSEqual(t *testing.T, name string, fast, generic *CMS) {
	t.Helper()
	if _, tango := fast.rows[0].(*core.Tango); !tango {
		fb, err1 := fast.MarshalBinary()
		gb, err2 := generic.MarshalBinary()
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: marshal: %v / %v", name, err1, err2)
		}
		if !bytes.Equal(fb, gb) {
			t.Fatalf("%s: fast and generic paths diverged (marshal bytes differ)", name)
		}
		return
	}
	for i := range fast.rows {
		ft, gt := fast.rows[i].(*core.Tango), generic.rows[i].(*core.Tango)
		for slot := 0; slot < ft.Width(); slot++ {
			flo, fhi := ft.Span(slot)
			glo, ghi := gt.Span(slot)
			if flo != glo || fhi != ghi {
				t.Fatalf("%s: row %d slot %d: span (%d,%d) != (%d,%d)",
					name, i, slot, flo, fhi, glo, ghi)
			}
			if fv, gv := ft.Value(slot), gt.Value(slot); fv != gv {
				t.Fatalf("%s: row %d slot %d: value %d != %d", name, i, slot, fv, gv)
			}
		}
	}
}

// fastSpecs is batchSpecs plus an 8-bit fixed baseline; every monomorphic
// CMS backend appears.
func fastSpecs() map[string]RowSpec {
	return map[string]RowSpec{
		"Fixed32":      FixedRow(32),
		"Fixed8":       FixedRow(8),
		"SalsaMax":     SalsaRow(8, core.MaxMerge, false),
		"SalsaSum":     SalsaRow(8, core.SumMerge, false),
		"SalsaMax4":    SalsaRow(4, core.MaxMerge, false),
		"SalsaCompact": SalsaRow(8, core.MaxMerge, true),
		"Tango":        TangoRow(8, core.MaxMerge),
	}
}

func TestFastPathEquivalenceCMS(t *testing.T) {
	data := stream.Zipf(80000, 4000, 1.0, 21)
	for name, spec := range fastSpecs() {
		for _, conservative := range []bool{false, true} {
			build := func() *CMS {
				if conservative {
					return NewCUS(4, 1<<10, spec, 33)
				}
				return NewCMS(4, 1<<10, spec, 33)
			}
			// Heavy counts force overflows and merges, so the fast paths'
			// general-path fallbacks fire too.
			fast, generic := runPair(t, build, func(c *CMS) {
				for j, x := range data {
					c.Update(x, int64(1+j%7))
				}
			})
			tag := name
			if conservative {
				tag += "/conservative"
			}
			checkCMSEqual(t, tag, fast, generic)
			for _, x := range data[:2000] {
				if fv, gv := fast.Query(x), generic.Query(x); fv != gv {
					t.Fatalf("%s: query(%d): fast %d != generic %d", tag, x, fv, gv)
				}
			}
		}
	}
}

// TestFastPathEquivalenceCMSNegative covers the Strict Turnstile decrement
// route of the sum-merge backends.
func TestFastPathEquivalenceCMSNegative(t *testing.T) {
	data := stream.Zipf(50000, 2500, 1.0, 5)
	for name, spec := range map[string]RowSpec{
		"Fixed32":  FixedRow(32),
		"SalsaSum": SalsaRow(8, core.SumMerge, false),
		"TangoSum": TangoRow(8, core.SumMerge),
	} {
		build := func() *CMS { return NewCMS(4, 1<<10, spec, 17) }
		fast, generic := runPair(t, build, func(c *CMS) {
			for j, x := range data {
				if j%5 == 4 {
					c.Update(x, -2)
				} else {
					c.Update(x, 3)
				}
			}
		})
		checkCMSEqual(t, name, fast, generic)
	}
}

// TestFastPathEquivalenceBatch pins the batch routes (UpdateBatch and the
// conservative batch) against the generic per-item path.
func TestFastPathEquivalenceBatch(t *testing.T) {
	data := stream.Zipf(60000, 3000, 1.0, 41)
	for name, spec := range fastSpecs() {
		for _, conservative := range []bool{false, true} {
			build := func() *CMS {
				if conservative {
					return NewCUS(4, 1<<10, spec, 9)
				}
				return NewCMS(4, 1<<10, spec, 9)
			}
			fast := build()
			generic := build()
			generic.disableFast()
			for off := 0; off < len(data); off += 1777 {
				end := min(off+1777, len(data))
				fast.UpdateBatch(data[off:end], 2)
			}
			for _, x := range data {
				generic.Update(x, 2)
			}
			tag := name + "/batch"
			if conservative {
				tag += "/conservative"
			}
			checkCMSEqual(t, tag, fast, generic)
			// QueryBatch against the generic single-item Query.
			items := data[:1500]
			got := fast.QueryBatch(items, nil)
			for i, x := range items {
				if want := generic.Query(x); got[i] != want {
					t.Fatalf("%s: QueryBatch(%d) = %d, want %d", tag, x, got[i], want)
				}
			}
		}
	}
}

func TestFastPathEquivalenceCountSketch(t *testing.T) {
	data := stream.Zipf(60000, 3000, 1.0, 29)
	for name, spec := range map[string]SignedRowSpec{
		"FixedSign32":      FixedSignRow(32),
		"FixedSign8":       FixedSignRow(8),
		"SalsaSign":        SalsaSignRow(8, false),
		"SalsaSign4":       SalsaSignRow(4, false),
		"SalsaSignCompact": SalsaSignRow(8, true),
	} {
		build := func() *CountSketch { return NewCountSketch(5, 1<<10, spec, 13) }
		fast := build()
		generic := build()
		generic.disableFast()
		drive := func(c *CountSketch) {
			for j, x := range data {
				v := int64(1 + j%6)
				if j%3 == 2 {
					v = -v // mixed signs exercise both overflow directions
				}
				c.Update(x, v)
			}
		}
		drive(fast)
		drive(generic)
		fb, err1 := fast.MarshalBinary()
		gb, err2 := generic.MarshalBinary()
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: marshal: %v / %v", name, err1, err2)
		}
		if !bytes.Equal(fb, gb) {
			t.Fatalf("%s: fast and generic paths diverged (marshal bytes differ)", name)
		}
		for _, x := range data[:2000] {
			if fv, gv := fast.Query(x), generic.Query(x); fv != gv {
				t.Fatalf("%s: query(%d): fast %d != generic %d", name, x, fv, gv)
			}
		}
	}
}

// TestUnmarshalKeepsFastPath pins that decoded sketches classify their rows
// and keep the monomorphic view.
func TestUnmarshalKeepsFastPath(t *testing.T) {
	cms := NewCMS(4, 1<<8, SalsaRow(8, core.MaxMerge, false), 3)
	cms.Update(42, 9)
	payload, err := cms.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalCMS(payload)
	if err != nil {
		t.Fatal(err)
	}
	if back.salsa == nil {
		t.Fatal("unmarshaled CMS lost the monomorphic salsa view")
	}
	cs := NewCountSketch(5, 1<<8, SalsaSignRow(8, false), 3)
	cs.Update(42, 9)
	payload, err = cs.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	csBack, err := UnmarshalCountSketch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if csBack.salsa == nil {
		t.Fatal("unmarshaled CountSketch lost the monomorphic salsa view")
	}
}

// TestArenaRowsShareGeometry pins that arena-built rows behave exactly like
// individually-allocated rows (same marshal bytes after the same stream).
func TestArenaRowsShareGeometry(t *testing.T) {
	data := stream.Zipf(30000, 1500, 1.0, 77)
	for name, pair := range map[string][2]RowSpec{
		"fixed": {FixedRow(32), {New: FixedRow(32).New}},
		"salsa": {SalsaRow(8, core.MaxMerge, false), {New: SalsaRow(8, core.MaxMerge, false).New}},
	} {
		arena := NewCMS(4, 1<<10, pair[0], 7)
		loose := NewCMS(4, 1<<10, pair[1], 7)
		for _, x := range data {
			arena.Update(x, 1)
			loose.Update(x, 1)
		}
		ab, err1 := arena.MarshalBinary()
		lb, err2 := loose.MarshalBinary()
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: marshal: %v / %v", name, err1, err2)
		}
		if !bytes.Equal(ab, lb) {
			t.Fatalf("%s: arena-backed rows diverged from loose rows", name)
		}
	}
}
