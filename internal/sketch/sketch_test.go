package sketch

import (
	"math/rand"
	"testing"

	"salsa/internal/core"
	"salsa/internal/hashing"
)

// zipfish draws a crude heavy-tailed stream: item k with weight ∝ 1/(k+1).
func zipfish(n, u int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	cdf := make([]float64, u)
	total := 0.0
	for k := 0; k < u; k++ {
		total += 1 / float64(k+1)
		cdf[k] = total
	}
	out := make([]uint64, n)
	for i := range out {
		x := rng.Float64() * total
		lo, hi := 0, u-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[i] = uint64(lo) + 1000
	}
	return out
}

func exactCounts(stream []uint64) map[uint64]uint64 {
	m := make(map[uint64]uint64)
	for _, x := range stream {
		m[x]++
	}
	return m
}

func TestCMSOverestimates(t *testing.T) {
	stream := zipfish(50000, 2000, 1)
	truth := exactCounts(stream)
	specs := map[string]RowSpec{
		"baseline32": FixedRow(32),
		"salsa-sum":  SalsaRow(8, core.SumMerge, false),
		"salsa-max":  SalsaRow(8, core.MaxMerge, false),
		"salsa-cpt":  SalsaRow(8, core.SumMerge, true),
		"tango":      TangoRow(8, core.SumMerge),
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			c := NewCMS(4, 512, spec, 42)
			for _, x := range stream {
				c.Update(x, 1)
			}
			for x, f := range truth {
				if est := c.Query(x); est < f {
					t.Fatalf("item %d: estimate %d < truth %d", x, est, f)
				}
			}
		})
	}
}

func TestCUSSandwich(t *testing.T) {
	// truth ≤ CUS ≤ CMS for identical streams, seeds and row geometry.
	stream := zipfish(50000, 2000, 2)
	truth := exactCounts(stream)
	for name, spec := range map[string]RowSpec{
		"baseline32": FixedRow(32),
		"salsa-max":  SalsaRow(8, core.MaxMerge, false),
	} {
		t.Run(name, func(t *testing.T) {
			cms := NewCMS(4, 512, spec, 42)
			cus := NewCUS(4, 512, spec, 42)
			for _, x := range stream {
				cms.Update(x, 1)
				cus.Update(x, 1)
			}
			for x, f := range truth {
				ce, ue := cms.Query(x), cus.Query(x)
				if ue < f {
					t.Fatalf("item %d: CUS %d < truth %d", x, ue, f)
				}
				if ue > ce {
					t.Fatalf("item %d: CUS %d > CMS %d", x, ue, ce)
				}
			}
		})
	}
}

func TestSalsaDominatesUnderlyingCMS(t *testing.T) {
	// Theorem V.1: the SALSA CMS estimate is at most the estimate of the
	// underlying CMS whose counters are the max-level blocks with hashes
	// ⌊hᵢ(x)/2^L⌋. Reconstruct the underlying estimate from per-(row,slot)
	// exact sums.
	const d, w = 4, 512
	const maxLvlBlock = 8 // s=8 → 64-bit counters span 8 slots
	stream := zipfish(80000, 3000, 3)
	truth := exactCounts(stream)

	c := NewCMS(d, w, SalsaRow(8, core.SumMerge, false), 42)
	slotSums := make([][]uint64, d)
	for i := range slotSums {
		slotSums[i] = make([]uint64, w)
	}
	for _, x := range stream {
		c.Update(x, 1)
		for i := range slotSums {
			slotSums[i][hashing.Index(x, c.seeds[i], c.mask)]++
		}
	}
	for x, f := range truth {
		underlying := ^uint64(0)
		for i := 0; i < d; i++ {
			slot := int(hashing.Index(x, c.seeds[i], c.mask))
			blockStart := slot &^ (maxLvlBlock - 1)
			var blockSum uint64
			for j := blockStart; j < blockStart+maxLvlBlock; j++ {
				blockSum += slotSums[i][j]
			}
			if blockSum < underlying {
				underlying = blockSum
			}
		}
		est := c.Query(x)
		if est < f || est > underlying {
			t.Fatalf("item %d: estimate %d outside [truth %d, underlying %d]", x, est, f, underlying)
		}
	}
}

func TestMaxMergeAtLeastAsAccurate(t *testing.T) {
	// §VI ("Which Merging Should We Use?"): on cash-register streams the
	// max-merge estimate is bounded by the sum-merge estimate.
	stream := zipfish(80000, 3000, 4)
	sum := NewCMS(4, 256, SalsaRow(8, core.SumMerge, false), 42)
	max := NewCMS(4, 256, SalsaRow(8, core.MaxMerge, false), 42)
	for _, x := range stream {
		sum.Update(x, 1)
		max.Update(x, 1)
	}
	for x := range exactCounts(stream) {
		if max.Query(x) > sum.Query(x) {
			t.Fatalf("item %d: max-merge %d > sum-merge %d", x, max.Query(x), sum.Query(x))
		}
	}
}

func TestTangoAtLeastAsAccurateAsSalsa(t *testing.T) {
	// §IV: Tango counters are contained in SALSA counters, so Tango
	// estimates are sandwiched between the truth and SALSA's estimates
	// (Theorem V.1 ordering).
	stream := zipfish(60000, 3000, 5)
	truth := exactCounts(stream)
	salsa := NewCMS(4, 256, SalsaRow(8, core.SumMerge, false), 42)
	tango := NewCMS(4, 256, TangoRow(8, core.SumMerge), 42)
	for _, x := range stream {
		salsa.Update(x, 1)
		tango.Update(x, 1)
	}
	for x, f := range truth {
		te, se := tango.Query(x), salsa.Query(x)
		if te < f || te > se {
			t.Fatalf("item %d: tango %d outside [truth %d, salsa %d]", x, te, f, se)
		}
	}
}

func TestCMSExactWithoutCollisions(t *testing.T) {
	// With far more slots than items, every estimate is exact.
	items := []uint64{10, 20, 30, 40}
	for name, spec := range map[string]RowSpec{
		"baseline": FixedRow(32),
		"salsa":    SalsaRow(8, core.SumMerge, false),
	} {
		t.Run(name, func(t *testing.T) {
			c := NewCMS(4, 4096, spec, 7)
			for i, x := range items {
				for k := 0; k <= i; k++ {
					c.Update(x, 1)
				}
			}
			for i, x := range items {
				if got := c.Query(x); got != uint64(i)+1 {
					t.Fatalf("item %d: got %d, want %d", x, got, i+1)
				}
			}
			if got := c.Query(999); got != 0 {
				t.Fatalf("absent item estimated at %d", got)
			}
		})
	}
}

func TestCMSWeightedAndNegativeUpdates(t *testing.T) {
	c := NewCMS(4, 1024, SalsaRow(8, core.SumMerge, false), 9)
	c.Update(5, 1000)
	c.Update(5, -400)
	if got := c.Query(5); got != 600 {
		t.Fatalf("got %d, want 600", got)
	}
}

func TestCUSNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewCUS(2, 64, FixedRow(32), 1).Update(1, -1)
}

func TestCMSMergeAndSubtract(t *testing.T) {
	for name, spec := range map[string]RowSpec{
		"baseline": FixedRow(32),
		"salsa":    SalsaRow(8, core.SumMerge, false),
	} {
		t.Run(name, func(t *testing.T) {
			streamA := zipfish(20000, 1000, 6)
			streamB := zipfish(20000, 1000, 7)
			a := NewCMS(4, 256, spec, 42)
			b := NewCMS(4, 256, spec, 42)
			both := NewCMS(4, 256, spec, 42)
			for _, x := range streamA {
				a.Update(x, 1)
				both.Update(x, 1)
			}
			for _, x := range streamB {
				b.Update(x, 1)
				both.Update(x, 1)
			}
			a.MergeFrom(b)
			truth := exactCounts(append(append([]uint64{}, streamA...), streamB...))
			for x, f := range truth {
				if a.Query(x) < f {
					t.Fatalf("merged sketch underestimates %d", x)
				}
			}
			// Subtracting B back out yields a valid sketch of A alone.
			a.SubtractFrom(b)
			truthA := exactCounts(streamA)
			for x, f := range truthA {
				if a.Query(x) < f {
					t.Fatalf("after subtract, item %d: %d < truth %d", x, a.Query(x), f)
				}
			}
		})
	}
}

func TestCMSSeedMismatchPanics(t *testing.T) {
	a := NewCMS(2, 64, FixedRow(32), 1)
	b := NewCMS(2, 64, FixedRow(32), 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on seed mismatch")
		}
	}()
	a.MergeFrom(b)
}

func TestDistinctLinearCounting(t *testing.T) {
	const distinct = 3000
	for name, spec := range map[string]RowSpec{
		"baseline32": FixedRow(32),
		"salsa":      SalsaRow(8, core.SumMerge, false),
	} {
		t.Run(name, func(t *testing.T) {
			c := NewCMS(4, 16384, spec, 11)
			rng := rand.New(rand.NewSource(12))
			for i := 0; i < distinct; i++ {
				x := rng.Uint64()
				reps := 1 + rng.Intn(5)
				for r := 0; r < reps; r++ {
					c.Update(x, 1)
				}
			}
			est, err := c.DistinctLinearCounting()
			if err != nil {
				t.Fatal(err)
			}
			if est < distinct*0.9 || est > distinct*1.1 {
				t.Fatalf("estimate %.0f, want within 10%% of %d", est, distinct)
			}
		})
	}
}

func TestDistinctLinearCountingOutOfRange(t *testing.T) {
	c := NewCMS(1, 64, FixedRow(8), 1)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 10000; i++ {
		c.Update(rng.Uint64(), 1)
	}
	if _, err := c.DistinctLinearCounting(); err == nil {
		t.Fatal("expected out-of-range error when no counters are zero")
	}
}

func TestCMSSizeBits(t *testing.T) {
	c := NewCMS(4, 256, FixedRow(32), 1)
	if c.SizeBits() != 4*256*32 {
		t.Fatalf("SizeBits = %d", c.SizeBits())
	}
	s := NewCMS(4, 256, SalsaRow(8, core.SumMerge, false), 1)
	if s.SizeBits() != 4*(256*8+256) {
		t.Fatalf("SALSA SizeBits = %d", s.SizeBits())
	}
}

func TestCMSWidthMustBePowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewCMS(2, 100, FixedRow(32), 1)
}
