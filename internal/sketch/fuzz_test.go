package sketch

import "testing"

// FuzzSketchUnmarshal: sketch decoders must reject arbitrary bytes without
// panicking.
func FuzzSketchUnmarshal(f *testing.F) {
	cms := NewCMS(2, 64, FixedRow(32), 1)
	cms.Update(5, 10)
	blob, _ := cms.MarshalBinary()
	f.Add(blob)
	cs := NewCountSketch(3, 64, SalsaSignRow(8, false), 2)
	cs.Update(5, -10)
	blob2, _ := cs.MarshalBinary()
	f.Add(blob2)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if c, err := UnmarshalCMS(data); err == nil {
			c.Update(1, 1) // decoded sketches must be operational
			_ = c.Query(1)
		}
		if c, err := UnmarshalCountSketch(data); err == nil {
			c.Update(1, 1)
			_ = c.Query(1)
		}
	})
}
