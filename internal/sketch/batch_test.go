package sketch

import (
	"testing"

	"salsa/internal/core"
	"salsa/internal/stream"
)

// batchSpecs covers every row backend the batch path dispatches over.
func batchSpecs() map[string]RowSpec {
	return map[string]RowSpec{
		"Fixed32":      FixedRow(32),
		"Fixed8":       FixedRow(8),
		"SalsaMax":     SalsaRow(8, core.MaxMerge, false),
		"SalsaSum":     SalsaRow(8, core.SumMerge, false),
		"SalsaCompact": SalsaRow(8, core.MaxMerge, true),
		"Tango":        TangoRow(8, core.MaxMerge),
	}
}

// TestCMSUpdateBatchEquivalent pins the batch contract: UpdateBatch leaves
// the sketch in the identical state as per-item Updates in the same order,
// for every row backend and both update rules, including counter values at
// every slot (not just the queried minima).
func TestCMSUpdateBatchEquivalent(t *testing.T) {
	data := stream.Zipf(60000, 3000, 1.0, 7)
	for name, spec := range batchSpecs() {
		for _, conservative := range []bool{false, true} {
			seq := NewCMS(4, 1<<10, spec, 11)
			bat := NewCMS(4, 1<<10, spec, 11)
			if conservative {
				seq = NewCUS(4, 1<<10, spec, 11)
				bat = NewCUS(4, 1<<10, spec, 11)
			}
			for _, x := range data {
				seq.Update(x, 1)
			}
			// Ragged batch sizes exercise the chunking boundaries.
			for off, size := 0, 1; off < len(data); size = size*3 + 1 {
				end := off + size
				if end > len(data) {
					end = len(data)
				}
				bat.UpdateBatch(data[off:end], 1)
				off = end
			}
			for row := range seq.rows {
				for slot := 0; slot < seq.Width(); slot++ {
					if a, b := seq.rows[row].Value(slot), bat.rows[row].Value(slot); a != b {
						t.Fatalf("%s conservative=%v: row %d slot %d: sequential %d != batch %d",
							name, conservative, row, slot, a, b)
					}
				}
			}
		}
	}
}

func TestCMSQueryBatch(t *testing.T) {
	data := stream.Zipf(30000, 2000, 1.0, 9)
	sk := NewCMS(4, 1<<10, SalsaRow(8, core.MaxMerge, false), 3)
	sk.UpdateBatch(data, 1)
	items := make([]uint64, 700)
	for i := range items {
		items[i] = uint64(i)
	}
	got := sk.QueryBatch(items, nil)
	if len(got) != len(items) {
		t.Fatalf("len = %d, want %d", len(got), len(items))
	}
	for i, x := range items {
		if want := sk.Query(x); got[i] != want {
			t.Fatalf("item %d: QueryBatch %d != Query %d", x, got[i], want)
		}
	}
	// A caller-provided buffer longer than items must be reused, not grown.
	buf := make([]uint64, 1024)
	got2 := sk.QueryBatch(items[:10], buf)
	if &got2[0] != &buf[0] || len(got2) != 10 {
		t.Fatal("QueryBatch did not reuse the provided buffer")
	}
}

func TestCountSketchBatchEquivalent(t *testing.T) {
	data := stream.Zipf(40000, 2500, 1.0, 13)
	for name, spec := range map[string]SignedRowSpec{
		"FixedSign": FixedSignRow(32),
		"SalsaSign": SalsaSignRow(8, false),
	} {
		seq := NewCountSketch(5, 1<<10, spec, 17)
		bat := NewCountSketch(5, 1<<10, spec, 17)
		for _, x := range data {
			seq.Update(x, 1)
		}
		for off := 0; off < len(data); off += 1000 {
			end := off + 1000
			if end > len(data) {
				end = len(data)
			}
			bat.UpdateBatch(data[off:end], 1)
		}
		items := make([]uint64, 500)
		for i := range items {
			items[i] = uint64(i)
		}
		est := bat.QueryBatch(items, nil)
		for i, x := range items {
			if seq.Query(x) != bat.Query(x) {
				t.Fatalf("%s: item %d: sequential %d != batch-built %d", name, x, seq.Query(x), bat.Query(x))
			}
			if est[i] != bat.Query(x) {
				t.Fatalf("%s: item %d: QueryBatch %d != Query %d", name, x, est[i], bat.Query(x))
			}
		}
	}
}
