// Package sketch implements the frequency sketches the paper builds on —
// Count-Min Sketch (CMS), Conservative Update Sketch (CUS) and Count Sketch
// (CS) — parameterized over the counter-array row type, so each sketch runs
// unchanged over fixed-width baseline rows, SALSA rows, or Tango rows.
package sketch

import (
	"fmt"
	"math"

	"salsa/internal/core"
	"salsa/internal/hashing"
)

// Row is a row of non-negative counters, as used by CMS and CUS.
// core.Fixed, core.Salsa and core.Tango implement it.
type Row interface {
	// Add adds v to the counter addressed by slot (negative v subtracts).
	Add(slot int, v int64)
	// SetAtLeast raises the counter addressed by slot to at least v.
	SetAtLeast(slot int, v uint64)
	// Value returns the value of the counter addressed by slot.
	Value(slot int) uint64
	// Width returns the number of addressable slots.
	Width() int
	// SizeBits returns the memory footprint in bits.
	SizeBits() int
}

// SignedRow is a row of signed counters, as used by the Count Sketch.
// core.FixedSign and core.SalsaSign implement it.
type SignedRow interface {
	Add(slot int, v int64)
	Value(slot int) int64
	Width() int
	SizeBits() int
}

// Compile-time interface checks.
var (
	_ Row       = (*core.Fixed)(nil)
	_ Row       = (*core.Salsa)(nil)
	_ Row       = (*core.Tango)(nil)
	_ SignedRow = (*core.FixedSign)(nil)
	_ SignedRow = (*core.SalsaSign)(nil)
)

// CMS is a Count-Min Sketch (optionally in conservative-update mode, which
// makes it the CUS of Estan & Varghese). Each item is mapped to one counter
// per row; the estimate is the minimum over the rows (§III).
//
// Homogeneous sketches — every row the same concrete core type, which is
// what the RowSpec constructors build — additionally carry a monomorphic
// view of the rows (fixed/salsa/tango below), and the hot paths run over it
// with direct, devirtualized calls into internal/core; see fast.go. The
// interface rows remain the source of truth for merge, marshal, and the
// estimator integrations.
type CMS struct {
	rows         []Row
	fixed        []*core.Fixed // exactly one of these three is non-nil for
	salsa        []*core.Salsa // homogeneous sketches; all nil falls back to
	tango        []*core.Tango // the generic interface path
	seeds        []uint64
	mask         uint64
	conservative bool
	slots        []uint32 // d pre-hashed slots: single-item ops hash once
	// chunkSlots is the per-chunk slot buffer of UpdateBatch; it lives on
	// the sketch because a stack buffer would escape through the
	// row-interface AddSlots call and allocate per batch.
	chunkSlots  []uint32
	slotScratch [][]uint32 // per-row slot buffers for conservative batches
}

// newCMS wires d pre-built rows with hash seeds derived from seed.
func newCMS(rows []Row, seed uint64, conservative bool) *CMS {
	if len(rows) == 0 {
		panic("sketch: no rows")
	}
	w := rows[0].Width()
	if w&(w-1) != 0 {
		panic(fmt.Sprintf("sketch: width %d must be a power of two", w))
	}
	for _, r := range rows {
		if r.Width() != w {
			panic("sketch: rows must share one width")
		}
	}
	c := &CMS{
		rows:         rows,
		seeds:        hashing.Seeds(seed, len(rows)),
		mask:         uint64(w - 1),
		conservative: conservative,
		slots:        make([]uint32, len(rows)),
	}
	c.classifyRows()
	return c
}

// classifyRows populates the monomorphic row view when every row shares one
// concrete core type. Mixed-type sketches (possible only through Unmarshal
// of hand-built payloads) keep all three views nil and use the generic path.
func (c *CMS) classifyRows() {
	switch c.rows[0].(type) {
	case *core.Fixed:
		rows := make([]*core.Fixed, 0, len(c.rows))
		for _, r := range c.rows {
			f, ok := r.(*core.Fixed)
			if !ok {
				return
			}
			rows = append(rows, f)
		}
		c.fixed = rows
	case *core.Salsa:
		rows := make([]*core.Salsa, 0, len(c.rows))
		for _, r := range c.rows {
			s, ok := r.(*core.Salsa)
			if !ok {
				return
			}
			rows = append(rows, s)
		}
		c.salsa = rows
	case *core.Tango:
		rows := make([]*core.Tango, 0, len(c.rows))
		for _, r := range c.rows {
			t, ok := r.(*core.Tango)
			if !ok {
				return
			}
			rows = append(rows, t)
		}
		c.tango = rows
	}
}

// disableFast drops the monomorphic row view, forcing every operation
// through the generic interface path. It exists for the fast/general
// bit-for-bit equivalence tests.
func (c *CMS) disableFast() { c.fixed, c.salsa, c.tango = nil, nil, nil }

// RowSpec constructs the rows of a sketch; it is how callers choose between
// baseline, SALSA, and Tango rows. New builds one standalone row; NewRows
// builds all d rows of a sketch backed by one contiguous cache-line-aligned
// arena (the default used by NewCMS/NewCUS — the merged allocation removes
// per-row pointer chasing from every probe).
type RowSpec struct {
	New     func(width int) Row
	NewRows func(d, width int) []Row
}

// FixedRow returns a RowSpec for baseline rows with bits-bit counters.
func FixedRow(bits uint) RowSpec {
	return RowSpec{
		New: func(width int) Row { return core.NewFixed(width, bits) },
		NewRows: func(d, width int) []Row {
			return asRows(core.NewFixedRows(d, width, bits))
		},
	}
}

// SalsaRow returns a RowSpec for SALSA rows with s-bit base counters.
func SalsaRow(s uint, policy core.MergePolicy, compact bool) RowSpec {
	return RowSpec{
		New: func(width int) Row { return core.NewSalsa(width, s, policy, compact) },
		NewRows: func(d, width int) []Row {
			return asRows(core.NewSalsaRows(d, width, s, policy, compact))
		},
	}
}

// TangoRow returns a RowSpec for Tango rows with s-bit base counters.
func TangoRow(s uint, policy core.MergePolicy) RowSpec {
	return RowSpec{
		New: func(width int) Row { return core.NewTango(width, s, policy) },
		NewRows: func(d, width int) []Row {
			return asRows(core.NewTangoRows(d, width, s, policy))
		},
	}
}

// asRows widens a concrete row slice to []Row.
func asRows[R Row](rows []R) []Row {
	out := make([]Row, len(rows))
	for i, r := range rows {
		out[i] = r
	}
	return out
}

// buildRows realizes d spec rows, preferring the contiguous arena.
func (spec RowSpec) buildRows(d, width int) []Row {
	if spec.NewRows != nil {
		return spec.NewRows(d, width)
	}
	rows := make([]Row, d)
	for i := range rows {
		rows[i] = spec.New(width)
	}
	return rows
}

// NewCMS returns a d×width Count-Min Sketch built from spec rows.
func NewCMS(d, width int, spec RowSpec, seed uint64) *CMS {
	return newCMS(spec.buildRows(d, width), seed, false)
}

// NewCUS returns a d×width Conservative Update Sketch built from spec rows.
// Per Theorem V.3, SALSA rows should use core.MaxMerge.
func NewCUS(d, width int, spec RowSpec, seed uint64) *CMS {
	return newCMS(spec.buildRows(d, width), seed, true)
}

// Depth returns the number of rows d.
func (c *CMS) Depth() int { return len(c.rows) }

// Conservative reports whether updates use the conservative (CUS) rule.
func (c *CMS) Conservative() bool { return c.conservative }

// Width returns the row width w.
func (c *CMS) Width() int { return int(c.mask) + 1 }

// SizeBits returns the total memory footprint in bits, including any merge
// encoding overhead of the rows.
func (c *CMS) SizeBits() int {
	total := 0
	for _, r := range c.rows {
		total += r.SizeBits()
	}
	return total
}

// Rows exposes the underlying rows (read-mostly; used by the estimator
// integrations and tests).
func (c *CMS) Rows() []Row { return c.rows }

// Update processes the stream update ⟨x, v⟩. In conservative mode v must be
// non-negative (the Cash Register model).
//
//salsa:hotpath
func (c *CMS) Update(x uint64, v int64) {
	switch {
	case c.salsa != nil:
		c.updateSalsa(x, v)
	case c.fixed != nil:
		c.updateFixed(x, v)
	case c.tango != nil:
		c.updateTango(x, v)
	default:
		c.updateGeneric(x, v)
	}
}

// updateGeneric is Update over the interface rows: the fallback for
// mixed-row sketches, and the oracle the monomorphic paths are equivalence-
// tested against.
//
//salsa:hotpath
func (c *CMS) updateGeneric(x uint64, v int64) {
	if !c.conservative {
		for i, r := range c.rows {
			r.Add(int(hashing.Index(x, c.seeds[i], c.mask)), v)
		}
		return
	}
	// Conservative update: raise each counter to at most v plus the current
	// estimate, never beyond what the minimum row implies (§III). Each row
	// is hashed once, feeding both the min pass and the raise pass.
	slots := c.hashOnce(x)
	est := ^uint64(0)
	for i, r := range c.rows {
		if cur := r.Value(int(slots[i])); cur < est {
			est = cur
		}
	}
	target := satAddU(est, uint64(mustNonNegative(v)))
	for i, r := range c.rows {
		r.SetAtLeast(int(slots[i]), target)
	}
}

// hashOnce fills the per-sketch slot scratch with x's slot in every row.
// The scratch makes single-item ops allocation-free; like the query scratch
// of CountSketch, it means a sketch must not be mutated concurrently.
//
//salsa:hotpath
func (c *CMS) hashOnce(x uint64) []uint32 {
	slots := c.slots
	for i := range slots {
		slots[i] = uint32(hashing.Index(x, c.seeds[i], c.mask))
	}
	return slots
}

// mustNonNegative guards the Cash Register precondition of conservative
// updates, returning v unchanged.
//
//salsa:hotpath
func mustNonNegative(v int64) int64 {
	if v < 0 {
		panic("sketch: negative update in conservative mode")
	}
	return v
}

// Query returns the estimate f̂(x) = min over rows.
//
//salsa:hotpath
func (c *CMS) Query(x uint64) uint64 {
	switch {
	case c.salsa != nil:
		return c.querySalsa(x)
	case c.fixed != nil:
		return c.queryFixed(x)
	case c.tango != nil:
		return c.queryTango(x)
	}
	est := ^uint64(0)
	for i, r := range c.rows {
		if v := r.Value(int(hashing.Index(x, c.seeds[i], c.mask))); v < est {
			est = v
		}
	}
	return est
}

// MergeFrom adds other into c counter-wise, producing s(A∪B). Both sketches
// must have identical geometry, row types, and seed.
func (c *CMS) MergeFrom(other *CMS) {
	c.checkCompatible(other)
	for i, r := range c.rows {
		switch row := r.(type) {
		case *core.Fixed:
			row.MergeFrom(other.rows[i].(*core.Fixed))
		case *core.Salsa:
			row.MergeFrom(other.rows[i].(*core.Salsa))
		case *core.Tango:
			row.MergeFrom(other.rows[i].(*core.Tango))
		default:
			panic(fmt.Sprintf("sketch: merge unsupported for %T", r))
		}
	}
}

// resettableRow is implemented by every core row; Reset restores the
// pristine state while reusing the backing memory.
type resettableRow interface{ Reset() }

// Reset restores every row to its freshly-constructed state, reusing the
// backing memory. Hash seeds are unchanged, so a reset sketch keeps merging
// with its seed-sharing peers — the sliding-window bucket-rotation
// primitive.
func (c *CMS) Reset() {
	for _, r := range c.rows {
		r.(resettableRow).Reset()
	}
}

// SubtractFrom subtracts other from c counter-wise, producing s(A\B); valid
// for Strict Turnstile CMS when the subtrahend is contained in c.
func (c *CMS) SubtractFrom(other *CMS) {
	c.checkCompatible(other)
	for i, r := range c.rows {
		switch row := r.(type) {
		case *core.Fixed:
			row.SubtractFrom(other.rows[i].(*core.Fixed))
		case *core.Salsa:
			row.SubtractFrom(other.rows[i].(*core.Salsa))
		default:
			panic(fmt.Sprintf("sketch: subtract unsupported for %T", r))
		}
	}
}

func (c *CMS) checkCompatible(other *CMS) {
	if len(c.rows) != len(other.rows) || c.mask != other.mask {
		panic("sketch: geometry mismatch")
	}
	for i := range c.seeds {
		if c.seeds[i] != other.seeds[i] {
			panic("sketch: sketches must share hash seeds")
		}
	}
}

// zeroFractioner is implemented by rows that can report (or estimate) their
// fraction of zero base counters.
type zeroFractioner interface {
	ZeroFraction() float64
}

// DistinctLinearCounting estimates the number of distinct items with the
// Linear Counting estimator −w·ln(p) applied to each row's zero-counter
// fraction, averaged over rows (§III, "Counting Distinct Items"). For SALSA
// rows p is the paper's optimistic merged-counter estimate. It returns an
// error when some row has no zero counters, in which case Linear Counting
// is out of range (the paper's plots likewise start only at sufficient
// memory).
func (c *CMS) DistinctLinearCounting() (float64, error) {
	total := 0.0
	for _, r := range c.rows {
		zf, ok := r.(zeroFractioner)
		if !ok {
			return 0, fmt.Errorf("sketch: row type %T cannot report zero fractions", r)
		}
		p := zf.ZeroFraction()
		if p <= 0 {
			return 0, fmt.Errorf("sketch: no zero counters; linear counting out of range")
		}
		total += -float64(r.Width()) * math.Log(p)
	}
	return total / float64(len(c.rows)), nil
}

//salsa:hotpath
func satAddU(a, b uint64) uint64 {
	s := a + b
	if s < a {
		return ^uint64(0)
	}
	return s
}
