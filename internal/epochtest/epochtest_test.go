package epochtest

import (
	"testing"
	"time"

	"salsa"
)

func opts() salsa.Options {
	return salsa.Options{Width: 1 << 10, Depth: 4, Seed: 99, Merge: salsa.MergeSum}
}

func buildCMS(t *testing.T) *Target {
	t.Helper()
	s, err := salsa.Build(salsa.EpochShardedBy(salsa.CountMinOf(opts()), 4))
	if err != nil {
		t.Fatalf("build epoch cms: %v", err)
	}
	return MustWrap(s)
}

func smallSchedule(seed uint64, ticks bool) Schedule {
	return NewSchedule(ScheduleConfig{
		Seed: seed, Writers: 4, Steps: 200, ChunkMax: 32,
		Universe: 256, Alpha: 0.99, Ticks: ticks,
	})
}

func TestNewScheduleDeterministic(t *testing.T) {
	a, b := smallSchedule(7, true), smallSchedule(7, true)
	if len(a.Steps) != len(b.Steps) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a.Steps), len(b.Steps))
	}
	for i := range a.Steps {
		sa, sb := a.Steps[i], b.Steps[i]
		if sa.Kind != sb.Kind || sa.Writer != sb.Writer || len(sa.Items) != len(sb.Items) {
			t.Fatalf("step %d differs: %+v vs %+v", i, sa, sb)
		}
	}
	c := smallSchedule(8, true)
	if len(a.Ingested()) == len(c.Ingested()) && len(a.Steps) == len(c.Steps) {
		same := true
		for i := range a.Steps {
			if a.Steps[i].Kind != c.Steps[i].Kind {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced an identical schedule shape")
		}
	}
}

func TestScheduleMixesKinds(t *testing.T) {
	sched := smallSchedule(3, true)
	var ingests, advances, ticks int
	for _, st := range sched.Steps {
		switch st.Kind {
		case StepIngest:
			ingests++
			if st.Writer < 0 || st.Writer >= sched.Writers {
				t.Fatalf("ingest routed to out-of-range writer %d", st.Writer)
			}
			if len(st.Items) == 0 {
				t.Fatal("empty ingest step")
			}
		case StepAdvance:
			advances++
		case StepTick:
			ticks++
		}
	}
	if ingests == 0 || advances == 0 || ticks == 0 {
		t.Fatalf("schedule missing a step kind: %d ingests, %d advances, %d ticks", ingests, advances, ticks)
	}
}

func TestWrapRejectsNonEpoch(t *testing.T) {
	s, err := salsa.Build(salsa.CountMinOf(opts()))
	if err != nil {
		t.Fatalf("build plain cms: %v", err)
	}
	if _, err := Wrap(s); err == nil {
		t.Fatal("Wrap accepted a non-epoch sketch")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustWrap did not panic on a non-epoch sketch")
		}
	}()
	MustWrap(s)
}

func TestReplayAndChecksOnCMS(t *testing.T) {
	sched := smallSchedule(11, false)
	build := func() *Target { return buildCMS(t) }
	CheckDeterminism(t, build, sched)
	CheckSequentialEquivalence(t, build, sched, true)
	target := build()
	Replay(target, sched)
	CheckOverestimate(t, target, sched)
	if st := target.Stats(); st.Drained != uint64(len(sched.Ingested())) {
		t.Fatalf("drained %d of %d scheduled items", st.Drained, len(sched.Ingested()))
	}
}

func TestReplayWindowedTick(t *testing.T) {
	s, err := salsa.Build(salsa.EpochShardedBy(salsa.Windowed(salsa.CountMinOf(opts()), 4, 0), 4))
	if err != nil {
		t.Fatalf("build epoch windowed cms: %v", err)
	}
	target := MustWrap(s)
	if target.Tick == nil {
		t.Fatal("windowed target lost its Tick hook")
	}
	sched := smallSchedule(13, true)
	Replay(target, sched)
	if st := target.Stats(); st.Drained != uint64(len(sched.Ingested())) {
		t.Fatalf("drained %d of %d scheduled items", st.Drained, len(sched.Ingested()))
	}
}

func TestHammerSmoke(t *testing.T) {
	Hammer(t, buildCMS(t), HammerConfig{
		Writers: 4, Batches: 20, Batch: 64, Universe: 512,
		Seed: 17, Interval: 50 * time.Microsecond, Monotonic: true, Churn: true,
	})
}
