// Package epochtest is the concurrency harness for the epoch-merged
// ingestion layer (salsa.EpochShardedBy): because the whole epoch design
// is a concurrency bet, its proof is executable and reusable rather than
// spread over ad-hoc tests.
//
// Four instruments:
//
//   - Deterministic schedules: NewSchedule derives a seeded interleaving
//     of writer ingests, epoch advances and window ticks; Replay executes
//     it single-threaded, so any run is reproduced exactly from (seed,
//     config) alone.
//   - Drain-barrier equivalence: after a replay quiesces (writers closed,
//     one final advance), CheckSequentialEquivalence asserts the
//     topology's answers match a sequential reference that ingested the
//     same multiset in schedule order — and, for backends whose merge is
//     a pure counter sum, that the marshaled bytes match byte for byte,
//     proving merge scheduling leaves no trace. CheckDeterminism asserts
//     two same-seed replays marshal identically for every backend,
//     including the history-dependent conservative-update ones.
//   - Monotonicity: Hammer's readers assert that increment-only streams
//     never make an estimate shrink while writers and the merger run
//     concurrently — the linearizability-style property queries rely on.
//   - Conservation: after a hammer quiesces, every ingested item is
//     accounted for in the drain odometer (Stats().Drained), so no epoch
//     cut can lose or double-drain a private buffer.
//
// The package is driven from the root package's tests (it imports salsa;
// salsa's non-test code never imports it back).
//
//salsa:deterministic
package epochtest

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"salsa"
	"salsa/internal/stream"
)

// Writer is the per-goroutine ingestion surface the driver needs; all
// salsa.EpochWriter instantiations satisfy it.
type Writer interface {
	UpdateBatch(items []uint64, count int64)
	Flush()
	Close()
}

// Target adapts one built epoch topology for the harness. Wrap builds one
// from any salsa epoch sketch.
type Target struct {
	Sketch    salsa.Sketch
	NewWriter func() Writer
	Advance   func()
	Tick      func()                  // nil for unwindowed topologies
	Query     func(item uint64) int64 // normalized point estimate
	Stats     func() salsa.EpochStats
	Pending   func() uint64
}

// Wrap adapts a built epoch sketch (any EpochShardedBy product) into a
// Target.
func Wrap(s salsa.Sketch) (*Target, error) {
	t := &Target{Sketch: s}
	switch x := s.(type) {
	case *salsa.EpochCountMin:
		t.NewWriter = func() Writer { return x.NewWriter(0) }
		t.Advance = x.Advance
		t.Query = func(item uint64) int64 { return int64(x.Query(item)) }
		t.Stats, t.Pending = x.Stats, x.Pending
	case *salsa.EpochCountSketch:
		t.NewWriter = func() Writer { return x.NewWriter(0) }
		t.Advance = x.Advance
		t.Query = x.Query
		t.Stats, t.Pending = x.Stats, x.Pending
	case *salsa.EpochMonitor:
		t.NewWriter = func() Writer { return x.NewWriter(0) }
		t.Advance = x.Advance
		t.Query = func(item uint64) int64 { return int64(x.Query(item)) }
		t.Stats, t.Pending = x.Stats, x.Pending
	case *salsa.EpochDistinct:
		t.NewWriter = func() Writer { return x.NewWriter(0) }
		t.Advance = x.Advance
		t.Query = func(item uint64) int64 { return int64(x.Query(item)) }
		t.Stats, t.Pending = x.Stats, x.Pending
	case *salsa.EpochWindowedCountMin:
		t.NewWriter = func() Writer { return x.NewWriter(0) }
		t.Advance = x.Advance
		t.Tick = x.Tick
		t.Query = func(item uint64) int64 { return int64(x.Query(item)) }
		t.Stats, t.Pending = x.Stats, x.Pending
	case *salsa.EpochWindowedCountSketch:
		t.NewWriter = func() Writer { return x.NewWriter(0) }
		t.Advance = x.Advance
		t.Tick = x.Tick
		t.Query = x.Query
		t.Stats, t.Pending = x.Stats, x.Pending
	case *salsa.EpochWindowedDistinct:
		t.NewWriter = func() Writer { return x.NewWriter(0) }
		t.Advance = x.Advance
		t.Tick = x.Tick
		t.Query = func(item uint64) int64 { return int64(x.Query(item)) }
		t.Stats, t.Pending = x.Stats, x.Pending
	default:
		return nil, fmt.Errorf("epochtest: %T is not an epoch topology", s)
	}
	return t, nil
}

// MustWrap is Wrap for sketches known to be epoch topologies.
func MustWrap(s salsa.Sketch) *Target {
	t, err := Wrap(s)
	if err != nil {
		panic(err.Error())
	}
	return t
}

// StepKind enumerates schedule operations.
type StepKind int

const (
	// StepIngest applies one writer's batch to its private sketch.
	StepIngest StepKind = iota
	// StepAdvance cuts an epoch (merger drain).
	StepAdvance
	// StepTick cuts an epoch and rotates the window (Advance on
	// unwindowed targets).
	StepTick
)

// Step is one schedule operation.
type Step struct {
	Kind   StepKind
	Writer int      // StepIngest: which writer performs it
	Items  []uint64 // StepIngest: the batch
}

// Schedule is a deterministic interleaving of writer and merger
// operations, fully determined by the ScheduleConfig that generated it.
type Schedule struct {
	Writers int
	Steps   []Step
}

// Ingested returns the schedule's full item multiset in schedule order —
// what a sequential reference ingests.
func (s Schedule) Ingested() []uint64 {
	var out []uint64
	for _, st := range s.Steps {
		out = append(out, st.Items...)
	}
	return out
}

// ScheduleConfig seeds a schedule. All fields are required except Ticks.
type ScheduleConfig struct {
	Seed     uint64
	Writers  int
	Steps    int     // total schedule steps
	ChunkMax int     // max items per ingest step
	Universe int     // distinct-item bound of the Zipf trace
	Alpha    float64 // Zipf skew (0.99 ≈ the paper's workloads)
	Ticks    bool    // interleave window rotations
}

// splitmix64 is the harness PRNG: tiny, seedable, reproducible.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewSchedule derives a deterministic schedule: a Zipf item trace carved
// into per-writer chunks, with epoch advances (~1/12 of steps) and —
// when cfg.Ticks — window rotations (~1/24) interleaved at seeded
// positions.
func NewSchedule(cfg ScheduleConfig) Schedule {
	rng := cfg.Seed
	trace := stream.Zipf(cfg.Steps*max(cfg.ChunkMax, 1), max(cfg.Universe, 1), cfg.Alpha, cfg.Seed^0xa5a5)
	sched := Schedule{Writers: cfg.Writers}
	pos := 0
	for i := 0; i < cfg.Steps; i++ {
		r := splitmix64(&rng)
		switch {
		case r%24 == 0 && cfg.Ticks:
			sched.Steps = append(sched.Steps, Step{Kind: StepTick})
		case r%12 == 1:
			sched.Steps = append(sched.Steps, Step{Kind: StepAdvance})
		default:
			n := 1 + int(r>>32)%max(cfg.ChunkMax, 1)
			if pos+n > len(trace) {
				n = len(trace) - pos
			}
			if n <= 0 {
				continue
			}
			sched.Steps = append(sched.Steps, Step{
				Kind:   StepIngest,
				Writer: int(r>>16) % cfg.Writers,
				Items:  trace[pos : pos+n],
			})
			pos += n
		}
	}
	return sched
}

// Replay executes a schedule single-threaded on target: each ingest step
// runs on its writer's handle, advances and ticks run in place. It then
// quiesces — every writer flushed and closed, one final advance — so the
// view holds the schedule's entire multiset (drain-barrier semantics).
func Replay(target *Target, sched Schedule) {
	writers := make([]Writer, sched.Writers)
	for i := range writers {
		writers[i] = target.NewWriter()
	}
	for _, st := range sched.Steps {
		switch st.Kind {
		case StepIngest:
			writers[st.Writer].UpdateBatch(st.Items, 1)
		case StepAdvance:
			target.Advance()
		case StepTick:
			if target.Tick != nil {
				target.Tick()
			} else {
				target.Advance()
			}
		}
	}
	for _, w := range writers {
		w.Close()
	}
	target.Advance()
}

// ReplaySequential executes the schedule's operations through a single
// writer in schedule order — the sequential reference: same multiset,
// same tick positions, no interleaving and no mid-stream advances.
func ReplaySequential(target *Target, sched Schedule) {
	w := target.NewWriter()
	for _, st := range sched.Steps {
		switch st.Kind {
		case StepIngest:
			w.UpdateBatch(st.Items, 1)
		case StepTick:
			if target.Tick != nil {
				w.Flush()
				target.Tick()
			}
		}
	}
	w.Close()
	target.Advance()
}

// CheckDeterminism replays sched on two instances from build and asserts
// their envelopes are byte-identical: a schedule pins the topology's
// final state exactly, for every backend including the history-dependent
// conservative-update ones.
func CheckDeterminism(t *testing.T, build func() *Target, sched Schedule) {
	t.Helper()
	a, b := build(), build()
	Replay(a, sched)
	Replay(b, sched)
	pa, err := salsa.Marshal(a.Sketch)
	if err != nil {
		t.Fatalf("marshal replay a: %v", err)
	}
	pb, err := salsa.Marshal(b.Sketch)
	if err != nil {
		t.Fatalf("marshal replay b: %v", err)
	}
	if !bytes.Equal(pa, pb) {
		t.Fatalf("same-seed replays diverge: %d vs %d bytes", len(pa), len(pb))
	}
}

// CheckSequentialEquivalence replays sched on one instance and its
// sequential reference on another, then asserts every scheduled item's
// estimate matches after the drain barrier. With exactBytes it also
// asserts the marshaled envelopes are byte-identical — the full
// merge-scheduling-leaves-no-trace guarantee, valid for backends whose
// drain is a pure counter sum (CMS sum-modes, Count Sketch, Distinct;
// not conservative update, whose counters are history-dependent).
func CheckSequentialEquivalence(t *testing.T, build func() *Target, sched Schedule, exactBytes bool) {
	t.Helper()
	concurrent, sequential := build(), build()
	Replay(concurrent, sched)
	ReplaySequential(sequential, sched)
	for _, item := range distinctSorted(sched.Ingested()) {
		got, want := concurrent.Query(item), sequential.Query(item)
		if got != want {
			t.Fatalf("drain-barrier equivalence: item %d estimates %d (interleaved) vs %d (sequential)", item, got, want)
		}
	}
	if !exactBytes {
		return
	}
	pc, err := salsa.Marshal(concurrent.Sketch)
	if err != nil {
		t.Fatalf("marshal interleaved: %v", err)
	}
	ps, err := salsa.Marshal(sequential.Sketch)
	if err != nil {
		t.Fatalf("marshal sequential: %v", err)
	}
	if !bytes.Equal(pc, ps) {
		t.Fatalf("merge scheduling left a byte-level trace: %d vs %d bytes", len(pc), len(ps))
	}
}

// CheckOverestimate asserts the target's post-replay estimates dominate
// the exact multiset counts — the guarantee conservative-update backends
// keep even where exact equivalence does not apply.
func CheckOverestimate(t *testing.T, target *Target, sched Schedule) {
	t.Helper()
	exact := make(map[uint64]int64)
	for _, item := range sched.Ingested() {
		exact[item]++
	}
	for _, item := range distinctSorted(sched.Ingested()) {
		if got, truth := target.Query(item), exact[item]; got < truth {
			t.Fatalf("undercount after drains: item %d estimate %d < exact %d", item, got, truth)
		}
	}
}

// distinctSorted returns the distinct items of a replay in ascending
// order, so harness assertions always visit (and report) items in the
// same order regardless of map iteration.
func distinctSorted(items []uint64) []uint64 {
	uniq := make(map[uint64]struct{}, len(items))
	for _, item := range items {
		uniq[item] = struct{}{}
	}
	out := make([]uint64, 0, len(uniq))
	for item := range uniq {
		out = append(out, item)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HammerConfig shapes a truly concurrent run. The zero value is not
// usable; fill Writers/Batches/Batch/Universe.
type HammerConfig struct {
	Writers  int           // concurrent writer goroutines
	Batches  int           // batches per writer
	Batch    int           // items per batch
	Universe int           // distinct-item bound
	Seed     uint64        // trace seed
	Interval time.Duration // AutoAdvance-style merger cadence (via Advance loop)
	// Monotonic spawns readers asserting per-item estimates never
	// decrease. Leave false for windowed targets (ticks retire data) and
	// Count Sketch (signed noise is not monotone).
	Monotonic bool
	// Tick spawns a rotation goroutine (windowed targets).
	Tick bool
	// Churn makes each writer close and reopen its handle mid-run,
	// exercising slot reuse and adaptive grow/shrink.
	Churn bool
}

// Hammer runs cfg.Writers real goroutines against target with a
// background merger (and optional ticker/readers), then quiesces and
// verifies conservation: Stats().Drained equals the items ingested, and
// Pending returns to zero. Designed to run under -race.
func Hammer(t *testing.T, target *Target, cfg HammerConfig) {
	t.Helper()
	stopMerge := make(chan struct{})
	var bg sync.WaitGroup
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stopMerge:
				return
			default:
				target.Advance()
				time.Sleep(cfg.Interval)
			}
		}
	}()
	if cfg.Tick && target.Tick != nil {
		bg.Add(1)
		go func() {
			defer bg.Done()
			for {
				select {
				case <-stopMerge:
					return
				default:
					target.Tick()
					time.Sleep(cfg.Interval * 3)
				}
			}
		}()
	}

	var stopReaders atomic.Bool
	var readers sync.WaitGroup
	if cfg.Monotonic {
		probes := stream.Zipf(64, cfg.Universe, 1.1, cfg.Seed^0x517)
		for r := 0; r < 2; r++ {
			readers.Add(1)
			go func() {
				defer readers.Done()
				last := make(map[uint64]int64, len(probes))
				for !stopReaders.Load() {
					for _, p := range probes {
						got := target.Query(p)
						if prev, ok := last[p]; ok && got < prev {
							t.Errorf("monotonicity violated: item %d estimate fell %d -> %d", p, prev, got)
							stopReaders.Store(true)
							return
						}
						last[p] = got
					}
				}
			}()
		}
	}

	var ingested atomic.Uint64
	var writers sync.WaitGroup
	for wi := 0; wi < cfg.Writers; wi++ {
		writers.Add(1)
		go func(wi int) {
			defer writers.Done()
			trace := stream.Zipf(cfg.Batches*cfg.Batch, cfg.Universe, 0.99, cfg.Seed+uint64(wi))
			w := target.NewWriter()
			for b := 0; b < cfg.Batches; b++ {
				if cfg.Churn && b == cfg.Batches/2 {
					w.Close()
					w = target.NewWriter()
				}
				w.UpdateBatch(trace[b*cfg.Batch:(b+1)*cfg.Batch], 1)
			}
			w.Close()
			ingested.Add(uint64(cfg.Batches * cfg.Batch))
		}(wi)
	}
	writers.Wait()
	close(stopMerge)
	bg.Wait()
	stopReaders.Store(true)
	readers.Wait()

	target.Advance()
	if pending := target.Pending(); pending != 0 {
		t.Fatalf("conservation: %d items still pending after quiesce + advance", pending)
	}
	st := target.Stats()
	want := ingested.Load()
	// Direct drains plus whatever the writers pushed: every ingested item
	// must be accounted for exactly once in the drain odometer.
	if st.Drained != want {
		t.Fatalf("conservation: drained %d items, ingested %d", st.Drained, want)
	}
	if st.Writers != 0 {
		t.Fatalf("slot leak: %d slots still claimed after all writers closed", st.Writers)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
