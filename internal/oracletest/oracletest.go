// Package oracletest is a reusable statistical accuracy harness: it pins
// sketch estimates against an exact-counting oracle under deterministic
// workloads, asserting the papers' error envelopes at a fixed confidence
// instead of hand-tuned magic thresholds.
//
// Every workload is deterministic given its seed, so the assertions are
// reproducible bit for bit; the statistical slack in each bound accounts
// for the sampling noise of checking a per-query probabilistic guarantee
// over finitely many queries (a three-sigma binomial allowance), not for
// run-to-run variation.
//
//salsa:deterministic
package oracletest

import (
	"fmt"
	"math"
	"testing"

	"salsa/internal/stream"
)

// Workload is a deterministic stream with its exact frequency oracle.
type Workload struct {
	// Name labels subtests and failure messages.
	Name string
	// Items is the stream in arrival order.
	Items []uint64
	// Exact is the ground-truth counter over Items.
	Exact *stream.Exact
}

func makeWorkload(name string, items []uint64) Workload {
	exact := stream.NewExact()
	for _, x := range items {
		exact.Observe(x)
	}
	return Workload{Name: name, Items: items, Exact: exact}
}

// Zipf is a skewed workload: n samples from a Zipf(alpha) law over a
// universe of u items, the regime the paper's traces live in.
func Zipf(n, u int, alpha float64, seed uint64) Workload {
	return makeWorkload(fmt.Sprintf("zipf-%.1f", alpha), stream.Zipf(n, u, alpha, seed))
}

// Uniform is the skewless workload: n samples spread evenly over u items,
// the worst case for heavy-hitter machinery and the best case for
// per-item collision analysis.
func Uniform(n, u int, seed uint64) Workload {
	items := make([]uint64, n)
	x := seed*0x9e3779b97f4a7c15 + 1
	for i := range items {
		// splitmix64: deterministic, seed-disjoint from the sketches' hashes.
		x += 0x9e3779b97f4a7c15
		z := x
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		items[i] = z % uint64(u)
	}
	return makeWorkload("uniform", items)
}

// Adversarial interleaves the two extremes a self-adjusting sketch hates
// most: a single flooded item driving counters through every overflow and
// merge level, against a churn tail of n/2 never-repeating items keeping
// collision pressure and the distinct count maximal.
func Adversarial(n int, seed uint64) Workload {
	items := make([]uint64, n)
	hot := seed | 1
	fresh := uint64(1 << 32)
	for i := range items {
		if i%2 == 0 {
			items[i] = hot
		} else {
			fresh++
			items[i] = fresh
		}
	}
	return makeWorkload("adversarial", items)
}

// Workloads is the harness's standard trio at n items each.
func Workloads(n int, seed uint64) []Workload {
	return []Workload{
		Zipf(n, n/15, 1.0, seed),
		Uniform(n, n/15, seed),
		Adversarial(n, seed),
	}
}

// binomialSlack is the three-sigma allowance on an empirical violation
// fraction when each of q queries independently violates with probability
// at most p: the assertions run the per-query guarantee over the whole
// oracle and must not flag the expected statistical tail.
func binomialSlack(p float64, q int) float64 {
	return 3*math.Sqrt(p*(1-p)/float64(q)) + 2.0/float64(q)
}

// CheckOverestimate asserts the Cash Register contract of CountMin-family
// sketches: no estimate below the true count, for any item.
func CheckOverestimate(t *testing.T, name string, wl Workload, query func(uint64) uint64) {
	t.Helper()
	for _, x := range wl.Exact.SortedItems() {
		if est, f := query(x), wl.Exact.Count(x); est < f {
			t.Fatalf("%s/%s: item %d underestimated: %d < %d", name, wl.Name, x, est, f)
		}
	}
}

// CheckCountMinEnvelope asserts the Count-Min error theorem (Cormode &
// Muthukrishnan): each query overestimates by at least e·N/w with
// probability at most e^−d. The empirical violation fraction over the
// oracle must stay within the theorem's rate plus binomial slack; extra
// is an additive per-query error allowance (0 for plain CMS; positive for
// layered variants whose carries add bounded noise on top of the bound).
func CheckCountMinEnvelope(t *testing.T, name string, wl Workload, width, depth int, extra float64, query func(uint64) uint64) {
	t.Helper()
	budget := math.E * float64(wl.Exact.Volume()) / float64(width)
	pBound := math.Exp(-float64(depth))
	violations, queries := 0, 0
	for _, x := range wl.Exact.SortedItems() {
		f := wl.Exact.Count(x)
		queries++
		if float64(query(x))-float64(f) >= budget+extra {
			violations++
		}
	}
	frac := float64(violations) / float64(queries)
	if limit := pBound + binomialSlack(pBound, queries); frac > limit {
		t.Fatalf("%s/%s: %.4f of %d queries exceed the e·N/w=%.1f budget (theorem rate %.4f, limit %.4f)",
			name, wl.Name, frac, queries, budget, pBound, limit)
	}
}

// CheckCountSketchEnvelope asserts the Count Sketch guarantees: the
// median-of-rows estimate errs beyond 3·sqrt(F2/w) with small probability
// (three row standard deviations; each row errs beyond 3σ with p ≤ 1/9 by
// Chebyshev, and the median of d rows beyond it exponentially rarely — the
// harness charges the generous per-row rate), and the signed errors are
// unbiased: their mean stays within three standard errors of zero.
func CheckCountSketchEnvelope(t *testing.T, name string, wl Workload, width int, query func(uint64) int64) {
	t.Helper()
	sigma := math.Sqrt(wl.Exact.Moment(2) / float64(width))
	pBound := 1.0 / 9
	violations, queries := 0, 0
	var sum float64
	for _, x := range wl.Exact.SortedItems() {
		f := wl.Exact.Count(x)
		queries++
		err := float64(query(x)) - float64(f)
		sum += err
		if math.Abs(err) > 3*sigma {
			violations++
		}
	}
	frac := float64(violations) / float64(queries)
	if limit := pBound + binomialSlack(pBound, queries); frac > limit {
		t.Fatalf("%s/%s: %.4f of %d estimates err beyond 3σ=%.1f (limit %.4f)",
			name, wl.Name, frac, queries, 3*sigma, limit)
	}
	mean := sum / float64(queries)
	if meanLimit := 3 * sigma / math.Sqrt(float64(queries)); math.Abs(mean) > meanLimit {
		t.Fatalf("%s/%s: mean signed error %.2f exceeds the unbiasedness limit %.2f",
			name, wl.Name, mean, meanLimit)
	}
}

// CheckAdditiveEnvelope asserts an AEE-style sampling guarantee: every
// estimate stays within an additive budget of sigmas·sqrt(f/p) sampling
// standard deviations (the Binomial(f, p) count scaled by 1/p) plus the
// collision allowance e·N/w of the underlying Count-Min layout, with the
// violation fraction bounded by rate plus binomial slack.
func CheckAdditiveEnvelope(t *testing.T, name string, wl Workload, width int, sampleProb, sigmas, rate float64, query func(uint64) float64) {
	t.Helper()
	collision := math.E * float64(wl.Exact.Volume()) / float64(width)
	violations, queries := 0, 0
	for _, x := range wl.Exact.SortedItems() {
		f := wl.Exact.Count(x)
		queries++
		budget := sigmas*math.Sqrt(float64(f)/sampleProb+1) + collision
		if err := query(x) - float64(f); err < -budget || err > budget {
			violations++
		}
	}
	frac := float64(violations) / float64(queries)
	if limit := rate + binomialSlack(rate, queries); frac > limit {
		t.Fatalf("%s/%s: %.4f of %d estimates leave the ±%.0fσ sampling envelope at p=%.3g (limit %.4f)",
			name, wl.Name, frac, queries, sigmas, sampleProb, limit)
	}
}

// CheckScalarEnvelope asserts a scalar estimate (cardinality, entropy, a
// frequency moment) lands within an absolute tolerance of the truth. The
// caller states the tolerance in units with a derivation — a multiple of
// the estimator's published standard error, or a documented empirical
// slack — rather than a bare relative threshold.
func CheckScalarEnvelope(t *testing.T, name string, wl Workload, est, truth, tolerance float64) {
	t.Helper()
	if math.IsNaN(est) || math.Abs(est-truth) > tolerance {
		t.Fatalf("%s/%s: estimate %.2f vs truth %.2f exceeds tolerance %.2f",
			name, wl.Name, est, truth, tolerance)
	}
}
