package oracletest

import (
	"testing"
)

// TestWorkloadsDeterministic: the harness is only a fixed point for the
// repo's accuracy tests if identical seeds replay identical streams.
func TestWorkloadsDeterministic(t *testing.T) {
	a := Workloads(5000, 42)
	b := Workloads(5000, 42)
	if len(a) != len(b) || len(a) != 3 {
		t.Fatalf("expected 3 workloads, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("workload %d name mismatch: %q vs %q", i, a[i].Name, b[i].Name)
		}
		if len(a[i].Items) != 5000 {
			t.Fatalf("%s: expected 5000 items, got %d", a[i].Name, len(a[i].Items))
		}
		for j := range a[i].Items {
			if a[i].Items[j] != b[i].Items[j] {
				t.Fatalf("%s: item %d differs across identical seeds", a[i].Name, j)
			}
		}
	}
	c := Uniform(5000, 300, 43)
	same := true
	for j, x := range a[1].Items {
		if c.Items[j] != x {
			same = false
			break
		}
	}
	if same {
		t.Fatal("uniform workloads with different seeds produced identical streams")
	}
}

// TestExactReferenceAgrees: the oracle attached to a workload must match a
// naive recount of the stream.
func TestExactReferenceAgrees(t *testing.T) {
	wl := Zipf(3000, 200, 1.0, 7)
	counts := make(map[uint64]uint64)
	for _, x := range wl.Items {
		counts[x]++
	}
	if got := wl.Exact.Volume(); got != 3000 {
		t.Fatalf("volume %d, want 3000", got)
	}
	if got, want := wl.Exact.Distinct(), len(counts); got != want {
		t.Fatalf("distinct %d, want %d", got, want)
	}
	for _, x := range wl.Exact.SortedItems() {
		if got, f := wl.Exact.Count(x), counts[x]; got != f {
			t.Fatalf("count(%d) = %d, want %d", x, got, f)
		}
	}
}

// TestAdversarialShape: the adversarial stream must deliver both extremes
// it promises — one item holding half the volume, and maximal churn.
func TestAdversarialShape(t *testing.T) {
	wl := Adversarial(4000, 9)
	hot := wl.Items[0]
	if got := wl.Exact.Count(hot); got != 2000 {
		t.Fatalf("hot item count %d, want 2000", got)
	}
	if got := wl.Exact.Distinct(); got != 2001 {
		t.Fatalf("distinct %d, want 2001 (hot item + 2000 fresh)", got)
	}
}

// TestEnvelopesAcceptExactEstimator: a zero-error estimator must pass every
// envelope — the assertions may only fire on genuine violations.
func TestEnvelopesAcceptExactEstimator(t *testing.T) {
	for _, wl := range Workloads(4000, 11) {
		CheckOverestimate(t, "exact", wl, wl.Exact.Count)
		CheckCountMinEnvelope(t, "exact", wl, 64, 4, 0, wl.Exact.Count)
		CheckCountSketchEnvelope(t, "exact", wl, 64, func(x uint64) int64 {
			return int64(wl.Exact.Count(x))
		})
		CheckAdditiveEnvelope(t, "exact", wl, 64, 1.0, 3, 0.01, func(x uint64) float64 {
			return float64(wl.Exact.Count(x))
		})
		CheckScalarEnvelope(t, "exact", wl, float64(wl.Exact.Distinct()), float64(wl.Exact.Distinct()), 0)
	}
}

// TestBinomialSlackShrinks: more queries must tighten, never loosen, the
// statistical allowance.
func TestBinomialSlackShrinks(t *testing.T) {
	if s1, s2 := binomialSlack(0.1, 100), binomialSlack(0.1, 10000); s2 >= s1 {
		t.Fatalf("slack did not shrink with query count: %f -> %f", s1, s2)
	}
	if s := binomialSlack(0, 100); s <= 0 {
		t.Fatalf("slack must stay positive at p=0, got %f", s)
	}
}
