package lpsampler

import (
	"testing"

	"salsa/internal/sketch"
	"salsa/internal/stream"
)

func TestSamplerEmpty(t *testing.T) {
	s := New(Config{Depth: 5, Width: 256, Rows: sketch.SalsaSignRow(8, false), Seed: 1})
	if _, _, ok := s.Sample(); ok {
		t.Fatal("empty sampler produced a sample")
	}
}

func TestSamplerReturnsRealItem(t *testing.T) {
	s := New(Config{Depth: 5, Width: 1024, Rows: sketch.SalsaSignRow(8, false), Seed: 2})
	data := stream.Zipf(30000, 500, 1.1, 3)
	present := map[uint64]bool{}
	exact := stream.NewExact()
	for _, x := range data {
		s.Process(x)
		present[x] = true
		exact.Observe(x)
	}
	item, freq, ok := s.Sample()
	if !ok {
		t.Fatal("no sample")
	}
	if !present[item] {
		t.Fatalf("sampled item %d never appeared", item)
	}
	// The frequency estimate should be within a small factor of the truth.
	truth := float64(exact.Count(item))
	if freq < truth/4 || freq > truth*4 {
		t.Fatalf("sample frequency %f vs truth %f", freq, truth)
	}
}

func TestSamplerBiasTowardHeavy(t *testing.T) {
	// L2 sampling: Pr[x] ∝ f(x)². With one item at frequency 50 and many at
	// 1, the heavy item (f² share ≈ 2500/(2500+n)) must dominate samples
	// across independent sampler seeds.
	const heavy = uint64(7777)
	hits := 0
	const trials = 40
	for seed := uint64(0); seed < trials; seed++ {
		s := New(Config{Depth: 5, Width: 2048, Rows: sketch.SalsaSignRow(8, false), Seed: seed*31 + 1})
		for i := 0; i < 50; i++ {
			s.Process(heavy)
		}
		for i := uint64(0); i < 500; i++ {
			s.Process(1000 + i)
		}
		if item, _, ok := s.Sample(); ok && item == heavy {
			hits++
		}
	}
	// f² share is 2500/3000 ≈ 83%; allow wide slack for scaling noise.
	if hits < trials/2 {
		t.Fatalf("heavy item sampled only %d/%d times", hits, trials)
	}
}

func TestCandidatesOrdered(t *testing.T) {
	s := New(Config{Depth: 5, Width: 1024, Rows: sketch.FixedSignRow(32), Candidates: 8, Seed: 5})
	for i := 0; i < 1000; i++ {
		s.Process(uint64(i % 20))
	}
	cands := s.Candidates()
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for i := 1; i < len(cands); i++ {
		if cands[i-1].Count < cands[i].Count {
			t.Fatal("candidates not sorted")
		}
	}
	if s.SizeBits() == 0 {
		t.Fatal("no memory accounted")
	}
}
