// Package lpsampler implements an L2 sampler on top of the (SALSA) Count
// Sketch, the extension direction the paper's conclusion points at ("we
// believe that SALSA can replace and enhance existing sketches in more
// complex algorithms, such as Lp-samplers").
//
// The construction follows the classic scaling recipe (Jowhari, Sağlam &
// Tardos): each item x is assigned a uniform t(x) ∈ (0,1] and its updates
// are scaled by 1/√t(x); items then exceed a fixed threshold of the scaled
// sketch with probability proportional to f(x)², so the arg-max of the
// scaled estimates is (approximately) an L2 sample. Scaled updates are
// kept in fixed-point so they remain integral for the sketch.
package lpsampler

import (
	"math"

	"salsa/internal/hashing"
	"salsa/internal/sketch"
	"salsa/internal/topk"
)

// fixedPointScale keeps 1/√t in integer update space.
const fixedPointScale = 256

// Sampler draws items with probability (approximately) proportional to
// the square of their frequency.
type Sampler struct {
	cs       *sketch.CountSketch
	heap     *topk.Heap
	scaleSed uint64
}

// Config shapes a sampler.
type Config struct {
	// Depth and Width shape the underlying Count Sketch.
	Depth, Width int
	// Rows picks the row backend (baseline or SALSA sign rows).
	Rows sketch.SignedRowSpec
	// Candidates is how many top scaled items to track (the sample is
	// drawn from these; 32 is plenty for one sample).
	Candidates int
	// Seed derives all hashes.
	Seed uint64
}

// New returns an empty sampler.
func New(cfg Config) *Sampler {
	if cfg.Candidates == 0 {
		cfg.Candidates = 32
	}
	seeds := hashing.Seeds(cfg.Seed, 2)
	return &Sampler{
		cs:       sketch.NewCountSketch(cfg.Depth, cfg.Width, cfg.Rows, seeds[0]),
		heap:     topk.New(cfg.Candidates),
		scaleSed: seeds[1],
	}
}

// scale returns ⌊fixedPointScale/√t(x)⌋ ≥ fixedPointScale, with t(x)
// uniform in (0,1] derived deterministically from x.
func (s *Sampler) scale(x uint64) int64 {
	u := hashing.Mix64(x, s.scaleSed)
	t := (float64(u>>11) + 1) / (1 << 53) // uniform in (0, 1]
	return int64(fixedPointScale / math.Sqrt(t))
}

// Process records one unit-weight arrival.
func (s *Sampler) Process(x uint64) {
	s.cs.Update(x, s.scale(x))
	s.heap.Offer(x, abs64(s.cs.Query(x)))
}

// Sample returns the current L2 sample: the item with the largest scaled
// estimate, together with its unscaled frequency estimate. ok is false
// when nothing was processed.
func (s *Sampler) Sample() (item uint64, freq float64, ok bool) {
	items := s.heap.Items()
	if len(items) == 0 {
		return 0, 0, false
	}
	best := items[0]
	return best.Item, float64(s.cs.Query(best.Item)) / float64(s.scale(best.Item)), true
}

// Candidates returns the tracked candidate items in descending scaled-
// estimate order, for callers that want several samples.
func (s *Sampler) Candidates() []topk.Entry { return s.heap.Items() }

// SizeBits returns the sketch footprint in bits.
func (s *Sampler) SizeBits() int { return s.cs.SizeBits() }

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
