package metrics

import (
	"math"
	"testing"
)

func TestOnArrival(t *testing.T) {
	var o OnArrival
	o.Observe(3, 1) // e=2
	o.Observe(1, 2) // e=-1
	o.Observe(5, 5) // e=0
	if o.N() != 3 {
		t.Fatalf("N = %d", o.N())
	}
	wantMSE := (4.0 + 1.0 + 0.0) / 3
	if math.Abs(o.MSE()-wantMSE) > 1e-12 {
		t.Fatalf("MSE = %f, want %f", o.MSE(), wantMSE)
	}
	if math.Abs(o.RMSE()-math.Sqrt(wantMSE)) > 1e-12 {
		t.Fatal("RMSE wrong")
	}
	if math.Abs(o.NRMSE()-math.Sqrt(wantMSE)/3) > 1e-12 {
		t.Fatal("NRMSE wrong")
	}
}

func TestOnArrivalEmpty(t *testing.T) {
	var o OnArrival
	if o.MSE() != 0 || o.NRMSE() != 0 {
		t.Fatal("empty accumulator should report zero")
	}
}

func TestAAEARE(t *testing.T) {
	truth := map[uint64]uint64{1: 10, 2: 5}
	query := func(x uint64) float64 {
		if x == 1 {
			return 12 // abs err 2, rel 0.2
		}
		return 4 // abs err 1, rel 0.2
	}
	aae, are := AAEARE(truth, query)
	if math.Abs(aae-1.5) > 1e-12 {
		t.Fatalf("AAE = %f", aae)
	}
	if math.Abs(are-0.2) > 1e-12 {
		t.Fatalf("ARE = %f", are)
	}
}

func TestAAEAREEmpty(t *testing.T) {
	aae, are := AAEARE(nil, func(uint64) float64 { return 0 })
	if aae != 0 || are != 0 {
		t.Fatal("empty truth should yield zeros")
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(11, 10) != 0.1 {
		t.Fatal("RelErr wrong")
	}
	if RelErr(9, 10) != 0.1 {
		t.Fatal("RelErr should be absolute")
	}
}

func TestTCritical95(t *testing.T) {
	// The paper's ten-trial experiments use df = 9.
	if TCritical95(9) != 2.262 {
		t.Fatalf("t(9) = %f", TCritical95(9))
	}
	if TCritical95(1) != 12.706 {
		t.Fatal("t(1) wrong")
	}
	if TCritical95(100) != 1.96 {
		t.Fatal("large df should use the normal value")
	}
	if !math.IsInf(TCritical95(0), 1) {
		t.Fatal("t(0) should be infinite")
	}
}

func TestMeanCI95(t *testing.T) {
	mean, half := MeanCI95([]float64{2, 4, 6})
	if mean != 4 {
		t.Fatalf("mean = %f", mean)
	}
	// sd = 2, se = 2/sqrt(3), t(2) = 4.303.
	want := 4.303 * 2 / math.Sqrt(3)
	if math.Abs(half-want) > 1e-9 {
		t.Fatalf("half = %f, want %f", half, want)
	}
	if m, h := MeanCI95([]float64{5}); m != 5 || h != 0 {
		t.Fatal("single sample CI wrong")
	}
	if m, h := MeanCI95(nil); m != 0 || h != 0 {
		t.Fatal("empty CI wrong")
	}
}

func TestTopKAccuracy(t *testing.T) {
	if got := TopKAccuracy([]uint64{1, 2, 3}, []uint64{2, 3, 4}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("accuracy = %f", got)
	}
	if TopKAccuracy(nil, nil) != 1 {
		t.Fatal("empty truth should score 1")
	}
}
