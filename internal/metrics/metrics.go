// Package metrics implements the error metrics of the paper's evaluation
// (§VI): on-arrival MSE/RMSE/NRMSE, AAE and ARE over the distinct items,
// and Student-t 95% confidence intervals over repeated trials.
package metrics

import "math"

// OnArrival accumulates the on-arrival error stream: for each arriving
// element the sketch is queried and the error against the element's current
// true frequency is recorded.
type OnArrival struct {
	sumSq float64
	n     uint64
}

// Observe records one arrival's estimate and truth.
func (o *OnArrival) Observe(est, truth float64) {
	d := est - truth
	o.sumSq += d * d
	o.n++
}

// N returns the number of observations.
func (o *OnArrival) N() uint64 { return o.n }

// MSE returns n⁻¹·Σeᵢ².
func (o *OnArrival) MSE() float64 {
	if o.n == 0 {
		return 0
	}
	return o.sumSq / float64(o.n)
}

// RMSE returns √MSE.
func (o *OnArrival) RMSE() float64 { return math.Sqrt(o.MSE()) }

// NRMSE returns n⁻¹·RMSE, the paper's normalized error in [0, 1].
func (o *OnArrival) NRMSE() float64 {
	if o.n == 0 {
		return 0
	}
	return o.RMSE() / float64(o.n)
}

// AAEARE computes the Average Absolute Error and Average Relative Error
// over all items with non-zero frequency (§VI, "Metrics"): the averages of
// |f̂−f| and |f̂−f|/f over U>0.
func AAEARE(truth map[uint64]uint64, query func(uint64) float64) (aae, are float64) {
	if len(truth) == 0 {
		return 0, 0
	}
	for x, f := range truth {
		d := math.Abs(query(x) - float64(f))
		aae += d
		are += d / float64(f)
	}
	n := float64(len(truth))
	return aae / n, are / n
}

// RelErr returns |est−truth|/truth (truth must be non-zero).
func RelErr(est, truth float64) float64 {
	return math.Abs(est-truth) / math.Abs(truth)
}

// tCritical95 holds two-sided 95% Student-t critical values for 1..30
// degrees of freedom; beyond 30 the normal value 1.96 is used.
var tCritical95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom.
func TCritical95(df int) float64 {
	if df <= 0 {
		return math.Inf(1)
	}
	if df <= len(tCritical95) {
		return tCritical95[df-1]
	}
	return 1.96
}

// MeanCI95 returns the sample mean and the half-width of its 95% Student-t
// confidence interval, as the paper reports for its ten-trial data points.
func MeanCI95(samples []float64) (mean, half float64) {
	n := len(samples)
	if n == 0 {
		return 0, 0
	}
	for _, s := range samples {
		mean += s
	}
	mean /= float64(n)
	if n == 1 {
		return mean, 0
	}
	var ss float64
	for _, s := range samples {
		d := s - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	return mean, TCritical95(n-1) * sd / math.Sqrt(float64(n))
}

// TopKAccuracy returns |est ∩ true| / |true|, the paper's Top-k accuracy.
func TopKAccuracy(estimated, truth []uint64) float64 {
	if len(truth) == 0 {
		return 1
	}
	set := make(map[uint64]struct{}, len(estimated))
	for _, x := range estimated {
		set[x] = struct{}{}
	}
	hits := 0
	for _, x := range truth {
		if _, ok := set[x]; ok {
			hits++
		}
	}
	return float64(hits) / float64(len(truth))
}
