package topk

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHeapBasics(t *testing.T) {
	h := New(3)
	if h.Cap() != 3 || h.Len() != 0 || h.Min() != 0 {
		t.Fatal("fresh heap wrong")
	}
	h.Offer(1, 10)
	h.Offer(2, 5)
	h.Offer(3, 7)
	if h.Len() != 3 || h.Min() != 5 {
		t.Fatalf("Len %d Min %d", h.Len(), h.Min())
	}
	// 4 displaces the minimum (2).
	h.Offer(4, 6)
	if h.Contains(2) || !h.Contains(4) {
		t.Fatal("displacement wrong")
	}
	// Too-small estimates are ignored.
	h.Offer(5, 1)
	if h.Contains(5) {
		t.Fatal("small item admitted")
	}
	items := h.Items()
	if items[0].Item != 1 || items[1].Item != 3 || items[2].Item != 4 {
		t.Fatalf("Items order wrong: %v", items)
	}
}

func TestHeapRekey(t *testing.T) {
	h := New(2)
	h.Offer(1, 10)
	h.Offer(2, 20)
	h.Offer(1, 30) // re-key upward
	if c, _ := h.Count(1); c != 30 {
		t.Fatalf("Count(1) = %d", c)
	}
	if h.Min() != 20 {
		t.Fatalf("Min = %d", h.Min())
	}
	h.Offer(3, 25) // displaces 2
	if h.Contains(2) || !h.Contains(3) {
		t.Fatal("displacement after rekey wrong")
	}
}

func TestHeapAgainstSortOracle(t *testing.T) {
	// Feeding monotone non-decreasing estimates per item (the CMS/CUS heavy
	// hitter pattern), the heap must end up with the k items of largest
	// final estimate.
	const k = 16
	const universe = 400
	rng := rand.New(rand.NewSource(77))
	h := New(k)
	final := make([]int64, universe)
	for op := 0; op < 50000; op++ {
		item := uint64(rng.Intn(universe))
		final[item] += int64(rng.Intn(5)) + 1
		h.Offer(item, final[item])
	}
	type pair struct {
		item uint64
		f    int64
	}
	all := make([]pair, universe)
	for i := range all {
		all[i] = pair{uint64(i), final[i]}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].f > all[j].f })
	// Every item strictly above the k-th largest estimate must be present.
	kth := all[k-1].f
	for _, p := range all[:k] {
		if p.f > kth && !h.Contains(p.item) {
			t.Fatalf("item %d with final %d missing from heap", p.item, p.f)
		}
	}
	items := h.Items()
	if len(items) != k {
		t.Fatalf("heap has %d items", len(items))
	}
	for i := 1; i < len(items); i++ {
		if items[i-1].Count < items[i].Count {
			t.Fatal("Items not sorted descending")
		}
	}
}

func TestHeapZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(0)
}

// TestHeapDeterministicTieBreak pins the (Count, Item) total order: the
// tracked set after a sequence of offers is a pure function of the offered
// (item, estimate) pairs, independent of arrival order, and under count ties
// the smaller item ids win.
func TestHeapDeterministicTieBreak(t *testing.T) {
	const k = 4
	offers := []Entry{
		{Item: 10, Count: 5}, {Item: 11, Count: 5}, {Item: 12, Count: 5},
		{Item: 13, Count: 5}, {Item: 14, Count: 5}, {Item: 15, Count: 5},
		{Item: 16, Count: 9},
	}
	want := []Entry{{16, 9}, {10, 5}, {11, 5}, {12, 5}}
	rng := uint64(0x9e3779b97f4a7c15)
	perm := append([]Entry(nil), offers...)
	for trial := 0; trial < 50; trial++ {
		// Fisher-Yates with a splitmix64 step for reproducibility.
		for i := len(perm) - 1; i > 0; i-- {
			rng += 0x9e3779b97f4a7c15
			z := rng
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			z ^= z >> 31
			j := int(z % uint64(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		h := New(k)
		for _, e := range perm {
			h.Offer(e.Item, e.Count)
		}
		got := h.Items()
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d items, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: Items()[%d] = %+v, want %+v (order-dependent eviction)", trial, i, got[i], want[i])
			}
		}
	}
}
