// Package topk implements the min-heap of highest-estimate items used for
// heavy-hitter and top-k tracking alongside a sketch (§III, "Finding Heavy
// Hitters"): on each arrival the item is queried and the heap is updated if
// its estimate beats the current minimum.
package topk

import (
	"errors"
	"fmt"
	"sort"
)

// Entry is an item together with its tracked estimate.
type Entry struct {
	Item  uint64
	Count int64
}

// Heap is a capacity-bounded min-heap over estimates with O(1) membership
// lookup. The zero value is not usable; call New.
//
// Ordering is the total order on (Count, Item) that ranks higher counts
// first and, among equal counts, smaller item ids first — the same ranking
// Items returns. Eviction under count ties is therefore deterministic: the
// tracked set after any Offer sequence depends only on the multiset of
// (item, estimate) pairs offered, not on arrival order, so concurrent-ingest
// tests can assert exact heavy-hitter sets.
type Heap struct {
	k       int
	entries []Entry
	pos     map[uint64]int
}

// New returns a heap tracking the k items with the largest estimates.
func New(k int) *Heap {
	if k <= 0 {
		panic("topk: non-positive capacity")
	}
	return &Heap{k: k, pos: make(map[uint64]int, k)}
}

// Cap returns the heap capacity k.
func (h *Heap) Cap() int { return h.k }

// Reset drops every tracked item, reusing the backing storage (used when a
// sliding-window bucket rotates out).
func (h *Heap) Reset() {
	h.entries = h.entries[:0]
	clear(h.pos)
}

// Len returns the number of tracked items.
func (h *Heap) Len() int { return len(h.entries) }

// Min returns the smallest tracked estimate, or 0 when empty.
func (h *Heap) Min() int64 {
	if len(h.entries) == 0 {
		return 0
	}
	return h.entries[0].Count
}

// Contains reports whether item is currently tracked.
func (h *Heap) Contains(item uint64) bool {
	_, ok := h.pos[item]
	return ok
}

// Count returns the tracked estimate for item and whether it is tracked.
func (h *Heap) Count(item uint64) (int64, bool) {
	i, ok := h.pos[item]
	if !ok {
		return 0, false
	}
	return h.entries[i].Count, true
}

// Offer updates the heap with a fresh estimate for item: tracked items are
// re-keyed, new items displace the minimum once the estimate exceeds it.
func (h *Heap) Offer(item uint64, count int64) {
	if i, ok := h.pos[item]; ok {
		h.entries[i].Count = count
		h.fix(i)
		return
	}
	if len(h.entries) < h.k {
		h.entries = append(h.entries, Entry{item, count})
		h.pos[item] = len(h.entries) - 1
		h.up(len(h.entries) - 1)
		return
	}
	if !less(h.entries[0], Entry{item, count}) {
		return
	}
	delete(h.pos, h.entries[0].Item)
	h.entries[0] = Entry{item, count}
	h.pos[item] = 0
	h.down(0)
}

// Snapshot returns a copy of the tracked entries in internal heap-array
// order. Together with Restore it round-trips a heap bit-for-bit, which
// serialization relies on for byte-identical re-marshal.
func (h *Heap) Snapshot() []Entry {
	out := make([]Entry, len(h.entries))
	copy(out, h.entries)
	return out
}

// Restore returns a heap of capacity k holding entries verbatim in
// heap-array order (as produced by Snapshot). The membership index is
// rebuilt; duplicate items or k < len(entries) are rejected so hostile
// payloads cannot construct an inconsistent heap. Allocation is
// proportional to len(entries), not k.
func Restore(k int, entries []Entry) (*Heap, error) {
	if k <= 0 {
		return nil, errors.New("topk: non-positive capacity")
	}
	if len(entries) > k {
		return nil, fmt.Errorf("topk: %d entries exceed capacity %d", len(entries), k)
	}
	h := &Heap{
		k:       k,
		entries: append([]Entry(nil), entries...),
		pos:     make(map[uint64]int, len(entries)),
	}
	for i, e := range h.entries {
		if _, dup := h.pos[e.Item]; dup {
			return nil, fmt.Errorf("topk: duplicate item %d", e.Item)
		}
		h.pos[e.Item] = i
	}
	// Entries from Snapshot already satisfy the heap invariant; re-fix
	// anyway so a hand-built order still behaves as a min-heap.
	for i := len(h.entries)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
	return h, nil
}

// Items returns the tracked entries in descending estimate order.
func (h *Heap) Items() []Entry {
	out := make([]Entry, len(h.entries))
	copy(out, h.entries)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	return out
}

func (h *Heap) fix(i int) {
	h.down(i)
	h.up(i)
}

// less reports whether a ranks strictly below b: lower count, or — under a
// count tie — larger item id (Items ranks equal counts by ascending id, so
// the largest id is the weakest entry and the first evicted).
func less(a, b Entry) bool {
	if a.Count != b.Count {
		return a.Count < b.Count
	}
	return a.Item > b.Item
}

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(h.entries[i], h.entries[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap) down(i int) {
	n := len(h.entries)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && less(h.entries[l], h.entries[smallest]) {
			smallest = l
		}
		if r < n && less(h.entries[r], h.entries[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *Heap) swap(i, j int) {
	h.entries[i], h.entries[j] = h.entries[j], h.entries[i]
	h.pos[h.entries[i].Item] = i
	h.pos[h.entries[j].Item] = j
}
