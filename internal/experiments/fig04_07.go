package experiments

import (
	"salsa/internal/core"
	"salsa/internal/stream"
)

func init() {
	register("fig4a", "CMS NRMSE vs Zipf skew, Baseline vs SALSA s∈{1..16} (Fig. 4a)", fig4a)
	register("fig4b", "Count Sketch NRMSE vs Zipf skew, Baseline vs SALSA s∈{2..16} (Fig. 4b)", fig4b)
	register("fig5a", "SALSA CMS sum vs max merge, NRMSE vs memory, NY18-like (Fig. 5a)", fig5a)
	register("fig5b", "SALSA CMS sum vs max merge, NRMSE vs Zipf skew (Fig. 5b)", fig5b)
	register("fig6a", "Heavy-hitter ARE vs φ: SALSA vs fixed 8/16/32-bit CMS (Fig. 6a)", fig6a)
	register("fig6b", "Heavy-hitter ARE vs stream length at φ=1e-4 (Fig. 6b)", fig6b)
	register("fig7a", "Tango vs SALSA CMS, NRMSE vs memory, NY18-like (Fig. 7a)", fig7a)
	register("fig7b", "Tango vs SALSA CMS, NRMSE vs Zipf skew (Fig. 7b)", fig7b)
}

// scaledBaseWidth mirrors the paper's w = 2^17 rows for 98M updates: keep
// the per-counter load comparable at our stream size.
func scaledBaseWidth(n int) int {
	w := 256
	for w*1000 < n {
		w *= 2
	}
	return w
}

// fig4a compares CMS NRMSE across skews: the baseline with 32-bit counters
// against SALSA with s-bit counters and w·32/s slots (the paper's
// equal-counter-memory framing; encoding overhead deliberately excluded
// from the width choice, as in the paper).
func fig4a(cfg Config) Result {
	baseW := scaledBaseWidth(cfg.N)
	configs := []struct {
		name string
		wm   widthMaker
		w    int
	}{
		{"Baseline", baselineCMS(32), baseW},
		{"SALSA1", salsaCMS(1, core.MaxMerge), baseW * 32},
		{"SALSA2", salsaCMS(2, core.MaxMerge), baseW * 16},
		{"SALSA4", salsaCMS(4, core.MaxMerge), baseW * 8},
		{"SALSA8", salsaCMS(8, core.MaxMerge), baseW * 4},
		{"SALSA16", salsaCMS(16, core.MaxMerge), baseW * 2},
	}
	res := Result{XLabel: "zipf skew", YLabel: "NRMSE"}
	for _, skew := range skewSweep() {
		samples := make(map[string][]float64)
		for _, seed := range trialSeeds(cfg, 40) {
			data := cachedZipf(cfg.N, zipfUniverse(cfg.N), skew, seed)
			for _, c := range configs {
				samples[c.name] = append(samples[c.name], onArrivalNRMSE(c.wm(c.w, seed), data))
			}
		}
		for _, c := range configs {
			res.Points = append(res.Points, meanPoint(c.name, skew, samples[c.name]))
		}
	}
	return res
}

// fig4b is the Count Sketch version (d = 5; s = 1 is impossible for signed
// sign-magnitude counters and is omitted, as it is meaningless there).
func fig4b(cfg Config) Result {
	baseW := scaledBaseWidth(cfg.N)
	configs := []struct {
		name string
		wm   widthMaker
		w    int
	}{
		{"Baseline", baselineCS(32), baseW},
		{"SALSA2", salsaCS(2), baseW * 16},
		{"SALSA4", salsaCS(4), baseW * 8},
		{"SALSA8", salsaCS(8), baseW * 4},
		{"SALSA16", salsaCS(16), baseW * 2},
	}
	res := Result{XLabel: "zipf skew", YLabel: "NRMSE"}
	for _, skew := range skewSweep() {
		samples := make(map[string][]float64)
		for _, seed := range trialSeeds(cfg, 41) {
			data := cachedZipf(cfg.N, zipfUniverse(cfg.N), skew, seed)
			for _, c := range configs {
				samples[c.name] = append(samples[c.name], onArrivalNRMSE(c.wm(c.w, seed), data))
			}
		}
		for _, c := range configs {
			res.Points = append(res.Points, meanPoint(c.name, skew, samples[c.name]))
		}
	}
	return res
}

// memorySweepNRMSE runs an NRMSE-vs-memory sweep for a fixed set of
// budgeted algorithms on one dataset.
func memorySweepNRMSE(cfg Config, ds stream.Dataset, algos []maker, salt uint64) Result {
	res := Result{XLabel: "memory [KB]", YLabel: "NRMSE"}
	for _, kb := range memorySweepKB(cfg.N) {
		memBits := int(kb * bitsPerKB)
		samples := make(map[string][]float64)
		names := make([]string, len(algos))
		for _, seed := range trialSeeds(cfg, salt) {
			data := cachedStream(ds, cfg.N, seed)
			for i, mk := range algos {
				s := mk(memBits, seed)
				names[i] = s.name
				samples[s.name] = append(samples[s.name], onArrivalNRMSE(s, data))
			}
		}
		for _, name := range names {
			res.Points = append(res.Points, meanPoint(name, kb, samples[name]))
		}
	}
	return res
}

func named(name string, wm widthMaker) widthMaker {
	return func(w int, seed uint64) sketchUnderTest {
		s := wm(w, seed)
		s.name = name
		return s
	}
}

func fig5a(cfg Config) Result {
	algos := []maker{
		budgeted(named("SALSA Sum", salsaCMS(8, core.SumMerge)), cmsDepth, slotBitsSalsa8, salsaMinWidth),
		budgeted(named("SALSA Max", salsaCMS(8, core.MaxMerge)), cmsDepth, slotBitsSalsa8, salsaMinWidth),
	}
	return memorySweepNRMSE(cfg, stream.NY18, algos, 50)
}

func fig5b(cfg Config) Result {
	baseW := scaledBaseWidth(cfg.N) * 4 // SALSA8 at the 2MB-equivalent point
	res := Result{XLabel: "zipf skew", YLabel: "NRMSE"}
	for _, skew := range skewSweep() {
		sum := []float64{}
		max := []float64{}
		for _, seed := range trialSeeds(cfg, 51) {
			data := cachedZipf(cfg.N, zipfUniverse(cfg.N), skew, seed)
			sum = append(sum, onArrivalNRMSE(named("SALSA Sum", salsaCMS(8, core.SumMerge))(baseW, seed), data))
			max = append(max, onArrivalNRMSE(named("SALSA Max", salsaCMS(8, core.MaxMerge))(baseW, seed), data))
		}
		res.Points = append(res.Points, meanPoint("SALSA Sum", skew, sum))
		res.Points = append(res.Points, meanPoint("SALSA Max", skew, max))
	}
	return res
}

// phiSweep is the heavy-hitter threshold range of Fig. 6a/19/20.
func phiSweep() []float64 {
	return []float64{1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2}
}

// heavyHitterARE computes the ARE over all items with frequency ≥ φ·N
// after running the stream through the sketch. It returns NaN when no item
// qualifies (plotted as a gap, like the paper's truncated curves).
func heavyHitterARE(s sketchUnderTest, data []uint64, phi float64) float64 {
	exact := stream.NewExact()
	for _, x := range data {
		s.update(x)
		exact.Observe(x)
	}
	threshold := phi * float64(exact.Volume())
	var sum float64
	n := 0
	for x, f := range exact.Counts() {
		if float64(f) < threshold {
			continue
		}
		d := s.query(x) - float64(f)
		if d < 0 {
			d = -d
		}
		sum += d / float64(f)
		n++
	}
	if n == 0 {
		return nan()
	}
	return sum / float64(n)
}

func nan() float64 { var z float64; return 0 / z }

// fig6a: can one simply use small fixed counters? ARE over the φ-heavy
// hitters for fixed 8/16/32-bit CMS vs SALSA at equal counter memory.
func fig6a(cfg Config) Result {
	baseW := scaledBaseWidth(cfg.N)
	configs := []struct {
		name string
		wm   widthMaker
		w    int
	}{
		{"SALSA", salsaCMS(8, core.MaxMerge), baseW * 4},
		{"CMS (8-bits)", named("CMS (8-bits)", baselineCMS(8)), baseW * 4},
		{"CMS (16-bits)", named("CMS (16-bits)", baselineCMS(16)), baseW * 2},
		{"CMS (32-bits)", named("CMS (32-bits)", baselineCMS(32)), baseW},
	}
	res := Result{XLabel: "threshold phi", YLabel: "ARE"}
	for _, phi := range phiSweep() {
		samples := make(map[string][]float64)
		for _, seed := range trialSeeds(cfg, 60) {
			data := cachedZipf(cfg.N, zipfUniverse(cfg.N), 1.0, seed)
			for _, c := range configs {
				v := heavyHitterARE(c.wm(c.w, seed), data, phi)
				if v == v { // skip NaN gaps
					samples[c.name] = append(samples[c.name], v)
				}
			}
		}
		for _, c := range configs {
			if len(samples[c.name]) > 0 {
				res.Points = append(res.Points, meanPoint(c.name, phi, samples[c.name]))
			}
		}
	}
	return res
}

// fig6b: the 16-bit variant degrades as the stream grows past its counting
// range while SALSA keeps up (φ = 1e-4).
func fig6b(cfg Config) Result {
	baseW := scaledBaseWidth(cfg.N)
	configs := []struct {
		name string
		wm   widthMaker
		w    int
	}{
		{"SALSA", salsaCMS(8, core.MaxMerge), baseW * 4},
		{"CMS (8-bits)", named("CMS (8-bits)", baselineCMS(8)), baseW * 4},
		{"CMS (16-bits)", named("CMS (16-bits)", baselineCMS(16)), baseW * 2},
		{"CMS (32-bits)", named("CMS (32-bits)", baselineCMS(32)), baseW},
	}
	res := Result{XLabel: "stream length", YLabel: "ARE"}
	for n := cfg.N / 100; n <= cfg.N; n *= 10 {
		samples := make(map[string][]float64)
		for _, seed := range trialSeeds(cfg, 61) {
			data := cachedZipf(cfg.N, zipfUniverse(cfg.N), 1.0, seed)[:n]
			for _, c := range configs {
				v := heavyHitterARE(c.wm(c.w, seed), data, 1e-4)
				if v == v {
					samples[c.name] = append(samples[c.name], v)
				}
			}
		}
		for _, c := range configs {
			if len(samples[c.name]) > 0 {
				res.Points = append(res.Points, meanPoint(c.name, float64(n), samples[c.name]))
			}
		}
	}
	return res
}

func fig7a(cfg Config) Result {
	algos := []maker{
		budgeted(named("Tango1", tangoCMS(1)), cmsDepth, 2, salsaMinWidth),
		budgeted(named("Tango2", tangoCMS(2)), cmsDepth, 3, salsaMinWidth),
		budgeted(named("Tango4", tangoCMS(4)), cmsDepth, 5, salsaMinWidth),
		budgeted(named("Tango8", tangoCMS(8)), cmsDepth, slotBitsTango8, salsaMinWidth),
		budgeted(named("SALSA", salsaCMS(8, core.MaxMerge)), cmsDepth, slotBitsSalsa8, salsaMinWidth),
	}
	return memorySweepNRMSE(cfg, stream.NY18, algos, 70)
}

func fig7b(cfg Config) Result {
	baseW := scaledBaseWidth(cfg.N)
	configs := []struct {
		name string
		wm   widthMaker
		w    int
	}{
		{"Tango1", named("Tango1", tangoCMS(1)), baseW * 32},
		{"Tango2", named("Tango2", tangoCMS(2)), baseW * 16},
		{"Tango4", named("Tango4", tangoCMS(4)), baseW * 8},
		{"Tango8", named("Tango8", tangoCMS(8)), baseW * 4},
		{"SALSA", named("SALSA", salsaCMS(8, core.MaxMerge)), baseW * 4},
	}
	res := Result{XLabel: "zipf skew", YLabel: "NRMSE"}
	for _, skew := range skewSweep() {
		samples := make(map[string][]float64)
		for _, seed := range trialSeeds(cfg, 71) {
			data := cachedZipf(cfg.N, zipfUniverse(cfg.N), skew, seed)
			for _, c := range configs {
				samples[c.name] = append(samples[c.name], onArrivalNRMSE(c.wm(c.w, seed), data))
			}
		}
		for _, c := range configs {
			res.Points = append(res.Points, meanPoint(c.name, skew, samples[c.name]))
		}
	}
	return res
}
