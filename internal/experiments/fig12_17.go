package experiments

import (
	"math"

	"salsa/internal/coldfilter"
	"salsa/internal/core"
	"salsa/internal/metrics"
	"salsa/internal/sketch"
	"salsa/internal/stream"
	"salsa/internal/topk"
	"salsa/internal/univmon"
)

func init() {
	register("fig12a", "UnivMon entropy ARE vs memory: Baseline vs SALSA s∈{2,4,8} (Fig. 12a)", fig12a)
	register("fig12b", "UnivMon Fp-moment ARE vs p: Baseline vs SALSA (Fig. 12b)", fig12b)
	register("fig13", "Cold Filter AAE/ARE vs memory: Baseline vs SALSA stage 2 (Fig. 13)", fig13)
	register("fig13n", "Cold Filter NRMSE vs memory (§VI companion to Fig. 13)", fig13n)
	register("fig14ac", "Count-distinct ARE vs memory and skew: Baseline vs SALSA CMS (Fig. 14a–c)", fig14ac)
	register("fig14df", "Heavy-hitter ARE vs φ and skew: Baseline vs SALSA CMS (Fig. 14d–f)", fig14df)
	register("fig15ab", "Top-k accuracy vs k and skew: Baseline vs SALSA CS (Fig. 15a,b)", fig15ab)
	register("fig15cd", "Change-detection NRMSE vs memory and skew: Baseline vs SALSA CS (Fig. 15c,d)", fig15cd)
	register("fig16", "AEE comparison: NRMSE and throughput vs memory (Fig. 16)", fig16)
	register("fig17", "SALSA AEE counter splitting ablation (Fig. 17)", fig17)
}

// univMonConfigs are the Fig. 12 contenders: the paper's 16-instance
// UnivMon with baseline 32-bit CS rows versus SALSA rows at s ∈ {2,4,8}.
func univMonConfigs(memBits int, seed uint64) []struct {
	name string
	um   *univmon.Sketch
} {
	build := func(name string, perSlot float64, rows sketch.SignedRowSpec) struct {
		name string
		um   *univmon.Sketch
	} {
		// 16 levels × d=5 rows; find the widest power-of-two fit.
		w := widthForBudget(memBits/16, csDepth, perSlot, 64)
		return struct {
			name string
			um   *univmon.Sketch
		}{name, univmon.New(univmon.Config{
			Levels: 16, Depth: csDepth, Width: w, HeapK: 100, Rows: rows, Seed: seed,
		})}
	}
	return []struct {
		name string
		um   *univmon.Sketch
	}{
		build("Baseline", slotBits32, sketch.FixedSignRow(32)),
		build("SALSA2", 3, sketch.SalsaSignRow(2, false)),
		build("SALSA4", 5, sketch.SalsaSignRow(4, false)),
		build("SALSA8", slotBitsSalsa8, sketch.SalsaSignRow(8, false)),
	}
}

func fig12a(cfg Config) Result {
	res := Result{XLabel: "memory [KB]", YLabel: "entropy ARE"}
	for _, kb := range memorySweepKB(cfg.N) {
		memBits := int(kb * bitsPerKB)
		samples := make(map[string][]float64)
		var names []string
		for _, seed := range trialSeeds(cfg, 120) {
			data := cachedStream(stream.NY18, cfg.N, seed)
			exact := stream.NewExact()
			ums := univMonConfigs(memBits, seed)
			for _, x := range data {
				exact.Observe(x)
				for _, c := range ums {
					c.um.Update(x)
				}
			}
			truth := exact.Entropy()
			for _, c := range ums {
				names = append(names, c.name)
				samples[c.name] = append(samples[c.name], metrics.RelErr(c.um.Entropy(), truth))
			}
		}
		for _, name := range dedup(names) {
			res.Points = append(res.Points, meanPoint(name, kb, samples[name]))
		}
	}
	return res
}

func fig12b(cfg Config) Result {
	res := Result{XLabel: "frequency moment p", YLabel: "ARE"}
	// The paper fixes 400KB for 98M updates; use the middle of our sweep.
	sweep := memorySweepKB(cfg.N)
	memBits := int(sweep[len(sweep)/2] * bitsPerKB)
	ps := []float64{0, 0.25, 0.5, 0.75, 1, 1.25, 1.5, 1.75, 2}
	samples := make(map[string]map[float64][]float64)
	var names []string
	for _, seed := range trialSeeds(cfg, 121) {
		data := cachedStream(stream.NY18, cfg.N, seed)
		exact := stream.NewExact()
		ums := univMonConfigs(memBits, seed)
		for _, x := range data {
			exact.Observe(x)
			for _, c := range ums {
				c.um.Update(x)
			}
		}
		for _, c := range ums {
			if samples[c.name] == nil {
				samples[c.name] = make(map[float64][]float64)
				names = append(names, c.name)
			}
			for _, p := range ps {
				truth := exact.Moment(p)
				samples[c.name][p] = append(samples[c.name][p], metrics.RelErr(c.um.Moment(p), truth))
			}
		}
	}
	for _, name := range dedup(names) {
		for _, p := range ps {
			res.Points = append(res.Points, meanPoint(name, p, samples[name][p]))
		}
	}
	return res
}

// coldFilterMaker splits the budget evenly between the two filter layers
// and the stage-2 sketch, per the framework's guidance.
func coldFilterMaker(name string, salsaStage2 bool) maker {
	return func(memBits int, seed uint64) sketchUnderTest {
		layerBits := memBits / 2
		w1 := 64
		for (2*w1)*4+(w1)*8 <= layerBits {
			w1 *= 2
		}
		w2 := w1 / 2
		var stage2 coldfilter.Stage2
		var s2bits int
		if salsaStage2 {
			cus := sketch.NewCUS(cmsDepth, widthForBudget(memBits/2, cmsDepth, slotBitsSalsa8, salsaMinWidth),
				sketch.SalsaRow(8, core.MaxMerge, false), seed)
			stage2, s2bits = cus, cus.SizeBits()
		} else {
			cus := sketch.NewCUS(cmsDepth, widthForBudget(memBits/2, cmsDepth, slotBits32, 64),
				sketch.FixedRow(32), seed)
			stage2, s2bits = cus, cus.SizeBits()
		}
		f := coldfilter.New(coldfilter.Config{W1: w1, W2: w2, D1: 3, D2: 3, Seed: seed}, stage2)
		return sketchUnderTest{
			name:   name,
			update: func(x uint64) { f.Update(x, 1) },
			query:  func(x uint64) float64 { return float64(f.Query(x)) },
			bits:   w1*4 + w2*8 + s2bits,
		}
	}
}

func fig13(cfg Config) Result {
	res := Result{XLabel: "memory [KB]", YLabel: "AAE / ARE"}
	algos := []maker{
		coldFilterMaker("Baseline", false),
		coldFilterMaker("SALSA", true),
	}
	for _, kb := range memorySweepKB(cfg.N) {
		memBits := int(kb * bitsPerKB)
		aaes := make(map[string][]float64)
		ares := make(map[string][]float64)
		var names []string
		for _, seed := range trialSeeds(cfg, 130) {
			data := cachedStream(stream.NY18, cfg.N, seed)
			for _, mk := range algos {
				s := mk(memBits, seed)
				names = append(names, s.name)
				aae, are := finalAAEARE(s, data)
				aaes[s.name] = append(aaes[s.name], aae)
				ares[s.name] = append(ares[s.name], are)
			}
		}
		for _, name := range dedup(names) {
			res.Points = append(res.Points, meanPoint("AAE/"+name, kb, aaes[name]))
			res.Points = append(res.Points, meanPoint("ARE/"+name, kb, ares[name]))
		}
	}
	return res
}

// fig13n is the paper's in-text companion to Fig. 13: under the on-arrival
// NRMSE metric, the SALSA stage 2 yields larger gains than under AAE/ARE.
func fig13n(cfg Config) Result {
	algos := []maker{
		coldFilterMaker("Baseline", false),
		coldFilterMaker("SALSA", true),
	}
	return memorySweepNRMSE(cfg, stream.NY18, algos, 131)
}

// distinctARE runs the stream through a CMS and returns the Linear Counting
// relative error, or NaN when out of range.
func distinctARE(c *sketch.CMS, data []uint64) float64 {
	exact := stream.NewExact()
	for _, x := range data {
		c.Update(x, 1)
		exact.Observe(x)
	}
	est, err := c.DistinctLinearCounting()
	if err != nil {
		return nan()
	}
	return metrics.RelErr(est, float64(exact.Distinct()))
}

func fig14ac(cfg Config) Result {
	res := Result{XLabel: "memory [KB] (a,b) / skew (c)", YLabel: "distinct ARE"}
	// (a), (b): memory sweeps on the two CAIDA-like traces. Count distinct
	// needs larger widths, so extend the sweep upward (paper: 1–16MB).
	kbs := memorySweepKB(cfg.N)
	for i := 0; i < 3; i++ {
		kbs = append(kbs, kbs[len(kbs)-1]*2)
	}
	for _, ds := range []stream.Dataset{stream.NY18, stream.CH16} {
		for _, kb := range kbs {
			memBits := int(kb * bitsPerKB)
			base := []float64{}
			sal := []float64{}
			for _, seed := range trialSeeds(cfg, 140) {
				data := cachedStream(ds, cfg.N, seed)
				b := sketch.NewCMS(cmsDepth, widthForBudget(memBits, cmsDepth, slotBits32, 64), sketch.FixedRow(32), seed)
				s := sketch.NewCMS(cmsDepth, widthForBudget(memBits, cmsDepth, slotBitsSalsa8, salsaMinWidth),
					sketch.SalsaRow(8, core.SumMerge, false), seed)
				if v := distinctARE(b, data); v == v {
					base = append(base, v)
				}
				if v := distinctARE(s, data); v == v {
					sal = append(sal, v)
				}
			}
			if len(base) > 0 {
				res.Points = append(res.Points, meanPoint(ds.Name+"/Baseline", kb, base))
			}
			if len(sal) > 0 {
				res.Points = append(res.Points, meanPoint(ds.Name+"/SALSA", kb, sal))
			}
		}
	}
	// (c): skew sweep at the top budget.
	memBits := int(kbs[len(kbs)-1] * bitsPerKB)
	for _, skew := range skewSweep() {
		base := []float64{}
		sal := []float64{}
		for _, seed := range trialSeeds(cfg, 141) {
			data := cachedZipf(cfg.N, zipfUniverse(cfg.N), skew, seed)
			b := sketch.NewCMS(cmsDepth, widthForBudget(memBits, cmsDepth, slotBits32, 64), sketch.FixedRow(32), seed)
			s := sketch.NewCMS(cmsDepth, widthForBudget(memBits, cmsDepth, slotBitsSalsa8, salsaMinWidth),
				sketch.SalsaRow(8, core.SumMerge, false), seed)
			if v := distinctARE(b, data); v == v {
				base = append(base, v)
			}
			if v := distinctARE(s, data); v == v {
				sal = append(sal, v)
			}
		}
		if len(base) > 0 {
			res.Points = append(res.Points, meanPoint("Zipf/Baseline", skew, base))
		}
		if len(sal) > 0 {
			res.Points = append(res.Points, meanPoint("Zipf/SALSA", skew, sal))
		}
	}
	return res
}

func fig14df(cfg Config) Result {
	res := Result{XLabel: "phi (d,e) / skew (f)", YLabel: "heavy-hitter ARE"}
	baseW := scaledBaseWidth(cfg.N)
	phis := []float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2}
	for _, ds := range []stream.Dataset{stream.NY18, stream.CH16} {
		for _, phi := range phis {
			base := []float64{}
			sal := []float64{}
			for _, seed := range trialSeeds(cfg, 142) {
				data := cachedStream(ds, cfg.N, seed)
				if v := heavyHitterARE(named("b", baselineCMS(32))(baseW, seed), data, phi); v == v {
					base = append(base, v)
				}
				if v := heavyHitterARE(named("s", salsaCMS(8, core.MaxMerge))(baseW*4, seed), data, phi); v == v {
					sal = append(sal, v)
				}
			}
			if len(base) > 0 {
				res.Points = append(res.Points, meanPoint(ds.Name+"/Baseline", phi, base))
			}
			if len(sal) > 0 {
				res.Points = append(res.Points, meanPoint(ds.Name+"/SALSA", phi, sal))
			}
		}
	}
	for _, skew := range skewSweep() {
		base := []float64{}
		sal := []float64{}
		for _, seed := range trialSeeds(cfg, 143) {
			data := cachedZipf(cfg.N, zipfUniverse(cfg.N), skew, seed)
			if v := heavyHitterARE(named("b", baselineCMS(32))(baseW, seed), data, 1e-4); v == v {
				base = append(base, v)
			}
			if v := heavyHitterARE(named("s", salsaCMS(8, core.MaxMerge))(baseW*4, seed), data, 1e-4); v == v {
				sal = append(sal, v)
			}
		}
		if len(base) > 0 {
			res.Points = append(res.Points, meanPoint("Zipf/Baseline", skew, base))
		}
		if len(sal) > 0 {
			res.Points = append(res.Points, meanPoint("Zipf/SALSA", skew, sal))
		}
	}
	return res
}

// topKAccuracy runs a CS + heap tracker over the stream and scores the
// tracked top k against the exact top k.
func topKAccuracy(spec sketch.SignedRowSpec, w, k int, seed uint64, data []uint64) float64 {
	cs := sketch.NewCountSketch(csDepth, w, spec, seed)
	heap := topk.New(k)
	exact := stream.NewExact()
	for _, x := range data {
		cs.Update(x, 1)
		exact.Observe(x)
		heap.Offer(x, cs.Query(x))
	}
	items := heap.Items()
	est := make([]uint64, len(items))
	for i, e := range items {
		est[i] = e.Item
	}
	return metrics.TopKAccuracy(est, exact.TopK(k))
}

func fig15ab(cfg Config) Result {
	res := Result{XLabel: "k (a) / skew (b)", YLabel: "top-k accuracy"}
	// (a): constrained memory, NY18-like, k sweep (paper: 640KB, k ≤ 2^10).
	wBase := scaledBaseWidth(cfg.N) / 4
	if wBase < 64 {
		wBase = 64
	}
	for _, k := range []int{16, 32, 64, 128, 256} {
		base := []float64{}
		sal := []float64{}
		for _, seed := range trialSeeds(cfg, 150) {
			data := cachedStream(stream.NY18, cfg.N, seed)
			base = append(base, topKAccuracy(sketch.FixedSignRow(32), wBase, k, seed, data))
			sal = append(sal, topKAccuracy(sketch.SalsaSignRow(8, false), wBase*4, k, seed, data))
		}
		res.Points = append(res.Points, meanPoint("NY18/Baseline", float64(k), base))
		res.Points = append(res.Points, meanPoint("NY18/SALSA", float64(k), sal))
	}
	// (b): k fixed at 256, skew sweep.
	for _, skew := range skewSweep() {
		base := []float64{}
		sal := []float64{}
		for _, seed := range trialSeeds(cfg, 151) {
			data := cachedZipf(cfg.N, zipfUniverse(cfg.N), skew, seed)
			base = append(base, topKAccuracy(sketch.FixedSignRow(32), wBase, 256, seed, data))
			sal = append(sal, topKAccuracy(sketch.SalsaSignRow(8, false), wBase*4, 256, seed, data))
		}
		res.Points = append(res.Points, meanPoint("Zipf/Baseline", skew, base))
		res.Points = append(res.Points, meanPoint("Zipf/SALSA", skew, sal))
	}
	return res
}

// changeDetectionNRMSE splits the stream in half, sketches each epoch with
// shared seeds, subtracts, and scores the estimated frequency changes over
// the union of items (normalized by the stream length, as in the paper).
func changeDetectionNRMSE(spec sketch.SignedRowSpec, w int, seed uint64, data []uint64) float64 {
	half := len(data) / 2
	a := sketch.NewCountSketch(csDepth, w, spec, seed)
	b := sketch.NewCountSketch(csDepth, w, spec, seed)
	truthA := map[uint64]int64{}
	truthB := map[uint64]int64{}
	for _, x := range data[:half] {
		a.Update(x, 1)
		truthA[x]++
	}
	for _, x := range data[half:] {
		b.Update(x, 1)
		truthB[x]++
	}
	b.MergeFrom(a, -1) // s(B\A): change from the first to the second epoch
	var sumSq float64
	n := 0
	seen := map[uint64]bool{}
	for _, m := range []map[uint64]int64{truthA, truthB} {
		for x := range m {
			if seen[x] {
				continue
			}
			seen[x] = true
			truth := truthB[x] - truthA[x]
			d := float64(b.Query(x) - truth)
			sumSq += d * d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	rmse := math.Sqrt(sumSq / float64(n))
	return rmse / float64(len(data))
}

func fig15cd(cfg Config) Result {
	res := Result{XLabel: "memory [KB] (c) / skew (d)", YLabel: "change NRMSE"}
	for _, kb := range memorySweepKB(cfg.N) {
		memBits := int(kb * bitsPerKB)
		base := []float64{}
		sal := []float64{}
		for _, seed := range trialSeeds(cfg, 152) {
			data := cachedStream(stream.NY18, cfg.N, seed)
			wb := widthForBudget(memBits, csDepth, slotBits32, 64)
			ws := widthForBudget(memBits, csDepth, slotBitsSalsa8, salsaMinWidth)
			base = append(base, changeDetectionNRMSE(sketch.FixedSignRow(32), wb, seed, data))
			sal = append(sal, changeDetectionNRMSE(sketch.SalsaSignRow(8, false), ws, seed, data))
		}
		res.Points = append(res.Points, meanPoint("NY18/Baseline", kb, base))
		res.Points = append(res.Points, meanPoint("NY18/SALSA", kb, sal))
	}
	wb := scaledBaseWidth(cfg.N)
	for _, skew := range skewSweep() {
		base := []float64{}
		sal := []float64{}
		for _, seed := range trialSeeds(cfg, 153) {
			data := cachedZipf(cfg.N, zipfUniverse(cfg.N), skew, seed)
			base = append(base, changeDetectionNRMSE(sketch.FixedSignRow(32), wb, seed, data))
			sal = append(sal, changeDetectionNRMSE(sketch.SalsaSignRow(8, false), wb*4, seed, data))
		}
		res.Points = append(res.Points, meanPoint("Zipf/Baseline", skew, base))
		res.Points = append(res.Points, meanPoint("Zipf/SALSA", skew, sal))
	}
	return res
}

// estimatorSet is the Fig. 16 lineup.
func estimatorSet() []maker {
	return []maker{
		budgeted(named("Baseline", baselineCMS(32)), cmsDepth, slotBits32, 64),
		budgeted(aeeMaker("AEE MaxAccuracy", false), cmsDepth, slotBits16, 64),
		budgeted(aeeMaker("AEE MaxSpeed", true), cmsDepth, slotBits16, 64),
		budgeted(named("SALSA", salsaCMS(8, core.MaxMerge)), cmsDepth, slotBitsSalsa8, salsaMinWidth),
		budgeted(salsaAEEMaker("SALSA AEE", 0, false), cmsDepth, slotBitsSalsa8, salsaMinWidth),
		budgeted(salsaAEEMaker("SALSA AEE10", 10, false), cmsDepth, slotBitsSalsa8, salsaMinWidth),
	}
}

func fig16(cfg Config) Result {
	res := Result{XLabel: "memory [KB]", YLabel: "NRMSE / Mops"}
	for _, ds := range []stream.Dataset{stream.NY18, stream.CH16} {
		for _, kb := range memorySweepKB(cfg.N) {
			memBits := int(kb * bitsPerKB)
			errs := make(map[string][]float64)
			thrs := make(map[string][]float64)
			var names []string
			for _, seed := range trialSeeds(cfg, 160) {
				data := cachedStream(ds, cfg.N, seed)
				for _, mk := range estimatorSet() {
					s := mk(memBits, seed)
					names = append(names, s.name)
					errs[s.name] = append(errs[s.name], onArrivalNRMSE(s, data))
					fresh := mk(memBits, seed)
					thrs[s.name] = append(thrs[s.name], throughput(fresh, data))
				}
			}
			for _, name := range dedup(names) {
				res.Points = append(res.Points, meanPoint(ds.Name+"/NRMSE/"+name, kb, errs[name]))
				res.Points = append(res.Points, meanPoint(ds.Name+"/Mops/"+name, kb, thrs[name]))
			}
		}
	}
	return res
}

func fig17(cfg Config) Result {
	// Force a few downsamples so splitting has merged-then-shrunk counters
	// to operate on; with pure merging the ablation would be vacuous.
	algos := []maker{
		budgeted(salsaAEEMaker("SALSA AEE", 4, false), cmsDepth, slotBitsSalsa8, salsaMinWidth),
		budgeted(salsaAEEMaker("SALSA AEE Split", 4, true), cmsDepth, slotBitsSalsa8, salsaMinWidth),
	}
	res := Result{XLabel: "memory [KB]", YLabel: "NRMSE"}
	for _, ds := range []stream.Dataset{stream.NY18, stream.CH16} {
		sub := memorySweepNRMSE(cfg, ds, algos, 170)
		for _, p := range sub.Points {
			p.Series = ds.Name + "/" + p.Series
			res.Points = append(res.Points, p)
		}
	}
	return res
}
