package experiments

import (
	"salsa/internal/abc"
	"salsa/internal/aee"
	"salsa/internal/core"
	"salsa/internal/pyramid"
	"salsa/internal/sketch"
)

// Default sketch depths, matching the paper's configuration (§VI): CMS and
// CUS with 4 rows, CS with 5.
const (
	cmsDepth = 4
	csDepth  = 5
)

// widthMaker builds a sketch-under-test with an explicit row width.
type widthMaker func(w int, seed uint64) sketchUnderTest

// budgeted converts a widthMaker into a memory-budgeted maker.
func budgeted(wm widthMaker, d int, perSlot float64, minW int) maker {
	return func(memBits int, seed uint64) sketchUnderTest {
		return wm(widthForBudget(memBits, d, perSlot, minW), seed)
	}
}

func cmsWidth(name string, spec sketch.RowSpec) widthMaker {
	return func(w int, seed uint64) sketchUnderTest {
		s := sketch.NewCMS(cmsDepth, w, spec, seed)
		return sketchUnderTest{
			name:   name,
			update: func(x uint64) { s.Update(x, 1) },
			query:  func(x uint64) float64 { return float64(s.Query(x)) },
			bits:   s.SizeBits(),
		}
	}
}

func cusWidth(name string, spec sketch.RowSpec) widthMaker {
	return func(w int, seed uint64) sketchUnderTest {
		s := sketch.NewCUS(cmsDepth, w, spec, seed)
		return sketchUnderTest{
			name:   name,
			update: func(x uint64) { s.Update(x, 1) },
			query:  func(x uint64) float64 { return float64(s.Query(x)) },
			bits:   s.SizeBits(),
		}
	}
}

func csWidth(name string, spec sketch.SignedRowSpec) widthMaker {
	return func(w int, seed uint64) sketchUnderTest {
		s := sketch.NewCountSketch(csDepth, w, spec, seed)
		return sketchUnderTest{
			name:   name,
			update: func(x uint64) { s.Update(x, 1) },
			query:  func(x uint64) float64 { return float64(s.Query(x)) },
			bits:   s.SizeBits(),
		}
	}
}

// Baseline and SALSA CMS/CUS/CS width-makers.

func baselineCMS(bits uint) widthMaker {
	return cmsWidth("Baseline", sketch.FixedRow(bits))
}

func salsaCMS(s uint, policy core.MergePolicy) widthMaker {
	return cmsWidth("SALSA", sketch.SalsaRow(s, policy, false))
}

func tangoCMS(s uint) widthMaker {
	return cmsWidth("Tango", sketch.TangoRow(s, core.MaxMerge))
}

func baselineCUS(bits uint) widthMaker {
	return cusWidth("Baseline CUS", sketch.FixedRow(bits))
}

func salsaCUS(s uint) widthMaker {
	return cusWidth("SALSA CUS", sketch.SalsaRow(s, core.MaxMerge, false))
}

func baselineCS(bits uint) widthMaker {
	return csWidth("Baseline", sketch.FixedSignRow(bits))
}

func salsaCS(s uint) widthMaker {
	return csWidth("SALSA", sketch.SalsaSignRow(s, false))
}

// Competitors.

func pyramidCMS() widthMaker {
	return func(w int, seed uint64) sketchUnderTest {
		s := pyramid.New(cmsDepth, w, 6, seed)
		return sketchUnderTest{
			name:   "Pyramid",
			update: func(x uint64) { s.Update(x, 1) },
			query:  func(x uint64) float64 { return float64(s.Query(x)) },
			bits:   s.SizeBits(),
		}
	}
}

func abcCMS() widthMaker {
	return func(w int, seed uint64) sketchUnderTest {
		s := abc.New(cmsDepth, w, seed)
		return sketchUnderTest{
			name:   "ABC",
			update: func(x uint64) { s.Update(x, 1) },
			query:  func(x uint64) float64 { return float64(s.Query(x)) },
			bits:   s.SizeBits(),
		}
	}
}

// Estimators.

func aeeMaker(name string, maxSpeed bool) widthMaker {
	return func(w int, seed uint64) sketchUnderTest {
		cfg := aee.Config{Rows: cmsDepth, Width: w, CounterBits: 16, Probabilistic: true, Seed: seed}
		var e *aee.Estimator
		if maxSpeed {
			e = aee.NewMaxSpeed(cfg)
		} else {
			e = aee.NewMaxAccuracy(cfg)
		}
		return sketchUnderTest{
			name:   name,
			update: e.Update,
			query:  e.Query,
			bits:   e.SizeBits(),
		}
	}
}

func salsaAEEMaker(name string, forced int, split bool) widthMaker {
	return func(w int, seed uint64) sketchUnderTest {
		e := aee.NewSalsa(aee.SalsaConfig{
			Rows:              cmsDepth,
			Width:             w,
			S:                 8,
			Delta:             0.001,
			ForcedDownsamples: forced,
			Split:             split,
			Seed:              seed,
		})
		return sketchUnderTest{
			name:   name,
			update: e.Update,
			query:  e.Query,
			bits:   e.SizeBits(),
		}
	}
}

// Per-slot budget costs in bits, including encoding overheads.
const (
	slotBits32      = 32.0
	slotBits16      = 16.0
	slotBits8       = 8.0
	slotBitsSalsa8  = 9.0  // 8 + 1 merge bit
	slotBitsTango8  = 9.0  // 8 + 1 merge bit
	slotBitsPyramid = 16.0 // 8-bit layer 1 + halving upper layers ≈ 2×
	salsaMinWidth   = 64   // keeps every s ∈ {1..32} block-aligned
)
