package experiments

import (
	"salsa/internal/core"
	"salsa/internal/stream"
)

func init() {
	register("fig19", "Heavy-hitter ARE vs φ incl. the '0' algorithm and 4-bit CMS (Fig. 19, App. B)", fig19)
	register("fig20", "Heavy-hitter AAE vs φ incl. the '0' algorithm and 4-bit CMS (Fig. 20, App. B)", fig20)
}

// zeroAlgorithm is Appendix B's degenerate contender: estimate every
// frequency as zero. Under ARE/AAE over all items it beats real sketches,
// which is the paper's argument that those metrics mislead.
func zeroAlgorithm() widthMaker {
	return func(w int, seed uint64) sketchUnderTest {
		return sketchUnderTest{
			name:   "0",
			update: func(uint64) {},
			query:  func(uint64) float64 { return 0 },
			bits:   0,
		}
	}
}

// appendixSet is the Fig. 19/20 lineup at equal counter memory.
func appendixSet(baseW int) []struct {
	name string
	wm   widthMaker
	w    int
} {
	return []struct {
		name string
		wm   widthMaker
		w    int
	}{
		{"0", zeroAlgorithm(), 1},
		{"SALSA", named("SALSA", salsaCMS(8, core.MaxMerge)), baseW * 4},
		{"CMS (4-bits)", named("CMS (4-bits)", baselineCMS(4)), baseW * 8},
		{"CMS (8-bits)", named("CMS (8-bits)", baselineCMS(8)), baseW * 4},
		{"CMS (16-bits)", named("CMS (16-bits)", baselineCMS(16)), baseW * 2},
		{"CMS (32-bits)", named("CMS (32-bits)", baselineCMS(32)), baseW},
	}
}

// heavyHitterAAE mirrors heavyHitterARE with absolute errors.
func heavyHitterAAE(s sketchUnderTest, data []uint64, phi float64) float64 {
	exact := stream.NewExact()
	for _, x := range data {
		s.update(x)
		exact.Observe(x)
	}
	threshold := phi * float64(exact.Volume())
	var sum float64
	n := 0
	for x, f := range exact.Counts() {
		if float64(f) < threshold {
			continue
		}
		d := s.query(x) - float64(f)
		if d < 0 {
			d = -d
		}
		sum += d
		n++
	}
	if n == 0 {
		return nan()
	}
	return sum / float64(n)
}

func appendixSweep(cfg Config, salt uint64, metric func(sketchUnderTest, []uint64, float64) float64, ylabel string) Result {
	baseW := scaledBaseWidth(cfg.N)
	res := Result{XLabel: "threshold phi", YLabel: ylabel}
	for _, phi := range phiSweep() {
		samples := make(map[string][]float64)
		for _, seed := range trialSeeds(cfg, salt) {
			data := cachedStream(stream.NY18, cfg.N, seed)
			for _, c := range appendixSet(baseW) {
				v := metric(c.wm(c.w, seed), data, phi)
				if v == v {
					samples[c.name] = append(samples[c.name], v)
				}
			}
		}
		for _, c := range appendixSet(baseW) {
			if len(samples[c.name]) > 0 {
				res.Points = append(res.Points, meanPoint(c.name, phi, samples[c.name]))
			}
		}
	}
	return res
}

func fig19(cfg Config) Result {
	return appendixSweep(cfg, 190, heavyHitterARE, "ARE")
}

func fig20(cfg Config) Result {
	return appendixSweep(cfg, 200, heavyHitterAAE, "AAE")
}
