// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI and Appendix B). Each experiment is registered under the
// figure id used in DESIGN.md §3 and produces the same series the paper
// plots, as CSV-friendly rows. cmd/salsabench is the front end.
//
// Streams are scaled from the paper's 98M-update traces to a configurable
// default (Config.N) with sketch widths scaled by the same factor, so the
// operating points — counters per distinct item, load per counter — match
// the paper's. Shapes (who wins, by what factor, where curves cross) are
// the reproduction target; absolute numbers depend on the host.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"salsa/internal/metrics"
	"salsa/internal/stream"
)

// Config scales an experiment run.
type Config struct {
	// N is the stream length (the paper uses 98M; the default CLI uses
	// 1M to stay laptop-scale).
	N int
	// Trials is the number of repetitions per data point (paper: 10).
	Trials int
	// Seed derives all stream and sketch seeds.
	Seed uint64
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.N == 0 {
		c.N = 1_000_000
	}
	if c.Trials == 0 {
		c.Trials = 5
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Point is one datum of one series: x-coordinate, mean y over trials, and
// the half-width of the 95% Student-t confidence interval.
type Point struct {
	Series string
	X      float64
	Y      float64
	CI     float64
}

// Result is a regenerated figure.
type Result struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Points []Point
}

// Func runs one experiment.
type Func func(cfg Config) Result

type entry struct {
	title string
	fn    Func
}

var (
	regMu    sync.Mutex
	registry = map[string]entry{}
)

// register adds an experiment under its figure id.
func register(id, title string, fn Func) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = entry{title, fn}
}

// IDs returns the registered experiment ids in order.
func IDs() []string {
	regMu.Lock()
	defer regMu.Unlock()
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns the registered title for an experiment id.
func Title(id string) string {
	regMu.Lock()
	defer regMu.Unlock()
	return registry[id].title
}

// Run executes the experiment with the given id.
func Run(id string, cfg Config) (Result, error) {
	regMu.Lock()
	e, ok := registry[id]
	regMu.Unlock()
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	res := e.fn(cfg.WithDefaults())
	res.ID = id
	res.Title = e.title
	return res, nil
}

// sketchUnderTest is the uniform adapter every experiment drives: unit
// updates, float estimates, bit-accounted memory.
type sketchUnderTest struct {
	name   string
	update func(x uint64)
	query  func(x uint64) float64
	bits   int
}

// maker builds a sketch-under-test for a memory budget (in bits) and seed.
type maker func(memBits int, seed uint64) sketchUnderTest

// widthForBudget returns the largest power-of-two row width such that d
// rows at perSlotBits bits per slot fit in memBits, never below minW.
func widthForBudget(memBits, d int, perSlotBits float64, minW int) int {
	w := minW
	for float64(2*w*d)*perSlotBits <= float64(memBits) {
		w *= 2
	}
	return w
}

// streamCache avoids regenerating identical traces across data points.
var streamCache sync.Map // key string -> []uint64

func cachedStream(d stream.Dataset, n int, seed uint64) []uint64 {
	key := fmt.Sprintf("%s/%d/%d", d.Name, n, seed)
	if v, ok := streamCache.Load(key); ok {
		return v.([]uint64)
	}
	s := d.Generate(n, seed)
	streamCache.Store(key, s)
	return s
}

func cachedZipf(n int, u int, alpha float64, seed uint64) []uint64 {
	key := fmt.Sprintf("zipf/%d/%d/%f/%d", n, u, alpha, seed)
	if v, ok := streamCache.Load(key); ok {
		return v.([]uint64)
	}
	s := stream.Zipf(n, u, alpha, seed)
	streamCache.Store(key, s)
	return s
}

// zipfUniverse is the universe used for the synthetic skew sweeps,
// mirroring the paper's Zipf traces: scale with the stream.
func zipfUniverse(n int) int {
	u := n / 10
	if u < 1024 {
		u = 1024
	}
	return u
}

// onArrivalNRMSE runs the on-arrival evaluation (§VI, "Metrics"): update,
// query, compare with the item's running true count.
func onArrivalNRMSE(s sketchUnderTest, data []uint64) float64 {
	exact := stream.NewExact()
	var acc metrics.OnArrival
	for _, x := range data {
		s.update(x)
		truth := exact.Observe(x)
		acc.Observe(s.query(x), float64(truth))
	}
	return acc.NRMSE()
}

// finalAAEARE runs the stream and computes AAE and ARE over the distinct
// items at the end.
func finalAAEARE(s sketchUnderTest, data []uint64) (aae, are float64) {
	exact := stream.NewExact()
	for _, x := range data {
		s.update(x)
		exact.Observe(x)
	}
	return metrics.AAEARE(exact.Counts(), s.query)
}

// throughput measures update throughput in millions of operations per
// second (no queries), as in the paper's speed plots.
func throughput(s sketchUnderTest, data []uint64) float64 {
	start := time.Now()
	for _, x := range data {
		s.update(x)
	}
	elapsed := time.Since(start).Seconds()
	if elapsed == 0 {
		return math.Inf(1)
	}
	return float64(len(data)) / elapsed / 1e6
}

// trialSeeds derives per-trial seeds.
func trialSeeds(cfg Config, salt uint64) []uint64 {
	out := make([]uint64, cfg.Trials)
	for i := range out {
		out[i] = cfg.Seed + salt*1000 + uint64(i)
	}
	return out
}

// meanPoint aggregates per-trial samples into a Point.
func meanPoint(series string, x float64, samples []float64) Point {
	mean, ci := metrics.MeanCI95(samples)
	return Point{Series: series, X: x, Y: mean, CI: ci}
}

// memorySweepKB returns the nominal memory budgets for the sweep figures,
// scaled from the paper's 10KB–2MB range by the stream-size ratio. The
// returned values are in kilobytes.
func memorySweepKB(n int) []float64 {
	// The paper pairs 98M updates with 8KB–2MB sketches. Scale the top of
	// the range by n/98M, with a floor that keeps at least 5 points.
	top := 2048.0 * float64(n) / 98e6 * 32 // generous: keep loads comparable
	if top < 64 {
		top = 64
	}
	var out []float64
	for kb := top / 64; kb <= top; kb *= 2 {
		out = append(out, kb)
	}
	return out
}

// skewSweep is the paper's Zipf skew range.
func skewSweep() []float64 { return []float64{0.6, 0.8, 1.0, 1.2, 1.4} }

const bitsPerKB = 8 * 1024
