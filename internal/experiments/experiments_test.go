package experiments

import (
	"math"
	"strings"
	"testing"
)

// tiny keeps smoke tests fast: every experiment must run end to end and
// produce well-formed points even at this scale.
var tiny = Config{N: 20_000, Trials: 2, Seed: 7}

func TestEveryExperimentRuns(t *testing.T) {
	ids := IDs()
	if len(ids) < 20 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, tiny)
			if err != nil {
				t.Fatal(err)
			}
			if res.ID != id || res.Title == "" {
				t.Fatal("missing metadata")
			}
			if len(res.Points) == 0 {
				t.Fatal("no points produced")
			}
			for _, p := range res.Points {
				if p.Series == "" {
					t.Fatal("point without series")
				}
				if math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
					t.Fatalf("series %s x=%v: bad y %v", p.Series, p.X, p.Y)
				}
				if p.Y < 0 {
					t.Fatalf("series %s: negative metric %v", p.Series, p.Y)
				}
			}
		})
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope", tiny); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

func TestWidthForBudget(t *testing.T) {
	// 4 rows of 32-bit slots in 64KB: 64·1024·8 / (4·32) = 4096 slots.
	if w := widthForBudget(64*1024*8, 4, 32, 64); w != 4096 {
		t.Fatalf("w = %d, want 4096", w)
	}
	// Never below the minimum.
	if w := widthForBudget(10, 4, 32, 64); w != 64 {
		t.Fatalf("w = %d, want the 64 floor", w)
	}
	// SALSA at 9 bits/slot gets ~3.5× the slots; with power-of-two
	// rounding that lands on 2× or 4×.
	wb := widthForBudget(1<<20, 4, 32, 64)
	ws := widthForBudget(1<<20, 4, 9, 64)
	if ws < 2*wb || ws > 4*wb {
		t.Fatalf("salsa width %d vs baseline %d out of expected band", ws, wb)
	}
}

func TestScaledBaseWidth(t *testing.T) {
	if w := scaledBaseWidth(1_000_000); w != 1024 {
		t.Fatalf("w = %d, want 1024", w)
	}
	if w := scaledBaseWidth(1); w != 256 {
		t.Fatalf("floor = %d", w)
	}
}

func TestMemorySweepCoversRange(t *testing.T) {
	kbs := memorySweepKB(1_000_000)
	if len(kbs) < 5 {
		t.Fatalf("sweep too short: %v", kbs)
	}
	for i := 1; i < len(kbs); i++ {
		if kbs[i] != kbs[i-1]*2 {
			t.Fatal("sweep not geometric")
		}
	}
}

func TestSalsaBeatsBaselineShape(t *testing.T) {
	// The reproduction's headline shape (Fig. 10): on the skewed NY18-like
	// trace, SALSA CMS must beat the Baseline CMS NRMSE at every budget in
	// a small sweep.
	res, err := Run("fig8cd", Config{N: 100_000, Trials: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	base := map[float64]float64{}
	sal := map[float64]float64{}
	for _, p := range res.Points {
		if strings.HasPrefix(p.Series, "NY18/") {
			switch strings.TrimPrefix(p.Series, "NY18/") {
			case "Baseline":
				base[p.X] = p.Y
			case "SALSA":
				sal[p.X] = p.Y
			}
		}
	}
	if len(base) == 0 || len(sal) == 0 {
		t.Fatal("missing series")
	}
	wins := 0
	total := 0
	for x, b := range base {
		s, ok := sal[x]
		if !ok {
			continue
		}
		total++
		if s <= b {
			wins++
		}
	}
	if total == 0 || wins*2 < total {
		t.Fatalf("SALSA won only %d of %d budgets", wins, total)
	}
}

func TestZeroAlgorithmWinsAllFlowsARE(t *testing.T) {
	// Appendix B's punchline: with φ→0 (all items), the "0" algorithm has
	// lower ARE than the 32-bit baseline.
	res, err := Run("fig19", Config{N: 50_000, Trials: 2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	var zero, baseline float64
	found := 0
	for _, p := range res.Points {
		if p.X != 1e-8 {
			continue
		}
		switch p.Series {
		case "0":
			zero = p.Y
			found++
		case "CMS (32-bits)":
			baseline = p.Y
			found++
		}
	}
	if found != 2 {
		t.Fatal("missing leftmost points")
	}
	if zero >= baseline {
		t.Fatalf("'0' ARE %f not below baseline %f at φ=1e-8", zero, baseline)
	}
}
