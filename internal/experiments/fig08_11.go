package experiments

import (
	"sort"

	"salsa/internal/core"
	"salsa/internal/stream"
)

func init() {
	register("fig8ab", "Throughput vs memory: Pyramid, ABC, Baseline, SALSA CMS (Fig. 8a,b)", fig8ab)
	register("fig8cd", "NRMSE vs memory: Pyramid, ABC, Baseline, SALSA CMS (Fig. 8c,d)", fig8cd)
	register("fig8eh", "AAE and ARE vs memory: Pyramid, ABC, Baseline, SALSA CMS (Fig. 8e–h)", fig8eh)
	register("fig9", "Per-element error vs frequency for the four algorithms (Fig. 9)", fig9)
	register("fig10", "CMS and CUS, Baseline vs SALSA: NRMSE and throughput, four datasets (Fig. 10)", fig10)
	register("fig11", "Count Sketch, Baseline vs SALSA: NRMSE, four datasets (Fig. 11)", fig11)
}

// competitorSet is the four-way comparison of Fig. 8/9.
func competitorSet() []maker {
	return []maker{
		budgeted(pyramidCMS(), cmsDepth, slotBitsPyramid, 64),
		budgeted(abcCMS(), cmsDepth, slotBits8, 64),
		budgeted(named("Baseline", baselineCMS(32)), cmsDepth, slotBits32, 64),
		budgeted(named("SALSA", salsaCMS(8, core.MaxMerge)), cmsDepth, slotBitsSalsa8, salsaMinWidth),
	}
}

func fig8ab(cfg Config) Result {
	res := Result{XLabel: "memory [KB]", YLabel: "throughput [Mops/s]"}
	for _, ds := range []stream.Dataset{stream.NY18, stream.CH16} {
		for _, kb := range memorySweepKB(cfg.N) {
			memBits := int(kb * bitsPerKB)
			samples := make(map[string][]float64)
			names := []string{}
			for _, seed := range trialSeeds(cfg, 80) {
				data := cachedStream(ds, cfg.N, seed)
				for _, mk := range competitorSet() {
					s := mk(memBits, seed)
					if len(samples[s.name]) == 0 {
						names = append(names, s.name)
					}
					samples[s.name] = append(samples[s.name], throughput(s, data))
				}
			}
			for _, name := range dedup(names) {
				res.Points = append(res.Points, meanPoint(ds.Name+"/"+name, kb, samples[name]))
			}
		}
	}
	return res
}

func dedup(names []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

func fig8cd(cfg Config) Result {
	res := Result{XLabel: "memory [KB]", YLabel: "NRMSE"}
	for _, ds := range []stream.Dataset{stream.NY18, stream.CH16} {
		sub := memorySweepNRMSE(cfg, ds, competitorSet(), 81)
		for _, p := range sub.Points {
			p.Series = ds.Name + "/" + p.Series
			res.Points = append(res.Points, p)
		}
	}
	return res
}

func fig8eh(cfg Config) Result {
	res := Result{XLabel: "memory [KB]", YLabel: "AAE / ARE"}
	for _, ds := range []stream.Dataset{stream.NY18, stream.CH16} {
		for _, kb := range memorySweepKB(cfg.N) {
			memBits := int(kb * bitsPerKB)
			aaes := make(map[string][]float64)
			ares := make(map[string][]float64)
			var names []string
			for _, seed := range trialSeeds(cfg, 82) {
				data := cachedStream(ds, cfg.N, seed)
				for _, mk := range competitorSet() {
					s := mk(memBits, seed)
					names = append(names, s.name)
					aae, are := finalAAEARE(s, data)
					aaes[s.name] = append(aaes[s.name], aae)
					ares[s.name] = append(ares[s.name], are)
				}
			}
			for _, name := range dedup(names) {
				res.Points = append(res.Points, meanPoint(ds.Name+"/AAE/"+name, kb, aaes[name]))
				res.Points = append(res.Points, meanPoint(ds.Name+"/ARE/"+name, kb, ares[name]))
			}
		}
	}
	return res
}

// fig9 samples one element per observed frequency and reports its absolute
// error, exposing each algorithm's error distribution: SALSA's is tight,
// Pyramid's has high variance on overflowed counters, ABC's explodes on
// heavy hitters (regions A and B of the paper's figure).
func fig9(cfg Config) Result {
	res := Result{XLabel: "true frequency", YLabel: "|error|"}
	seed := cfg.Seed
	// The paper runs this at 2MB for 98M packets; scale the same way.
	memBits := int(memorySweepKB(cfg.N)[len(memorySweepKB(cfg.N))-1] * bitsPerKB)
	for _, ds := range []stream.Dataset{stream.NY18, stream.CH16} {
		data := cachedStream(ds, cfg.N, seed)
		exact := stream.NewExact()
		sketches := []sketchUnderTest{}
		for _, mk := range competitorSet() {
			sketches = append(sketches, mk(memBits, seed))
		}
		for _, x := range data {
			exact.Observe(x)
			for _, s := range sketches {
				s.update(x)
			}
		}
		// One representative item per frequency (the paper's declutter).
		byFreq := map[uint64]uint64{}
		for x, f := range exact.Counts() {
			if _, ok := byFreq[f]; !ok {
				byFreq[f] = x
			}
		}
		freqs := make([]uint64, 0, len(byFreq))
		for f := range byFreq {
			freqs = append(freqs, f)
		}
		sort.Slice(freqs, func(i, j int) bool { return freqs[i] < freqs[j] })
		for _, f := range freqs {
			x := byFreq[f]
			for _, s := range sketches {
				d := s.query(x) - float64(f)
				if d < 0 {
					d = -d
				}
				res.Points = append(res.Points, Point{Series: ds.Name + "/" + s.name, X: float64(f), Y: d})
			}
		}
	}
	return res
}

// l1Set is the Baseline-vs-SALSA comparison for CMS and CUS (Fig. 10).
func l1Set() []maker {
	return []maker{
		budgeted(named("Baseline CMS", baselineCMS(32)), cmsDepth, slotBits32, 64),
		budgeted(named("Baseline CUS", baselineCUS(32)), cmsDepth, slotBits32, 64),
		budgeted(named("SALSA CMS", salsaCMS(8, core.MaxMerge)), cmsDepth, slotBitsSalsa8, salsaMinWidth),
		budgeted(named("SALSA CUS", salsaCUS(8)), cmsDepth, slotBitsSalsa8, salsaMinWidth),
	}
}

func fig10(cfg Config) Result {
	res := Result{XLabel: "memory [KB]", YLabel: "NRMSE / Mops"}
	for _, ds := range stream.Datasets() {
		for _, kb := range memorySweepKB(cfg.N) {
			memBits := int(kb * bitsPerKB)
			errs := make(map[string][]float64)
			thrs := make(map[string][]float64)
			var names []string
			for _, seed := range trialSeeds(cfg, 100) {
				data := cachedStream(ds, cfg.N, seed)
				for _, mk := range l1Set() {
					s := mk(memBits, seed)
					names = append(names, s.name)
					errs[s.name] = append(errs[s.name], onArrivalNRMSE(s, data))
					fresh := mk(memBits, seed)
					thrs[s.name] = append(thrs[s.name], throughput(fresh, data))
				}
			}
			for _, name := range dedup(names) {
				res.Points = append(res.Points, meanPoint(ds.Name+"/NRMSE/"+name, kb, errs[name]))
				res.Points = append(res.Points, meanPoint(ds.Name+"/Mops/"+name, kb, thrs[name]))
			}
		}
	}
	return res
}

func fig11(cfg Config) Result {
	algos := []maker{
		budgeted(named("Baseline", baselineCS(32)), csDepth, slotBits32, 64),
		budgeted(named("SALSA", salsaCS(8)), csDepth, slotBitsSalsa8, salsaMinWidth),
	}
	res := Result{XLabel: "memory [KB]", YLabel: "NRMSE"}
	for _, ds := range stream.Datasets() {
		sub := memorySweepNRMSE(cfg, ds, algos, 110)
		for _, p := range sub.Points {
			p.Series = ds.Name + "/" + p.Series
			res.Points = append(res.Points, p)
		}
	}
	return res
}
