// Package coldfilter reimplements the Cold Filter framework (Yang et al.,
// VLDB J. 2019) used in the paper's evaluation: a two-layer conservative-
// update filter absorbs the cold items, and only the residual volume of hot
// items reaches a second-stage sketch (CM-CU in the original; SALSA CUS in
// the paper's variant). Layer 1 uses 4-bit counters, layer 2 uses 8-bit
// counters, each a single array probed by several hashes.
//
// The original's SIMD aggregation buffer is omitted: it batches updates for
// throughput but does not change estimates, and the paper notes it must be
// drained on every query in the on-arrival model anyway.
package coldfilter

import (
	"fmt"

	"salsa/internal/core"
	"salsa/internal/hashing"
)

// Stage2 is the second-stage frequency sketch fed with the volume that
// passes both filter layers. *sketch.CMS (in conservative mode) satisfies
// it.
type Stage2 interface {
	Update(x uint64, v int64)
	Query(x uint64) uint64
	SizeBits() int
}

// Filter is a two-layer cold filter in front of a Stage2 sketch.
type Filter struct {
	l1, l2     *core.Fixed
	seeds1     []uint64
	seeds2     []uint64
	mask1      uint64
	mask2      uint64
	t1, t2     uint64
	stage2     Stage2
	stage2Hits uint64
}

// Config sets the filter geometry. Both widths must be powers of two.
type Config struct {
	// W1, W2 are the layer widths in counters (4-bit and 8-bit).
	W1, W2 int
	// D1, D2 are the number of hash probes per layer (3 and 3 in the
	// original's recommended configuration).
	D1, D2 int
	// Seed derives all hash seeds.
	Seed uint64
}

// New returns a cold filter over the given second stage. Layer thresholds
// are the counters' maxima (15 and 255).
func New(cfg Config, stage2 Stage2) *Filter {
	if cfg.D1 <= 0 || cfg.D2 <= 0 {
		panic("coldfilter: invalid probe counts")
	}
	if cfg.W1 <= 0 || cfg.W1&(cfg.W1-1) != 0 || cfg.W2 <= 0 || cfg.W2&(cfg.W2-1) != 0 {
		panic(fmt.Sprintf("coldfilter: widths %d/%d must be powers of two", cfg.W1, cfg.W2))
	}
	if stage2 == nil {
		panic("coldfilter: nil stage 2")
	}
	seeds := hashing.Seeds(cfg.Seed, cfg.D1+cfg.D2)
	return &Filter{
		l1:     core.NewFixed(cfg.W1, 4),
		l2:     core.NewFixed(cfg.W2, 8),
		seeds1: seeds[:cfg.D1],
		seeds2: seeds[cfg.D1:],
		mask1:  uint64(cfg.W1 - 1),
		mask2:  uint64(cfg.W2 - 1),
		t1:     15,
		t2:     255,
		stage2: stage2,
	}
}

// Restore rebuilds a filter from serialized state: the decoded layer
// arrays, the stage-2 volume odometer, and the already-decoded second
// stage. Layer geometry is validated against the config so hostile
// payload combinations are errors, not panics.
func Restore(cfg Config, l1, l2 *core.Fixed, stage2Hits uint64, stage2 Stage2) (*Filter, error) {
	if cfg.D1 <= 0 || cfg.D2 <= 0 ||
		cfg.W1 <= 0 || cfg.W1&(cfg.W1-1) != 0 || cfg.W2 <= 0 || cfg.W2&(cfg.W2-1) != 0 {
		return nil, fmt.Errorf("coldfilter: invalid geometry %d/%d probes over %d/%d", cfg.D1, cfg.D2, cfg.W1, cfg.W2)
	}
	if stage2 == nil {
		return nil, fmt.Errorf("coldfilter: nil stage 2")
	}
	if l1.Width() != cfg.W1 || l1.CounterBits() != 4 {
		return nil, fmt.Errorf("coldfilter: layer 1 geometry %d×%dbit, want %d×4bit", l1.Width(), l1.CounterBits(), cfg.W1)
	}
	if l2.Width() != cfg.W2 || l2.CounterBits() != 8 {
		return nil, fmt.Errorf("coldfilter: layer 2 geometry %d×%dbit, want %d×8bit", l2.Width(), l2.CounterBits(), cfg.W2)
	}
	f := New(cfg, stage2)
	f.l1, f.l2 = l1, l2
	f.stage2Hits = stage2Hits
	return f, nil
}

// Layer1 returns the 4-bit filter layer for serialization.
func (f *Filter) Layer1() *core.Fixed { return f.l1 }

// Layer2 returns the 8-bit filter layer for serialization.
func (f *Filter) Layer2() *core.Fixed { return f.l2 }

// UpdateBatch processes every item with weight v, in order.
func (f *Filter) UpdateBatch(items []uint64, v int64) {
	for _, x := range items {
		f.Update(x, v)
	}
}

// SizeBits returns the total footprint including the second stage.
func (f *Filter) SizeBits() int {
	return f.l1.SizeBits() + f.l2.SizeBits() + f.stage2.SizeBits()
}

// Stage2Volume returns how much update volume reached the second stage —
// the quantity the filter exists to minimize.
func (f *Filter) Stage2Volume() uint64 { return f.stage2Hits }

func (f *Filter) min1(x uint64) uint64 {
	m := ^uint64(0)
	for _, s := range f.seeds1 {
		if v := f.l1.Value(int(hashing.Index(x, s, f.mask1))); v < m {
			m = v
		}
	}
	return m
}

func (f *Filter) min2(x uint64) uint64 {
	m := ^uint64(0)
	for _, s := range f.seeds2 {
		if v := f.l2.Value(int(hashing.Index(x, s, f.mask2))); v < m {
			m = v
		}
	}
	return m
}

// raise1 conservatively raises x's layer-1 counters to target (≤ t1).
func (f *Filter) raise1(x, target uint64) {
	for _, s := range f.seeds1 {
		f.l1.SetAtLeast(int(hashing.Index(x, s, f.mask1)), target)
	}
}

func (f *Filter) raise2(x, target uint64) {
	for _, s := range f.seeds2 {
		f.l2.SetAtLeast(int(hashing.Index(x, s, f.mask2)), target)
	}
}

// Update processes ⟨x, v⟩ with v ≥ 0: layer 1 absorbs volume up to its
// threshold, layer 2 the next tranche, and only the remainder reaches the
// second stage.
func (f *Filter) Update(x uint64, v int64) {
	if v < 0 {
		panic("coldfilter: negative update")
	}
	rem := uint64(v)
	if m := f.min1(x); m < f.t1 {
		take := f.t1 - m
		if take > rem {
			take = rem
		}
		f.raise1(x, m+take)
		rem -= take
	}
	if rem == 0 {
		return
	}
	if m := f.min2(x); m < f.t2 {
		take := f.t2 - m
		if take > rem {
			take = rem
		}
		f.raise2(x, m+take)
		rem -= take
	}
	if rem == 0 {
		return
	}
	f.stage2Hits += rem
	f.stage2.Update(x, int64(rem))
}

// Query returns the frequency estimate: the filter layers' conservative
// counts plus the second stage once both layers are saturated for x.
func (f *Filter) Query(x uint64) uint64 {
	m1 := f.min1(x)
	if m1 < f.t1 {
		return m1
	}
	m2 := f.min2(x)
	if m2 < f.t2 {
		return f.t1 + m2
	}
	return f.t1 + f.t2 + f.stage2.Query(x)
}
