package coldfilter

import (
	"math/rand"
	"testing"

	"salsa/internal/core"
	"salsa/internal/sketch"
)

func newStage2(salsa bool) Stage2 {
	if salsa {
		return sketch.NewCUS(4, 1024, sketch.SalsaRow(8, core.MaxMerge, false), 99)
	}
	return sketch.NewCUS(4, 1024, sketch.FixedRow(32), 99)
}

func defaultFilter(salsa bool) *Filter {
	return New(Config{W1: 4096, W2: 2048, D1: 3, D2: 3, Seed: 7}, newStage2(salsa))
}

func TestColdItemsStayInLayerOne(t *testing.T) {
	f := defaultFilter(false)
	for i := uint64(0); i < 100; i++ {
		for k := 0; k < 5; k++ {
			f.Update(i, 1)
		}
	}
	if f.Stage2Volume() != 0 {
		t.Fatalf("cold items reached stage 2: %d", f.Stage2Volume())
	}
	for i := uint64(0); i < 100; i++ {
		if est := f.Query(i); est < 5 {
			t.Fatalf("item %d: estimate %d < truth 5", i, est)
		}
	}
}

func TestHotItemFlowsThroughAllStages(t *testing.T) {
	for _, salsa := range []bool{false, true} {
		f := defaultFilter(salsa)
		const hot = uint64(42)
		const n = 5000
		for k := 0; k < n; k++ {
			f.Update(hot, 1)
		}
		if f.Stage2Volume() == 0 {
			t.Fatal("a 5000-count item must overflow both filter layers")
		}
		// Volume conservation: stage2 got exactly n − t1 − t2 (no
		// collisions in an otherwise empty filter).
		if f.Stage2Volume() != n-15-255 {
			t.Fatalf("stage 2 volume = %d, want %d", f.Stage2Volume(), n-15-255)
		}
		if est := f.Query(hot); est < n {
			t.Fatalf("estimate %d < truth %d", est, n)
		}
	}
}

func TestConservativeOverestimate(t *testing.T) {
	for _, salsa := range []bool{false, true} {
		f := defaultFilter(salsa)
		rng := rand.New(rand.NewSource(13))
		truth := map[uint64]uint64{}
		// Skewed-ish stream: items 0..49 hot, rest cold.
		for i := 0; i < 60000; i++ {
			var x uint64
			if rng.Intn(2) == 0 {
				x = uint64(rng.Intn(50))
			} else {
				x = uint64(rng.Intn(20000)) + 100
			}
			f.Update(x, 1)
			truth[x]++
		}
		for x, ft := range truth {
			if est := f.Query(x); est < ft {
				t.Fatalf("salsa=%v item %d: estimate %d < truth %d", salsa, x, est, ft)
			}
		}
	}
}

func TestWeightedUpdateSpansLayers(t *testing.T) {
	f := defaultFilter(false)
	f.Update(7, 1000) // crosses both thresholds in one update
	if f.Stage2Volume() != 1000-15-255 {
		t.Fatalf("stage 2 volume = %d", f.Stage2Volume())
	}
	if est := f.Query(7); est < 1000 {
		t.Fatalf("estimate %d < 1000", est)
	}
}

func TestSizeBitsIncludesAllStages(t *testing.T) {
	s2 := newStage2(false)
	f := New(Config{W1: 1024, W2: 512, D1: 3, D2: 3, Seed: 1}, s2)
	want := 1024*4 + 512*8 + s2.SizeBits()
	if f.SizeBits() != want {
		t.Fatalf("SizeBits = %d, want %d", f.SizeBits(), want)
	}
}

func TestValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { New(Config{W1: 100, W2: 64, D1: 3, D2: 3}, newStage2(false)) },
		func() { New(Config{W1: 64, W2: 64, D1: 0, D2: 3}, newStage2(false)) },
		func() { New(Config{W1: 64, W2: 64, D1: 3, D2: 3}, nil) },
		func() { defaultFilter(false).Update(1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
