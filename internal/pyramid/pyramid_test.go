package pyramid

import (
	"math/rand"
	"testing"

	"salsa/internal/hashing"
)

func TestPyramidSmallValuesExact(t *testing.T) {
	s := New(4, 4096, 6, 1)
	s.Update(1, 200) // fits layer 1
	if got := s.Query(1); got != 200 {
		t.Fatalf("Query = %d, want 200", got)
	}
	if got := s.Query(2); got != 0 {
		t.Fatalf("absent item = %d", got)
	}
}

func TestPyramidCarryChain(t *testing.T) {
	// 300 needs one carry: layer-1 keeps 300 mod 256 = 44, parent count 1.
	s := New(1, 4096, 6, 1)
	s.Update(1, 300)
	if got := s.Query(1); got != 300 {
		t.Fatalf("Query = %d, want 300", got)
	}
	// Push through several layers: value needing > 14 bits.
	s.Update(1, 100000)
	if got := s.Query(1); got != 100300 {
		t.Fatalf("Query = %d, want 100300", got)
	}
}

func TestPyramidOverestimates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := New(4, 256, 6, 7)
	truth := map[uint64]uint64{}
	for i := 0; i < 60000; i++ {
		x := uint64(rng.Intn(400))
		s.Update(x, 1)
		truth[x]++
	}
	for x, f := range truth {
		if est := s.Query(x); est < f {
			t.Fatalf("item %d: %d < truth %d", x, est, f)
		}
	}
}

func TestPyramidSharedParentBleed(t *testing.T) {
	// Two items on sibling layer-1 counters share parent count bits: each
	// reconstruction includes the other's carries (the paper's region-A
	// error). With a single row we can verify the over-count directly by
	// finding two items whose slots are pair siblings.
	s := New(1, 1024, 6, 11)
	var a, b uint64
	slotOf := func(x uint64) int {
		// mirror the sketch's hash
		return int(hashing.Index(x, s.seeds[0], s.mask))
	}
	a = 1
	for x := uint64(2); ; x++ {
		if slotOf(x) == slotOf(a)^1 {
			b = x
			break
		}
	}
	s.Update(a, 400) // one carry for a
	s.Update(b, 400) // one carry for b
	// Each sees the parent's two carries: estimate = 400 + 256.
	if got := s.Query(a); got != 656 {
		t.Fatalf("Query(a) = %d, want 656 (shared-parent bleed)", got)
	}
	if got := s.Query(b); got != 656 {
		t.Fatalf("Query(b) = %d, want 656", got)
	}
}

func TestPyramidTopLayerSaturates(t *testing.T) {
	s := New(1, 2, 2, 1) // tiny: 8-bit leaf + one 6-bit parent
	s.Update(1, 1<<20)
	// Capacity is 255 + 63·256; the estimate must be capped, not wrapped.
	want := uint64(63)<<8 | 0xff
	if got := s.Query(1); got > want {
		t.Fatalf("Query = %d beyond capacity %d", got, want)
	}
	if got := s.Query(1); got < want/2 {
		t.Fatalf("Query = %d suggests a wrapped counter", got)
	}
}

func TestPyramidSizeBits(t *testing.T) {
	s := New(2, 8, 3, 1)
	// Per row: 8 + 4 + 2 bytes.
	if got := s.SizeBits(); got != 2*(8+4+2)*8 {
		t.Fatalf("SizeBits = %d", got)
	}
}

func TestPyramidValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 8, 3, 1) },
		func() { New(1, 12, 3, 1) },
		func() { New(1, 8, 0, 1) },
		func() { New(1, 8, 3, 1).Update(1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
