// Package pyramid reimplements the Pyramid Sketch (Yang et al., VLDB 2017)
// as the paper's variable-counter-size competitor: pre-allocated layers of
// halving width, where an overflowing counter carries into its parent at the
// next layer. Parents are "hybrid" counters — two flag bits marking which
// children overflowed plus count bits that the two children share, which is
// the error source the SALSA paper highlights (Fig. 9, region A).
//
// Layer-1 counters are pure 8-bit counters; higher layers hold 2 flag bits
// and 6 count bits per byte. Reading a counter walks the flag chain upward,
// which is why Pyramid reads may touch several non-adjacent cells.
package pyramid

import (
	"fmt"

	"salsa/internal/hashing"
)

const (
	countBits = 6
	countMask = 0x3f
)

// Sketch is a d-row Pyramid Count-Min sketch: d hash functions index
// layer-1 counters, and the estimate is the minimum over rows. All layers
// of all rows share one contiguous byte arena, so the working set is one
// allocation and the whole counter state serializes as a single copy.
type Sketch struct {
	rows  []row
	seeds []uint64
	mask  uint64
	arena []byte
}

type row struct {
	layers [][]byte
}

// rowBytes returns the per-row arena footprint: w layer-1 bytes plus the
// halving higher layers.
func rowBytes(w, layers int) int {
	total, width := 0, w
	for l := 0; l < layers && width >= 1; l++ {
		total += width
		width /= 2
	}
	return total
}

// New returns a d-row Pyramid sketch with layer-1 width w (a power of two)
// and the given number of layers. Each higher layer halves the width, so
// the total footprint is just under 2·w bytes per row.
func New(d, w, layers int, seed uint64) *Sketch {
	if d <= 0 || layers < 1 {
		panic("pyramid: invalid geometry")
	}
	if w <= 0 || w&(w-1) != 0 {
		panic(fmt.Sprintf("pyramid: width %d must be a power of two", w))
	}
	arena := make([]byte, d*rowBytes(w, layers))
	rows := make([]row, d)
	next := arena
	for i := range rows {
		ls := make([][]byte, 0, layers)
		width := w
		for l := 0; l < layers && width >= 1; l++ {
			ls = append(ls, next[:width:width])
			next = next[width:]
			width /= 2
		}
		rows[i] = row{layers: ls}
	}
	return &Sketch{
		rows:  rows,
		seeds: hashing.Seeds(seed, d),
		mask:  uint64(w - 1),
		arena: arena,
	}
}

// Restore rebuilds a sketch from a serialized arena; state must be exactly
// the footprint New(d, w, layers, seed) allocates.
func Restore(d, w, layers int, seed uint64, state []byte) (*Sketch, error) {
	if d <= 0 || layers < 1 || w <= 0 || w&(w-1) != 0 {
		return nil, fmt.Errorf("pyramid: invalid geometry %d×%d (%d layers)", d, w, layers)
	}
	if len(state) != d*rowBytes(w, layers) {
		return nil, fmt.Errorf("pyramid: state length %d, geometry needs %d", len(state), d*rowBytes(w, layers))
	}
	s := New(d, w, layers, seed)
	copy(s.arena, state)
	return s, nil
}

// State returns the backing arena for serialization; treat it as read-only.
func (s *Sketch) State() []byte { return s.arena }

// Depth returns the number of rows.
func (s *Sketch) Depth() int { return len(s.rows) }

// Width returns the layer-1 width.
func (s *Sketch) Width() int { return int(s.mask) + 1 }

// Layers returns the effective layer count (the requested count, capped by
// the halving widths reaching one byte).
func (s *Sketch) Layers() int { return len(s.rows[0].layers) }

// Reset zeroes every counter, reusing the arena.
func (s *Sketch) Reset() {
	for i := range s.arena {
		s.arena[i] = 0
	}
}

// SizeBits returns the total pre-allocated footprint in bits; unlike SALSA,
// every layer is allocated up front whether or not it is ever used.
func (s *Sketch) SizeBits() int {
	total := 0
	for _, r := range s.rows {
		for _, l := range r.layers {
			total += len(l) * 8
		}
	}
	return total
}

// Update processes ⟨x, v⟩ with v ≥ 0 (Cash Register model).
func (s *Sketch) Update(x uint64, v int64) {
	if v < 0 {
		panic("pyramid: negative update")
	}
	for i := range s.rows {
		s.rows[i].add(int(hashing.Index(x, s.seeds[i], s.mask)), uint64(v))
	}
}

// UpdateBatch processes every item with weight v, in order.
func (s *Sketch) UpdateBatch(items []uint64, v int64) {
	for _, x := range items {
		s.Update(x, v)
	}
}

// Query returns the min-over-rows estimate, reconstructed by walking each
// row's flag chain.
func (s *Sketch) Query(x uint64) uint64 {
	est := ^uint64(0)
	for i := range s.rows {
		if v := s.rows[i].value(int(hashing.Index(x, s.seeds[i], s.mask))); v < est {
			est = v
		}
	}
	return est
}

func (r *row) add(slot int, v uint64) {
	c := uint64(r.layers[0][slot]) + v
	r.layers[0][slot] = byte(c)
	carry := c >> 8
	childIdx := slot
	for layer := 1; carry > 0 && layer < len(r.layers); layer++ {
		parentIdx := childIdx / 2
		flag := byte(0x80) >> (childIdx & 1)
		cell := r.layers[layer][parentIdx]
		cnt := uint64(cell&countMask) + carry
		if layer == len(r.layers)-1 && cnt > countMask {
			cnt = countMask // top layer saturates; no parent to carry into
		}
		r.layers[layer][parentIdx] = cell&^countMask | flag | byte(cnt&countMask)
		carry = cnt >> countBits
		childIdx = parentIdx
	}
}

func (r *row) value(slot int) uint64 {
	v := uint64(r.layers[0][slot])
	shift := uint(8)
	childIdx := slot
	for layer := 1; layer < len(r.layers); layer++ {
		parentIdx := childIdx / 2
		flag := byte(0x80) >> (childIdx & 1)
		cell := r.layers[layer][parentIdx]
		if cell&flag == 0 {
			break
		}
		v += uint64(cell&countMask) << shift
		shift += countBits
		childIdx = parentIdx
	}
	return v
}
