package distinct

import (
	"math"
	"math/rand"
	"testing"
)

func TestLinearCountingExactFraction(t *testing.T) {
	// With p = e^(-1), the estimate is exactly w.
	got, err := LinearCounting(1000, math.Exp(-1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1000) > 1e-9 {
		t.Fatalf("estimate = %f, want 1000", got)
	}
}

func TestLinearCountingOutOfRange(t *testing.T) {
	if _, err := LinearCounting(100, 0); err != ErrOutOfRange {
		t.Fatal("expected ErrOutOfRange")
	}
}

func TestLinearCountingClampsFraction(t *testing.T) {
	got, err := LinearCounting(100, 1.5)
	if err != nil || got != 0 {
		t.Fatalf("got %f, %v", got, err)
	}
}

func TestLinearCountingEndToEnd(t *testing.T) {
	// Simulate the bucket process directly: f0 balls into w buckets.
	const w = 1 << 14
	const f0 = 4000
	rng := rand.New(rand.NewSource(1))
	buckets := make([]bool, w)
	for i := 0; i < f0; i++ {
		buckets[rng.Intn(w)] = true
	}
	zero := 0
	for _, b := range buckets {
		if !b {
			zero++
		}
	}
	est, err := LinearCounting(w, float64(zero)/w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-f0)/f0 > 0.05 {
		t.Fatalf("estimate %f, want within 5%% of %d", est, f0)
	}
}

func TestStdErrorShrinksWithWidth(t *testing.T) {
	small := StdError(1<<10, 500)
	large := StdError(1<<16, 500)
	if large >= small {
		t.Fatalf("standard error did not shrink: %f vs %f", small, large)
	}
	if StdError(100, 0) != 0 {
		t.Fatal("zero f0 should yield 0")
	}
}
