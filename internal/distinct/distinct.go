// Package distinct implements the Linear Counting estimator of Whang,
// Vander-Zanden & Taylor that the paper applies to CMS rows for distinct
// counting (§III): with w buckets of which a fraction p remain zero, the
// number of distinct items is estimated as −w·ln(p).
package distinct

import (
	"errors"
	"math"
)

// ErrOutOfRange is returned when no buckets are zero, i.e. the load exceeds
// Linear Counting's operating range of roughly w·ln(w) items.
var ErrOutOfRange = errors.New("distinct: no zero buckets; linear counting out of range")

// LinearCounting estimates the distinct count from the fraction of zero
// buckets in a w-bucket array.
func LinearCounting(w int, zeroFraction float64) (float64, error) {
	if zeroFraction <= 0 {
		return 0, ErrOutOfRange
	}
	if zeroFraction > 1 {
		zeroFraction = 1
	}
	return -float64(w) * math.Log(zeroFraction), nil
}

// StdError returns the estimator's relative standard error
// √w·(e^(F0/w) − F0/w − 1) / F0 for a true distinct count f0, the accuracy
// expression the paper quotes; it improves as w grows.
func StdError(w int, f0 float64) float64 {
	if f0 <= 0 {
		return 0
	}
	t := f0 / float64(w)
	return math.Sqrt(float64(w)*(math.Exp(t)-t-1)) / f0
}
