package window

import (
	"reflect"
	"testing"
)

// bag is a trivial exact "sketch" for exercising ring mechanics: a multiset
// with sum-merge.
type bag struct {
	counts map[uint64]int
}

func bagOps() Ops[*bag] {
	return Ops[*bag]{
		New:   func() *bag { return &bag{counts: map[uint64]int{}} },
		Reset: func(b *bag) { clear(b.counts) },
		Merge: func(dst, src *bag) {
			for k, v := range src.counts {
				dst.counts[k] += v
			}
		},
	}
}

func (b *bag) add(x uint64) { b.counts[x]++ }

// fromScratch merges the live buckets into a fresh bag, the reference the
// incremental view must match.
func fromScratch(r *Ring[*bag]) map[uint64]int {
	out := map[uint64]int{}
	r.LiveBuckets(func(_ int, b *bag) {
		for k, v := range b.counts {
			out[k] += v
		}
	})
	return out
}

// TestRingViewMatchesFromScratch drives a ring through several rotations
// and checks the lazily-rebuilt view always equals a from-scratch merge of
// the live buckets, and that retired buckets' items leave the window.
func TestRingViewMatchesFromScratch(t *testing.T) {
	r := NewRing(3, 4, bagOps())
	for i := 0; i < 40; i++ {
		r.Cur().add(uint64(i))
		r.Wrote(1)
		if got, want := r.View().counts, fromScratch(r); !reflect.DeepEqual(got, want) {
			t.Fatalf("after %d items: view %v != from-scratch %v", i+1, got, want)
		}
	}
	// 40 items at 4 per bucket = 10 rotations; the live window holds the
	// last 2 full buckets plus the (empty) current one.
	if r.Rotations() != 10 {
		t.Fatalf("rotations = %d, want 10", r.Rotations())
	}
	if r.Volume() != 8 {
		t.Fatalf("window volume = %d, want 8", r.Volume())
	}
	view := r.View()
	if view.counts[0] != 0 {
		t.Fatal("item 0 should have rotated out of the window")
	}
	for x := uint64(32); x < 40; x++ {
		if view.counts[x] != 1 {
			t.Fatalf("item %d missing from the live window", x)
		}
	}
}

// TestRingManualTick pins caller-driven rotation: no auto-rotation happens
// regardless of volume, Room is unbounded, and Rotate slides the window.
func TestRingManualTick(t *testing.T) {
	r := NewRing(2, 0, bagOps())
	if r.Room() != ^uint64(0) {
		t.Fatal("manual ring must report unbounded room")
	}
	for i := 0; i < 100; i++ {
		r.Cur().add(7)
		r.Wrote(1)
	}
	if r.Rotations() != 0 {
		t.Fatal("manual ring rotated on its own")
	}
	if r.View().counts[7] != 100 {
		t.Fatalf("view count = %d, want 100", r.View().counts[7])
	}
	r.Rotate()
	if r.View().counts[7] != 100 { // still live: previous bucket is in-window
		t.Fatalf("after 1 tick count = %d, want 100", r.View().counts[7])
	}
	r.Rotate()
	if r.View().counts[7] != 0 { // retired after B ticks
		t.Fatalf("after 2 ticks count = %d, want 0", r.View().counts[7])
	}
}

// TestRingOnRotate checks the rotation hook fires with the new current
// index and that the ring walks positions oldest-to-newest in LiveBuckets.
func TestRingOnRotate(t *testing.T) {
	r := NewRing(3, 2, bagOps())
	var hooks []int
	r.OnRotate(func(cur int) { hooks = append(hooks, cur) })
	for i := 0; i < 7; i++ {
		r.Cur().add(uint64(i))
		r.Wrote(1)
	}
	if want := []int{1, 2, 0}; !reflect.DeepEqual(hooks, want) {
		t.Fatalf("rotation hooks %v, want %v", hooks, want)
	}
	var order []int
	r.LiveBuckets(func(i int, _ *bag) { order = append(order, i) })
	// Current bucket is 0 (after 3 rotations); oldest-to-newest is 1, 2, 0.
	if want := []int{1, 2, 0}; !reflect.DeepEqual(order, want) {
		t.Fatalf("live bucket order %v, want %v", order, want)
	}
	if r.CurIndex() != 0 {
		t.Fatalf("current index = %d, want 0", r.CurIndex())
	}
}
