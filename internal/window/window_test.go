package window

import (
	"reflect"
	"testing"
)

// bag is a trivial exact "sketch" for exercising ring mechanics: a multiset
// with sum-merge.
type bag struct {
	counts map[uint64]int
}

func bagOps() Ops[*bag] {
	return Ops[*bag]{
		New:   func() *bag { return &bag{counts: map[uint64]int{}} },
		Reset: func(b *bag) { clear(b.counts) },
		Merge: func(dst, src *bag) {
			for k, v := range src.counts {
				dst.counts[k] += v
			}
		},
	}
}

func (b *bag) add(x uint64) { b.counts[x]++ }

// fromScratch merges the live buckets into a fresh bag, the reference the
// incremental view must match.
func fromScratch(r *Ring[*bag]) map[uint64]int {
	out := map[uint64]int{}
	r.LiveBuckets(func(_ int, b *bag) {
		for k, v := range b.counts {
			out[k] += v
		}
	})
	return out
}

// TestRingViewMatchesFromScratch drives a ring through several rotations
// and checks the lazily-rebuilt view always equals a from-scratch merge of
// the live buckets, and that retired buckets' items leave the window.
func TestRingViewMatchesFromScratch(t *testing.T) {
	r := NewRing(3, 4, bagOps())
	for i := 0; i < 40; i++ {
		r.Cur().add(uint64(i))
		r.Wrote(1)
		if got, want := r.View().counts, fromScratch(r); !reflect.DeepEqual(got, want) {
			t.Fatalf("after %d items: view %v != from-scratch %v", i+1, got, want)
		}
	}
	// 40 items at 4 per bucket = 10 rotations; the live window holds the
	// last 2 full buckets plus the (empty) current one.
	if r.Rotations() != 10 {
		t.Fatalf("rotations = %d, want 10", r.Rotations())
	}
	if r.Volume() != 8 {
		t.Fatalf("window volume = %d, want 8", r.Volume())
	}
	view := r.View()
	if view.counts[0] != 0 {
		t.Fatal("item 0 should have rotated out of the window")
	}
	for x := uint64(32); x < 40; x++ {
		if view.counts[x] != 1 {
			t.Fatalf("item %d missing from the live window", x)
		}
	}
}

// TestRingManualTick pins caller-driven rotation: no auto-rotation happens
// regardless of volume, Room is unbounded, and Rotate slides the window.
func TestRingManualTick(t *testing.T) {
	r := NewRing(2, 0, bagOps())
	if r.Room() != ^uint64(0) {
		t.Fatal("manual ring must report unbounded room")
	}
	for i := 0; i < 100; i++ {
		r.Cur().add(7)
		r.Wrote(1)
	}
	if r.Rotations() != 0 {
		t.Fatal("manual ring rotated on its own")
	}
	if r.View().counts[7] != 100 {
		t.Fatalf("view count = %d, want 100", r.View().counts[7])
	}
	r.Rotate()
	if r.View().counts[7] != 100 { // still live: previous bucket is in-window
		t.Fatalf("after 1 tick count = %d, want 100", r.View().counts[7])
	}
	r.Rotate()
	if r.View().counts[7] != 0 { // retired after B ticks
		t.Fatalf("after 2 ticks count = %d, want 0", r.View().counts[7])
	}
}

// countingOps wraps bagOps and counts Merge calls, for amortized-cost pins.
func countingOps(merges *int) Ops[*bag] {
	ops := bagOps()
	inner := ops.Merge
	ops.Merge = func(dst, src *bag) { *merges++; inner(dst, src) }
	return ops
}

// TestRingViewAcrossBucketCounts drives rings of many sizes — including
// B=1, B=2 (degenerate stacks) and larger rings spanning several flip
// cycles — and checks the two-stack view equals a from-scratch merge of the
// live buckets after every write.
func TestRingViewAcrossBucketCounts(t *testing.T) {
	for _, b := range []int{1, 2, 3, 4, 5, 8, 16} {
		r := NewRing(b, 3, bagOps())
		for i := 0; i < 3*b*4+7; i++ {
			r.Cur().add(uint64(i % 11))
			r.Wrote(1)
			if got, want := r.View().counts, fromScratch(r); !reflect.DeepEqual(got, want) {
				t.Fatalf("B=%d after %d items: view %v != from-scratch %v", b, i+1, got, want)
			}
		}
	}
}

// TestRingVolumeRunningTotal pins Volume as a maintained running total: it
// must equal the per-bucket count sum at every step, across rotations.
func TestRingVolumeRunningTotal(t *testing.T) {
	r := NewRing(4, 5, bagOps())
	check := func() {
		t.Helper()
		var want uint64
		for i := 0; i < r.Buckets(); i++ {
			want += r.CountAt(i)
		}
		if got := r.Volume(); got != want {
			t.Fatalf("Volume %d != count sum %d", got, want)
		}
	}
	for i := 0; i < 100; i++ {
		r.Cur().add(uint64(i))
		r.Wrote(1)
		check()
	}
	for i := 0; i < 10; i++ {
		r.Rotate()
		check()
	}
}

// TestRingAmortizedMergesPerRotation pins the tentpole complexity claim:
// across whole flip cycles the ring performs a constant number of bucket
// merges per rotation (1 enqueue + amortized ~2 for flips), independent of
// B — where the previous design performed B−1 per rotation.
func TestRingAmortizedMergesPerRotation(t *testing.T) {
	for _, b := range []int{4, 16, 64} {
		var merges int
		r := NewRing(b, 0, countingOps(&merges))
		// Rotate through exactly 10 full flip cycles so the flip cost is
		// fairly amortized.
		rotations := 10 * (b - 1)
		for i := 0; i < rotations; i++ {
			r.Cur().add(uint64(i))
			r.Wrote(1)
			r.Rotate()
		}
		perRotation := float64(merges) / float64(rotations)
		if perRotation > 3.0 {
			t.Fatalf("B=%d: %.2f merges/rotation, want ≤ 3 (old design: %d)", b, perRotation, b-1)
		}
	}
}

// TestRingRestoreContinuesIdentically snapshots rings at every phase of the
// flip cycle — including the never-rotated state and the rotation just
// before a flip — restores them via RestoreRing, and drives original and
// restored side by side: views and bookkeeping must stay identical.
func TestRingRestoreContinuesIdentically(t *testing.T) {
	const b = 5
	for rotations := 0; rotations <= 3*(b-1)+1; rotations++ {
		orig := NewRing(b, 4, bagOps())
		item := uint64(0)
		feed := func(r *Ring[*bag], n int) {
			for i := 0; i < n; i++ {
				r.Cur().add(item % 13)
				r.Wrote(1)
				item++
			}
		}
		feed(orig, 4*rotations+2) // mid-bucket, `rotations` rotations in
		if orig.Rotations() != uint64(rotations) {
			t.Fatalf("setup: %d rotations, want %d", orig.Rotations(), rotations)
		}
		// Snapshot in storage order, as the envelope codec does.
		buckets := make([]*bag, b)
		counts := make([]uint64, b)
		for i := 0; i < b; i++ {
			src := orig.BucketAt(i)
			cp := &bag{counts: map[uint64]int{}}
			for k, v := range src.counts {
				cp.counts[k] = v
			}
			buckets[i] = cp
			counts[i] = orig.CountAt(i)
		}
		rest, err := RestoreRing(buckets, counts, orig.CurIndex(), orig.Rotations(), orig.Interval(), bagOps())
		if err != nil {
			t.Fatal(err)
		}
		if got, want := rest.Volume(), orig.Volume(); got != want {
			t.Fatalf("rotations=%d: restored volume %d != %d", rotations, got, want)
		}
		// Drive both through two more full flip cycles with identical input.
		save := item
		for step := 0; step < 2*(b-1)*4+5; step++ {
			item = save + uint64(step)
			orig.Cur().add(item % 13)
			orig.Wrote(1)
			rest.Cur().add(item % 13)
			rest.Wrote(1)
			if !reflect.DeepEqual(orig.View().counts, rest.View().counts) {
				t.Fatalf("rotations=%d step=%d: views diverge:\norig %v\nrest %v",
					rotations, step, orig.View().counts, rest.View().counts)
			}
			if orig.Rotations() != rest.Rotations() || orig.CurIndex() != rest.CurIndex() || orig.Volume() != rest.Volume() {
				t.Fatalf("rotations=%d step=%d: bookkeeping diverged", rotations, step)
			}
		}
	}
}

// TestRingOnRotate checks the rotation hook fires with the new current
// index and that the ring walks positions oldest-to-newest in LiveBuckets.
func TestRingOnRotate(t *testing.T) {
	r := NewRing(3, 2, bagOps())
	var hooks []int
	r.OnRotate(func(cur int) { hooks = append(hooks, cur) })
	for i := 0; i < 7; i++ {
		r.Cur().add(uint64(i))
		r.Wrote(1)
	}
	if want := []int{1, 2, 0}; !reflect.DeepEqual(hooks, want) {
		t.Fatalf("rotation hooks %v, want %v", hooks, want)
	}
	var order []int
	r.LiveBuckets(func(i int, _ *bag) { order = append(order, i) })
	// Current bucket is 0 (after 3 rotations); oldest-to-newest is 1, 2, 0.
	if want := []int{1, 2, 0}; !reflect.DeepEqual(order, want) {
		t.Fatalf("live bucket order %v, want %v", order, want)
	}
	if r.CurIndex() != 0 {
		t.Fatalf("current index = %d, want 0", r.CurIndex())
	}
}
