// Package window implements the sliding-window machinery shared by the
// public Windowed* sketches: a ring of B bucket sketches rotated by item
// count or caller-driven ticks, answering window queries from an
// incrementally-maintained merged view.
//
// The live window is the B most recent buckets; every update lands in the
// current bucket and a rotation retires the oldest bucket wholesale (its
// memory is Reset and reused as the new current bucket), so the window
// slides at bucket granularity. Two auxiliary sketches keep queries cheap:
//
//   - closed: the merge of every live bucket except the current one. It only
//     changes at rotation, where it is rebuilt with B−1 merges — amortized
//     over the bucket interval this is O(1) per update.
//   - view: closed merged with the current bucket, rebuilt lazily on the
//     first query after a write. Consecutive queries reuse it, so a query is
//     O(1) amortized instead of O(B·rows) bucket merges per call.
//
// Because every rebuild merges pristine sketches in oldest-to-newest bucket
// order, the view is bit-for-bit identical to a from-scratch merge of the
// live buckets — windowed queries inherit the exact guarantees of the
// backend's merge (Theorems V.1–V.3 for SALSA rows).
package window

import (
	"errors"
	"fmt"
)

// Ops supplies the sketch operations a Ring needs from its bucket type S;
// the public wrappers bind them to *sketch.CMS and *sketch.CountSketch.
type Ops[S any] struct {
	// New returns a fresh, empty bucket sketch. All buckets of one ring
	// must share hash seeds, or they could not merge.
	New func() S
	// Reset restores a bucket to its freshly-constructed state in place.
	Reset func(S)
	// Merge folds src into dst (dst ← dst ∪ src).
	Merge func(dst, src S)
}

// Ring is a rotating ring of B bucket sketches with a lazily-maintained
// merged view of the live window. It is not safe for concurrent use; wrap
// the public windowed types in the Sharded layer for that.
type Ring[S any] struct {
	ops     Ops[S]
	buckets []S
	counts  []uint64 // items recorded per bucket
	cur     int      // index of the current (newest, writable) bucket
	closed  S        // merge of live buckets except buckets[cur]
	view    S        // merge of all live buckets; valid iff viewOK
	viewOK  bool

	interval  uint64 // items per bucket; 0 = caller-driven ticks only
	rotations uint64
	onRotate  func(cur int) // optional rotation hook (new current index)
}

// NewRing returns a ring of buckets bucket sketches. interval > 0 rotates
// automatically every interval recorded items; interval == 0 leaves
// rotation to explicit Tick calls.
func NewRing[S any](buckets int, interval uint64, ops Ops[S]) *Ring[S] {
	if buckets <= 0 {
		panic("window: non-positive bucket count")
	}
	r := &Ring[S]{
		ops:      ops,
		buckets:  make([]S, buckets),
		counts:   make([]uint64, buckets),
		closed:   ops.New(),
		view:     ops.New(),
		interval: interval,
	}
	for i := range r.buckets {
		r.buckets[i] = ops.New()
	}
	return r
}

// Cur returns the current bucket; the wrapper applies updates to it
// directly and must follow every write with Wrote.
func (r *Ring[S]) Cur() S { return r.buckets[r.cur] }

// CurIndex returns the ring position of the current bucket (the index
// OnRotate reports).
func (r *Ring[S]) CurIndex() int { return r.cur }

// Buckets returns the number of buckets B.
func (r *Ring[S]) Buckets() int { return len(r.buckets) }

// Interval returns the automatic rotation interval (0 = manual).
func (r *Ring[S]) Interval() uint64 { return r.interval }

// Rotations returns the number of rotations performed so far.
func (r *Ring[S]) Rotations() uint64 { return r.rotations }

// Volume returns the number of items recorded in the live window.
func (r *Ring[S]) Volume() uint64 {
	var total uint64
	for _, c := range r.counts {
		total += c
	}
	return total
}

// CurCount returns the number of items recorded in the current bucket.
func (r *Ring[S]) CurCount() uint64 { return r.counts[r.cur] }

// Room returns how many more items the current bucket accepts before the
// ring auto-rotates; ^uint64(0) when rotation is caller-driven. Batch
// writers use it to split batches at rotation boundaries so batched and
// per-item ingestion stay bit-for-bit identical.
func (r *Ring[S]) Room() uint64 {
	if r.interval == 0 {
		return ^uint64(0)
	}
	return r.interval - r.counts[r.cur]
}

// OnRotate registers fn to run after every rotation with the index of the
// new current bucket (already Reset). The windowed heavy-hitter tracker
// uses it to retire the rotated bucket's candidate set.
func (r *Ring[S]) OnRotate(fn func(cur int)) { r.onRotate = fn }

// Wrote records that n items were just applied to the current bucket,
// invalidating the view and auto-rotating when the bucket interval fills.
// n must not overshoot Room.
func (r *Ring[S]) Wrote(n uint64) {
	r.viewOK = false
	r.counts[r.cur] += n
	if r.interval != 0 && r.counts[r.cur] >= r.interval {
		r.Rotate()
	}
}

// Rotate slides the window one bucket: the oldest bucket is retired (its
// sketch Reset for reuse as the new current bucket) and the closed-bucket
// merge is rebuilt from the remaining live buckets in oldest-to-newest
// order.
func (r *Ring[S]) Rotate() {
	b := len(r.buckets)
	r.cur = (r.cur + 1) % b
	r.ops.Reset(r.buckets[r.cur])
	r.counts[r.cur] = 0
	r.ops.Reset(r.closed)
	for i := 1; i < b; i++ {
		r.ops.Merge(r.closed, r.buckets[(r.cur+i)%b])
	}
	r.viewOK = false
	r.rotations++
	if r.onRotate != nil {
		r.onRotate(r.cur)
	}
}

// View returns the merge of every live bucket, rebuilding it if any write
// or rotation happened since the last call: one Reset plus two merges
// (closed, then the current bucket), regardless of B.
func (r *Ring[S]) View() S {
	if !r.viewOK {
		r.ops.Reset(r.view)
		r.ops.Merge(r.view, r.closed)
		r.ops.Merge(r.view, r.buckets[r.cur])
		r.viewOK = true
	}
	return r.view
}

// BucketAt returns the bucket at ring position i (0 ≤ i < Buckets), in
// storage order rather than age order; serialization walks positions so a
// restored ring is position-for-position identical.
func (r *Ring[S]) BucketAt(i int) S { return r.buckets[i] }

// CountAt returns the number of items recorded in the bucket at ring
// position i.
func (r *Ring[S]) CountAt(i int) uint64 { return r.counts[i] }

// RestoreRing reconstructs a ring from decoded buckets in storage order,
// the per-bucket item counts, the current-bucket position, and the
// rotation odometer. The closed-bucket merge is rebuilt with the same
// oldest-to-newest merge order Rotate uses, so a restored ring's query
// view is bit-for-bit identical to the original's.
func RestoreRing[S any](buckets []S, counts []uint64, cur int, rotations, interval uint64, ops Ops[S]) (*Ring[S], error) {
	if len(buckets) == 0 {
		return nil, errors.New("window: no buckets")
	}
	if len(counts) != len(buckets) {
		return nil, fmt.Errorf("window: %d counts for %d buckets", len(counts), len(buckets))
	}
	if cur < 0 || cur >= len(buckets) {
		return nil, fmt.Errorf("window: current bucket %d out of range [0,%d)", cur, len(buckets))
	}
	r := &Ring[S]{
		ops:       ops,
		buckets:   buckets,
		counts:    append([]uint64(nil), counts...),
		cur:       cur,
		closed:    ops.New(),
		view:      ops.New(),
		interval:  interval,
		rotations: rotations,
	}
	b := len(r.buckets)
	for i := 1; i < b; i++ {
		r.ops.Merge(r.closed, r.buckets[(r.cur+i)%b])
	}
	return r, nil
}

// LiveBuckets calls fn for every live bucket in oldest-to-newest order;
// the index is the bucket's ring position (as passed to OnRotate for the
// current bucket). Used by tests and the heavy-hitter candidate union.
func (r *Ring[S]) LiveBuckets(fn func(i int, b S)) {
	b := len(r.buckets)
	for off := 1; off <= b; off++ {
		i := (r.cur + off) % b
		fn(i, r.buckets[i])
	}
}
