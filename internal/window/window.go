// Package window implements the sliding-window machinery shared by the
// public Windowed* sketches: a ring of B bucket sketches rotated by item
// count or caller-driven ticks, answering window queries from an
// incrementally-maintained merged view.
//
// The live window is the B most recent buckets; every update lands in the
// current bucket and a rotation retires the oldest bucket wholesale (its
// memory is Reset and reused as the new current bucket), so the window
// slides at bucket granularity.
//
// The closed buckets (every live bucket except the current one) form a
// queue — rotation dequeues the oldest and enqueues the just-closed bucket —
// and their merge is maintained with the classic two-stack sliding-window
// aggregation: a "back" sketch accumulates newly closed buckets with one
// merge per rotation, and a "front" array holds precomputed suffix merges of
// the older segment, so dequeuing the oldest bucket is a pointer bump. When
// the front runs dry (every B−1 rotations) it is rebuilt from the back
// segment's raw buckets in 2(B−2)−1 merges — so each bucket is merged O(1)
// times per rotation regardless of B, where the previous design rebuilt the
// whole closed merge with B−1 merges on every rotation. A query view is
// rebuilt lazily on the first query after a write as
// merge(frontSuffix, back, current): at most three merges, regardless of B.
//
// This reassociates bucket merges (the view is no longer built strictly
// oldest-to-newest), which is sound because sketch union is associative and
// commutative: saturating non-negative addition and max are both
// order-independent, and a SALSA union's final layout is the least fixpoint
// over its block masses (pinned byte-for-byte by the TestMergeAssociativity*
// suite in internal/core, for all policies and Fixed/Salsa/SalsaSign/Tango).
// The one documented relaxation: signed counter arrays whose mixed-sign
// intermediate sums cross a counter-size (or ±saturation) threshold can
// merge to different layouts under different groupings — every grouping is
// still a valid mass-conserving union, but a windowed Count Sketch fed
// negative updates is guaranteed value-equivalent, not byte-identical, to a
// sequential merge of its buckets. With non-negative updates (and always
// for CMS/CUS) the view stays bit-for-bit identical to a from-scratch
// oldest-to-newest merge, and windowed queries inherit the exact guarantees
// of the backend's merge (Theorems V.1–V.3 for SALSA rows).
package window

import (
	"errors"
	"fmt"
)

// Ops supplies the sketch operations a Ring needs from its bucket type S;
// the public wrappers bind them to *sketch.CMS and *sketch.CountSketch.
type Ops[S any] struct {
	// New returns a fresh, empty bucket sketch. All buckets of one ring
	// must share hash seeds, or they could not merge.
	New func() S
	// Reset restores a bucket to its freshly-constructed state in place.
	Reset func(S)
	// Merge folds src into dst (dst ← dst ∪ src). Merge must be
	// associative and commutative up to the relaxation in the package doc;
	// the ring reassociates bucket merges freely.
	Merge func(dst, src S)
}

// Ring is a rotating ring of B bucket sketches with a lazily-maintained
// merged view of the live window and two-stack aggregation of the closed
// buckets (see the package doc). It is not safe for concurrent use; wrap
// the public windowed types in the Sharded layer for that.
type Ring[S any] struct {
	ops     Ops[S]
	buckets []S
	counts  []uint64 // items recorded per bucket
	cur     int      // index of the current (newest, writable) bucket

	// Two-stack aggregation of the closed-bucket queue. front[k] holds the
	// merge of the flip-time buckets k..B−2 (suffixes toward the newest);
	// front[frontPos] is the live aggregate of the front segment and each
	// rotation pops by incrementing frontPos. back accumulates the backN
	// buckets closed since the last flip. Invariant once rotation starts:
	// frontLen + backN == B−1 with frontLen = B−1−frontPos.
	front    []S
	frontPos int
	frontLow int // lowest front index holding an allocated sketch
	back     S
	backN    int

	view   S // merge of all live buckets; valid iff viewOK
	viewOK bool
	volume uint64 // running Σ counts (live-window item total)

	interval  uint64 // items per bucket; 0 = caller-driven ticks only
	rotations uint64
	onRotate  func(cur int) // optional rotation hook (new current index)
}

// NewRing returns a ring of buckets bucket sketches. interval > 0 rotates
// automatically every interval recorded items; interval == 0 leaves
// rotation to explicit Tick calls.
func NewRing[S any](buckets int, interval uint64, ops Ops[S]) *Ring[S] {
	if buckets <= 0 {
		panic("window: non-positive bucket count")
	}
	r := &Ring[S]{
		ops:      ops,
		buckets:  make([]S, buckets),
		counts:   make([]uint64, buckets),
		back:     ops.New(),
		view:     ops.New(),
		interval: interval,
	}
	for i := range r.buckets {
		r.buckets[i] = ops.New()
	}
	r.initStacks(0)
	return r
}

// initStacks sets the two-stack bookkeeping for a ring that has rotated
// rotations times; the aggregates themselves are rebuilt by the caller
// (they start empty for a fresh ring). Front suffix sketches are allocated
// lazily at the first flip, so small or never-rotating rings never pay for
// them.
func (r *Ring[S]) initStacks(rotations uint64) {
	b := len(r.buckets)
	r.front = make([]S, max(b-1, 0))
	r.frontLow = b - 1
	r.frontPos = b - 1
	r.backN = b - 1
	if b == 1 {
		r.frontPos, r.backN = 0, 0
		return
	}
	if rotations > 0 {
		// Flips fire on rotations r ≡ 1 (mod B−1); p pops have happened
		// since the last one (including the flip rotation's own pop).
		p := int((rotations-1)%uint64(b-1)) + 1
		r.frontPos = p
		r.backN = p
	}
}

// Cur returns the current bucket; the wrapper applies updates to it
// directly and must follow every write with Wrote.
func (r *Ring[S]) Cur() S { return r.buckets[r.cur] }

// CurIndex returns the ring position of the current bucket (the index
// OnRotate reports).
func (r *Ring[S]) CurIndex() int { return r.cur }

// Buckets returns the number of buckets B.
func (r *Ring[S]) Buckets() int { return len(r.buckets) }

// Interval returns the automatic rotation interval (0 = manual).
func (r *Ring[S]) Interval() uint64 { return r.interval }

// Rotations returns the number of rotations performed so far.
func (r *Ring[S]) Rotations() uint64 { return r.rotations }

// Volume returns the number of items recorded in the live window. It is a
// running total maintained by Wrote and Rotate, not an O(B) scan.
func (r *Ring[S]) Volume() uint64 { return r.volume }

// CurCount returns the number of items recorded in the current bucket.
func (r *Ring[S]) CurCount() uint64 { return r.counts[r.cur] }

// Sketches returns the number of bucket-sized sketches the ring owns at
// steady state: B buckets, the back aggregate and the query view, plus the
// B−2 front suffix aggregates once the first flip has allocated them.
// MemoryBits reporting uses it.
func (r *Ring[S]) Sketches() int {
	return len(r.buckets) + 2 + max(len(r.buckets)-2, 0)
}

// Room returns how many more items the current bucket accepts before the
// ring auto-rotates; ^uint64(0) when rotation is caller-driven. Batch
// writers use it to split batches at rotation boundaries so batched and
// per-item ingestion stay bit-for-bit identical.
func (r *Ring[S]) Room() uint64 {
	if r.interval == 0 {
		return ^uint64(0)
	}
	return r.interval - r.counts[r.cur]
}

// OnRotate registers fn to run after every rotation with the index of the
// new current bucket (already Reset). The windowed heavy-hitter tracker
// uses it to retire the rotated bucket's candidate set.
func (r *Ring[S]) OnRotate(fn func(cur int)) { r.onRotate = fn }

// Wrote records that n items were just applied to the current bucket,
// invalidating the view and auto-rotating when the bucket interval fills.
// n must not overshoot Room.
func (r *Ring[S]) Wrote(n uint64) {
	r.viewOK = false
	r.counts[r.cur] += n
	r.volume += n
	if r.interval != 0 && r.counts[r.cur] >= r.interval {
		r.Rotate()
	}
}

// Rotate slides the window one bucket: the oldest bucket is dequeued from
// the closed-window aggregate (a front-stack pop, rebuilding the front from
// the back segment first if it ran dry) and retired — its sketch Reset for
// reuse as the new current bucket — while the just-closed bucket merges
// into the back aggregate. Amortized cost is O(1) bucket merges per
// rotation regardless of B; a flip rotation peaks at O(B).
func (r *Ring[S]) Rotate() {
	b := len(r.buckets)
	old := r.cur
	r.cur = (r.cur + 1) % b
	if b > 1 {
		if r.frontPos == b-1 {
			r.flip()
		}
		r.frontPos++
		r.ops.Merge(r.back, r.buckets[old])
		r.backN++
	}
	r.volume -= r.counts[r.cur]
	r.ops.Reset(r.buckets[r.cur])
	r.counts[r.cur] = 0
	r.viewOK = false
	r.rotations++
	if r.onRotate != nil {
		r.onRotate(r.cur)
	}
}

// flip rebuilds the front suffix aggregates from the raw closed buckets
// (which at this instant are exactly the back segment) and empties the
// back. It runs while the retiring bucket still holds its data — the
// caller's immediately following pop discards the only entry containing it,
// so entry 0 is never built at all.
func (r *Ring[S]) flip() {
	r.rebuildFront(r.cur, 1)
	r.frontPos = 0
	r.ops.Reset(r.back)
	r.backN = 0
}

// rebuildFront (re)computes front[k] for k in [from, B−1), where flip-age k
// maps to buckets[(base+k)%B], allocating suffix sketches on first use.
// Both flip and RestoreRing go through here with identical merge order, so
// a restored ring's aggregates are byte-for-byte the ones the original ring
// built at its last flip.
func (r *Ring[S]) rebuildFront(base, from int) {
	b := len(r.buckets)
	for k := b - 2; k >= from; k-- {
		if k < r.frontLow {
			r.front[k] = r.ops.New()
			r.frontLow = k
		}
		e := r.front[k]
		r.ops.Reset(e)
		r.ops.Merge(e, r.buckets[(base+k)%b])
		if k < b-2 {
			r.ops.Merge(e, r.front[k+1])
		}
	}
}

// View returns the merge of every live bucket, rebuilding it if any write
// or rotation happened since the last call: one Reset plus at most three
// merges (front suffix, back, current bucket), regardless of B.
func (r *Ring[S]) View() S {
	if !r.viewOK {
		r.ops.Reset(r.view)
		if r.frontPos < len(r.buckets)-1 {
			r.ops.Merge(r.view, r.front[r.frontPos])
		}
		if r.backN > 0 {
			r.ops.Merge(r.view, r.back)
		}
		r.ops.Merge(r.view, r.buckets[r.cur])
		r.viewOK = true
	}
	return r.view
}

// BucketAt returns the bucket at ring position i (0 ≤ i < Buckets), in
// storage order rather than age order; serialization walks positions so a
// restored ring is position-for-position identical.
func (r *Ring[S]) BucketAt(i int) S { return r.buckets[i] }

// CountAt returns the number of items recorded in the bucket at ring
// position i.
func (r *Ring[S]) CountAt(i int) uint64 { return r.counts[i] }

// RestoreRing reconstructs a ring from decoded buckets in storage order,
// the per-bucket item counts, the current-bucket position, and the
// rotation odometer. The two-stack state is a pure function of the odometer
// (flips fire every B−1 rotations), so the back aggregate and the live
// front suffixes are rebuilt exactly as the original ring built them — a
// restored ring's query view and all future rotations are bit-for-bit
// identical to the original's.
func RestoreRing[S any](buckets []S, counts []uint64, cur int, rotations, interval uint64, ops Ops[S]) (*Ring[S], error) {
	if len(buckets) == 0 {
		return nil, errors.New("window: no buckets")
	}
	if len(counts) != len(buckets) {
		return nil, fmt.Errorf("window: %d counts for %d buckets", len(counts), len(buckets))
	}
	if cur < 0 || cur >= len(buckets) {
		return nil, fmt.Errorf("window: current bucket %d out of range [0,%d)", cur, len(buckets))
	}
	r := &Ring[S]{
		ops:       ops,
		buckets:   buckets,
		counts:    append([]uint64(nil), counts...),
		cur:       cur,
		back:      ops.New(),
		view:      ops.New(),
		interval:  interval,
		rotations: rotations,
	}
	for _, c := range r.counts {
		r.volume += c
	}
	r.initStacks(rotations)
	b := len(r.buckets)
	if b > 1 {
		// Fold the back segment — the backN newest closed buckets — in
		// enqueue (oldest-to-newest) order, matching the original's
		// rotation-by-rotation merges.
		for j := b - 1 - r.backN; j <= b-2; j++ {
			r.ops.Merge(r.back, r.buckets[(cur+1+j)%b])
		}
		if r.frontPos < b-1 {
			// Live front suffixes cover flip-ages frontPos..B−2; the flip
			// happened frontPos−1 rotations ago, so flip-age k maps to
			// buckets[(cur+1+k−frontPos)%B].
			base := (cur + 1 - r.frontPos + b) % b
			r.rebuildFront(base, r.frontPos)
		}
	}
	return r, nil
}

// LiveBuckets calls fn for every live bucket in oldest-to-newest order;
// the index is the bucket's ring position (as passed to OnRotate for the
// current bucket). Used by tests and the heavy-hitter candidate union.
func (r *Ring[S]) LiveBuckets(fn func(i int, b S)) {
	b := len(r.buckets)
	for off := 1; off <= b; off++ {
		i := (r.cur + off) % b
		fn(i, r.buckets[i])
	}
}
