package salsa

// Zero-allocation regression suite: every steady-state ingestion and query
// path must run without heap allocation — the hot loops are the product's
// whole point, and a single boxed value per op would dominate the ns/op
// budget. Each case warms the op first so lazily-built scratch (batch
// buffers, windowed merge views) is in place, then asserts
// testing.AllocsPerRun == 0. CI runs these without -race (the race
// detector's instrumentation allocates).
//
// Every sketch here is constructed through the Spec algebra and
// salsa.Build — the suite doubles as the guarantee that the composable
// facade returns the same concrete monomorphic types underneath and costs
// nothing on the devirtualized hot paths of PR 3.

import (
	"fmt"
	"testing"
)

// assertZeroAllocs runs op once to warm lazy scratch, then asserts the
// steady state allocates nothing.
func assertZeroAllocs(t *testing.T, name string, op func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	op()
	if avg := testing.AllocsPerRun(100, op); avg != 0 {
		t.Errorf("%s: %v allocs/op, want 0", name, avg)
	}
}

var allocItems = func() []uint64 {
	items := make([]uint64, 512)
	for i := range items {
		items[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	return items
}()

func TestZeroAllocCountMin(t *testing.T) {
	for _, mode := range []Mode{ModeSALSA, ModeBaseline, ModeTango} {
		for _, conservative := range []bool{false, true} {
			opt := Options{Width: 1 << 10, Mode: mode, Seed: 1}
			spec := CountMinOf(opt)
			if conservative {
				spec = ConservativeOf(opt)
			}
			cm := MustBuild(spec).(*CountMin)
			tag := fmt.Sprintf("%s/conservative=%v", mode, conservative)
			cm.IncrementBatch(allocItems)
			dst := make([]uint64, len(allocItems))
			i := 0
			assertZeroAllocs(t, tag+"/Update", func() { cm.Update(allocItems[i%512], 1); i++ })
			assertZeroAllocs(t, tag+"/Query", func() { _ = cm.Query(allocItems[i%512]); i++ })
			assertZeroAllocs(t, tag+"/UpdateBatch", func() { cm.UpdateBatch(allocItems, 1) })
			assertZeroAllocs(t, tag+"/QueryBatch", func() { cm.QueryBatch(allocItems, dst) })
		}
	}
}

func TestZeroAllocCountMinCompact(t *testing.T) {
	cm := MustBuild(CountMinOf(Options{Width: 1 << 10, CompactEncoding: true, Seed: 1})).(*CountMin)
	cm.IncrementBatch(allocItems)
	i := 0
	assertZeroAllocs(t, "compact/Update", func() { cm.Update(allocItems[i%512], 1); i++ })
	assertZeroAllocs(t, "compact/Query", func() { _ = cm.Query(allocItems[i%512]); i++ })
}

func TestZeroAllocCountSketch(t *testing.T) {
	for _, mode := range []Mode{ModeSALSA, ModeBaseline} {
		cs := MustBuild(CountSketchOf(Options{Width: 1 << 10, Mode: mode, Seed: 1})).(*CountSketch)
		tag := mode.String()
		cs.IncrementBatch(allocItems)
		dst := make([]int64, len(allocItems))
		i := 0
		assertZeroAllocs(t, tag+"/Update", func() { cs.Update(allocItems[i%512], 1); i++ })
		assertZeroAllocs(t, tag+"/Query", func() { _ = cs.Query(allocItems[i%512]); i++ })
		assertZeroAllocs(t, tag+"/UpdateBatch", func() { cs.UpdateBatch(allocItems, 1) })
		assertZeroAllocs(t, tag+"/QueryBatch", func() { cs.QueryBatch(allocItems, dst) })
	}
}

func TestZeroAllocWindowed(t *testing.T) {
	// Rotation interval small enough that the steady state crosses bucket
	// boundaries: rotations themselves must not allocate either.
	wcm := MustBuild(Windowed(CountMinOf(Options{Width: 1 << 10, Seed: 1}), 4, 1<<12)).(*WindowedCountMin)
	wcu := MustBuild(Windowed(ConservativeOf(Options{Width: 1 << 10, Seed: 1}), 4, 1<<12)).(*WindowedCountMin)
	wcs := MustBuild(Windowed(CountSketchOf(Options{Width: 1 << 10, Seed: 1}), 4, 1<<12)).(*WindowedCountSketch)
	udst := make([]uint64, len(allocItems))
	sdst := make([]int64, len(allocItems))
	for _, w := range []struct {
		tag         string
		update      func(uint64)
		query       func(uint64)
		updateBatch func()
		queryBatch  func()
		tick        func()
	}{
		{"countmin",
			wcm.Increment, func(x uint64) { _ = wcm.Query(x) },
			func() { wcm.IncrementBatch(allocItems) }, func() { wcm.QueryBatch(allocItems, udst) },
			wcm.Tick},
		{"conservative",
			wcu.Increment, func(x uint64) { _ = wcu.Query(x) },
			func() { wcu.IncrementBatch(allocItems) }, func() { wcu.QueryBatch(allocItems, udst) },
			wcu.Tick},
		{"countsketch",
			wcs.Increment, func(x uint64) { _ = wcs.Query(x) },
			func() { wcs.IncrementBatch(allocItems) }, func() { wcs.QueryBatch(allocItems, sdst) },
			wcs.Tick},
	} {
		w.updateBatch()
		i := 0
		assertZeroAllocs(t, "windowed/"+w.tag+"/Update", func() { w.update(allocItems[i%512]); i++ })
		assertZeroAllocs(t, "windowed/"+w.tag+"/Query", func() { w.query(allocItems[i%512]); i++ })
		assertZeroAllocs(t, "windowed/"+w.tag+"/UpdateBatch", w.updateBatch)
		assertZeroAllocs(t, "windowed/"+w.tag+"/QueryBatch", w.queryBatch)
		assertZeroAllocs(t, "windowed/"+w.tag+"/Tick", w.tick)
	}
}

// TestZeroAllocPromoted extends the suite to the sketches folded into the
// Spec algebra by PR 6: the promotion must not cost the hot paths their
// zero-allocation steady state.
func TestZeroAllocPromoted(t *testing.T) {
	opt := Options{Width: 1 << 10, Seed: 1}
	um := MustBuild(UnivMonOf(opt, 8, 32)).(*UnivMon)
	aeeS := MustBuild(AEEOf(opt)).(*AEE)
	aeeB := MustBuild(AEEOf(Options{Width: 1 << 10, Mode: ModeBaseline, Seed: 1})).(*AEE)
	d := MustBuild(DistinctOf(opt)).(*Distinct)
	cf := MustBuild(Filtered(ConservativeOf(opt))).(*ColdFilter)
	py := MustBuild(Tiered(CountMinOf(opt))).(*Pyramid)
	for _, s := range []struct {
		tag string
		one func(uint64)
		qry func(uint64)
		bat func()
	}{
		{"univmon", func(x uint64) { um.Update(x, 1) }, func(x uint64) { _ = um.Volume() },
			func() { um.UpdateBatch(allocItems, 1) }},
		{"aee-salsa", func(x uint64) { aeeS.Update(x, 1) }, func(x uint64) { _ = aeeS.Query(x) },
			func() { aeeS.UpdateBatch(allocItems, 1) }},
		{"aee-baseline", func(x uint64) { aeeB.Update(x, 1) }, func(x uint64) { _ = aeeB.Query(x) },
			func() { aeeB.UpdateBatch(allocItems, 1) }},
		{"distinct", d.Increment, func(x uint64) { _ = d.Query(x) },
			func() { d.UpdateBatch(allocItems, 1) }},
		{"coldfilter", func(x uint64) { cf.Update(x, 1) }, func(x uint64) { _ = cf.Query(x) },
			func() { cf.UpdateBatch(allocItems, 1) }},
		{"pyramid", py.Increment, func(x uint64) { _ = py.Query(x) },
			func() { py.UpdateBatch(allocItems, 1) }},
	} {
		s.bat()
		i := 0
		assertZeroAllocs(t, s.tag+"/Update", func() { s.one(allocItems[i%512]); i++ })
		assertZeroAllocs(t, s.tag+"/Query", func() { s.qry(allocItems[i%512]); i++ })
		assertZeroAllocs(t, s.tag+"/UpdateBatch", s.bat)
	}
}

func TestZeroAllocSharded(t *testing.T) {
	cm := MustBuild(ShardedBy(CountMinOf(Options{Width: 1 << 10, Seed: 1}), 4)).(*ShardedCountMin)
	cs := MustBuild(ShardedBy(CountSketchOf(Options{Width: 1 << 10, Seed: 1}), 4)).(*ShardedCountSketch)
	cm.IncrementBatch(allocItems)
	cs.IncrementBatch(allocItems)
	i := 0
	assertZeroAllocs(t, "sharded/countmin/Increment", func() { cm.Increment(allocItems[i%512]); i++ })
	assertZeroAllocs(t, "sharded/countmin/Query", func() { _ = cm.Query(allocItems[i%512]); i++ })
	assertZeroAllocs(t, "sharded/countsketch/Increment", func() { cs.Increment(allocItems[i%512]); i++ })
	assertZeroAllocs(t, "sharded/countsketch/Query", func() { _ = cs.Query(allocItems[i%512]); i++ })
}
