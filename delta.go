package salsa

// Generic merge/subtract/clone arithmetic over decoded Sketch values.
//
// The per-type Merge/Subtract methods (CountMin.Merge, CountSketch.Subtract,
// ...) panic on incompatible operands, which is the right contract for
// callers that built both sides themselves. A distributed aggregator works
// the other way around: it holds sketches decoded from envelopes sent by
// remote (possibly hostile, possibly misconfigured) peers and must reject
// bad pairs with an error, not a panic. MergeInto/SubtractInto are that
// error-returning surface, and DeltaCore/CloneSketch round out what a
// delta-shipping protocol needs: unwrapping a concurrent ingest layer to
// its mergeable view, and deep-copying a sketch through the envelope codec.

import (
	"fmt"
)

// A DeltaError reports that a sketch (or a pair of sketches) is outside
// the domain of the generic merge/subtract arithmetic: an unsupported
// topology, mismatched operand types or Options, or a backend with no
// subtract kernel. Callers distinguish it from transport or payload
// corruption errors with errors.As.
type DeltaError struct {
	// Op is the rejected operation ("merge", "subtract", "delta core").
	Op string
	// Reason says what ruled the operand(s) out.
	Reason string
}

func (e *DeltaError) Error() string {
	return fmt.Sprintf("salsa: %s: %s", e.Op, e.Reason)
}

func deltaErrf(op, format string, args ...any) error {
	return &DeltaError{Op: op, Reason: fmt.Sprintf(format, args...)}
}

// DeltaCore unwraps s to the backend that merge/subtract arithmetic runs
// on: an epoch ingest layer yields its shared read view, a plain CountMin
// or CountSketch yields itself. Topologies whose combine semantics are not
// plain counter-wise sums — windows (counts leave on rotation, so deltas
// are not monotone), shards, trackers, and the estimator sketches — return
// a *DeltaError.
//
// The caller owns the coordination: for an epoch layer, flush writers and
// Advance before touching the returned view, and do not mutate it
// concurrently with drains.
func DeltaCore(s Sketch) (Sketch, error) {
	switch t := s.(type) {
	case *CountMin:
		return t, nil
	case *CountSketch:
		return t, nil
	case *EpochCountMin:
		return t.View(), nil
	case *EpochCountSketch:
		return t.View(), nil
	default:
		return nil, deltaErrf("delta core", "topology %T has no counter-wise mergeable core", s)
	}
}

// CloneSketch deep-copies s through the universal envelope codec. The
// clone shares seeds (so it stays merge-compatible with the original) but
// no storage; for the envelope-supported topologies the clone's marshaled
// bytes are identical to the original's.
func CloneSketch(s Sketch) (Sketch, error) {
	blob, err := Marshal(s)
	if err != nil {
		return nil, err
	}
	return Unmarshal(blob)
}

// MergeInto folds src into dst counter-wise (dst ∪ src under dst's merge
// policy), like CountMin.Merge/CountSketch.Merge but rejecting mismatched
// or incompatible operands with an error instead of panicking. Both
// operands must be the same concrete type with equal Options.
func MergeInto(dst, src Sketch) error {
	switch d := dst.(type) {
	case *CountMin:
		s, err := asCountMin("merge", src, d)
		if err != nil {
			return err
		}
		d.sk.MergeFrom(s.sk)
		return nil
	case *CountSketch:
		s, err := asCountSketch("merge", src, d)
		if err != nil {
			return err
		}
		d.sk.MergeFrom(s.sk, 1)
		return nil
	default:
		return deltaErrf("merge", "unsupported destination topology %T", dst)
	}
}

// SubtractInto subtracts src from dst counter-wise (dst − src), producing
// the delta sketch of the paper's change-detection and delta-shipping use
// cases. It requires sum-merge semantics: a MergeMax CountMin has no
// meaningful inverse, and Tango rows have no subtract kernel — both return
// a *DeltaError. The subtrahend must be "contained" in dst (every counter
// ≤ its dst counterpart, as when src is an earlier snapshot of dst);
// otherwise unsigned CountMin counters underflow.
func SubtractInto(dst, src Sketch) error {
	switch d := dst.(type) {
	case *CountMin:
		s, err := asCountMin("subtract", src, d)
		if err != nil {
			return err
		}
		if d.opt.Mode == ModeTango {
			return deltaErrf("subtract", "ModeTango rows have no subtract kernel")
		}
		if d.opt.Merge != MergeSum {
			return deltaErrf("subtract", "%v sketches have no inverse; build with Merge: MergeSum", d.opt.Merge)
		}
		d.sk.SubtractFrom(s.sk)
		return nil
	case *CountSketch:
		s, err := asCountSketch("subtract", src, d)
		if err != nil {
			return err
		}
		d.sk.MergeFrom(s.sk, -1)
		return nil
	default:
		return deltaErrf("subtract", "unsupported destination topology %T", dst)
	}
}

// asCountMin checks that src is a *CountMin compatible with dst.
func asCountMin(op string, src Sketch, dst *CountMin) (*CountMin, error) {
	s, ok := src.(*CountMin)
	if !ok {
		return nil, deltaErrf(op, "operand type mismatch: %T vs %T", dst, src)
	}
	if s.opt != dst.opt {
		return nil, deltaErrf(op, "operand Options differ: %+v vs %+v", dst.opt, s.opt)
	}
	if s.conservative != dst.conservative {
		return nil, deltaErrf(op, "cannot combine conservative-update and plain CountMin sketches")
	}
	if err := dst.sk.CompatibleWith(s.sk); err != nil {
		return nil, deltaErrf(op, "%v", err)
	}
	return s, nil
}

// asCountSketch checks that src is a *CountSketch compatible with dst.
func asCountSketch(op string, src Sketch, dst *CountSketch) (*CountSketch, error) {
	s, ok := src.(*CountSketch)
	if !ok {
		return nil, deltaErrf(op, "operand type mismatch: %T vs %T", dst, src)
	}
	if s.opt != dst.opt {
		return nil, deltaErrf(op, "operand Options differ: %+v vs %+v", dst.opt, s.opt)
	}
	if err := dst.sk.CompatibleWith(s.sk); err != nil {
		return nil, deltaErrf(op, "%v", err)
	}
	return s, nil
}

// DeltaCapable reports whether s can serve as the backend of a
// delta-shipping protocol: its DeltaCore must exist and support exact
// subtract (sum merge, no Tango rows). It returns nil for capable
// sketches and a *DeltaError explaining the obstruction otherwise.
func DeltaCapable(s Sketch) error {
	core, err := DeltaCore(s)
	if err != nil {
		return err
	}
	if cm, ok := core.(*CountMin); ok {
		if cm.opt.Mode == ModeTango {
			return deltaErrf("delta core", "ModeTango rows have no subtract kernel")
		}
		if cm.opt.Merge != MergeSum {
			return deltaErrf("delta core", "%v sketches have no inverse; build with Merge: MergeSum", cm.opt.Merge)
		}
	}
	return nil
}
