module salsa

go 1.24
