package salsa

import (
	"fmt"
	"strings"
)

// ParseSpec parses a topology expression into a Spec, with every leaf
// taking opt as its Options. It is the inverse of Spec.String and the
// textual surface of the algebra (salsabench's -topology flag). Grammar,
// whitespace-insensitive:
//
//	expr := "cms" | "cus" | "cs" | "aee" | "distinct"
//	      | "monitor(" k ")"
//	      | "topk(" k ")"
//	      | "univmon(" levels "," k ")"
//	      | "filtered(" expr ")"
//	      | "tiered(" expr ")"
//	      | "windowed(" buckets "," bucketItems "," expr ")"
//	      | "sharded(" shards "," expr ")"
//	      | "epoch(" writers "," expr ")"
//
// e.g. "sharded(8,windowed(4,65536,cms))". ParseSpec only checks syntax;
// composition and Options validity are reported by Build.
func ParseSpec(expr string, opt Options) (Spec, error) {
	p := &specParser{s: expr, opt: opt}
	spec, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.s) {
		return nil, parseErrf(p.pos, "trailing input %q in topology expression", p.s[p.pos:])
	}
	return spec, nil
}

// A ParseError reports a topology expression ParseSpec rejects, with
// the byte offset of the offending token. errors.As-match it to recover
// the position for editor-style caret diagnostics.
type ParseError struct {
	// Offset is the byte position in the expression where parsing failed.
	Offset int
	// Reason states what the parser expected or found.
	Reason string
}

func (e *ParseError) Error() string { return "salsa: " + e.Reason }

// parseErrf builds a *ParseError at offset.
func parseErrf(offset int, format string, args ...any) error {
	return &ParseError{Offset: offset, Reason: fmt.Sprintf(format, args...)}
}

type specParser struct {
	s     string
	pos   int
	depth int
	opt   Options
}

// maxParseDepth bounds decorator nesting so hostile expressions like a
// thousand-deep "filtered(filtered(..." cannot exhaust the parse stack;
// the algebra never composes more than a handful of layers.
const maxParseDepth = 64

func (p *specParser) skipSpace() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t' || p.s[p.pos] == '\n' || p.s[p.pos] == '\r') {
		p.pos++
	}
}

// ident consumes a lowercase identifier.
func (p *specParser) ident() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if (c < 'a' || c > 'z') && (c < 'A' || c > 'Z') {
			break
		}
		p.pos++
	}
	return p.s[start:p.pos]
}

func (p *specParser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.s) || p.s[p.pos] != c {
		return parseErrf(p.pos, "expected %q at position %d of topology expression %q", string(c), p.pos, p.s)
	}
	p.pos++
	return nil
}

// number consumes a non-negative decimal integer.
func (p *specParser) number() (int, error) {
	p.skipSpace()
	start := p.pos
	n := 0
	for p.pos < len(p.s) && p.s[p.pos] >= '0' && p.s[p.pos] <= '9' {
		d := int(p.s[p.pos] - '0')
		if n > (1<<31-1-d)/10 {
			return 0, parseErrf(start, "number too large at position %d of topology expression %q", start, p.s)
		}
		n = n*10 + d
		p.pos++
	}
	if p.pos == start {
		return 0, parseErrf(p.pos, "expected a number at position %d of topology expression %q", p.pos, p.s)
	}
	return n, nil
}

func (p *specParser) parseExpr() (Spec, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxParseDepth {
		return nil, parseErrf(p.pos, "topology expression nests deeper than %d decorators", maxParseDepth)
	}
	name := strings.ToLower(p.ident())
	switch name {
	case "cms", "countmin":
		return CountMinOf(p.opt), nil
	case "cus", "conservative":
		return ConservativeOf(p.opt), nil
	case "cs", "countsketch":
		return CountSketchOf(p.opt), nil
	case "aee":
		return AEEOf(p.opt), nil
	case "distinct":
		return DistinctOf(p.opt), nil
	case "univmon":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		levels, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		k, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		// Spell the leaf directly rather than via UnivMonOf: the parser is
		// the inverse of String, so "univmon(0,0)" must not silently turn
		// into the defaults — Build reports the invalid geometry instead.
		return leafSpec{kind: kindUnivMon, opt: p.opt, k: k, levels: levels}, nil
	case "filtered", "tiered":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if name == "filtered" {
			return Filtered(inner), nil
		}
		return Tiered(inner), nil
	case "monitor", "topk":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		k, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if name == "monitor" {
			return MonitorOf(p.opt, k), nil
		}
		return TopKOf(p.opt, k), nil
	case "windowed":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		buckets, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		bucketItems, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return Windowed(inner, buckets, bucketItems), nil
	case "sharded", "epoch":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		n, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if name == "epoch" {
			return EpochShardedBy(inner, n), nil
		}
		return ShardedBy(inner, n), nil
	case "":
		return nil, parseErrf(p.pos, "expected a sketch kind at position %d of topology expression %q", p.pos, p.s)
	}
	return nil, parseErrf(p.pos, "unknown sketch kind %q in topology expression %q (want cms, cus, cs, aee, distinct, monitor(k), topk(k), univmon(l,k), filtered(spec), tiered(spec), windowed(b,n,spec), sharded(s,spec), epoch(w,spec))", name, p.s)
}
