package salsa

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"salsa/internal/sketch"
	"salsa/internal/topk"
	"salsa/internal/window"
)

// The universal envelope: one self-describing binary format for every
// topology the Spec algebra can express. A payload is
//
//	magic(4) | version(1) | type tag(1) | type-specific payload
//
// and composite topologies nest recursively — a sharded payload carries
// one complete envelope per shard, a windowed payload one bucket sketch
// per ring position plus the ring odometer, and the tracker types carry
// their heaps. Marshal(x) followed by Unmarshal therefore round-trips any
// sketch this package can build, and the decoded sketch is fully
// operational: windowed rings resume rotating mid-bucket, sharded
// topologies keep routing items to the shard that sketched them, and —
// since hash seeds travel with every layer — decoded sketches Merge with
// their seed-sharing peers from other processes, the paper's distributed
// use case (§V) at full generality. Re-marshaling a decoded sketch
// reproduces the payload byte for byte.
//
// Decoding is hardened against hostile bytes: every declared geometry is
// length-checked against the remaining payload before allocation, bucket
// sketches are verified merge-compatible with their ring's declared
// configuration before any merge runs, and all failures are errors, never
// panics.

const (
	envMagic   = uint32(0x5a15ae9e)
	envVersion = byte(1)

	tagCountMin            = byte(1)
	tagCountSketch         = byte(2)
	tagMonitor             = byte(3)
	tagTopK                = byte(4)
	tagWindowedCountMin    = byte(5)
	tagWindowedCountSketch = byte(6)
	tagWindowedMonitor     = byte(7)
	tagSharded             = byte(8)
	tagUnivMon             = byte(9)
	tagAEE                 = byte(10)
	tagDistinct            = byte(11)
	tagColdFilter          = byte(12)
	tagPyramid             = byte(13)
	tagWindowedDistinct    = byte(14)
	tagEpoch               = byte(15)
)

// Decoder bounds for hostile payloads; canonical payloads respect them by
// construction (maxWindowBuckets and maxHeapK also bound the builders, so
// every constructible sketch is serializable). maxHeapK must fit int on
// 32-bit platforms: the decoded capacity is converted to int before
// reaching topk.Restore.
const (
	maxShards = 1 << 16
	maxHeapK  = math.MaxInt32
)

// ErrUnsupportedTopology is returned by Marshal for sketches outside the
// envelope's type set.
var ErrUnsupportedTopology = errors.New("salsa: topology does not support the universal envelope")

func envHeader(tag byte) []byte {
	buf := binary.LittleEndian.AppendUint32(make([]byte, 0, 64), envMagic)
	return append(buf, envVersion, tag)
}

func appendBlock(buf, block []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(block)))
	return append(buf, block...)
}

func readBlock(data []byte) (block, rest []byte, err error) {
	if len(data) < 8 {
		return nil, nil, ErrBadPayload
	}
	n := binary.LittleEndian.Uint64(data)
	data = data[8:]
	if uint64(len(data)) < n {
		return nil, nil, ErrBadPayload
	}
	return data[:n], data[n:], nil
}

// Marshal encodes any supported sketch topology into the universal
// envelope. Sharded topologies are snapshotted consistently: every shard
// lock is held for the duration, so the payload is a point-in-time image
// even under concurrent ingestion.
func Marshal(s Sketch) ([]byte, error) {
	switch x := s.(type) {
	case *CountMin:
		payload, err := x.MarshalBinary()
		if err != nil {
			return nil, err
		}
		return appendBlock(envHeader(tagCountMin), payload), nil
	case *CountSketch:
		payload, err := x.MarshalBinary()
		if err != nil {
			return nil, err
		}
		return appendBlock(envHeader(tagCountSketch), payload), nil
	case *Monitor:
		payload, err := x.cm.MarshalBinary()
		if err != nil {
			return nil, err
		}
		buf := binary.LittleEndian.AppendUint64(envHeader(tagMonitor), uint64(x.heap.Cap()))
		buf = appendBlock(buf, payload)
		return appendHeap(buf, x.heap), nil
	case *TopK:
		payload, err := x.cs.MarshalBinary()
		if err != nil {
			return nil, err
		}
		buf := binary.LittleEndian.AppendUint64(envHeader(tagTopK), uint64(x.heap.Cap()))
		buf = appendBlock(buf, payload)
		return appendHeap(buf, x.heap), nil
	case *WindowedCountMin:
		payload, err := marshalWindowedCMS(x)
		if err != nil {
			return nil, err
		}
		return append(envHeader(tagWindowedCountMin), payload...), nil
	case *WindowedCountSketch:
		payload, err := marshalWindowedCS(x)
		if err != nil {
			return nil, err
		}
		return append(envHeader(tagWindowedCountSketch), payload...), nil
	case *WindowedMonitor:
		payload, err := marshalWindowedCMS(x.w)
		if err != nil {
			return nil, err
		}
		buf := binary.LittleEndian.AppendUint64(envHeader(tagWindowedMonitor), uint64(x.k))
		buf = appendBlock(buf, payload)
		for _, h := range x.heaps {
			buf = appendHeap(buf, h)
		}
		return buf, nil
	case *UnivMon:
		return marshalUnivMon(x)
	case *AEE:
		return marshalAEE(x)
	case *Distinct:
		payload, err := x.cm.MarshalBinary()
		if err != nil {
			return nil, err
		}
		return appendBlock(envHeader(tagDistinct), payload), nil
	case *WindowedDistinct:
		payload, err := marshalWindowedCMS(x.w)
		if err != nil {
			return nil, err
		}
		return append(envHeader(tagWindowedDistinct), payload...), nil
	case *ColdFilter:
		return marshalColdFilter(x)
	case *Pyramid:
		return marshalPyramid(x)
	case *ShardedCountMin:
		return marshalShards(x.Sharded)
	case *ShardedCountSketch:
		return marshalShards(x.Sharded)
	case *ShardedMonitor:
		return marshalShards(x.Sharded)
	case *ShardedWindowedCountMin:
		return marshalShards(x.Sharded)
	case *ShardedWindowedCountSketch:
		return marshalShards(x.Sharded)
	case *ShardedWindowedMonitor:
		return marshalShards(x.Sharded)
	case *ShardedAEE:
		return marshalShards(x.Sharded)
	case *ShardedDistinct:
		return marshalShards(x.Sharded)
	case *ShardedColdFilter:
		return marshalShards(x.Sharded)
	case *ShardedPyramid:
		return marshalShards(x.Sharded)
	case *Sharded[*CountMin]:
		return marshalShards(x)
	case *Sharded[*CountSketch]:
		return marshalShards(x)
	case *Sharded[*Monitor]:
		return marshalShards(x)
	case *Sharded[*WindowedCountMin]:
		return marshalShards(x)
	case *Sharded[*WindowedCountSketch]:
		return marshalShards(x)
	case *Sharded[*WindowedMonitor]:
		return marshalShards(x)
	case *Sharded[*AEE]:
		return marshalShards(x)
	case *Sharded[*Distinct]:
		return marshalShards(x)
	case *Sharded[*ColdFilter]:
		return marshalShards(x)
	case *Sharded[*Pyramid]:
		return marshalShards(x)
	case *EpochCountMin:
		return marshalEpoch(x.Epoch, x.view)
	case *EpochCountSketch:
		return marshalEpoch(x.Epoch, x.view)
	case *EpochMonitor:
		return marshalEpoch(x.Epoch, x.view)
	case *EpochDistinct:
		return marshalEpoch(x.Epoch, x.view)
	case *EpochWindowedCountMin:
		return marshalEpoch(x.Epoch, x.view)
	case *EpochWindowedCountSketch:
		return marshalEpoch(x.Epoch, x.view)
	case *EpochWindowedDistinct:
		return marshalEpoch(x.Epoch, x.view)
	}
	return nil, fmt.Errorf("%w: %T", ErrUnsupportedTopology, s)
}

// marshalEpoch encodes an epoch topology: the configured writer count
// followed by the shared view's own envelope. Marshal first cuts an epoch
// (under the control lock, so it is a consistent snapshot: every
// operation completed before the call is drained into the view), then
// serializes the view alone. The epoch odometer and private buffers are
// transient coordination state and are deliberately not serialized — a
// decoded instance starts at epoch 0 with empty privates, which is what
// makes re-marshaling reproduce the payload byte for byte (the re-marshal
// epoch cut drains nothing).
func marshalEpoch[P epochPrivate](e *Epoch[P], view Sketch) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.advanceLocked()
	e.viewMu.Lock()
	inner, err := Marshal(view)
	e.viewMu.Unlock()
	if err != nil {
		return nil, err
	}
	buf := binary.LittleEndian.AppendUint64(envHeader(tagEpoch), uint64(e.base))
	return appendBlock(buf, inner), nil
}

// unmarshalEpoch decodes an epoch envelope: the writer count plus a
// nested view envelope, rebuilt into the matching Epoch* wrapper with
// fresh (empty) private slots. Hostile payloads wrapping a topology the
// EpochShardedBy spec cannot express — max-merge counters, count-rotated
// windows, nested concurrency layers — are rejected.
func unmarshalEpoch(payload []byte) (Sketch, error) {
	if len(payload) < 8 {
		return nil, ErrBadPayload
	}
	writers := binary.LittleEndian.Uint64(payload)
	if writers == 0 || writers > maxEpochWriters {
		return nil, fmt.Errorf("salsa: epoch writer count %d out of range", writers)
	}
	block, rest, err := readBlock(payload[8:])
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, ErrBadPayload
	}
	view, err := unmarshalEnvelope(block, false)
	if err != nil {
		return nil, err
	}
	w := int(writers)
	switch v := view.(type) {
	case *CountMin:
		if err := validateEpochMerge(v.opt); err != nil {
			return nil, err
		}
		return newEpochCountMin(v, w), nil
	case *CountSketch:
		return newEpochCountSketch(v, w), nil
	case *Monitor:
		if err := validateEpochMerge(v.cm.opt); err != nil {
			return nil, err
		}
		return newEpochMonitor(v, w), nil
	case *Distinct:
		if err := validateEpochMerge(v.cm.opt); err != nil {
			return nil, err
		}
		return newEpochDistinct(v, w), nil
	case *WindowedCountMin:
		if v.BucketItems() != 0 {
			return nil, errors.New("salsa: epoch windows are Tick-driven; decoded ring declares a rotation interval")
		}
		return newEpochWindowedCountMin(v, w), nil
	case *WindowedCountSketch:
		if v.BucketItems() != 0 {
			return nil, errors.New("salsa: epoch windows are Tick-driven; decoded ring declares a rotation interval")
		}
		return newEpochWindowedCountSketch(v, w), nil
	case *WindowedDistinct:
		if v.w.BucketItems() != 0 {
			return nil, errors.New("salsa: epoch windows are Tick-driven; decoded ring declares a rotation interval")
		}
		return newEpochWindowedDistinct(v, w), nil
	}
	return nil, fmt.Errorf("salsa: epoch envelope wraps unsupported topology %T", view)
}

// Unmarshal decodes a universal-envelope payload into its topology's
// concrete type behind the Sketch interface; type-assert for the query
// surface (sharded topologies come back as their typed wrappers, e.g.
// *ShardedWindowedCountMin). Arbitrary or corrupted bytes are rejected
// with an error, never a panic, and decoder allocation is bounded by the
// payload length.
func Unmarshal(data []byte) (Sketch, error) {
	return unmarshalEnvelope(data, true)
}

// unmarshalEnvelope decodes one envelope; allowSharded is false for the
// nested per-shard envelopes, so hostile payloads cannot nest sharded
// layers the Spec algebra cannot express (and recursion stays bounded).
func unmarshalEnvelope(data []byte, allowSharded bool) (Sketch, error) {
	if len(data) < 6 {
		return nil, ErrBadPayload
	}
	if binary.LittleEndian.Uint32(data) != envMagic {
		return nil, ErrBadPayload
	}
	if data[4] != envVersion {
		return nil, fmt.Errorf("salsa: unknown envelope version %d", data[4])
	}
	tag := data[5]
	payload := data[6:]
	switch tag {
	case tagCountMin:
		block, rest, err := readBlock(payload)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, ErrBadPayload
		}
		return UnmarshalCountMin(block)
	case tagCountSketch:
		block, rest, err := readBlock(payload)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, ErrBadPayload
		}
		return UnmarshalCountSketch(block)
	case tagMonitor:
		k, block, rest, err := readTrackerHeader(payload)
		if err != nil {
			return nil, err
		}
		cm, err := UnmarshalCountMin(block)
		if err != nil {
			return nil, err
		}
		// A Monitor is always CU-backed (buildMonitor); reject hostile
		// payloads claiming otherwise, as the windowed decoder does.
		if !cm.conservative {
			return nil, ErrBadPayload
		}
		heap, rest, err := readHeap(rest, k)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, ErrBadPayload
		}
		return &Monitor{cm: cm, heap: heap}, nil
	case tagTopK:
		k, block, rest, err := readTrackerHeader(payload)
		if err != nil {
			return nil, err
		}
		cs, err := UnmarshalCountSketch(block)
		if err != nil {
			return nil, err
		}
		heap, rest, err := readHeap(rest, k)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, ErrBadPayload
		}
		return &TopK{cs: cs, heap: heap}, nil
	case tagWindowedCountMin:
		w, rest, err := unmarshalWindowedCMS(payload)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, ErrBadPayload
		}
		return w, nil
	case tagWindowedCountSketch:
		w, rest, err := unmarshalWindowedCS(payload)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, ErrBadPayload
		}
		return w, nil
	case tagWindowedMonitor:
		return unmarshalWindowedMonitor(payload)
	case tagUnivMon:
		return unmarshalUnivMon(payload)
	case tagAEE:
		return unmarshalAEE(payload)
	case tagDistinct:
		return unmarshalDistinct(payload)
	case tagColdFilter:
		return unmarshalColdFilter(payload)
	case tagPyramid:
		return unmarshalPyramid(payload)
	case tagWindowedDistinct:
		return unmarshalWindowedDistinct(payload)
	case tagSharded:
		if !allowSharded {
			return nil, errors.New("salsa: nested sharded envelope")
		}
		return unmarshalSharded(payload)
	case tagEpoch:
		if !allowSharded {
			return nil, errors.New("salsa: nested epoch envelope")
		}
		return unmarshalEpoch(payload)
	}
	return nil, fmt.Errorf("salsa: unknown envelope tag %d", tag)
}

// readTrackerHeader reads the k + sketch-block prefix shared by the
// Monitor and TopK payloads.
func readTrackerHeader(data []byte) (k int, block, rest []byte, err error) {
	if len(data) < 8 {
		return 0, nil, nil, ErrBadPayload
	}
	kk := binary.LittleEndian.Uint64(data)
	if kk == 0 || kk > maxHeapK {
		return 0, nil, nil, fmt.Errorf("salsa: heap capacity %d out of range", kk)
	}
	block, rest, err = readBlock(data[8:])
	return int(kk), block, rest, err
}

// appendHeap encodes a candidate heap: the entry count followed by the
// entries in internal heap-array order, so a decoded heap re-marshals
// byte-identically.
func appendHeap(buf []byte, h *topk.Heap) []byte {
	entries := h.Snapshot()
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = binary.LittleEndian.AppendUint64(buf, e.Item)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Count))
	}
	return buf
}

// readHeap decodes a heap of capacity k. The entry count is length-checked
// against the remaining payload before allocating, and topk.Restore
// allocates proportionally to the entries, not k.
func readHeap(data []byte, k int) (*topk.Heap, []byte, error) {
	if len(data) < 8 {
		return nil, nil, ErrBadPayload
	}
	n := binary.LittleEndian.Uint64(data)
	data = data[8:]
	if n > uint64(len(data))/16 {
		return nil, nil, ErrBadPayload
	}
	entries := make([]topk.Entry, n)
	for i := range entries {
		entries[i].Item = binary.LittleEndian.Uint64(data)
		entries[i].Count = int64(binary.LittleEndian.Uint64(data[8:]))
		data = data[16:]
	}
	h, err := topk.Restore(k, entries)
	if err != nil {
		return nil, nil, err
	}
	return h, data, nil
}

// marshalRing encodes a windowed ring payload: the Options, the flag byte
// (the CU flag for CMS rings, 0 for Count Sketch layout parity), the ring
// odometer (current position, per-bucket counts, rotations), and every
// bucket sketch in ring-storage order. The derived rotation-stack
// aggregates and query view are not serialized; window.RestoreRing rebuilds
// the two-stack state from the rotation odometer with the same merge order
// the original ring used, so decoded query answers — and all future
// rotations — are bit-for-bit identical.
func marshalRing[S interface{ MarshalBinary() ([]byte, error) }](opt Options, flag byte, ring *window.Ring[S]) ([]byte, error) {
	buf := appendOptions(nil, opt)
	buf = append(buf, flag)
	buf = appendRingHeader(buf, ring.Buckets(), ring.Interval(), ring.CurIndex(), ring.Rotations())
	for i := 0; i < ring.Buckets(); i++ {
		buf = binary.LittleEndian.AppendUint64(buf, ring.CountAt(i))
	}
	for i := 0; i < ring.Buckets(); i++ {
		payload, err := ring.BucketAt(i).MarshalBinary()
		if err != nil {
			return nil, err
		}
		buf = appendBlock(buf, payload)
	}
	return buf, nil
}

func marshalWindowedCMS(w *WindowedCountMin) ([]byte, error) {
	return marshalRing(w.opt, boolByte(w.conservative), w.ring)
}

func marshalWindowedCS(w *WindowedCountSketch) ([]byte, error) {
	return marshalRing(w.opt, 0, w.ring)
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func appendRingHeader(buf []byte, buckets int, interval uint64, cur int, rotations uint64) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(buckets))
	buf = binary.LittleEndian.AppendUint64(buf, interval)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cur))
	return binary.LittleEndian.AppendUint64(buf, rotations)
}

// ringHeader is the decoded fixed-size prefix of a windowed payload.
type ringHeader struct {
	opt          Options
	conservative bool
	buckets      int
	interval     uint64
	cur          int
	rotations    uint64
	counts       []uint64
}

// readRingHeader decodes and bounds-checks the windowed prefix shared by
// both ring flavors. The bucket count is checked against both the
// builders' limit and the remaining payload (each bucket needs its count
// word and block length at minimum) before any allocation.
func readRingHeader(data []byte) (ringHeader, []byte, error) {
	var h ringHeader
	opt, rest, err := readOptions(data)
	if err != nil {
		return h, nil, err
	}
	if len(rest) < 1+4*8 {
		return h, nil, ErrBadPayload
	}
	h.opt = opt
	h.conservative = rest[0] == 1
	rest = rest[1:]
	buckets := binary.LittleEndian.Uint64(rest)
	h.interval = binary.LittleEndian.Uint64(rest[8:])
	cur := binary.LittleEndian.Uint64(rest[16:])
	h.rotations = binary.LittleEndian.Uint64(rest[24:])
	rest = rest[32:]
	if buckets == 0 || buckets > maxWindowBuckets || cur >= buckets {
		return h, nil, ErrBadPayload
	}
	if h.interval > 1<<62 {
		return h, nil, ErrBadPayload
	}
	if uint64(len(rest)) < buckets*16 {
		return h, nil, ErrBadPayload
	}
	h.buckets, h.cur = int(buckets), int(cur)
	h.counts = make([]uint64, h.buckets)
	for i := range h.counts {
		h.counts[i] = binary.LittleEndian.Uint64(rest[i*8:])
	}
	// With auto-rotation (interval > 0), Wrote rotates the moment the
	// current bucket's count reaches the interval, so canonically
	// counts[cur] < interval and closed buckets hold at most exactly
	// interval. A hostile counts[cur] >= interval would make Ring.Room
	// underflow and break batch/per-item equivalence.
	if h.interval > 0 {
		for i, c := range h.counts {
			if c > h.interval || (i == h.cur && c >= h.interval) {
				return h, nil, ErrBadPayload
			}
		}
	}
	return h, rest[h.buckets*8:], nil
}

// boundRingGeometry rejects declared (defaults-applied) ring Options whose
// reference-sketch construction alone would allocate far beyond anything
// the remaining payload can justify. Every canonical bucket payload
// carries at least one bit per base counter per row (CounterBits ≥ 1), so
// a ring's payload holds ≥ Depth×Width/8 bytes; a hostile header claiming
// a huge geometry over a tiny payload must fail here, before ops.New
// builds the Depth×Width reference arena. The comparison divides rather
// than multiplying: Width can be any positive power of two up to 1<<62,
// so Depth*Width wraps for hostile headers and would bypass the bound.
func boundRingGeometry(opt Options, remaining int) error {
	if opt.Depth <= 0 || int64(opt.Width) > (8*int64(remaining)+4096)/int64(opt.Depth) {
		return ErrBadPayload
	}
	return nil
}

// unmarshalRing decodes the shared tail of a windowed payload — one
// length-prefixed bucket sketch per ring position, each verified
// merge-compatible with the reference configuration ops derives from the
// declared (defaults-applied) Options — then restores the ring. The
// geometry bound runs first, before ops.New builds the reference arena.
func unmarshalRing[S interface{ CompatibleWith(S) error }](h ringHeader, rest []byte, ops window.Ops[S], unmarshal func([]byte) (S, error)) (*window.Ring[S], []byte, error) {
	if err := boundRingGeometry(h.opt, len(rest)); err != nil {
		return nil, nil, err
	}
	ref := ops.New()
	buckets := make([]S, h.buckets)
	for i := range buckets {
		block, r, err := readBlock(rest)
		if err != nil {
			return nil, nil, err
		}
		rest = r
		b, err := unmarshal(block)
		if err != nil {
			return nil, nil, err
		}
		if err := ref.CompatibleWith(b); err != nil {
			return nil, nil, fmt.Errorf("salsa: bucket %d does not match the window options: %w", i, err)
		}
		buckets[i] = b
	}
	ring, err := window.RestoreRing(buckets, h.counts, h.cur, h.rotations, h.interval, ops)
	if err != nil {
		return nil, nil, err
	}
	return ring, rest, nil
}

// unmarshalWindowedCMS decodes a windowed CMS ring, verifying every bucket
// is merge-compatible with the declared Options before the ring's
// rotation-stack aggregates are rebuilt.
func unmarshalWindowedCMS(data []byte) (*WindowedCountMin, []byte, error) {
	h, rest, err := readRingHeader(data)
	if err != nil {
		return nil, nil, err
	}
	kind := kindCountMin
	if h.conservative {
		kind = kindConservative
	}
	if err := h.opt.validateFor(kind); err != nil {
		return nil, nil, err
	}
	if err := validateWindow(h.opt, h.buckets, 0); err != nil {
		return nil, nil, err
	}
	// Match the builder's defaults so the reference ops reconstruct the
	// exact bucket configuration the ring was built with (canonical
	// payloads carry defaults-applied Options already; hostile ones with
	// zero Depth/CounterBits must not reach the row constructors raw).
	h.opt = h.opt.withDefaults(4, MergeSum)
	ring, rest, err := unmarshalRing(h, rest, cmsRingOps(h.opt, h.conservative), sketch.UnmarshalCMS)
	if err != nil {
		return nil, nil, err
	}
	return &WindowedCountMin{ring: ring, opt: h.opt, conservative: h.conservative}, rest, nil
}

// unmarshalWindowedCS is unmarshalWindowedCMS for the Count Sketch ring.
func unmarshalWindowedCS(data []byte) (*WindowedCountSketch, []byte, error) {
	h, rest, err := readRingHeader(data)
	if err != nil {
		return nil, nil, err
	}
	if h.conservative {
		return nil, nil, ErrBadPayload
	}
	if err := h.opt.validateFor(kindCountSketch); err != nil {
		return nil, nil, err
	}
	if err := validateWindow(h.opt, h.buckets, 0); err != nil {
		return nil, nil, err
	}
	// Match the builder's defaults so the reference ops reconstruct the
	// exact bucket configuration the ring was built with.
	h.opt = h.opt.withDefaults(5, MergeSum)
	ring, rest, err := unmarshalRing(h, rest, csRingOps(h.opt), sketch.UnmarshalCountSketch)
	if err != nil {
		return nil, nil, err
	}
	return &WindowedCountSketch{ring: ring, opt: h.opt}, rest, nil
}

// unmarshalWindowedMonitor decodes a windowed heavy-hitter tracker: the
// underlying windowed CU ring plus one candidate heap per ring position.
func unmarshalWindowedMonitor(data []byte) (Sketch, error) {
	if len(data) < 8 {
		return nil, ErrBadPayload
	}
	kk := binary.LittleEndian.Uint64(data)
	if kk == 0 || kk > maxHeapK {
		return nil, fmt.Errorf("salsa: heap capacity %d out of range", kk)
	}
	k := int(kk)
	block, rest, err := readBlock(data[8:])
	if err != nil {
		return nil, err
	}
	w, tail, err := unmarshalWindowedCMS(block)
	if err != nil {
		return nil, err
	}
	if len(tail) != 0 || !w.conservative {
		return nil, ErrBadPayload
	}
	heaps := make([]*topk.Heap, w.Buckets())
	for i := range heaps {
		h, r, err := readHeap(rest, k)
		if err != nil {
			return nil, err
		}
		heaps[i], rest = h, r
	}
	if len(rest) != 0 {
		return nil, ErrBadPayload
	}
	m := &WindowedMonitor{w: w, heaps: heaps, k: k}
	m.w.ring.OnRotate(func(cur int) { m.heaps[cur].Reset() })
	return m, nil
}

// marshalShards encodes a sharded topology: the routing seed, the shard
// count, and one nested envelope per shard in shard order. Every shard
// lock is held for the whole snapshot, so the payload is consistent even
// under concurrent ingestion.
func marshalShards[S Sketch](s *Sharded[S]) ([]byte, error) {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	defer func() {
		for i := range s.shards {
			s.shards[i].mu.Unlock()
		}
	}()
	buf := binary.LittleEndian.AppendUint64(envHeader(tagSharded), s.seed)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s.shards)))
	for i := range s.shards {
		blob, err := Marshal(s.shards[i].sk)
		if err != nil {
			return nil, err
		}
		buf = appendBlock(buf, blob)
	}
	return buf, nil
}

// unmarshalSharded decodes a sharded topology into its typed wrapper,
// dispatching on the decoded shard type. Every shard must decode to the
// same concrete type; the shard count must be the power of two the
// Sharded router requires.
func unmarshalSharded(data []byte) (Sketch, error) {
	if len(data) < 16 {
		return nil, ErrBadPayload
	}
	routeSeed := binary.LittleEndian.Uint64(data)
	n := binary.LittleEndian.Uint64(data[8:])
	data = data[16:]
	if n == 0 || n > maxShards || n&(n-1) != 0 {
		return nil, ErrBadPayload
	}
	if uint64(len(data)) < n*8 {
		return nil, ErrBadPayload
	}
	sks := make([]Sketch, n)
	for i := range sks {
		block, rest, err := readBlock(data)
		if err != nil {
			return nil, err
		}
		data = rest
		sk, err := unmarshalEnvelope(block, false)
		if err != nil {
			return nil, err
		}
		sks[i] = sk
	}
	if len(data) != 0 {
		return nil, ErrBadPayload
	}
	switch sks[0].(type) {
	case *CountMin:
		shards, err := typedShards[*CountMin](sks)
		if err != nil {
			return nil, err
		}
		return &ShardedCountMin{newShardedFromShards(routeSeed, shards)}, nil
	case *CountSketch:
		shards, err := typedShards[*CountSketch](sks)
		if err != nil {
			return nil, err
		}
		return &ShardedCountSketch{newShardedFromShards(routeSeed, shards)}, nil
	case *Monitor:
		shards, err := typedShards[*Monitor](sks)
		if err != nil {
			return nil, err
		}
		// The Spec algebra gives every shard the same k; a hostile payload
		// mixing heap capacities would silently truncate the cross-shard
		// candidate set to shard 0's.
		for i, m := range shards {
			if m.heap.Cap() != shards[0].heap.Cap() {
				return nil, fmt.Errorf("salsa: shard %d heap capacity %d does not match shard 0's %d", i, m.heap.Cap(), shards[0].heap.Cap())
			}
		}
		return &ShardedMonitor{
			Sharded: newShardedFromShards(routeSeed, shards),
			k:       shards[0].heap.Cap(),
		}, nil
	case *WindowedCountMin:
		shards, err := typedShards[*WindowedCountMin](sks)
		if err != nil {
			return nil, err
		}
		return &ShardedWindowedCountMin{newShardedFromShards(routeSeed, shards)}, nil
	case *WindowedCountSketch:
		shards, err := typedShards[*WindowedCountSketch](sks)
		if err != nil {
			return nil, err
		}
		return &ShardedWindowedCountSketch{newShardedFromShards(routeSeed, shards)}, nil
	case *WindowedMonitor:
		shards, err := typedShards[*WindowedMonitor](sks)
		if err != nil {
			return nil, err
		}
		// Same-k rule as the Monitor dispatch: a hostile payload mixing
		// heap capacities would silently truncate the merged candidates.
		for i, m := range shards {
			if m.k != shards[0].k {
				return nil, fmt.Errorf("salsa: shard %d heap capacity %d does not match shard 0's %d", i, m.k, shards[0].k)
			}
		}
		return &ShardedWindowedMonitor{
			Sharded: newShardedFromShards(routeSeed, shards),
			k:       shards[0].k,
		}, nil
	case *AEE:
		shards, err := typedShards[*AEE](sks)
		if err != nil {
			return nil, err
		}
		return &ShardedAEE{newShardedFromShards(routeSeed, shards)}, nil
	case *Distinct:
		shards, err := typedShards[*Distinct](sks)
		if err != nil {
			return nil, err
		}
		return &ShardedDistinct{newShardedFromShards(routeSeed, shards)}, nil
	case *ColdFilter:
		shards, err := typedShards[*ColdFilter](sks)
		if err != nil {
			return nil, err
		}
		return &ShardedColdFilter{newShardedFromShards(routeSeed, shards)}, nil
	case *Pyramid:
		shards, err := typedShards[*Pyramid](sks)
		if err != nil {
			return nil, err
		}
		return &ShardedPyramid{newShardedFromShards(routeSeed, shards)}, nil
	}
	return nil, fmt.Errorf("salsa: shard type %T cannot back a sharded topology", sks[0])
}

// typedShards narrows decoded shard sketches to one concrete type,
// rejecting mixed-type payloads.
func typedShards[S Sketch](sks []Sketch) ([]S, error) {
	out := make([]S, len(sks))
	for i, sk := range sks {
		s, ok := sk.(S)
		if !ok {
			return nil, fmt.Errorf("salsa: shard %d type %T does not match shard 0", i, sk)
		}
		out[i] = s
	}
	return out, nil
}
