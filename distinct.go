package salsa

import (
	"salsa/internal/distinct"
)

// Distinct is a Linear Counting distinct estimator over a Count-Min
// sketch (§III, "Counting Distinct Items"): each row's zero-counter
// fraction p yields the −w·ln(p) cardinality estimate, averaged over
// rows. The backing sketch still ingests and answers frequency queries
// normally, so one structure serves both surfaces.
type Distinct struct {
	cm *CountMin
}

// buildDistinct realizes a DistinctOf spec.
func buildDistinct(opt Options) (*Distinct, error) {
	if err := opt.validateFor(kindDistinct); err != nil {
		return nil, err
	}
	cm, err := buildCountMin(opt, false)
	if err != nil {
		return nil, err
	}
	return &Distinct{cm: cm}, nil
}

// Update adds count occurrences of item.
func (d *Distinct) Update(item uint64, count int64) { d.cm.Update(item, count) }

// UpdateBatch adds count occurrences of every item, in order.
func (d *Distinct) UpdateBatch(items []uint64, count int64) { d.cm.UpdateBatch(items, count) }

// Increment adds one occurrence of item.
func (d *Distinct) Increment(item uint64) { d.cm.Increment(item) }

// Query returns the frequency estimate from the backing Count-Min sketch.
func (d *Distinct) Query(item uint64) uint64 { return d.cm.Query(item) }

// Estimate returns the Linear Counting distinct estimate. It errors when
// some row has no zero counters — the load exceeded Linear Counting's
// operating range of roughly w·ln(w) distinct items.
func (d *Distinct) Estimate() (float64, error) { return d.cm.Distinct() }

// StdError returns the estimator's relative standard error at a true
// cardinality f0, the accuracy expression the paper quotes; it shrinks as
// the row width grows.
func (d *Distinct) StdError(f0 float64) float64 {
	return distinct.StdError(d.cm.Options().Width, f0)
}

// Options returns the backing sketch Options with defaults applied.
func (d *Distinct) Options() Options { return d.cm.Options() }

// MemoryBits returns the backing sketch footprint in bits.
func (d *Distinct) MemoryBits() int { return d.cm.MemoryBits() }

// WindowedDistinct estimates the distinct count of a sliding window: a
// windowed Count-Min ring whose merged live-bucket view feeds the Linear
// Counting estimate, so retired buckets' items age out of the cardinality.
type WindowedDistinct struct {
	w *WindowedCountMin
}

// buildWindowedDistinct realizes a Windowed(DistinctOf) spec.
func buildWindowedDistinct(opt Options, buckets, bucketItems int) (*WindowedDistinct, error) {
	if err := opt.validateFor(kindDistinct); err != nil {
		return nil, err
	}
	w, err := buildWindowedCMS(opt, buckets, bucketItems, false)
	if err != nil {
		return nil, err
	}
	return &WindowedDistinct{w: w}, nil
}

// Update adds count occurrences of item to the current bucket.
func (d *WindowedDistinct) Update(item uint64, count int64) { d.w.Update(item, count) }

// UpdateBatch adds count occurrences of every item, in order.
func (d *WindowedDistinct) UpdateBatch(items []uint64, count int64) { d.w.UpdateBatch(items, count) }

// Increment adds one occurrence of item.
func (d *WindowedDistinct) Increment(item uint64) { d.w.Increment(item) }

// Query returns the windowed frequency estimate.
func (d *WindowedDistinct) Query(item uint64) uint64 { return d.w.Query(item) }

// Estimate returns the Linear Counting distinct estimate over the live
// window.
func (d *WindowedDistinct) Estimate() (float64, error) {
	return d.w.ring.View().DistinctLinearCounting()
}

// StdError returns the estimator's relative standard error at a true
// windowed cardinality f0.
func (d *WindowedDistinct) StdError(f0 float64) float64 {
	return distinct.StdError(d.w.Options().Width, f0)
}

// Tick rotates the window by one bucket, retiring the oldest bucket.
func (d *WindowedDistinct) Tick() { d.w.Tick() }

// WindowVolume returns the number of items recorded in the live window.
func (d *WindowedDistinct) WindowVolume() uint64 { return d.w.WindowVolume() }

// Rotations returns the number of bucket rotations performed so far.
func (d *WindowedDistinct) Rotations() uint64 { return d.w.Rotations() }

// Options returns the bucket sketch Options with defaults applied.
func (d *WindowedDistinct) Options() Options { return d.w.Options() }

// MemoryBits returns the ring footprint in bits.
func (d *WindowedDistinct) MemoryBits() int { return d.w.MemoryBits() }
