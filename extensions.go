package salsa

import (
	"salsa/internal/aee"
	"salsa/internal/coldfilter"
	"salsa/internal/sketch"
	"salsa/internal/univmon"
)

// UnivMonOptions configures a universal sketch.
type UnivMonOptions struct {
	// Levels is the number of Count Sketch instances (default 16, as in
	// the paper's configuration).
	Levels int
	// Depth and Width shape each Count Sketch (default d = 5).
	Depth, Width int
	// HeapK is the per-level heavy-hitter heap size (default 100).
	HeapK int
	// Mode picks Baseline or SALSA Count Sketch rows (Tango unsupported).
	Mode Mode
	// CounterBits is the SALSA base size (default 8) or baseline width
	// (default 32).
	CounterBits uint
	// Seed makes the sketch deterministic.
	Seed uint64
}

// UnivMon estimates any Stream-PolyLog function of the frequency vector —
// entropy, frequency moments, distinct count — from a single pass (§III).
// The paper's "SALSA UnivMon" is this with Mode: ModeSALSA (the default).
type UnivMon struct {
	um *univmon.Sketch
}

// NewUnivMon returns an empty universal sketch.
func NewUnivMon(opt UnivMonOptions) *UnivMon {
	if opt.Levels == 0 {
		opt.Levels = 16
	}
	if opt.Depth == 0 {
		opt.Depth = 5
	}
	if opt.HeapK == 0 {
		opt.HeapK = 100
	}
	if opt.CounterBits == 0 {
		if opt.Mode == ModeBaseline {
			opt.CounterBits = 32
		} else {
			opt.CounterBits = 8
		}
	}
	var rows sketch.SignedRowSpec
	if opt.Mode == ModeBaseline {
		rows = sketch.FixedSignRow(opt.CounterBits)
	} else {
		rows = sketch.SalsaSignRow(opt.CounterBits, false)
	}
	return &UnivMon{um: univmon.New(univmon.Config{
		Levels: opt.Levels,
		Depth:  opt.Depth,
		Width:  opt.Width,
		HeapK:  opt.HeapK,
		Rows:   rows,
		Seed:   opt.Seed,
	})}
}

// Process records one unit-weight arrival (Cash Register model).
func (u *UnivMon) Process(item uint64) { u.um.Update(item) }

// Entropy estimates the empirical entropy of the frequency vector.
func (u *UnivMon) Entropy() float64 { return u.um.Entropy() }

// Moment estimates the frequency moment Fp.
func (u *UnivMon) Moment(p float64) float64 { return u.um.Moment(p) }

// Distinct estimates the number of distinct items F0.
func (u *UnivMon) Distinct() float64 { return u.um.Distinct() }

// Volume returns the number of processed arrivals N.
func (u *UnivMon) Volume() uint64 { return u.um.Volume() }

// HeavyHitters returns the tracked items with the largest estimates.
func (u *UnivMon) HeavyHitters() []ItemCount {
	entries := u.um.HeavyHitters()
	out := make([]ItemCount, len(entries))
	for i, e := range entries {
		out[i] = ItemCount{Item: e.Item, Count: e.Count}
	}
	return out
}

// MemoryBits returns the total footprint of the level sketches.
func (u *UnivMon) MemoryBits() int { return u.um.SizeBits() }

// ColdFilterOptions configures a Cold Filter in front of a second-stage
// Conservative Update sketch.
type ColdFilterOptions struct {
	// Layer1Width and Layer2Width are the filter layer widths in counters
	// (4-bit and 8-bit respectively); powers of two.
	Layer1Width, Layer2Width int
	// Probes is the number of hash probes per layer (default 3).
	Probes int
	// Stage2 configures the second-stage sketch (Baseline or SALSA CUS).
	Stage2 Options
	// Seed makes the filter deterministic.
	Seed uint64
}

// ColdFilter separates the cold items from the heavy hitters: two
// conservative filter layers absorb cold volume, and only the hot residual
// reaches the second-stage sketch (§III; Fig. 13 uses a SALSA CUS stage).
type ColdFilter struct {
	cf *coldfilter.Filter
}

// NewColdFilter returns an empty Cold Filter.
func NewColdFilter(opt ColdFilterOptions) *ColdFilter {
	if opt.Probes == 0 {
		opt.Probes = 3
	}
	stage2 := mustSketch(buildCountMin(opt.Stage2, true))
	return &ColdFilter{cf: coldfilter.New(coldfilter.Config{
		W1:   opt.Layer1Width,
		W2:   opt.Layer2Width,
		D1:   opt.Probes,
		D2:   opt.Probes,
		Seed: opt.Seed,
	}, stage2.sk)}
}

// Process records one occurrence of item.
func (c *ColdFilter) Process(item uint64) { c.cf.Update(item, 1) }

// Query returns the frequency estimate (an overestimate).
func (c *ColdFilter) Query(item uint64) uint64 { return c.cf.Query(item) }

// MemoryBits returns the footprint including both layers and stage 2.
func (c *ColdFilter) MemoryBits() int { return c.cf.SizeBits() }

// AEEVariant selects the Additive Error Estimator flavour.
type AEEVariant int

const (
	// AEEMaxAccuracy downsamples only when a counter overflows.
	AEEMaxAccuracy AEEVariant = iota
	// AEEMaxSpeed downsamples on a schedule so updates never check for
	// overflow; faster, less accurate.
	AEEMaxSpeed
)

// AEEOptions configures an estimator sketch.
type AEEOptions struct {
	// Depth and Width shape the sketch (defaults d = 4).
	Depth, Width int
	// CounterBits is the short counter width (default 16).
	CounterBits uint
	// Variant picks MaxAccuracy or MaxSpeed.
	Variant AEEVariant
	// Deterministic switches downsampling from Binomial(c,1/2) to ⌊c/2⌋.
	Deterministic bool
	// Seed drives hashing and sampling.
	Seed uint64
}

// AEE is an estimator-based Count-Min sketch: large counts are represented
// by sampling rather than wide counters, with a bounded additive error.
type AEE struct {
	e *aee.Estimator
}

// NewAEE returns an empty AEE sketch.
func NewAEE(opt AEEOptions) *AEE {
	if opt.Depth == 0 {
		opt.Depth = 4
	}
	if opt.CounterBits == 0 {
		opt.CounterBits = 16
	}
	cfg := aee.Config{
		Rows:          opt.Depth,
		Width:         opt.Width,
		CounterBits:   opt.CounterBits,
		Probabilistic: !opt.Deterministic,
		Seed:          opt.Seed,
	}
	if opt.Variant == AEEMaxSpeed {
		return &AEE{e: aee.NewMaxSpeed(cfg)}
	}
	return &AEE{e: aee.NewMaxAccuracy(cfg)}
}

// Process records one occurrence of item.
func (a *AEE) Process(item uint64) { a.e.Update(item) }

// ProcessWeighted records weight occurrences of item at once (weighted
// streams, e.g. byte volumes).
func (a *AEE) ProcessWeighted(item uint64, weight uint64) { a.e.UpdateWeighted(item, weight) }

// Query returns the frequency estimate (unbiased, additive error).
func (a *AEE) Query(item uint64) float64 { return a.e.Query(item) }

// SampleProb returns the current sampling probability.
func (a *AEE) SampleProb() float64 { return a.e.SampleProb() }

// MemoryBits returns the counter footprint in bits.
func (a *AEE) MemoryBits() int { return a.e.SizeBits() }

// SalsaAEEOptions configures the estimator-integrated SALSA CMS (§V).
type SalsaAEEOptions struct {
	// Depth and Width shape the sketch (defaults d = 4).
	Depth, Width int
	// CounterBits is the SALSA base size (default 8).
	CounterBits uint
	// Delta is the failure probability budget (default 0.001, the paper's
	// δ = 4·δest setting).
	Delta float64
	// ForcedDownsamples is the d of SALSA AEE_d: unconditionally
	// downsample on the first d overflows for speed.
	ForcedDownsamples int
	// Split re-splits merged counters that shrink below their size after
	// a downsample.
	Split bool
	// Seed drives hashing and sampling.
	Seed uint64
}

// SalsaAEE resolves each counter overflow by whichever of merging and
// downsampling raises the theoretical error bound less, combining SALSA's
// counting range with AEE's speed (§V, Fig. 16).
type SalsaAEE struct {
	e *aee.SalsaAEE
}

// NewSalsaAEE returns an empty SALSA AEE sketch.
func NewSalsaAEE(opt SalsaAEEOptions) *SalsaAEE {
	if opt.Depth == 0 {
		opt.Depth = 4
	}
	if opt.CounterBits == 0 {
		opt.CounterBits = 8
	}
	if opt.Delta == 0 {
		opt.Delta = 0.001
	}
	return &SalsaAEE{e: aee.NewSalsa(aee.SalsaConfig{
		Rows:              opt.Depth,
		Width:             opt.Width,
		S:                 opt.CounterBits,
		Delta:             opt.Delta,
		ForcedDownsamples: opt.ForcedDownsamples,
		Split:             opt.Split,
		Seed:              opt.Seed,
	})}
}

// Process records one occurrence of item.
func (a *SalsaAEE) Process(item uint64) { a.e.Update(item) }

// Query returns the frequency estimate.
func (a *SalsaAEE) Query(item uint64) float64 { return a.e.Query(item) }

// SampleProb returns the current sampling probability.
func (a *SalsaAEE) SampleProb() float64 { return a.e.SampleProb() }

// MemoryBits returns the footprint in bits.
func (a *SalsaAEE) MemoryBits() int { return a.e.SizeBits() }
