package salsa

import (
	"fmt"
	"sync"

	"salsa/internal/hashing"
)

// validateShardCount caps the shard count at the envelope decoder's
// maxShards, so every constructible sharded topology is serializable. The
// lower bound stays with the callers: the Spec algebra requires a positive
// count, while the deprecated constructors keep their documented
// round-up-to-minimum-1 behavior.
func validateShardCount(shards int) error {
	if shards > maxShards {
		return fmt.Errorf("salsa: shard count %d exceeds the maximum %d", shards, maxShards)
	}
	return nil
}

// Sharded is the concurrent ingestion layer: a generic wrapper that routes
// items to one of several independently-locked shard sketches by a hash of
// the item, so updates from many goroutines proceed in parallel. Each shard
// is a complete sketch of its substream — an item always lands in the same
// shard, so point queries consult exactly one shard and keep the backend's
// error guarantee over that substream.
//
// It works over any backend implementing Sketch: CountMin (plain or
// conservative), CountSketch, and the Monitor heavy-hitter tracker all
// qualify; use the typed constructors in sharded.go, or NewSharded with a
// custom factory. Memory is the per-shard Options.Width times the shard
// count; size widths accordingly.
//
// Single-item Update/Increment lock the owning shard per call. The batch
// APIs (UpdateBatch/IncrementBatch and the typed QueryBatch wrappers)
// partition a slice of items by shard first and lock each shard once per
// batch, which is the high-throughput path; Writer adds per-goroutine
// buffering on top so even single-item ingestion amortizes lock traffic.
type Sharded[S Sketch] struct {
	shards []shard[S]
	mask   uint64
	seed   uint64
	parts  sync.Pool // *partition scratch for the batch APIs
}

// shard pads each lock + sketch pointer pair to its own cache line so
// goroutines hammering different shards do not false-share.
type shard[S Sketch] struct {
	mu sync.Mutex
	sk S
	_  [48]byte
}

// NewSharded returns a Sharded sketch with the given number of shards
// (rounded up to a power of two, minimum 1), panicking beyond the
// envelope's maximum so every constructible sharded topology stays
// serializable. routeSeed drives the item-to-shard hash; factory builds
// shard i's backend. Give shards distinct sketch seeds (as the typed
// constructors do) unless you intend to Merge them later, in which case
// they must share one.
func NewSharded[S Sketch](shards int, routeSeed uint64, factory func(shard int) S) *Sharded[S] {
	if err := validateShardCount(shards); err != nil {
		panic(err)
	}
	n := 1
	for n < shards {
		n *= 2
	}
	s := &Sharded[S]{
		shards: make([]shard[S], n),
		mask:   uint64(n - 1),
		seed:   routeSeed,
	}
	s.parts.New = func() any { return newPartition(n) }
	for i := range s.shards {
		s.shards[i].sk = factory(i)
	}
	return s
}

// newShardedFromShards wires pre-built shard sketches into a Sharded with
// the given routing seed; the envelope decoder uses it to reconstruct
// sharded topologies shard for shard. len(sks) must be a power of two.
func newShardedFromShards[S Sketch](routeSeed uint64, sks []S) *Sharded[S] {
	return NewSharded(len(sks), routeSeed, func(i int) S { return sks[i] })
}

func (s *Sharded[S]) route(item uint64) *shard[S] {
	return &s.shards[hashing.Index(item, s.seed, s.mask)]
}

// Update adds count occurrences of item; safe for concurrent use.
func (s *Sharded[S]) Update(item uint64, count int64) {
	sh := s.route(item)
	sh.mu.Lock()
	sh.sk.Update(item, count)
	sh.mu.Unlock()
}

// Increment adds one occurrence of item; safe for concurrent use.
func (s *Sharded[S]) Increment(item uint64) { s.Update(item, 1) }

// UpdateBatch adds count occurrences of every item; safe for concurrent
// use. Items are partitioned by shard and each shard is locked once, with
// its items applied in slice order — so a batch leaves every shard in the
// identical state as the equivalent sequence of single Updates.
func (s *Sharded[S]) UpdateBatch(items []uint64, count int64) {
	if len(items) == 0 {
		return
	}
	if len(s.shards) == 1 {
		sh := &s.shards[0]
		sh.mu.Lock()
		sh.sk.UpdateBatch(items, count)
		sh.mu.Unlock()
		return
	}
	p := s.parts.Get().(*partition)
	p.scatterItems(items, s.seed, s.mask)
	for i := range s.shards {
		if len(p.items[i]) == 0 {
			continue
		}
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.sk.UpdateBatch(p.items[i], count)
		sh.mu.Unlock()
	}
	p.reset()
	s.parts.Put(p)
}

// IncrementBatch adds one occurrence of every item; safe for concurrent use.
func (s *Sharded[S]) IncrementBatch(items []uint64) { s.UpdateBatch(items, 1) }

// Shards returns the number of shards.
func (s *Sharded[S]) Shards() int { return len(s.shards) }

// Shard returns shard i's backend. The caller must not mutate it while
// other goroutines are ingesting; quiesce writers first (it is meant for
// read-out, Merge and marshal after ingestion).
func (s *Sharded[S]) Shard(i int) S { return s.shards[i].sk }

// MemoryBits returns the total footprint across shards.
func (s *Sharded[S]) MemoryBits() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += sh.sk.MemoryBits()
		sh.mu.Unlock()
	}
	return total
}

// query routes item to its shard and answers under the shard lock.
func query[S Sketch, V any](s *Sharded[S], item uint64, q func(S, uint64) V) V {
	sh := s.route(item)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return q(sh.sk, item)
}

// queryBatch partitions items by shard, answers each shard's sub-batch
// under its lock via q (which must follow the QueryBatch buffer contract),
// and scatters the answers back into dst in the items' original positions.
func queryBatch[S Sketch, V any](s *Sharded[S], items []uint64, dst []V, q func(S, []uint64, []V) []V) []V {
	for len(dst) < len(items) {
		var zero V
		dst = append(dst, zero)
	}
	dst = dst[:len(items)]
	if len(items) == 0 {
		return dst
	}
	if len(s.shards) == 1 {
		sh := &s.shards[0]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		return q(sh.sk, items, dst[:0])
	}
	p := s.parts.Get().(*partition)
	p.scatter(items, s.seed, s.mask)
	var vals []V
	for i := range s.shards {
		if len(p.items[i]) == 0 {
			continue
		}
		sh := &s.shards[i]
		sh.mu.Lock()
		vals = q(sh.sk, p.items[i], vals[:0])
		sh.mu.Unlock()
		for k, j := range p.pos[i] {
			dst[j] = vals[k]
		}
	}
	p.reset()
	s.parts.Put(p)
	return dst
}

// partition is reusable scratch for splitting a batch by destination shard:
// items[i] holds shard i's sub-batch, pos[i] the original index of each.
type partition struct {
	items [][]uint64
	pos   [][]int32
}

func newPartition(shards int) *partition {
	return &partition{items: make([][]uint64, shards), pos: make([][]int32, shards)}
}

func (p *partition) scatter(items []uint64, seed, mask uint64) {
	for j, x := range items {
		i := hashing.Index(x, seed, mask)
		p.items[i] = append(p.items[i], x)
		p.pos[i] = append(p.pos[i], int32(j))
	}
}

// scatterItems is scatter without the original-position bookkeeping, which
// only queries need — updates don't scatter answers back.
func (p *partition) scatterItems(items []uint64, seed, mask uint64) {
	for _, x := range items {
		i := hashing.Index(x, seed, mask)
		p.items[i] = append(p.items[i], x)
	}
}

func (p *partition) reset() {
	for i := range p.items {
		p.items[i] = p.items[i][:0]
		p.pos[i] = p.pos[i][:0]
	}
}

// Writer is a per-goroutine ingestion buffer over a Sharded sketch: items
// accumulate in per-shard buffers and a shard is locked only when its
// buffer fills (or on Flush), amortizing lock traffic and hashing across
// the buffered batch. A Writer is NOT safe for concurrent use — give each
// ingesting goroutine its own and Flush before reading estimates. Because
// every shard still sees its items in arrival order, a flushed Writer
// leaves the sketch in the identical state as unbuffered ingestion.
//
// Items a Writer holds buffered are invisible to queries and belong to no
// window bucket yet: under Tick-driven windows, an item buffered before a
// Tick but flushed after lands in the post-Tick bucket. Flush before Tick
// when bucket assignment must follow arrival time.
type Writer[S Sketch] struct {
	s      *Sharded[S]
	bufs   [][]uint64
	batch  int
	closed bool
}

// NewWriter returns an ingestion buffer flushing each shard at batch items
// (default 256).
func (s *Sharded[S]) NewWriter(batch int) *Writer[S] {
	if batch <= 0 {
		batch = 256
	}
	bufs := make([][]uint64, len(s.shards))
	for i := range bufs {
		bufs[i] = make([]uint64, 0, batch)
	}
	return &Writer[S]{s: s, bufs: bufs, batch: batch}
}

// Increment buffers one occurrence of item, flushing its shard's buffer if
// full.
func (w *Writer[S]) Increment(item uint64) {
	w.mustOpen()
	i := hashing.Index(item, w.s.seed, w.s.mask)
	w.bufs[i] = append(w.bufs[i], item)
	if len(w.bufs[i]) >= w.batch {
		w.flushShard(int(i))
	}
}

// Update adds count occurrences of item. Counts other than 1 flush the
// shard's buffer first (preserving per-shard arrival order) and apply
// directly.
func (w *Writer[S]) Update(item uint64, count int64) {
	if count == 1 {
		w.Increment(item)
		return
	}
	w.mustOpen()
	i := hashing.Index(item, w.s.seed, w.s.mask)
	w.flushShard(int(i))
	w.s.Update(item, count)
}

// Flush pushes every buffered item into the sketch.
func (w *Writer[S]) Flush() {
	w.mustOpen()
	for i := range w.bufs {
		w.flushShard(i)
	}
}

func (w *Writer[S]) flushShard(i int) {
	if len(w.bufs[i]) == 0 {
		return
	}
	sh := &w.s.shards[i]
	sh.mu.Lock()
	sh.sk.UpdateBatch(w.bufs[i], 1)
	sh.mu.Unlock()
	w.bufs[i] = w.bufs[i][:0]
}

// Close flushes any buffered items and retires the Writer; Close is
// idempotent, and any other use after Close panics. It makes writer
// teardown explicit, symmetric with the epoch layer's EpochWriter.
func (w *Writer[S]) Close() {
	if w.closed {
		return
	}
	w.Flush()
	w.closed = true
}

func (w *Writer[S]) mustOpen() {
	if w.closed {
		panic("salsa: use of closed Writer")
	}
}
