// Package salsa_test: the epoch suite lives outside the package because
// it drives internal/epochtest, which itself imports salsa — an internal
// test file would close an import cycle.
package salsa_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	. "salsa"

	"salsa/internal/epochtest"
)

// The epoch layer's correctness argument is executable: every composable
// backend goes through internal/epochtest's deterministic-schedule
// drain-barrier equivalence, determinism, overestimate, and -race hammer
// checks, plus envelope round-trips and spec algebra wiring below.

func epochOpt(seed uint64) Options {
	return Options{Width: 1 << 11, Depth: 4, Seed: seed, Merge: MergeSum}
}

// epochBackends is the full composable surface of EpochShardedBy. exact
// marks backends whose drain is a pure counter sum: for those the
// interleaved replay must match the sequential reference in answers AND
// marshaled bytes. History-dependent conservative-update backends (cus,
// monitor) instead get determinism + overestimate.
var epochBackends = []struct {
	name      string
	spec      func() Spec
	exact     bool // sequential equivalence incl. byte identity
	monotonic bool // increment-only unsigned estimates never shrink
	ticks     bool // windowed: schedule interleaves rotations
}{
	{"cms-salsa", func() Spec { return CountMinOf(epochOpt(42)) }, true, true, false},
	{"cms-baseline", func() Spec { return CountMinOf(Options{Width: 1 << 11, Depth: 4, Seed: 42, Mode: ModeBaseline}) }, true, true, false},
	{"cms-tango", func() Spec {
		return CountMinOf(Options{Width: 1 << 11, Depth: 4, Seed: 42, Mode: ModeTango, Merge: MergeSum})
	}, true, true, false},
	{"cus", func() Spec { return ConservativeOf(epochOpt(42)) }, false, true, false},
	{"cs-salsa", func() Spec { return CountSketchOf(Options{Width: 1 << 11, Depth: 5, Seed: 42, Merge: MergeSum}) }, true, false, false},
	{"monitor", func() Spec { return MonitorOf(epochOpt(42), 16) }, false, true, false},
	{"distinct", func() Spec { return DistinctOf(epochOpt(42)) }, true, true, false},
	{"windowed-cms", func() Spec { return Windowed(CountMinOf(epochOpt(42)), 4, 0) }, true, false, true},
	{"windowed-cs", func() Spec {
		return Windowed(CountSketchOf(Options{Width: 1 << 11, Depth: 5, Seed: 42, Merge: MergeSum}), 4, 0)
	}, true, false, true},
	{"windowed-distinct", func() Spec { return Windowed(DistinctOf(epochOpt(42)), 4, 0) }, true, false, true},
}

func epochTarget(t testing.TB, spec Spec, writers int) *epochtest.Target {
	t.Helper()
	s, err := Build(EpochShardedBy(spec, writers))
	if err != nil {
		t.Fatalf("build epoch topology: %v", err)
	}
	return epochtest.MustWrap(s)
}

// TestEpochDrainBarrierEquivalence is the tentpole proof: a seeded
// interleaving of private-sketch ingests and epoch cuts, once quiesced,
// is indistinguishable from sequential ingestion of the same multiset —
// exactly (answers and bytes) for sum backends, and as a deterministic
// overestimate for conservative-update backends.
func TestEpochDrainBarrierEquivalence(t *testing.T) {
	for _, b := range epochBackends {
		t.Run(b.name, func(t *testing.T) {
			for _, seed := range []uint64{1, 77, 2021} {
				sched := epochtest.NewSchedule(epochtest.ScheduleConfig{
					Seed: seed, Writers: 4, Steps: 300, ChunkMax: 32,
					Universe: 512, Alpha: 0.99, Ticks: b.ticks,
				})
				build := func() *epochtest.Target { return epochTarget(t, b.spec(), 4) }
				epochtest.CheckDeterminism(t, build, sched)
				if b.exact {
					epochtest.CheckSequentialEquivalence(t, build, sched, true)
				}
				if b.monotonic || b.name == "cus" || b.name == "monitor" {
					target := build()
					epochtest.Replay(target, sched)
					epochtest.CheckOverestimate(t, target, sched)
				}
			}
		})
	}
}

// TestEpochHammer runs real goroutines against every backend under the
// race detector: concurrent writers, a background merger, window tickers,
// monotonic readers, and mid-run writer churn, closed out by the
// conservation check (every ingested item drained exactly once).
func TestEpochHammer(t *testing.T) {
	for _, b := range epochBackends {
		t.Run(b.name, func(t *testing.T) {
			epochtest.Hammer(t, epochTarget(t, b.spec(), 4), epochtest.HammerConfig{
				Writers:   4,
				Batches:   30,
				Batch:     64,
				Universe:  1024,
				Seed:      0xbeef,
				Interval:  20 * time.Microsecond,
				Monotonic: b.monotonic && !b.ticks,
				Tick:      b.ticks,
				Churn:     true,
			})
		})
	}
}

// TestEpochEnvelopeRoundTrip pins the wire format: marshal drains to a
// consistent snapshot, decode rebuilds a live epoch topology, re-marshal
// is byte-identical, and the decoded instance keeps ingesting.
func TestEpochEnvelopeRoundTrip(t *testing.T) {
	for _, b := range epochBackends {
		t.Run(b.name, func(t *testing.T) {
			target := epochTarget(t, b.spec(), 3)
			sched := epochtest.NewSchedule(epochtest.ScheduleConfig{
				Seed: 5, Writers: 3, Steps: 120, ChunkMax: 16,
				Universe: 256, Alpha: 0.99, Ticks: b.ticks,
			})
			epochtest.Replay(target, sched)

			blob, err := Marshal(target.Sketch)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			back, err := Unmarshal(blob)
			if err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			blob2, err := Marshal(back)
			if err != nil {
				t.Fatalf("re-marshal decoded instance: %v", err)
			}
			if !bytes.Equal(blob, blob2) {
				t.Fatalf("round trip not byte-identical: %d vs %d bytes", len(blob), len(blob2))
			}

			// The decoded instance is live: private ingestion drains into
			// its view and shows up in queries.
			decoded := epochtest.MustWrap(back.(Sketch))
			before := decoded.Query(7)
			w := decoded.NewWriter()
			for i := 0; i < 100; i++ {
				w.UpdateBatch([]uint64{7}, 1)
			}
			w.Close()
			decoded.Advance()
			if after := decoded.Query(7); after < before+100 {
				t.Fatalf("decoded instance dropped ingestion: item 7 went %d -> %d, want >= %d", before, after, before+100)
			}
		})
	}
}

// TestEpochSnapshotConsistency checks Marshal's drain barrier: bytes
// produced while writers are mid-stream decode to a view whose total
// volume accounts for every item the writers had handed off, never a
// torn fraction of a batch.
func TestEpochSnapshotConsistency(t *testing.T) {
	s := MustBuild(EpochShardedBy(CountMinOf(epochOpt(9)), 2)).(*EpochCountMin)
	w := s.NewWriter(0)
	w.UpdateBatch([]uint64{1, 2, 3, 4, 5}, 1)
	w.Flush()
	blob, err := Marshal(s)
	if err != nil {
		t.Fatalf("marshal mid-stream: %v", err)
	}
	back, err := Unmarshal(blob)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	snap := back.(*EpochCountMin)
	for item := uint64(1); item <= 5; item++ {
		if snap.Query(item) == 0 {
			t.Fatalf("snapshot lost flushed item %d", item)
		}
	}
	w.Close()
}

// TestEpochSpecAlgebra pins the textual surface: String renders the
// decorator, ParseSpec inverts it, and both build working topologies.
func TestEpochSpecAlgebra(t *testing.T) {
	spec := EpochShardedBy(Windowed(CountMinOf(epochOpt(3)), 4, 0), 8)
	want := "epoch(8,windowed(4,0,cms))"
	if got := spec.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	parsed, err := ParseSpec(want, epochOpt(3))
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", want, err)
	}
	if got := parsed.String(); got != want {
		t.Fatalf("parse round trip: %q -> %q", want, got)
	}
	if _, err := Build(parsed); err != nil {
		t.Fatalf("build parsed epoch spec: %v", err)
	}
	for _, expr := range []string{"epoch(4,cms)", "epoch(2,cs)", "epoch(2,monitor(8))", "epoch(2,distinct)", "epoch(3,cus)"} {
		parsed, err := ParseSpec(expr, epochOpt(3))
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", expr, err)
		}
		if _, err := Build(parsed); err != nil {
			t.Fatalf("build %q: %v", expr, err)
		}
	}
}

// TestEpochCompositionErrors pins the rejection table: structurally
// invalid epoch compositions fail Build with a typed *CompositionError
// naming the reason; parameter errors (bad writer count, merge rule, nil
// spec) fail with a plain error, matching the rest of the algebra.
func TestEpochCompositionErrors(t *testing.T) {
	cases := []struct {
		name  string
		spec  Spec
		typed bool // structural: must be a *CompositionError
		want  string
	}{
		{"topk leaf", EpochShardedBy(TopKOf(epochOpt(1), 8), 2), true, "TopK"},
		{"univmon leaf", EpochShardedBy(UnivMonOf(epochOpt(1), 4, 8), 2), true, "UnivMon"},
		{"aee leaf", EpochShardedBy(AEEOf(epochOpt(1)), 2), true, "AEE"},
		{"windowed monitor", EpochShardedBy(Windowed(MonitorOf(epochOpt(1), 8), 4, 0), 2), true, "Monitor"},
		{"count-rotated window", EpochShardedBy(Windowed(CountMinOf(epochOpt(1)), 4, 1024), 2), true, "Tick-driven"},
		{"epoch inside sharded", ShardedBy(EpochShardedBy(CountMinOf(epochOpt(1)), 2), 4), true, "outermost"},
		{"sharded inside epoch", EpochShardedBy(ShardedBy(CountMinOf(epochOpt(1)), 4), 2), true, "outermost"},
		{"nested epoch", EpochShardedBy(EpochShardedBy(CountMinOf(epochOpt(1)), 2), 2), true, "outermost"},
		{"zero writers", EpochShardedBy(CountMinOf(epochOpt(1)), 0), false, "writer count"},
		{"max merge", EpochShardedBy(CountMinOf(Options{Width: 1 << 10, Depth: 4, Seed: 1, Merge: MergeMax}), 2), false, "MergeSum"},
		{"nil inner", EpochShardedBy(nil, 2), false, "nil spec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Build(tc.spec)
			if err == nil {
				t.Fatalf("Build(%s) accepted an invalid composition", tc.spec)
			}
			var ce *CompositionError
			if got := errors.As(err, &ce); got != tc.typed {
				t.Fatalf("Build error typed=%v (%T), want typed=%v: %v", got, err, tc.typed, err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestEpochStalenessGauge checks the bounded-staleness contract: Pending
// counts exactly the items writers have published but the merger has not
// drained, and one Advance returns it to zero.
func TestEpochStalenessGauge(t *testing.T) {
	s := MustBuild(EpochShardedBy(CountMinOf(epochOpt(5)), 2)).(*EpochCountMin)
	w := s.NewWriter(0)
	w.UpdateBatch([]uint64{10, 11, 12}, 1)
	w.Flush()
	if got := s.Pending(); got != 3 {
		t.Fatalf("Pending() = %d after flushing 3 items, want 3", got)
	}
	// Queries see none of it until an epoch cut.
	if got := s.Query(10); got != 0 {
		t.Fatalf("undrained item visible to Query: %d", got)
	}
	s.Advance()
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after Advance, want 0", got)
	}
	if got := s.Query(10); got == 0 {
		t.Fatal("drained item invisible to Query")
	}
	st := s.Stats()
	if st.Drained != 3 {
		t.Fatalf("Stats().Drained = %d, want 3", st.Drained)
	}
	w.Close()
}

// TestEpochAdaptiveResharding checks the contention response: NewWriter
// beyond the configured base grows the slot set, and sustained empty
// drains shrink the unclaimed surplus back down to base.
func TestEpochAdaptiveResharding(t *testing.T) {
	s := MustBuild(EpochShardedBy(CountMinOf(epochOpt(6)), 2)).(*EpochCountMin)
	var ws []interface{ Close() }
	for i := 0; i < 6; i++ {
		ws = append(ws, s.NewWriter(0))
	}
	st := s.Stats()
	if st.Slots < 6 {
		t.Fatalf("6 writers claimed but only %d slots", st.Slots)
	}
	if st.Grown == 0 {
		t.Fatal("growth beyond base=2 not recorded in Stats().Grown")
	}
	for _, w := range ws {
		w.Close()
	}
	// Surplus slots are reclaimed only after sustained empty drains.
	for i := 0; i < 8; i++ {
		s.Advance()
	}
	st = s.Stats()
	if st.Slots != 2 {
		t.Fatalf("slots = %d after shrink, want base 2", st.Slots)
	}
	if st.Shrunk == 0 {
		t.Fatal("shrink not recorded in Stats().Shrunk")
	}
	// The topology still works at base size.
	w := s.NewWriter(0)
	w.UpdateBatch([]uint64{1}, 1)
	w.Close()
	s.Advance()
	if s.Query(1) == 0 {
		t.Fatal("post-shrink ingestion lost")
	}
}

// TestEpochWriterSemantics pins the writer edge cases: Update with
// count != 1 flushes buffered increments first (order preserved), Close
// is idempotent, and use-after-close panics.
func TestEpochWriterSemantics(t *testing.T) {
	s := MustBuild(EpochShardedBy(CountMinOf(epochOpt(7)), 2)).(*EpochCountMin)
	w := s.NewWriter(4)
	w.Increment(1)
	w.Update(2, 5)
	w.Increment(1)
	w.Close()
	w.Close() // idempotent
	s.Advance()
	if got := s.Query(1); got < 2 {
		t.Fatalf("buffered increments lost: Query(1) = %d, want >= 2", got)
	}
	if got := s.Query(2); got < 5 {
		t.Fatalf("direct update lost: Query(2) = %d, want >= 5", got)
	}
	// The odometer counts applied updates, not stream volume: two buffered
	// increments plus one direct count-5 update is three.
	if got := s.Stats().Drained; got != 3 {
		t.Fatalf("Stats().Drained = %d, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("use after Close did not panic")
		}
	}()
	w.Increment(3)
}

// TestEpochCompatibilityUpdatePath checks the serialized Sketch-interface
// path (direct Update/Query without writers) agrees with a plain sketch.
func TestEpochCompatibilityUpdatePath(t *testing.T) {
	e := MustBuild(EpochShardedBy(CountMinOf(epochOpt(8)), 2)).(*EpochCountMin)
	p := MustBuild(CountMinOf(epochOpt(8))).(*CountMin)
	for i := uint64(0); i < 2000; i++ {
		e.Update(i%97, 1)
		p.Update(i%97, 1)
	}
	for i := uint64(0); i < 97; i++ {
		if e.Query(i) != p.Query(i) {
			t.Fatalf("direct path diverges from plain sketch at %d: %d vs %d", i, e.Query(i), p.Query(i))
		}
	}
}
