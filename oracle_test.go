package salsa

import (
	"math"
	"testing"

	"salsa/internal/oracletest"
)

// The accuracy oracle retro-applies the internal/oracletest harness to the
// whole promoted Spec algebra: every estimator runs the harness's three
// deterministic workloads (Zipf, uniform, adversarial flood-plus-churn)
// against an exact-count reference and must land inside its paper's error
// envelope at the harness's fixed confidence. Geometry is chosen so the
// theoretical budgets are tight enough to catch regressions (a few counts
// of budget per item, not orders of magnitude).

const (
	oracleN     = 30000
	oracleSeed  = 2021 // ICDE year; fixed so failures replay byte for byte
	oracleWidth = 1 << 12
	oracleDepth = 4
)

func oracleWorkloads() []oracletest.Workload {
	return oracletest.Workloads(oracleN, oracleSeed)
}

func oracleIngest(s Sketch, wl oracletest.Workload) {
	for _, x := range wl.Items {
		s.Update(x, 1)
	}
}

// TestOracleCountMin pins the three Count-Min variants (SALSA, baseline,
// conservative update) to the Cormode-Muthukrishnan envelope: never
// underestimate, and overshoot e·N/w at most an e^−d fraction of queries.
func TestOracleCountMin(t *testing.T) {
	specs := []struct {
		name string
		spec Spec
	}{
		{"cms-salsa", CountMinOf(Options{Width: oracleWidth, Depth: oracleDepth, Seed: oracleSeed})},
		{"cms-baseline", CountMinOf(Options{Width: oracleWidth, Depth: oracleDepth, Mode: ModeBaseline, Seed: oracleSeed})},
		{"cus", ConservativeOf(Options{Width: oracleWidth, Depth: oracleDepth, Seed: oracleSeed})},
	}
	for _, tc := range specs {
		t.Run(tc.name, func(t *testing.T) {
			for _, wl := range oracleWorkloads() {
				cm := MustBuild(tc.spec).(*CountMin)
				oracleIngest(cm, wl)
				oracletest.CheckOverestimate(t, tc.name, wl, cm.Query)
				oracletest.CheckCountMinEnvelope(t, tc.name, wl, oracleWidth, oracleDepth, 0, cm.Query)
			}
		})
	}
}

// TestOracleCountSketch pins Count Sketch (SALSA and baseline) to the
// Charikar-Chen-Farach-Colton envelope: estimates stay within three row
// standard deviations sqrt(F2/w) at the per-row Chebyshev rate, and the
// signed errors are unbiased.
func TestOracleCountSketch(t *testing.T) {
	specs := []struct {
		name string
		spec Spec
	}{
		{"cs-salsa", CountSketchOf(Options{Width: oracleWidth, Depth: 5, Seed: oracleSeed})},
		{"cs-baseline", CountSketchOf(Options{Width: oracleWidth, Depth: 5, Mode: ModeBaseline, Seed: oracleSeed})},
	}
	for _, tc := range specs {
		t.Run(tc.name, func(t *testing.T) {
			for _, wl := range oracleWorkloads() {
				cs := MustBuild(tc.spec).(*CountSketch)
				oracleIngest(cs, wl)
				oracletest.CheckCountSketchEnvelope(t, tc.name, wl, oracleWidth, cs.Query)
			}
		})
	}
}

// TestOracleAEE pins both AEE modes to their additive sampling envelope:
// each estimate stays within five Binomial(f, p) standard deviations of
// the truth (scaled by 1/p) plus the Count-Min collision allowance, with
// at most a 1% violation rate — the paper's "additive error" regime. The
// realized sample probability is read back from the estimator, so the
// envelope tracks however far adaptive downsampling actually went.
func TestOracleAEE(t *testing.T) {
	specs := []struct {
		name string
		spec Spec
	}{
		{"aee-salsa", AEEOf(Options{Width: oracleWidth, Depth: oracleDepth, Seed: oracleSeed})},
		{"aee-baseline", AEEOf(Options{Width: oracleWidth, Depth: oracleDepth, Mode: ModeBaseline, Seed: oracleSeed})},
	}
	for _, tc := range specs {
		t.Run(tc.name, func(t *testing.T) {
			for _, wl := range oracleWorkloads() {
				a := MustBuild(tc.spec).(*AEE)
				oracleIngest(a, wl)
				oracletest.CheckAdditiveEnvelope(t, tc.name, wl, oracleWidth, a.SampleProb(), 5, 0.01, a.Query)
			}
		})
	}
}

// TestOracleDistinct pins Linear Counting to its published standard error:
// the estimate lands within six relative standard errors of the true
// cardinality (three-sigma with a 2x slack for the estimator's load bias
// near the top of its operating range).
func TestOracleDistinct(t *testing.T) {
	for _, wl := range oracleWorkloads() {
		d := MustBuild(DistinctOf(Options{Width: 1 << 15, Seed: oracleSeed})).(*Distinct)
		oracleIngest(d, wl)
		est, err := d.Estimate()
		if err != nil {
			t.Fatalf("distinct/%s: %v", wl.Name, err)
		}
		f0 := float64(wl.Exact.Distinct())
		oracletest.CheckScalarEnvelope(t, "distinct", wl, est, f0, 6*d.StdError(f0)*f0)
	}
}

// TestOracleUnivMon pins the universal sketch's three headline statistics.
// Entropy and the second moment carry the paper's multiplicative
// guarantee; the 25% tolerance is empirical slack for this geometry
// (12 levels, 2^12 width, 100-item heaps), wide enough for the recursive
// estimator's level-sampling variance yet far below the 2-10x drift a
// broken level seed or heap produces. Distinct gets 35%: it rides the
// deepest, noisiest sampling levels.
func TestOracleUnivMon(t *testing.T) {
	for _, wl := range oracleWorkloads() {
		u := MustBuild(UnivMonOf(Options{Width: oracleWidth, Seed: oracleSeed}, 12, 100)).(*UnivMon)
		oracleIngest(u, wl)
		oracletest.CheckScalarEnvelope(t, "univmon-entropy", wl, u.Entropy(), wl.Exact.Entropy(), 0.25*wl.Exact.Entropy())
		oracletest.CheckScalarEnvelope(t, "univmon-f2", wl, u.Moment(2), wl.Exact.Moment(2), 0.25*wl.Exact.Moment(2))
		oracletest.CheckScalarEnvelope(t, "univmon-distinct", wl, u.Distinct(), float64(wl.Exact.Distinct()), 0.35*float64(wl.Exact.Distinct()))
	}
}

// TestOracleColdFilter pins the filtered decorator: still a strict
// overestimate, and within the Count-Min envelope of its stage-2 sketch
// plus the two filter thresholds (15 + 255) that cold items may carry.
func TestOracleColdFilter(t *testing.T) {
	specs := []struct {
		name string
		spec Spec
	}{
		{"coldfilter-cms", Filtered(CountMinOf(Options{Width: oracleWidth, Seed: oracleSeed}))},
		{"coldfilter-cus", Filtered(ConservativeOf(Options{Width: oracleWidth, Seed: oracleSeed}))},
	}
	for _, tc := range specs {
		t.Run(tc.name, func(t *testing.T) {
			for _, wl := range oracleWorkloads() {
				cf := MustBuild(tc.spec).(*ColdFilter)
				oracleIngest(cf, wl)
				oracletest.CheckOverestimate(t, tc.name, wl, cf.Query)
				oracletest.CheckCountMinEnvelope(t, tc.name, wl, oracleWidth, 3, 15+255, cf.Query)
			}
		})
	}
}

// TestOraclePyramid pins the tiered decorator: a strict overestimate
// within the Count-Min envelope plus one low-order carry word (2^4 per
// shared higher-layer sibling across the sketch's remaining layers) of
// documented empirical slack.
func TestOraclePyramid(t *testing.T) {
	for _, wl := range oracleWorkloads() {
		p := MustBuild(Tiered(CountMinOf(Options{Width: oracleWidth, Seed: oracleSeed}))).(*Pyramid)
		oracleIngest(p, wl)
		oracletest.CheckOverestimate(t, "pyramid", wl, p.Query)
		extra := float64(16 * p.Layers())
		oracletest.CheckCountMinEnvelope(t, "pyramid", wl, oracleWidth, oracleDepth, extra, p.Query)
	}
}

// TestOracleEnvelopeTightness guards the harness itself against decay into
// vacuity: a deliberately broken estimator (everything doubled, plus a
// constant) must violate the Count-Min envelope the real sketches pass.
// A harness that accepts this estimator asserts nothing.
func TestOracleEnvelopeTightness(t *testing.T) {
	wl := oracletest.Zipf(oracleN, oracleN/15, 1.0, oracleSeed)
	budget := math.E * float64(wl.Exact.Volume()) / float64(oracleWidth)
	violations, queries := 0, 0
	for _, f := range wl.Exact.Counts() {
		queries++
		broken := 2*f + uint64(budget) + 1
		if float64(broken)-float64(f) >= budget {
			violations++
		}
	}
	if frac := float64(violations) / float64(queries); frac < 0.5 {
		t.Fatalf("broken estimator only violates %.2f of queries; the envelope is too loose to catch it", frac)
	}
}

// oracleEpochIngest pushes a workload through the lock-free epoch path —
// items fan out round-robin across private writer sketches, with an epoch
// cut every few batches so the merged view is the product of thousands of
// drains rather than one bulk merge.
func oracleEpochIngest(s interface {
	Advance()
	Pending() uint64
}, newWriter func() interface {
	UpdateBatch(items []uint64, count int64)
	Close()
}, wl oracletest.Workload) {
	const writers, chunk = 4, 16
	ws := make([]interface {
		UpdateBatch(items []uint64, count int64)
		Close()
	}, writers)
	for i := range ws {
		ws[i] = newWriter()
	}
	for i, turn := 0, 0; i < len(wl.Items); i, turn = i+chunk, turn+1 {
		end := i + chunk
		if end > len(wl.Items) {
			end = len(wl.Items)
		}
		ws[turn%writers].UpdateBatch(wl.Items[i:end], 1)
		if turn%2 == 1 {
			s.Advance()
		}
	}
	for _, w := range ws {
		w.Close()
	}
	s.Advance()
}

// TestOracleEpochCountMin retro-applies the accuracy oracle to the epoch
// layer: after thousands of private-sketch drains the merged view still
// sits inside the exact Cormode-Muthukrishnan envelope of its leaf — the
// epoch machinery adds zero error, not just bounded error.
func TestOracleEpochCountMin(t *testing.T) {
	specs := []struct {
		name string
		spec Spec
	}{
		{"epoch-cms-salsa", EpochShardedBy(CountMinOf(Options{Width: oracleWidth, Depth: oracleDepth, Seed: oracleSeed, Merge: MergeSum}), 4)},
		{"epoch-cms-baseline", EpochShardedBy(CountMinOf(Options{Width: oracleWidth, Depth: oracleDepth, Mode: ModeBaseline, Seed: oracleSeed}), 4)},
		{"epoch-cus", EpochShardedBy(ConservativeOf(Options{Width: oracleWidth, Depth: oracleDepth, Seed: oracleSeed, Merge: MergeSum}), 4)},
	}
	for _, tc := range specs {
		t.Run(tc.name, func(t *testing.T) {
			for _, wl := range oracleWorkloads() {
				e := MustBuild(tc.spec).(*EpochCountMin)
				oracleEpochIngest(e, func() interface {
					UpdateBatch(items []uint64, count int64)
					Close()
				} {
					return e.NewWriter(0)
				}, wl)
				if e.Epochs() < 400 {
					t.Fatalf("epoch path under-exercised: only %d drains", e.Epochs())
				}
				oracletest.CheckOverestimate(t, tc.name, wl, e.Query)
				oracletest.CheckCountMinEnvelope(t, tc.name, wl, oracleWidth, oracleDepth, 0, e.Query)
			}
		})
	}
}

// TestOracleEpochCountSketch pins the signed estimator through the epoch
// path to the same Charikar-Chen-Farach-Colton envelope as the plain
// sketch: drains are exact counter sums, so the error distribution is
// untouched by merge scheduling.
func TestOracleEpochCountSketch(t *testing.T) {
	for _, wl := range oracleWorkloads() {
		e := MustBuild(EpochShardedBy(CountSketchOf(Options{Width: oracleWidth, Depth: 5, Seed: oracleSeed, Merge: MergeSum}), 4)).(*EpochCountSketch)
		oracleEpochIngest(e, func() interface {
			UpdateBatch(items []uint64, count int64)
			Close()
		} {
			return e.NewWriter(0)
		}, wl)
		oracletest.CheckCountSketchEnvelope(t, "epoch-cs", wl, oracleWidth, e.Query)
	}
}
