package salsa

import (
	"fmt"

	"salsa/internal/pyramid"
)

// pyramidLayers is the pyramid depth a Tiered spec builds: a layer-1 byte
// plus five 6-bit hybrid tranches count to 2^38 per cell before the top
// layer saturates, while halving widths keep the footprint under 2·Width
// bytes per row.
const pyramidLayers = 6

// maxPyramidWidth bounds the layer-1 width of a Tiered spec so the byte
// arena stays well inside int range on 32-bit platforms.
const maxPyramidWidth = 1 << 30

// validatePyramidWidth checks the Tiered width bound (Width itself is
// validated by Options.Validate).
func validatePyramidWidth(width int) error {
	if width > maxPyramidWidth {
		return fmt.Errorf("salsa: Tiered Width %d exceeds the maximum %d", width, maxPyramidWidth)
	}
	return nil
}

// pyramidEffectiveLayers returns how many layers a width-w pyramid
// actually holds: the halving layer widths stop at one byte.
func pyramidEffectiveLayers(width int) int {
	layers := 0
	for l, w := 0, width; l < pyramidLayers && w >= 1; l++ {
		layers++
		w /= 2
	}
	return layers
}

// Pyramid is the Pyramid Sketch (the paper's variable-counter-size
// competitor, Fig. 9): a Count-Min layout whose counters overflow into
// halving-width parent layers of shared hybrid counters — two flag bits
// plus six count bits per parent byte, shared between two children, which
// is the error source the paper highlights. Estimates are min-over-rows
// overestimates.
//
// Pyramid is a Cash Register sketch: Update panics on negative counts.
type Pyramid struct {
	py  *pyramid.Sketch
	opt Options
}

// buildPyramid realizes a Tiered(CountMinOf) spec.
func buildPyramid(opt Options) (*Pyramid, error) {
	if err := opt.validateFor(kindCountMin); err != nil {
		return nil, err
	}
	if err := validatePyramidWidth(opt.Width); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(4, MergeSum)
	return &Pyramid{
		py:  pyramid.New(opt.Depth, opt.Width, pyramidLayers, opt.Seed),
		opt: opt,
	}, nil
}

// Update adds count occurrences of item; count must be non-negative.
func (p *Pyramid) Update(item uint64, count int64) { p.py.Update(item, count) }

// UpdateBatch adds count occurrences of every item, in order.
func (p *Pyramid) UpdateBatch(items []uint64, count int64) { p.py.UpdateBatch(items, count) }

// Increment adds one occurrence of item.
func (p *Pyramid) Increment(item uint64) { p.py.Update(item, 1) }

// Query returns the min-over-rows frequency estimate, reconstructed by
// walking each row's flag chain.
func (p *Pyramid) Query(item uint64) uint64 { return p.py.Query(item) }

// Layers returns the effective layer count (halving widths stop at one
// byte).
func (p *Pyramid) Layers() int { return p.py.Layers() }

// Reset zeroes every counter, reusing the arena.
func (p *Pyramid) Reset() { p.py.Reset() }

// Options returns the row Options with defaults applied; Mode,
// CounterBits, Merge and CompactEncoding are carried but unused — the
// pyramid layers are the counter backend.
func (p *Pyramid) Options() Options { return p.opt }

// MemoryBits returns the pre-allocated footprint in bits; unlike SALSA,
// every layer is allocated up front whether or not it is ever reached.
func (p *Pyramid) MemoryBits() int { return p.py.SizeBits() }
