package salsa

import (
	"fmt"

	"salsa/internal/coldfilter"
)

// maxFilterWidth bounds the second-stage Width a Filtered spec accepts:
// the layer-1 filter is 4× wider, and the bound keeps its counter count
// well inside int range on 32-bit platforms.
const maxFilterWidth = 1 << 28

// validateFilterWidth checks the Filtered width bound (Width itself is
// validated by Options.Validate).
func validateFilterWidth(width int) error {
	if width > maxFilterWidth {
		return fmt.Errorf("salsa: Filtered Width %d exceeds the maximum %d", width, maxFilterWidth)
	}
	return nil
}

// filterSeed derives the filter layers' hash seed family from the stage-2
// seed; it differs from every stage-2 row seed so the layers' collisions
// stay independent of the sketch's.
func filterSeed(seed uint64) uint64 { return seed ^ 0xc01df117 }

// ColdFilter separates the cold items from the heavy hitters (§III): two
// conservative filter layers — 4·w 4-bit counters, then w 8-bit counters,
// three probes each — absorb cold volume, and only the hot residual
// reaches the second-stage sketch (the paper's Fig. 13 uses a SALSA CUS
// stage). Estimates are conservative overestimates.
//
// ColdFilter is a Cash Register sketch: Update panics on negative counts.
type ColdFilter struct {
	cf           *coldfilter.Filter
	stage2       *CountMin
	opt          Options
	conservative bool
}

// buildColdFilter realizes a Filtered(CountMinOf/ConservativeOf) spec.
func buildColdFilter(opt Options, conservative bool) (*ColdFilter, error) {
	kind := kindCountMin
	if conservative {
		kind = kindConservative
	}
	if err := opt.validateFor(kind); err != nil {
		return nil, err
	}
	if err := validateFilterWidth(opt.Width); err != nil {
		return nil, err
	}
	stage2, err := buildCountMin(opt, conservative)
	if err != nil {
		return nil, err
	}
	o := stage2.Options()
	cf := coldfilter.New(coldfilter.Config{
		W1:   4 * o.Width,
		W2:   o.Width,
		D1:   3,
		D2:   3,
		Seed: filterSeed(o.Seed),
	}, stage2.sk)
	return &ColdFilter{cf: cf, stage2: stage2, opt: o, conservative: conservative}, nil
}

// Update adds count occurrences of item; count must be non-negative.
func (c *ColdFilter) Update(item uint64, count int64) { c.cf.Update(item, count) }

// UpdateBatch adds count occurrences of every item, in order.
func (c *ColdFilter) UpdateBatch(items []uint64, count int64) { c.cf.UpdateBatch(items, count) }

// Process records one occurrence of item.
func (c *ColdFilter) Process(item uint64) { c.cf.Update(item, 1) }

// Query returns the frequency estimate: the filter layers' conservative
// counts, plus the second stage once both layers saturate for item.
func (c *ColdFilter) Query(item uint64) uint64 { return c.cf.Query(item) }

// Stage2Volume returns how much update volume reached the second stage —
// the quantity the filter exists to minimize.
func (c *ColdFilter) Stage2Volume() uint64 { return c.cf.Stage2Volume() }

// Options returns the second-stage sketch Options with defaults applied.
func (c *ColdFilter) Options() Options { return c.opt }

// MemoryBits returns the footprint of both layers and the second stage.
func (c *ColdFilter) MemoryBits() int { return c.cf.SizeBits() }
