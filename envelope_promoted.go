package salsa

import (
	"encoding/binary"

	"salsa/internal/aee"
	"salsa/internal/coldfilter"
	"salsa/internal/core"
	"salsa/internal/hashing"
	"salsa/internal/pyramid"
	"salsa/internal/sketch"
	"salsa/internal/topk"
	"salsa/internal/univmon"
)

// Envelope codecs for the sketches promoted into the Spec algebra:
// UnivMon, AEE, Distinct, WindowedDistinct, ColdFilter and Pyramid. The
// formats follow the existing envelope discipline — declared Options are
// re-validated with the same rules Build enforces, every geometry is
// checked against the payload before (or by) allocation, decoded sketches
// are fully operational, and re-marshaling reproduces the payload byte
// for byte. Derivable state (hash seeds, UnivMon's sampling seed, the
// filter and pyramid layer geometry) is re-derived from the Options
// rather than stored, so a payload cannot smuggle an inconsistent
// combination.

// marshalUnivMon encodes a UnivMon payload: the Options, the level and
// heap-capacity geometry, the volume odometer, then one Count Sketch
// block plus one candidate heap per level.
func marshalUnivMon(u *UnivMon) ([]byte, error) {
	buf := appendOptions(envHeader(tagUnivMon), u.opt)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(u.levels))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(u.k))
	buf = binary.LittleEndian.AppendUint64(buf, u.um.Volume())
	for j := 0; j < u.um.Levels(); j++ {
		payload, err := u.um.LevelSketch(j).MarshalBinary()
		if err != nil {
			return nil, err
		}
		buf = appendBlock(buf, payload)
		buf = appendHeap(buf, u.um.LevelHeap(j))
	}
	return buf, nil
}

// unmarshalUnivMon decodes a UnivMon payload. Every level sketch is
// verified compatible with a reference built from the declared Options and
// the level's derived seed — the same check the windowed ring decoder
// runs — so the levels provably share the declared geometry, mode, and
// seed family before univmon.Restore rebuilds the stack.
func unmarshalUnivMon(data []byte) (Sketch, error) {
	opt, rest, err := readOptions(data)
	if err != nil {
		return nil, err
	}
	if len(rest) < 3*8 {
		return nil, ErrBadPayload
	}
	levels := binary.LittleEndian.Uint64(rest)
	k := binary.LittleEndian.Uint64(rest[8:])
	volume := binary.LittleEndian.Uint64(rest[16:])
	rest = rest[24:]
	if levels == 0 || levels > maxUnivMonLevels || k == 0 || k > maxHeapK {
		return nil, ErrBadPayload
	}
	spec := leafSpec{kind: kindUnivMon, opt: opt, k: int(k), levels: int(levels)}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(5, MergeSum)
	seeds := hashing.Seeds(opt.Seed, int(levels)+1)
	css := make([]*sketch.CountSketch, levels)
	heaps := make([]*topk.Heap, levels)
	for j := range css {
		block, r, err := readBlock(rest)
		if err != nil {
			return nil, err
		}
		cs, err := sketch.UnmarshalCountSketch(block)
		if err != nil {
			return nil, err
		}
		// Cheap geometry pre-check before the reference allocation: the
		// decoded sketch (whose own allocation is payload-bounded) must
		// already claim the declared shape.
		if cs.Depth() != opt.Depth || cs.Width() != opt.Width {
			return nil, ErrBadPayload
		}
		ref := sketch.NewCountSketch(opt.Depth, opt.Width, signedRowSpec(opt), seeds[j])
		if err := ref.CompatibleWith(cs); err != nil {
			return nil, err
		}
		heap, r, err := readHeap(r, int(k))
		if err != nil {
			return nil, err
		}
		css[j], heaps[j], rest = cs, heap, r
	}
	if len(rest) != 0 {
		return nil, ErrBadPayload
	}
	um, err := univmon.Restore(css, heaps, seeds[levels], volume)
	if err != nil {
		return nil, err
	}
	return &UnivMon{um: um, opt: opt, levels: int(levels), k: int(k)}, nil
}

// marshalAEE encodes an AEE payload: the Options (whose Mode implies the
// backend), the sampling odometer, then one row block per sketch row.
func marshalAEE(a *AEE) ([]byte, error) {
	buf := appendOptions(envHeader(tagAEE), a.opt)
	if a.est != nil {
		for _, v := range []uint64{
			uint64(a.est.Downsamples()), a.est.SampledSince(), a.est.Processed(), a.est.RngState(),
		} {
			buf = binary.LittleEndian.AppendUint64(buf, v)
		}
		for i := 0; i < a.est.NumRows(); i++ {
			payload, err := a.est.Row(i).MarshalBinary()
			if err != nil {
				return nil, err
			}
			buf = appendBlock(buf, payload)
		}
		return buf, nil
	}
	for _, v := range []uint64{
		uint64(a.sal.Downsamples()), a.sal.Overflows(), a.sal.Processed(), a.sal.Downsampled(), a.sal.RngState(),
	} {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	for i := 0; i < a.sal.NumRows(); i++ {
		payload, err := a.sal.Row(i).MarshalBinary()
		if err != nil {
			return nil, err
		}
		buf = appendBlock(buf, payload)
	}
	return buf, nil
}

// unmarshalAEE decodes an AEE payload; aee.Restore/RestoreSalsa validate
// the decoded rows against the declared geometry and bound the odometer.
func unmarshalAEE(data []byte) (Sketch, error) {
	opt, rest, err := readOptions(data)
	if err != nil {
		return nil, err
	}
	if err := opt.validateFor(kindAEE); err != nil {
		return nil, err
	}
	opt = aeeDefaults(opt)
	words := 5
	if opt.Mode == ModeBaseline {
		words = 4
	}
	if len(rest) < words*8 {
		return nil, ErrBadPayload
	}
	odo := make([]uint64, words)
	for i := range odo {
		odo[i] = binary.LittleEndian.Uint64(rest[i*8:])
	}
	rest = rest[words*8:]
	if opt.Mode == ModeBaseline {
		rows := make([]*core.Fixed, opt.Depth)
		for i := range rows {
			block, r, err := readBlock(rest)
			if err != nil {
				return nil, err
			}
			if rows[i], err = core.UnmarshalFixed(block); err != nil {
				return nil, err
			}
			rest = r
		}
		if len(rest) != 0 {
			return nil, ErrBadPayload
		}
		if odo[0] > 64 {
			return nil, ErrBadPayload
		}
		est, err := aee.Restore(aee.Config{
			Rows: opt.Depth, Width: opt.Width, CounterBits: opt.CounterBits,
			Probabilistic: true, Seed: opt.Seed,
		}, rows, uint(odo[0]), odo[1], odo[2], odo[3])
		if err != nil {
			return nil, err
		}
		return &AEE{opt: opt, est: est}, nil
	}
	rows := make([]*core.Salsa, opt.Depth)
	for i := range rows {
		block, r, err := readBlock(rest)
		if err != nil {
			return nil, err
		}
		if rows[i], err = core.UnmarshalSalsa(block); err != nil {
			return nil, err
		}
		rest = r
	}
	if len(rest) != 0 {
		return nil, ErrBadPayload
	}
	if odo[0] > 64 {
		return nil, ErrBadPayload
	}
	sal, err := aee.RestoreSalsa(aee.SalsaConfig{
		Rows: opt.Depth, Width: opt.Width, S: opt.CounterBits,
		Delta: aeeDelta, Seed: opt.Seed,
	}, rows, uint(odo[0]), odo[1], odo[2], odo[3], odo[4])
	if err != nil {
		return nil, err
	}
	return &AEE{opt: opt, sal: sal}, nil
}

// unmarshalDistinct decodes a Distinct payload: one backing CountMin
// block, re-validated with the Distinct build rules (plain CountMin only,
// and no Tango rows — they cannot report the zero fraction Linear
// Counting needs).
func unmarshalDistinct(payload []byte) (Sketch, error) {
	block, rest, err := readBlock(payload)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, ErrBadPayload
	}
	cm, err := UnmarshalCountMin(block)
	if err != nil {
		return nil, err
	}
	if cm.conservative {
		return nil, ErrBadPayload
	}
	if err := cm.opt.validateFor(kindDistinct); err != nil {
		return nil, err
	}
	return &Distinct{cm: cm}, nil
}

// unmarshalWindowedDistinct decodes a WindowedDistinct payload: the inner
// windowed CMS ring, re-validated with the Distinct build rules.
func unmarshalWindowedDistinct(payload []byte) (Sketch, error) {
	w, rest, err := unmarshalWindowedCMS(payload)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 || w.conservative {
		return nil, ErrBadPayload
	}
	if err := w.opt.validateFor(kindDistinct); err != nil {
		return nil, err
	}
	return &WindowedDistinct{w: w}, nil
}

// marshalColdFilter encodes a ColdFilter payload: the stage-2 volume
// odometer, the two filter layers, and the second-stage sketch (whose own
// Options block carries the topology's configuration — the layer geometry
// and seeds are derived from it, never stored).
func marshalColdFilter(c *ColdFilter) ([]byte, error) {
	buf := binary.LittleEndian.AppendUint64(envHeader(tagColdFilter), c.cf.Stage2Volume())
	l1, err := c.cf.Layer1().MarshalBinary()
	if err != nil {
		return nil, err
	}
	l2, err := c.cf.Layer2().MarshalBinary()
	if err != nil {
		return nil, err
	}
	stage2, err := c.stage2.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf = appendBlock(buf, l1)
	buf = appendBlock(buf, l2)
	return appendBlock(buf, stage2), nil
}

// unmarshalColdFilter decodes a ColdFilter payload, re-deriving the layer
// geometry from the decoded second stage's Options exactly as the builder
// does; coldfilter.Restore validates the layer arrays against it.
func unmarshalColdFilter(data []byte) (Sketch, error) {
	if len(data) < 8 {
		return nil, ErrBadPayload
	}
	stage2Hits := binary.LittleEndian.Uint64(data)
	b1, rest, err := readBlock(data[8:])
	if err != nil {
		return nil, err
	}
	b2, rest, err := readBlock(rest)
	if err != nil {
		return nil, err
	}
	b3, rest, err := readBlock(rest)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, ErrBadPayload
	}
	l1, err := core.UnmarshalFixed(b1)
	if err != nil {
		return nil, err
	}
	l2, err := core.UnmarshalFixed(b2)
	if err != nil {
		return nil, err
	}
	stage2, err := UnmarshalCountMin(b3)
	if err != nil {
		return nil, err
	}
	opt := stage2.opt
	kind := kindCountMin
	if stage2.conservative {
		kind = kindConservative
	}
	if err := opt.validateFor(kind); err != nil {
		return nil, err
	}
	if err := validateFilterWidth(opt.Width); err != nil {
		return nil, err
	}
	cf, err := coldfilter.Restore(coldfilter.Config{
		W1: 4 * opt.Width, W2: opt.Width, D1: 3, D2: 3, Seed: filterSeed(opt.Seed),
	}, l1, l2, stage2Hits, stage2.sk)
	if err != nil {
		return nil, err
	}
	return &ColdFilter{cf: cf, stage2: stage2, opt: opt, conservative: stage2.conservative}, nil
}

// marshalPyramid encodes a Pyramid payload: the Options and the byte
// arena; the layer layout is a pure function of the Options.
func marshalPyramid(p *Pyramid) ([]byte, error) {
	buf := appendOptions(envHeader(tagPyramid), p.opt)
	return appendBlock(buf, p.py.State()), nil
}

// unmarshalPyramid decodes a Pyramid payload; pyramid.Restore checks the
// arena length against the declared geometry before allocating the rows.
func unmarshalPyramid(data []byte) (Sketch, error) {
	opt, rest, err := readOptions(data)
	if err != nil {
		return nil, err
	}
	if err := opt.validateFor(kindCountMin); err != nil {
		return nil, err
	}
	if err := validatePyramidWidth(opt.Width); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(4, MergeSum)
	state, rest, err := readBlock(rest)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, ErrBadPayload
	}
	py, err := pyramid.Restore(opt.Depth, opt.Width, pyramidLayers, opt.Seed, state)
	if err != nil {
		return nil, err
	}
	return &Pyramid{py: py, opt: opt}, nil
}
