package salsa

import (
	"errors"
	"fmt"
	"sort"

	"salsa/internal/sketch"
	"salsa/internal/topk"
	"salsa/internal/window"
)

// Sliding-window sketches: time-scoped variants of CountMin,
// ConservativeUpdate, CountSketch and Monitor that answer queries over the
// most recent stretch of the stream instead of its whole history. The
// window is a ring of B bucket sketches sharing one set of hash seeds; the
// current bucket absorbs updates, a rotation retires the oldest bucket
// wholesale, and queries are answered from an incrementally-maintained
// merge of the live buckets (see internal/window). Rotation happens every
// bucketItems updates, or on explicit Tick calls when bucketItems is 0 —
// tie Tick to a wall-clock timer for time-based windows.
//
// Semantics are bucket-granular: the live window always covers between
// (B−1)·bucketItems+1 and B·bucketItems of the most recent items, so
// estimates trail an exact B·bucketItems-item window by at most one bucket
// of slack. Memory is 2B times a single sketch of the same Options at
// steady state: B buckets, the back aggregate and query view, and B−2
// precomputed suffix merges that make rotation O(1) amortized in B
// (see internal/window; the suffix sketches are allocated at the first
// stack flip, so rings that never rotate stay at B+2).
//
// The windowed types satisfy Sketch, so they compose with the Sharded
// concurrency layer and its batch APIs; see NewShardedWindowedCountMin.

// WindowedCountMin is a CountMin (or, via NewWindowedConservativeUpdate,
// Conservative Update) sketch over a sliding window of the stream. Query
// returns an overestimate of the item's frequency within the live window,
// with the merged-sketch guarantees of the underlying backend.
type WindowedCountMin struct {
	ring         *window.Ring[*sketch.CMS]
	opt          Options
	conservative bool
}

// buildWindowedCMS realizes a Windowed(CountMinOf/ConservativeOf) spec.
//
// Windowed sketches always use sum-merge counters: a window query merges
// bucket sketches of disjoint substreams, and only summing their counters
// preserves the overestimate guarantee for the concatenated stream
// (max-merge is the tighter policy for counter merges within one stream,
// Theorem V.2, but taking the max across buckets would under-count items
// spread over the window). MergeMax is a composition error.
func buildWindowedCMS(opt Options, buckets, bucketItems int, conservative bool) (*WindowedCountMin, error) {
	kind := kindCountMin
	if conservative {
		kind = kindConservative
	}
	if err := opt.validateFor(kind); err != nil {
		return nil, err
	}
	if err := validateWindow(opt, buckets, bucketItems); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(4, MergeSum)
	ring := window.NewRing(buckets, uint64(bucketItems), cmsRingOps(opt, conservative))
	return &WindowedCountMin{ring: ring, opt: opt, conservative: conservative}, nil
}

// cmsRingOps binds the ring bucket operations to *sketch.CMS for
// defaults-applied Options; the envelope decoder reuses it to rebuild
// decoded rings.
func cmsRingOps(opt Options, conservative bool) window.Ops[*sketch.CMS] {
	return window.Ops[*sketch.CMS]{
		New: func() *sketch.CMS {
			if conservative {
				return sketch.NewCUS(opt.Depth, opt.Width, rowSpec(opt), opt.Seed)
			}
			return sketch.NewCMS(opt.Depth, opt.Width, rowSpec(opt), opt.Seed)
		},
		Reset: (*sketch.CMS).Reset,
		Merge: (*sketch.CMS).MergeFrom,
	}
}

// NewWindowedCountMin returns a windowed Count-Min Sketch of buckets ring
// buckets. bucketItems > 0 rotates the window automatically every
// bucketItems updates; bucketItems == 0 leaves rotation to Tick. All modes
// are supported, including ModeTango. MergeMax panics; windowed sketches
// force sum-merge counters.
//
// Deprecated: Use Build(Windowed(CountMinOf(opt), buckets, bucketItems)),
// which returns construction errors instead of panicking.
func NewWindowedCountMin(opt Options, buckets, bucketItems int) *WindowedCountMin {
	return mustSketch(buildWindowedCMS(opt, buckets, bucketItems, false))
}

// NewWindowedConservativeUpdate is NewWindowedCountMin with the
// conservative-update rule applied within each bucket (Cash Register
// streams only). Like all windowed sketches it uses sum-merge counters;
// every CU row counter overestimates its items' bucket substream counts,
// so the summed window view keeps the overestimate guarantee.
//
// Deprecated: Use Build(Windowed(ConservativeOf(opt), buckets, bucketItems)).
func NewWindowedConservativeUpdate(opt Options, buckets, bucketItems int) *WindowedCountMin {
	return mustSketch(buildWindowedCMS(opt, buckets, bucketItems, true))
}

// validateWindow checks the window-decorator parameters and the
// sum-merge requirement shared by every windowed sketch.
func validateWindow(opt Options, buckets, bucketItems int) error {
	if opt.Merge == MergeMax {
		return errors.New("salsa: windowed sketches require MergeSum (bucket merges sum disjoint substreams)")
	}
	if buckets <= 0 {
		return fmt.Errorf("salsa: window needs at least one bucket, got %d", buckets)
	}
	if buckets > maxWindowBuckets {
		return fmt.Errorf("salsa: window buckets %d exceed the maximum %d", buckets, maxWindowBuckets)
	}
	if bucketItems < 0 {
		return fmt.Errorf("salsa: negative bucket interval %d", bucketItems)
	}
	return nil
}

// maxWindowBuckets bounds the ring size; it matches the decoder's
// hostile-payload bound, so every constructible window is serializable.
const maxWindowBuckets = 1 << 16

// Update adds count occurrences of item to the current bucket. Negative
// counts follow the same rules as CountMin (MergeSum only, never in
// conservative mode); note a negative update only cancels occurrences
// recorded in the current bucket.
func (w *WindowedCountMin) Update(item uint64, count int64) {
	w.ring.Cur().Update(item, count)
	w.ring.Wrote(1)
}

// Increment adds one occurrence of item.
func (w *WindowedCountMin) Increment(item uint64) { w.Update(item, 1) }

// UpdateBatch adds count occurrences of every item, in order, splitting the
// batch at rotation boundaries so it leaves the window in the identical
// state as the equivalent sequence of single Updates.
func (w *WindowedCountMin) UpdateBatch(items []uint64, count int64) {
	windowBatch(w.ring, items, count)
}

// windowBatch applies a batch to the current bucket, split at rotation
// boundaries so batched ingestion stays bit-for-bit identical to the
// equivalent sequence of single Updates.
func windowBatch[S interface{ UpdateBatch([]uint64, int64) }](r *window.Ring[S], items []uint64, count int64) {
	for len(items) > 0 {
		chunk := items
		if room := r.Room(); uint64(len(chunk)) > room {
			chunk = chunk[:room]
		}
		r.Cur().UpdateBatch(chunk, count)
		r.Wrote(uint64(len(chunk)))
		items = items[len(chunk):]
	}
}

// IncrementBatch adds one occurrence of every item, in order.
func (w *WindowedCountMin) IncrementBatch(items []uint64) { w.UpdateBatch(items, 1) }

// Query returns the frequency overestimate of item within the live window.
func (w *WindowedCountMin) Query(item uint64) uint64 { return w.ring.View().Query(item) }

// QueryBatch writes the windowed estimate of items[j] into dst[j] and
// returns dst, appending if dst is short (pass nil to allocate).
func (w *WindowedCountMin) QueryBatch(items []uint64, dst []uint64) []uint64 {
	return w.ring.View().QueryBatch(items, dst)
}

// Tick rotates the window by one bucket, retiring the oldest. It is how
// callers drive time-based windows (bucketItems == 0), and may also be
// called alongside count-based rotation.
func (w *WindowedCountMin) Tick() { w.ring.Rotate() }

// Buckets returns the number of ring buckets B.
func (w *WindowedCountMin) Buckets() int { return w.ring.Buckets() }

// BucketItems returns the automatic rotation interval (0 = Tick-driven).
func (w *WindowedCountMin) BucketItems() int { return int(w.ring.Interval()) }

// Rotations returns the number of bucket rotations performed so far.
func (w *WindowedCountMin) Rotations() uint64 { return w.ring.Rotations() }

// WindowVolume returns the number of items recorded in the live window.
func (w *WindowedCountMin) WindowVolume() uint64 { return w.ring.Volume() }

// MemoryBits returns the steady-state subsystem footprint in bits: B bucket
// sketches, the rotation stacks' aggregates, and the query view.
func (w *WindowedCountMin) MemoryBits() int {
	return w.ring.Sketches() * w.ring.Cur().SizeBits()
}

// Depth and Width return the per-bucket sketch geometry.
func (w *WindowedCountMin) Depth() int { return w.ring.Cur().Depth() }

// Width returns the per-row slot count of each bucket.
func (w *WindowedCountMin) Width() int { return w.ring.Cur().Width() }

// Options returns the configuration the window's sketches were built with.
func (w *WindowedCountMin) Options() Options { return w.opt }

// WindowedCountSketch is a Count Sketch over a sliding window: unbiased
// windowed frequency estimates in the general Turnstile model.
type WindowedCountSketch struct {
	ring *window.Ring[*sketch.CountSketch]
	opt  Options
}

// buildWindowedCountSketch realizes a Windowed(CountSketchOf) spec.
func buildWindowedCountSketch(opt Options, buckets, bucketItems int) (*WindowedCountSketch, error) {
	if err := opt.validateFor(kindCountSketch); err != nil {
		return nil, err
	}
	if err := validateWindow(opt, buckets, bucketItems); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(5, MergeSum)
	ring := window.NewRing(buckets, uint64(bucketItems), csRingOps(opt))
	return &WindowedCountSketch{ring: ring, opt: opt}, nil
}

// csRingOps binds the ring bucket operations to *sketch.CountSketch for
// defaults-applied Options; the envelope decoder reuses it.
func csRingOps(opt Options) window.Ops[*sketch.CountSketch] {
	spec := signedRowSpec(opt)
	return window.Ops[*sketch.CountSketch]{
		New:   func() *sketch.CountSketch { return sketch.NewCountSketch(opt.Depth, opt.Width, spec, opt.Seed) },
		Reset: (*sketch.CountSketch).Reset,
		Merge: func(dst, src *sketch.CountSketch) { dst.MergeFrom(src, 1) },
	}
}

// NewWindowedCountSketch returns a windowed Count Sketch of buckets ring
// buckets, rotating every bucketItems updates (0 = Tick-driven).
//
// Deprecated: Use Build(Windowed(CountSketchOf(opt), buckets, bucketItems)).
func NewWindowedCountSketch(opt Options, buckets, bucketItems int) *WindowedCountSketch {
	return mustSketch(buildWindowedCountSketch(opt, buckets, bucketItems))
}

// Update adds count occurrences of item (count of either sign) to the
// current bucket.
func (w *WindowedCountSketch) Update(item uint64, count int64) {
	w.ring.Cur().Update(item, count)
	w.ring.Wrote(1)
}

// Increment adds one occurrence of item.
func (w *WindowedCountSketch) Increment(item uint64) { w.Update(item, 1) }

// UpdateBatch adds count occurrences of every item, in order, splitting at
// rotation boundaries; identical in effect to single Updates.
func (w *WindowedCountSketch) UpdateBatch(items []uint64, count int64) {
	windowBatch(w.ring, items, count)
}

// IncrementBatch adds one occurrence of every item, in order.
func (w *WindowedCountSketch) IncrementBatch(items []uint64) { w.UpdateBatch(items, 1) }

// Query returns the (unbiased) frequency estimate of item within the live
// window.
func (w *WindowedCountSketch) Query(item uint64) int64 { return w.ring.View().Query(item) }

// QueryBatch writes the windowed estimate of items[j] into dst[j] and
// returns dst, appending if dst is short (pass nil to allocate).
func (w *WindowedCountSketch) QueryBatch(items []uint64, dst []int64) []int64 {
	return w.ring.View().QueryBatch(items, dst)
}

// Tick rotates the window by one bucket, retiring the oldest.
func (w *WindowedCountSketch) Tick() { w.ring.Rotate() }

// Buckets returns the number of ring buckets B.
func (w *WindowedCountSketch) Buckets() int { return w.ring.Buckets() }

// BucketItems returns the automatic rotation interval (0 = Tick-driven).
func (w *WindowedCountSketch) BucketItems() int { return int(w.ring.Interval()) }

// Rotations returns the number of bucket rotations performed so far.
func (w *WindowedCountSketch) Rotations() uint64 { return w.ring.Rotations() }

// WindowVolume returns the number of items recorded in the live window.
func (w *WindowedCountSketch) WindowVolume() uint64 { return w.ring.Volume() }

// MemoryBits returns the steady-state subsystem footprint in bits (2B
// sketches once the rotation stacks are warm).
func (w *WindowedCountSketch) MemoryBits() int {
	return w.ring.Sketches() * w.ring.Cur().SizeBits()
}

// Options returns the configuration the window's sketches were built with.
func (w *WindowedCountSketch) Options() Options { return w.opt }

// WindowedMonitor tracks heavy hitters over a sliding window: a windowed
// Conservative Update sketch plus one top-k candidate set per bucket. An
// item is a candidate as long as it was among the k largest of some live
// bucket's substream, so heavy-hitter queries draw from the union of
// per-bucket candidates (up to k·B items) re-estimated against the full
// window — never from a k-truncated merged view, which would drop items
// whose volume is spread across buckets.
type WindowedMonitor struct {
	w     *WindowedCountMin
	heaps []*topk.Heap // per ring position, cleared when the bucket rotates
	k     int
}

// buildWindowedMonitor realizes a Windowed(MonitorOf) spec.
func buildWindowedMonitor(opt Options, k, buckets, bucketItems int) (*WindowedMonitor, error) {
	if err := validateTrackerK("monitor", k); err != nil {
		return nil, err
	}
	w, err := buildWindowedCMS(opt, buckets, bucketItems, true)
	if err != nil {
		return nil, err
	}
	return newWindowedMonitor(w, k), nil
}

// newWindowedMonitor wires the per-bucket candidate heaps onto a windowed
// CU sketch; the envelope decoder reuses it with a restored ring.
func newWindowedMonitor(w *WindowedCountMin, k int) *WindowedMonitor {
	m := &WindowedMonitor{
		w:     w,
		heaps: make([]*topk.Heap, w.Buckets()),
		k:     k,
	}
	for i := range m.heaps {
		m.heaps[i] = topk.New(k)
	}
	m.w.ring.OnRotate(func(cur int) { m.heaps[cur].Reset() })
	return m
}

// NewWindowedMonitor returns a windowed heavy-hitter tracker keeping the k
// largest items per bucket, over buckets ring buckets rotating every
// bucketItems updates (0 = Tick-driven).
//
// Deprecated: Use Build(Windowed(MonitorOf(opt, k), buckets, bucketItems)).
func NewWindowedMonitor(opt Options, k, buckets, bucketItems int) *WindowedMonitor {
	return mustSketch(buildWindowedMonitor(opt, k, buckets, bucketItems))
}

// Process records one occurrence of item and refreshes the current
// bucket's candidate set.
func (m *WindowedMonitor) Process(item uint64) { m.Update(item, 1) }

// Update records count occurrences of item; with it WindowedMonitor
// satisfies Sketch and can back a Sharded tracker.
func (m *WindowedMonitor) Update(item uint64, count int64) {
	ring := m.w.ring
	cur, b := ring.CurIndex(), ring.Cur()
	b.Update(item, count)
	// The candidate offer uses the bucket-local estimate: it decides
	// whether the item is among the bucket's k heaviest, and stays
	// meaningful after older buckets (and their contributions to a
	// window-wide estimate) rotate away.
	m.heaps[cur].Offer(item, int64(b.Query(item)))
	ring.Wrote(1)
}

// UpdateBatch records count occurrences of every item, in order. The
// candidate refresh couples items, so this is a per-item loop kept for the
// Sketch interface; identical to sequential Updates.
func (m *WindowedMonitor) UpdateBatch(items []uint64, count int64) {
	for _, x := range items {
		m.Update(x, count)
	}
}

// Query returns the windowed frequency estimate for item.
func (m *WindowedMonitor) Query(item uint64) uint64 { return m.w.Query(item) }

// Tick rotates the window by one bucket, retiring the oldest bucket and
// its candidate set.
func (m *WindowedMonitor) Tick() { m.w.Tick() }

// WindowVolume returns the number of items recorded in the live window.
func (m *WindowedMonitor) WindowVolume() uint64 { return m.w.WindowVolume() }

// Rotations returns the number of bucket rotations performed so far.
func (m *WindowedMonitor) Rotations() uint64 { return m.w.Rotations() }

// MemoryBits returns the underlying windowed sketch footprint in bits.
func (m *WindowedMonitor) MemoryBits() int { return m.w.MemoryBits() }

// Sketch exposes the underlying windowed sketch for point queries.
func (m *WindowedMonitor) Sketch() *WindowedCountMin { return m.w }

// candidates returns the union of every live bucket's candidate set,
// re-estimated against the merged window view, in descending estimate
// order (up to k·B items).
func (m *WindowedMonitor) candidates() []ItemCount {
	view := m.w.ring.View()
	seen := make(map[uint64]struct{}, m.k*len(m.heaps))
	var out []ItemCount
	for _, h := range m.heaps {
		for _, e := range h.Items() {
			if _, dup := seen[e.Item]; dup {
				continue
			}
			seen[e.Item] = struct{}{}
			out = append(out, ItemCount{Item: e.Item, Count: int64(view.Query(e.Item))})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// Top returns the k candidates with the largest windowed estimates, in
// descending order.
func (m *WindowedMonitor) Top() []ItemCount {
	all := m.candidates()
	if len(all) > m.k {
		all = all[:m.k]
	}
	return all
}

// HeavyHitters returns every candidate whose windowed estimate is at least
// phi times the live window volume, in descending order — drawn from the
// full union of per-bucket candidate sets, so it can return more than k
// items.
func (m *WindowedMonitor) HeavyHitters(phi float64) []ItemCount {
	threshold := phi * float64(m.WindowVolume())
	var out []ItemCount
	for _, e := range m.candidates() {
		if float64(e.Count) < threshold {
			break // candidates are sorted descending
		}
		out = append(out, e)
	}
	return out
}

// Compile-time checks that the windowed types back the Sharded layer.
var (
	_ Sketch = (*WindowedCountMin)(nil)
	_ Sketch = (*WindowedCountSketch)(nil)
	_ Sketch = (*WindowedMonitor)(nil)
)
