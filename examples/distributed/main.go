// Distributed aggregation: the paper's sketch-merging use case (§V) as a
// pipeline. Four workers sketch disjoint partitions of a stream in
// parallel with shared hash seeds, serialize their sketches through the
// universal self-describing envelope (salsa.Marshal), and a coordinator
// decodes the payloads without knowing their topology in advance
// (salsa.Unmarshal), merges them, and answers global frequency queries —
// the pattern for multi-core or multi-host measurement. The same envelope
// carries every composed topology (windowed, sharded, trackers), so the
// wire format does not change when a worker's deployment shape does.
package main

import (
	"fmt"
	"sync"

	"salsa"
	"salsa/internal/stream"
)

func main() {
	const workers = 4
	const packets = 2_000_000
	opt := salsa.Options{Width: 1 << 14, Merge: salsa.MergeSum, Seed: 99}

	trace := stream.NY18.Generate(packets, 17)
	exact := stream.NewExact()
	for _, x := range trace {
		exact.Observe(x)
	}

	// Fan out: each worker sketches its partition and ships bytes.
	payloads := make([][]byte, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cm := salsa.MustBuild(salsa.CountMinOf(opt)).(*salsa.CountMin)
			for i := w; i < len(trace); i += workers {
				cm.Increment(trace[i])
			}
			blob, err := salsa.Marshal(cm)
			if err != nil {
				panic(err)
			}
			payloads[w] = blob
		}(w)
	}
	wg.Wait()

	// Coordinator: decode (the envelope is self-describing — no topology
	// knowledge needed here) and merge.
	decoded, err := salsa.Unmarshal(payloads[0])
	if err != nil {
		panic(err)
	}
	global := decoded.(*salsa.CountMin)
	for _, blob := range payloads[1:] {
		part, err := salsa.Unmarshal(blob)
		if err != nil {
			panic(err)
		}
		global.Merge(part.(*salsa.CountMin))
	}

	fmt.Printf("%d workers, %d packets, %d-byte payloads each\n\n",
		workers, packets, len(payloads[0]))
	fmt.Println("item                     truth    merged")
	for _, x := range exact.TopK(8) {
		fmt.Printf("%-20d %9d %9d\n", x, exact.Count(x), global.Query(x))
	}
}
