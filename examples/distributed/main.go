// Distributed aggregation: the paper's sketch-merging use case (§V) run
// through the salsad delta protocol over real HTTP. Three edge agents
// sketch disjoint partitions of a stream with shared hash seeds and
// periodically push delta envelopes (current − shadow) to an aggregator
// behind an httptest server. The network is deliberately unreliable — a
// wrapped RoundTripper kills the first delivery of every frame — so every
// push exercises the retry path: the agent freezes the frame, retries it
// byte-identically with backoff, and the aggregator's sequence numbers
// make the redelivery idempotent. The coordinator then answers global
// frequency and heavy-hitter queries from the merged contributions, and
// the /v1/snapshot envelope equals what a single sequential sketch of the
// whole stream would hold — exactly, counter for counter.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"salsa"
	"salsa/internal/salsad"
	"salsa/internal/stream"
)

// flakyTransport fails the first attempt of every distinct POST body:
// each pushed frame needs exactly one retry to get through.
type flakyTransport struct {
	next http.RoundTripper
	seen map[string]bool
}

func (f *flakyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if r.Method == http.MethodPost && r.Body != nil {
		body, err := io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil {
			return nil, err
		}
		if !f.seen[string(body)] {
			f.seen[string(body)] = true
			return nil, errors.New("connection reset (injected)")
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
	}
	return f.next.RoundTrip(r)
}

func main() {
	const agents = 3
	const packets = 600_000
	opt := salsa.Options{Width: 1 << 14, Merge: salsa.MergeSum, Seed: 99}
	spec := salsa.CountMinOf(opt)

	trace := stream.NY18.Generate(packets, 17)
	exact := stream.NewExact()
	for _, x := range trace {
		exact.Observe(x)
	}

	// The aggregator end: cluster state plus its HTTP query surface.
	agg, err := salsad.NewAggregator(salsad.AggregatorConfig{Spec: spec})
	if err != nil {
		panic(err)
	}
	srv := httptest.NewServer(salsad.Handler(agg))
	defer srv.Close()

	// The edge: each agent sketches its partition and pushes a delta
	// every ~50k items through the lossy client.
	ctx := context.Background()
	var totalRetries, totalWire uint64
	for w := 0; w < agents; w++ {
		transport := &salsad.HTTPTransport{
			Base: srv.URL,
			Client: &http.Client{
				Transport: &flakyTransport{next: http.DefaultTransport, seen: map[string]bool{}},
			},
		}
		ag, err := salsad.NewAgent(salsad.AgentConfig{
			ID:          fmt.Sprintf("edge-%d", w),
			Spec:        spec,
			Transport:   transport,
			BackoffBase: time.Millisecond, // keep the demo snappy
			Candidates: func() []uint64 {
				top := make([]uint64, 0, 8)
				for _, x := range exact.TopK(8) {
					top = append(top, x)
				}
				return top
			},
		})
		if err != nil {
			panic(err)
		}
		for i := w; i < len(trace); i += agents {
			ag.Ingest(trace[i])
			if ag.Frontier()%50_000 == 0 {
				if err := ag.PushOnce(ctx); err != nil {
					panic(err)
				}
			}
		}
		if err := ag.PushOnce(ctx); err != nil { // final flush
			panic(err)
		}
		if !ag.Synced() {
			panic("agent finished unsynced")
		}
		st := ag.Stats()
		totalRetries += st.Retries
		totalWire += st.WireBytes
		fmt.Printf("edge-%d: %d frames acked, %d retries forced by the flaky network\n",
			w, st.FramesAcked, st.Retries)
	}

	// Idempotency check: every frame needed a retry, yet nothing double
	// counted — the cluster snapshot equals one sequential sketch of the
	// whole stream, byte for byte.
	resp, err := http.Get(srv.URL + "/v1/snapshot")
	if err != nil {
		panic(err)
	}
	snapshot, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		panic(err)
	}
	sequential := salsa.MustBuild(spec).(*salsa.CountMin)
	for _, x := range trace {
		sequential.Increment(x)
	}
	want, err := salsa.Marshal(sequential)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n%d agents, %d packets, %d retries, %d wire bytes\n",
		agents, packets, totalRetries, totalWire)
	fmt.Printf("cluster snapshot == sequential reference: %v (%d bytes)\n\n",
		bytes.Equal(snapshot, want), len(snapshot))

	// Global heavy hitters from the aggregator's candidate pool.
	top, err := agg.Top(8)
	if err != nil {
		panic(err)
	}
	fmt.Println("item                     truth   cluster")
	for _, e := range top {
		fmt.Printf("%-20d %9d %9d\n", e.Item, exact.Count(e.Item), e.Count)
	}
}
