// UnivMon: one universal sketch, many answers. A single pass supports
// entropy, frequency moments, and cardinality — here with SALSA Count
// Sketch rows, the paper's "SALSA UnivMon" (Fig. 12).
package main

import (
	"fmt"

	"salsa"
	"salsa/internal/stream"
)

func main() {
	trace := stream.NY18.Generate(1_000_000, 19)

	um := salsa.MustBuild(salsa.UnivMonOf(
		salsa.Options{Width: 1 << 11, Seed: 23}, 16, 100)).(*salsa.UnivMon)
	exact := stream.NewExact()
	for _, x := range trace {
		um.Process(x)
		exact.Observe(x)
	}

	fmt.Printf("universal sketch: %d KB for %d updates\n\n",
		um.MemoryBits()/8192, um.Volume())
	report := func(name string, est, truth float64) {
		fmt.Printf("%-22s est %14.2f   true %14.2f   rel.err %+.3f%%\n",
			name, est, truth, 100*(est-truth)/truth)
	}
	report("entropy [bits]", um.Entropy(), exact.Entropy())
	report("distinct items (F0)", um.Distinct(), float64(exact.Distinct()))
	report("volume (F1)", um.Moment(1), float64(exact.Volume()))
	report("second moment (F2)", um.Moment(2), exact.Moment(2))
	report("F1.5", um.Moment(1.5), exact.Moment(1.5))

	fmt.Println("\nheaviest flows seen by the level-0 sketch:")
	for i, hh := range um.HeavyHitters()[:5] {
		fmt.Printf("%2d. item %-20d estimate %d (true %d)\n",
			i+1, hh.Item, hh.Count, exact.Count(hh.Item))
	}
}
