// Sliding-window analytics: the time-scoped queries every production
// deployment asks — "heavy hitters in the last minute", "how often did
// this flow appear over the last N packets" — answered by the windowed
// sketches. A ring of B bucket sketches slides over the stream at bucket
// granularity: each update lands in the current bucket, a rotation retires
// the oldest bucket wholesale, and queries merge the live buckets.
//
// The walkthrough simulates a traffic shift: an early heavy flow goes
// quiet, a new one takes over. A whole-stream Monitor stays pinned to the
// historical flow forever; the WindowedMonitor follows the live traffic.
package main

import (
	"fmt"

	"salsa"
	"salsa/internal/stream"
)

func main() {
	const (
		buckets     = 4      // ring size B
		bucketItems = 50_000 // rotation interval: window ≈ last 200k packets
		phase       = 300_000
	)
	opt := salsa.Options{Width: 1 << 14, Seed: 7}

	// The window is a decorator in the spec algebra: the same MonitorOf
	// leaf serves both trackers, windowed or not.
	windowed := salsa.MustBuild(salsa.Windowed(salsa.MonitorOf(opt, 8), buckets, bucketItems)).(*salsa.WindowedMonitor)
	whole := salsa.MustBuild(salsa.MonitorOf(opt, 8)).(*salsa.Monitor)

	// Phase 1: flow A dominates. Phase 2: A vanishes, flow B takes over.
	flowA, flowB := salsa.KeyString("10.0.0.1:443"), salsa.KeyString("10.9.9.9:80")
	feed := func(heavy uint64, seed uint64) {
		for i, pkt := range stream.NY18.Generate(phase, seed) {
			if i%5 == 0 {
				windowed.Process(heavy)
				whole.Process(heavy)
			}
			windowed.Process(pkt)
			whole.Process(pkt)
		}
	}
	feed(flowA, 1)
	fmt.Printf("after phase 1 (flow A hot, %d rotations):\n", windowed.Rotations())
	report(windowed, whole, flowA, flowB)

	feed(flowB, 2)
	fmt.Printf("\nafter phase 2 (flow A quiet, flow B hot, %d rotations):\n", windowed.Rotations())
	report(windowed, whole, flowA, flowB)

	fmt.Printf("\nwindow: last %d–%d packets in %d buckets; memory %d KB (B+2 sketches)\n",
		(buckets-1)*bucketItems, buckets*bucketItems, buckets, windowed.MemoryBits()/8192)

	// Windowed heavy hitters: share-of-window threshold, drawn from the
	// union of per-bucket candidate sets.
	fmt.Println("\nflows ≥ 2% of the live window:")
	for i, hh := range windowed.HeavyHitters(0.02) {
		fmt.Printf("%4d. flow %-20d windowed estimate %d\n", i+1, hh.Item, hh.Count)
	}
}

func report(windowed *salsa.WindowedMonitor, whole *salsa.Monitor, flowA, flowB uint64) {
	fmt.Printf("  flow A: windowed %-8d whole-stream %d\n",
		windowed.Query(flowA), whole.Sketch().Query(flowA))
	fmt.Printf("  flow B: windowed %-8d whole-stream %d\n",
		windowed.Query(flowB), whole.Sketch().Query(flowB))
	if top := windowed.Top(); len(top) > 0 {
		fmt.Printf("  top windowed flow: %d (estimate %d)\n", top[0].Item, top[0].Count)
	}
}
