// Change detection: find the items whose frequency changed most between
// two epochs by subtracting Count Sketches that share hash seeds (§V of
// the paper). Because Count Sketch is linear, the difference sketch
// answers turnstile queries about fB − fA directly — far more accurately
// than subtracting two independent estimates.
package main

import (
	"fmt"
	"sort"

	"salsa"
	"salsa/internal/stream"
)

func main() {
	const n = 1_000_000
	// Epoch A: the NY18-like trace. Epoch B: the same distribution with a
	// different seed, plus an injected anomaly (a flow that goes from cold
	// to hot, e.g. an emerging DoS source).
	epochA := stream.NY18.Generate(n, 5)
	epochB := stream.NY18.Generate(n, 6)
	const anomaly = uint64(0xD05)
	for i := 0; i < 30_000; i++ {
		epochB = append(epochB, anomaly)
	}

	det := salsa.NewChangeDetector(salsa.Options{Width: 1 << 15, Seed: 11})
	truthA := map[uint64]int64{}
	truthB := map[uint64]int64{}
	for _, x := range epochA {
		det.ObserveBefore(x)
		truthA[x]++
	}
	for _, x := range epochB {
		det.ObserveAfter(x)
		truthB[x]++
	}

	// Rank the union of epoch-B items by estimated |change|.
	type change struct {
		item     uint64
		est, tru int64
	}
	var top []change
	for x := range truthB {
		top = append(top, change{x, det.Change(x), truthB[x] - truthA[x]})
	}
	sort.Slice(top, func(i, j int) bool { return abs(top[i].est) > abs(top[j].est) })

	fmt.Println("largest estimated frequency changes (B − A):")
	fmt.Println("item                  est.change  true.change")
	for _, c := range top[:10] {
		marker := ""
		if c.item == anomaly {
			marker = "   <-- injected anomaly"
		}
		fmt.Printf("%-20d %11d %12d%s\n", c.item, c.est, c.tru, marker)
	}
}

func abs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
