// Heavy hitters: the paper's motivating network-measurement task. A SALSA
// Conservative Update sketch plus a top-k heap tracks the heaviest flows of
// a skewed packet trace in one pass, within a fixed memory budget — the
// building block for per-flow accounting and DoS detection.
package main

import (
	"fmt"

	"salsa"
	"salsa/internal/stream"
)

func main() {
	const packets = 2_000_000
	trace := stream.NY18.Generate(packets, 3)

	// 64KB of sketch: Width 1<<14 SALSA slots × 4 rows × 9 bits ≈ 72KB.
	monitor := salsa.MustBuild(salsa.MonitorOf(salsa.Options{Width: 1 << 14, Seed: 9}, 64)).(*salsa.Monitor)
	exact := stream.NewExact() // ground truth, for the comparison below

	for _, pkt := range trace {
		monitor.Process(pkt)
		exact.Observe(pkt)
	}

	// Flows above 0.5% of the traffic.
	const phi = 0.005
	fmt.Printf("flows ≥ %.1f%% of %d packets (sketch: %d KB):\n",
		phi*100, packets, monitor.Sketch().MemoryBits()/8192)
	fmt.Println("rank  flow                  estimate     truth   rel.err")
	for i, hh := range monitor.HeavyHitters(phi, exact.Volume()) {
		truth := exact.Count(hh.Item)
		rel := float64(hh.Count-int64(truth)) / float64(truth)
		fmt.Printf("%4d  %-20d %9d %9d   %+.4f\n", i+1, hh.Item, hh.Count, truth, rel)
	}

	// Recall check against the exact heavy hitters.
	tracked := map[uint64]bool{}
	for _, hh := range monitor.HeavyHitters(phi, exact.Volume()) {
		tracked[hh.Item] = true
	}
	missed := 0
	for _, x := range exact.HeavyHitters(phi) {
		if !tracked[x] {
			missed++
		}
	}
	fmt.Printf("\nrecall: missed %d of %d true heavy hitters\n",
		missed, len(exact.HeavyHitters(phi)))
}
