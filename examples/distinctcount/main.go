// Distinct counting: estimate stream cardinality from the same SALSA CMS
// that answers frequency queries, using Linear Counting over the fraction
// of zero counters (§III/§V of the paper) — no extra data structure. The
// SALSA variant uses the paper's optimistic heuristic to account for
// counters hidden inside merges.
package main

import (
	"fmt"

	"salsa"
	"salsa/internal/stream"
)

func main() {
	for _, ds := range stream.Datasets() {
		trace := ds.Generate(1_000_000, 13)

		cms := salsa.MustBuild(salsa.CountMinOf(salsa.Options{
			Width: 1 << 16,
			Merge: salsa.MergeSum,
			Seed:  17,
		})).(*salsa.CountMin)
		exact := stream.NewExact()
		for _, x := range trace {
			cms.Increment(x)
			exact.Observe(x)
		}

		est, err := cms.Distinct()
		if err != nil {
			fmt.Printf("%-8s linear counting out of range: %v\n", ds.Name, err)
			continue
		}
		truth := float64(exact.Distinct())
		fmt.Printf("%-8s distinct: estimated %9.0f, true %9.0f (rel.err %+.3f%%)\n",
			ds.Name, est, truth, 100*(est-truth)/truth)
	}
}
