// Quickstart: estimate item frequencies with a SALSA Count-Min sketch and
// compare against the 32-bit baseline at the same memory budget. Sketches
// are declared with the composable spec algebra and realized by
// salsa.Build; see examples/distributed and examples/slidingwindow for
// composed topologies.
package main

import (
	"fmt"

	"salsa"
	"salsa/internal/stream"
)

func main() {
	// One million updates from a skewed (Zipf 1.1) synthetic packet trace.
	trace := stream.NY18.Generate(1_000_000, 7)

	// A SALSA sketch: counters start at 8 bits and merge on overflow, so
	// the same memory holds ~3.5x more counters than the baseline below.
	sketch := salsa.MustBuild(salsa.CountMinOf(salsa.Options{Width: 1 << 14, Seed: 1})).(*salsa.CountMin)

	// The fixed-width configuration the paper's baselines use.
	baseline := salsa.MustBuild(salsa.CountMinOf(salsa.Options{
		Width: 1 << 12, // 4x fewer slots ≈ the same memory at 32 bits each
		Mode:  salsa.ModeBaseline,
		Seed:  1,
	})).(*salsa.CountMin)

	exact := stream.NewExact()
	for _, item := range trace {
		sketch.Increment(item)
		baseline.Increment(item)
		exact.Observe(item)
	}

	fmt.Printf("memory: salsa %d KB, baseline %d KB\n",
		sketch.MemoryBits()/8192, baseline.MemoryBits()/8192)
	fmt.Println("item                  truth     salsa  baseline")
	for _, item := range exact.TopK(5) {
		fmt.Printf("%-20d %9d %9d %9d\n", item, exact.Count(item), sketch.Query(item), baseline.Query(item))
	}

	// Byte keys (e.g. flow 5-tuples) work via KeyBytes hashing.
	flows := salsa.MustBuild(salsa.CountMinOf(salsa.Options{Width: 1 << 12})).(*salsa.CountMin)
	flows.UpdateBytes([]byte("10.1.2.3:443->10.9.8.7:51111"), 3)
	fmt.Printf("\nflow estimate: %d\n", flows.QueryBytes([]byte("10.1.2.3:443->10.9.8.7:51111")))
}
