package salsa

// Merge-engine and window-rotation benchmarks, the PR 5 perf trajectory.
// They use only API that exists in earlier checkouts too, so the identical
// file can be dropped into an older worktree for interleaved A/B runs:
//
//	go test -bench 'MergeFrom|WindowRotation' -benchtime=1000x -count=10
//
// BenchmarkMergeFrom measures the steady-state sketch-union path with a
// stable cycle: dst starts as a byte-clone of src, and each op subtracts
// src back out and merges it again, returning dst to the identical state —
// so every iteration performs one same-layout subtraction and one
// same-layout merge of loaded rows (the case window rotation and sharded
// snapshots hit), with no drift toward saturation across iterations.
// BenchmarkWindowRotation measures amortized per-rotation cost: each op
// ingests one fixed bucket interval and ticks, so the two ring sizes differ
// only in how much closed-window maintenance a rotation performs (use
// -benchtime well above B so flip costs amortize fairly).

import (
	"testing"

	"salsa/internal/stream"
)

// mergeCycle builds a loaded sketch and a byte-identical clone via the
// universal envelope.
func mergeCycle(b *testing.B, spec Spec, load []uint64) (Sketch, Sketch) {
	b.Helper()
	src := MustBuild(spec)
	src.UpdateBatch(load, 1)
	blob, err := Marshal(src)
	if err != nil {
		b.Fatal(err)
	}
	dst, err := Unmarshal(blob)
	if err != nil {
		b.Fatal(err)
	}
	return dst, src
}

func BenchmarkMergeFrom(b *testing.B) {
	load := stream.Zipf(1<<17, 1<<14, 1.0, 7)
	b.Run("cms-salsa8", func(b *testing.B) {
		dst, src := mergeCycle(b, CountMinOf(Options{Width: 1 << 14, Merge: MergeSum, Seed: 3}), load)
		d, s := dst.(*CountMin), src.(*CountMin)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Subtract(s)
			d.Merge(s)
		}
	})
	b.Run("cms-fixed32", func(b *testing.B) {
		dst, src := mergeCycle(b, CountMinOf(Options{Width: 1 << 12, Mode: ModeBaseline, Merge: MergeSum, Seed: 3}), load)
		d, s := dst.(*CountMin), src.(*CountMin)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Subtract(s)
			d.Merge(s)
		}
	})
	b.Run("cs-salsa8", func(b *testing.B) {
		dst, src := mergeCycle(b, CountSketchOf(Options{Width: 1 << 14, Seed: 3}), load)
		d, s := dst.(*CountSketch), src.(*CountSketch)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Subtract(s)
			d.Merge(s)
		}
	})
}

func BenchmarkWindowRotation(b *testing.B) {
	const fill = 512
	load := stream.Zipf(1<<16, 1<<13, 1.0, 11)
	for _, buckets := range []int{4, 64} {
		b.Run(map[int]string{4: "w4096-b4", 64: "w4096-b64"}[buckets], func(b *testing.B) {
			w := MustBuild(Windowed(CountMinOf(Options{Width: 1 << 12, Seed: 5}), buckets, 0)).(*WindowedCountMin)
			// Warm every bucket so rotations merge loaded sketches.
			for i := 0; i < buckets; i++ {
				off := (i * fill) % (len(load) - fill)
				w.IncrementBatch(load[off : off+fill])
				w.Tick()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := (i * fill) % (len(load) - fill)
				w.IncrementBatch(load[off : off+fill])
				w.Tick()
			}
		})
	}
}
