package salsa

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"salsa/internal/sketch"
	"salsa/internal/stream"
)

// --- slot-exact equality with a from-scratch merge of live buckets ---------

// fromScratchCMS rebuilds the window sketch the slow way: a fresh CMS that
// the live buckets are merged into in oldest-to-newest order. The windowed
// view must be bit-for-bit identical.
func fromScratchCMS(w *WindowedCountMin) *sketch.CMS {
	var fresh *sketch.CMS
	if w.conservative {
		fresh = sketch.NewCUS(w.opt.Depth, w.opt.Width, rowSpec(w.opt), w.opt.Seed)
	} else {
		fresh = sketch.NewCMS(w.opt.Depth, w.opt.Width, rowSpec(w.opt), w.opt.Seed)
	}
	w.ring.LiveBuckets(func(_ int, b *sketch.CMS) { fresh.MergeFrom(b) })
	return fresh
}

// TestWindowedQueryEqualsFromScratchMerge pins the incremental view
// contract for every CountMin backend mode: at many points along a Zipf
// stream — including mid-bucket and right after rotations — Query must
// equal querying a from-scratch merge of the live buckets. Where the
// backend serializes, the check is on marshal bytes, which pins counter
// values AND merge layouts slot-exactly.
func TestWindowedQueryEqualsFromScratchMerge(t *testing.T) {
	data := stream.Zipf(30000, 2000, 1.0, 77)
	const buckets, interval = 4, 2500
	builds := map[string]func() *WindowedCountMin{
		"SALSA": func() *WindowedCountMin {
			return NewWindowedCountMin(Options{Width: 1 << 10, Seed: 9}, buckets, interval)
		},
		"Baseline": func() *WindowedCountMin {
			return NewWindowedCountMin(Options{Width: 1 << 10, Mode: ModeBaseline, Seed: 9}, buckets, interval)
		},
		"Compact": func() *WindowedCountMin {
			return NewWindowedCountMin(Options{Width: 1 << 10, CompactEncoding: true, Seed: 9}, buckets, interval)
		},
		"Tango": func() *WindowedCountMin {
			return NewWindowedCountMin(Options{Width: 1 << 10, Mode: ModeTango, Seed: 9}, buckets, interval)
		},
		"Conservative": func() *WindowedCountMin {
			return NewWindowedConservativeUpdate(Options{Width: 1 << 10, Seed: 9}, buckets, interval)
		},
	}
	for name, build := range builds {
		w := build()
		for i, x := range data {
			w.Increment(x)
			// Checkpoints: prime-strided mid-bucket points plus every
			// rotation boundary (i+1 a multiple of the interval).
			if i%3001 != 0 && (i+1)%interval != 0 {
				continue
			}
			ref := fromScratchCMS(w)
			view := w.ring.View()
			refBlob, refErr := ref.MarshalBinary()
			viewBlob, viewErr := view.MarshalBinary()
			switch {
			case refErr == nil && viewErr == nil:
				if !bytes.Equal(refBlob, viewBlob) {
					t.Fatalf("%s: after %d items: view marshal differs from from-scratch merge", name, i+1)
				}
			default: // Tango rows don't serialize; compare estimates instead
				for x := uint64(0); x < 2000; x++ {
					if a, b := view.Query(x), ref.Query(x); a != b {
						t.Fatalf("%s: after %d items: item %d: view %d != from-scratch %d", name, i+1, x, a, b)
					}
				}
			}
		}
		if w.Rotations() == 0 {
			t.Fatalf("%s: stream never rotated the window", name)
		}
	}
}

// TestWindowedCountSketchEqualsFromScratchMerge is the signed-merge version
// of the slot-exact check, over SALSA and baseline rows.
func TestWindowedCountSketchEqualsFromScratchMerge(t *testing.T) {
	data := stream.Zipf(24000, 1500, 1.0, 83)
	const buckets, interval = 3, 3000
	for name, opt := range map[string]Options{
		"SALSA":    {Width: 1 << 10, Seed: 4},
		"Baseline": {Width: 1 << 10, Mode: ModeBaseline, Seed: 4},
	} {
		w := NewWindowedCountSketch(opt, buckets, interval)
		for i, x := range data {
			w.Update(x, 1+int64(i%3)) // mixed positive weights
			if i%2503 != 0 && (i+1)%interval != 0 {
				continue
			}
			fresh := sketch.NewCountSketch(w.opt.Depth, w.opt.Width, signedRowSpec(w.opt), w.opt.Seed)
			w.ring.LiveBuckets(func(_ int, b *sketch.CountSketch) { fresh.MergeFrom(b, 1) })
			refBlob, err1 := fresh.MarshalBinary()
			viewBlob, err2 := w.ring.View().MarshalBinary()
			if err1 != nil || err2 != nil {
				t.Fatalf("%s: marshal failed: %v / %v", name, err1, err2)
			}
			if !bytes.Equal(refBlob, viewBlob) {
				t.Fatalf("%s: after %d items: view marshal differs from from-scratch merge", name, i+1)
			}
		}
	}
}

// --- sliding-window oracle property ----------------------------------------

// TestWindowedOracleProperty pins the window semantics against an exact
// sliding-window oracle: the live window is precisely the last
// WindowVolume() items (a contiguous stream suffix), so the CountMin
// overestimate guarantee holds against exact counts over that suffix, and
// versus the nominal B·interval-item window the estimate trails by at most
// the items in one bucket of slack. The sketch-noise upper bound uses a
// generous multiple of the expected per-row collision mass.
func TestWindowedOracleProperty(t *testing.T) {
	const (
		n, universe = 60000, 3000
		buckets     = 4
		interval    = 5000
		nominal     = buckets * interval // 20000-item target window
		width       = 1 << 12
	)
	data := stream.Zipf(n, universe, 1.0, 101)
	// Query sample: the first 200 distinct item ids of the stream, which
	// skews toward its heavy items.
	var sample []uint64
	seen := make(map[uint64]bool)
	for _, x := range data {
		if !seen[x] {
			seen[x] = true
			sample = append(sample, x)
			if len(sample) == 200 {
				break
			}
		}
	}
	exactOver := func(part []uint64) map[uint64]uint64 {
		m := make(map[uint64]uint64)
		for _, x := range part {
			m[x]++
		}
		return m
	}
	for name, build := range map[string]func() *WindowedCountMin{
		"CountMin": func() *WindowedCountMin {
			return NewWindowedCountMin(Options{Width: width, Seed: 55}, buckets, interval)
		},
		"Baseline": func() *WindowedCountMin {
			return NewWindowedCountMin(Options{Width: width, Mode: ModeBaseline, Seed: 55}, buckets, interval)
		},
		"Conservative": func() *WindowedCountMin {
			return NewWindowedConservativeUpdate(Options{Width: width, Seed: 55}, buckets, interval)
		},
	} {
		w := build()
		for i, x := range data {
			w.Increment(x)
			if i < nominal || i%7001 != 0 {
				continue
			}
			live := uint64(i+1) - w.WindowVolume() // start of the live suffix
			exactLive := exactOver(data[live : i+1])
			exactNominal := exactOver(data[i+1-nominal : i+1])
			if got := uint64(i+1) - live; got > nominal || got <= nominal-interval {
				t.Fatalf("%s: live window %d items, want in (%d, %d]", name, got, nominal-interval, nominal)
			}
			// 4·L/width is ~4x the expected per-row collision mass; the
			// min over depth rows sits far below it on this stream.
			noise := uint64(4 * w.WindowVolume() / width)
			for _, id := range sample {
				est := w.Query(id)
				if est < exactLive[id] {
					t.Fatalf("%s: item %d: estimate %d < exact live count %d", name, id, est, exactLive[id])
				}
				if est+uint64(interval) < exactNominal[id] {
					t.Fatalf("%s: item %d: estimate %d more than one bucket below nominal-window count %d",
						name, id, est, exactNominal[id])
				}
				if est > exactLive[id]+noise {
					t.Fatalf("%s: item %d: estimate %d exceeds exact %d + noise bound %d",
						name, id, est, exactLive[id], noise)
				}
			}
		}
	}
}

// TestWindowedEviction pins the headline behavior: a heavy hitter from an
// old epoch disappears from windowed estimates after B rotations, while a
// whole-stream sketch keeps reporting it forever.
func TestWindowedEviction(t *testing.T) {
	const heavy = uint64(0xdeadbeef)
	opt := Options{Width: 1 << 12, Seed: 3}
	w := NewWindowedCountMin(opt, 3, 1000)
	whole := NewCountMin(opt)
	for i := 0; i < 1000; i++ {
		w.Increment(heavy)
		whole.Increment(heavy)
	}
	bg := stream.Zipf(6000, 4000, 1.0, 9)
	for _, x := range bg {
		w.Increment(x)
		whole.Increment(x)
	}
	if got := w.Query(heavy); got > 50 {
		t.Fatalf("windowed estimate %d for evicted heavy hitter, want ~0", got)
	}
	if whole.Query(heavy) < 1000 {
		t.Fatal("whole-stream sketch lost the heavy hitter")
	}

	cs := NewWindowedCountSketch(opt, 3, 1000)
	for i := 0; i < 1000; i++ {
		cs.Increment(heavy)
	}
	for _, x := range bg {
		cs.Increment(x)
	}
	if got := cs.Query(heavy); got > 50 || got < -50 {
		t.Fatalf("windowed CountSketch estimate %d for evicted heavy hitter, want ~0", got)
	}
}

// --- windowed heavy hitters -------------------------------------------------

// TestWindowedMonitorCandidateUnion is the regression for per-bucket
// candidate truncation: heavy hitters concentrated in different buckets
// must ALL surface from the union of per-bucket candidate sets, even when
// their number exceeds k (a k-truncated merged view would drop them).
func TestWindowedMonitorCandidateUnion(t *testing.T) {
	const (
		k, buckets, interval = 4, 3, 3000
		perBucketHeavies     = 3 // fits each bucket's k-entry candidate set
		reps                 = 300
	)
	m := NewWindowedMonitor(Options{Width: 1 << 12, Seed: 31}, k, buckets, interval)
	// Each bucket phase plants its own set of 3 heavy items amid unique
	// background noise; across the B−1 closed live buckets that is 6
	// window-wide heavy hitters — more than k, so a merged view truncated
	// to the global top k could not return them all.
	noise := uint64(1 << 40)
	for phase := 0; phase < buckets; phase++ {
		for r := 0; r < reps; r++ {
			for h := 0; h < perBucketHeavies; h++ {
				m.Process(uint64(phase*100 + h + 1))
			}
		}
		for i := 0; i < interval-perBucketHeavies*reps; i++ {
			m.Process(noise)
			noise++
		}
	}
	if got := m.Rotations(); got != buckets {
		t.Fatalf("rotations = %d, want %d", got, buckets)
	}
	// After exactly B rotations the current bucket is empty and the live
	// window holds phases 1..B-1 plus... phase 0 rotated out with the B-th
	// rotation, so re-plant phase 0's heavies are NOT expected; check the
	// still-live phases.
	hh := m.HeavyHitters(float64(reps) / float64(2*m.WindowVolume()))
	if len(hh) <= k {
		t.Fatalf("HeavyHitters returned %d items, want > k=%d (candidates truncated?)", len(hh), k)
	}
	got := make(map[uint64]bool, len(hh))
	for _, e := range hh {
		got[e.Item] = true
	}
	for phase := 1; phase < buckets; phase++ {
		for h := 0; h < perBucketHeavies; h++ {
			item := uint64(phase*100 + h + 1)
			if !got[item] {
				t.Fatalf("phase-%d heavy item %d missing from HeavyHitters (%d returned)", phase, item, len(hh))
			}
		}
	}
	// Evicted phase-0 heavies must no longer be candidates.
	for h := 0; h < perBucketHeavies; h++ {
		if got[uint64(h+1)] {
			t.Fatalf("evicted phase-0 item %d still reported", h+1)
		}
	}
	if top := m.Top(); len(top) != k {
		t.Fatalf("Top() returned %d items, want k=%d", len(top), k)
	}
}

// TestWindowedMonitorTracksRecency: the windowed tracker follows the
// stream's current heavy hitter while a whole-stream Monitor stays pinned
// to the historically largest item.
func TestWindowedMonitorTracksRecency(t *testing.T) {
	opt := Options{Width: 1 << 12, Seed: 19}
	wm := NewWindowedMonitor(opt, 4, 3, 2000)
	whole := NewMonitor(opt, 4)
	feed := func(heavy uint64, n int, seed uint64) {
		bg := stream.Zipf(n, 3000, 0.8, seed)
		for i, x := range bg {
			if i%3 == 0 {
				wm.Process(heavy)
				whole.Process(heavy)
			}
			wm.Process(x)
			whole.Process(x)
		}
	}
	feed(111, 6000, 1) // epoch 1: item 111 dominates
	feed(222, 9000, 2) // epochs later: item 222 dominates; 111 rotates out
	wTop := wm.Top()
	if len(wTop) == 0 || wTop[0].Item != 222 {
		t.Fatalf("windowed top = %+v, want item 222 first", wTop)
	}
	for _, e := range wTop {
		if e.Item == 111 {
			t.Fatal("evicted epoch-1 heavy hitter still in windowed top-k")
		}
	}
	hTop := whole.Top()
	found111 := false
	for _, e := range hTop {
		found111 = found111 || e.Item == 111
	}
	if !found111 {
		t.Fatalf("whole-stream monitor lost item 111: %+v", hTop)
	}
}

// --- sharded windowed hammer (run with -race) -------------------------------

// TestShardedWindowedCountMinHammer mixes single updates, batches, point
// and batch queries, and concurrent Ticks over Sharded[*WindowedCountMin].
// During the storm only race-freedom and bookkeeping are asserted; a
// tick-free epilogue then pins the overestimate guarantee for items whose
// full history is inside every shard's current bucket.
func TestShardedWindowedCountMinHammer(t *testing.T) {
	s := NewShardedWindowedCountMin(Options{Width: 1 << 10, Seed: 47}, 4, 0, 8)
	const perG, universe = 4096, 64
	var ticks atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			batch := make([]uint64, 0, 128)
			qbuf := make([]uint64, 0, 16)
			for i := 0; i < perG; i++ {
				x := uint64(i % universe)
				switch (i + i/universe) % 5 {
				case 0:
					s.Increment(x)
				case 1:
					batch = append(batch, x)
					if len(batch) == cap(batch) {
						s.IncrementBatch(batch)
						batch = batch[:0]
					} else {
						s.Update(x, 1)
					}
				case 2:
					s.Update(x, 1)
					_ = s.Query(x)
				case 3:
					s.Increment(x)
					qbuf = s.QueryBatch([]uint64{x, x + 1}, qbuf[:0])
				default:
					s.Increment(x)
					if i%512 == 0 && g == 0 {
						s.Tick()
						ticks.Add(1)
					}
				}
			}
			s.IncrementBatch(batch)
		}(g)
	}
	wg.Wait()
	for i := 0; i < s.Shards(); i++ {
		if got := s.Shard(i).Rotations(); got != uint64(ticks.Load()) {
			t.Fatalf("shard %d: rotations %d, want %d", i, got, ticks.Load())
		}
	}
	// Tick-free epilogue: everything lands in current buckets, so the
	// windowed estimate must overestimate the epilogue counts.
	const epiReps = 64
	for r := 0; r < epiReps; r++ {
		for x := uint64(0); x < universe; x++ {
			s.Increment(x + 1000)
		}
	}
	for x := uint64(0); x < universe; x++ {
		if got := s.Query(x + 1000); got < epiReps {
			t.Fatalf("item %d: estimate %d < epilogue truth %d", x+1000, got, epiReps)
		}
	}
	if s.MemoryBits() == 0 {
		t.Fatal("no memory accounted")
	}
}

// TestShardedWindowedCountSketchSmoke checks the signed windowed backend
// under the sharded layer: batch ingestion, queries, and a global Tick.
func TestShardedWindowedCountSketchSmoke(t *testing.T) {
	s := NewShardedWindowedCountSketch(Options{Width: 1 << 12, Seed: 11}, 3, 0, 4)
	data := stream.Zipf(30000, 1000, 1.0, 13)
	s.IncrementBatch(data)
	truth := make(map[uint64]int64)
	for _, x := range data {
		truth[x]++
	}
	heaviest, best := uint64(0), int64(0)
	for x, c := range truth {
		if c > best {
			heaviest, best = x, c
		}
	}
	if got := s.Query(heaviest); got < best/2 || got > best*2 {
		t.Fatalf("estimate %d implausible for truth %d", got, best)
	}
	for i := 0; i < 3; i++ {
		s.Tick()
	}
	if got := s.Query(heaviest); got > best/4 || got < -best/4 {
		t.Fatalf("estimate %d after full eviction, want ~0", got)
	}
	est := s.QueryBatch([]uint64{heaviest, 1, 2}, nil)
	if len(est) != 3 {
		t.Fatalf("QueryBatch returned %d results, want 3", len(est))
	}
}

// TestWindowedPanics pins constructor validation.
func TestWindowedPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero buckets":      func() { NewWindowedCountMin(Options{Width: 64}, 0, 10) },
		"negative interval": func() { NewWindowedCountMin(Options{Width: 64}, 2, -1) },
		"tango countsketch": func() { NewWindowedCountSketch(Options{Width: 64, Mode: ModeTango}, 2, 10) },
		"max-merge window":  func() { NewWindowedCountMin(Options{Width: 64, Merge: MergeMax}, 2, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
